// Package hetmem is a from-scratch Go reproduction of "Using
// Performance Attributes for Managing Heterogeneous Memory in HPC
// Applications" (Goglin & Rubio Proaño, PDSEC/IPDPS 2022): an
// hwloc-memattrs-style API for identifying and characterizing memory
// kinds (DRAM, HBM/MCDRAM, NVDIMM, network-attached memory) by
// performance attributes, a heterogeneous allocator driven by those
// attributes, sensitivity-analysis tooling, and a full simulated
// evaluation reproducing every table and figure of the paper.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-versus-measured
// results. The benchmark harness in bench_test.go regenerates each
// table/figure as a testing.B target; the cmd/repro binary prints them.
package hetmem
