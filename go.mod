module hetmem

go 1.22
