package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTable(t *testing.T) {
	if err := run("knl-snc4-flat", false, false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAttrsAndRemote(t *testing.T) {
	if err := run("xeon", true, true, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownPlatform(t *testing.T) {
	if err := run("bogus", false, false, "", ""); err == nil {
		t.Fatal("unknown platform should fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "knl.attrs")
	if err := run("knl-snc4-flat", false, false, path, ""); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() == 0 {
		t.Fatalf("save: %v", err)
	}
	if err := run("knl-snc4-flat", false, false, "", path); err != nil {
		t.Fatal(err)
	}
	// Loading onto a different topology fails (node indexes mismatch).
	if err := run("homogeneous", false, false, "", path); err == nil {
		t.Fatal("cross-platform load should fail")
	}
	if err := run("knl-snc4-flat", false, false, "", filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing load file should fail")
	}
}
