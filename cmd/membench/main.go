// Command membench runs the benchmark-based attribute discovery
// campaign on a simulated platform and prints the measured values —
// the "External Sources" column of the paper's Table I, and the only
// discovery path on machines without an ACPI HMAT (e.g. KNL).
//
// Usage:
//
//	membench -p knl-snc4-flat
//	membench -p xeon -remote     # also measure non-local pairs
package main

import (
	"flag"
	"fmt"
	"os"

	"hetmem/internal/bench"
	"hetmem/internal/lstopo"
	"hetmem/internal/memattr"
	"hetmem/internal/platform"
)

func main() {
	var (
		platName = flag.String("p", "knl-snc4-flat", "platform name (see lstopo -list)")
		remote   = flag.Bool("remote", false, "also measure non-local (initiator, target) pairs")
		asAttrs  = flag.Bool("attrs", false, "print the resulting attribute registry instead of the raw table")
		save     = flag.String("save", "", "save measured attribute values to this file (reusable with -load)")
		load     = flag.String("load", "", "skip measuring; load attribute values from a previous -save")
	)
	flag.Parse()
	if err := run(*platName, *remote, *asAttrs, *save, *load); err != nil {
		fmt.Fprintln(os.Stderr, "membench:", err)
		os.Exit(1)
	}
}

func run(platName string, remote, asAttrs bool, save, load string) error {
	p, err := platform.Get(platName)
	if err != nil {
		return err
	}
	m, err := p.NewMachine()
	if err != nil {
		return err
	}
	if load != "" {
		// Second-run workflow: reuse a saved measurement campaign.
		data, err := os.ReadFile(load)
		if err != nil {
			return err
		}
		reg := memattr.NewRegistry(p.Topo)
		if err := memattr.Import(data, reg); err != nil {
			return err
		}
		fmt.Printf("attribute values loaded from %s (no benchmarking)\n", load)
		fmt.Print(lstopo.RenderMemAttrs(reg))
		return nil
	}
	results, err := bench.MeasureAll(m, bench.Options{IncludeRemote: remote})
	if err != nil {
		return err
	}
	if save != "" || asAttrs {
		reg := memattr.NewRegistry(p.Topo)
		if err := bench.Apply(results, reg); err != nil {
			return err
		}
		if _, err := bench.RegisterTriad(results, reg); err != nil {
			return err
		}
		if save != "" {
			data, err := memattr.Export(reg)
			if err != nil {
				return err
			}
			if err := os.WriteFile(save, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("attribute values saved to %s\n", save)
		}
		if asAttrs {
			fmt.Print(lstopo.RenderMemAttrs(reg))
		}
		return nil
	}
	fmt.Printf("benchmarked attribute values on %s (%d pairs)\n\n", platName, len(results))
	fmt.Printf("%-28s %-10s %6s %9s %9s %9s %10s %11s\n",
		"Target", "Initiator", "local", "read GB/s", "write", "triad", "idle ns", "loaded ns")
	for _, r := range results {
		fmt.Printf("%-28s %-10s %6v %9.1f %9.1f %9.1f %10.0f %11.0f\n",
			r.Target.String(), r.Initiator.ListString(), r.Local,
			r.ReadBW, r.WriteBW, r.TriadBW, r.IdleLatency, r.LoadedLatency)
	}
	return nil
}
