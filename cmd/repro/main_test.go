package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run("", true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run("fig1", false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run("nope", false, ""); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestRunWithOutputDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	if err := run("table1", false, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil || len(data) == 0 {
		t.Fatalf("output file: %v", err)
	}
}
