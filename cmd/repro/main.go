// Command repro regenerates the paper's tables and figures on the
// simulated platforms. Run -list to see every experiment, -exp <id> for
// one, or -exp all for the full evaluation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hetmem/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id, or 'all'")
		list   = flag.Bool("list", false, "list experiments")
		outDir = flag.String("o", "", "also write each experiment's output to <dir>/<id>.txt")
	)
	flag.Parse()
	if err := run(*exp, *list, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(exp string, list bool, outDir string) error {
	if list {
		for _, s := range experiments.All() {
			fmt.Printf("%-14s %s\n", s.ID, s.Title)
		}
		return nil
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	emit := func(id, out string) error {
		fmt.Println(out)
		if outDir == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(outDir, id+".txt"), []byte(out), 0o644)
	}
	if exp != "all" {
		out, err := experiments.Run(exp)
		if err != nil {
			return err
		}
		return emit(exp, out)
	}
	for _, s := range experiments.All() {
		out, err := s.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", s.ID, err)
		}
		if err := emit(s.ID, out); err != nil {
			return err
		}
	}
	return nil
}
