package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hetmem/internal/cluster"
	"hetmem/internal/server"
)

// Router flag validation lives in flags_test.go alongside the serve
// flags.

// TestRouterSubcommandEndToEnd boots two real daemons, fronts them
// with the router subcommand's serve loop, does real work through the
// router over the wire, and shuts it down with SIGTERM.
func TestRouterSubcommandEndToEnd(t *testing.T) {
	m0 := boot(t, "xeon")
	m1 := boot(t, "fictitious")

	// Pick a concrete free port for the router.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var mu sync.Mutex
	var out strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	udsPath := filepath.Join(os.TempDir(), "hetmemd-router-test.sock")
	defer os.Remove(udsPath)
	done := make(chan error, 1)
	go func() {
		done <- routerUntilSignal(serveAddrs{http: addr, uds: udsPath}, cluster.Config{
			Members: []cluster.MemberSpec{
				{Name: "m0", URL: m0},
				{Name: "m1", URL: m1},
			},
			JournalPath:  filepath.Join(t.TempDir(), "router.wal"),
			PollInterval: 50 * time.Millisecond,
		}, w)
	}()

	base := "http://" + addr
	cl := server.NewClient(base, server.WithoutHeartbeat())
	defer cl.Close()
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := cl.Health(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router did not come up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := cl.Alloc(ctx, server.AllocRequest{Name: "fed", Size: 1 << 20, Attr: "Bandwidth"})
	if err != nil {
		t.Fatalf("alloc through router subcommand: %v", err)
	}
	if !strings.HasPrefix(resp.Placement, "m0/") && !strings.HasPrefix(resp.Placement, "m1/") {
		t.Fatalf("placement %q not member-prefixed", resp.Placement)
	}
	if err := cl.Free(ctx, resp.Lease); err != nil {
		t.Fatal(err)
	}

	// The same federation path over the binary wire protocol: a
	// unix-socket client allocates through the router's -uds listener
	// and must see a member-prefixed placement too.
	wcl := server.NewClient("unix://"+udsPath, server.WithoutHeartbeat())
	defer wcl.Close()
	wresp, err := wcl.Alloc(ctx, server.AllocRequest{Name: "fedwire", Size: 1 << 20, Attr: "Bandwidth"})
	if err != nil {
		t.Fatalf("alloc through router uds listener: %v", err)
	}
	if !strings.HasPrefix(wresp.Placement, "m0/") && !strings.HasPrefix(wresp.Placement, "m1/") {
		t.Fatalf("wire placement %q not member-prefixed", wresp.Placement)
	}
	if err := wcl.Free(ctx, wresp.Lease); err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("router returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("router did not shut down after SIGTERM")
	}
	mu.Lock()
	logText := out.String()
	mu.Unlock()
	if !strings.Contains(logText, "router journal flushed") {
		t.Fatalf("no journal flush confirmation: %q", logText)
	}
}

// TestLoadtestClusterMode runs the -cluster loadtest (scaled down for
// CI) with a mid-run member kill and expects the zero-lost-leases
// verdict and consistent books.
func TestLoadtestClusterMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"loadtest", "-cluster",
		"-clients", "32", "-requests", "40",
		"-kill", "1", "-kill-after", "200ms",
		"-seed", "3",
	}, &out)
	if err != nil {
		t.Fatalf("%v (output: %s)", err, out.String())
	}
	for _, want := range []string{"0 failed", "zero lost leases", "books consistent"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in: %s", want, out.String())
		}
	}
}
