package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hetmem/internal/core"
	"hetmem/internal/server"
)

// boot starts the daemon on a random port and returns its base URL.
func boot(t *testing.T, platform string) string {
	t.Helper()
	var log strings.Builder
	base, stop, err := startServer("127.0.0.1:0", platform, false, &log)
	if err != nil {
		t.Fatalf("%v (log: %s)", err, log.String())
	}
	t.Cleanup(stop)
	if !strings.Contains(log.String(), "listening on http://127.0.0.1:") {
		t.Fatalf("startup log: %q", log.String())
	}
	return base
}

// TestDaemonEndToEnd boots the daemon on a random port, hits every
// endpoint, and checks that /metrics counters move.
func TestDaemonEndToEnd(t *testing.T) {
	base := boot(t, "xeon")
	cl := server.NewClient(base)
	ctx := context.Background()

	before, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// GET /topology
	topo, err := cl.Topology(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.NUMANodes()) == 0 {
		t.Fatal("topology has no NUMA nodes")
	}

	// GET /attrs
	attrs, err := cl.Attrs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) == 0 {
		t.Fatal("no attributes")
	}

	// POST /alloc
	ar, err := cl.Alloc(ctx, server.AllocRequest{Name: "e2e", Size: 1 << 30, Attr: "Bandwidth", Initiator: "0-19"})
	if err != nil {
		t.Fatal(err)
	}

	// POST /migrate
	if _, err := cl.Migrate(ctx, server.MigrateRequest{Lease: ar.Lease, Attr: "Capacity", Initiator: "0-19"}); err != nil {
		t.Fatal(err)
	}

	// GET /leases
	leases, err := cl.Leases(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if leases.Count != 1 || leases.Bytes != 1<<30 {
		t.Fatalf("leases: %+v", leases)
	}

	// POST /free
	if err := cl.Free(ctx, ar.Lease); err != nil {
		t.Fatal(err)
	}

	// GET /metrics: every exercised endpoint's counter moved.
	after, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range []string{"topology", "attrs", "alloc", "migrate", "leases", "free", "metrics"} {
		key := `hetmemd_requests_total{endpoint="` + ep + `"}`
		if after[key] <= before[key] {
			t.Errorf("counter %s did not move (%v -> %v)", key, before[key], after[key])
		}
	}
	for k, want := range map[string]float64{
		"hetmemd_alloc_total":   1,
		"hetmemd_migrate_total": 1,
		"hetmemd_free_total":    1,
		"hetmemd_leases_active": 0,
	} {
		if after[k] != want {
			t.Errorf("%s = %v, want %v", k, after[k], want)
		}
	}
}

func TestServeErrors(t *testing.T) {
	if err := run([]string{"serve", "-p", "bogus"}, io.Discard); err == nil {
		t.Fatal("unknown platform should fail")
	}
	if err := run([]string{"serve", "-addr", "256.0.0.1:bad"}, io.Discard); err == nil {
		t.Fatal("bad address should fail")
	}
}

func TestRunUsage(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Fatal("no args should fail")
	}
	if err := run([]string{"bogus"}, io.Discard); err == nil {
		t.Fatal("unknown subcommand should fail")
	}
	var out strings.Builder
	if err := run([]string{"platforms"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "xeon") || !strings.Contains(out.String(), "knl-snc4-flat") {
		t.Fatalf("platforms output: %q", out.String())
	}
}

// TestLoadtestSelfHosted runs the self-hosted load test the acceptance
// criteria describe (scaled down for CI) and checks it reports
// consistent books and zero failures.
func TestLoadtestSelfHosted(t *testing.T) {
	var out strings.Builder
	err := run([]string{"loadtest", "-clients", "8", "-requests", "30", "-seed", "7"}, &out)
	if err != nil {
		t.Fatalf("%v (output: %s)", err, out.String())
	}
	if !strings.Contains(out.String(), "0 failed") {
		t.Fatalf("expected zero failed requests: %q", out.String())
	}
	if !strings.Contains(out.String(), "books consistent") {
		t.Fatalf("expected consistency check: %q", out.String())
	}
}

// TestLoadtestAgainstRunningDaemon points the load generator at an
// already-running daemon over the -addr flag.
func TestLoadtestAgainstRunningDaemon(t *testing.T) {
	base := boot(t, "knl-snc4-flat")
	var out strings.Builder
	err := run([]string{"loadtest", "-addr", base, "-clients", "4", "-requests", "20"}, &out)
	if err != nil {
		t.Fatalf("%v (output: %s)", err, out.String())
	}

	// The daemon that served the load is still healthy.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics after load: HTTP %d", resp.StatusCode)
	}
}

// TestChaostestSubcommand runs a scaled-down chaos scenario end to
// end: faults injected under client load, then a clean audit.
func TestChaostestSubcommand(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"chaostest", "-clients", "8", "-requests", "10",
		"-steps", "10", "-interval", "1ms", "-seed", "5",
		"-journal", filepath.Join(t.TempDir(), "wal"),
	}, &out)
	if err != nil {
		t.Fatalf("%v (output: %s)", err, out.String())
	}
	if !strings.Contains(out.String(), "fault events injected") {
		t.Fatalf("no fault report: %q", out.String())
	}
	if !strings.Contains(out.String(), "books consistent") {
		t.Fatalf("no consistency check: %q", out.String())
	}
}

// TestChaostestClusterMode runs the scaled-down partition chaos
// suite: network faults on every router->member link, one member
// restarted with a wiped journal mid-load, scrub convergence, and the
// JSON scrub-report artifact.
func TestChaostestClusterMode(t *testing.T) {
	report := filepath.Join(t.TempDir(), "scrub.json")
	var out strings.Builder
	err := run([]string{
		"chaostest", "-cluster",
		"-clients", "8", "-requests", "40",
		"-steps", "20", "-interval", "5ms",
		"-net-seed", "7", "-restart", "1",
		"-scrub-report", report,
	}, &out)
	if err != nil {
		t.Fatalf("%v (output: %s)", err, out.String())
	}
	for _, want := range []string{"restarted member", "scrub cycle 1", "converged after", "books consistent"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in: %s", want, out.String())
		}
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("scrub report artifact: %v", err)
	}
	for _, want := range []string{`"net_seed": 7`, `"restarted_member": "m1"`, `"converged_after_cycles"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("scrub report missing %q: %s", want, data)
		}
	}
}

// TestServeGracefulShutdown boots the real serve path with a journal,
// drives one allocation, sends SIGTERM, and expects a clean drain with
// the journal flushed.
func TestServeGracefulShutdown(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "wal")
	addr := "127.0.0.1:0"
	// Pick a concrete free port first so the client knows where to go.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	addr = ln.Addr().String()
	ln.Close()

	var mu sync.Mutex
	var out strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	udsPath := filepath.Join(os.TempDir(), "hetmemd-serve-test.sock")
	defer os.Remove(udsPath)
	done := make(chan error, 1)
	go func() {
		done <- serveUntilSignal(serveAddrs{http: addr, uds: udsPath}, "xeon", false, server.Config{JournalPath: journal}, w)
	}()

	// Wait for the daemon to come up, then do real work over the wire.
	base := "http://" + addr
	cl := server.NewClient(base)
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := cl.Health(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not come up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := cl.Alloc(ctx, server.AllocRequest{Name: "g", Size: 1 << 30, Attr: "Bandwidth", Initiator: "0-19"}); err != nil {
		t.Fatal(err)
	}

	// The -uds side listener serves the same daemon over the binary
	// protocol.
	wcl := server.NewClient("unix://"+udsPath, server.WithoutHeartbeat())
	defer wcl.Close()
	if _, err := wcl.Health(ctx); err != nil {
		t.Fatalf("health over the uds wire listener: %v", err)
	}

	// The registered NotifyContext turns our SIGTERM into a graceful
	// drain instead of killing the test process.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down after SIGTERM")
	}
	mu.Lock()
	logText := out.String()
	mu.Unlock()
	if !strings.Contains(logText, "journal flushed") {
		t.Fatalf("no flush confirmation: %q", logText)
	}

	// The journal is intact: a restart restores the lease.
	srv, err := server.NewWithConfig(mustSystem(t), server.Config{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.LeaseCount() != 1 {
		t.Fatalf("restored %d leases, want 1", srv.LeaseCount())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func mustSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
