package main

// The cluster-mode subcommands: `hetmemd router` fronts a fleet of
// running daemons with the placement router, and the -cluster modes
// of loadtest/bench boot an in-process heterogeneous fleet (router
// plus four simulated platforms) to exercise the federation path.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetmem/internal/cluster"
	"hetmem/internal/server"
)

// memberFlags parses repeated -member name=url flags.
type memberFlags []cluster.MemberSpec

func (f *memberFlags) String() string {
	parts := make([]string, len(*f))
	for i, m := range *f {
		parts[i] = m.Name + "=" + m.URL
	}
	return strings.Join(parts, ",")
}

func (f *memberFlags) Set(s string) error {
	name, url, ok := strings.Cut(s, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", s)
	}
	*f = append(*f, cluster.MemberSpec{Name: name, URL: url})
	return nil
}

func runRouter(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hetmemd router", flag.ContinueOnError)
	var members memberFlags
	fs.Var(&members, "member", "cluster member as name=url (repeat per daemon); the name is the rendezvous identity")
	var (
		addr         = fs.String("addr", "127.0.0.1:7078", "router listen address")
		udsPath      = fs.String("uds", "", "also serve the binary wire protocol on this unix socket path (empty: disabled)")
		tcpBin       = fs.String("tcp-bin", "", "also serve the binary wire protocol on this TCP address (empty: disabled)")
		journal      = fs.String("journal", "", "router lease-journal path (empty: routed leases do not survive router restarts)")
		syncEvery    = fs.Bool("journal-sync", false, "fsync the router journal after every record")
		pollEvery    = fs.Duration("poll-interval", 500*time.Millisecond, "member health-poll period")
		offlineAfter = fs.Int("offline-after", 2, "consecutive failed polls before a member is offline and its leases evacuate")
		retryAfter   = fs.Int("retry-after", 1, "Retry-After hint (seconds) on 503 responses")
		probeTO      = fs.Duration("probe-timeout", cluster.DefaultProbeTimeout, "deadline on each member health probe")
		evacTO       = fs.Duration("evac-timeout", cluster.DefaultEvacTimeout, "deadline on each evacuation alloc (pending-free drains use half)")
		forwardTO    = fs.Duration("forward-timeout", cluster.DefaultForwardTimeout, "per-call deadline on forwarded member requests without an inbound deadline")
		maxInflight  = fs.Int("max-inflight", cluster.DefaultMaxInFlightPerMember, "concurrent forwarded calls per member before fast 503s (negative: unbounded)")
		hedgeDelay   = fs.Duration("hedge-delay", cluster.DefaultHedgeDelay, "wait before hedging a second attempt on fan-out reads (negative: no hedging)")
		scrubEvery   = fs.Duration("scrub-interval", 0, "anti-entropy scrub period diffing the lease books against every member (0: disabled)")
		scrubBudget  = fs.Uint64("scrub-budget", 0, "bytes re-placed per scrub cycle (0: 256 MiB)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(members) == 0 {
		return errors.New("router needs at least one -member name=url")
	}
	cfg := cluster.Config{
		Members:              members,
		JournalPath:          *journal,
		SyncEveryAppend:      *syncEvery,
		PollInterval:         *pollEvery,
		OfflineAfter:         *offlineAfter,
		RetryAfterSeconds:    *retryAfter,
		ProbeTimeout:         *probeTO,
		EvacTimeout:          *evacTO,
		ForwardTimeout:       *forwardTO,
		MaxInFlightPerMember: *maxInflight,
		HedgeDelay:           *hedgeDelay,
		ScrubInterval:        *scrubEvery,
		ScrubBudgetBytes:     *scrubBudget,
	}
	if err := validateRouterConfig(cfg); err != nil {
		return err
	}
	return routerUntilSignal(serveAddrs{http: *addr, uds: *udsPath, tcpBin: *tcpBin}, cfg, out)
}

// validateRouterConfig front-runs cluster.New with flag-named errors,
// the router twin of validateServeConfig.
func validateRouterConfig(cfg cluster.Config) error {
	if cfg.ProbeTimeout <= 0 {
		return fmt.Errorf("-probe-timeout must be positive, got %v", cfg.ProbeTimeout)
	}
	if cfg.EvacTimeout <= 0 {
		return fmt.Errorf("-evac-timeout must be positive, got %v", cfg.EvacTimeout)
	}
	if cfg.ForwardTimeout <= 0 {
		return fmt.Errorf("-forward-timeout must be positive, got %v", cfg.ForwardTimeout)
	}
	if cfg.ScrubInterval < 0 {
		return fmt.Errorf("-scrub-interval must not be negative, got %v", cfg.ScrubInterval)
	}
	if cfg.ScrubInterval > 0 && cfg.ScrubInterval < cfg.ProbeTimeout {
		return fmt.Errorf("-scrub-interval %v must be at least -probe-timeout %v: a scrub cycle lists every member", cfg.ScrubInterval, cfg.ProbeTimeout)
	}
	if cfg.PollInterval <= 0 {
		return fmt.Errorf("-poll-interval must be positive, got %v", cfg.PollInterval)
	}
	if cfg.OfflineAfter <= 0 {
		return fmt.Errorf("-offline-after must be positive, got %d", cfg.OfflineAfter)
	}
	return nil
}

// routerUntilSignal runs the router until SIGINT/SIGTERM, then drains
// and checkpoints its journal — the cluster twin of serveUntilSignal.
func routerUntilSignal(addrs serveAddrs, cfg cluster.Config, out io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	r, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	if cfg.JournalPath != "" {
		fmt.Fprintf(out, "hetmemd: router journal %s, %d leases restored\n", cfg.JournalPath, r.LeaseCount())
	}
	ln, err := net.Listen("tcp", addrs.http)
	if err != nil {
		r.Close()
		return err
	}
	fmt.Fprintf(out, "hetmemd: router listening on http://%s (%d members)\n", ln.Addr(), len(cfg.Members))

	stopWire, err := serveWireListeners(wireEndpoints{
		handler: r.WireHandler(),
		metrics: r.Metrics(),
		uds:     addrs.uds,
		tcpBin:  addrs.tcpBin,
	}, out)
	if err != nil {
		ln.Close()
		r.Close()
		return err
	}

	hs := newHTTPServer(r.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		stopWire()
		r.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "hetmemd: router shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		hs.Close()
	}
	stopWire()
	if err := r.Close(); err != nil {
		return fmt.Errorf("router close: %w", err)
	}
	fmt.Fprintln(out, "hetmemd: router journal flushed, bye")
	return nil
}

// tolerateClusterErrors accepts the failures a member death
// legitimately surfaces mid-run: the retryable member_unavailable
// while keys re-home, and shedding/capacity pressure.
func tolerateClusterErrors(err error) bool {
	return errors.Is(err, server.ErrCodeMemberUnavailable) ||
		errors.Is(err, server.ErrShedding) ||
		errors.Is(err, server.ErrCapacityExhausted)
}

// clusterLoadtestOptions is the -cluster branch of `hetmemd loadtest`.
type clusterLoadtestOptions struct {
	clients   int
	requests  int
	maxLive   int
	maxSize   uint64
	seed      int64
	kill      int // member index to kill mid-run; -1 disables
	killAfter time.Duration
	verify    bool
}

// clusterLoadtest boots the in-process fleet, drives the load through
// the router, injects one member failure mid-run, and proves zero
// lost leases afterwards.
func clusterLoadtest(opts clusterLoadtestOptions, out io.Writer) error {
	sim, err := cluster.StartSim(cluster.SimOptions{Out: out})
	if err != nil {
		return err
	}
	defer sim.Close()
	ctx := context.Background()

	done := make(chan struct{})
	var stats server.LoadStats
	var loadErr error
	go func() {
		defer close(done)
		stats, loadErr = server.LoadTest(ctx, sim.Base, server.LoadOptions{
			Clients:           opts.clients,
			RequestsPerClient: opts.requests,
			MaxLive:           opts.maxLive,
			MaxSizeBytes:      opts.maxSize,
			Seed:              opts.seed,
			Tolerate:          tolerateClusterErrors,
			Retry:             &server.RetryPolicy{MaxAttempts: 6, BaseDelay: 25 * time.Millisecond, MaxDelay: 500 * time.Millisecond},
		})
	}()

	killed := -1
	if opts.kill >= 0 && opts.kill < len(sim.Members) {
		select {
		case <-time.After(opts.killAfter):
			sim.Kill(opts.kill)
			killed = opts.kill
			fmt.Fprintf(out, "hetmemd: killed member %s after %s\n", sim.Members[opts.kill].Name, opts.killAfter)
		case <-done:
			fmt.Fprintln(out, "hetmemd: load finished before the scheduled kill; no failure injected")
		}
	}
	<-done
	fmt.Fprintf(out, "hetmemd: loadtest %s\n", stats)
	if loadErr != nil {
		return loadErr
	}

	if killed >= 0 {
		// Wait for evacuation to settle: nothing may stay homed on the
		// corpse.
		victim := sim.Members[killed].Name
		deadline := time.Now().Add(30 * time.Second)
		for {
			sim.Router.PollOnce(ctx)
			leases, err := sim.Router.Leases(ctx, false)
			if err != nil {
				return err
			}
			if leases.NodeBytes[victim] == 0 {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%d bytes still homed on killed member %s after 30s", leases.NodeBytes[victim], victim)
			}
			time.Sleep(100 * time.Millisecond)
		}
		fmt.Fprintf(out, "hetmemd: all leases evacuated off %s\n", victim)
	}

	if opts.verify {
		leases, err := sim.Router.Leases(ctx, false)
		if err != nil {
			return err
		}
		if leases.Count != stats.LeasesLeft {
			return fmt.Errorf("router tracks %d leases, load generator left %d alive — leases lost", leases.Count, stats.LeasesLeft)
		}
		fmt.Fprintf(out, "hetmemd: zero lost leases (%d alive on both sides)\n", leases.Count)
		desc, err := server.VerifyConsistency(ctx, sim.Base)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "hetmemd: books %s\n", desc)
	}
	return nil
}

// clusterChaostestOptions is the -cluster branch of `hetmemd
// chaostest`.
type clusterChaostestOptions struct {
	seed        int64
	netSeed     int64
	steps       int
	interval    time.Duration
	clients     int
	requests    int
	restart     int
	netFaults   bool
	timeout     time.Duration
	scrubReport string
}

// clusterChaostest runs the partition chaos suite and, when asked,
// writes the scrub-convergence report artifact.
func clusterChaostest(opts clusterChaostestOptions, out io.Writer) error {
	dir, err := os.MkdirTemp("", "hetmem-netchaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	ctx, cancel := context.WithTimeout(context.Background(), opts.timeout)
	defer cancel()
	rep, runErr := cluster.NetChaosRun(ctx, cluster.NetChaosOptions{
		NetSeed:       opts.netSeed,
		Steps:         opts.steps,
		StepInterval:  opts.interval,
		JournalDir:    dir,
		RestartMember: opts.restart,
		DisableFaults: !opts.netFaults,
		Load: server.LoadOptions{
			Clients:           opts.clients,
			RequestsPerClient: opts.requests,
			Seed:              opts.seed,
		},
	}, out)
	if opts.scrubReport != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(opts.scrubReport, append(data, '\n'), 0o644)
		}
		if err != nil {
			if runErr == nil {
				runErr = err
			}
		} else {
			fmt.Fprintf(out, "hetmemd: scrub report written to %s\n", opts.scrubReport)
		}
	}
	if runErr != nil {
		return runErr
	}
	fmt.Fprintf(out, "hetmemd: cluster chaos converged after %d scrub cycle(s), %d leases alive, books %s\n",
		rep.ConvergedAfter, rep.LeasesAlive, rep.Consistency)
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("cluster chaostest timed out after %s", opts.timeout)
	}
	return nil
}

// clusterBench runs the router-vs-single-daemon benchmark and writes
// the BENCH_cluster.json artifact.
func clusterBench(clients, requests int, size uint64, outPath string, out io.Writer) error {
	report, err := cluster.RunBench(context.Background(), cluster.BenchOptions{
		Clients:   clients,
		Requests:  requests,
		SizeBytes: size,
	}, out)
	if err != nil {
		return err
	}
	if report.RouterOverhead > 0 {
		fmt.Fprintf(out, "hetmemd: bench router p50 overhead %.2fx over single daemon\n", report.RouterOverhead)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "hetmemd: cluster bench report written to %s\n", outPath)
	}
	return nil
}

// flagWasSet reports whether the user passed name explicitly.
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
