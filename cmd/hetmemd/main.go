// Command hetmemd is the heterogeneous-memory placement daemon: it
// loads a simulated platform, runs attribute discovery once (HMAT or
// benchmarking — Table I's two paths), and serves placement decisions
// to concurrent clients over HTTP (see internal/server for the
// endpoints and wire format).
//
// Usage:
//
//	hetmemd serve -addr :7077 -p xeon          # run the daemon
//	hetmemd serve -journal /var/lib/hetmemd.wal  # survive restarts
//	hetmemd serve -journal d.wal -lease-ttl 5m -reap-interval 1m  # TTL leases
//	hetmemd router -member m0=http://h0:7077 -member m1=http://h1:7077  # federate daemons
//	hetmemd loadtest -clients 64               # self-hosted load test
//	hetmemd loadtest -addr http://host:7077    # load-test a running daemon
//	hetmemd loadtest -cluster                  # 1000 clients across a 4-daemon fleet, one member killed mid-run
//	hetmemd bench -cluster                     # router-vs-single-daemon benchmark (BENCH_cluster.json)
//	hetmemd chaostest -steps 60                # fault-inject a daemon under load
//	hetmemd reapstress -ttl 1s                 # orphan-reaper acceptance run
//	hetmemd tenantstress                       # multi-tenant QoS isolation run (TENANT_report.json)
//	hetmemd platforms                          # list available platforms
//
// Try it:
//
//	curl localhost:7077/attrs?format=text
//	curl -d '{"name":"hot","size":1073741824,"attr":"Bandwidth","initiator":"0-19"}' localhost:7077/alloc
//	curl localhost:7077/health
//	curl localhost:7077/metrics
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // /debug/pprof on the -pprof-addr side listener
	"os"
	"os/signal"
	"path/filepath"
	"runtime/debug"
	"syscall"
	"time"

	"hetmem/internal/cluster"
	"hetmem/internal/core"
	"hetmem/internal/platform"
	"hetmem/internal/server"
	"hetmem/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hetmemd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: hetmemd <serve|router|loadtest|chaostest|reapstress|tenantstress|bench|platforms> [flags] (-h for flags)")
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:], out)
	case "router":
		return runRouter(args[1:], out)
	case "loadtest":
		return runLoadtest(args[1:], out)
	case "chaostest":
		return runChaostest(args[1:], out)
	case "reapstress":
		return runReapstress(args[1:], out)
	case "tenantstress":
		return runTenantstress(args[1:], out)
	case "bench":
		return runBench(args[1:], out)
	case "platforms":
		for _, n := range platform.Names() {
			p, err := platform.Get(n)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-20s %s\n", n, p.Description)
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want serve, router, loadtest, chaostest, reapstress, tenantstress, bench, or platforms)", args[0])
	}
}

// buildServer discovers the platform and wraps it in the daemon core.
func buildServer(platName string, forceBench bool, cfg server.Config, out io.Writer) (*server.Server, error) {
	sys, err := core.NewSystem(platName, core.Options{ForceBenchmark: forceBench})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "hetmemd: platform %s, %d NUMA nodes, attributes from %s\n",
		platName, len(sys.Topology().NUMANodes()), sys.Source)
	srv, err := server.NewWithConfig(sys, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.JournalPath != "" {
		fmt.Fprintf(out, "hetmemd: journal %s, %d leases restored\n", cfg.JournalPath, srv.LeaseCount())
	}
	return srv, nil
}

// newHTTPServer wraps a handler with the timeouts a daemon facing
// untrusted clients needs: slow-loris headers and bodies cannot hold
// connections open forever.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// startServer binds the daemon to addr and serves it in the
// background; the returned base URL is ready for clients, and stop
// shuts the listener and daemon down.
func startServer(addr, platName string, forceBench bool, out io.Writer) (base string, stop func(), err error) {
	srv, err := buildServer(platName, forceBench, server.Config{}, out)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	base = "http://" + ln.Addr().String()
	fmt.Fprintf(out, "hetmemd: listening on %s\n", base)
	hs := newHTTPServer(srv.Handler())
	go hs.Serve(ln)
	return base, func() { hs.Close(); srv.Close() }, nil
}

func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hetmemd serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7077", "listen address")
		udsPath    = fs.String("uds", "", "also serve the binary wire protocol on this unix socket path (empty: disabled)")
		tcpBin     = fs.String("tcp-bin", "", "also serve the binary wire protocol on this TCP address (empty: disabled)")
		pprofAddr  = fs.String("pprof-addr", "", "side listener for /debug/pprof profiling endpoints (empty: disabled; keep it off untrusted networks)")
		platName   = fs.String("p", "xeon", "platform to serve (see `hetmemd platforms`)")
		forceBench = fs.Bool("force-bench", false, "benchmark attributes even when the firmware has an HMAT")
		journal    = fs.String("journal", "", "write-ahead lease journal path (empty: no durability)")
		syncEvery  = fs.Bool("journal-sync", false, "fsync the journal after every record")
		groupC     = fs.Bool("group-commit", false, "coalesce concurrent journal appends into one fsync (needs -journal)")
		groupBatch = fs.Int("group-commit-batch", 0, "max records per coalesced fsync (0: 64)")
		groupWait  = fs.Duration("group-commit-linger", 0, "how long the batch leader waits for followers (0: 1ms, max 10ms)")
		noCache    = fs.Bool("no-candidate-cache", false, "disable the ranked-candidate cache (re-rank every placement)")
		legacyEnc  = fs.Bool("legacy-encoding", false, "encode hot-path responses with encoding/json instead of the zero-allocation encoders (A/B benchmarking)")
		replayW    = fs.Int("replay-workers", 0, "journal-replay parallelism on startup (0: GOMAXPROCS, 1: sequential)")
		shed       = fs.Float64("shed", 0.95, "admission-control watermark in (0,1]; 0 disables shedding")
		leaseTTL   = fs.Duration("lease-ttl", 0, "default lease TTL (0: leases never expire)")
		maxTTL     = fs.Duration("max-lease-ttl", 0, "ceiling for client-requested TTLs (0: 1h)")
		reapEvery  = fs.Duration("reap-interval", 0, "orphan-reaper scan interval (0: no reaper; must be <= -lease-ttl)")
		ckptEvery  = fs.Duration("checkpoint-every", 0, "journal checkpoint/compaction interval (0: no periodic checkpoints)")
		ckptBytes  = fs.Int64("checkpoint-bytes", 0, "checkpoint when the WAL exceeds this many bytes (0: no size trigger)")
		rebalEvery = fs.Duration("rebalance-every", 0, "pause between healed-node rebalance batches (0: no rebalancing)")
		rebalBytes = fs.Uint64("rebalance-budget", 0, "bytes migrated per rebalance batch (0: 256 MiB)")
		tenants    = fs.String("tenants", "", "tenant config file: priority classes and per-kind byte quotas (empty: every tenant is burstable, unlimited)")
		queueDepth = fs.Int("queue-depth", 0, "burstable admission-queue depth under overload (0: burstable sheds like best-effort)")
		queueWaitT = fs.Duration("queue-timeout", 0, "max burstable wait in the admission queue (0 with -queue-depth: 1s)")
		headroom   = fs.Float64("guaranteed-headroom", 0, "capacity fraction above -shed reserved for guaranteed tenants, in [0,1]")
		advEvery   = fs.Duration("advisor-interval", 10*time.Second, "tiering-advisor sample interval")
		advHyst    = fs.Int("advisor-hysteresis", 0, "agreeing advisor samples before a lease moves (0: 3)")
		advCool    = fs.Int("advisor-cooldown", 0, "samples a lease rests after an advisor move (0: 5)")
		noAdvisor  = fs.Bool("no-advisor", false, "disable the online tiering advisor")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := server.Config{
		JournalPath:           *journal,
		SyncEveryAppend:       *syncEvery,
		GroupCommit:           *groupC,
		GroupCommitBatch:      *groupBatch,
		GroupCommitLinger:     *groupWait,
		DisableCandidateCache: *noCache,
		LegacyEncoding:        *legacyEnc,
		ReplayWorkers:         *replayW,
		ShedWatermark:         *shed,
		DefaultLeaseTTL:       *leaseTTL,
		MaxLeaseTTL:           *maxTTL,
		ReapInterval:          *reapEvery,
		CheckpointEvery:       *ckptEvery,
		CheckpointMaxWAL:      *ckptBytes,
		RebalanceInterval:     *rebalEvery,
		RebalanceBudget:       *rebalBytes,
		TenantsPath:           *tenants,
		QueueDepth:            *queueDepth,
		QueueTimeout:          *queueWaitT,
		GuaranteedHeadroom:    *headroom,
		AdvisorInterval:       *advEvery,
		AdvisorHysteresis:     *advHyst,
		AdvisorCooldown:       *advCool,
	}
	if *noAdvisor {
		cfg.AdvisorInterval = 0
	}
	if err := validateServeConfig(cfg); err != nil {
		return err
	}
	return serveUntilSignal(serveAddrs{http: *addr, uds: *udsPath, tcpBin: *tcpBin, pprof: *pprofAddr},
		*platName, *forceBench, cfg, out)
}

// serveAddrs is where one daemon listens: the HTTP surface plus the
// optional binary-protocol and pprof side listeners.
type serveAddrs struct {
	http   string
	uds    string // unix socket path for the wire protocol
	tcpBin string // TCP address for the wire protocol
	pprof  string
}

// validateServeConfig front-runs server.NewWithConfig's validation so
// a bad flag combination fails before the (slow) platform discovery,
// with the flag names in the message.
func validateServeConfig(cfg server.Config) error {
	if cfg.DefaultLeaseTTL > 0 && cfg.ReapInterval == 0 {
		return fmt.Errorf("-lease-ttl %v needs -reap-interval > 0, or expired leases are never reclaimed", cfg.DefaultLeaseTTL)
	}
	if cfg.DefaultLeaseTTL > 0 && cfg.ReapInterval > cfg.DefaultLeaseTTL {
		return fmt.Errorf("-reap-interval %v must not exceed -lease-ttl %v", cfg.ReapInterval, cfg.DefaultLeaseTTL)
	}
	if (cfg.CheckpointEvery > 0 || cfg.CheckpointMaxWAL > 0) && cfg.JournalPath == "" {
		return fmt.Errorf("-checkpoint-every/-checkpoint-bytes need -journal: there is nothing to compact without a WAL")
	}
	if cfg.GroupCommit && cfg.JournalPath == "" {
		return fmt.Errorf("-group-commit needs -journal: there is nothing to commit without a WAL")
	}
	if cfg.DefaultLeaseTTL < 0 || cfg.ReapInterval < 0 || cfg.CheckpointEvery < 0 || cfg.RebalanceInterval < 0 || cfg.CheckpointMaxWAL < 0 || cfg.QueueTimeout < 0 || cfg.AdvisorInterval < 0 {
		return fmt.Errorf("duration and byte flags must not be negative")
	}
	if cfg.AdvisorHysteresis < 0 || cfg.AdvisorCooldown < 0 {
		return fmt.Errorf("-advisor-hysteresis and -advisor-cooldown must not be negative")
	}
	if cfg.TenantsPath != "" {
		if _, err := os.Stat(cfg.TenantsPath); err != nil {
			return fmt.Errorf("-tenants: %w", err)
		}
	}
	if cfg.QueueDepth < 0 {
		return fmt.Errorf("-queue-depth must not be negative (got %d)", cfg.QueueDepth)
	}
	if cfg.QueueTimeout > 0 && cfg.QueueDepth == 0 {
		return fmt.Errorf("-queue-timeout %v needs -queue-depth > 0: there is no queue to bound", cfg.QueueTimeout)
	}
	if cfg.GuaranteedHeadroom < 0 || cfg.GuaranteedHeadroom > 1 {
		return fmt.Errorf("-guaranteed-headroom %v outside [0, 1]", cfg.GuaranteedHeadroom)
	}
	if cfg.GuaranteedHeadroom > 0 && cfg.ShedWatermark <= 0 {
		return fmt.Errorf("-guaranteed-headroom %v needs -shed > 0: headroom is relative to the watermark", cfg.GuaranteedHeadroom)
	}
	return nil
}

// serveUntilSignal runs the daemon until SIGINT/SIGTERM, then shuts
// down gracefully: in-flight requests drain and the journal flushes.
func serveUntilSignal(addrs serveAddrs, platName string, forceBench bool, cfg server.Config, out io.Writer) error {
	// Register for signals before announcing the listener, so anything
	// that saw "listening" can already shut us down cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv, err := buildServer(platName, forceBench, cfg, out)
	if err != nil {
		return err
	}
	if addrs.pprof != "" {
		// The profiler gets its own listener so the API surface stays
		// clean: net/http/pprof registers on the default mux, which the
		// daemon's handler never serves.
		pln, err := net.Listen("tcp", addrs.pprof)
		if err != nil {
			srv.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		fmt.Fprintf(out, "hetmemd: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go http.Serve(pln, nil)
	}
	ln, err := net.Listen("tcp", addrs.http)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(out, "hetmemd: listening on http://%s\n", ln.Addr())

	stopWire, err := serveWireListeners(wireEndpoints{
		handler: srv.WireHandler(),
		metrics: srv.Metrics(),
		uds:     addrs.uds,
		tcpBin:  addrs.tcpBin,
	}, out)
	if err != nil {
		ln.Close()
		srv.Close()
		return err
	}

	hs := newHTTPServer(srv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		stopWire()
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "hetmemd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		hs.Close()
	}
	stopWire()
	if err := srv.Close(); err != nil {
		return fmt.Errorf("journal close: %w", err)
	}
	fmt.Fprintln(out, "hetmemd: journal flushed, bye")
	return nil
}

// wireEndpoints is a node's binary-protocol serving configuration:
// the dispatcher, the metrics its listeners feed, and where to bind.
// Both the daemon and the cluster router serve the wire protocol
// through it.
type wireEndpoints struct {
	handler wire.Handler
	metrics *server.Metrics
	uds     string
	tcpBin  string
}

// serveWireListeners binds the requested binary-protocol listeners
// and serves them in the background; the returned stop closes them
// (and removes the socket file). With neither address set it is a
// no-op.
func serveWireListeners(eps wireEndpoints, out io.Writer) (stop func(), err error) {
	var stops []func()
	stop = func() {
		for _, s := range stops {
			s()
		}
	}
	if eps.uds != "" {
		// A socket file left by a crashed daemon would fail the bind;
		// the daemon owns its path, so a stale file is removed, not
		// reported.
		os.Remove(eps.uds)
		uln, err := net.Listen("unix", eps.uds)
		if err != nil {
			return nil, fmt.Errorf("wire uds listener: %w", err)
		}
		ws := wire.NewServer(eps.handler, eps.metrics.TransportStats(server.TransportUDS))
		go ws.Serve(uln)
		fmt.Fprintf(out, "hetmemd: wire listening on unix://%s\n", eps.uds)
		path := eps.uds
		stops = append(stops, func() { ws.Close(); os.Remove(path) })
	}
	if eps.tcpBin != "" {
		bln, err := net.Listen("tcp", eps.tcpBin)
		if err != nil {
			stop()
			return nil, fmt.Errorf("wire tcp listener: %w", err)
		}
		ws := wire.NewServer(eps.handler, eps.metrics.TransportStats(server.TransportTCPBin))
		go ws.Serve(bln)
		fmt.Fprintf(out, "hetmemd: wire listening on tcp+bin://%s\n", bln.Addr())
		stops = append(stops, func() { ws.Close() })
	}
	return stop, nil
}

func runLoadtest(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hetmemd loadtest", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "daemon base URL — http://host:port, unix:///path.sock, or tcp+bin://host:port (empty: boot one in-process)")
		tsport   = fs.String("transport", "http", "in-process daemon transport: http, uds, or tcp-bin (with -addr, the URL scheme decides)")
		platName = fs.String("p", "xeon", "platform for the in-process daemon")
		clients  = fs.Int("clients", 8, "concurrent client goroutines")
		requests = fs.Int("requests", 100, "operations per client")
		maxLive  = fs.Int("live", 8, "max live leases per client")
		maxSize  = fs.Uint64("maxsize", 64<<20, "max allocation size in bytes")
		seed     = fs.Int64("seed", 1, "traffic mix seed")
		verify   = fs.Bool("verify", true, "cross-check /metrics against the lease table afterwards")
		clust    = fs.Bool("cluster", false, "boot a 4-daemon fleet behind a router and load-test through it (defaults scale to 1000 clients)")
		kill     = fs.Int("kill", 1, "with -cluster: member index to kill mid-run (-1: no failure injection)")
		killWait = fs.Duration("kill-after", 2*time.Second, "with -cluster: how far into the run the kill lands")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clust {
		// Cluster mode scales the defaults to the acceptance shape:
		// 1000+ concurrent clients across the 4-daemon fleet, sized so
		// the fleet never runs out of room. Explicit flags still win.
		if !flagWasSet(fs, "clients") {
			*clients = 1000
		}
		if !flagWasSet(fs, "requests") {
			*requests = 20
		}
		if !flagWasSet(fs, "live") {
			*maxLive = 4
		}
		if !flagWasSet(fs, "maxsize") {
			*maxSize = 8 << 20
		}
		return clusterLoadtest(clusterLoadtestOptions{
			clients:   *clients,
			requests:  *requests,
			maxLive:   *maxLive,
			maxSize:   *maxSize,
			seed:      *seed,
			kill:      *kill,
			killAfter: *killWait,
			verify:    *verify,
		}, out)
	}

	ctx := context.Background()
	base := *addr
	if base == "" {
		srv, err := buildServer(*platName, false, server.Config{}, out)
		if err != nil {
			return err
		}
		defer srv.Close()
		var stop func()
		base, stop, err = server.ServeTransport(srv, *tsport)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Fprintf(out, "hetmemd: listening on %s\n", base)
	}

	stats, err := server.LoadTest(ctx, base, server.LoadOptions{
		Clients:           *clients,
		RequestsPerClient: *requests,
		MaxLive:           *maxLive,
		MaxSizeBytes:      *maxSize,
		Seed:              *seed,
	})
	fmt.Fprintf(out, "hetmemd: loadtest %s\n", stats)
	if err != nil {
		return err
	}
	if *verify {
		desc, err := server.VerifyConsistency(ctx, base)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "hetmemd: books %s\n", desc)
	}
	return nil
}

// runBench is the fast-path acceptance measurement: the same
// alloc/free load against the durable daemon in its pre-fast-path
// configuration (fsync per record, no candidate cache), the PR-4
// fast path (group commit + cache, encoding/json responses), the
// zero-allocation fast path (pooled leases + hand-rolled encoders),
// and the batched endpoint — then the restart-time benchmark
// (sequential vs parallel journal replay). Results land in a JSON
// artifact (BENCH_alloc.json) for CI to archive.
func runBench(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hetmemd bench", flag.ContinueOnError)
	var (
		platName    = fs.String("p", "xeon", "platform for the daemon under test")
		clients     = fs.Int("clients", 32, "concurrent client goroutines")
		requests    = fs.Int("requests", 200, "allocations per client")
		size        = fs.Uint64("size", 1<<20, "bytes per allocation")
		batch       = fs.Int("batch", 16, "items per /v1/alloc/batch round trip in the batch run (0: skip)")
		trials      = fs.Int("trials", 3, "interleaved trials per configuration; the median throughput is reported")
		restartRecs = fs.Int("restart-records", 120000, "journal records for the restart-time benchmark (0: skip)")
		outPath     = fs.String("out", "BENCH_alloc.json", "JSON artifact path (empty: stdout only)")
		restartPath = fs.String("restart-out", "BENCH_restart.json", "restart benchmark artifact path (empty: embed in -out only)")
		clust       = fs.Bool("cluster", false, "benchmark the cluster router path against a single daemon instead of the fast-path A/B")
		clustPath   = fs.String("cluster-out", "BENCH_cluster.json", "with -cluster: JSON artifact path (empty: stdout only)")
		adv         = fs.Bool("advisor", false, "benchmark the tiering advisor: phased workload with the advisor on vs off")
		advPath     = fs.String("advisor-out", "BENCH_advisor.json", "with -advisor: JSON artifact path (empty: stdout only)")
		advPhases   = fs.Int("advisor-phases", 8, "with -advisor: pointer-chase phases per run")
		noWire      = fs.Bool("no-wire", false, "skip the transport-comparison runs (http vs uds vs tcp-bin) and their acceptance gates")
		wireClients = fs.Int("wire-clients", 4, "concurrent clients for the transport-comparison runs (low on purpose: they measure per-request latency, not saturation)")
		basePath    = fs.String("baseline", "", "prior BENCH_alloc.json to gate the transport runs against (empty: read -out before overwriting it)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clust {
		return clusterBench(*clients, *requests, *size, *clustPath, out)
	}
	if *adv {
		return advisorBench(*platName, *advPhases, *advPath, out)
	}
	dir, err := os.MkdirTemp("", "hetmemd-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// The bench process hosts daemon and clients together, so GC runs
	// steal cycles from both sides of every configuration equally; a
	// laxer GC target keeps the measurement about the request path.
	defer debug.SetGCPercent(debug.SetGCPercent(400))

	ctx := context.Background()
	runs := []struct {
		name string
		opts server.BenchOptions
	}{
		{"baseline", server.BenchOptions{Server: server.Config{
			JournalPath:           filepath.Join(dir, "baseline.wal"),
			SyncEveryAppend:       true,
			DisableCandidateCache: true,
		}}},
		// "fast" pins the PR-4 daemon: group commit + candidate cache,
		// responses through encoding/json. "fast_zeroalloc" is the same
		// daemon on the pooled zero-allocation hot path — the default —
		// so the A/B isolates what the allocation work was costing.
		{"fast", server.BenchOptions{Server: server.Config{
			JournalPath:    filepath.Join(dir, "fast.wal"),
			GroupCommit:    true,
			LegacyEncoding: true,
		}}},
		{"fast_zeroalloc", server.BenchOptions{Server: server.Config{
			JournalPath: filepath.Join(dir, "fastzero.wal"),
			GroupCommit: true,
		}}},
	}
	if *batch > 1 {
		runs = append(runs, struct {
			name string
			opts server.BenchOptions
		}{"fast_batch", server.BenchOptions{Batch: *batch, Server: server.Config{
			JournalPath: filepath.Join(dir, "batch.wal"),
			GroupCommit: true,
		}}})
	}
	if !*noWire {
		// The transport trio: the same single-item workload over HTTP,
		// the unix-socket wire protocol, and multiplexed binary TCP —
		// journal off and few clients, so the numbers are per-request
		// transport cost, not fsync queueing. wire_http is the
		// like-for-like control for the two binary rows.
		for _, t := range []struct{ name, transport string }{
			{"wire_http", "http"}, {"wire_uds", "uds"}, {"wire_tcpbin", "tcp-bin"},
		} {
			runs = append(runs, struct {
				name string
				opts server.BenchOptions
			}{t.name, server.BenchOptions{Transport: t.transport, Clients: *wireClients}})
		}
	}
	// The gates compare against the last recorded report; read it
	// before -out overwrites it.
	prior := readPriorBench(*basePath, *outPath)

	report := server.BenchReport{
		Benchmark: "server_alloc",
		Platform:  *platName,
		Clients:   *clients,
	}
	if *trials < 1 {
		*trials = 1
	}
	// Interleave the trials (baseline, fast, ... then again) instead of
	// running each configuration back to back, so slow-disk phases and
	// page-cache warmth spread evenly across configurations; the median
	// trial per configuration is what lands in the report.
	samples := make([][]server.BenchResult, len(runs))
	for trial := 0; trial < *trials; trial++ {
		for i, r := range runs {
			r.opts.Platform = *platName
			if r.opts.Clients == 0 {
				r.opts.Clients = *clients
			}
			r.opts.Requests = *requests
			r.opts.SizeBytes = *size
			res, err := server.RunAllocBench(ctx, r.name, r.opts)
			if err != nil {
				return fmt.Errorf("bench %s: %w", r.name, err)
			}
			samples[i] = append(samples[i], res)
		}
	}
	for _, trials := range samples {
		res := server.MedianResult(trials)
		fmt.Fprintf(out, "hetmemd: bench %s\n", res)
		report.Results = append(report.Results, res)
	}
	if len(report.Results) >= 2 {
		report.Speedup = report.Results[1].AllocsPerSec / report.Results[0].AllocsPerSec
		fmt.Fprintf(out, "hetmemd: bench fast/baseline speedup %.2fx\n", report.Speedup)
	}
	if *restartRecs > 0 {
		res, err := server.RunRestartBench(server.RestartBenchOptions{
			Records: *restartRecs,
			Trials:  *trials,
		})
		if err != nil {
			return fmt.Errorf("bench restart: %w", err)
		}
		fmt.Fprintf(out, "hetmemd: bench %s\n", res)
		report.Restart = &res
		if *restartPath != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*restartPath, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "hetmemd: restart benchmark written to %s\n", *restartPath)
		}
	}
	if *outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "hetmemd: bench report written to %s\n", *outPath)
	}
	if !*noWire {
		// Gate after writing the artifact, so a failed gate still
		// leaves the numbers behind for inspection.
		return wireGates(report, prior, out)
	}
	return nil
}

// readPriorBench loads the last recorded BENCH_alloc.json (explicit
// path, else the -out path before it is overwritten); nil when there
// is none or it does not parse — first runs gate only on the absolute
// targets.
func readPriorBench(basePath, outPath string) *server.BenchReport {
	if basePath == "" {
		basePath = outPath
	}
	if basePath == "" {
		return nil
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		return nil
	}
	var p server.BenchReport
	if json.Unmarshal(data, &p) != nil {
		return nil
	}
	return &p
}

// wireGates enforces the binary-transport acceptance bars on a bench
// report: the UDS wire path must hold a sub-100µs single-item p50,
// beat the recorded single-item HTTP fast path (the committed
// fast_zeroalloc row) by 10x in allocs/sec, and not regress its own
// recorded p50 by more than 25%. CI greps for the PASS line.
func wireGates(report server.BenchReport, prior *server.BenchReport, out io.Writer) error {
	find := func(rs []server.BenchResult, name string) *server.BenchResult {
		for i := range rs {
			if rs[i].Name == name {
				return &rs[i]
			}
		}
		return nil
	}
	uds := find(report.Results, "wire_uds")
	if uds == nil {
		return fmt.Errorf("wire gate: no wire_uds result in the report")
	}
	if uds.P50Micros >= 100 {
		return fmt.Errorf("wire gate: uds single-item p50 %.0fµs misses the 100µs target", uds.P50Micros)
	}
	if prior != nil {
		if base := find(prior.Results, "fast_zeroalloc"); base != nil && base.AllocsPerSec > 0 {
			speedup := uds.AllocsPerSec / base.AllocsPerSec
			fmt.Fprintf(out, "hetmemd: bench wire_uds vs recorded single-item fast path: %.1fx\n", speedup)
			if speedup < 10 {
				return fmt.Errorf("wire gate: uds %.0f allocs/s is %.1fx the recorded single-item fast path (%.0f allocs/s); the bar is 10x",
					uds.AllocsPerSec, speedup, base.AllocsPerSec)
			}
		}
		if pu := find(prior.Results, "wire_uds"); pu != nil && pu.P50Micros > 0 && uds.P50Micros > 1.25*pu.P50Micros {
			return fmt.Errorf("wire gate: uds p50 %.0fµs regressed more than 25%% against the recorded %.0fµs",
				uds.P50Micros, pu.P50Micros)
		}
	}
	fmt.Fprintf(out, "hetmemd: wire transports PASS (uds %.0f allocs/s, p50 %.0fµs)\n", uds.AllocsPerSec, uds.P50Micros)
	return nil
}

// advisorBench runs the phased-workload advisor A/B (see
// server.RunAdvisorBench) and writes the BENCH_advisor.json artifact.
func advisorBench(platName string, phases int, outPath string, out io.Writer) error {
	report, err := server.RunAdvisorBench(server.AdvisorBenchOptions{
		Platform: platName,
		Phases:   phases,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "hetmemd: bench advisor on:  %.2f s simulated, %d move(s), final placement %s\n",
		report.WithAdvisor.ElapsedSeconds, report.WithAdvisor.Moves, report.WithAdvisor.Placement)
	fmt.Fprintf(out, "hetmemd: bench advisor off: %.2f s simulated, final placement %s\n",
		report.Without.ElapsedSeconds, report.Without.Placement)
	fmt.Fprintf(out, "hetmemd: bench advisor speedup %.2fx\n", report.Speedup)
	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "hetmemd: advisor benchmark written to %s\n", outPath)
	}
	// The acceptance floor: the advisor must win by enough to have
	// clearly paid for its migrations in simulated time.
	if report.Speedup < 1.15 {
		return fmt.Errorf("advisor speedup %.2fx below the 1.15x acceptance floor", report.Speedup)
	}
	return nil
}

func runReapstress(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hetmemd reapstress", flag.ContinueOnError)
	var (
		platName = fs.String("p", "xeon", "platform for the daemon under test")
		ttl      = fs.Duration("ttl", time.Second, "lease TTL requested by every client")
		reap     = fs.Duration("reap-interval", 0, "daemon reaper interval (0: ttl/4)")
		crashers = fs.Int("crashers", 16, "clients that allocate and vanish")
		holders  = fs.Int("holders", 8, "clients that allocate and keep heartbeating")
		size     = fs.Uint64("size", 1<<20, "bytes per lease")
		timeout  = fs.Duration("timeout", 2*time.Minute, "overall run timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ri := *reap
	if ri == 0 {
		ri = *ttl / 4
	}
	sys, err := core.NewSystem(*platName, core.Options{})
	if err != nil {
		return err
	}
	srv, err := server.NewWithConfig(sys, server.Config{
		DefaultLeaseTTL: *ttl,
		MinLeaseTTL:     ri,
		ReapInterval:    ri,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := newHTTPServer(srv.Handler())
	go hs.Serve(ln)
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rep, err := server.ReapStress(ctx, "http://"+ln.Addr().String(), server.ReapStressOptions{
		Crashers:  *crashers,
		Holders:   *holders,
		LeaseTTL:  *ttl,
		SizeBytes: *size,
	})
	fmt.Fprintf(out, "hetmemd: reapstress %s\n", rep)
	return err
}

func runTenantstress(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hetmemd tenantstress", flag.ContinueOnError)
	var (
		noiseClients = fs.Int("noise-clients", 8, "greedy best-effort client goroutines")
		noiseAllocs  = fs.Int("noise-allocs", 400, "max allocations per noise client (saturation backstop)")
		noiseSize    = fs.Uint64("noise-size", 64<<20, "bytes per noise allocation")
		goldAllocs   = fs.Int("gold-allocs", 100, "guaranteed-tenant probe allocations per phase")
		goldSize     = fs.Uint64("gold-size", 8<<20, "bytes per guaranteed probe")
		floor        = fs.Duration("baseline-floor", 25*time.Millisecond, "minimum baseline p99 the 2x isolation bar is computed from")
		timeout      = fs.Duration("timeout", 3*time.Minute, "overall run timeout")
		outPath      = fs.String("report", "TENANT_report.json", "JSON report artifact path (empty: stdout only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "hetmemd-tenantstress-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rep, err := cluster.TenantStress(ctx, cluster.TenantStressOptions{
		JournalDir:     dir,
		NoiseClients:   *noiseClients,
		NoiseMaxAllocs: *noiseAllocs,
		NoiseSizeBytes: *noiseSize,
		GoldAllocs:     *goldAllocs,
		GoldSizeBytes:  *goldSize,
		BaselineFloor:  *floor,
	}, out)
	if *outPath != "" {
		if werr := cluster.WriteTenantStressReport(rep, *outPath); werr != nil && err == nil {
			err = werr
		} else if werr == nil {
			fmt.Fprintf(out, "hetmemd: tenant isolation report written to %s\n", *outPath)
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "hetmemd: tenantstress PASS: gold p99 %.2fms under load (bar %.2fms), %d/%d gold leases intact, 0 sheds/evictions\n",
		rep.LoadedP99Ms, rep.P99BarMs, rep.GoldLeases-rep.GoldLost, rep.GoldLeases)
	return nil
}

func runChaostest(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hetmemd chaostest", flag.ContinueOnError)
	var (
		platName    = fs.String("p", "xeon", "platform for the daemon under test")
		seed        = fs.Int64("seed", 1, "seed for the fault plan and traffic mix")
		steps       = fs.Int("steps", 40, "fault steps in the plan")
		interval    = fs.Duration("interval", 10*time.Millisecond, "pause between fault steps")
		clients     = fs.Int("clients", 16, "concurrent client goroutines")
		requests    = fs.Int("requests", 50, "operations per client")
		journal     = fs.String("journal", "", "journal path for the daemon under test (empty: none)")
		shed        = fs.Float64("shed", 0.95, "admission-control watermark")
		timeout     = fs.Duration("timeout", 2*time.Minute, "overall run timeout")
		clusterMode = fs.Bool("cluster", false, "chaos-test the in-process cluster: network faults on every router->member link, a wiped-journal member restart mid-load, then anti-entropy scrub convergence")
		netFaults   = fs.Bool("netfaults", true, "with -cluster: inject the seeded network-fault plan (false: restart-only run)")
		netSeed     = fs.Int64("net-seed", 1, "with -cluster: seed for the network-fault plan; the same seed replays the same schedule")
		restart     = fs.Int("restart", 1, "with -cluster: member index restarted with a wiped journal mid-run (negative: nobody)")
		scrubOut    = fs.String("scrub-report", "", "with -cluster: write the per-cycle scrub report JSON to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clusterMode {
		return clusterChaostest(clusterChaostestOptions{
			seed: *seed, netSeed: *netSeed, steps: *steps, interval: *interval,
			clients: *clients, requests: *requests, restart: *restart,
			netFaults: *netFaults, timeout: *timeout, scrubReport: *scrubOut,
		}, out)
	}
	sys, err := core.NewSystem(*platName, core.Options{})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rep, err := server.ChaosRun(ctx, sys, server.ChaosOptions{
		Seed:         *seed,
		Steps:        *steps,
		StepInterval: *interval,
		Load: server.LoadOptions{
			Clients:           *clients,
			RequestsPerClient: *requests,
		},
		Server: server.Config{JournalPath: *journal, ShedWatermark: *shed},
	})
	fmt.Fprintf(out, "hetmemd: chaos load %s\n", rep.Load)
	fmt.Fprintf(out, "hetmemd: %d fault events injected\n", rep.FaultEvents)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "hetmemd: auto-migrated %.0f leases off dying nodes (%.0f stranded), shed %.0f allocs, %.0f health transitions\n",
		server.SumSeries(rep.Metrics, "hetmemd_auto_migrate_total"),
		server.SumSeries(rep.Metrics, "hetmemd_auto_migrate_failed_total"),
		server.SumSeries(rep.Metrics, "hetmemd_shed_total"),
		server.SumSeries(rep.Metrics, "hetmemd_health_transitions_total"))
	fmt.Fprintf(out, "hetmemd: books %s\n", rep.Consistency)
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("chaostest timed out after %s", *timeout)
	}
	return nil
}
