// Command hetmemd is the heterogeneous-memory placement daemon: it
// loads a simulated platform, runs attribute discovery once (HMAT or
// benchmarking — Table I's two paths), and serves placement decisions
// to concurrent clients over HTTP (see internal/server for the
// endpoints and wire format).
//
// Usage:
//
//	hetmemd serve -addr :7077 -p xeon          # run the daemon
//	hetmemd loadtest -clients 64               # self-hosted load test
//	hetmemd loadtest -addr http://host:7077    # load-test a running daemon
//	hetmemd platforms                          # list available platforms
//
// Try it:
//
//	curl localhost:7077/attrs?format=text
//	curl -d '{"name":"hot","size":1073741824,"attr":"Bandwidth","initiator":"0-19"}' localhost:7077/alloc
//	curl localhost:7077/metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"hetmem/internal/core"
	"hetmem/internal/platform"
	"hetmem/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hetmemd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: hetmemd <serve|loadtest|platforms> [flags] (-h for flags)")
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:], out)
	case "loadtest":
		return runLoadtest(args[1:], out)
	case "platforms":
		for _, n := range platform.Names() {
			p, err := platform.Get(n)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-20s %s\n", n, p.Description)
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want serve, loadtest, or platforms)", args[0])
	}
}

// buildServer discovers the platform and wraps it in the daemon core.
func buildServer(platName string, forceBench bool, out io.Writer) (*server.Server, error) {
	sys, err := core.NewSystem(platName, core.Options{ForceBenchmark: forceBench})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "hetmemd: platform %s, %d NUMA nodes, attributes from %s\n",
		platName, len(sys.Topology().NUMANodes()), sys.Source)
	return server.New(sys), nil
}

// startServer binds the daemon to addr and serves it in the
// background; the returned base URL is ready for clients, and stop
// closes the listener.
func startServer(addr, platName string, forceBench bool, out io.Writer) (base string, stop func(), err error) {
	srv, err := buildServer(platName, forceBench, out)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	base = "http://" + ln.Addr().String()
	fmt.Fprintf(out, "hetmemd: listening on %s\n", base)
	go http.Serve(ln, srv.Handler())
	return base, func() { ln.Close() }, nil
}

func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hetmemd serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7077", "listen address")
		platName   = fs.String("p", "xeon", "platform to serve (see `hetmemd platforms`)")
		forceBench = fs.Bool("force-bench", false, "benchmark attributes even when the firmware has an HMAT")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv, err := buildServer(*platName, *forceBench, out)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "hetmemd: listening on http://%s\n", ln.Addr())
	return http.Serve(ln, srv.Handler())
}

func runLoadtest(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hetmemd loadtest", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "daemon base URL, e.g. http://127.0.0.1:7077 (empty: boot one in-process)")
		platName = fs.String("p", "xeon", "platform for the in-process daemon")
		clients  = fs.Int("clients", 8, "concurrent client goroutines")
		requests = fs.Int("requests", 100, "operations per client")
		maxLive  = fs.Int("live", 8, "max live leases per client")
		maxSize  = fs.Uint64("maxsize", 64<<20, "max allocation size in bytes")
		seed     = fs.Int64("seed", 1, "traffic mix seed")
		verify   = fs.Bool("verify", true, "cross-check /metrics against the lease table afterwards")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	base := *addr
	if base == "" {
		var stop func()
		var err error
		base, stop, err = startServer("127.0.0.1:0", *platName, false, out)
		if err != nil {
			return err
		}
		defer stop()
	}

	stats, err := server.LoadTest(base, server.LoadOptions{
		Clients:           *clients,
		RequestsPerClient: *requests,
		MaxLive:           *maxLive,
		MaxSizeBytes:      *maxSize,
		Seed:              *seed,
	})
	fmt.Fprintf(out, "hetmemd: loadtest %s\n", stats)
	if err != nil {
		return err
	}
	if *verify {
		desc, err := server.VerifyConsistency(base)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "hetmemd: books %s\n", desc)
	}
	return nil
}
