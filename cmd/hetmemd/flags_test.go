package main

// Startup validation of the lease-lifecycle and checkpoint flags: bad
// combinations must be rejected before platform discovery, with the
// flag names in the error.

import (
	"io"
	"strings"
	"testing"
	"time"

	"hetmem/internal/cluster"
	"hetmem/internal/server"
)

func TestServeFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"ttl-without-reaper", []string{"serve", "-lease-ttl", "30s"}, "-reap-interval"},
		{"reaper-slower-than-ttl", []string{"serve", "-lease-ttl", "10s", "-reap-interval", "30s"}, "must not exceed"},
		{"checkpoint-without-journal", []string{"serve", "-checkpoint-every", "1m"}, "-journal"},
		{"checkpoint-bytes-without-journal", []string{"serve", "-checkpoint-bytes", "1048576"}, "-journal"},
		{"negative-ttl", []string{"serve", "-lease-ttl", "-5s", "-reap-interval", "1s"}, "negative"},
		{"tenants-file-missing", []string{"serve", "-tenants", "/nonexistent/tenants.json"}, "-tenants"},
		{"negative-queue-depth", []string{"serve", "-queue-depth", "-1"}, "-queue-depth"},
		{"queue-timeout-without-queue", []string{"serve", "-queue-timeout", "1s"}, "-queue-depth"},
		{"negative-queue-timeout", []string{"serve", "-queue-depth", "4", "-queue-timeout", "-1s"}, "negative"},
		{"headroom-out-of-range", []string{"serve", "-shed", "0.8", "-guaranteed-headroom", "1.5"}, "-guaranteed-headroom"},
		{"headroom-without-watermark", []string{"serve", "-shed", "0", "-guaranteed-headroom", "0.2"}, "-shed"},
	} {
		err := run(tc.args, io.Discard)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Sane combinations pass the front-run validation (checked directly
	// so the test does not boot a daemon).
	for _, cfg := range []server.Config{
		{},
		{DefaultLeaseTTL: 30 * time.Second, ReapInterval: 5 * time.Second},
		{JournalPath: "wal", CheckpointEvery: time.Minute, CheckpointMaxWAL: 1 << 20},
		{JournalPath: "wal", SyncEveryAppend: true, CheckpointMaxWAL: 8 << 10},
		{ShedWatermark: 0.7, GuaranteedHeadroom: 0.25, QueueDepth: 32, QueueTimeout: time.Second},
		{ShedWatermark: 0.9, QueueDepth: 8},
	} {
		if err := validateServeConfig(cfg); err != nil {
			t.Errorf("config %+v rejected: %v", cfg, err)
		}
	}
}

func TestRouterFlagValidation(t *testing.T) {
	member := []string{"-member", "m0=http://127.0.0.1:1"}
	for _, tc := range []struct {
		name string
		args []string
		want string // substring of the error
	}{
		{"no-members", []string{"router"}, "-member"},
		{"malformed-member", []string{"router", "-member", "no-equals-sign"}, "name=url"},
		{"zero-probe-timeout", append([]string{"router", "-probe-timeout", "0s"}, member...), "-probe-timeout"},
		{"negative-evac-timeout", append([]string{"router", "-evac-timeout", "-1s"}, member...), "-evac-timeout"},
		{"zero-forward-timeout", append([]string{"router", "-forward-timeout", "0s"}, member...), "-forward-timeout"},
		{"negative-scrub-interval", append([]string{"router", "-scrub-interval", "-1s"}, member...), "-scrub-interval"},
		{"scrub-faster-than-probe", append([]string{"router", "-scrub-interval", "1s", "-probe-timeout", "5s"}, member...), "-scrub-interval"},
		{"zero-poll-interval", append([]string{"router", "-poll-interval", "0s"}, member...), "-poll-interval"},
		{"zero-offline-after", append([]string{"router", "-offline-after", "0"}, member...), "-offline-after"},
	} {
		err := run(tc.args, io.Discard)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Sane router configs pass the front-run validation.
	for _, cfg := range []cluster.Config{
		{PollInterval: time.Second, OfflineAfter: 2, ProbeTimeout: 2 * time.Second, EvacTimeout: 10 * time.Second, ForwardTimeout: 10 * time.Second},
		{PollInterval: time.Second, OfflineAfter: 2, ProbeTimeout: time.Second, EvacTimeout: time.Second, ForwardTimeout: time.Second, ScrubInterval: 30 * time.Second, ScrubBudgetBytes: 1 << 20},
	} {
		if err := validateRouterConfig(cfg); err != nil {
			t.Errorf("config %+v rejected: %v", cfg, err)
		}
	}
}
