package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run("", false, true, "", "", "", false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRenderAndMemattrs(t *testing.T) {
	if err := run("xeon-snc2", true, false, "", "", "", false, true); err != nil {
		t.Fatal(err)
	}
	if err := run("knl-snc4-flat", false, false, "", "", "", true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownPlatform(t *testing.T) {
	if err := run("bogus", false, false, "", "", "", false, false); err == nil {
		t.Fatal("unknown platform should fail")
	}
}

func TestRunExportImportBothFormats(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"topo.json", "topo.xml"} {
		path := filepath.Join(dir, name)
		if err := run("fictitious", false, false, path, "", "", false, false); err != nil {
			t.Fatal(err)
		}
		if st, err := os.Stat(path); err != nil || st.Size() == 0 {
			t.Fatalf("export %s: %v", name, err)
		}
		if err := run("", false, false, "", path, "", false, false); err != nil {
			t.Fatalf("import %s: %v", name, err)
		}
	}
	if err := run("", false, false, "", filepath.Join(dir, "missing"), "", false, false); err == nil {
		t.Fatal("missing import file should fail")
	}
}

func TestRunSynthetic(t *testing.T) {
	desc := "package:1 core:2 pu:1 mem:package:DRAM:8GiB"
	if err := run("", true, false, "", "", desc, true, true); err != nil {
		t.Fatal(err)
	}
	if err := run("", false, false, "", "", "package:0", false, false); err == nil {
		t.Fatal("bad synthetic description should fail")
	}
}
