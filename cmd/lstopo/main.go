// Command lstopo renders simulated platform topologies the way
// hwloc's lstopo does, including the --memattrs report of memory
// performance attributes (paper Figures 1, 2, 3 and 5).
//
// Usage:
//
//	lstopo -p xeon-snc2              # tree view
//	lstopo -p xeon-snc2 --memattrs   # attribute report (Figure 5)
//	lstopo -p knl-snc4-flat -export topo.json
//	lstopo -import topo.json
//	lstopo -list                     # available platforms
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetmem/internal/core"
	"hetmem/internal/lstopo"
	"hetmem/internal/memattr"
	"hetmem/internal/platform"
	"hetmem/internal/topology"
)

func main() {
	var (
		platName   = flag.String("p", "xeon", "platform name (see -list)")
		memattrs   = flag.Bool("memattrs", false, "print memory attributes after discovery (HMAT or benchmarking)")
		list       = flag.Bool("list", false, "list available platforms")
		exportPath = flag.String("export", "", "export the topology to this file (.xml for XML, else JSON)")
		importPath = flag.String("import", "", "render a topology previously exported (JSON or XML, auto-detected)")
		synthetic  = flag.String("synthetic", "", `build a synthetic platform instead of a predefined one, e.g. "package:2 core:8 pu:1 mem:package:DRAM:96GiB:bw=100:lat=85"`)
		boxes      = flag.Bool("boxes", false, "draw nested boxes like graphical lstopo instead of the indented tree")
		distances  = flag.Bool("distances", false, "print the numactl-style latency distance matrix after discovery")
	)
	flag.Parse()

	if err := run(*platName, *memattrs, *list, *exportPath, *importPath, *synthetic, *boxes, *distances); err != nil {
		fmt.Fprintln(os.Stderr, "lstopo:", err)
		os.Exit(1)
	}
}

func run(platName string, memattrs, list bool, exportPath, importPath, synthetic string, boxes, distances bool) error {
	if list {
		for _, n := range platform.Names() {
			p, err := platform.Get(n)
			if err != nil {
				return err
			}
			fmt.Printf("%-20s %s\n", n, p.Description)
		}
		return nil
	}
	if importPath != "" {
		data, err := os.ReadFile(importPath)
		if err != nil {
			return err
		}
		var topo *topology.Topology
		if topology.DetectFormat(data) == "xml" {
			topo, err = topology.ImportXML(data)
		} else {
			topo, err = topology.Import(data)
		}
		if err != nil {
			return err
		}
		fmt.Print(renderTopo(topo, boxes))
		return nil
	}

	var p *platform.Platform
	var err error
	if synthetic != "" {
		p, err = platform.FromSynthetic("synthetic", synthetic)
	} else {
		p, err = platform.Get(platName)
	}
	if err != nil {
		return err
	}
	if exportPath != "" {
		var data []byte
		if strings.HasSuffix(exportPath, ".xml") {
			data, err = topology.ExportXML(p.Topo)
		} else {
			data, err = topology.Export(p.Topo)
		}
		if err != nil {
			return err
		}
		return os.WriteFile(exportPath, data, 0o644)
	}
	fmt.Print(renderTopo(p.Topo, boxes))
	if memattrs || distances {
		sys, err := core.NewSystemFromPlatform(p, core.Options{})
		if err != nil {
			return err
		}
		if memattrs {
			fmt.Printf("\nMemory attributes (source: %s)\n", sys.Source)
			fmt.Print(lstopo.RenderMemAttrs(sys.Registry))
		}
		if distances {
			d, err := sys.Registry.DistanceMatrix(memattr.Latency)
			if err != nil {
				return err
			}
			fmt.Println()
			fmt.Print(d.Render(true))
		}
	}
	return nil
}

func renderTopo(t *topology.Topology, boxes bool) string {
	if boxes {
		return lstopo.RenderBoxes(t)
	}
	return lstopo.Render(t)
}
