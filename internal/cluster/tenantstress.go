package cluster

// The multi-tenant QoS acceptance harness behind `hetmemd
// tenantstress`: a 4-member journaled cluster with per-member tenant
// configs, a greedy best-effort tenant ("noise") saturating the fleet
// to the shed watermark, and a guaranteed tenant ("gold") whose
// latency and leases must not care. The run then restarts a member
// with its journal intact, drives the poller and the anti-entropy
// scrubber back to convergence, and proves three invariants:
//
//   - isolation: gold's alloc p99 under full noise saturation stays
//     within 2x its unloaded baseline (floored, so CI scheduler noise
//     cannot fail a healthy run), and every gold alloc succeeds;
//   - zero lost leases: every gold lease granted during the run still
//     renews after the restart and the scrub — none shed, none
//     evicted, none lost in evacuation;
//   - books: per-tenant byte accounting is consistent on the router
//     and on every member, after restart and scrub.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetmem/internal/server"
)

// TenantStressOptions configures one isolation run.
type TenantStressOptions struct {
	// JournalDir holds the member and router journals plus the
	// generated tenants config (required).
	JournalDir string
	// NoiseClients is how many greedy best-effort goroutines hammer
	// the fleet (default 8).
	NoiseClients int
	// NoiseMaxAllocs caps each noise client's allocations, a backstop
	// against a fleet too large to saturate (default 400).
	NoiseMaxAllocs int
	// NoiseSizeBytes is the noise allocation size (default 64 MiB).
	NoiseSizeBytes uint64
	// GoldAllocs is the guaranteed tenant's probe count per phase
	// (default 100).
	GoldAllocs int
	// GoldSizeBytes is the guaranteed probe size (default 8 MiB).
	GoldSizeBytes uint64
	// BaselineFloor is the minimum baseline p99 the 2x bar is computed
	// from, absorbing scheduler noise on shared runners (default 25ms).
	BaselineFloor time.Duration
	// Platforms overrides the member platform mix (default
	// tenantStressPlatforms).
	Platforms []string
}

// tenantStressPlatforms is the default member mix: small synthetic
// machines, because the scenario needs a fleet a greedy tenant can
// actually saturate (the real testbeds are multi-TB — noise would hit
// its alloc cap long before any watermark). Two mixed-kind members
// whose HBM-plus-quota capacity crosses the shed watermark, so sheds
// and burstable queue timeouts engage there, and two DRAM-only
// members where the noise DRAM quota binds below the watermark, so
// quota_exceeded engages there. One run exercises every degradation
// path.
var tenantStressPlatforms = []string{
	"synthetic:package:1 core:2 pu:2 mem:package:DRAM:6GiB:bw=90:lat=85 mem:package:HBM:8GiB:bw=200:lat=110",
	"synthetic:package:1 core:2 pu:2 mem:package:DRAM:6GiB:bw=90:lat=85",
	"synthetic:package:1 core:2 pu:2 mem:package:DRAM:6GiB:bw=90:lat=85 mem:package:HBM:8GiB:bw=200:lat=110",
	"synthetic:package:1 core:2 pu:2 mem:package:DRAM:6GiB:bw=90:lat=85",
}

func (o TenantStressOptions) withDefaults() TenantStressOptions {
	if o.NoiseClients <= 0 {
		o.NoiseClients = 8
	}
	if o.NoiseMaxAllocs <= 0 {
		o.NoiseMaxAllocs = 400
	}
	if o.NoiseSizeBytes == 0 {
		o.NoiseSizeBytes = 64 << 20
	}
	if o.GoldAllocs <= 0 {
		o.GoldAllocs = 100
	}
	if o.GoldSizeBytes == 0 {
		o.GoldSizeBytes = 8 << 20
	}
	if o.BaselineFloor <= 0 {
		o.BaselineFloor = 25 * time.Millisecond
	}
	if len(o.Platforms) == 0 {
		o.Platforms = tenantStressPlatforms
	}
	return o
}

// TenantStressReport is the run's JSON artifact.
type TenantStressReport struct {
	BaselineP99Ms float64 `json:"gold_baseline_p99_ms"`
	LoadedP99Ms   float64 `json:"gold_loaded_p99_ms"`
	// P99Bar is the pass bar: 2x the floored baseline.
	P99BarMs float64 `json:"gold_p99_bar_ms"`

	GoldAllocs    int    `json:"gold_allocs"`
	GoldLeases    int    `json:"gold_leases"`
	GoldLost      int    `json:"gold_lost_leases"`
	GoldSheds     uint64 `json:"gold_sheds"`
	GoldEvictions uint64 `json:"gold_evictions"`

	NoiseAllocs       uint64 `json:"noise_allocs"`
	NoiseSheds        uint64 `json:"noise_sheds"`
	NoiseQuotaRejects uint64 `json:"noise_quota_rejects"`

	SilverProbes        int `json:"silver_probes"`
	SilverQueueTimeouts int `json:"silver_queue_timeouts"`

	RestartedMember string        `json:"restarted_member"`
	Scrubs          []ScrubReport `json:"scrubs"`
	ConvergedAfter  int           `json:"converged_after_cycles"`

	RouterBooks string            `json:"router_books"`
	MemberBooks map[string]string `json:"member_books"`
}

// tenantStressConfig is the tenants file every member loads: gold is
// guaranteed, noise is best-effort with a per-member DRAM quota, and
// anything else — the silver queue probes — defaults to burstable.
// The 3 GiB quota is sized against tenantStressPlatforms: on a
// mixed member (6 DRAM + 8 HBM) the watermark at 0.70 x 14 GiB =
// 9.8 GiB is reachable through HBM plus 1.8 GiB of quota, so noise
// sheds there; on a DRAM-only member (6 GiB) the quota binds below
// the 4.2 GiB watermark, so noise gets quota_exceeded there.
const tenantStressConfig = `{
  "default_class": "burstable",
  "tenants": {
    "gold":  {"class": "guaranteed"},
    "noise": {"class": "best-effort", "quotas": {"DRAM": 3221225472}}
  }
}
`

// p99 returns the 99th-percentile of the samples (the max for small
// sets), in milliseconds.
func p99(samples []time.Duration) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (99*len(sorted) + 99) / 100
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return float64(sorted[idx-1]) / float64(time.Millisecond)
}

// goldProbe runs one phase of guaranteed-tenant allocations and
// returns the per-alloc latencies and granted lease IDs. Every alloc
// must succeed: a guaranteed tenant never sheds while the fleet has
// headroom, loaded or not.
func goldProbe(ctx context.Context, cl *server.Client, phase string, count int, size uint64) ([]time.Duration, []uint64, error) {
	lat := make([]time.Duration, 0, count)
	leases := make([]uint64, 0, count)
	for i := 0; i < count; i++ {
		start := time.Now()
		resp, err := cl.Alloc(ctx, server.AllocRequest{
			Name:       fmt.Sprintf("gold-%s-%d", phase, i),
			Size:       size,
			Attr:       "Capacity",
			Partial:    true,
			Remote:     true,
			TTLSeconds: 600,
		})
		if err != nil {
			return lat, leases, fmt.Errorf("cluster: gold alloc %d (%s phase) failed: %w", i, phase, err)
		}
		lat = append(lat, time.Since(start))
		leases = append(leases, resp.Lease)
	}
	return lat, leases, nil
}

// TenantStress runs the isolation scenario and returns its report.
func TenantStress(ctx context.Context, opts TenantStressOptions, out io.Writer) (TenantStressReport, error) {
	if out == nil {
		out = io.Discard
	}
	opts = opts.withDefaults()
	rep := TenantStressReport{MemberBooks: make(map[string]string)}
	if opts.JournalDir == "" {
		return rep, errors.New("cluster: tenantstress needs a journal dir")
	}
	tenantsPath := filepath.Join(opts.JournalDir, "tenants.json")
	if err := os.WriteFile(tenantsPath, []byte(tenantStressConfig), 0o644); err != nil {
		return rep, err
	}

	memberCfg := server.Config{
		JournalPath:        filepath.Join(opts.JournalDir, "member"),
		TenantsPath:        tenantsPath,
		ShedWatermark:      0.70,
		GuaranteedHeadroom: 0.25,
		QueueDepth:         32,
		QueueTimeout:       300 * time.Millisecond,
	}
	routerCfg := Config{
		JournalPath:    filepath.Join(opts.JournalDir, "router"),
		PollInterval:   50 * time.Millisecond,
		OfflineAfter:   2,
		MemberRetry:    &server.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		ProbeTimeout:   500 * time.Millisecond,
		EvacTimeout:    2 * time.Second,
		ForwardTimeout: 2 * time.Second,
	}
	sim, err := StartSim(SimOptions{
		Platforms: opts.Platforms,
		Member:    memberCfg,
		Router:    routerCfg,
		Out:       out,
	})
	if err != nil {
		return rep, err
	}
	defer sim.Close()

	gold := server.NewClient(sim.Base, server.WithTenant("gold"),
		server.WithRetryPolicy(server.NoRetry), server.WithoutHeartbeat())
	defer gold.Close()

	// Phase 1: unloaded baseline.
	baseLat, baseLeases, err := goldProbe(ctx, gold, "base", opts.GoldAllocs, opts.GoldSizeBytes)
	if err != nil {
		return rep, err
	}
	rep.BaselineP99Ms = p99(baseLat)
	fmt.Fprintf(out, "hetmemd: gold baseline p99 %.2fms over %d allocs\n", rep.BaselineP99Ms, len(baseLat))

	// Phase 2: the noise tenant saturates the fleet. Each client
	// allocates greedily and holds every lease; the fleet counts as
	// saturated once enough consecutive allocs shed fleet-wide.
	var noiseAllocs, noiseSheds, noiseQuota atomic.Uint64
	var consecFails atomic.Int64
	saturated := make(chan struct{})
	var satOnce sync.Once
	stopNoise := make(chan struct{})
	var noiseWG sync.WaitGroup
	satThreshold := int64(2 * opts.NoiseClients)
	for c := 0; c < opts.NoiseClients; c++ {
		noiseWG.Add(1)
		go func(id int) {
			defer noiseWG.Done()
			cl := server.NewClient(sim.Base, server.WithTenant("noise"),
				server.WithRetryPolicy(server.NoRetry), server.WithoutHeartbeat())
			defer cl.Close()
			for i := 0; i < opts.NoiseMaxAllocs; i++ {
				select {
				case <-stopNoise:
					return
				case <-ctx.Done():
					return
				default:
				}
				_, err := cl.Alloc(ctx, server.AllocRequest{
					Name:    fmt.Sprintf("noise-%d-%d", id, i),
					Size:    opts.NoiseSizeBytes,
					Attr:    "Bandwidth",
					Partial: true,
					Remote:  true,
				})
				if err == nil {
					noiseAllocs.Add(1)
					consecFails.Store(0)
					continue
				}
				switch {
				case errors.Is(err, server.ErrShedding), errors.Is(err, server.ErrQueueTimeout):
					noiseSheds.Add(1)
				case errors.Is(err, server.ErrQuotaExceeded):
					noiseQuota.Add(1)
				case errors.Is(err, server.ErrCapacityExhausted):
					// A member's machine filled before its watermark
					// tripped; counts toward saturation all the same.
				default:
					// Unexpected failure mode: not fatal for a greedy
					// best-effort client, but don't let it count as
					// saturation.
					continue
				}
				if consecFails.Add(1) >= satThreshold {
					satOnce.Do(func() { close(saturated) })
				}
			}
			// This client hit its cap without the fleet saturating; do
			// not hold the gold phase hostage.
			satOnce.Do(func() { close(saturated) })
		}(c)
	}
	select {
	case <-saturated:
	case <-ctx.Done():
		close(stopNoise)
		noiseWG.Wait()
		return rep, ctx.Err()
	}
	fmt.Fprintf(out, "hetmemd: fleet saturated after %d noise allocs (%d sheds, %d quota rejects so far)\n",
		noiseAllocs.Load(), noiseSheds.Load(), noiseQuota.Load())

	// Phase 3: gold probes again, under full saturation — noise keeps
	// hammering the whole time. A burstable "silver" tenant pokes the
	// admission queue alongside, aimed straight at a saturated member:
	// through the router the probe would just fall back to a member
	// with headroom (correct fleet behaviour, but it never shows the
	// queue), while the member-level view is where burstable admission
	// queues behind the watermark and times out.
	var silverTimeouts int
	silverProbes := 6
	silverDone := make(chan struct{})
	go func() {
		defer close(silverDone)
		silver := server.NewClient(sim.Members[0].URL, server.WithTenant("silver"),
			server.WithRetryPolicy(server.NoRetry), server.WithoutHeartbeat())
		defer silver.Close()
		for i := 0; i < silverProbes; i++ {
			// Outlives the members' 300ms queue timeout, so the recorded
			// failure is the server's queue_timeout envelope rather than
			// a client-side deadline.
			sctx, cancel := context.WithTimeout(ctx, 400*time.Millisecond)
			_, err := silver.Alloc(sctx, server.AllocRequest{
				Name: fmt.Sprintf("silver-%d", i), Size: opts.NoiseSizeBytes,
				Attr: "Capacity", Partial: true, Remote: true,
			})
			cancel()
			if errors.Is(err, server.ErrQueueTimeout) {
				silverTimeouts++
			}
		}
	}()
	loadLat, loadLeases, goldErr := goldProbe(ctx, gold, "loaded", opts.GoldAllocs, opts.GoldSizeBytes)
	<-silverDone
	close(stopNoise)
	noiseWG.Wait()
	if goldErr != nil {
		return rep, goldErr
	}
	rep.LoadedP99Ms = p99(loadLat)
	rep.P99BarMs = 2 * max(rep.BaselineP99Ms, float64(opts.BaselineFloor)/float64(time.Millisecond))
	rep.GoldAllocs = len(baseLat) + len(loadLat)
	rep.NoiseAllocs = noiseAllocs.Load()
	rep.NoiseSheds = noiseSheds.Load()
	rep.NoiseQuotaRejects = noiseQuota.Load()
	rep.SilverProbes = silverProbes
	rep.SilverQueueTimeouts = silverTimeouts
	fmt.Fprintf(out, "hetmemd: gold loaded p99 %.2fms (bar %.2fms); noise: %d allocs, %d sheds, %d quota rejects; silver: %d/%d queue timeouts\n",
		rep.LoadedP99Ms, rep.P99BarMs, rep.NoiseAllocs, rep.NoiseSheds, rep.NoiseQuotaRejects, silverTimeouts, silverProbes)
	if rep.LoadedP99Ms > rep.P99BarMs {
		return rep, fmt.Errorf("cluster: gold p99 %.2fms under load exceeds the %.2fms bar (baseline %.2fms)",
			rep.LoadedP99Ms, rep.P99BarMs, rep.BaselineP99Ms)
	}
	// Saturation must have been real: the member mix is sized so the
	// watermark sheds best-effort on the mixed members and the DRAM
	// quota rejects it on the DRAM-only ones. A run where either count
	// is zero proved nothing about that degradation path.
	if rep.NoiseSheds == 0 {
		return rep, errors.New("cluster: fleet saturated without a single best-effort shed — the watermark never engaged")
	}
	if rep.NoiseQuotaRejects == 0 {
		return rep, errors.New("cluster: noise never hit its DRAM quota — the quota_exceeded path never engaged")
	}
	if rep.SilverQueueTimeouts == 0 {
		return rep, errors.New("cluster: no silver probe timed out in the queue — burstable admission never queued")
	}

	// Phase 4: restart a member with its journal intact. Its leases
	// replay locally; the router evacuates its view of them to the
	// survivors (gold moves under its guaranteed headroom), and the
	// scrubber reclaims the replayed duplicates as orphans.
	victim := 0
	rep.RestartedMember = sim.Members[victim].Name
	if err := sim.Restart(victim, false); err != nil {
		return rep, err
	}
	fmt.Fprintf(out, "hetmemd: restarted member %s (journal intact)\n", rep.RestartedMember)
	healthDeadline := time.Now().Add(30 * time.Second)
	for {
		sim.Router.PollOnce(ctx)
		h, err := sim.Router.Health(ctx)
		if err != nil {
			return rep, err
		}
		if h.Status == "ok" {
			break
		}
		if time.Now().After(healthDeadline) {
			return rep, fmt.Errorf("cluster: fleet not healthy 30s after the restart: %+v", h.Nodes)
		}
		select {
		case <-ctx.Done():
			return rep, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	const maxScrub = 6
	for cycle := 1; cycle <= maxScrub; cycle++ {
		sim.Router.PollOnce(ctx)
		sr, err := sim.Router.ScrubOnce(ctx)
		if err != nil {
			return rep, err
		}
		rep.Scrubs = append(rep.Scrubs, sr)
		fmt.Fprintf(out, "hetmemd: scrub cycle %d: %d orphans freed (%d suspects), %d lost repaired (%d failed), %d drift alarms\n",
			cycle, sr.OrphansFreed, sr.OrphanSuspects, sr.LostRepaired, sr.LostFailed, sr.DriftAlarms)
		if sr.Clean() {
			rep.ConvergedAfter = cycle
			break
		}
	}
	if rep.ConvergedAfter == 0 {
		return rep, fmt.Errorf("cluster: scrubber did not converge in %d cycles", maxScrub)
	}

	// Phase 5: the invariants. Every gold lease must still renew —
	// zero lost across saturation, restart, evacuation, and scrub.
	goldLeases := append(append([]uint64(nil), baseLeases...), loadLeases...)
	rep.GoldLeases = len(goldLeases)
	for _, id := range goldLeases {
		if _, err := gold.Renew(ctx, id, 0); err != nil {
			rep.GoldLost++
			fmt.Fprintf(out, "hetmemd: gold lease %d lost: %v\n", id, err)
		}
	}
	if rep.GoldLost > 0 {
		return rep, fmt.Errorf("cluster: %d of %d gold leases lost", rep.GoldLost, rep.GoldLeases)
	}

	// Gold was never shed or evicted, on any member. The restarted
	// member's counters reset to zero, which cannot hide a violation —
	// the zero we assert is the same zero.
	for _, m := range sim.Members {
		cl := server.NewClient(m.URL, server.WithoutHeartbeat())
		metrics, err := cl.Metrics(ctx)
		cl.Close()
		if err != nil {
			return rep, fmt.Errorf("cluster: member %s metrics: %w", m.Name, err)
		}
		rep.GoldSheds += uint64(server.SumSeriesPrefix(metrics, `hetmemd_tenant_sheds_total{tenant="gold"`))
		rep.GoldEvictions += uint64(server.SumSeriesPrefix(metrics, `hetmemd_tenant_evictions_total{tenant="gold"`))
	}
	if rep.GoldSheds > 0 || rep.GoldEvictions > 0 {
		return rep, fmt.Errorf("cluster: guaranteed tenant saw %d sheds and %d evictions — isolation broken",
			rep.GoldSheds, rep.GoldEvictions)
	}

	// Phase 6: per-tenant books, router and members.
	desc, err := server.VerifyConsistency(ctx, sim.Base)
	if err != nil {
		return rep, fmt.Errorf("cluster: router books: %w", err)
	}
	rep.RouterBooks = desc
	for _, m := range sim.Members {
		desc, err := server.VerifyConsistency(ctx, m.URL)
		if err != nil {
			return rep, fmt.Errorf("cluster: member %s books: %w", m.Name, err)
		}
		rep.MemberBooks[m.Name] = desc
	}
	fmt.Fprintf(out, "hetmemd: router books %s\n", rep.RouterBooks)
	return rep, nil
}

// WriteTenantStressReport writes the run artifact as indented JSON.
func WriteTenantStressReport(rep TenantStressReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
