package cluster

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"hetmem/internal/core"
	"hetmem/internal/server"
)

// The cluster acceptance benchmark: the same keyed alloc+free round
// trip measured against a single daemon and against the router
// fronting the member fleet, so BENCH_cluster.json records what the
// extra hop costs (and what the fleet buys in aggregate capacity).

// BenchOptions configures RunBench.
type BenchOptions struct {
	// Platforms is the member mix (default DefaultSimPlatforms); the
	// single-daemon baseline runs the first platform.
	Platforms []string
	// Clients is the number of concurrent benchmark clients.
	Clients int
	// Requests is the alloc+free round trips per client.
	Requests int
	// SizeBytes is the bytes per allocation.
	SizeBytes uint64
}

// BenchReport is the BENCH_cluster.json artifact.
type BenchReport struct {
	Benchmark string               `json:"benchmark"` // "cluster_router"
	Members   []string             `json:"members"`
	Clients   int                  `json:"clients"`
	Requests  int                  `json:"requests"`
	Results   []server.BenchResult `json:"results"`
	// RouterOverhead is router p50 latency over single-daemon p50 —
	// the per-request price of the extra hop.
	RouterOverhead float64 `json:"router_overhead,omitempty"`
}

// RunBench measures the router path against the single-daemon
// baseline.
func RunBench(ctx context.Context, opts BenchOptions, out io.Writer) (BenchReport, error) {
	if out == nil {
		out = io.Discard
	}
	platforms := opts.Platforms
	if len(platforms) == 0 {
		platforms = DefaultSimPlatforms
	}
	if opts.Clients <= 0 {
		opts.Clients = 32
	}
	if opts.Requests <= 0 {
		opts.Requests = 200
	}
	if opts.SizeBytes == 0 {
		opts.SizeBytes = 1 << 20
	}
	report := BenchReport{
		Benchmark: "cluster_router",
		Members:   platforms,
		Clients:   opts.Clients,
		Requests:  opts.Requests,
	}

	// Baseline: one daemon, direct.
	sys, err := core.NewSystem(platforms[0], core.Options{})
	if err != nil {
		return report, err
	}
	srv, err := server.NewWithConfig(sys, server.Config{})
	if err != nil {
		return report, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return report, err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go hs.Serve(ln)
	single, err := benchRun(ctx, "single_daemon", "http://"+ln.Addr().String(), opts)
	hs.Close()
	ln.Close()
	srv.Close()
	if err != nil {
		return report, err
	}
	report.Results = append(report.Results, single)
	fmt.Fprintf(out, "hetmemd: bench %s\n", single)

	// Router: the same load through the federation.
	sim, err := StartSim(SimOptions{Platforms: platforms, Out: out})
	if err != nil {
		return report, err
	}
	routed, err := benchRun(ctx, fmt.Sprintf("router_%d_members", len(platforms)), sim.Base, opts)
	sim.Close()
	if err != nil {
		return report, err
	}
	report.Results = append(report.Results, routed)
	fmt.Fprintf(out, "hetmemd: bench %s\n", routed)

	if single.P50Micros > 0 {
		report.RouterOverhead = routed.P50Micros / single.P50Micros
	}
	return report, nil
}

// benchRun drives Clients goroutines of keyed alloc+free round trips
// against base and reports client-observed latency percentiles.
func benchRun(ctx context.Context, name, base string, opts BenchOptions) (server.BenchResult, error) {
	res := server.BenchResult{Name: name, Clients: opts.Clients}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		latsByC  = make([][]float64, opts.Clients)
		firstErr error
	)
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := server.NewClient(base, server.WithoutHeartbeat())
			defer cl.Close()
			lats := make([]float64, 0, opts.Requests)
			for i := 0; i < opts.Requests; i++ {
				req := server.AllocRequest{
					Name: fmt.Sprintf("bench-%d-%d", c, i),
					Size: opts.SizeBytes,
					Attr: "Bandwidth",
				}
				t0 := time.Now()
				resp, err := cl.Alloc(ctx, req)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("cluster bench %s: alloc: %w", name, err)
					}
					mu.Unlock()
					return
				}
				lats = append(lats, float64(time.Since(t0).Microseconds()))
				if err := cl.Free(ctx, resp.Lease); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("cluster bench %s: free: %w", name, err)
					}
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			latsByC[c] = lats
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}
	res.Seconds = time.Since(start).Seconds()
	var all []float64
	for _, lats := range latsByC {
		all = append(all, lats...)
	}
	res.Allocs = len(all)
	if res.Seconds > 0 {
		res.AllocsPerSec = float64(res.Allocs) / res.Seconds
	}
	sort.Float64s(all)
	res.P50Micros = percentile(all, 0.50)
	res.P99Micros = percentile(all, 0.99)
	return res, nil
}

// percentile reads the p-quantile of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
