package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetmem/internal/journal"
	"hetmem/internal/server"
	"hetmem/internal/tenant"
	"hetmem/internal/topology"
	"hetmem/internal/wire"
)

// Config describes the cluster a Router fronts.
type Config struct {
	// Members are the daemons behind the router. Order defines each
	// member's slot index — the NodeOS field of the router's journal
	// records — so a journaled router must keep member order stable
	// across restarts (renames and reorders strand restored leases).
	Members []MemberSpec
	// JournalPath enables the router's own write-ahead lease journal:
	// the routerLease -> (member, member lease) mapping survives router
	// restarts. Empty disables durability.
	JournalPath string
	// SyncEveryAppend fsyncs the router journal after every record.
	SyncEveryAppend bool
	// PollInterval is the member health-poll period (default 500ms).
	PollInterval time.Duration
	// OfflineAfter is how many consecutive failed polls mark a member
	// offline and start evacuating its leases (default 2).
	OfflineAfter int
	// RetryAfterSeconds is the Retry-After hint on the router's 503
	// responses (default 1).
	RetryAfterSeconds int
	// MemberRetry overrides the retry policy of the member-facing
	// clients (nil: server.DefaultRetry). Tests tighten it so a dead
	// member fails fast.
	MemberRetry *server.RetryPolicy
	// ProbeTimeout bounds each member health probe (default 2s).
	ProbeTimeout time.Duration
	// EvacTimeout bounds each evacuation alloc on a target member
	// (default 10s); pending-free drains use half of it.
	EvacTimeout time.Duration
	// ForwardTimeout is the per-call deadline ceiling on forwarded
	// member requests when the inbound request carries no deadline of
	// its own (default 10s). An inbound context deadline always
	// propagates; this is the backstop, replacing the old blanket 30s
	// http.Client timeout.
	ForwardTimeout time.Duration
	// MaxInFlightPerMember bounds concurrent forwarded data-plane
	// calls per member; excess requests fail fast with the retryable
	// member_unavailable instead of piling up goroutines behind a slow
	// or partitioned member (default 256; negative disables).
	MaxInFlightPerMember int
	// HedgeDelay is how long a fan-out read (attrs/topology rollups,
	// scrubber lease listings) waits before hedging a second attempt
	// at the same member, so one slow link no longer stalls the whole
	// response (default 150ms; negative disables hedging).
	HedgeDelay time.Duration
	// ScrubInterval enables the anti-entropy scrubber: every interval
	// the router diffs its lease books against each member's /v1/leases
	// and repairs divergence (0: disabled).
	ScrubInterval time.Duration
	// ScrubBudgetBytes bounds the bytes re-placed per scrub cycle, so
	// a repair storm cannot starve live traffic (0: 256 MiB).
	ScrubBudgetBytes uint64
}

// Config defaults, exported so flags and docs quote one source of
// truth.
const (
	DefaultProbeTimeout         = 2 * time.Second
	DefaultEvacTimeout          = 10 * time.Second
	DefaultForwardTimeout       = 10 * time.Second
	DefaultMaxInFlightPerMember = 256
	DefaultHedgeDelay           = 150 * time.Millisecond
	DefaultScrubBudgetBytes     = 256 << 20
)

// withDefaults fills the zero values of the tuning knobs.
func (cfg Config) withDefaults() Config {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.OfflineAfter <= 0 {
		cfg.OfflineAfter = 2
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.EvacTimeout <= 0 {
		cfg.EvacTimeout = DefaultEvacTimeout
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = DefaultForwardTimeout
	}
	if cfg.MaxInFlightPerMember == 0 {
		cfg.MaxInFlightPerMember = DefaultMaxInFlightPerMember
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = DefaultHedgeDelay
	}
	if cfg.ScrubBudgetBytes == 0 {
		cfg.ScrubBudgetBytes = DefaultScrubBudgetBytes
	}
	return cfg
}

// rlease is one routed lease: the router-scoped lease ID the client
// holds, and the (member slot, member-local lease) pair it currently
// maps to. The triple is exactly what the router journals.
type rlease struct {
	id          uint64
	slot        int
	memberLease uint64

	// The original request, kept so evacuation can re-place the buffer
	// on a survivor with the same constraints.
	name      string
	attr      string
	initiator string
	key       string // client idempotency key, "" if none
	size      uint64
	ttlMillis uint64
	// tenant owns the lease for quota and priority purposes; it follows
	// the lease through journal replay, evacuation, and scrub repair.
	tenant string

	// resp is the response the client saw, replayed verbatim on
	// idempotent retries.
	resp server.AllocResponse
}

// Router shards the lease keyspace over a fleet of hetmemd daemons
// with rendezvous hashing and presents the single-daemon /v1 API
// unchanged: it implements server.Backend, so server.NewAPI gives it
// the same routes, error envelope, and request metrics as a daemon.
// Every client-visible lease ID is router-scoped; the mapping to the
// owning member's lease is journaled, and when a member dies the
// router re-homes its leases onto survivors (evacuate.go).
type Router struct {
	cfg        Config
	members    []*member
	byName     map[string]*member
	instanceID string
	api        *server.API

	mu        sync.Mutex
	leases    map[uint64]*rlease
	idem      map[string]uint64 // client idempotency key -> router lease
	nextLease uint64
	store     *journal.Store // nil without -journal

	// Cluster-level counters surfaced in the /metrics rollup.
	idemReplays      atomic.Uint64
	forwardErrors    atomic.Uint64
	migrations       atomic.Uint64
	migrationsFailed atomic.Uint64
	evacuations      atomic.Uint64

	// Anti-entropy scrubber state (scrub.go). scrubMu serializes
	// cycles; orphanSuspects carries first-sighting orphans between
	// consecutive cycles so an in-flight alloc is never mistaken for
	// an orphan.
	scrubMu        sync.Mutex
	orphanSuspects map[orphanKey]string // -> member instance ID at first sighting
	scrubCycles    atomic.Uint64
	scrubOrphans   atomic.Uint64
	scrubLost      atomic.Uint64
	scrubDrift     atomic.Uint64
	scrubFailures  atomic.Uint64

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a Router over the configured members, replaying its
// journal (if any) into the lease map, and starts the health poller.
// Close stops the poller, compacts the journal, and closes the member
// clients.
func New(cfg Config) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, errors.New("cluster: no members configured")
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:            cfg,
		byName:         make(map[string]*member, len(cfg.Members)),
		instanceID:     server.NewInstanceID(),
		leases:         make(map[uint64]*rlease),
		idem:           make(map[string]uint64),
		nextLease:      1,
		orphanSuspects: make(map[orphanKey]string),
		stopCh:         make(chan struct{}),
	}
	for i, spec := range cfg.Members {
		if spec.Name == "" || spec.URL == "" {
			return nil, fmt.Errorf("cluster: member %d needs both name and url", i)
		}
		if _, dup := r.byName[spec.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate member name %q", spec.Name)
		}
		// Member attempts are bounded by the forward timeout, not the
		// old blanket 30s: a member that accepts and goes silent (an
		// asymmetric partition) costs one forward timeout per attempt.
		opts := []server.ClientOption{
			server.WithoutHeartbeat(),
			server.WithAttemptTimeout(cfg.ForwardTimeout),
		}
		if cfg.MemberRetry != nil {
			opts = append(opts, server.WithRetryPolicy(*cfg.MemberRetry))
		}
		m := &member{name: spec.Name, url: spec.URL, slot: i, cl: server.NewClient(spec.URL, opts...)}
		if cfg.MaxInFlightPerMember > 0 {
			m.sem = make(chan struct{}, cfg.MaxInFlightPerMember)
		}
		r.members = append(r.members, m)
		r.byName[spec.Name] = m
	}
	if cfg.JournalPath != "" {
		st, restored, err := journal.OpenStore(cfg.JournalPath, nil)
		if err != nil {
			return nil, fmt.Errorf("cluster: journal: %w", err)
		}
		r.store = st
		r.replay(restored)
	}
	r.api = server.NewAPI(r, server.APIOptions{RetryAfterSeconds: cfg.RetryAfterSeconds})

	r.wg.Add(1)
	go r.pollLoop()
	if cfg.ScrubInterval > 0 {
		r.wg.Add(1)
		go r.scrubLoop()
	}
	return r, nil
}

// replay folds the journal history back into the lease map. Records
// pointing at slots outside the current membership (the cluster
// shrank across a restart) are dropped — their members are gone, and
// keeping them would route requests nowhere.
func (r *Router) replay(restored journal.Restored) {
	for _, rec := range restored.Records {
		switch rec.Op {
		case journal.OpAlloc:
			if len(rec.Segments) != 1 || rec.Segments[0].NodeOS < 0 || rec.Segments[0].NodeOS >= len(r.members) {
				continue
			}
			rl := &rlease{
				id:          rec.Lease,
				slot:        rec.Segments[0].NodeOS,
				memberLease: rec.Segments[0].Bytes,
				name:        rec.Name,
				attr:        rec.Attr,
				initiator:   rec.Initiator,
				key:         rec.Key,
				size:        rec.Size,
				ttlMillis:   rec.TTLMillis,
				tenant:      rec.Tenant,
			}
			if rl.tenant == "" {
				rl.tenant = tenant.Default // pre-tenancy journal record
			}
			// The member-reported placement string is not journaled;
			// after a restart the replayed response names the member.
			rl.resp = server.AllocResponse{
				Lease:      rec.Lease,
				Placement:  r.members[rl.slot].name,
				AttrUsed:   rec.Attr,
				TTLSeconds: float64(rec.TTLMillis) / 1000,
			}
			r.leases[rec.Lease] = rl
			if rec.Key != "" {
				r.idem[rec.Key] = rec.Lease
			}
			if rec.Lease >= r.nextLease {
				r.nextLease = rec.Lease + 1
			}
		case journal.OpMigrate:
			rl, ok := r.leases[rec.Lease]
			if !ok || len(rec.Segments) != 1 || rec.Segments[0].NodeOS < 0 || rec.Segments[0].NodeOS >= len(r.members) {
				continue
			}
			rl.slot = rec.Segments[0].NodeOS
			rl.memberLease = rec.Segments[0].Bytes
			rl.resp.Placement = r.members[rl.slot].name
		case journal.OpFree:
			if rl, ok := r.leases[rec.Lease]; ok {
				if rl.key != "" {
					delete(r.idem, rl.key)
				}
				delete(r.leases, rec.Lease)
			}
		}
	}
	if restored.NextLease > r.nextLease {
		r.nextLease = restored.NextLease
	}
}

// appendLocked journals one record. Caller holds r.mu — the lock
// orders journal appends with map mutations, the same
// journal-before-visible discipline the daemon uses.
func (r *Router) appendLocked(rec journal.Record) error {
	if r.store == nil {
		return nil
	}
	if err := r.store.Append(rec); err != nil {
		return fmt.Errorf("cluster: journal append: %w", err)
	}
	if r.cfg.SyncEveryAppend {
		if err := r.store.Sync(); err != nil {
			return fmt.Errorf("cluster: journal sync: %w", err)
		}
	}
	return nil
}

// Handler returns the router's HTTP surface: the full /v1 API plus
// the deprecated legacy aliases, identical to a daemon's.
func (r *Router) Handler() http.Handler { return r.api.Handler() }

// WireHandler returns the router's binary-protocol dispatcher, so a
// federation front-end serves the wire ops (-uds/-tcp-bin) through
// the same placement paths as its HTTP surface. Lease-detail answers
// 404 here, matching the router's HTTP mux, which has no per-lease
// detail route.
func (r *Router) WireHandler() wire.Handler { return r.api.WireHandler() }

// Metrics returns the router's live request metrics.
func (r *Router) Metrics() *server.Metrics { return r.api.Metrics() }

// InstanceID returns the router's per-boot instance ID.
func (r *Router) InstanceID() string { return r.instanceID }

// LeaseCount returns the live routed-lease count.
func (r *Router) LeaseCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.leases)
}

// Close stops the poller, checkpoints and closes the journal, and
// closes the member clients.
func (r *Router) Close() error {
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.wg.Wait()
	var firstErr error
	if r.store != nil {
		if err := r.Checkpoint(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := r.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, m := range r.members {
		m.cl.Close()
	}
	return firstErr
}

// Checkpoint compacts the router journal to a snapshot of the live
// lease map.
func (r *Router) Checkpoint() error {
	if r.store == nil {
		return nil
	}
	return r.store.Checkpoint(func() ([]journal.Record, uint64, error) {
		r.mu.Lock()
		defer r.mu.Unlock()
		recs := make([]journal.Record, 0, len(r.leases))
		for _, rl := range r.leases {
			recs = append(recs, allocRecord(rl))
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].Lease < recs[j].Lease })
		return recs, r.nextLease, nil
	})
}

func allocRecord(rl *rlease) journal.Record {
	return journal.Record{
		Op:        journal.OpAlloc,
		Lease:     rl.id,
		Name:      rl.name,
		Attr:      rl.attr,
		Initiator: rl.initiator,
		Key:       rl.key,
		Size:      rl.size,
		Tenant:    rl.tenant,
		TTLMillis: rl.ttlMillis,
		Segments:  []journal.Segment{{NodeOS: rl.slot, Bytes: rl.memberLease}},
	}
}

// requestTenant resolves the tenant a routed request runs as: the
// X-Hetmem-Tenant header (stamped into the context by the shared API
// plumbing), else the default tenant.
func requestTenant(ctx context.Context) string {
	if t := server.TenantFromContext(ctx); t != "" {
		return t
	}
	return tenant.Default
}

// pollLoop drives the membership view: each tick polls every member,
// evacuates the ones that died or restarted, and drains queued frees
// on the ones that recovered.
func (r *Router) pollLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-t.C:
			r.PollOnce(context.Background())
		}
	}
}

// PollOnce runs one health sweep over all members. Exported so tests
// (and the sim harness) can advance the membership view without
// waiting for the ticker.
func (r *Router) PollOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range r.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			wentOffline, restarted, _ := m.poll(ctx, r.cfg.OfflineAfter, r.cfg.ProbeTimeout)
			state, _, _ := m.snapshotState()
			if wentOffline || restarted || state == memberOffline {
				// Evacuate on the transition AND on every later tick while
				// leases remain stranded: an evacuation that failed for
				// capacity retries until the fleet has room. A restarted
				// member gets no source frees — its new instance may
				// reissue the old lease IDs (see evacuateMember).
				r.evacuateMember(ctx, m, !restarted)
			}
			if state != memberOffline && m.pendingFreeDepth() > 0 {
				r.drainPendingFrees(ctx, m)
			}
		}(m)
	}
	wg.Wait()
}

// eligible returns the members that may receive new placements:
// healthy ones, or — when nothing is healthy — degraded ones, so a
// uniformly-degraded fleet keeps serving rather than failing every
// request. Offline members are never eligible.
func (r *Router) eligible() []*member {
	var healthy, degraded []*member
	for _, m := range r.members {
		switch state, _, _ := m.snapshotState(); state {
		case memberHealthy:
			healthy = append(healthy, m)
		case memberDegraded:
			degraded = append(degraded, m)
		}
	}
	if len(healthy) > 0 {
		return healthy
	}
	return degraded
}

// routingKey is the rendezvous input for an allocation: the
// idempotency key when the client set one (so a retried request
// re-routes identically even if the name repeats across buffers),
// else the buffer name.
func routingKey(req server.AllocRequest) string {
	if req.IdempotencyKey != "" {
		return req.IdempotencyKey
	}
	return req.Name
}

// routeKey picks the owning member for a key among the currently
// eligible members.
func (r *Router) routeKey(key string) (*member, error) {
	elig := r.eligible()
	if len(elig) == 0 {
		return nil, fmt.Errorf("%w: no reachable members", server.ErrMemberUnavailable)
	}
	names := make([]string, len(elig))
	for i, m := range elig {
		names[i] = m.name
	}
	return elig[pick(key, names)], nil
}

// forwardCtx derives the context a forwarded member call runs under:
// the inbound deadline when the client set one (deadline propagation
// hop by hop), else the configured forward-timeout backstop so no
// member call can outlive the router's patience.
func (r *Router) forwardCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, r.cfg.ForwardTimeout)
}

// acquire claims an in-flight slot on m for one data-plane forward.
// A member already at its in-flight bound fails fast with the
// retryable member_unavailable — overload becomes a 503 the client
// can back off on, not a goroutine pileup behind a slow link.
func (r *Router) acquire(m *member) (release func(), err error) {
	if m.sem == nil {
		return func() {}, nil
	}
	select {
	case m.sem <- struct{}{}:
		return func() { <-m.sem }, nil
	default:
		m.overloads.Add(1)
		return nil, fmt.Errorf("%w: member %s over in-flight limit %d",
			server.ErrMemberUnavailable, m.name, cap(m.sem))
	}
}

// forwardErr shapes a member-call failure for the client: a member's
// own API error passes through verbatim (it already carries the right
// v1 code), while transport-level failures become the retryable
// member_unavailable — the poller will notice the member shortly and
// re-home its keys.
func (r *Router) forwardErr(m *member, err error) error {
	var apiErr *server.APIError
	if errors.As(err, &apiErr) {
		return err
	}
	r.forwardErrors.Add(1)
	return fmt.Errorf("%w: member %s: %v", server.ErrMemberUnavailable, m.name, err)
}

// errNoLease is the router's 404: shaped as an APIError so the shared
// error envelope passes it through with the daemon's exact code.
func errNoLease(id uint64) error {
	return &server.APIError{
		StatusCode: http.StatusNotFound,
		Code:       server.CodeLeaseExpired,
		Message:    fmt.Sprintf("cluster: no such lease %d", id),
	}
}

// ---- server.Backend ----

// Alloc routes the request to the owning member, forwards it with the
// client's idempotency key intact, then journals the mapping before
// making it visible. If the router crashes between the member's grant
// and the journal append, the client's retry (same key) re-forwards
// to the same member, which replays the same lease — nothing is
// allocated twice, and the retry's append lands the mapping.
func (r *Router) Alloc(ctx context.Context, req server.AllocRequest) (server.AllocResponse, error) {
	if req.IdempotencyKey != "" {
		r.mu.Lock()
		if id, ok := r.idem[req.IdempotencyKey]; ok {
			resp := r.leases[id].resp
			r.mu.Unlock()
			r.idemReplays.Add(1)
			return resp, nil
		}
		r.mu.Unlock()
	}
	m, err := r.routeKey(routingKey(req))
	if err != nil {
		return server.AllocResponse{}, err
	}
	release, err := r.acquire(m)
	if err != nil {
		return server.AllocResponse{}, err
	}
	fctx, cancel := r.forwardCtx(ctx)
	mresp, err := m.cl.Alloc(fctx, req)
	cancel()
	release()
	if err != nil {
		return server.AllocResponse{}, r.forwardErr(m, err)
	}
	return r.commitAlloc(ctx, m, req, mresp)
}

// commitAlloc registers a member grant under a fresh router lease ID:
// journal first, map second. On a journal failure the member-side
// lease is freed so nothing leaks.
func (r *Router) commitAlloc(ctx context.Context, m *member, req server.AllocRequest, mresp server.AllocResponse) (server.AllocResponse, error) {
	r.mu.Lock()
	if req.IdempotencyKey != "" {
		if id, ok := r.idem[req.IdempotencyKey]; ok {
			// A concurrent duplicate won the race. Same key, same member
			// (rendezvous is deterministic), same member lease (the member
			// deduped) — return the winner's response, free nothing.
			resp := r.leases[id].resp
			r.mu.Unlock()
			r.idemReplays.Add(1)
			return resp, nil
		}
	}
	id := r.nextLease
	r.nextLease++
	rl := &rlease{
		id:          id,
		slot:        m.slot,
		memberLease: mresp.Lease,
		name:        req.Name,
		attr:        req.Attr,
		initiator:   req.Initiator,
		key:         req.IdempotencyKey,
		size:        req.Size,
		ttlMillis:   uint64(mresp.TTLSeconds * 1000),
		tenant:      requestTenant(ctx),
	}
	resp := mresp
	resp.Lease = id
	resp.Placement = m.name + "/" + mresp.Placement
	rl.resp = resp
	if err := r.appendLocked(allocRecord(rl)); err != nil {
		r.mu.Unlock()
		if ferr := m.cl.Free(context.WithoutCancel(ctx), mresp.Lease); ferr != nil {
			m.queueFree(mresp.Lease)
		}
		return server.AllocResponse{}, err
	}
	r.leases[id] = rl
	if rl.key != "" {
		r.idem[rl.key] = id
	}
	r.mu.Unlock()
	return resp, nil
}

// AllocBatch splits the batch by owning member, forwards the
// per-member sub-batches concurrently, and reassembles the outcomes
// in request order. Items whose member cannot be reached fail with
// the retryable member_unavailable envelope; sibling items are
// unaffected.
func (r *Router) AllocBatch(ctx context.Context, reqs []server.AllocRequest) (server.BatchAllocResponse, error) {
	out := server.BatchAllocResponse{Results: make([]server.BatchAllocItem, len(reqs))}
	groups := make(map[*member][]int)
	for i, req := range reqs {
		m, err := r.routeKey(routingKey(req))
		if err != nil {
			out.Results[i] = errItem(r, err)
			continue
		}
		groups[m] = append(groups[m], i)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex // guards out.Results slots across member goroutines
	for m, idxs := range groups {
		wg.Add(1)
		go func(m *member, idxs []int) {
			defer wg.Done()
			sub := make([]server.AllocRequest, len(idxs))
			for j, i := range idxs {
				sub[j] = reqs[i]
			}
			var mresp server.BatchAllocResponse
			release, err := r.acquire(m)
			if err == nil {
				fctx, cancel := r.forwardCtx(ctx)
				mresp, err = m.cl.AllocBatch(fctx, sub)
				cancel()
				release()
			}
			if err != nil || len(mresp.Results) != len(idxs) {
				if err == nil {
					err = fmt.Errorf("%w: member %s returned %d results for %d items",
						server.ErrMemberUnavailable, m.name, len(mresp.Results), len(idxs))
				}
				item := errItem(r, r.forwardErr(m, err))
				mu.Lock()
				for _, i := range idxs {
					out.Results[i] = item
				}
				mu.Unlock()
				return
			}
			for j, i := range idxs {
				item := mresp.Results[j]
				if item.Error != nil {
					mu.Lock()
					out.Results[i] = item
					mu.Unlock()
					continue
				}
				resp, err := r.commitAlloc(ctx, m, reqs[i], *item.Alloc)
				mu.Lock()
				if err != nil {
					out.Results[i] = errItem(r, err)
				} else {
					out.Results[i] = server.BatchAllocItem{Alloc: &resp}
				}
				mu.Unlock()
			}
		}(m, idxs)
	}
	wg.Wait()
	for _, item := range out.Results {
		if item.Alloc != nil {
			out.Succeeded++
		} else {
			out.Failed++
		}
	}
	return out, nil
}

// errItem shapes an error as a batch item outcome using the shared
// envelope rules (APIError passthrough included).
func errItem(r *Router, err error) server.BatchAllocItem {
	body := server.ErrorBodyFor(err, r.cfg.RetryAfterSeconds)
	return server.BatchAllocItem{Error: &body}
}

// Free removes the routed lease first (journal, then map — a free
// acked to the client stays freed across a router crash), then
// releases the member-side lease. An unreachable member gets the free
// queued and drained when it returns; a member that already dropped
// the lease (reaper, evacuation race) is already done.
func (r *Router) Free(ctx context.Context, req server.FreeRequest) (server.FreeResponse, error) {
	r.mu.Lock()
	rl, ok := r.leases[req.Lease]
	if !ok {
		r.mu.Unlock()
		return server.FreeResponse{}, errNoLease(req.Lease)
	}
	if err := r.appendLocked(journal.Record{Op: journal.OpFree, Lease: req.Lease}); err != nil {
		r.mu.Unlock()
		return server.FreeResponse{}, err
	}
	delete(r.leases, req.Lease)
	if rl.key != "" {
		delete(r.idem, rl.key)
	}
	m, memberLease := r.members[rl.slot], rl.memberLease
	r.mu.Unlock()

	release, err := r.acquire(m)
	if err != nil {
		// Member over its in-flight bound: the routed lease is already
		// gone, so park the member-side free for the poller's drain
		// instead of failing an already-committed operation.
		m.queueFree(memberLease)
		return server.FreeResponse{Lease: req.Lease, Freed: true}, nil
	}
	fctx, cancel := r.forwardCtx(ctx)
	err = m.cl.Free(fctx, memberLease)
	cancel()
	release()
	if err != nil && !errors.Is(err, server.ErrLeaseExpired) {
		m.queueFree(memberLease)
	}
	return server.FreeResponse{Lease: req.Lease, Freed: true}, nil
}

// Renew forwards the heartbeat to the owning member. A member that no
// longer knows the lease (its reaper won) retires the routed lease
// too, so the client's next call sees the same lease_expired a single
// daemon would give.
func (r *Router) Renew(ctx context.Context, req server.RenewRequest) (server.RenewResponse, error) {
	r.mu.Lock()
	rl, ok := r.leases[req.Lease]
	if !ok {
		r.mu.Unlock()
		return server.RenewResponse{}, errNoLease(req.Lease)
	}
	m, memberLease := r.members[rl.slot], rl.memberLease
	r.mu.Unlock()

	release, err := r.acquire(m)
	if err != nil {
		return server.RenewResponse{}, err
	}
	ttl := time.Duration(req.TTLSeconds * float64(time.Second))
	fctx, cancel := r.forwardCtx(ctx)
	mresp, err := m.cl.Renew(fctx, memberLease, ttl)
	cancel()
	release()
	if err != nil {
		if errors.Is(err, server.ErrLeaseExpired) {
			r.dropLease(req.Lease, rl.slot, memberLease)
		}
		return server.RenewResponse{}, r.forwardErr(m, err)
	}
	return server.RenewResponse{Lease: req.Lease, TTLSeconds: mresp.TTLSeconds}, nil
}

// dropLease retires a routed lease whose member-side lease is gone,
// if it still maps to that exact (slot, member lease) pair — an
// evacuation may have re-homed it concurrently, in which case it
// stays.
func (r *Router) dropLease(id uint64, slot int, memberLease uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rl, ok := r.leases[id]
	if !ok || rl.slot != slot || rl.memberLease != memberLease {
		return
	}
	if err := r.appendLocked(journal.Record{Op: journal.OpFree, Lease: id}); err != nil {
		return // keep the stale entry; the next touch retries the drop
	}
	delete(r.leases, id)
	if rl.key != "" {
		delete(r.idem, rl.key)
	}
}

// Migrate forwards the re-placement to the owning member (the buffer
// stays on that machine; cross-member moves happen only on member
// failure, via evacuation).
func (r *Router) Migrate(ctx context.Context, req server.MigrateRequest) (server.MigrateResponse, error) {
	r.mu.Lock()
	rl, ok := r.leases[req.Lease]
	if !ok {
		r.mu.Unlock()
		return server.MigrateResponse{}, errNoLease(req.Lease)
	}
	m, memberLease, slot := r.members[rl.slot], rl.memberLease, rl.slot
	r.mu.Unlock()

	fwd := req
	fwd.Lease = memberLease
	release, err := r.acquire(m)
	if err != nil {
		return server.MigrateResponse{}, err
	}
	fctx, cancel := r.forwardCtx(ctx)
	mresp, err := m.cl.Migrate(fctx, fwd)
	cancel()
	release()
	if err != nil {
		if errors.Is(err, server.ErrLeaseExpired) {
			r.dropLease(req.Lease, slot, memberLease)
		}
		return server.MigrateResponse{}, r.forwardErr(m, err)
	}
	r.mu.Lock()
	if cur, ok := r.leases[req.Lease]; ok && cur.slot == slot && cur.memberLease == memberLease {
		cur.attr = req.Attr
		cur.resp.Placement = m.name + "/" + mresp.Placement
	}
	r.mu.Unlock()
	return server.MigrateResponse{
		Lease:       req.Lease,
		Placement:   m.name + "/" + mresp.Placement,
		Rank:        mresp.Rank,
		CostSeconds: mresp.CostSeconds,
	}, nil
}

// Leases summarizes the routed lease table; NodeBytes is keyed by
// member name, so the cluster-wide books cross-check against the
// /metrics rollup exactly like a daemon's.
func (r *Router) Leases(ctx context.Context, list bool) (server.LeasesResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	resp := server.LeasesResponse{
		NodeBytes:   make(map[string]uint64, len(r.members)),
		TenantBytes: make(map[string]uint64),
	}
	for _, rl := range r.leases {
		resp.Count++
		resp.Bytes += rl.size
		resp.NodeBytes[r.members[rl.slot].name] += rl.size
		resp.TenantBytes[rl.tenant] += rl.size
		if list {
			resp.Leases = append(resp.Leases, server.LeaseInfo{
				Lease: rl.id, Name: rl.name, Size: rl.size, Placement: rl.resp.Placement,
				Tenant: rl.tenant,
			})
		}
	}
	if list {
		sort.Slice(resp.Leases, func(i, j int) bool { return resp.Leases[i].Lease < resp.Leases[j].Lease })
	}
	return resp, nil
}

// Health reports the cluster view: one row per member daemon (state
// from the last poll, with the member's instance ID), overall status
// "ok" only when every member is healthy, and pressure as the mean of
// the members' last-reported pressures.
func (r *Router) Health(ctx context.Context) (server.HealthResponse, error) {
	resp := server.HealthResponse{Status: "ok", InstanceID: r.instanceID}
	if r.store != nil {
		resp.Journal = r.store.Base()
	}
	var pressure float64
	for _, m := range r.members {
		row := m.healthRow()
		resp.Nodes = append(resp.Nodes, row)
		if row.State != "healthy" {
			resp.Status = "degraded"
		}
		_, _, p := m.snapshotState()
		pressure += p
	}
	resp.Pressure = pressure / float64(len(r.members))
	return resp, nil
}

// TopologyJSON aggregates the member topologies into one document:
// the member list with state, and each reachable member's full
// topology under its name.
func (r *Router) TopologyJSON(ctx context.Context) ([]byte, error) {
	type memberTopo struct {
		Name     string             `json:"name"`
		URL      string             `json:"url"`
		State    string             `json:"state"`
		Topology *topology.Topology `json:"topology,omitempty"`
		Error    string             `json:"error,omitempty"`
	}
	out := struct {
		Cluster bool         `json:"cluster"`
		Members []memberTopo `json:"members"`
	}{Cluster: true, Members: make([]memberTopo, len(r.members))}

	var wg sync.WaitGroup
	for i, m := range r.members {
		state, _, _ := m.snapshotState()
		out.Members[i] = memberTopo{Name: m.name, URL: m.url, State: memberStateName(state)}
		if state == memberOffline {
			out.Members[i].Error = "member offline"
			continue
		}
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			topo, err := hedged(ctx, r.cfg.HedgeDelay, func(ctx context.Context) (*topology.Topology, error) {
				return m.cl.Topology(ctx)
			})
			if err != nil {
				out.Members[i].Error = err.Error()
				return
			}
			out.Members[i].Topology = topo
		}(i, m)
	}
	wg.Wait()
	return json.Marshal(out)
}

// Attrs merges the members' attribute dumps: one report per attribute
// name, each value's target prefixed with the member that owns it
// ("m0/MCDRAM#4").
func (r *Router) Attrs(ctx context.Context) ([]server.AttrReport, error) {
	type result struct {
		m       *member
		reports []server.AttrReport
	}
	results := make([]result, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		if state, _, _ := m.snapshotState(); state == memberOffline {
			continue
		}
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			reports, err := hedged(ctx, r.cfg.HedgeDelay, func(ctx context.Context) ([]server.AttrReport, error) {
				return m.cl.Attrs(ctx)
			})
			if err == nil {
				results[i] = result{m: m, reports: reports}
			}
		}(i, m)
	}
	wg.Wait()

	merged := make(map[string]*server.AttrReport)
	var order []string
	for _, res := range results {
		if res.m == nil {
			continue
		}
		for _, rep := range res.reports {
			dst, ok := merged[rep.Name]
			if !ok {
				dst = &server.AttrReport{Name: rep.Name, Flags: rep.Flags}
				merged[rep.Name] = dst
				order = append(order, rep.Name)
			}
			for _, v := range rep.Values {
				v.Target = res.m.name + "/" + v.Target
				dst.Values = append(dst.Values, v)
			}
		}
	}
	out := make([]server.AttrReport, 0, len(order))
	for _, name := range order {
		out = append(out, *merged[name])
	}
	return out, nil
}

// WriteMetrics renders the cluster rollup: the router's own identity
// and per-member gauges (state, pressure, queued frees), the
// migration counters, then the standard daemon series — request
// counts and forwarded-latency histograms from the shared metrics
// plumbing, per-member bytes-in-use as the node gauges, and the live
// routed-lease count — so the single-daemon consistency checks and
// dashboards work against the router unchanged.
func (r *Router) WriteMetrics(ctx context.Context, w io.Writer) error {
	fmt.Fprintf(w, "hetmemd_instance_info{instance_id=%q} 1\n", r.instanceID)
	fmt.Fprintf(w, "hetmemd_cluster_members %d\n", len(r.members))
	fmt.Fprintf(w, "hetmemd_cluster_forward_errors_total %d\n", r.forwardErrors.Load())
	fmt.Fprintf(w, "hetmemd_cluster_migrations_total %d\n", r.migrations.Load())
	fmt.Fprintf(w, "hetmemd_cluster_migrations_failed_total %d\n", r.migrationsFailed.Load())
	fmt.Fprintf(w, "hetmemd_cluster_evacuations_total %d\n", r.evacuations.Load())
	fmt.Fprintf(w, "hetmemd_cluster_idempotent_replays_total %d\n", r.idemReplays.Load())
	fmt.Fprintf(w, "hetmemd_cluster_scrub_cycles_total %d\n", r.scrubCycles.Load())
	fmt.Fprintf(w, "hetmemd_cluster_scrub_failures_total %d\n", r.scrubFailures.Load())
	fmt.Fprintf(w, "hetmemd_cluster_scrub_repairs_total{kind=\"orphan\"} %d\n", r.scrubOrphans.Load())
	fmt.Fprintf(w, "hetmemd_cluster_scrub_repairs_total{kind=\"lost\"} %d\n", r.scrubLost.Load())
	fmt.Fprintf(w, "hetmemd_cluster_scrub_repairs_total{kind=\"drift\"} %d\n", r.scrubDrift.Load())

	r.mu.Lock()
	bytesBySlot := make([]uint64, len(r.members))
	tenantBytes := make(map[string]uint64)
	leaseCount := len(r.leases)
	for _, rl := range r.leases {
		bytesBySlot[rl.slot] += rl.size
		tenantBytes[rl.tenant] += rl.size
	}
	r.mu.Unlock()

	// Per-tenant rollup across the whole fleet, tenant label first so
	// the per-tenant consistency check prefix-matches it like the
	// members' own kind-split series.
	tenants := make([]string, 0, len(tenantBytes))
	for name := range tenantBytes {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		fmt.Fprintf(w, "hetmemd_tenant_bytes{tenant=%q} %d\n", name, tenantBytes[name])
	}

	nodes := make([]server.NodeUsage, len(r.members))
	for i, m := range r.members {
		state, id, pressure := m.snapshotState()
		fmt.Fprintf(w, "hetmemd_cluster_member_state{member=%q} %d\n", m.name, state)
		fmt.Fprintf(w, "hetmemd_cluster_member_pressure{member=%q} %g\n", m.name, pressure)
		fmt.Fprintf(w, "hetmemd_cluster_member_pending_free{member=%q} %d\n", m.name, m.pendingFreeDepth())
		fmt.Fprintf(w, "hetmemd_cluster_member_overload_total{member=%q} %d\n", m.name, m.overloads.Load())
		if id != "" {
			fmt.Fprintf(w, "hetmemd_cluster_member_info{member=%q,instance_id=%q} 1\n", m.name, id)
		}
		nodes[i] = server.NodeUsage{Node: m.name, InUse: bytesBySlot[i], Health: state}
	}
	_, err := io.WriteString(w, r.api.Metrics().Render(nodes, leaseCount))
	return err
}
