package cluster

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hetmem/internal/server"
)

// End-to-end router behavior over a real in-process cluster: the /v1
// surface a single daemon serves must work unchanged through the
// router, with member names showing up only in placements and the
// rollups.

func startTestSim(t *testing.T, opts SimOptions) *Sim {
	t.Helper()
	if len(opts.Platforms) == 0 {
		// Two small platforms keep boot fast; heterogeneity is the point.
		opts.Platforms = []string{"xeon", "fictitious"}
	}
	if opts.Router.PollInterval == 0 {
		opts.Router.PollInterval = 50 * time.Millisecond
	}
	if opts.Router.MemberRetry == nil {
		opts.Router.MemberRetry = &server.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	}
	sim, err := StartSim(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sim.Close)
	return sim
}

func TestRouterForwardsCoreOps(t *testing.T) {
	sim := startTestSim(t, SimOptions{})
	ctx := context.Background()
	cl := server.NewClient(sim.Base, server.WithoutHeartbeat())
	defer cl.Close()

	resp, err := cl.Alloc(ctx, server.AllocRequest{Name: "hot", Size: 64 << 20, Attr: "Bandwidth"})
	if err != nil {
		t.Fatalf("alloc through router: %v", err)
	}
	memberName, _, found := strings.Cut(resp.Placement, "/")
	if !found || !strings.HasPrefix(memberName, "m") {
		t.Fatalf("placement %q should be prefixed with the owning member", resp.Placement)
	}

	leases, err := cl.Leases(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if leases.Count != 1 || leases.Bytes != 64<<20 {
		t.Fatalf("leases rollup: count=%d bytes=%d, want 1 lease of %d", leases.Count, leases.Bytes, 64<<20)
	}
	if got := leases.NodeBytes[memberName]; got != 64<<20 {
		t.Fatalf("NodeBytes[%s]=%d, want %d", memberName, got, 64<<20)
	}

	if _, err := cl.Renew(ctx, resp.Lease, 30*time.Second); err != nil {
		t.Fatalf("renew through router: %v", err)
	}
	mig, err := cl.Migrate(ctx, server.MigrateRequest{Lease: resp.Lease, Attr: "Capacity"})
	if err != nil {
		t.Fatalf("migrate through router: %v", err)
	}
	if !strings.HasPrefix(mig.Placement, memberName+"/") {
		t.Fatalf("migrate placement %q left member %s (cross-member moves are evacuation-only)", mig.Placement, memberName)
	}
	if err := cl.Free(ctx, resp.Lease); err != nil {
		t.Fatalf("free through router: %v", err)
	}

	// The daemon's own consistency check must hold against the router:
	// /metrics node gauges vs /leases, member-name keyed.
	if desc, err := server.VerifyConsistency(ctx, sim.Base); err != nil {
		t.Fatalf("router books inconsistent: %v", err)
	} else if !strings.Contains(desc, "0 leases") {
		t.Fatalf("expected empty books after free, got %q", desc)
	}
}

func TestRouterIdempotentReplay(t *testing.T) {
	sim := startTestSim(t, SimOptions{})
	ctx := context.Background()
	req := server.AllocRequest{Name: "buf", Size: 1 << 20, Attr: "Bandwidth", IdempotencyKey: "key-1"}

	first, err := sim.Router.Alloc(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sim.Router.Alloc(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Lease != second.Lease || first.Placement != second.Placement {
		t.Fatalf("idempotent replay diverged: %+v vs %+v", first, second)
	}
	if n := sim.Router.LeaseCount(); n != 1 {
		t.Fatalf("replay allocated a second lease (count=%d)", n)
	}
}

func TestRouterBatchSplitsAcrossMembers(t *testing.T) {
	sim := startTestSim(t, SimOptions{})
	ctx := context.Background()
	cl := server.NewClient(sim.Base, server.WithoutHeartbeat())
	defer cl.Close()

	reqs := make([]server.AllocRequest, 32)
	for i := range reqs {
		reqs[i] = server.AllocRequest{Name: fmt.Sprintf("batch-%d", i), Size: 1 << 20, Attr: "Bandwidth"}
	}
	out, err := cl.AllocBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if out.Succeeded != len(reqs) || out.Failed != 0 {
		t.Fatalf("batch: %d ok %d failed, want all %d ok", out.Succeeded, out.Failed, len(reqs))
	}
	owners := map[string]int{}
	for i, item := range out.Results {
		if item.Alloc == nil {
			t.Fatalf("item %d missing alloc: %+v", i, item)
		}
		member, _, _ := strings.Cut(item.Alloc.Placement, "/")
		owners[member]++
	}
	if len(owners) < 2 {
		t.Fatalf("batch of %d landed on %d member(s) %v; rendezvous should split it", len(reqs), len(owners), owners)
	}
	leases, err := cl.Leases(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if leases.Count != len(reqs) {
		t.Fatalf("router tracks %d leases after batch of %d", leases.Count, len(reqs))
	}
}

func TestRouterHealthAndMetricsRollup(t *testing.T) {
	sim := startTestSim(t, SimOptions{})
	ctx := context.Background()
	sim.Router.PollOnce(ctx) // learn the members' instance IDs

	cl := server.NewClient(sim.Base, server.WithoutHeartbeat())
	defer cl.Close()
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthy cluster reports %q", h.Status)
	}
	if h.InstanceID == "" {
		t.Fatal("router health is missing its instance_id")
	}
	if len(h.Nodes) != len(sim.Members) {
		t.Fatalf("health rows: %d, want one per member (%d)", len(h.Nodes), len(sim.Members))
	}
	for _, row := range h.Nodes {
		if row.State != "healthy" {
			t.Fatalf("member %s reported %q", row.Node, row.State)
		}
		if row.InstanceID == "" {
			t.Fatalf("member %s row is missing the polled instance_id", row.Node)
		}
	}

	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := server.SumSeries(metrics, "hetmemd_cluster_members"); got != float64(len(sim.Members)) {
		t.Fatalf("hetmemd_cluster_members=%v, want %d", got, len(sim.Members))
	}
	for _, m := range sim.Members {
		key := fmt.Sprintf("hetmemd_cluster_member_state{member=%q}", m.Name)
		if v, ok := metrics[key]; !ok || v != 0 {
			t.Fatalf("%s=%v,%v; want healthy (0)", key, v, ok)
		}
	}
	// The forwarded-request latency histograms ride the standard series.
	if server.SumSeries(metrics, "hetmemd_requests_total") == 0 {
		t.Fatal("router /metrics has no request counters")
	}
}

func TestRouterErrorEnvelopePassthrough(t *testing.T) {
	sim := startTestSim(t, SimOptions{})
	ctx := context.Background()
	cl := server.NewClient(sim.Base, server.WithoutHeartbeat(), server.WithRetryPolicy(server.NoRetry))
	defer cl.Close()

	// Router-minted 404: unknown lease.
	err := cl.Free(ctx, 999999)
	if !errors.Is(err, server.ErrLeaseExpired) {
		t.Fatalf("free of unknown lease: %v, want lease_expired", err)
	}
	// Member-minted 400 passes through with the member's code intact.
	_, err = cl.Alloc(ctx, server.AllocRequest{Name: "bad", Size: 1, Attr: "NoSuchAttr"})
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != server.CodeBadRequest {
		t.Fatalf("member bad_request was laundered: %v", err)
	}
}

func TestRouterJournalRestart(t *testing.T) {
	dir := t.TempDir()
	sim := startTestSim(t, SimOptions{
		Router: Config{JournalPath: filepath.Join(dir, "router.wal")},
	})
	ctx := context.Background()

	var ids []uint64
	for i := 0; i < 8; i++ {
		resp, err := sim.Router.Alloc(ctx, server.AllocRequest{
			Name: fmt.Sprintf("durable-%d", i), Size: 1 << 20, Attr: "Bandwidth",
			IdempotencyKey: fmt.Sprintf("restart-key-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.Lease)
	}
	if err := sim.Router.Close(); err != nil {
		t.Fatalf("router close: %v", err)
	}

	specs := make([]MemberSpec, len(sim.Members))
	for i, m := range sim.Members {
		specs[i] = MemberSpec{Name: m.Name, URL: m.URL}
	}
	r2, err := New(Config{
		Members:     specs,
		JournalPath: filepath.Join(dir, "router.wal"),
		MemberRetry: &server.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.LeaseCount(); got != len(ids) {
		t.Fatalf("restarted router restored %d leases, want %d", got, len(ids))
	}
	// The restored mapping must still point at the real member leases:
	// a replayed idempotency key dedupes, and a free reaches the member.
	replay, err := r2.Alloc(ctx, server.AllocRequest{
		Name: "durable-0", Size: 1 << 20, Attr: "Bandwidth", IdempotencyKey: "restart-key-0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Lease != ids[0] {
		t.Fatalf("post-restart idempotent replay minted lease %d, want %d", replay.Lease, ids[0])
	}
	for _, id := range ids {
		if _, err := r2.Free(ctx, server.FreeRequest{Lease: id}); err != nil {
			t.Fatalf("free restored lease %d: %v", id, err)
		}
	}
	// Every member-side lease must be gone too: nothing leaked across
	// the restart.
	for _, m := range sim.Members {
		mcl := server.NewClient(m.URL, server.WithoutHeartbeat())
		ml, err := mcl.Leases(ctx, false)
		mcl.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ml.Count != 0 {
			t.Fatalf("member %s still holds %d leases after router frees", m.Name, ml.Count)
		}
	}
}
