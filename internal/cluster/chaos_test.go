package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"hetmem/internal/server"
)

// The cluster survival property: killing one member under full load
// loses nothing silently. Every lease either re-homes onto a survivor
// (evacuation) or the request touching it fails with a retryable v1
// error the client can act on. The test runs the standard loadtest
// mix against the router, hard-kills a member mid-run, then proves
// the books: the router's lease table, its /metrics, and the
// surviving members' own lease tables all agree, with nothing left on
// the corpse.

func TestChaosMemberKillNoLostLeases(t *testing.T) {
	sim := startTestSim(t, SimOptions{
		Platforms: []string{"xeon", "knl-snc4-flat", "fictitious", "xeon-snc2"},
		Router: Config{
			PollInterval: 50 * time.Millisecond,
			OfflineAfter: 2,
		},
	})
	ctx := context.Background()

	// Tolerate what a member death legitimately surfaces: the
	// retryable member_unavailable while the router re-homes keys, and
	// shedding/capacity under pressure. Anything else fails the run.
	tolerate := func(err error) bool {
		return errors.Is(err, server.ErrCodeMemberUnavailable) ||
			errors.Is(err, server.ErrShedding) ||
			errors.Is(err, server.ErrCapacityExhausted)
	}

	loadDone := make(chan struct{})
	var stats server.LoadStats
	var loadErr error
	go func() {
		defer close(loadDone)
		stats, loadErr = server.LoadTest(ctx, sim.Base, server.LoadOptions{
			Clients:           24,
			RequestsPerClient: 100,
			MaxLive:           4,
			MaxSizeBytes:      4 << 20,
			Seed:              7,
			Tolerate:          tolerate,
			Retry:             &server.RetryPolicy{MaxAttempts: 6, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond},
		})
	}()

	// Kill a member once the run is in full swing.
	time.Sleep(200 * time.Millisecond)
	const victim = 1
	select {
	case <-loadDone:
		t.Fatal("load finished before the kill; the run proves nothing — raise RequestsPerClient")
	default:
	}
	sim.Kill(victim)
	t.Logf("killed member m%d mid-load", victim)

	<-loadDone
	if loadErr != nil {
		t.Fatalf("loadtest against the router failed: %v (stats %s)", loadErr, stats)
	}
	t.Logf("load: %s", stats)

	// Let evacuation settle: every routed lease must leave the corpse.
	victimName := sim.Members[victim].Name
	deadline := time.Now().Add(15 * time.Second)
	var leases server.LeasesResponse
	for {
		sim.Router.PollOnce(ctx)
		var err error
		leases, err = sim.Router.Leases(ctx, true)
		if err != nil {
			t.Fatal(err)
		}
		if leases.NodeBytes[victimName] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d bytes still homed on killed member %s after 15s",
				leases.NodeBytes[victimName], victimName)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, l := range leases.Leases {
		if strings.HasPrefix(l.Placement, victimName+"/") || l.Placement == victimName {
			t.Fatalf("lease %d (%s) still placed on the corpse: %s", l.Lease, l.Name, l.Placement)
		}
	}

	// Zero lost leases: every lease the load generator believes alive
	// is in the router's table.
	if leases.Count != stats.LeasesLeft {
		t.Fatalf("router tracks %d leases, load generator left %d alive — %d lost or phantom",
			leases.Count, stats.LeasesLeft, stats.LeasesLeft-leases.Count)
	}

	// The books: router metrics vs router lease table (the daemon's
	// own consistency check, unchanged), and router-claimed bytes per
	// member vs what each survivor actually holds. Survivors may lag
	// by queued frees, so drain first via poll ticks.
	if _, err := server.VerifyConsistency(ctx, sim.Base); err != nil {
		t.Fatalf("router books inconsistent after member kill: %v", err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		sim.Router.PollOnce(ctx)
		mismatch := ""
		for i, m := range sim.Members {
			if i == victim {
				continue
			}
			mcl := server.NewClient(m.URL, server.WithoutHeartbeat())
			ml, err := mcl.Leases(ctx, false)
			mcl.Close()
			if err != nil {
				t.Fatalf("member %s leases: %v", m.Name, err)
			}
			if ml.Bytes != leases.NodeBytes[m.Name] {
				mismatch = fmt.Sprintf("member %s holds %d bytes, router claims %d",
					m.Name, ml.Bytes, leases.NodeBytes[m.Name])
				break
			}
		}
		if mismatch == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal(mismatch)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// And the failure must have been visible: a mid-run kill cannot be
	// entirely free under this much traffic.
	m, err := sim.Router.Leases(ctx, false)
	if err != nil || m.Count != stats.LeasesLeft {
		t.Fatalf("final recount diverged: %d vs %d (%v)", m.Count, stats.LeasesLeft, err)
	}
}
