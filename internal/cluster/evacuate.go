package cluster

import (
	"context"
	"errors"
	"fmt"

	"hetmem/internal/journal"
	"hetmem/internal/server"
)

// Cross-daemon migration. When a member goes offline (or comes back
// as a fresh instance that no longer holds its leases), the router
// re-homes every lease it owned: alloc-on-target with a deterministic
// idempotency key, journal the move, then free-on-source. The
// ordering makes the handoff crash-safe at every step:
//
//   - Router crashes after the target alloc but before the journal
//     append: the restarted router still maps the lease to the dead
//     source and evacuates again. The retry carries the SAME
//     idempotency key — derived from the routed lease and the exact
//     source (slot, member lease) pair it replaces — so the target
//     daemon replays the first grant instead of allocating a second
//     buffer.
//   - Router crashes after the journal append: replay lands the lease
//     on the target; the source copy is orphaned, which the queued
//     free (or the member's TTL reaper) reclaims.
//   - Free-on-source fails because the source is still down: the free
//     queues on the member and drains when it returns; if it never
//     returns, there is nothing to leak.

// evacKey derives the deterministic idempotency key for re-homing one
// lease off one source placement. Including the source pair means a
// SECOND evacuation of the same routed lease (its new home died too)
// gets a fresh key, as it must — the previous grant is gone with the
// previous target.
func evacKey(rl *rlease) string {
	return fmt.Sprintf("evac-%d-%d-%d", rl.id, rl.slot, rl.memberLease)
}

// evacuateMember re-homes every lease currently mapped to m onto the
// surviving members. Leases that cannot be moved yet (no survivor has
// room, or no survivor at all) stay mapped to the dead member —
// requests touching them fail with the retryable member_unavailable —
// and the next poll tick retries. tryMu keeps overlapping poll ticks
// from double-running a slow evacuation.
//
// freeSource controls whether the source copy gets a queued free. For
// an OFFLINE member the answer is yes: the same instance may come
// back still holding the lease, and its IDs stay valid. For a
// RESTARTED member the answer is NO — a reboot that wiped its journal
// reissues lease IDs from scratch, so a queued free of an old ID
// could land on a fresh, unrelated lease of the new instance. The
// anti-entropy scrubber reclaims whatever copies an intact-journal
// restart re-offered, as orphans, with the book re-checked first.
func (r *Router) evacuateMember(ctx context.Context, m *member, freeSource bool) {
	if !m.evacMu.TryLock() {
		return
	}
	defer m.evacMu.Unlock()

	r.mu.Lock()
	var stranded []rlease // copies: the fields evacuateLease needs
	for _, rl := range r.leases {
		if rl.slot == m.slot {
			stranded = append(stranded, *rl)
		}
	}
	r.mu.Unlock()
	if len(stranded) == 0 {
		return
	}
	r.evacuations.Add(1)
	for i := range stranded {
		if ctx.Err() != nil {
			return
		}
		if err := r.evacuateLease(ctx, &stranded[i], false, freeSource); err != nil {
			r.migrationsFailed.Add(1)
		} else {
			r.migrations.Add(1)
		}
	}
}

// evacuateLease moves one stranded lease to the best surviving
// member. snap is a copy of the lease taken when the evacuation
// started; the commit re-checks the live entry so a concurrent free
// (or an earlier evacuation) wins cleanly. allowSameSlot admits the
// source member as a target — the scrubber's lost-lease repair uses
// it, because there the member is alive and simply lost the lease
// (restart with a wiped journal), so re-placing on the same member is
// both legal and often the rendezvous-preferred answer.
func (r *Router) evacuateLease(ctx context.Context, snap *rlease, allowSameSlot, freeSource bool) error {
	elig := r.eligible()
	candidates := elig[:0:0]
	for _, m := range elig {
		if allowSameSlot || m.slot != snap.slot {
			candidates = append(candidates, m)
		}
	}
	if len(candidates) == 0 {
		return fmt.Errorf("%w: no survivor to evacuate lease %d to", server.ErrMemberUnavailable, snap.id)
	}
	names := make([]string, len(candidates))
	byName := make(map[string]*member, len(candidates))
	for i, m := range candidates {
		names[i] = m.name
		byName[m.name] = m
	}

	key := snap.key
	if key == "" {
		key = snap.name
	}
	req := server.AllocRequest{
		Name:           snap.name,
		Size:           snap.size,
		Attr:           snap.attr,
		Initiator:      snap.initiator,
		IdempotencyKey: evacKey(snap),
		TTLSeconds:     float64(snap.ttlMillis) / 1000,
	}

	// Walk the rendezvous ranking: the natural next-best owner first,
	// then the rest, so a full member does not strand the lease.
	// The re-placement runs as the lease's owning tenant — the target
	// member must book the bytes against the same quotas and class the
	// original grant did, or an evacuation would silently launder one
	// tenant's usage into another's.
	ctx = server.ContextWithTenant(ctx, snap.tenant)
	var lastErr error
	for _, name := range rank(key, names) {
		target := byName[name]
		actx, cancel := context.WithTimeout(ctx, r.cfg.EvacTimeout)
		mresp, err := target.cl.Alloc(actx, req)
		cancel()
		if err != nil {
			lastErr = err
			if errors.Is(err, server.ErrCapacityExhausted) {
				continue // next candidate may have room
			}
			continue
		}
		return r.commitEvacuation(ctx, snap, target, mresp, freeSource)
	}
	return fmt.Errorf("cluster: evacuate lease %d: %w", snap.id, lastErr)
}

// commitEvacuation journals the move and swings the live mapping, if
// the lease still maps to the source placement the evacuation
// started from. If not — freed, or already re-homed — the target copy
// just created is released (safe: the idempotency key that guarded
// creation is derived from a source pair that no longer exists, so
// no concurrent evacuation can be sharing this grant).
func (r *Router) commitEvacuation(ctx context.Context, snap *rlease, target *member, mresp server.AllocResponse, freeSource bool) error {
	r.mu.Lock()
	cur, ok := r.leases[snap.id]
	if !ok || cur.slot != snap.slot || cur.memberLease != snap.memberLease {
		alreadyThere := ok && cur.slot == target.slot && cur.memberLease == mresp.Lease
		r.mu.Unlock()
		if !alreadyThere {
			if err := target.cl.Free(context.WithoutCancel(ctx), mresp.Lease); err != nil && !errors.Is(err, server.ErrLeaseExpired) {
				target.queueFree(mresp.Lease)
			}
		}
		return nil
	}
	rec := journal.Record{
		Op:       journal.OpMigrate,
		Lease:    snap.id,
		Segments: []journal.Segment{{NodeOS: target.slot, Bytes: mresp.Lease}},
	}
	if err := r.appendLocked(rec); err != nil {
		r.mu.Unlock()
		if ferr := target.cl.Free(context.WithoutCancel(ctx), mresp.Lease); ferr != nil {
			target.queueFree(mresp.Lease)
		}
		return err
	}
	cur.slot = target.slot
	cur.memberLease = mresp.Lease
	cur.resp.Placement = target.name + "/" + mresp.Placement
	r.mu.Unlock()

	// Free-on-source, last: if the source daemon is unreachable (the
	// usual case — it just died) the free queues and drains when it
	// returns; its TTL reaper is the backstop. Skipped when the source
	// is a restarted instance (lease IDs may be reissued — see
	// evacuateMember) or a lost-lease repair (the source never holds
	// the copy); the scrubber and the reaper own those leftovers.
	if freeSource {
		source := r.members[snap.slot]
		source.queueFree(snap.memberLease)
	}
	return nil
}

// drainPendingFrees releases the member-local leases the router freed
// or re-homed while the member was unreachable. lease_expired during
// the drain means the member (its reaper, or a restart that lost the
// lease) already took care of it.
func (r *Router) drainPendingFrees(ctx context.Context, m *member) {
	for _, memberLease := range m.takePendingFrees() {
		fctx, cancel := context.WithTimeout(ctx, r.cfg.EvacTimeout/2)
		err := m.cl.Free(fctx, memberLease)
		cancel()
		if err != nil && !errors.Is(err, server.ErrLeaseExpired) {
			m.queueFree(memberLease) // still unreachable; retry next tick
		}
	}
}
