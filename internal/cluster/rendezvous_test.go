package cluster

import (
	"fmt"
	"testing"
)

// The two properties the sharding scheme is chosen for: keys spread
// evenly over the membership, and membership changes move only the
// keys they must.

func TestRendezvousBalance(t *testing.T) {
	members := make([]string, 8)
	for i := range members {
		members[i] = fmt.Sprintf("m%d", i)
	}
	const keys = 40000
	counts := make(map[int]int)
	for k := 0; k < keys; k++ {
		counts[pick(fmt.Sprintf("lease-%d", k), members)]++
	}
	ideal := float64(keys) / float64(len(members))
	for i, n := range counts {
		dev := (float64(n) - ideal) / ideal
		if dev > 0.10 || dev < -0.10 {
			t.Errorf("member %d owns %d keys, %.1f%% off the ideal %.0f (want within 10%%)",
				i, n, dev*100, ideal)
		}
	}
	if len(counts) != len(members) {
		t.Errorf("only %d of %d members own keys", len(counts), len(members))
	}
}

func TestRendezvousRemovalMovesOnlyTheVictimsKeys(t *testing.T) {
	members := make([]string, 8)
	for i := range members {
		members[i] = fmt.Sprintf("m%d", i)
	}
	const victim = 3
	survivors := append(append([]string(nil), members[:victim]...), members[victim+1:]...)

	const keys = 20000
	moved := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("lease-%d", k)
		before := members[pick(key, members)]
		after := survivors[pick(key, survivors)]
		if before == members[victim] {
			moved++
			continue // this key HAD to move
		}
		if before != after {
			t.Fatalf("key %q moved from %s to %s although %s is still a member",
				key, before, after, before)
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys; the test proved nothing")
	}
}

func TestRendezvousRankHeadMatchesPick(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	for k := 0; k < 1000; k++ {
		key := fmt.Sprintf("k%d", k)
		if got, want := rank(key, members)[0], members[pick(key, members)]; got != want {
			t.Fatalf("key %q: rank[0]=%s, pick=%s", key, got, want)
		}
	}
}

func TestRendezvousEmptyMembership(t *testing.T) {
	if got := pick("k", nil); got != -1 {
		t.Fatalf("pick over no members = %d, want -1", got)
	}
}
