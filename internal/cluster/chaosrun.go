package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"hetmem/internal/netfaults"
	"hetmem/internal/server"
)

// The cluster chaos harness behind `hetmemd chaostest -cluster`: an
// in-process fleet with a chaos proxy on every router->member link, a
// seeded network-fault plan running against live load, optionally one
// member hard-restarted with a wiped journal mid-run, and then the
// anti-entropy scrubber driven until the books converge.

// NetChaosOptions configures one cluster chaos run.
type NetChaosOptions struct {
	// NetSeed seeds the network-fault plan; the same seed replays the
	// same fault schedule (netfaults.RandomPlan).
	NetSeed int64
	// Steps is the fault-plan length (default 40).
	Steps int
	// StepInterval is the pause between fault steps (default 25ms).
	StepInterval time.Duration
	// Load shapes the traffic driven through the router during the
	// fault plan. Tolerate and Retry are filled in by the harness.
	Load server.LoadOptions
	// JournalDir holds the router and member journals; empty runs
	// everything journal-less (the wiped-restart scenario then
	// degenerates to a plain restart, which is still a valid run).
	JournalDir string
	// RestartMember is the member index hard-restarted with a wiped
	// journal halfway through the plan (-1: nobody restarts).
	RestartMember int
	// DisableFaults keeps the chaos proxies transparent: the run still
	// exercises load, restart, and scrub convergence, with no network
	// faults injected (`hetmemd chaostest -cluster -netfaults=false`).
	DisableFaults bool
	// MaxScrubCycles bounds the post-chaos convergence loop (default
	// 5). The acceptance bar is convergence to a clean cycle well
	// before the bound.
	MaxScrubCycles int
	// Platforms overrides the member platform mix (default
	// DefaultSimPlatforms).
	Platforms []string
}

// NetChaosReport is the run's artifact: what the load saw, what the
// fault plan injected, and cycle-by-cycle what the scrubber repaired.
type NetChaosReport struct {
	Load           string        `json:"load"`
	FaultEvents    int           `json:"fault_events"`
	NetSeed        int64         `json:"net_seed"`
	Restarted      string        `json:"restarted_member,omitempty"`
	Scrubs         []ScrubReport `json:"scrubs"`
	ConvergedAfter int           `json:"converged_after_cycles"`
	Consistency    string        `json:"consistency"`
	LeasesAlive    uint64        `json:"leases_alive"`
}

// tolerateNetChaos accepts the failures a partitioned fleet
// legitimately surfaces to the load generator.
func tolerateNetChaos(err error) bool {
	return errors.Is(err, server.ErrCodeMemberUnavailable) ||
		errors.Is(err, server.ErrShedding) ||
		errors.Is(err, server.ErrCapacityExhausted) ||
		errors.Is(err, server.ErrLeaseExpired)
}

// NetChaosRun executes one cluster chaos scenario and returns its
// report. The run fails if the load generator hits an untolerated
// error, the fleet does not return to health, the scrubber does not
// converge within MaxScrubCycles, or the final books are inconsistent.
func NetChaosRun(ctx context.Context, opts NetChaosOptions, out io.Writer) (NetChaosReport, error) {
	if out == nil {
		out = io.Discard
	}
	if opts.Steps <= 0 {
		opts.Steps = 40
	}
	if opts.StepInterval <= 0 {
		opts.StepInterval = 25 * time.Millisecond
	}
	if opts.MaxScrubCycles <= 0 {
		opts.MaxScrubCycles = 5
	}
	rep := NetChaosReport{NetSeed: opts.NetSeed}

	var memberCfg server.Config
	routerCfg := Config{
		PollInterval:   50 * time.Millisecond,
		OfflineAfter:   2,
		MemberRetry:    &server.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		ProbeTimeout:   500 * time.Millisecond,
		EvacTimeout:    2 * time.Second,
		ForwardTimeout: 2 * time.Second,
		HedgeDelay:     50 * time.Millisecond,
	}
	if opts.JournalDir != "" {
		memberCfg.JournalPath = filepath.Join(opts.JournalDir, "member")
		routerCfg.JournalPath = filepath.Join(opts.JournalDir, "router")
	}
	sim, err := StartSim(SimOptions{
		Platforms: opts.Platforms,
		Member:    memberCfg,
		Router:    routerCfg,
		NetFaults: true,
		Out:       out,
	})
	if err != nil {
		return rep, err
	}
	defer sim.Close()

	plan := netfaults.RandomPlan(opts.NetSeed, opts.Steps, len(sim.Members), netfaults.RandomOptions{})
	if opts.DisableFaults {
		// Keep the step clock (so the restart still lands mid-load) but
		// inject nothing.
		plan = netfaults.Plan{Events: []netfaults.Event{{Step: opts.Steps, Kind: netfaults.Heal}}}
	} else {
		rep.FaultEvents = len(plan.Events)
	}
	restartAt := -1
	if opts.RestartMember >= 0 && opts.RestartMember < len(sim.Members) {
		restartAt = plan.Steps() / 2
	}

	load := opts.Load
	load.Tolerate = tolerateNetChaos
	if load.Retry == nil {
		load.Retry = &server.RetryPolicy{MaxAttempts: 6, BaseDelay: 25 * time.Millisecond, MaxDelay: 500 * time.Millisecond}
	}
	done := make(chan struct{})
	var stats server.LoadStats
	var loadErr error
	go func() {
		defer close(done)
		stats, loadErr = server.LoadTest(ctx, sim.Base, load)
	}()

	for step := 0; step <= plan.Steps(); step++ {
		if ctx.Err() != nil {
			break
		}
		for _, ev := range plan.StepEvents(step) {
			if err := sim.Injector.Apply(ev); err != nil {
				return rep, fmt.Errorf("cluster: net fault %+v: %w", ev, err)
			}
		}
		if step == restartAt {
			victim := sim.Members[opts.RestartMember]
			if err := sim.Restart(opts.RestartMember, true); err != nil {
				return rep, err
			}
			rep.Restarted = victim.Name
			fmt.Fprintf(out, "hetmemd: restarted member %s with a wiped journal at fault step %d\n", victim.Name, step)
		}
		select {
		case <-time.After(opts.StepInterval):
		case <-done:
		}
	}
	sim.Injector.HealAll()
	<-done
	rep.Load = stats.String()
	fmt.Fprintf(out, "hetmemd: chaos load %s\n", stats)
	if loadErr != nil {
		return rep, loadErr
	}
	if ctx.Err() != nil {
		return rep, ctx.Err()
	}

	// Fabric is healed; wait for the poller's view to catch up and the
	// evacuations it owes (offline transitions, the restarted member)
	// to land.
	healthDeadline := time.Now().Add(30 * time.Second)
	for {
		sim.Router.PollOnce(ctx)
		h, err := sim.Router.Health(ctx)
		if err != nil {
			return rep, err
		}
		if h.Status == "ok" {
			break
		}
		if time.Now().After(healthDeadline) {
			return rep, fmt.Errorf("cluster: fleet not healthy 30s after the fabric healed: %+v", h.Nodes)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Drive the scrubber to convergence: a clean cycle means no
	// orphans, no lost leases, no drift — the books agree everywhere.
	for cycle := 1; cycle <= opts.MaxScrubCycles; cycle++ {
		sim.Router.PollOnce(ctx)
		sr, err := sim.Router.ScrubOnce(ctx)
		if err != nil {
			return rep, err
		}
		rep.Scrubs = append(rep.Scrubs, sr)
		fmt.Fprintf(out, "hetmemd: scrub cycle %d: %d orphans freed (%d suspects), %d lost repaired (%d failed), %d drift alarms\n",
			cycle, sr.OrphansFreed, sr.OrphanSuspects, sr.LostRepaired, sr.LostFailed, sr.DriftAlarms)
		if sr.Clean() {
			rep.ConvergedAfter = cycle
			break
		}
	}
	if rep.ConvergedAfter == 0 {
		return rep, fmt.Errorf("cluster: scrubber did not converge in %d cycles: %+v", opts.MaxScrubCycles, rep.Scrubs)
	}

	leases, err := sim.Router.Leases(ctx, false)
	if err != nil {
		return rep, err
	}
	rep.LeasesAlive = uint64(leases.Count)
	if uint64(stats.LeasesLeft) != uint64(leases.Count) {
		return rep, fmt.Errorf("cluster: router tracks %d leases, load generator left %d alive — leases lost", leases.Count, stats.LeasesLeft)
	}
	desc, err := server.VerifyConsistency(ctx, sim.Base)
	if err != nil {
		return rep, err
	}
	rep.Consistency = desc
	fmt.Fprintf(out, "hetmemd: books %s\n", desc)
	return rep, nil
}
