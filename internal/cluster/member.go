package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"hetmem/internal/server"
)

// Member health at daemon granularity — the cluster-level analog of
// the daemon's per-node health state machine (internal/server
// health.go): healthy members take new placements, degraded ones keep
// serving their existing leases but receive no new keys, and offline
// ones trigger evacuation.
const (
	memberHealthy  = 0
	memberDegraded = 1
	memberOffline  = 2
)

func memberStateName(s int) string {
	switch s {
	case memberHealthy:
		return "healthy"
	case memberDegraded:
		return "degraded"
	default:
		return "offline"
	}
}

// MemberSpec names one daemon of the cluster.
type MemberSpec struct {
	// Name is the member's stable identity — the rendezvous hash input
	// and the label on every per-member metric. Renaming a member
	// reshuffles the keys it owns; re-addressing it does not.
	Name string `json:"name"`
	// URL is the daemon's base URL, e.g. "http://10.0.0.7:7077".
	URL string `json:"url"`
}

// member is the router's live view of one daemon: a shared
// server.Client (with the client's retry/backoff and idempotency
// machinery — the router deliberately reuses it instead of growing a
// second HTTP stack) plus the health state maintained by the poller.
type member struct {
	name string
	url  string
	slot int // index into Router.members; NodeOS in journal records
	cl   *server.Client

	// sem bounds concurrent data-plane forwards to this member (nil:
	// unbounded). Control-plane traffic — polls, evacuations, scrubs,
	// pending-free drains — bypasses it so recovery work never starves
	// behind a client surge.
	sem chan struct{}
	// overloads counts forwards refused at the in-flight bound.
	overloads atomic.Uint64

	// evacMu serializes evacuations of this member across poll ticks
	// (TryLock: a tick that finds one running skips, not queues).
	evacMu sync.Mutex

	mu sync.Mutex
	// state is memberHealthy/memberDegraded/memberOffline as decided
	// by the poller; members start healthy so the router can route
	// before the first poll completes.
	state int
	// instanceID is the member's per-boot ID from its last successful
	// health poll. A change means the daemon restarted behind the same
	// address — its in-memory leases may be gone, so the router
	// re-homes them just like an offline member's.
	instanceID string
	// fails counts consecutive failed polls; OfflineAfter of them mark
	// the member offline.
	fails    int
	pressure float64
	lastErr  error
	// pendingFree holds member-local lease IDs the router has already
	// freed (or evacuated) on its side but could not free on this
	// member because it was unreachable. Drained on recovery; a 404
	// during the drain means the member (or its reaper) already freed
	// it.
	pendingFree []uint64
}

func (m *member) snapshotState() (state int, instanceID string, pressure float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state, m.instanceID, m.pressure
}

// healthRow is the member's row in the router's /v1/health report.
func (m *member) healthRow() server.NodeHealth {
	state, id, _ := m.snapshotState()
	return server.NodeHealth{Node: m.name, OS: m.slot, State: memberStateName(state), InstanceID: id}
}

// poll runs one health probe and applies the state machine. It
// returns events the router must act on: wentOffline starts an
// evacuation of the member's leases, restarted does the same (the
// daemon came back empty-handed), and recovered drains the
// pending-free queue.
func (m *member) poll(ctx context.Context, offlineAfter int, probeTimeout time.Duration) (wentOffline, restarted, recovered bool) {
	hctx, cancel := context.WithTimeout(ctx, probeTimeout)
	h, err := m.cl.Health(hctx)
	cancel()

	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.fails++
		m.lastErr = err
		if m.state != memberOffline && m.fails >= offlineAfter {
			m.state = memberOffline
			wentOffline = true
		}
		return
	}
	m.fails = 0
	m.lastErr = nil
	m.pressure = h.Pressure
	if m.instanceID != "" && h.InstanceID != "" && h.InstanceID != m.instanceID {
		// Same address, new boot: whatever leases the old instance held
		// in memory are gone (journaled members re-offer them, and the
		// idempotent evacuation handles either case).
		restarted = true
		// The queued frees target leases of the dead instance; the new
		// one never granted them.
		m.pendingFree = nil
	}
	m.instanceID = h.InstanceID
	if m.state == memberOffline {
		recovered = true
	}
	if h.Status == "ok" {
		m.state = memberHealthy
	} else {
		m.state = memberDegraded
	}
	return
}

// queueFree remembers a member-local lease to free once the member is
// reachable again.
func (m *member) queueFree(memberLease uint64) {
	m.mu.Lock()
	m.pendingFree = append(m.pendingFree, memberLease)
	m.mu.Unlock()
}

func (m *member) takePendingFrees() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.pendingFree
	m.pendingFree = nil
	return p
}

func (m *member) pendingFreeDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pendingFree)
}
