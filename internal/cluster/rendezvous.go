// Package cluster federates many hetmemd daemons behind one router
// that presents the single-daemon /v1 API unchanged. The lease
// keyspace is sharded over the healthy members with rendezvous
// hashing, so clients keep using server.Client against one base URL
// while placements spread across machines; when a member dies, the
// router re-homes its leases onto survivors (see evacuate.go) and
// every affected request fails with a retryable v1 error in the
// meantime — never a silent loss.
package cluster

import "sort"

// Rendezvous (highest-random-weight) hashing: each (key, member) pair
// gets a pseudo-random score, and the key lives on the member with
// the highest score. Unlike modulo sharding, removing a member moves
// ONLY the keys that lived on it — every other key keeps its maximum
// — and adding one steals only the keys it now wins. No ring state,
// no token tables: membership is just the list of names.

// fnv1a64 hashes key then member with FNV-1a, mixing the two through
// the same state so score(k, m) is a 64-bit pseudo-random function of
// the pair.
func fnv1a64(key, member string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// A separator byte keeps ("ab","c") and ("a","bc") from colliding.
	h ^= 0xff
	h *= prime64
	for i := 0; i < len(member); i++ {
		h ^= uint64(member[i])
		h *= prime64
	}
	return h
}

// pick returns the index into members of the highest-scoring member
// for key, or -1 when members is empty. Ties (vanishingly rare) break
// toward the lower index, deterministically.
func pick(key string, members []string) int {
	best, bestScore := -1, uint64(0)
	for i, m := range members {
		if s := fnv1a64(key, m); best == -1 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// rank returns members ordered by descending score for key: rank[0]
// is where the key lives, rank[1] is where it moves if rank[0]
// leaves, and so on. Used by evacuation to pick a deterministic
// fallback target.
func rank(key string, members []string) []string {
	out := append([]string(nil), members...)
	sort.SliceStable(out, func(i, j int) bool {
		return fnv1a64(key, out[i]) > fnv1a64(key, out[j])
	})
	return out
}
