package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"hetmem/internal/server"
)

// Anti-entropy scrubber. Partitions, crashes, and wiped restarts can
// leave the router's journaled lease book and a member's live lease
// table disagreeing in exactly three ways, and each has one safe
// repair:
//
//   - Orphan: the member holds a lease the router's book does not map.
//     Either the router crashed between a member grant and its journal
//     append, or the member copy is a free that could not land. The
//     member copy is unreachable by any client, so the repair is to
//     free it — but only after the same (slot, member lease) pair has
//     been sighted across TWO consecutive cycles on the SAME member
//     instance, and the book still has no entry for it at the moment
//     of the free. One-cycle sightings are routinely in-flight allocs
//     (members grant before the router commits), never freed.
//
//   - Lost: the book maps a lease to a (slot, member lease) pair the
//     member no longer holds — the member restarted with a wiped
//     journal, or its reaper fired during a partition. The repair is a
//     re-placement through the standard evacuation path (deterministic
//     idempotency key, journal-then-swing commit), with the source
//     member allowed as a target since it is alive. Repairs spend a
//     per-cycle byte budget so a mass-loss event converges over a few
//     cycles instead of starving live traffic.
//
//   - Drift: the per-member byte totals disagree even though the lease
//     sets match. Nothing can be repaired mechanically — the sizes
//     themselves diverged — so the scrubber raises an alarm counter
//     for operators and moves on.
//
// The safety argument for "lost" relies on ordering: the router book
// is snapshotted BEFORE the members are listed, so any alloc that
// commits after the snapshot is invisible to the diff, and any alloc
// committed before it was necessarily granted by the member earlier
// still — the member listing cannot miss it. Concurrent frees are
// caught by commitEvacuation's re-check under the lease lock.

// orphanKey identifies one member-held lease by its placement pair.
type orphanKey struct {
	slot        int
	memberLease uint64
}

// ScrubReport summarizes one anti-entropy cycle; chaostest emits it
// as the scrub artifact.
type ScrubReport struct {
	Cycle           uint64 `json:"cycle"`
	MembersScanned  int    `json:"members_scanned"`
	MembersSkipped  int    `json:"members_skipped"`
	OrphansFreed    int    `json:"orphans_freed"`
	OrphanSuspects  int    `json:"orphan_suspects"`
	LostRepaired    int    `json:"lost_repaired"`
	LostFailed      int    `json:"lost_failed"`
	DriftAlarms     int    `json:"drift_alarms"`
	BytesRepaired   uint64 `json:"bytes_repaired"`
	BudgetExhausted bool   `json:"budget_exhausted"`
}

// Clean reports whether the cycle found the books fully converged:
// nothing repaired, nothing suspected, nothing alarmed.
func (s ScrubReport) Clean() bool {
	return s.OrphansFreed == 0 && s.OrphanSuspects == 0 &&
		s.LostRepaired == 0 && s.LostFailed == 0 && s.DriftAlarms == 0
}

func (r *Router) scrubLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-t.C:
			r.ScrubOnce(context.Background())
		}
	}
}

// memberScan is one member's lease table as listed during a cycle.
type memberScan struct {
	m          *member
	instanceID string
	resp       server.LeasesResponse
	byLease    map[uint64]server.LeaseInfo
}

// ScrubOnce runs one full anti-entropy cycle and returns its report.
// Exported so tests and chaostest drive cycles without a ticker;
// cycles are serialized, a concurrent call waits its turn.
func (r *Router) ScrubOnce(ctx context.Context) (ScrubReport, error) {
	r.scrubMu.Lock()
	defer r.scrubMu.Unlock()
	rep := ScrubReport{Cycle: r.scrubCycles.Add(1)}

	// 1. Snapshot the router book first (see the ordering argument
	// above): the live placement pairs, and per-slot copies of every
	// lease for the lost diff.
	book := make(map[orphanKey]struct{})
	bySlot := make(map[int][]rlease)
	slotBytes := make(map[int]uint64)
	r.mu.Lock()
	for _, rl := range r.leases {
		book[orphanKey{rl.slot, rl.memberLease}] = struct{}{}
		bySlot[rl.slot] = append(bySlot[rl.slot], *rl)
		slotBytes[rl.slot] += rl.size
	}
	r.mu.Unlock()

	// 2. List every reachable member's lease table, hedged so one slow
	// link does not stall the cycle. Offline members are skipped — the
	// evacuation path owns them.
	scans := make([]*memberScan, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		state, instanceID, _ := m.snapshotState()
		if state == memberOffline {
			rep.MembersSkipped++
			continue
		}
		wg.Add(1)
		go func(i int, m *member, instanceID string) {
			defer wg.Done()
			resp, err := hedged(ctx, r.cfg.HedgeDelay, func(ctx context.Context) (server.LeasesResponse, error) {
				lctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
				defer cancel()
				return m.cl.Leases(lctx, true)
			})
			if err != nil {
				return // counted as skipped below
			}
			sc := &memberScan{m: m, instanceID: instanceID, resp: resp,
				byLease: make(map[uint64]server.LeaseInfo, len(resp.Leases))}
			for _, li := range resp.Leases {
				sc.byLease[li.Lease] = li
			}
			scans[i] = sc
		}(i, m, instanceID)
	}
	wg.Wait()

	suspects := make(map[orphanKey]string) // carried into the next cycle
	var confirm []orphanKey               // second sighting: free if still unmapped
	var lost []rlease

	for i, m := range r.members {
		if scans[i] == nil {
			if state, _, _ := m.snapshotState(); state != memberOffline {
				rep.MembersSkipped++
			}
			continue
		}
		sc := scans[i]
		rep.MembersScanned++

		// Orphans: member-held, book-unmapped.
		for leaseID := range sc.byLease {
			key := orphanKey{m.slot, leaseID}
			if _, mapped := book[key]; mapped {
				continue
			}
			if prevInstance, seen := r.orphanSuspects[key]; seen && prevInstance == sc.instanceID {
				confirm = append(confirm, key)
			} else {
				suspects[key] = sc.instanceID
			}
		}

		// Lost: book-mapped, member-missing.
		lostBefore := len(lost)
		for _, snap := range bySlot[m.slot] {
			if _, held := sc.byLease[snap.memberLease]; !held {
				lost = append(lost, snap)
			}
		}

		// Drift: byte totals disagree with the lease sets matching.
		if len(lost) == lostBefore && sc.resp.Bytes != slotBytes[m.slot] {
			if allMapped(sc.byLease, book, m.slot) {
				rep.DriftAlarms++
				r.scrubDrift.Add(1)
			}
		}
	}
	r.orphanSuspects = suspects
	rep.OrphanSuspects = len(suspects)

	// 3. Free confirmed orphans — after one final book re-check under
	// the lease lock, so an alloc that committed mid-cycle survives.
	if len(confirm) > 0 {
		live := make(map[orphanKey]struct{})
		r.mu.Lock()
		for _, rl := range r.leases {
			live[orphanKey{rl.slot, rl.memberLease}] = struct{}{}
		}
		r.mu.Unlock()
		for _, key := range confirm {
			if _, mapped := live[key]; mapped {
				continue
			}
			m := r.members[key.slot]
			fctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
			err := m.cl.Free(fctx, key.memberLease)
			cancel()
			if err != nil && !errors.Is(err, server.ErrLeaseExpired) {
				r.scrubFailures.Add(1)
				continue
			}
			rep.OrphansFreed++
			r.scrubOrphans.Add(1)
		}
	}

	// 4. Re-place lost leases under the cycle budget. The evacuation
	// path re-checks the live entry at commit, so a lease freed while
	// we worked is not resurrected.
	for i := range lost {
		if ctx.Err() != nil {
			break
		}
		snap := lost[i]
		if rep.BytesRepaired+snap.size > r.cfg.ScrubBudgetBytes {
			rep.BudgetExhausted = true
			rep.LostFailed++ // retried next cycle
			continue
		}
		if !r.stillMapped(snap) {
			continue // freed (or already repaired) since the snapshot
		}
		if err := r.evacuateLease(ctx, &snap, true, false); err != nil {
			rep.LostFailed++
			r.scrubFailures.Add(1)
			continue
		}
		rep.LostRepaired++
		rep.BytesRepaired += snap.size
		r.scrubLost.Add(1)
	}
	return rep, ctx.Err()
}

// stillMapped reports whether the routed lease still maps to the
// exact placement pair the scrub snapshot saw.
func (r *Router) stillMapped(snap rlease) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.leases[snap.id]
	return ok && cur.slot == snap.slot && cur.memberLease == snap.memberLease
}

// allMapped reports whether every member-held lease is in the book —
// the precondition for classifying a byte mismatch as size drift
// rather than a set difference.
func allMapped(byLease map[uint64]server.LeaseInfo, book map[orphanKey]struct{}, slot int) bool {
	for leaseID := range byLease {
		if _, ok := book[orphanKey{slot, leaseID}]; !ok {
			return false
		}
	}
	return true
}

// hedged runs call, and if it has not returned within delay, fires a
// second identical attempt; the first result wins and the loser's
// context is cancelled. delay <= 0 disables hedging. Only used for
// idempotent reads.
func hedged[T any](ctx context.Context, delay time.Duration, call func(context.Context) (T, error)) (T, error) {
	if delay <= 0 {
		return call(ctx)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 2)
	launch := func() {
		go func() {
			v, err := call(hctx)
			ch <- outcome{v, err}
		}()
	}
	launch()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	pending := 1
	fired := false
	var lastErr error
	for {
		select {
		case out := <-ch:
			if out.err == nil {
				return out.v, nil
			}
			lastErr = out.err
			pending--
			if pending == 0 {
				// Every launched attempt failed; don't wait out the
				// hedge timer for a call that already lost.
				var zero T
				return zero, lastErr
			}
		case <-timer.C:
			if !fired {
				fired = true
				pending++
				launch()
			}
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}
