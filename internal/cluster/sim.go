package cluster

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"hetmem/internal/core"
	"hetmem/internal/netfaults"
	"hetmem/internal/server"
)

// The in-process cluster harness: N simulated daemons on loopback
// listeners with a router in front, used by `hetmemd loadtest
// -cluster`, `hetmemd bench -cluster`, and the chaos tests. Each
// member gets its own memsim Machine, so the fleet is heterogeneous
// by construction.

// DefaultSimPlatforms is the default member mix: the paper's two
// testbeds, the synthetic Figure-3 platform, and the sub-NUMA Xeon.
var DefaultSimPlatforms = []string{"xeon", "knl-snc4-flat", "fictitious", "xeon-snc2"}

// SimOptions configures an in-process cluster.
type SimOptions struct {
	// Platforms lists one memsim platform per member (default
	// DefaultSimPlatforms). Member i is named "m<i>".
	Platforms []string
	// Member is the per-member daemon config (journal paths get the
	// member name appended when set).
	Member server.Config
	// Router is the router config; Members is filled in by the sim.
	Router Config
	// NetFaults interposes a netfaults.Proxy on every router->member
	// link: the router dials the proxy, the proxy relays to the member.
	// Sim.Proxies and Sim.Injector then drive partitions, latency, and
	// connection faults per link.
	NetFaults bool
	// Out receives progress lines (nil: discarded).
	Out io.Writer
}

// SimMember is one in-process daemon of the simulated cluster.
type SimMember struct {
	Name     string
	Platform string
	// URL is what the router dials: the member itself, or its chaos
	// proxy when the sim runs with NetFaults.
	URL string

	cfg    server.Config // kept so Restart reboots with the same config
	addr   string        // the daemon's own listen address
	proxy  *netfaults.Proxy
	srv    *server.Server
	hs     *http.Server
	ln     net.Listener
	killed bool
}

// Sim is a running in-process cluster: members, router, and the
// router's HTTP listener.
type Sim struct {
	Members []*SimMember
	Router  *Router
	// Base is the router's base URL — point server.Client (or the
	// loadtest) at it.
	Base string
	// Proxies holds the per-link chaos proxies (index = member slot)
	// and Injector drives fault plans over them. Both nil unless the
	// sim was started with NetFaults.
	Proxies  []*netfaults.Proxy
	Injector *netfaults.Injector

	hs *http.Server
	ln net.Listener
}

// StartSim boots the members and the router. Callers own Close.
func StartSim(opts SimOptions) (*Sim, error) {
	platforms := opts.Platforms
	if len(platforms) == 0 {
		platforms = DefaultSimPlatforms
	}
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	sim := &Sim{}
	fail := func(err error) (*Sim, error) {
		sim.Close()
		return nil, err
	}
	var specs []MemberSpec
	for i, plat := range platforms {
		name := fmt.Sprintf("m%d", i)
		cfg := opts.Member
		if cfg.JournalPath != "" {
			cfg.JournalPath = cfg.JournalPath + "." + name
		}
		sys, err := core.NewSystem(plat, core.Options{})
		if err != nil {
			return fail(fmt.Errorf("cluster: member %s platform %s: %w", name, plat, err))
		}
		srv, err := server.NewWithConfig(sys, cfg)
		if err != nil {
			return fail(fmt.Errorf("cluster: member %s: %w", name, err))
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return fail(err)
		}
		hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go hs.Serve(ln)
		m := &SimMember{
			Name: name, Platform: plat, URL: "http://" + ln.Addr().String(),
			cfg: cfg, addr: ln.Addr().String(), srv: srv, hs: hs, ln: ln,
		}
		if opts.NetFaults {
			p, err := netfaults.NewProxy(m.addr)
			if err != nil {
				m.hs.Close()
				m.ln.Close()
				m.srv.Close()
				return fail(fmt.Errorf("cluster: member %s chaos proxy: %w", name, err))
			}
			m.proxy = p
			m.URL = "http://" + p.Addr()
			sim.Proxies = append(sim.Proxies, p)
		}
		sim.Members = append(sim.Members, m)
		specs = append(specs, MemberSpec{Name: name, URL: m.URL})
		fmt.Fprintf(out, "hetmemd: cluster member %s (%s) on %s\n", name, plat, m.URL)
	}
	if opts.NetFaults {
		sim.Injector = netfaults.NewInjector(sim.Proxies)
	}

	rcfg := opts.Router
	rcfg.Members = specs
	router, err := New(rcfg)
	if err != nil {
		return fail(err)
	}
	sim.Router = router
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	sim.ln = ln
	sim.hs = &http.Server{Handler: router.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go sim.hs.Serve(ln)
	sim.Base = "http://" + ln.Addr().String()
	fmt.Fprintf(out, "hetmemd: cluster router on %s (%d members)\n", sim.Base, len(specs))
	return sim, nil
}

// Kill hard-stops member i: the listener closes, in-flight requests
// die, and every later connection is refused — exactly what a crashed
// daemon looks like to the router.
func (s *Sim) Kill(i int) {
	m := s.Members[i]
	if m.killed {
		return
	}
	m.killed = true
	m.hs.Close()
	m.ln.Close()
	m.srv.Close()
}

// Restart reboots member i as a fresh daemon instance — new instance
// ID, empty in-memory lease table — on its previous address. With
// wipe, the member's journal files are deleted first, so the reboot
// comes back with NOTHING: the disaster case the anti-entropy
// scrubber exists for. A running member is hard-stopped first.
func (s *Sim) Restart(i int, wipe bool) error {
	m := s.Members[i]
	if !m.killed {
		m.killed = true
		m.hs.Close()
		m.ln.Close()
		m.srv.Close()
	}
	if wipe && m.cfg.JournalPath != "" {
		for _, f := range []string{m.cfg.JournalPath, m.cfg.JournalPath + ".ckpt", m.cfg.JournalPath + ".ckpt.1"} {
			os.Remove(f)
		}
	}
	sys, err := core.NewSystem(m.Platform, core.Options{})
	if err != nil {
		return fmt.Errorf("cluster: restart %s: %w", m.Name, err)
	}
	srv, err := server.NewWithConfig(sys, m.cfg)
	if err != nil {
		return fmt.Errorf("cluster: restart %s: %w", m.Name, err)
	}
	// Reclaim the old address so the router's member URL stays valid;
	// behind a proxy any port works — the proxy re-points.
	ln, err := net.Listen("tcp", m.addr)
	if err != nil && m.proxy != nil {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		srv.Close()
		return fmt.Errorf("cluster: restart %s: %w", m.Name, err)
	}
	m.addr = ln.Addr().String()
	if m.proxy != nil {
		m.proxy.SetTarget(m.addr)
	}
	m.srv, m.ln = srv, ln
	m.hs = &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go m.hs.Serve(ln)
	m.killed = false
	return nil
}

// Close tears the cluster down: router first (stops the poller), then
// the members.
func (s *Sim) Close() {
	if s.hs != nil {
		s.hs.Close()
	}
	if s.ln != nil {
		s.ln.Close()
	}
	if s.Router != nil {
		s.Router.Close()
	}
	for _, m := range s.Members {
		if !m.killed {
			m.hs.Close()
			m.ln.Close()
			m.srv.Close()
		}
		if m.proxy != nil {
			m.proxy.Close()
		}
	}
}
