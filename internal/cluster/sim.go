package cluster

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"hetmem/internal/core"
	"hetmem/internal/server"
)

// The in-process cluster harness: N simulated daemons on loopback
// listeners with a router in front, used by `hetmemd loadtest
// -cluster`, `hetmemd bench -cluster`, and the chaos tests. Each
// member gets its own memsim Machine, so the fleet is heterogeneous
// by construction.

// DefaultSimPlatforms is the default member mix: the paper's two
// testbeds, the synthetic Figure-3 platform, and the sub-NUMA Xeon.
var DefaultSimPlatforms = []string{"xeon", "knl-snc4-flat", "fictitious", "xeon-snc2"}

// SimOptions configures an in-process cluster.
type SimOptions struct {
	// Platforms lists one memsim platform per member (default
	// DefaultSimPlatforms). Member i is named "m<i>".
	Platforms []string
	// Member is the per-member daemon config (journal paths get the
	// member name appended when set).
	Member server.Config
	// Router is the router config; Members is filled in by the sim.
	Router Config
	// Out receives progress lines (nil: discarded).
	Out io.Writer
}

// SimMember is one in-process daemon of the simulated cluster.
type SimMember struct {
	Name     string
	Platform string
	URL      string

	srv    *server.Server
	hs     *http.Server
	ln     net.Listener
	killed bool
}

// Sim is a running in-process cluster: members, router, and the
// router's HTTP listener.
type Sim struct {
	Members []*SimMember
	Router  *Router
	// Base is the router's base URL — point server.Client (or the
	// loadtest) at it.
	Base string

	hs *http.Server
	ln net.Listener
}

// StartSim boots the members and the router. Callers own Close.
func StartSim(opts SimOptions) (*Sim, error) {
	platforms := opts.Platforms
	if len(platforms) == 0 {
		platforms = DefaultSimPlatforms
	}
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	sim := &Sim{}
	fail := func(err error) (*Sim, error) {
		sim.Close()
		return nil, err
	}
	var specs []MemberSpec
	for i, plat := range platforms {
		name := fmt.Sprintf("m%d", i)
		cfg := opts.Member
		if cfg.JournalPath != "" {
			cfg.JournalPath = cfg.JournalPath + "." + name
		}
		sys, err := core.NewSystem(plat, core.Options{})
		if err != nil {
			return fail(fmt.Errorf("cluster: member %s platform %s: %w", name, plat, err))
		}
		srv, err := server.NewWithConfig(sys, cfg)
		if err != nil {
			return fail(fmt.Errorf("cluster: member %s: %w", name, err))
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return fail(err)
		}
		hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
		go hs.Serve(ln)
		m := &SimMember{
			Name: name, Platform: plat, URL: "http://" + ln.Addr().String(),
			srv: srv, hs: hs, ln: ln,
		}
		sim.Members = append(sim.Members, m)
		specs = append(specs, MemberSpec{Name: name, URL: m.URL})
		fmt.Fprintf(out, "hetmemd: cluster member %s (%s) on %s\n", name, plat, m.URL)
	}

	rcfg := opts.Router
	rcfg.Members = specs
	router, err := New(rcfg)
	if err != nil {
		return fail(err)
	}
	sim.Router = router
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	sim.ln = ln
	sim.hs = &http.Server{Handler: router.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go sim.hs.Serve(ln)
	sim.Base = "http://" + ln.Addr().String()
	fmt.Fprintf(out, "hetmemd: cluster router on %s (%d members)\n", sim.Base, len(specs))
	return sim, nil
}

// Kill hard-stops member i: the listener closes, in-flight requests
// die, and every later connection is refused — exactly what a crashed
// daemon looks like to the router.
func (s *Sim) Kill(i int) {
	m := s.Members[i]
	if m.killed {
		return
	}
	m.killed = true
	m.hs.Close()
	m.ln.Close()
	m.srv.Close()
}

// Close tears the cluster down: router first (stops the poller), then
// the members.
func (s *Sim) Close() {
	if s.hs != nil {
		s.hs.Close()
	}
	if s.ln != nil {
		s.ln.Close()
	}
	if s.Router != nil {
		s.Router.Close()
	}
	for _, m := range s.Members {
		if !m.killed {
			m.hs.Close()
			m.ln.Close()
			m.srv.Close()
		}
	}
}
