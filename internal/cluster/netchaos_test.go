package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"hetmem/internal/server"
)

// The partition-tolerance properties. These tests drive the chaos
// proxies and the anti-entropy scrubber deterministically: divergence
// is either injected by hand (so each repair class is provoked
// exactly once) or created by an asymmetric partition plus a
// wiped-journal restart under live load, and in both cases the
// scrubber must converge the books in a bounded number of cycles.

// memberBooks lists every member's own lease table, keyed by name.
func memberBooks(t *testing.T, ctx context.Context, sim *Sim) map[string]server.LeasesResponse {
	t.Helper()
	out := make(map[string]server.LeasesResponse, len(sim.Members))
	for _, m := range sim.Members {
		mcl := server.NewClient(m.URL, server.WithoutHeartbeat())
		ml, err := mcl.Leases(ctx, true)
		mcl.Close()
		if err != nil {
			t.Fatalf("member %s leases: %v", m.Name, err)
		}
		out[m.Name] = ml
	}
	return out
}

// requireBooksConverged proves fleet-wide agreement: the router's own
// books pass the daemon consistency check, every member's byte total
// matches the router's claim for it, and the member lease-set sizes
// sum to the router's lease count (no copy exists that the router
// does not map — no double-homed bytes).
func requireBooksConverged(t *testing.T, ctx context.Context, sim *Sim) {
	t.Helper()
	if _, err := server.VerifyConsistency(ctx, sim.Base); err != nil {
		t.Fatalf("router books inconsistent: %v", err)
	}
	leases, err := sim.Router.Leases(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	books := memberBooks(t, ctx, sim)
	total := 0
	for name, ml := range books {
		if ml.Bytes != leases.NodeBytes[name] {
			t.Fatalf("member %s holds %d bytes, router claims %d", name, ml.Bytes, leases.NodeBytes[name])
		}
		total += ml.Count
	}
	if total != leases.Count {
		t.Fatalf("members hold %d leases, router maps %d — orphaned or double-homed copies remain", total, leases.Count)
	}
}

// TestScrubRepairsOrphanAndLostLeases provokes each divergence class
// once, with the health poller parked so the scrubber alone must make
// the repair:
//
//   - an orphan: a lease granted by a member directly, behind the
//     router's back (the shape a crash between member grant and
//     journal append leaves);
//   - lost leases: a member restarted with its state wiped, never
//     noticed by the (parked) poller, so the book still maps leases
//     the member no longer holds.
//
// Cycle 1 must repair every lost lease and put the orphan under
// suspicion; cycle 2 must free the orphan; cycle 3 must be clean.
func TestScrubRepairsOrphanAndLostLeases(t *testing.T) {
	sim := startTestSim(t, SimOptions{
		Router: Config{
			// Park the background poller: the scrubber gets no help.
			PollInterval: time.Hour,
		},
	})
	ctx := context.Background()

	cl := server.NewClient(sim.Base, server.WithoutHeartbeat())
	defer cl.Close()
	for i := 0; i < 12; i++ {
		if _, err := cl.Alloc(ctx, server.AllocRequest{
			Name: fmt.Sprintf("buf-%d", i), Size: 1 << 20, Attr: "Latency",
		}); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	leases, err := sim.Router.Leases(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	const victim = 1
	lostCount := 0
	r := sim.Router
	r.mu.Lock()
	for _, rl := range r.leases {
		if rl.slot == victim {
			lostCount++
		}
	}
	r.mu.Unlock()
	if lostCount == 0 || lostCount == leases.Count {
		t.Fatalf("rendezvous put %d/%d leases on the victim; the test needs both members populated", lostCount, leases.Count)
	}

	// The orphan: granted by m0 directly, invisible to the router.
	m0 := server.NewClient(sim.Members[0].URL, server.WithoutHeartbeat())
	orphan, err := m0.Alloc(ctx, server.AllocRequest{Name: "orphan", Size: 2 << 20, Attr: "Latency"})
	m0.Close()
	if err != nil {
		t.Fatalf("direct member alloc: %v", err)
	}

	// The loss: the victim reboots with nothing. The parked poller
	// never sees it, so no evacuation fires.
	if err := sim.Restart(victim, true); err != nil {
		t.Fatal(err)
	}

	c1, err := sim.Router.ScrubOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c1.LostRepaired != lostCount || c1.LostFailed != 0 {
		t.Fatalf("cycle 1 repaired %d lost leases (%d failed), want %d repaired: %+v", c1.LostRepaired, c1.LostFailed, lostCount, c1)
	}
	if c1.OrphanSuspects != 1 || c1.OrphansFreed != 0 {
		t.Fatalf("cycle 1 should only SUSPECT the orphan (an in-flight alloc looks identical): %+v", c1)
	}

	c2, err := sim.Router.ScrubOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c2.OrphansFreed != 1 {
		t.Fatalf("cycle 2 should free the confirmed orphan %d: %+v", orphan.Lease, c2)
	}
	if c2.LostRepaired != 0 || c2.LostFailed != 0 {
		t.Fatalf("cycle 2 found more lost leases; cycle 1 did not converge: %+v", c2)
	}

	c3, err := sim.Router.ScrubOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !c3.Clean() {
		t.Fatalf("cycle 3 not clean: %+v", c3)
	}

	// Every routed lease survived the repairs: same count as allocated,
	// fleet-wide books agree, and the victim's replacement copies renew.
	after, err := sim.Router.Leases(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != leases.Count {
		t.Fatalf("%d leases before the chaos, %d after — repairs lost leases", leases.Count, after.Count)
	}
	for _, l := range after.Leases {
		if _, err := cl.Renew(ctx, l.Lease, time.Minute); err != nil {
			t.Fatalf("lease %d (%s) unusable after repair: %v", l.Lease, l.Placement, err)
		}
	}
	requireBooksConverged(t, ctx, sim)
}

// TestFlappingMemberDuringEvacuation bounces one member's link while
// the background poller evacuates it and clients keep touching its
// leases: offline -> evacuation starts -> the link heals mid-flight
// -> drops again -> heals for good. Afterward nothing may be
// double-homed, the queued source frees must drain, and the scrubber
// must find the books already (or promptly) convergent.
func TestFlappingMemberDuringEvacuation(t *testing.T) {
	sim := startTestSim(t, SimOptions{
		NetFaults: true,
		Router: Config{
			PollInterval: 50 * time.Millisecond,
			OfflineAfter: 2,
			ProbeTimeout: 250 * time.Millisecond,
			EvacTimeout:  time.Second,
		},
	})
	ctx := context.Background()

	cl := server.NewClient(sim.Base, server.WithoutHeartbeat(),
		server.WithRetryPolicy(server.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}))
	defer cl.Close()
	var ids []uint64
	for i := 0; i < 16; i++ {
		resp, err := cl.Alloc(ctx, server.AllocRequest{
			Name: fmt.Sprintf("flap-%d", i), Size: 1 << 20, Attr: "Bandwidth",
		})
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		ids = append(ids, resp.Lease)
	}

	// Clients keep renewing throughout the flaps; only the retryable
	// cluster errors are acceptable.
	renewDone := make(chan error, 1)
	stopRenew := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopRenew:
				renewDone <- nil
				return
			default:
			}
			for _, id := range ids {
				if _, err := cl.Renew(ctx, id, time.Minute); err != nil &&
					!errors.Is(err, server.ErrCodeMemberUnavailable) &&
					!errors.Is(err, server.ErrLeaseExpired) {
					renewDone <- fmt.Errorf("renew %d: %v", id, err)
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Four beats: down long enough to go offline and start evacuating,
	// up mid-evacuation, down again, then healed for good.
	const victim = 1
	for beat := 0; beat < 4; beat++ {
		down := beat%2 == 0
		sim.Proxies[victim].SetPartition(down, false, false)
		time.Sleep(300 * time.Millisecond)
	}
	sim.Injector.HealAll()

	close(stopRenew)
	if err := <-renewDone; err != nil {
		t.Fatal(err)
	}

	// Settle: the fleet reports healthy and the victim's queued frees
	// drain (each queued free lands exactly once; a second landing
	// would kill a live lease, which the renew sweep below would see).
	deadline := time.Now().Add(20 * time.Second)
	for {
		sim.Router.PollOnce(ctx)
		h, err := sim.Router.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		depth := 0
		for _, m := range sim.Router.members {
			depth += m.pendingFreeDepth()
		}
		if h.Status == "ok" && depth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet not settled 20s after the flaps: health %q, %d queued frees", h.Status, depth)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The scrubber must converge promptly: any stray source copies the
	// flapping left behind are orphans it frees within two cycles.
	var last ScrubReport
	for cycle := 0; cycle < 3; cycle++ {
		var err error
		last, err = sim.Router.ScrubOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if last.Clean() {
			break
		}
	}
	if !last.Clean() {
		t.Fatalf("books did not converge after the flaps: %+v", last)
	}

	// Every lease is single-homed and alive.
	for _, id := range ids {
		if _, err := cl.Renew(ctx, id, time.Minute); err != nil {
			t.Fatalf("lease %d lost to the flapping: %v", id, err)
		}
	}
	requireBooksConverged(t, ctx, sim)
}

// TestAsymmetricPartitionWipedRestartUnderLoad is the acceptance
// scenario: an asymmetric partition (the member hears requests, the
// router never hears answers) while a member restarts with a wiped
// journal, all under live load. After the fabric heals, the books
// must reach zero lost leases and zero double-booked bytes within two
// scrub cycles, and the fleet-wide consistency checks must hold.
func TestAsymmetricPartitionWipedRestartUnderLoad(t *testing.T) {
	dir := t.TempDir()
	sim := startTestSim(t, SimOptions{
		Platforms: []string{"xeon", "fictitious", "xeon-snc2"},
		Member:    server.Config{JournalPath: dir + "/member"},
		NetFaults: true,
		Router: Config{
			JournalPath:    dir + "/router",
			PollInterval:   50 * time.Millisecond,
			OfflineAfter:   2,
			ProbeTimeout:   250 * time.Millisecond,
			EvacTimeout:    time.Second,
			ForwardTimeout: time.Second,
		},
	})
	ctx := context.Background()

	tolerate := func(err error) bool {
		return errors.Is(err, server.ErrCodeMemberUnavailable) ||
			errors.Is(err, server.ErrShedding) ||
			errors.Is(err, server.ErrCapacityExhausted) ||
			errors.Is(err, server.ErrLeaseExpired)
	}
	loadDone := make(chan struct{})
	var stats server.LoadStats
	var loadErr error
	go func() {
		defer close(loadDone)
		stats, loadErr = server.LoadTest(ctx, sim.Base, server.LoadOptions{
			Clients:           16,
			RequestsPerClient: 80,
			MaxLive:           4,
			MaxSizeBytes:      4 << 20,
			Seed:              11,
			Tolerate:          tolerate,
			Retry:             &server.RetryPolicy{MaxAttempts: 6, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond},
		})
	}()

	time.Sleep(150 * time.Millisecond)
	select {
	case <-loadDone:
		t.Fatal("load finished before the chaos; raise RequestsPerClient")
	default:
	}

	// Asymmetric partition on m1: requests reach the member, answers
	// never come back — the router sees timeouts while the member
	// keeps granting, the exact shape that breeds orphans.
	const victim = 1
	sim.Proxies[victim].SetPartition(false, true, false)
	time.Sleep(400 * time.Millisecond)

	// Mid-partition, the member reboots with its journal wiped: every
	// lease it held is gone for real.
	if err := sim.Restart(victim, true); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	sim.Injector.HealAll()

	<-loadDone
	if loadErr != nil {
		t.Fatalf("loadtest failed: %v (stats %s)", loadErr, stats)
	}
	t.Logf("load: %s", stats)

	// Fabric healed: wait for the poller's view to recover and the
	// evacuations it owes to land.
	deadline := time.Now().Add(20 * time.Second)
	for {
		sim.Router.PollOnce(ctx)
		h, err := sim.Router.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet not healthy 20s after healing: %+v", h.Nodes)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The acceptance bar: two scrub cycles to converge, proven by a
	// third cycle that finds nothing — no lost leases, no orphans, no
	// double-booked bytes.
	for cycle := 1; cycle <= 2; cycle++ {
		sim.Router.PollOnce(ctx)
		rep, err := sim.Router.ScrubOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("scrub cycle %d: %+v", cycle, rep)
	}
	proof, err := sim.Router.ScrubOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !proof.Clean() {
		t.Fatalf("books not converged within two scrub cycles: %+v", proof)
	}

	// Zero lost leases fleet-wide, and the books agree everywhere.
	leases, err := sim.Router.Leases(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if leases.Count != stats.LeasesLeft {
		t.Fatalf("router tracks %d leases, load generator left %d — lost or phantom leases", leases.Count, stats.LeasesLeft)
	}
	requireBooksConverged(t, ctx, sim)
}
