package platform

import (
	"hetmem/internal/hmat"
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

// The paper's Section II-C argues the attribute API outlives KNL by
// sketching the platforms that were coming: ARM HPC processors
// combining on-package HBM with off-package DDR5 (ETRI K-AB21, SiPearl
// Rhea), and POWER9 machines exposing NVIDIA V100 GPU memory as host
// NUMA nodes. These two machines exist here to demonstrate exactly
// that: the same attribute-driven code runs on them unchanged.

func init() {
	register("rhea", Rhea)
	register("power9-gpu", Power9GPU)
}

// Rhea models a SiPearl-Rhea-like ARM socket: 64 cores in 4 clusters,
// each cluster with a 16 GB slice of on-package HBM, plus 128 GB of
// off-package DDR5 on the socket. HBM and DDR5 have similar latencies
// (both are DRAM technologies); bandwidth differs 4x — so, like on
// KNL, Bandwidth discriminates and Latency does not.
func Rhea() *Platform {
	root := topology.New(topology.Machine, -1)
	root.Name = "rhea"
	pkg := root.AddChild(topology.New(topology.Package, 0))
	pkg.SetInfo("CPUModel", "ARM Neoverse-class with on-package HBM")
	pkg.AddMemChild(topology.NewNUMA(4, "DDR5", 128*GiB))
	pu := 0
	for g := 0; g < 4; g++ {
		grp := pkg.AddChild(topology.New(topology.Group, g))
		grp.Name = "Cluster"
		grp.AddMemChild(topology.NewNUMA(g, "HBM", 16*GiB))
		pu = addCores(grp, 16, pu)
	}
	hbm := memsim.NodeModel{
		Kind:   "HBM",
		ReadBW: 180, WriteBW: 120, TotalBW: 160,
		PerThreadBW: 12,
		IdleLatency: 95, LoadedLatency: 140,
	}
	ddr5 := memsim.NodeModel{
		Kind:   "DDR5",
		ReadBW: 55, WriteBW: 30, TotalBW: 40,
		PerThreadBW: 6,
		IdleLatency: 90, LoadedLatency: 220,
	}
	m := memsim.MachineModel{
		Nodes:      map[int]memsim.NodeModel{4: ddr5},
		Caches:     memsim.CacheModel{LineSize: 64, L2PerCore: 1 << 20, LLCPerDomain: 32 << 20},
		Remote:     memsim.RemoteModel{BWFactor: 0.6, LatencyAdd: 40},
		FreqGHz:    2.6,
		CPUPerByte: 5e-11,
	}
	for g := 0; g < 4; g++ {
		m.Nodes[g] = hbm
	}
	return &Platform{
		Name:        "rhea",
		Description: "ARM socket with per-cluster on-package HBM + socket-wide DDR5 (paper Section II-C future platforms)",
		Topo:        mustBuild(root),
		Model:       m,
		HasHMAT:     true,
		HMATOpts:    hmat.Options{LocalOnly: false},
	}
}

// Power9GPU models a POWER9 node exposing V100 GPU memory as host
// NUMA nodes: 2 sockets with DRAM, plus two CPU-less 16 GB HBM2 nodes
// (the GPUs) reachable over NVLink — high bandwidth but also high
// latency from the CPU's point of view, the coherent-accelerator
// memory scenario of Sections II-C and VIII.
func Power9GPU() *Platform {
	root := topology.New(topology.Machine, -1)
	root.Name = "power9-gpu"
	pu := 0
	for p := 0; p < 2; p++ {
		pkg := root.AddChild(topology.New(topology.Package, p))
		pkg.SetInfo("CPUModel", "POWER9")
		pkg.AddMemChild(topology.NewNUMA(p, "DRAM", 256*GiB))
		// The GPU memory is attached to the package (NVLink), exposed
		// as a NUMA node without CPUs of its own; its locality is the
		// package's cpuset.
		pkg.AddMemChild(topology.NewNUMA(2+p, "GPU", 16*GiB))
		pu = addCores(pkg, 16, pu)
	}
	dram := memsim.NodeModel{
		Kind:   "DRAM",
		ReadBW: 120, WriteBW: 60, TotalBW: 105,
		PerThreadBW: 14,
		IdleLatency: 90, LoadedLatency: 250,
	}
	gpu := memsim.NodeModel{
		Kind: "GPU",
		// NVLink2: ~75 GB/s per direction CPU<->GPU, far below the
		// HBM2's native 900 GB/s; CPU-side latency is poor.
		ReadBW: 70, WriteBW: 70, TotalBW: 75,
		PerThreadBW: 8,
		IdleLatency: 400, LoadedLatency: 700,
	}
	m := memsim.MachineModel{
		Nodes:      map[int]memsim.NodeModel{0: dram, 1: dram, 2: gpu, 3: gpu},
		Caches:     memsim.CacheModel{LineSize: 128, L2PerCore: 512 << 10, LLCPerDomain: 120 << 20},
		Remote:     memsim.RemoteModel{BWFactor: 0.5, LatencyAdd: 70},
		FreqGHz:    3.0,
		CPUPerByte: 5e-11,
	}
	return &Platform{
		Name:        "power9-gpu",
		Description: "dual POWER9 with V100 GPU memory exposed as host NUMA nodes over NVLink (paper Sections II-C and VIII)",
		Topo:        mustBuild(root),
		Model:       m,
		HasHMAT:     true,
		HMATOpts:    hmat.Options{LocalOnly: false},
	}
}
