package platform

import (
	"strings"
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/hmat"
	"hetmem/internal/memattr"
	"hetmem/internal/topology"
)

const fig3ish = "package:2 group:2 core:8 pu:1 " +
	"mem:package:DRAM:96GiB:bw=100:lat=85 " +
	"mem:package:NVDIMM:768GiB:bw=25:lat=310 " +
	"mem:group:HBM:8GiB:bw=220:lat=110 " +
	"mem:machine:NAM:1TiB:bw=10:lat=1500"

func TestSyntheticFig3ish(t *testing.T) {
	p, err := FromSynthetic("custom", fig3ish)
	if err != nil {
		t.Fatal(err)
	}
	topo := p.Topo
	if n := topo.NumObjects(topology.PU); n != 32 {
		t.Fatalf("PUs = %d", n)
	}
	nodes := topo.NUMANodes()
	if len(nodes) != 9 { // 2 DRAM + 2 NVDIMM + 4 HBM + 1 NAM
		t.Fatalf("nodes = %d", len(nodes))
	}
	// OS blocks follow declaration order: DRAM 0-1, NVDIMM 2-3, HBM
	// 4-7, NAM 8.
	kindOf := map[int]string{}
	for _, n := range nodes {
		kindOf[n.OSIndex] = n.Subtype
	}
	want := map[int]string{0: "DRAM", 1: "DRAM", 2: "NVDIMM", 3: "NVDIMM",
		4: "HBM", 5: "HBM", 6: "HBM", 7: "HBM", 8: "NAM"}
	for os, kind := range want {
		if kindOf[os] != kind {
			t.Errorf("node %d = %s, want %s", os, kindOf[os], kind)
		}
	}
	// A core sees DRAM + NVDIMM + its HBM + NAM: 4 local kinds.
	local := topo.LocalNUMANodes(bitmap.NewFromIndexes(0))
	if len(local) != 4 {
		t.Fatalf("local = %d", len(local))
	}
	// Machine works and every node has a model.
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range m.Nodes() {
		if n.Model.TotalBW <= 0 {
			t.Fatalf("node %v missing model", n.Obj)
		}
	}
	// The HMAT view applies and rankings make sense end to end.
	reg := memattr.NewRegistry(topo)
	if err := hmat.Apply(p.HMATTable(), reg); err != nil {
		t.Fatal(err)
	}
	best, _, err := reg.BestLocalTarget(memattr.Bandwidth, bitmap.NewFromIndexes(0))
	if err != nil || best.Subtype != "HBM" {
		t.Fatalf("best bandwidth = %v, %v", best, err)
	}
	best, _, err = reg.BestLocalTarget(memattr.Latency, bitmap.NewFromIndexes(0))
	if err != nil || best.Subtype != "DRAM" {
		t.Fatalf("best latency = %v, %v", best, err)
	}
}

func TestSyntheticMemCache(t *testing.T) {
	p, err := FromSynthetic("knl-ish",
		"package:1 group:2 core:4 pu:1 memcache:group:2GiB mem:group:DRAM:12GiB:bw=30:lat=130 mem:group:MCDRAM:2GiB:bw=90:lat=140")
	if err != nil {
		t.Fatal(err)
	}
	if n := p.Topo.NumObjects(topology.MemCache); n != 2 {
		t.Fatalf("memcaches = %d", n)
	}
	dram := p.Topo.ObjectByOS(topology.NUMANode, 0)
	if topology.MemorySideCacheFor(dram) == nil {
		t.Fatal("DRAM not behind its cache")
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Model().MemCaches) != 2 {
		t.Fatal("model missing memory-side caches")
	}
}

func TestSyntheticDefaults(t *testing.T) {
	p, err := FromSynthetic("simple", "package:1 core:2 pu:2 mem:package:DRAM:8GiB")
	if err != nil {
		t.Fatal(err)
	}
	if n := p.Topo.NumObjects(topology.PU); n != 4 {
		t.Fatalf("PUs = %d", n)
	}
	m, _ := p.NewMachine()
	model := m.NodeByOS(0).Model
	if model.TotalBW != 80 || model.IdleLatency != 100 {
		t.Fatalf("defaults = %+v", model)
	}
}

func TestSyntheticErrors(t *testing.T) {
	cases := []string{
		"",                                     // no levels
		"package:2",                            // no PU level
		"package:2 pu:1",                       // no mem
		"pu:1 package:2 mem:package:DRAM:1GiB", // wrong nesting order
		"package:x pu:1 mem:package:DRAM:1GiB",
		"package:0 pu:1 mem:package:DRAM:1GiB",
		"package:1 pu:1 mem:package:DRAM",          // missing size
		"package:1 pu:1 mem:socket:DRAM:1GiB",      // bad level
		"package:1 pu:1 mem:package:DRAM:zz",       // bad size
		"package:1 pu:1 mem:package:DRAM:1GiB:x=1", // bad option
		"package:1 pu:1 mem:package:DRAM:1GiB:bw=-2",
		"package:1 pu:1 mem:package:DRAM:1GiB:lat=0",
		"package:1 pu:1 mem:package:DRAM:1GiB memcache:package:1GiB",       // trailing cache
		"package:1 pu:1 memcache:group:1GiB mem:package:DRAM:1GiB",         // cache level mismatch
		"bogus:1 pu:1 mem:package:DRAM:1GiB",                               // unknown token
		"package:1 pu:1 mem:package:DRAM:1GiB mem:package:NVDIMM:badsize:", // bad size again
	}
	for _, desc := range cases {
		if _, err := FromSynthetic("x", desc); err == nil {
			t.Errorf("FromSynthetic(%q) should fail", desc)
		}
	}
}

func TestSyntheticRendering(t *testing.T) {
	// The synthetic machine flows through the whole stack: here the
	// lstopo-style description survives a JSON round trip.
	p, err := FromSynthetic("rt", fig3ish)
	if err != nil {
		t.Fatal(err)
	}
	data, err := topology.Export(p.Topo)
	if err != nil {
		t.Fatal(err)
	}
	back, err := topology.Import(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumObjects(topology.NUMANode) != 9 {
		t.Fatal("round trip lost nodes")
	}
	if !strings.Contains(p.Description, "synthetic platform") {
		t.Fatal("description missing")
	}
}

// Get accepts "synthetic:<desc>" names, so every -platform flag can
// take an ad-hoc machine without registering it.
func TestGetSyntheticPrefix(t *testing.T) {
	p, err := Get("synthetic:package:1 core:2 pu:2 mem:package:DRAM:6GiB:bw=90:lat=85")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "synthetic" || !p.HasHMAT {
		t.Fatalf("got name %q HasHMAT %v, want synthetic with HMAT", p.Name, p.HasHMAT)
	}
	if len(p.Topo.NUMANodes()) != 1 || p.Topo.NUMANodes()[0].Subtype != "DRAM" {
		t.Fatalf("unexpected NUMA nodes: %+v", p.Topo.NUMANodes())
	}
	if _, err := Get("synthetic:not a machine"); err == nil {
		t.Fatal("malformed synthetic description accepted")
	}
}
