// Package platform defines the simulated machines used throughout the
// reproduction: the paper's two testbeds (dual Xeon Cascade Lake 6230
// with Optane NVDIMMs; Knights Landing 7230 in SNC-4 Flat mode), the
// Figure 1/2/3 topologies, and a few extra machines for tests and
// ablations. Each platform couples
//
//   - a topology (internal/topology),
//   - a ground-truth performance model (internal/memsim), calibrated so
//     the paper's measured numbers come out of the simulator with the
//     right ranking and crossover structure (see DESIGN.md), and
//   - the firmware view: whether the machine exposes an HMAT and with
//     which values (internal/hmat). KNL predates ACPI 6.2 and exposes
//     none, which forces the benchmarking discovery path — exactly the
//     situation Table I of the paper distinguishes.
package platform

import (
	"fmt"
	"sort"
	"strings"

	"hetmem/internal/hmat"
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

// GiB is one binary gigabyte.
const GiB = uint64(1) << 30

// Platform couples a topology with its performance model and firmware
// behaviour.
type Platform struct {
	Name        string
	Description string
	Topo        *topology.Topology
	Model       memsim.MachineModel

	// HasHMAT reports whether the firmware exposes an HMAT. When
	// false, performance attributes must be discovered by
	// benchmarking (internal/bench).
	HasHMAT  bool
	HMATOpts hmat.Options
}

// NewMachine instantiates a fresh simulated machine (capacity
// accounting and counters start empty).
func (p *Platform) NewMachine() (*memsim.Machine, error) {
	return memsim.NewMachine(p.Topo, p.Model)
}

// HMATTable builds the firmware table, or nil when the platform has
// none.
func (p *Platform) HMATTable() *hmat.Table {
	if !p.HasHMAT {
		return nil
	}
	return hmat.BuildTable(p.Topo, p.Model, p.HMATOpts)
}

var registry = map[string]func() *Platform{}

func register(name string, f func() *Platform) {
	if _, dup := registry[name]; dup {
		panic("platform: duplicate " + name)
	}
	registry[name] = f
}

// Get builds the named platform. Names of the form
// "synthetic:<desc>" build an ad-hoc machine from the FromSynthetic
// grammar instead of the registry, so every -platform flag can take a
// purpose-built topology (the tenantstress harness uses this for a
// fleet small enough to saturate).
func Get(name string) (*Platform, error) {
	if desc, ok := strings.CutPrefix(name, "synthetic:"); ok {
		return FromSynthetic("synthetic", desc)
	}
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("platform: unknown platform %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered platform names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// mustBuild wraps topology.Build for statically-defined machines.
func mustBuild(root *topology.Object) *topology.Topology {
	t, err := topology.Build(root)
	if err != nil {
		panic(err)
	}
	return t
}

// addCores attaches n cores (one PU each) to parent, numbering PUs
// from firstPU. Returns the next free PU number.
func addCores(parent *topology.Object, n, firstPU int) int {
	for i := 0; i < n; i++ {
		core := parent.AddChild(topology.New(topology.Core, firstPU+i))
		core.AddChild(topology.New(topology.PU, firstPU+i))
	}
	return firstPU + n
}
