package platform

import (
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/hmat"
	"hetmem/internal/memattr"
)

func TestRheaAttributeChoices(t *testing.T) {
	// Section II-C: the same requests that worked on KNL and Xeon adapt
	// to the HBM+DDR5 generation without any change.
	p, err := Get("rhea")
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	if err := hmat.Apply(p.HMATTable(), reg); err != nil {
		t.Fatal(err)
	}
	ini := bitmap.NewFromRange(0, 15) // cluster 0

	best, _, err := reg.BestLocalTarget(memattr.Bandwidth, ini)
	if err != nil || best.Subtype != "HBM" {
		t.Fatalf("bandwidth -> %v, %v", best, err)
	}
	// Latencies are close; DDR5 measures marginally lower, sparing HBM.
	best, _, err = reg.BestLocalTarget(memattr.Latency, ini)
	if err != nil || best.Subtype != "DDR5" {
		t.Fatalf("latency -> %v, %v", best, err)
	}
	best, _, err = reg.BestLocalTarget(memattr.Capacity, ini)
	if err != nil || best.Subtype != "DDR5" {
		t.Fatalf("capacity -> %v, %v", best, err)
	}
}

func TestPower9GPUMemoryVisible(t *testing.T) {
	p, err := Get("power9-gpu")
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	if err := hmat.Apply(p.HMATTable(), reg); err != nil {
		t.Fatal(err)
	}
	ini := bitmap.NewFromRange(0, 15) // socket 0

	// The GPU memory is a local target like any other...
	local := p.Topo.LocalNUMANodes(ini)
	kinds := map[string]bool{}
	for _, n := range local {
		kinds[n.Subtype] = true
	}
	if !kinds["DRAM"] || !kinds["GPU"] {
		t.Fatalf("local kinds = %v", kinds)
	}
	// ...but from the CPU's point of view it never wins a performance
	// attribute: DRAM has both better latency and better bandwidth
	// over NVLink. Capacity is also DRAM's. So CPU-side requests leave
	// the GPU memory alone — exactly what you want.
	for _, attr := range []memattr.ID{memattr.Bandwidth, memattr.Latency, memattr.Capacity} {
		best, _, err := reg.BestLocalTarget(attr, ini)
		if err != nil || best.Subtype != "DRAM" {
			t.Fatalf("%s -> %v, %v", reg.Name(attr), best, err)
		}
	}
	// A custom attribute can still steer explicitly GPU-shared buffers
	// there (the paper's "additional attributes for describing
	// different constraints" future work).
	id, err := reg.Register("GPUAccessibility", memattr.HigherFirst)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range p.Topo.NUMANodes() {
		v := uint64(1)
		if n.Subtype == "GPU" {
			v = 100
		}
		if err := reg.SetValue(id, n, nil, v); err != nil {
			t.Fatal(err)
		}
	}
	best, _, err := reg.BestLocalTarget(id, ini)
	if err != nil || best.Subtype != "GPU" {
		t.Fatalf("GPUAccessibility -> %v, %v", best, err)
	}
}
