package platform

import (
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

// Calibration for the Xeon Phi Knights Landing 7230 testbed (paper
// Section VI): 64 cores at 1.3 GHz, SNC-4 Flat — four clusters, each
// with 24 GB of DRAM and a 4 GB MCDRAM NUMA node. Per-cluster
// bandwidths are a quarter of the chip totals (~90 GB/s DDR4, ~360
// GB/s MCDRAM stream):
//
//   - MCDRAM triad per cluster ≈ 90 GB/s (Table IIIb: 85.05/89.90);
//   - DRAM triad per cluster ≈ 29 GB/s (Table IIIb: 29.17);
//   - latencies nearly identical (~130 vs ~145 ns — MCDRAM's idle
//     latency is in fact marginally *worse* than DDR4's on KNL), the
//     key property that makes Graph500 insensitive to the choice
//     (Table IIb) and makes "Latency" pick DRAM there, sparing the
//     scarce MCDRAM (Table IIIb's Latency row).
//
// KNL predates the ACPI HMAT: HasHMAT is false and attribute values
// must come from benchmarking.
func knlDRAM() memsim.NodeModel {
	return memsim.NodeModel{
		Kind:   "DRAM",
		ReadBW: 32, WriteBW: 16, TotalBW: 30.4,
		PerThreadBW: 2.5,
		IdleLatency: 130, LoadedLatency: 250,
	}
}

func knlMCDRAM() memsim.NodeModel {
	return memsim.NodeModel{
		Kind:   "MCDRAM",
		ReadBW: 120, WriteBW: 62, TotalBW: 102,
		PerThreadBW: 7,
		IdleLatency: 145, LoadedLatency: 185,
	}
}

func knlCommon() memsim.MachineModel {
	return memsim.MachineModel{
		Nodes: map[int]memsim.NodeModel{},
		// KNL has no shared L3; the aggregated per-cluster L2 acts as
		// the last-level cache.
		Caches:     memsim.CacheModel{LineSize: 64, L2PerCore: 1 << 20, LLCPerDomain: 8 << 20},
		Remote:     memsim.RemoteModel{BWFactor: 0.7, LatencyAdd: 25},
		FreqGHz:    1.3,
		CPUPerByte: 2e-11, // wide SIMD keeps stream cheap; per-edge graph costs are modelled by the workloads
	}
}

func init() {
	register("knl-snc4-flat", KNLSNC4Flat)
	register("knl-snc4-hybrid50", KNLSNC4Hybrid50)
	register("knl-quadrant-cache", KNLQuadrantCache)
}

// KNLSNC4Flat is the use-case machine: SNC-4 Flat, memory-side cache
// disabled. DRAM NUMA nodes are 0-3 and MCDRAM nodes 4-7 — MCDRAM
// always gets the higher OS indexes so that default allocations do not
// land on it by mistake (paper footnote on the Linux preferred-node
// restriction).
func KNLSNC4Flat() *Platform {
	root := topology.New(topology.Machine, -1)
	root.Name = "knl-snc4-flat"
	pkg := root.AddChild(topology.New(topology.Package, 0))
	pkg.SetInfo("CPUModel", "Intel Xeon Phi 7230")
	pu := 0
	for g := 0; g < 4; g++ {
		grp := pkg.AddChild(topology.New(topology.Group, g))
		grp.Name = "Cluster"
		grp.AddMemChild(topology.NewNUMA(g, "DRAM", 24*GiB))
		grp.AddMemChild(topology.NewNUMA(4+g, "MCDRAM", 4*GiB))
		pu = addCores(grp, 16, pu)
	}
	m := knlCommon()
	for g := 0; g < 4; g++ {
		m.Nodes[g] = knlDRAM()
		m.Nodes[4+g] = knlMCDRAM()
	}
	return &Platform{
		Name:        "knl-snc4-flat",
		Description: "Xeon Phi 7230, SNC-4 Flat: 4 clusters x (16 cores, 24GB DRAM, 4GB MCDRAM) (paper Section VI testbed)",
		Topo:        mustBuild(root),
		Model:       m,
		HasHMAT:     false,
	}
}

// KNLSNC4Hybrid50 is the Figure 1 machine: a 72-core part in
// SNC4/Hybrid50 — per cluster, 18 cores, 12 GB of DRAM behind a 2 GB
// MCDRAM memory-side cache, plus a 2 GB flat MCDRAM node.
func KNLSNC4Hybrid50() *Platform {
	root := topology.New(topology.Machine, -1)
	root.Name = "knl-snc4-hybrid50"
	pkg := root.AddChild(topology.New(topology.Package, 0))
	pkg.SetInfo("CPUModel", "Intel Xeon Phi 7290")
	pu := 0
	m := knlCommon()
	mc := knlMCDRAM()
	for g := 0; g < 4; g++ {
		grp := pkg.AddChild(topology.New(topology.Group, g))
		grp.Name = "Cluster"
		msc := grp.AddMemChild(topology.NewMemCache(2 * GiB))
		msc.AddMemChild(topology.NewNUMA(g, "DRAM", 12*GiB))
		grp.AddMemChild(topology.NewNUMA(4+g, "MCDRAM", 2*GiB))
		pu = addCores(grp, 18, pu)
		m.Nodes[g] = knlDRAM()
		m.Nodes[4+g] = mc
		if m.MemCaches == nil {
			m.MemCaches = map[int]memsim.MemCacheModel{}
		}
		m.MemCaches[g] = memsim.MemCacheModel{
			Size: 2 * GiB, ReadBW: mc.ReadBW, WriteBW: mc.WriteBW, TotalBW: mc.TotalBW, Latency: mc.IdleLatency,
		}
	}
	return &Platform{
		Name:        "knl-snc4-hybrid50",
		Description: "Xeon Phi in SNC4/Hybrid50: 4 clusters x (18 cores, 12GB DRAM behind 2GB memory-side cache, 2GB MCDRAM) (paper Figure 1)",
		Topo:        mustBuild(root),
		Model:       m,
		HasHMAT:     false,
	}
}

// KNLQuadrantCache is the all-hardware-managed configuration (Cache
// mode, no SNC): one 96 GB DRAM node behind a 16 GB MCDRAM memory-side
// cache — the zero-effort baseline of the performance/productivity
// trade-off the paper opens with.
func KNLQuadrantCache() *Platform {
	root := topology.New(topology.Machine, -1)
	root.Name = "knl-quadrant-cache"
	pkg := root.AddChild(topology.New(topology.Package, 0))
	msc := pkg.AddMemChild(topology.NewMemCache(16 * GiB))
	msc.AddMemChild(topology.NewNUMA(0, "DRAM", 96*GiB))
	addCores(pkg, 64, 0)
	m := knlCommon()
	dram := knlDRAM()
	// Whole-chip bandwidth with no SNC split.
	dram.ReadBW, dram.WriteBW, dram.TotalBW = 128, 64, 117
	m.Nodes[0] = dram
	mc := knlMCDRAM()
	m.MemCaches = map[int]memsim.MemCacheModel{
		0: {Size: 16 * GiB, ReadBW: mc.ReadBW * 4, WriteBW: mc.WriteBW * 4, TotalBW: mc.TotalBW * 4, Latency: mc.IdleLatency + 10},
	}
	return &Platform{
		Name:        "knl-quadrant-cache",
		Description: "Xeon Phi 7230 in Cache mode: 96GB DRAM behind 16GB MCDRAM memory-side cache",
		Topo:        mustBuild(root),
		Model:       m,
		HasHMAT:     false,
	}
}
