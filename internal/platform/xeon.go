package platform

import (
	"hetmem/internal/hmat"
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

// Calibration for the dual Xeon Cascade Lake 6230 + Optane NVDIMM
// testbed (paper Section VI, Tables II-IV; van Renen et al. for the
// device-level numbers). Bandwidths are GiB/s per socket, latencies ns.
//
//   - DRAM sustained STREAM-triad ≈ 75 GB/s (Table IIIa: 75.06/75.24);
//   - NVDIMM triad ≈ 31.6 GB/s while the working set fits the device's
//     internal buffering (Table IIIa: 31.59 at 22.4 GiB), dropping to
//     ~10.5 sustained (10.49 at 89.4 GiB) and degrading slowly with
//     footprint (9.46 at 223.5 GiB);
//   - latencies 81/305 ns idle, 285/860 ns loaded (van Renen).
func xeonDRAM() memsim.NodeModel {
	return memsim.NodeModel{
		Kind:   "DRAM",
		ReadBW: 105, WriteBW: 45, TotalBW: 100,
		PerThreadBW: 12,
		IdleLatency: 81, LoadedLatency: 285,
		DegradePerTiB: 0.35,
	}
}

func xeonNVDIMM() memsim.NodeModel {
	return memsim.NodeModel{
		Kind:   "NVDIMM",
		ReadBW: 30, WriteBW: 3.72, TotalBW: 26,
		PerThreadBW: 5,
		IdleLatency: 305, LoadedLatency: 860,
		BufferBytes:    32 * GiB,
		BufferedReadBW: 60, BufferedWriteBW: 13, BufferedTotalBW: 35.3,
		OverflowLatencyFactor: 2.0,
		DegradePerTiB:         0.7,
	}
}

func xeonCommon() memsim.MachineModel {
	return memsim.MachineModel{
		Nodes:      map[int]memsim.NodeModel{},
		Caches:     memsim.CacheModel{LineSize: 64, L2PerCore: 1 << 20, LLCPerDomain: 27 << 20},
		Remote:     memsim.RemoteModel{BWFactor: 0.45, LatencyAdd: 55},
		FreqGHz:    2.1,
		CPUPerByte: 6.2e-11,
	}
}

func init() {
	register("xeon", XeonCLX1LM)
	register("xeon-snc2", XeonCLXSNC2)
	register("xeon-2lm", XeonCLX2LM)
	register("xeon-quad", XeonQuad)
}

// XeonCLX1LM is the use-case machine of Section VI: two Xeon 6230
// packages (20 cores each), Sub-NUMA Clustering disabled, 192 GB DRAM
// and 768 GB NVDIMM per package, NVDIMMs in 1-Level-Memory mode
// (exposed as separate NUMA nodes 2 and 3).
func XeonCLX1LM() *Platform {
	root := topology.New(topology.Machine, -1)
	root.Name = "xeon"
	pu := 0
	for p := 0; p < 2; p++ {
		pkg := root.AddChild(topology.New(topology.Package, p))
		pkg.SetInfo("CPUModel", "Intel Xeon Gold 6230")
		pkg.AddMemChild(topology.NewNUMA(p, "DRAM", 192*GiB))
		pkg.AddMemChild(topology.NewNUMA(p+2, "NVDIMM", 768*GiB))
		pu = addCores(pkg, 20, pu)
	}
	m := xeonCommon()
	m.Nodes[0], m.Nodes[1] = xeonDRAM(), xeonDRAM()
	m.Nodes[2], m.Nodes[3] = xeonNVDIMM(), xeonNVDIMM()
	return &Platform{
		Name:        "xeon",
		Description: "dual Xeon Cascade Lake 6230, 2x192GB DRAM + 2x768GB NVDIMM, 1LM, SNC off (paper Section VI testbed)",
		Topo:        mustBuild(root),
		Model:       m,
		HasHMAT:     true,
		HMATOpts:    hmat.Options{LocalOnly: true},
	}
}

// XeonCLXSNC2 is the Figure 2 machine: the same two packages with
// Sub-NUMA Clustering enabled — four 10-core clusters each owning a
// 96 GB DRAM node, plus one 768 GB NVDIMM node per package. Its
// firmware reports the verbatim Figure 5 values (bandwidth 131072 and
// 78644 MB/s; latency 26 and 77 ns), local accesses only.
func XeonCLXSNC2() *Platform {
	root := topology.New(topology.Machine, -1)
	root.Name = "xeon-snc2"
	pu := 0
	dramOS := 0
	for p := 0; p < 2; p++ {
		pkg := root.AddChild(topology.New(topology.Package, p))
		pkg.SetInfo("CPUModel", "Intel Xeon Gold 6230")
		for g := 0; g < 2; g++ {
			grp := pkg.AddChild(topology.New(topology.Group, p*2+g))
			grp.Name = "SubNUMA Cluster"
			grp.AddMemChild(topology.NewNUMA(dramOS, "DRAM", 96*GiB))
			dramOS++
			pu = addCores(grp, 10, pu)
		}
		pkg.AddMemChild(topology.NewNUMA(4+p, "NVDIMM", 768*GiB))
	}
	m := xeonCommon()
	// Per-SNC DRAM halves the per-node bandwidth.
	dram := xeonDRAM()
	dram.ReadBW, dram.WriteBW, dram.TotalBW = 52, 23, 50
	m.Caches.LLCPerDomain = 13 << 20
	for os := 0; os < 4; os++ {
		m.Nodes[os] = dram
	}
	m.Nodes[4], m.Nodes[5] = xeonNVDIMM(), xeonNVDIMM()
	return &Platform{
		Name:        "xeon-snc2",
		Description: "dual Xeon 6230 with SNC2: 4x96GB DRAM + 2x768GB NVDIMM, 1LM (paper Figures 2 and 5)",
		Topo:        mustBuild(root),
		Model:       m,
		HasHMAT:     true,
		HMATOpts: hmat.Options{
			LocalOnly: true,
			// The verbatim numbers of Figure 5.
			Override: func(ini, tgt *topology.Object, dt hmat.DataType, local bool) (uint64, bool) {
				if !local {
					return 0, false
				}
				switch {
				case dt == hmat.AccessBandwidth && tgt.Subtype == "DRAM":
					return 131072, true
				case dt == hmat.AccessBandwidth && tgt.Subtype == "NVDIMM":
					return 78644, true
				case dt == hmat.AccessLatency && tgt.Subtype == "DRAM":
					return 26, true
				case dt == hmat.AccessLatency && tgt.Subtype == "NVDIMM":
					return 77, true
				}
				return 0, false
			},
		},
	}
}

// XeonCLX2LM is the same hardware in 2-Level-Memory mode: the DRAM of
// each package becomes a memory-side cache in front of the NVDIMM,
// which is the only visible NUMA node — the "productivity" end of the
// paper's performance/productivity trade-off.
func XeonCLX2LM() *Platform {
	root := topology.New(topology.Machine, -1)
	root.Name = "xeon-2lm"
	pu := 0
	for p := 0; p < 2; p++ {
		pkg := root.AddChild(topology.New(topology.Package, p))
		msc := pkg.AddMemChild(topology.NewMemCache(192 * GiB))
		msc.AddMemChild(topology.NewNUMA(p, "NVDIMM", 768*GiB))
		pu = addCores(pkg, 20, pu)
	}
	m := xeonCommon()
	m.Nodes[0], m.Nodes[1] = xeonNVDIMM(), xeonNVDIMM()
	dram := xeonDRAM()
	m.MemCaches = map[int]memsim.MemCacheModel{
		0: {Size: 192 * GiB, ReadBW: dram.ReadBW, WriteBW: dram.WriteBW, TotalBW: dram.TotalBW, Latency: dram.IdleLatency + 15},
		1: {Size: 192 * GiB, ReadBW: dram.ReadBW, WriteBW: dram.WriteBW, TotalBW: dram.TotalBW, Latency: dram.IdleLatency + 15},
	}
	return &Platform{
		Name:        "xeon-2lm",
		Description: "dual Xeon 6230 in 2-Level-Memory mode: DRAM as memory-side cache in front of NVDIMM",
		Topo:        mustBuild(root),
		Model:       m,
		HasHMAT:     true,
		HMATOpts:    hmat.Options{LocalOnly: true},
	}
}

// XeonQuad is the Section VIII thought experiment: four packages, each
// split in two SNCs with their own DRAM, plus one NVDIMM per package —
// 8 DRAM + 4 NVDIMM NUMA nodes.
func XeonQuad() *Platform {
	root := topology.New(topology.Machine, -1)
	root.Name = "xeon-quad"
	pu := 0
	dramOS := 0
	for p := 0; p < 4; p++ {
		pkg := root.AddChild(topology.New(topology.Package, p))
		for g := 0; g < 2; g++ {
			grp := pkg.AddChild(topology.New(topology.Group, p*2+g))
			grp.Name = "SubNUMA Cluster"
			grp.AddMemChild(topology.NewNUMA(dramOS, "DRAM", 48*GiB))
			dramOS++
			pu = addCores(grp, 10, pu)
		}
		pkg.AddMemChild(topology.NewNUMA(8+p, "NVDIMM", 512*GiB))
	}
	m := xeonCommon()
	dram := xeonDRAM()
	dram.ReadBW, dram.WriteBW, dram.TotalBW = 52, 23, 50
	for os := 0; os < 8; os++ {
		m.Nodes[os] = dram
	}
	for os := 8; os < 12; os++ {
		m.Nodes[os] = xeonNVDIMM()
	}
	return &Platform{
		Name:        "xeon-quad",
		Description: "four-socket Xeon with SNC2: 8 DRAM + 4 NVDIMM NUMA nodes (paper Section VIII)",
		Topo:        mustBuild(root),
		Model:       m,
		HasHMAT:     true,
		HMATOpts:    hmat.Options{LocalOnly: true},
	}
}
