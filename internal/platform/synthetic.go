package platform

import (
	"fmt"
	"strconv"
	"strings"

	"hetmem/internal/hmat"
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

// FromSynthetic builds a platform from a textual description, in the
// spirit of hwloc's synthetic topologies (lstopo --input "node:4
// core:8 pu:2"). The grammar, whitespace-separated:
//
//	CPU levels (left to right, each nested in the previous):
//	    package:N   group:N   core:N   pu:N
//	Memory attachments (one NUMA node per instance of the level):
//	    mem:LEVEL:KIND:SIZE[:bw=GBS][:lat=NS]
//	        LEVEL ∈ machine|package|group|core
//	        KIND is free-form (DRAM, HBM, MCDRAM, NVDIMM, NAM, ...)
//	        SIZE accepts KiB/MiB/GiB/TiB suffixes
//	Memory-side caches in front of the *next* mem spec's nodes:
//	    memcache:LEVEL:SIZE
//
// Example — a 2-socket machine with per-socket DRAM + NVDIMM and
// per-group HBM:
//
//	package:2 group:2 core:8 pu:1
//	mem:package:DRAM:96GiB:bw=100:lat=85
//	mem:package:NVDIMM:768GiB:bw=25:lat=310
//	mem:group:HBM:8GiB:bw=220:lat=110
//
// NUMA node OS indexes are assigned in declaration order, one block of
// indexes per mem spec (so the first spec's nodes get the lowest
// indexes, matching the platform conventions of the paper). Bandwidth
// defaults to 80 GB/s and latency to 100 ns when omitted; the machine
// model derives read/write bandwidths and a loaded latency from them.
func FromSynthetic(name, desc string) (*Platform, error) {
	type level struct {
		typ   topology.Type
		count int
	}
	type memSpec struct {
		level     string
		kind      string
		size      uint64
		bw        float64
		lat       float64
		cacheSize uint64 // from a preceding memcache spec
	}
	var levels []level
	var mems []memSpec
	var pendingCache struct {
		level string
		size  uint64
	}

	levelTypes := map[string]topology.Type{
		"package": topology.Package,
		"group":   topology.Group,
		"core":    topology.Core,
		"pu":      topology.PU,
	}
	validMemLevels := map[string]bool{"machine": true, "package": true, "group": true, "core": true}

	for _, tok := range strings.Fields(desc) {
		parts := strings.Split(tok, ":")
		switch parts[0] {
		case "package", "group", "core", "pu":
			if len(parts) != 2 {
				return nil, fmt.Errorf("platform: synthetic token %q: want level:count", tok)
			}
			n, err := strconv.Atoi(parts[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("platform: synthetic token %q: bad count", tok)
			}
			levels = append(levels, level{levelTypes[parts[0]], n})
		case "mem":
			if len(parts) < 4 {
				return nil, fmt.Errorf("platform: synthetic token %q: want mem:level:kind:size", tok)
			}
			ms := memSpec{level: parts[1], kind: parts[2], bw: 80, lat: 100}
			if !validMemLevels[ms.level] {
				return nil, fmt.Errorf("platform: synthetic token %q: bad mem level %q", tok, ms.level)
			}
			size, err := parseSyntheticSize(parts[3])
			if err != nil {
				return nil, fmt.Errorf("platform: synthetic token %q: %v", tok, err)
			}
			ms.size = size
			for _, opt := range parts[4:] {
				switch {
				case strings.HasPrefix(opt, "bw="):
					v, err := strconv.ParseFloat(opt[3:], 64)
					if err != nil || v <= 0 {
						return nil, fmt.Errorf("platform: synthetic token %q: bad bw", tok)
					}
					ms.bw = v
				case strings.HasPrefix(opt, "lat="):
					v, err := strconv.ParseFloat(opt[4:], 64)
					if err != nil || v <= 0 {
						return nil, fmt.Errorf("platform: synthetic token %q: bad lat", tok)
					}
					ms.lat = v
				default:
					return nil, fmt.Errorf("platform: synthetic token %q: unknown option %q", tok, opt)
				}
			}
			if pendingCache.size > 0 {
				if pendingCache.level != ms.level {
					return nil, fmt.Errorf("platform: memcache level %q does not match next mem level %q",
						pendingCache.level, ms.level)
				}
				ms.cacheSize = pendingCache.size
				pendingCache.size = 0
			}
			mems = append(mems, ms)
		case "memcache":
			if len(parts) != 3 {
				return nil, fmt.Errorf("platform: synthetic token %q: want memcache:level:size", tok)
			}
			size, err := parseSyntheticSize(parts[2])
			if err != nil {
				return nil, fmt.Errorf("platform: synthetic token %q: %v", tok, err)
			}
			pendingCache.level = parts[1]
			pendingCache.size = size
		default:
			return nil, fmt.Errorf("platform: unknown synthetic token %q", tok)
		}
	}
	if pendingCache.size > 0 {
		return nil, fmt.Errorf("platform: trailing memcache with no mem spec")
	}
	if len(levels) == 0 || levels[len(levels)-1].typ != topology.PU {
		return nil, fmt.Errorf("platform: synthetic description must end its CPU levels with pu:N")
	}
	if len(mems) == 0 {
		return nil, fmt.Errorf("platform: synthetic description needs at least one mem spec")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].typ <= levels[i-1].typ {
			return nil, fmt.Errorf("platform: CPU levels must be declared outermost-first")
		}
	}

	// Build the tree.
	root := topology.New(topology.Machine, -1)
	root.Name = name
	model := memsim.MachineModel{
		Nodes:   map[int]memsim.NodeModel{},
		Caches:  memsim.DefaultCaches(),
		Remote:  memsim.RemoteModel{BWFactor: 0.5, LatencyAdd: 60},
		FreqGHz: 2.2,
	}

	// Per-spec OS index blocks: count instances per level first.
	instances := map[string]int{"machine": 1}
	count := 1
	for _, l := range levels {
		count *= l.count
		switch l.typ {
		case topology.Package:
			instances["package"] = count
		case topology.Group:
			instances["group"] = count
		case topology.Core:
			instances["core"] = count
		}
	}
	osBase := make([]int, len(mems))
	next := 0
	for i, ms := range mems {
		osBase[i] = next
		next += instances[ms.level]
	}
	osNext := append([]int(nil), osBase...)

	attach := func(obj *topology.Object, levelName string) {
		for i, ms := range mems {
			if ms.level != levelName {
				continue
			}
			os := osNext[i]
			osNext[i]++
			node := topology.NewNUMA(os, ms.kind, ms.size)
			if ms.cacheSize > 0 {
				msc := topology.NewMemCache(ms.cacheSize)
				msc.AddMemChild(node)
				obj.AddMemChild(msc)
				model.MemCaches = ensureCaches(&model)
				model.MemCaches[os] = memsim.MemCacheModel{
					Size: ms.cacheSize, ReadBW: ms.bw * 3, WriteBW: ms.bw * 2, TotalBW: ms.bw * 3, Latency: ms.lat,
				}
			} else {
				obj.AddMemChild(node)
			}
			model.Nodes[os] = memsim.NodeModel{
				Kind:   ms.kind,
				ReadBW: ms.bw * 1.3, WriteBW: ms.bw * 0.6, TotalBW: ms.bw,
				PerThreadBW: ms.bw / 8,
				IdleLatency: ms.lat, LoadedLatency: ms.lat * 2.5,
			}
		}
	}

	pu := 0
	var expand func(parent *topology.Object, depth int)
	expand = func(parent *topology.Object, depth int) {
		if depth == len(levels) {
			return
		}
		l := levels[depth]
		for i := 0; i < l.count; i++ {
			var child *topology.Object
			switch l.typ {
			case topology.PU:
				child = parent.AddChild(topology.New(topology.PU, pu))
				pu++
				continue
			case topology.Core:
				child = parent.AddChild(topology.New(topology.Core, pu))
			default:
				child = parent.AddChild(topology.New(l.typ, instanceCounter(parent, l.typ)))
			}
			switch l.typ {
			case topology.Package:
				attach(child, "package")
			case topology.Group:
				attach(child, "group")
			case topology.Core:
				attach(child, "core")
			}
			expand(child, depth+1)
		}
	}
	attach(root, "machine")
	expand(root, 0)

	topo, err := topology.Build(root)
	if err != nil {
		return nil, fmt.Errorf("platform: synthetic build: %w", err)
	}
	return &Platform{
		Name:        name,
		Description: "synthetic platform: " + desc,
		Topo:        topo,
		Model:       model,
		HasHMAT:     true,
		HMATOpts:    hmat.Options{LocalOnly: false},
	}, nil
}

func ensureCaches(m *memsim.MachineModel) map[int]memsim.MemCacheModel {
	if m.MemCaches == nil {
		m.MemCaches = map[int]memsim.MemCacheModel{}
	}
	return m.MemCaches
}

// instanceCounter assigns the next OS index for an intermediate level
// (Package/Group) by counting the objects of that type already in the
// tree — indexes need only be unique.
func instanceCounter(parent *topology.Object, typ topology.Type) int {
	root := parent
	for root.Parent != nil {
		root = root.Parent
	}
	n := 0
	var walk func(o *topology.Object)
	walk = func(o *topology.Object) {
		if o.Type == typ {
			n++
		}
		for _, c := range o.Children {
			walk(c)
		}
	}
	walk(root)
	return n
}

func parseSyntheticSize(s string) (uint64, error) {
	mult := uint64(1)
	for _, suf := range []struct {
		s string
		m uint64
	}{{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}, {"TiB", 1 << 40},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"TB", 1 << 40}} {
		if strings.HasSuffix(s, suf.s) {
			mult = suf.m
			s = strings.TrimSuffix(s, suf.s)
			break
		}
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil || v == 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
