package platform

import (
	"hetmem/internal/hmat"
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

func init() {
	register("fictitious", Fictitious)
	register("homogeneous", Homogeneous)
}

// Fictitious is the Figure 3 machine: every kind of memory at once.
// Each of the two packages has a local NVDIMM and DRAM; each Sub-NUMA
// Cluster inside them has an HBM; and a network-attached memory (NAM)
// hangs off the whole machine with no local CPU, reachable from
// everywhere at high latency. Four local NUMA nodes per core.
func Fictitious() *Platform {
	root := topology.New(topology.Machine, -1)
	root.Name = "fictitious"
	pu := 0
	hbmOS := 6
	for p := 0; p < 2; p++ {
		pkg := root.AddChild(topology.New(topology.Package, p))
		pkg.AddMemChild(topology.NewNUMA(p, "DRAM", 64*GiB))
		pkg.AddMemChild(topology.NewNUMA(2+p, "NVDIMM", 512*GiB))
		for g := 0; g < 2; g++ {
			grp := pkg.AddChild(topology.New(topology.Group, p*2+g))
			grp.Name = "SubNUMA Cluster"
			grp.AddMemChild(topology.NewNUMA(hbmOS, "HBM", 8*GiB))
			hbmOS++
			pu = addCores(grp, 4, pu)
		}
	}
	// Network-attached memory: a memory child of the machine itself.
	root.AddMemChild(topology.NewNUMA(10, "NAM", 1024*GiB))

	m := memsim.MachineModel{
		Nodes:      map[int]memsim.NodeModel{},
		Caches:     memsim.CacheModel{LineSize: 64, L2PerCore: 1 << 20, LLCPerDomain: 16 << 20},
		Remote:     memsim.RemoteModel{BWFactor: 0.5, LatencyAdd: 60},
		FreqGHz:    2.4,
		CPUPerByte: 6e-11,
	}
	dram := memsim.NodeModel{Kind: "DRAM", ReadBW: 100, WriteBW: 50, TotalBW: 80, PerThreadBW: 12, IdleLatency: 90, LoadedLatency: 250}
	nv := memsim.NodeModel{Kind: "NVDIMM", ReadBW: 30, WriteBW: 4, TotalBW: 26, PerThreadBW: 5, IdleLatency: 310, LoadedLatency: 900}
	hbm := memsim.NodeModel{Kind: "HBM", ReadBW: 250, WriteBW: 160, TotalBW: 220, PerThreadBW: 30, IdleLatency: 105, LoadedLatency: 160}
	nam := memsim.NodeModel{Kind: "NAM", ReadBW: 10, WriteBW: 10, TotalBW: 12, PerThreadBW: 4, IdleLatency: 1500, LoadedLatency: 4000}
	for p := 0; p < 2; p++ {
		m.Nodes[p] = dram
		m.Nodes[2+p] = nv
	}
	for os := 6; os < 10; os++ {
		m.Nodes[os] = hbm
	}
	m.Nodes[10] = nam
	return &Platform{
		Name:        "fictitious",
		Description: "fictitious platform with per-package DRAM+NVDIMM, per-SNC HBM, and machine-wide network-attached memory (paper Figure 3)",
		Topo:        mustBuild(root),
		Model:       m,
		HasHMAT:     true,
		HMATOpts:    hmat.Options{LocalOnly: false, IncludeReadWrite: true},
	}
}

// Homogeneous is a plain dual-socket DRAM-only NUMA machine. The
// paper notes the attribute API degenerates gracefully here: latency
// and bandwidth simply tell local nodes from remote ones.
func Homogeneous() *Platform {
	root := topology.New(topology.Machine, -1)
	root.Name = "homogeneous"
	pu := 0
	for p := 0; p < 2; p++ {
		pkg := root.AddChild(topology.New(topology.Package, p))
		pkg.AddMemChild(topology.NewNUMA(p, "DRAM", 128*GiB))
		pu = addCores(pkg, 16, pu)
	}
	m := memsim.MachineModel{
		Nodes:      map[int]memsim.NodeModel{},
		Caches:     memsim.CacheModel{LineSize: 64, L2PerCore: 1 << 20, LLCPerDomain: 22 << 20},
		Remote:     memsim.RemoteModel{BWFactor: 0.6, LatencyAdd: 50},
		FreqGHz:    2.5,
		CPUPerByte: 6e-11,
	}
	dram := memsim.NodeModel{Kind: "DRAM", ReadBW: 110, WriteBW: 55, TotalBW: 85, PerThreadBW: 13, IdleLatency: 85, LoadedLatency: 240}
	m.Nodes[0], m.Nodes[1] = dram, dram
	return &Platform{
		Name:        "homogeneous",
		Description: "homogeneous dual-socket DRAM machine (NUMA-only degenerate case)",
		Topo:        mustBuild(root),
		Model:       m,
		HasHMAT:     true,
		// Expose the full matrix so remote nodes are comparable.
		HMATOpts: hmat.Options{LocalOnly: false},
	}
}
