package platform

import (
	"strings"
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/hmat"
	"hetmem/internal/memattr"
	"hetmem/internal/topology"
)

func TestAllPlatformsWellFormed(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Fatalf("only %d platforms registered: %v", len(names), names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if p.Name != name {
				t.Errorf("Name = %q", p.Name)
			}
			if p.Description == "" {
				t.Error("empty description")
			}
			m, err := p.NewMachine()
			if err != nil {
				t.Fatalf("NewMachine: %v", err)
			}
			// Every NUMA node has a model with sane values.
			for _, n := range m.Nodes() {
				if n.Model.TotalBW <= 0 || n.Model.IdleLatency <= 0 {
					t.Errorf("node %v has degenerate model %+v", n.Obj, n.Model)
				}
				if n.Capacity() == 0 {
					t.Errorf("node %v has zero capacity", n.Obj)
				}
			}
			// The firmware view must apply cleanly when present.
			reg := memattr.NewRegistry(p.Topo)
			if tbl := p.HMATTable(); tbl != nil {
				if !p.HasHMAT {
					t.Fatal("table without HasHMAT")
				}
				if err := hmat.Apply(tbl, reg); err != nil {
					t.Fatalf("HMAT apply: %v", err)
				}
				if !reg.HasValues(memattr.Bandwidth) || !reg.HasValues(memattr.Latency) {
					t.Error("HMAT did not populate bandwidth/latency")
				}
			} else if p.HasHMAT {
				t.Fatal("HasHMAT but nil table")
			}
		})
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("bogus"); err == nil || !strings.Contains(err.Error(), "unknown platform") {
		t.Fatalf("err = %v", err)
	}
}

func TestXeonUseCaseShape(t *testing.T) {
	p, _ := Get("xeon")
	topo := p.Topo
	if n := topo.NumObjects(topology.PU); n != 40 {
		t.Fatalf("PUs = %d, want 40", n)
	}
	nodes := topo.NUMANodes()
	if len(nodes) != 4 {
		t.Fatalf("NUMA nodes = %d", len(nodes))
	}
	// Per the paper: first nodes are DRAM, NVDIMMs get higher indexes.
	if nodes[0].Subtype != "DRAM" || nodes[0].OSIndex != 0 {
		t.Fatalf("node0 = %v", nodes[0])
	}
	var kinds []string
	for _, n := range nodes {
		kinds = append(kinds, n.Subtype)
	}
	if got := strings.Join(kinds, ","); got != "DRAM,NVDIMM,DRAM,NVDIMM" {
		t.Fatalf("kind order = %s", got)
	}
	if nodes[1].Memory != 768*GiB || nodes[0].Memory != 192*GiB {
		t.Fatalf("capacities: %d %d", nodes[0].Memory, nodes[1].Memory)
	}
}

func TestXeonSNC2Figure5Values(t *testing.T) {
	p, _ := Get("xeon-snc2")
	topo := p.Topo
	nodes := topo.NUMANodes()
	// Logical order per Figure 5: DRAM,DRAM,NVDIMM per package.
	var kinds []string
	for _, n := range nodes {
		kinds = append(kinds, n.Subtype)
	}
	if got := strings.Join(kinds, ","); got != "DRAM,DRAM,NVDIMM,DRAM,DRAM,NVDIMM" {
		t.Fatalf("logical kind order = %s", got)
	}

	reg := memattr.NewRegistry(topo)
	if err := hmat.Apply(p.HMATTable(), reg); err != nil {
		t.Fatal(err)
	}
	// Verbatim Figure 5 values.
	ini := bitmap.NewFromIndexes(0) // a PU in Group0 L#0
	dram := nodes[0]
	nv := nodes[2]
	if v, err := reg.Value(memattr.Bandwidth, dram, ini); err != nil || v != 131072 {
		t.Fatalf("DRAM bw = %d, %v (want 131072)", v, err)
	}
	if v, err := reg.Value(memattr.Latency, dram, ini); err != nil || v != 26 {
		t.Fatalf("DRAM lat = %d, %v (want 26)", v, err)
	}
	if v, err := reg.Value(memattr.Bandwidth, nv, ini); err != nil || v != 78644 {
		t.Fatalf("NVDIMM bw = %d, %v (want 78644)", v, err)
	}
	if v, err := reg.Value(memattr.Latency, nv, ini); err != nil || v != 77 {
		t.Fatalf("NVDIMM lat = %d, %v (want 77)", v, err)
	}
	if v, err := reg.Value(memattr.Capacity, dram, nil); err != nil || v != 96*GiB {
		t.Fatalf("DRAM capacity = %d, %v", v, err)
	}
	if v, err := reg.Value(memattr.Capacity, nv, nil); err != nil || v != 768*GiB {
		t.Fatalf("NVDIMM capacity = %d, %v", v, err)
	}
	// Local-only: the DRAM of package 1 has no value from package 0.
	pkg1pu := bitmap.NewFromIndexes(25)
	if _, err := reg.Value(memattr.Bandwidth, dram, pkg1pu); err == nil {
		t.Fatal("remote value should be absent (Linux local-only limitation)")
	}
}

func TestKNLShape(t *testing.T) {
	p, _ := Get("knl-snc4-flat")
	topo := p.Topo
	if n := topo.NumObjects(topology.PU); n != 64 {
		t.Fatalf("PUs = %d", n)
	}
	if p.HasHMAT || p.HMATTable() != nil {
		t.Fatal("KNL must not expose an HMAT")
	}
	nodes := topo.NUMANodes()
	if len(nodes) != 8 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	// MCDRAM OS indexes are strictly above all DRAM OS indexes (Linux
	// preferred-node footnote in the paper).
	maxDRAM, minMC := -1, 1<<30
	for _, n := range nodes {
		switch n.Subtype {
		case "DRAM":
			if n.OSIndex > maxDRAM {
				maxDRAM = n.OSIndex
			}
		case "MCDRAM":
			if n.OSIndex < minMC {
				minMC = n.OSIndex
			}
		}
	}
	if maxDRAM >= minMC {
		t.Fatalf("MCDRAM OS indexes must exceed DRAM's: maxDRAM=%d minMC=%d", maxDRAM, minMC)
	}
	// A core in cluster 2 sees exactly its cluster's DRAM+MCDRAM.
	local := topo.LocalNUMANodes(bitmap.NewFromIndexes(34))
	if len(local) != 2 {
		t.Fatalf("local nodes = %d", len(local))
	}
	if local[0].Subtype != "DRAM" || local[1].Subtype != "MCDRAM" {
		t.Fatalf("local = %v %v", local[0], local[1])
	}
	if local[1].Memory != 4*GiB {
		t.Fatalf("MCDRAM capacity = %d", local[1].Memory)
	}
}

func TestKNLHybrid50Shape(t *testing.T) {
	p, _ := Get("knl-snc4-hybrid50")
	topo := p.Topo
	if n := topo.NumObjects(topology.PU); n != 72 {
		t.Fatalf("PUs = %d", n)
	}
	if n := topo.NumObjects(topology.MemCache); n != 4 {
		t.Fatalf("memory-side caches = %d", n)
	}
	for _, n := range topo.NUMANodes() {
		switch n.Subtype {
		case "DRAM":
			if n.Memory != 12*GiB {
				t.Fatalf("DRAM = %d", n.Memory)
			}
			c := topology.MemorySideCacheFor(n)
			if c == nil || c.CacheSize != 2*GiB {
				t.Fatalf("DRAM cache = %v", c)
			}
		case "MCDRAM":
			if n.Memory != 2*GiB {
				t.Fatalf("MCDRAM = %d", n.Memory)
			}
		}
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Model().MemCaches) != 4 {
		t.Fatal("machine model missing memory-side caches")
	}
}

func TestFictitiousFourLocalKinds(t *testing.T) {
	p, _ := Get("fictitious")
	topo := p.Topo
	// A core in SNC 0 of package 0 sees DRAM, NVDIMM, HBM and the NAM:
	// the paper's "4 local NUMA nodes" claim for Figure 3.
	local := topo.LocalNUMANodes(bitmap.NewFromIndexes(0))
	kinds := map[string]bool{}
	for _, n := range local {
		kinds[n.Subtype] = true
	}
	for _, k := range []string{"DRAM", "NVDIMM", "HBM", "NAM"} {
		if !kinds[k] {
			t.Errorf("kind %s not local: have %v", k, kinds)
		}
	}
	if len(local) != 4 {
		t.Fatalf("local nodes = %d, want 4", len(local))
	}
	// The HBM of the *other* SNC is not local.
	for _, n := range local {
		if n.Subtype == "HBM" && !n.CPUSet.Test(0) {
			t.Fatal("wrong HBM considered local")
		}
	}
}

func TestHomogeneousRemoteComparable(t *testing.T) {
	p, _ := Get("homogeneous")
	reg := memattr.NewRegistry(p.Topo)
	if err := hmat.Apply(p.HMATTable(), reg); err != nil {
		t.Fatal(err)
	}
	// With the full matrix exposed, both nodes have values from
	// package 0 and the local one ranks first for latency.
	ini := bitmap.NewFromIndexes(0)
	ranked, err := reg.RankTargets(memattr.Latency, ini, p.Topo.NUMANodes())
	if err != nil || len(ranked) != 2 {
		t.Fatalf("ranked = %v, %v", ranked, err)
	}
	if ranked[0].Target.OSIndex != 0 || ranked[1].Target.OSIndex != 1 {
		t.Fatalf("order = %v", ranked)
	}
	if ranked[1].Value <= ranked[0].Value {
		t.Fatal("remote latency should exceed local")
	}
}

func Test2LMShape(t *testing.T) {
	p, _ := Get("xeon-2lm")
	nodes := p.Topo.NUMANodes()
	if len(nodes) != 2 {
		t.Fatalf("2LM should expose only NVDIMM nodes, got %d", len(nodes))
	}
	for _, n := range nodes {
		if n.Subtype != "NVDIMM" {
			t.Fatalf("node = %v", n)
		}
		if topology.MemorySideCacheFor(n) == nil {
			t.Fatal("NVDIMM must sit behind a DRAM memory-side cache")
		}
	}
}
