package interpose

import (
	"errors"
	"strings"
	"testing"

	"hetmem/internal/alloc"
	"hetmem/internal/bench"
	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

const gib = uint64(1) << 30

func knlAllocator(t *testing.T) (*alloc.Allocator, *bitmap.Bitmap) {
	t.Helper()
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	results, err := bench.MeasureAll(m, bench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	if err := bench.Apply(results, reg); err != nil {
		t.Fatal(err)
	}
	return alloc.New(m, reg), bitmap.NewFromRange(0, 15)
}

func TestRoutingByName(t *testing.T) {
	a, ini := knlAllocator(t)
	ip := New(a, ini, memattr.Capacity)
	if err := ip.AddRule(Rule{Pattern: "csr_*", Attr: memattr.Bandwidth}); err != nil {
		t.Fatal(err)
	}
	if err := ip.AddRule(Rule{Pattern: "bfs_parent", Attr: memattr.Latency}); err != nil {
		t.Fatal(err)
	}

	adj, err := ip.Malloc("csr_adj", gib)
	if err != nil {
		t.Fatal(err)
	}
	if adj.Segments[0].Node.Kind() != "MCDRAM" {
		t.Fatalf("csr_adj on %s", adj.NodeNames())
	}
	parent, err := ip.Malloc("bfs_parent", gib)
	if err != nil {
		t.Fatal(err)
	}
	if parent.Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("bfs_parent on %s", parent.NodeNames())
	}
	// Unmatched site: default attribute (Capacity -> DRAM on KNL).
	other, err := ip.Malloc("scratch", gib)
	if err != nil {
		t.Fatal(err)
	}
	if other.Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("scratch on %s", other.NodeNames())
	}

	hits := ip.Report()
	if len(hits) != 3 {
		t.Fatalf("hits = %d", len(hits))
	}
	if hits[0].Rule != 0 || hits[1].Rule != 1 || hits[2].Rule != -1 {
		t.Fatalf("rule indexes = %d %d %d", hits[0].Rule, hits[1].Rule, hits[2].Rule)
	}
	rep := ip.RenderReport()
	for _, want := range []string{"csr_adj", "Bandwidth", "default", "MCDRAM"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestSizeRules(t *testing.T) {
	a, ini := knlAllocator(t)
	ip := New(a, ini, memattr.Capacity)
	// AutoHBW-style: mid-sized allocations to bandwidth memory.
	if err := ip.AddRule(Rule{Pattern: "*", Attr: memattr.Bandwidth, MinSize: 1 << 20, MaxSize: 2 * gib}); err != nil {
		t.Fatal(err)
	}
	small, _ := ip.Malloc("tiny", 4096)
	mid, _ := ip.Malloc("mid", gib)
	big, _ := ip.Malloc("big", 3*gib)
	if small.Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("tiny on %s", small.NodeNames())
	}
	if mid.Segments[0].Node.Kind() != "MCDRAM" {
		t.Fatalf("mid on %s", mid.NodeNames())
	}
	if big.Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("big on %s", big.NodeNames())
	}
}

func TestFirstMatchWins(t *testing.T) {
	a, ini := knlAllocator(t)
	ip := New(a, ini, memattr.Capacity)
	ip.AddRule(Rule{Pattern: "buf*", Attr: memattr.Bandwidth})
	ip.AddRule(Rule{Pattern: "buffer", Attr: memattr.Latency})
	b, _ := ip.Malloc("buffer", gib)
	if b.Segments[0].Node.Kind() != "MCDRAM" {
		t.Fatalf("first-match broken: %s", b.NodeNames())
	}
	if len(ip.Rules()) != 2 {
		t.Fatal("Rules() wrong length")
	}
}

func TestAddRuleValidation(t *testing.T) {
	a, ini := knlAllocator(t)
	ip := New(a, ini, memattr.Capacity)
	if err := ip.AddRule(Rule{Pattern: "[", Attr: memattr.Latency}); err == nil {
		t.Fatal("bad glob should fail")
	}
	if err := ip.AddRule(Rule{Pattern: "x", Attr: memattr.ID(99)}); err == nil {
		t.Fatal("unknown attribute should fail")
	}
}

func TestMallocError(t *testing.T) {
	a, ini := knlAllocator(t)
	ip := New(a, ini, memattr.Capacity)
	if _, err := ip.Malloc("huge", 4096*gib); !errors.Is(err, alloc.ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if len(ip.Report()) != 0 {
		t.Fatal("failed allocation must not be logged as a hit")
	}
}

func TestParseRules(t *testing.T) {
	a, _ := knlAllocator(t)
	reg := a.Registry()
	text := `
# Graph500 hints, FLEXMALLOC style
csr_*       Bandwidth
bfs_parent  Latency
*           Capacity   64KiB  -
tiny        Latency    -      2MiB
mid         Bandwidth  1GiB   4GiB
`
	rules, err := ParseRules(strings.NewReader(text), reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 5 {
		t.Fatalf("rules = %d", len(rules))
	}
	if rules[0].Pattern != "csr_*" || reg.Name(rules[0].Attr) != "Bandwidth" {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[2].MinSize != 64<<10 || rules[2].MaxSize != 0 {
		t.Fatalf("rule 2 sizes = %d %d", rules[2].MinSize, rules[2].MaxSize)
	}
	if rules[4].MinSize != 1<<30 || rules[4].MaxSize != 4<<30 {
		t.Fatalf("rule 4 sizes = %d %d", rules[4].MinSize, rules[4].MaxSize)
	}

	for _, bad := range []string{
		"justone",
		"x UnknownAttr",
		"x Latency notasize",
		"x Latency 1KiB 2KiB extra",
		"[ Latency",
	} {
		if _, err := ParseRules(strings.NewReader(bad), reg); !errors.Is(err, ErrBadRule) {
			t.Errorf("ParseRules(%q) err = %v", bad, err)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]uint64{"-": 0, "123": 123, "4KiB": 4096, "2MiB": 2 << 20, "3GiB": 3 << 30}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v", in, got, err)
		}
	}
	if _, err := parseSize("1.5GiB"); err == nil {
		t.Error("fractional size should fail")
	}
}

func TestEndToEndWithRuleFile(t *testing.T) {
	// The complete no-modification flow: load hints, interpose the
	// graph500-shaped allocations, verify placement adapts.
	a, ini := knlAllocator(t)
	rules, err := ParseRules(strings.NewReader("csr_adj Bandwidth\nbfs_* Latency\n"), a.Registry())
	if err != nil {
		t.Fatal(err)
	}
	ip := New(a, ini, memattr.Capacity)
	for _, r := range rules {
		if err := ip.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	var bufs []*memsim.Buffer
	for _, site := range []string{"csr_xadj", "csr_adj", "bfs_parent", "bfs_queue"} {
		b, err := ip.Malloc(site, 512<<20)
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	if bufs[1].Segments[0].Node.Kind() != "MCDRAM" {
		t.Fatalf("csr_adj on %s", bufs[1].NodeNames())
	}
	if bufs[2].Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("bfs_parent on %s", bufs[2].NodeNames())
	}
}

// FuzzParseRules hardens the hint-file parser: arbitrary text must
// yield an error or rules that re-match deterministically, never a
// panic.
func FuzzParseRules(f *testing.F) {
	for _, seed := range []string{
		"",
		"csr_* Bandwidth",
		"x Latency 1KiB 2GiB",
		"# comment only",
		"[ Latency",
		"a b c d e",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		p, err := platform.Get("homogeneous")
		if err != nil {
			t.Skip()
		}
		reg := memattr.NewRegistry(p.Topo)
		rules, err := ParseRules(strings.NewReader(text), reg)
		if err != nil {
			return
		}
		for _, r := range rules {
			// Accepted patterns must be valid globs: matching must not
			// error.
			if r.matches("probe-site", 4096) {
				_ = r
			}
		}
	})
}
