// Package interpose implements the no-code-modification path the paper
// mentions in Section IV-B: "the code modification step could still be
// avoided by intercepting and recognizing allocation calls to add
// sensitivity hints" (auto-hbwmalloc, FLEXMALLOC). An Interposer sits
// where malloc would be: it matches each allocation site against a
// rule list — by site name glob and/or size range, as FLEXMALLOC's
// configuration files do — and forwards the request to the
// heterogeneous allocator with the matched attribute. Unmatched
// allocations use a default attribute.
//
// Rules can be written in a small text format, one per line:
//
//	# hot graph structures
//	csr_*       Bandwidth
//	bfs_parent  Latency
//	*           Capacity   64KiB  -      # everything big defaults to capacity
//
// Fields: name glob, attribute name, optional minimum and maximum
// sizes ("-" = unbounded). First match wins.
package interpose

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"path"
	"strconv"
	"strings"

	"hetmem/internal/alloc"
	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
)

// Rule routes allocations whose site name matches Pattern (path.Match
// glob) and whose size lies in [MinSize, MaxSize] (0 = unbounded) to
// the attribute.
type Rule struct {
	Pattern string
	Attr    memattr.ID
	MinSize uint64
	MaxSize uint64
}

func (r Rule) matches(name string, size uint64) bool {
	ok, err := path.Match(r.Pattern, name)
	if err != nil || !ok {
		return false
	}
	if size < r.MinSize {
		return false
	}
	if r.MaxSize > 0 && size > r.MaxSize {
		return false
	}
	return true
}

// Hit records one interposed allocation for the report.
type Hit struct {
	Site string
	Size uint64
	Rule int // index of the matching rule, -1 for the default
	Attr memattr.ID
	Dec  alloc.Decision
}

// Interposer intercepts allocations.
type Interposer struct {
	a     *alloc.Allocator
	ini   *bitmap.Bitmap
	rules []Rule
	def   memattr.ID
	hits  []Hit
	opts  []alloc.Option
}

// New creates an interposer with the given default attribute for
// unmatched sites.
func New(a *alloc.Allocator, initiator *bitmap.Bitmap, defaultAttr memattr.ID, opts ...alloc.Option) *Interposer {
	return &Interposer{a: a, ini: initiator.Copy(), def: defaultAttr, opts: opts}
}

// AddRule appends a rule (first match wins; earlier rules have
// priority). It validates the glob pattern eagerly.
func (ip *Interposer) AddRule(r Rule) error {
	if _, err := path.Match(r.Pattern, "probe"); err != nil {
		return fmt.Errorf("interpose: bad pattern %q: %w", r.Pattern, err)
	}
	if ip.a.Registry().Name(r.Attr) == "" {
		return fmt.Errorf("interpose: rule %q names unknown attribute %d", r.Pattern, int(r.Attr))
	}
	ip.rules = append(ip.rules, r)
	return nil
}

// Rules returns a copy of the rule list.
func (ip *Interposer) Rules() []Rule { return append([]Rule(nil), ip.rules...) }

// Malloc is the intercepted allocation entry point.
func (ip *Interposer) Malloc(site string, size uint64) (*memsim.Buffer, error) {
	attr := ip.def
	ruleIdx := -1
	for i, r := range ip.rules {
		if r.matches(site, size) {
			attr = r.Attr
			ruleIdx = i
			break
		}
	}
	buf, dec, err := ip.a.Alloc(site, size, attr, ip.ini, ip.opts...)
	if err != nil {
		return nil, err
	}
	ip.hits = append(ip.hits, Hit{Site: site, Size: size, Rule: ruleIdx, Attr: attr, Dec: dec})
	return buf, nil
}

// Report returns the interposition log.
func (ip *Interposer) Report() []Hit { return append([]Hit(nil), ip.hits...) }

// RenderReport formats the log for humans.
func (ip *Interposer) RenderReport() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %12s %-12s %-10s %s\n", "Site", "Size", "Attribute", "Rule", "Placed on")
	for _, h := range ip.hits {
		rule := "default"
		if h.Rule >= 0 {
			rule = fmt.Sprintf("#%d %q", h.Rule, ip.rules[h.Rule].Pattern)
		}
		fmt.Fprintf(&sb, "%-16s %12d %-12s %-10s %s\n",
			h.Site, h.Size, ip.a.Registry().Name(h.Attr), rule, h.Dec.Target.Subtype)
	}
	return sb.String()
}

// ErrBadRule is wrapped by all rule-file parse errors.
var ErrBadRule = errors.New("interpose: bad rule")

// ParseRules reads the text rule format described in the package
// comment, resolving attribute names against the registry.
func ParseRules(r io.Reader, reg *memattr.Registry) ([]Rule, error) {
	var rules []Rule
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("%w: line %d: want 'glob attribute [min] [max]'", ErrBadRule, lineNo)
		}
		rule := Rule{Pattern: fields[0]}
		if _, err := path.Match(rule.Pattern, "probe"); err != nil {
			return nil, fmt.Errorf("%w: line %d: pattern %q: %v", ErrBadRule, lineNo, rule.Pattern, err)
		}
		id, ok := reg.ByName(fields[1])
		if !ok {
			return nil, fmt.Errorf("%w: line %d: unknown attribute %q", ErrBadRule, lineNo, fields[1])
		}
		rule.Attr = id
		if len(fields) >= 3 {
			v, err := parseSize(fields[2])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: min size: %v", ErrBadRule, lineNo, err)
			}
			rule.MinSize = v
		}
		if len(fields) == 4 {
			v, err := parseSize(fields[3])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: max size: %v", ErrBadRule, lineNo, err)
			}
			rule.MaxSize = v
		}
		rules = append(rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rules, nil
}

// parseSize accepts "-" (unbounded = 0), plain bytes, or KiB/MiB/GiB
// suffixes.
func parseSize(s string) (uint64, error) {
	if s == "-" {
		return 0, nil
	}
	mult := uint64(1)
	for _, suf := range []struct {
		s string
		m uint64
	}{{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}} {
		if strings.HasSuffix(s, suf.s) {
			mult = suf.m
			s = strings.TrimSuffix(s, suf.s)
			break
		}
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}
