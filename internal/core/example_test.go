package core_test

import (
	"fmt"
	"log"

	"hetmem/internal/core"
	"hetmem/internal/memattr"
)

// The paper's workflow in a dozen lines: discover, then allocate by
// requirement. The same code adapts to every machine.
func Example() {
	for _, machine := range []string{"knl-snc4-flat", "xeon"} {
		sys, err := core.NewSystem(machine, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ini := sys.InitiatorForGroup(0)
		hot, dec, err := sys.MemAlloc("hot", 1<<30, memattr.Bandwidth, ini)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: bandwidth-critical buffer on %s (source %s)\n",
			machine, dec.Target.Subtype, sys.Source)
		sys.Free(hot)
	}
	// Output:
	// knl-snc4-flat: bandwidth-critical buffer on MCDRAM (source benchmark)
	// xeon: bandwidth-critical buffer on DRAM (source hmat)
}

// Attribute values survive across sessions: benchmark once, save, and
// later runs skip discovery.
func Example_persistence() {
	sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	saved, err := sys.SaveAttributes()
	if err != nil {
		log.Fatal(err)
	}
	// ... next run ...
	sys2, err := core.NewSystem("knl-snc4-flat", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys2.LoadAttributes(saved); err != nil {
		log.Fatal(err)
	}
	fmt.Println("attributes restored:", sys2.Registry.HasValues(memattr.Bandwidth))
	// Output:
	// attributes restored: true
}
