// Package core ties the reproduction together into the workflow the
// paper proposes: discover the topology, identify and characterize the
// memory kinds (from the firmware HMAT when the platform has one, from
// benchmarking otherwise — Table I's two sources), and hand
// applications a heterogeneous allocator whose single extra argument
// is the performance attribute each buffer cares about.
//
// A typical application does:
//
//	sys, _ := core.NewSystem("knl-snc4-flat", core.Options{})
//	ini := sys.InitiatorForPU(0)                    // where my threads run
//	buf, dec, _ := sys.MemAlloc("hot", size, memattr.Bandwidth, ini)
//	eng := sys.Engine(ini)                          // run phases against it
//
// and never mentions MCDRAM, NVDIMM, or node numbers — the paper's
// portability claim.
package core

import (
	"fmt"

	"hetmem/internal/alloc"
	"hetmem/internal/bench"
	"hetmem/internal/bitmap"
	"hetmem/internal/hmat"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
	"hetmem/internal/topology"
)

// DiscoverySource reports where attribute values came from.
type DiscoverySource string

// Discovery sources.
const (
	SourceHMAT      DiscoverySource = "hmat"
	SourceBenchmark DiscoverySource = "benchmark"
	SourceBoth      DiscoverySource = "hmat+benchmark"
)

// Options configures system construction.
type Options struct {
	// ForceBenchmark measures attributes even when the firmware
	// provides them, overwriting the HMAT values with measured ones
	// (and adding remote pairs if BenchRemote is set).
	ForceBenchmark bool
	// BenchRemote includes non-local pairs in the measurement
	// campaign, enabling remote-memory comparisons Linux cannot
	// provide.
	BenchRemote bool
	// Bench tunes the probes.
	Bench bench.Options
}

// System is a fully discovered machine ready for attribute-driven
// allocation.
type System struct {
	Platform  *platform.Platform
	Machine   *memsim.Machine
	Registry  *memattr.Registry
	Allocator *alloc.Allocator
	Source    DiscoverySource
}

// NewSystem builds the system for a named platform and runs discovery.
func NewSystem(platformName string, opts Options) (*System, error) {
	p, err := platform.Get(platformName)
	if err != nil {
		return nil, err
	}
	return NewSystemFromPlatform(p, opts)
}

// NewSystemFromPlatform is NewSystem for an already-built platform.
func NewSystemFromPlatform(p *platform.Platform, opts Options) (*System, error) {
	m, err := p.NewMachine()
	if err != nil {
		return nil, err
	}
	reg := memattr.NewRegistry(p.Topo)

	var src DiscoverySource
	if tbl := p.HMATTable(); tbl != nil {
		if err := hmat.Apply(tbl, reg); err != nil {
			return nil, fmt.Errorf("core: applying HMAT: %w", err)
		}
		src = SourceHMAT
	}
	if src == "" || opts.ForceBenchmark {
		bopts := opts.Bench
		bopts.IncludeRemote = bopts.IncludeRemote || opts.BenchRemote
		results, err := bench.MeasureAll(m, bopts)
		if err != nil {
			return nil, fmt.Errorf("core: benchmark discovery: %w", err)
		}
		if err := bench.Apply(results, reg); err != nil {
			return nil, err
		}
		if src == SourceHMAT {
			src = SourceBoth
		} else {
			src = SourceBenchmark
		}
	}
	return &System{
		Platform:  p,
		Machine:   m,
		Registry:  reg,
		Allocator: alloc.New(m, reg),
		Source:    src,
	}, nil
}

// Topology returns the system topology.
func (s *System) Topology() *topology.Topology { return s.Platform.Topo }

// InitiatorForPU returns a single-PU initiator cpuset.
func (s *System) InitiatorForPU(pu int) *bitmap.Bitmap { return bitmap.NewFromIndexes(pu) }

// InitiatorForPackage returns the cpuset of the package with the given
// logical index, or nil.
func (s *System) InitiatorForPackage(l int) *bitmap.Bitmap {
	pkg := s.Topology().ObjectByLogical(topology.Package, l)
	if pkg == nil {
		return nil
	}
	return pkg.CPUSet.Copy()
}

// InitiatorForGroup returns the cpuset of the group (SNC cluster) with
// the given logical index, falling back to the package when the
// machine has no groups.
func (s *System) InitiatorForGroup(l int) *bitmap.Bitmap {
	if g := s.Topology().ObjectByLogical(topology.Group, l); g != nil {
		return g.CPUSet.Copy()
	}
	return s.InitiatorForPackage(l)
}

// MemAlloc is the paper's mem_alloc(..., attribute): allocate on the
// best local target for the attribute, with ranked fallback.
func (s *System) MemAlloc(name string, size uint64, attr memattr.ID, initiator *bitmap.Bitmap, opts ...alloc.Option) (*memsim.Buffer, alloc.Decision, error) {
	return s.Allocator.Alloc(name, size, attr, initiator, opts...)
}

// MemAllocNamed resolves the attribute by name first ("Bandwidth",
// "Latency", "Capacity", or any registered custom attribute).
func (s *System) MemAllocNamed(name string, size uint64, attrName string, initiator *bitmap.Bitmap, opts ...alloc.Option) (*memsim.Buffer, alloc.Decision, error) {
	id, ok := s.Registry.ByName(attrName)
	if !ok {
		return nil, alloc.Decision{}, fmt.Errorf("core: unknown attribute %q", attrName)
	}
	return s.Allocator.Alloc(name, size, id, initiator, opts...)
}

// Free releases a buffer.
func (s *System) Free(b *memsim.Buffer) error { return s.Machine.Free(b) }

// Engine creates an execution engine for threads on the initiator.
func (s *System) Engine(initiator *bitmap.Bitmap) *memsim.Engine {
	return memsim.NewEngine(s.Machine, initiator)
}

// SaveAttributes serializes the discovered attribute values (including
// custom attributes), so a later run on the same platform can skip
// discovery with LoadAttributes — the caching workflow for measured
// values the paper implies for benchmark-discovered platforms.
func (s *System) SaveAttributes() ([]byte, error) { return memattr.Export(s.Registry) }

// LoadAttributes applies previously saved attribute values on top of
// (or instead of) discovery.
func (s *System) LoadAttributes(data []byte) error { return memattr.Import(data, s.Registry) }
