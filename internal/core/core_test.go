package core

import (
	"errors"
	"testing"

	"hetmem/internal/alloc"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

const gib = uint64(1) << 30

func TestNewSystemAllPlatforms(t *testing.T) {
	for _, name := range platform.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sys, err := NewSystem(name, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !sys.Registry.HasValues(memattr.Bandwidth) || !sys.Registry.HasValues(memattr.Latency) {
				t.Fatal("discovery left bandwidth/latency empty")
			}
			wantSrc := SourceHMAT
			if !sys.Platform.HasHMAT {
				wantSrc = SourceBenchmark
			}
			if sys.Source != wantSrc {
				t.Fatalf("source = %s, want %s", sys.Source, wantSrc)
			}
			// An allocation with each predefined performance attribute
			// must succeed from PU 0.
			ini := sys.InitiatorForPU(0)
			for _, attr := range []memattr.ID{memattr.Bandwidth, memattr.Latency, memattr.Capacity} {
				buf, dec, err := sys.MemAlloc("b", 64<<20, attr, ini)
				if err != nil {
					t.Fatalf("MemAlloc(%s): %v", sys.Registry.Name(attr), err)
				}
				if dec.Target == nil {
					t.Fatal("no decision target")
				}
				sys.Free(buf)
			}
		})
	}
}

func TestUnknownPlatform(t *testing.T) {
	if _, err := NewSystem("not-a-machine", Options{}); err == nil {
		t.Fatal("unknown platform should fail")
	}
}

func TestForceBenchmarkOverridesHMAT(t *testing.T) {
	sys, err := NewSystem("xeon", Options{ForceBenchmark: true})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Source != SourceBoth {
		t.Fatalf("source = %s", sys.Source)
	}
	// Measured latency replaces the firmware number: the xeon HMAT says
	// 81ns for DRAM, and the measured chase lands close to it, but the
	// *write bandwidth* attribute only exists via benchmarking.
	if !sys.Registry.HasValues(memattr.WriteBandwidth) {
		t.Fatal("benchmarking should populate write bandwidth")
	}
}

func TestBenchRemoteEnablesRemoteComparison(t *testing.T) {
	sys, err := NewSystem("xeon", Options{ForceBenchmark: true, BenchRemote: true})
	if err != nil {
		t.Fatal(err)
	}
	ini := sys.InitiatorForPackage(0)
	remoteDRAM := sys.Topology().NUMANodes()[2]
	if _, err := sys.Registry.Value(memattr.Latency, remoteDRAM, ini); err != nil {
		t.Fatalf("remote value missing: %v", err)
	}
}

func TestMemAllocNamed(t *testing.T) {
	sys, err := NewSystem("knl-snc4-flat", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ini := sys.InitiatorForGroup(0)
	buf, dec, err := sys.MemAllocNamed("hot", gib, "Bandwidth", ini)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Target.Subtype != "MCDRAM" {
		t.Fatalf("placed on %v", dec.Target)
	}
	sys.Free(buf)
	if _, _, err := sys.MemAllocNamed("x", gib, "Bogus", ini); err == nil {
		t.Fatal("unknown attribute name should fail")
	}
}

func TestInitiators(t *testing.T) {
	sys, err := NewSystem("xeon", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.InitiatorForPackage(1).ListString(); got != "20-39" {
		t.Fatalf("package 1 = %s", got)
	}
	if sys.InitiatorForPackage(9) != nil {
		t.Fatal("missing package should be nil")
	}
	// No groups on this machine: group falls back to package.
	if got := sys.InitiatorForGroup(0).ListString(); got != "0-19" {
		t.Fatalf("group fallback = %s", got)
	}
	if got := sys.InitiatorForPU(7).ListString(); got != "7" {
		t.Fatalf("pu = %s", got)
	}
}

func TestEngineAndEndToEnd(t *testing.T) {
	// The package-comment workflow, end to end.
	sys, err := NewSystem("knl-snc4-flat", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ini := sys.InitiatorForGroup(0)
	buf, _, err := sys.MemAlloc("hot", gib, memattr.Bandwidth, ini)
	if err != nil {
		t.Fatal(err)
	}
	eng := sys.Engine(ini)
	res := eng.Phase("kernel", []memsim.Access{{Buffer: buf, ReadBytes: 4 * gib}})
	if res.Seconds <= 0 || res.BoundKind != "MCDRAM" {
		t.Fatalf("phase = %+v", res)
	}
	// Fallback path: exhaust MCDRAM, next allocation spills to DRAM.
	if _, _, err := sys.MemAlloc("fill", 3*gib, memattr.Bandwidth, ini); err != nil {
		t.Fatal(err)
	}
	_, dec, err := sys.MemAlloc("spill", gib, memattr.Bandwidth, ini)
	if err != nil || dec.RankPosition != 1 {
		t.Fatalf("spill: %v %v", dec, err)
	}
	// Exhaustion error surfaces the allocator's sentinel.
	if _, _, err := sys.MemAlloc("huge", 4096*gib, memattr.Capacity, ini); !errors.Is(err, alloc.ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
}
