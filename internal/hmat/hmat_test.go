package hmat

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

const gb = 1 << 30

// rig: 2 packages, each with DRAM + NVDIMM, 2 PUs per package; DRAM 0
// has a memory-side cache in the model.
func rig(t testing.TB) (*topology.Topology, memsim.MachineModel) {
	t.Helper()
	root := topology.New(topology.Machine, -1)
	pu := 0
	for p := 0; p < 2; p++ {
		pkg := root.AddChild(topology.New(topology.Package, p))
		pkg.AddMemChild(topology.NewNUMA(p, "DRAM", 96*gb))
		pkg.AddMemChild(topology.NewNUMA(p+2, "NVDIMM", 768*gb))
		for c := 0; c < 2; c++ {
			pkg.AddChild(topology.New(topology.Core, pu)).AddChild(topology.New(topology.PU, pu))
			pu++
		}
	}
	topo, err := topology.Build(root)
	if err != nil {
		t.Fatal(err)
	}
	dram := memsim.NodeModel{Kind: "DRAM", ReadBW: 128, WriteBW: 64, TotalBW: 75, IdleLatency: 81}
	nv := memsim.NodeModel{Kind: "NVDIMM", ReadBW: 76.8, WriteBW: 10, TotalBW: 25, IdleLatency: 305}
	model := memsim.MachineModel{
		Nodes:     map[int]memsim.NodeModel{0: dram, 1: dram, 2: nv, 3: nv},
		Remote:    memsim.RemoteModel{BWFactor: 0.5, LatencyAdd: 60},
		MemCaches: map[int]memsim.MemCacheModel{0: {Size: 2 * gb, TotalBW: 300, Latency: 100}},
	}
	return topo, model
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	topo, model := rig(t)
	tbl := BuildTable(topo, model, Options{LocalOnly: true, IncludeReadWrite: true, Revision: 2})
	data := tbl.Encode()
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tbl, back) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", tbl, back)
	}
}

func TestDecodeErrors(t *testing.T) {
	topo, model := rig(t)
	data := BuildTable(topo, model, Options{}).Encode()

	if _, err := Decode(data[:8]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short err = %v", err)
	}
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic err = %v", err)
	}
	bad = append([]byte{}, data...)
	bad[len(bad)-1] ^= 0xff
	if _, err := Decode(bad); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("checksum err = %v", err)
	}
}

func TestBuildTableStructure(t *testing.T) {
	topo, model := rig(t)
	tbl := BuildTable(topo, model, Options{LocalOnly: true})

	if len(tbl.Initiators) != 2 {
		t.Fatalf("initiators = %d, want 2 packages", len(tbl.Initiators))
	}
	if got := tbl.Initiators[0].PUs; !reflect.DeepEqual(got, []uint32{0, 1}) {
		t.Fatalf("initiator 0 PUs = %v", got)
	}
	if len(tbl.LatBW) != 2 { // access bandwidth + access latency
		t.Fatalf("latbw structs = %d", len(tbl.LatBW))
	}
	bw := tbl.LatBW[0]
	if bw.Type != AccessBandwidth || len(bw.Targets) != 4 || len(bw.Entries) != 8 {
		t.Fatalf("bw struct = %+v", bw)
	}
	// Local DRAM from package 0: 128 GiB/s = 131072 MB/s.
	if v := bw.Entry(0, 0); v != 131072 {
		t.Fatalf("local DRAM bw = %d, want 131072", v)
	}
	// Remote pairs are absent with LocalOnly.
	// Targets order follows NUMA logical order: DRAM0, NVDIMM2, DRAM1, NVDIMM3.
	if v := bw.Entry(0, 2); v != NoEntry {
		t.Fatalf("remote entry = %d, want NoEntry", v)
	}
	// NVDIMM local bandwidth: 76.8*1024 ≈ 78643 MB/s (Fig 5 reports 78644).
	if v := bw.Entry(0, 1); v != 78643 {
		t.Fatalf("local NVDIMM bw = %d, want 78644", v)
	}
	lat := tbl.LatBW[1]
	if lat.Type != AccessLatency {
		t.Fatalf("second struct = %s", lat.Type)
	}
	if v := lat.Entry(0, 0); v != 81 {
		t.Fatalf("local DRAM latency = %d", v)
	}
	if len(tbl.Caches) != 1 || tbl.Caches[0].MemoryPD != 0 || tbl.Caches[0].CacheSize != 2*gb {
		t.Fatalf("caches = %+v", tbl.Caches)
	}
}

func TestBuildTableRemoteEntries(t *testing.T) {
	topo, model := rig(t)
	tbl := BuildTable(topo, model, Options{LocalOnly: false})
	bw := tbl.LatBW[0]
	lat := tbl.LatBW[1]
	// Remote DRAM (package 1's DRAM seen from package 0): halved bw,
	// +60ns latency. Target order: DRAM0, NVDIMM2, DRAM1, NVDIMM3.
	if v := bw.Entry(0, 2); v != 131072/2 {
		t.Fatalf("remote DRAM bw = %d", v)
	}
	if v := lat.Entry(0, 2); v != 141 {
		t.Fatalf("remote DRAM latency = %d", v)
	}
}

func TestBuildTableOverride(t *testing.T) {
	topo, model := rig(t)
	tbl := BuildTable(topo, model, Options{
		LocalOnly: true,
		Override: func(ini, tgt *topology.Object, dt DataType, local bool) (uint64, bool) {
			if dt == AccessLatency && tgt.Subtype == "DRAM" {
				return 26, true // the verbatim Figure 5 number
			}
			return 0, false
		},
	})
	lat := tbl.LatBW[1]
	if v := lat.Entry(0, 0); v != 26 {
		t.Fatalf("override latency = %d", v)
	}
	if v := lat.Entry(0, 1); v != 305 {
		t.Fatalf("non-overridden latency = %d", v)
	}
}

func TestApplyFeedsRegistry(t *testing.T) {
	topo, model := rig(t)
	tbl := BuildTable(topo, model, Options{LocalOnly: true, IncludeReadWrite: true})
	reg := memattr.NewRegistry(topo)
	if err := Apply(tbl, reg); err != nil {
		t.Fatal(err)
	}

	pkg0 := bitmap.NewFromRange(0, 1)
	dram0 := topo.ObjectByOS(topology.NUMANode, 0)
	nv2 := topo.ObjectByOS(topology.NUMANode, 2)

	v, err := reg.Value(memattr.Bandwidth, dram0, pkg0)
	if err != nil || v != 131072 {
		t.Fatalf("Bandwidth(dram0) = %d, %v", v, err)
	}
	v, err = reg.Value(memattr.Latency, nv2, pkg0)
	if err != nil || v != 305 {
		t.Fatalf("Latency(nv2) = %d, %v", v, err)
	}
	v, err = reg.Value(memattr.WriteBandwidth, nv2, pkg0)
	if err != nil || v != 10240 {
		t.Fatalf("WriteBandwidth(nv2) = %d, %v", v, err)
	}
	// LocalOnly: no value for the remote pair.
	pkg1 := bitmap.NewFromRange(2, 3)
	if _, err := reg.Value(memattr.Bandwidth, dram0, pkg1); !errors.Is(err, memattr.ErrNoValue) {
		t.Fatalf("remote value err = %v", err)
	}

	// End to end: best local target by latency from package 0 is DRAM0.
	best, _, err := reg.BestLocalTarget(memattr.Latency, bitmap.NewFromIndexes(0))
	if err != nil || best != dram0 {
		t.Fatalf("best local latency target = %v, %v", best, err)
	}
	// By capacity it is the NVDIMM (native attribute, no HMAT needed).
	best, _, err = reg.BestLocalTarget(memattr.Capacity, bitmap.NewFromIndexes(0))
	if err != nil || best != nv2 {
		t.Fatalf("best local capacity target = %v, %v", best, err)
	}
}

func TestApplyErrors(t *testing.T) {
	topo, _ := rig(t)
	reg := memattr.NewRegistry(topo)

	// Initiator PD without a map entry.
	tbl := &Table{LatBW: []LatBW{{
		Type: AccessBandwidth, Initiators: []uint32{7}, Targets: []uint32{0}, Entries: []uint64{1},
	}}}
	if err := Apply(tbl, reg); err == nil {
		t.Fatal("missing initiator map should fail")
	}
	// Target PD that is not a NUMA node.
	tbl = &Table{
		Initiators: []Initiator{{PD: 0, PUs: []uint32{0}}},
		LatBW: []LatBW{{
			Type: AccessBandwidth, Initiators: []uint32{0}, Targets: []uint32{99}, Entries: []uint64{1},
		}},
	}
	if err := Apply(tbl, reg); err == nil {
		t.Fatal("unknown target PD should fail")
	}
	// Unsupported data type.
	tbl = &Table{
		Initiators: []Initiator{{PD: 0, PUs: []uint32{0}}},
		LatBW: []LatBW{{
			Type: DataType(42), Initiators: []uint32{0}, Targets: []uint32{0}, Entries: []uint64{1},
		}},
	}
	if err := Apply(tbl, reg); err == nil {
		t.Fatal("unsupported data type should fail")
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := &Table{Revision: uint8(r.Intn(256))}
		ni, nt := 1+r.Intn(3), 1+r.Intn(4)
		l := LatBW{Type: DataType(r.Intn(6))}
		for i := 0; i < ni; i++ {
			l.Initiators = append(l.Initiators, uint32(i))
			tbl.Initiators = append(tbl.Initiators, Initiator{PD: uint32(i), PUs: []uint32{uint32(r.Intn(64))}})
		}
		for i := 0; i < nt; i++ {
			l.Targets = append(l.Targets, uint32(i))
		}
		for i := 0; i < ni*nt; i++ {
			if r.Intn(4) == 0 {
				l.Entries = append(l.Entries, NoEntry)
			} else {
				l.Entries = append(l.Entries, uint64(r.Intn(1_000_000)))
			}
		}
		tbl.LatBW = append(tbl.LatBW, l)
		if r.Intn(2) == 0 {
			tbl.Caches = append(tbl.Caches, MemSideCache{MemoryPD: uint32(r.Intn(8)), CacheSize: uint64(r.Intn(1 << 30)), LatencyNS: uint32(r.Intn(1000)), BWMBs: uint32(r.Intn(500000))})
		}
		back, err := Decode(tbl.Encode())
		return err == nil && reflect.DeepEqual(tbl, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsOnCorruption(t *testing.T) {
	// Failure injection: random truncations and byte flips of a valid
	// table must return errors, never panic or hang.
	topo, model := rig(t)
	data := BuildTable(topo, model, Options{IncludeReadWrite: true}).Encode()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		mut := append([]byte{}, data...)
		switch r.Intn(3) {
		case 0:
			mut = mut[:r.Intn(len(mut)+1)]
		case 1:
			if len(mut) > 0 {
				mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
			}
		case 2:
			mut = append(mut, byte(r.Intn(256)))
		}
		tbl, err := Decode(mut)
		// Either a clean error or a structurally valid table; both are
		// acceptable, crashing is not.
		if err == nil && tbl == nil {
			t.Fatal("nil table without error")
		}
	}
}
