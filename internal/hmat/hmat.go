// Package hmat implements a binary Heterogeneous Memory Attribute
// Table in the spirit of the ACPI 6.2 HMAT, the firmware table the
// paper relies on for native discovery of bandwidth and latency
// (Section IV-A1). Platform definitions encode their theoretical
// performance into a table; the discovery path decodes the table and
// feeds the memory-attribute registry — exactly the sysfs pipeline the
// authors contributed to Linux 5.2, including its limitation of
// exposing only *local* performance (reproduced by the LocalOnly
// option, and visible in Figure 5 of the paper).
//
// The layout is a simplified but faithful little-endian encoding:
//
//	header:  magic "HMAT" | revision u8 | reserved [3]u8 | nstruct u32 | checksum u32
//	struct:  type u16 | length u32 | payload
//
// Structure types:
//
//	1: System Locality Latency and Bandwidth Information — data type
//	   (access/read/write × latency/bandwidth), initiator and target
//	   proximity-domain lists, and a row-major entry matrix
//	   (0xFFFFFFFFFFFFFFFF = not provided);
//	2: Memory Side Cache Information — cached node, size, performance;
//	3: Initiator map (stand-in for SRAT): proximity domain → PU list.
package hmat

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// DataType selects what a latency/bandwidth structure describes,
// mirroring ACPI HMAT data types.
type DataType uint8

const (
	AccessLatency DataType = iota // nanoseconds
	ReadLatency
	WriteLatency
	AccessBandwidth // MB/s
	ReadBandwidth
	WriteBandwidth
)

// String names the data type.
func (d DataType) String() string {
	switch d {
	case AccessLatency:
		return "AccessLatency"
	case ReadLatency:
		return "ReadLatency"
	case WriteLatency:
		return "WriteLatency"
	case AccessBandwidth:
		return "AccessBandwidth"
	case ReadBandwidth:
		return "ReadBandwidth"
	case WriteBandwidth:
		return "WriteBandwidth"
	default:
		return fmt.Sprintf("DataType(%d)", uint8(d))
	}
}

// IsLatency reports whether the data type is a latency.
func (d DataType) IsLatency() bool { return d <= WriteLatency }

// NoEntry marks a missing matrix entry.
const NoEntry = ^uint64(0)

// LatBW is a System Locality Latency and Bandwidth Information
// structure: a matrix of values between initiator proximity domains
// and memory (target) proximity domains.
type LatBW struct {
	Type DataType
	// Initiators and Targets are proximity-domain numbers. Targets are
	// NUMA node OS indexes; Initiators refer to the initiator map.
	Initiators []uint32
	Targets    []uint32
	// Entries is row-major [initiator][target]; NoEntry = absent.
	Entries []uint64
}

// Entry returns the matrix entry for (initiator i, target t) by
// position.
func (l *LatBW) Entry(i, t int) uint64 { return l.Entries[i*len(l.Targets)+t] }

// MemSideCache describes a memory-side cache in front of a memory
// proximity domain.
type MemSideCache struct {
	MemoryPD  uint32
	CacheSize uint64
	LatencyNS uint32
	BWMBs     uint32
}

// Initiator maps an initiator proximity domain to the PUs it contains
// (our stand-in for the ACPI SRAT).
type Initiator struct {
	PD  uint32
	PUs []uint32
}

// Table is a decoded HMAT.
type Table struct {
	Revision   uint8
	LatBW      []LatBW
	Caches     []MemSideCache
	Initiators []Initiator
}

const magic = "HMAT"

const (
	stLatBW     uint16 = 1
	stCache     uint16 = 2
	stInitiator uint16 = 3
)

// Encode serializes the table.
func (t *Table) Encode() []byte {
	var payload []byte
	n := 0
	appendStruct := func(typ uint16, body []byte) {
		var hdr [6]byte
		binary.LittleEndian.PutUint16(hdr[0:], typ)
		binary.LittleEndian.PutUint32(hdr[2:], uint32(len(body)))
		payload = append(payload, hdr[:]...)
		payload = append(payload, body...)
		n++
	}
	u32 := func(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

	for _, l := range t.LatBW {
		var b []byte
		b = append(b, byte(l.Type))
		b = u32(b, uint32(len(l.Initiators)))
		b = u32(b, uint32(len(l.Targets)))
		for _, p := range l.Initiators {
			b = u32(b, p)
		}
		for _, p := range l.Targets {
			b = u32(b, p)
		}
		for _, e := range l.Entries {
			b = u64(b, e)
		}
		appendStruct(stLatBW, b)
	}
	for _, c := range t.Caches {
		var b []byte
		b = u32(b, c.MemoryPD)
		b = u64(b, c.CacheSize)
		b = u32(b, c.LatencyNS)
		b = u32(b, c.BWMBs)
		appendStruct(stCache, b)
	}
	for _, ini := range t.Initiators {
		var b []byte
		b = u32(b, ini.PD)
		b = u32(b, uint32(len(ini.PUs)))
		for _, pu := range ini.PUs {
			b = u32(b, pu)
		}
		appendStruct(stInitiator, b)
	}

	out := make([]byte, 0, 16+len(payload))
	out = append(out, magic...)
	out = append(out, t.Revision, 0, 0, 0)
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	out = binary.LittleEndian.AppendUint32(out, checksum(payload))
	return append(out, payload...)
}

func checksum(b []byte) uint32 {
	var s uint32
	for _, c := range b {
		s = s*31 + uint32(c)
	}
	return s
}

// Decode errors.
var (
	ErrBadMagic    = errors.New("hmat: bad magic")
	ErrBadChecksum = errors.New("hmat: checksum mismatch")
	ErrTruncated   = errors.New("hmat: truncated table")
)

// Decode parses a table produced by Encode, validating the checksum.
func Decode(data []byte) (*Table, error) {
	if len(data) < 16 {
		return nil, ErrTruncated
	}
	if string(data[0:4]) != magic {
		return nil, ErrBadMagic
	}
	t := &Table{Revision: data[4]}
	nstruct := binary.LittleEndian.Uint32(data[8:12])
	sum := binary.LittleEndian.Uint32(data[12:16])
	payload := data[16:]
	if checksum(payload) != sum {
		return nil, ErrBadChecksum
	}
	off := 0
	for i := uint32(0); i < nstruct; i++ {
		if off+6 > len(payload) {
			return nil, ErrTruncated
		}
		typ := binary.LittleEndian.Uint16(payload[off:])
		length := int(binary.LittleEndian.Uint32(payload[off+2:]))
		off += 6
		if off+length > len(payload) {
			return nil, ErrTruncated
		}
		body := payload[off : off+length]
		off += length
		switch typ {
		case stLatBW:
			l, err := decodeLatBW(body)
			if err != nil {
				return nil, err
			}
			t.LatBW = append(t.LatBW, *l)
		case stCache:
			if len(body) < 20 {
				return nil, ErrTruncated
			}
			t.Caches = append(t.Caches, MemSideCache{
				MemoryPD:  binary.LittleEndian.Uint32(body[0:]),
				CacheSize: binary.LittleEndian.Uint64(body[4:]),
				LatencyNS: binary.LittleEndian.Uint32(body[12:]),
				BWMBs:     binary.LittleEndian.Uint32(body[16:]),
			})
		case stInitiator:
			if len(body) < 8 {
				return nil, ErrTruncated
			}
			ini := Initiator{PD: binary.LittleEndian.Uint32(body[0:])}
			n := int(binary.LittleEndian.Uint32(body[4:]))
			if len(body) < 8+4*n {
				return nil, ErrTruncated
			}
			for j := 0; j < n; j++ {
				ini.PUs = append(ini.PUs, binary.LittleEndian.Uint32(body[8+4*j:]))
			}
			t.Initiators = append(t.Initiators, ini)
		default:
			// Unknown structures are skipped, like ACPI consumers do.
		}
	}
	return t, nil
}

func decodeLatBW(body []byte) (*LatBW, error) {
	if len(body) < 9 {
		return nil, ErrTruncated
	}
	l := &LatBW{Type: DataType(body[0])}
	ni := int(binary.LittleEndian.Uint32(body[1:]))
	nt := int(binary.LittleEndian.Uint32(body[5:]))
	need := 9 + 4*ni + 4*nt + 8*ni*nt
	if len(body) < need {
		return nil, ErrTruncated
	}
	off := 9
	for i := 0; i < ni; i++ {
		l.Initiators = append(l.Initiators, binary.LittleEndian.Uint32(body[off:]))
		off += 4
	}
	for i := 0; i < nt; i++ {
		l.Targets = append(l.Targets, binary.LittleEndian.Uint32(body[off:]))
		off += 4
	}
	for i := 0; i < ni*nt; i++ {
		l.Entries = append(l.Entries, binary.LittleEndian.Uint64(body[off:]))
		off += 8
	}
	return l, nil
}
