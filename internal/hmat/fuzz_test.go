package hmat

import "testing"

// FuzzDecode feeds arbitrary bytes to the firmware-table parser: it
// must return an error or a table, never panic, and any table it
// accepts must re-encode and re-decode stably.
func FuzzDecode(f *testing.F) {
	topo, model := rig(f)
	f.Add(BuildTable(topo, model, Options{}).Encode())
	f.Add(BuildTable(topo, model, Options{LocalOnly: true, IncludeReadWrite: true}).Encode())
	f.Add([]byte("HMAT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(tbl.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted table failed: %v", err)
		}
		if len(again.LatBW) != len(tbl.LatBW) || len(again.Initiators) != len(tbl.Initiators) {
			t.Fatal("re-decode changed structure counts")
		}
	})
}
