package hmat

import (
	"fmt"
	"sort"

	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

// Options controls table generation.
type Options struct {
	// LocalOnly restricts the matrix to (initiator, target) pairs that
	// share locality, reproducing the Linux 5.2+ sysfs limitation the
	// paper highlights: "it is currently impossible to compare the
	// local DRAM with the HBM of another processor".
	LocalOnly bool
	// IncludeReadWrite additionally emits separate Read/Write
	// latency/bandwidth structures, as some platforms do.
	IncludeReadWrite bool
	// Override, when non-nil, lets a platform dictate the exact value
	// the firmware reports for a pair (e.g. the verbatim numbers in
	// Figure 5 of the paper); returning ok=false falls back to the
	// model-derived value.
	Override func(ini, tgt *topology.Object, dt DataType, local bool) (uint64, bool)
	Revision uint8
}

// BuildTable derives a firmware table from the machine's ground-truth
// model: access bandwidth from each node's read bandwidth (MB/s) and
// access latency from its idle latency (ns), degraded by the remote
// model for non-local pairs. Initiator proximity domains are the
// distinct CPU parents of NUMA nodes, in logical order.
func BuildTable(topo *topology.Topology, model memsim.MachineModel, opts Options) *Table {
	t := &Table{Revision: opts.Revision}

	// Enumerate initiator localities (distinct CPU parents).
	var parents []*topology.Object
	seen := make(map[*topology.Object]bool)
	for _, n := range topo.NUMANodes() {
		p := n.CPUParent()
		if p != nil && !seen[p] {
			seen[p] = true
			parents = append(parents, p)
		}
	}
	sort.SliceStable(parents, func(i, j int) bool {
		a, b := parents[i].CPUSet.First(), parents[j].CPUSet.First()
		if a != b {
			return a < b
		}
		return parents[i].CPUSet.Weight() < parents[j].CPUSet.Weight()
	})
	for pd, p := range parents {
		ini := Initiator{PD: uint32(pd)}
		p.CPUSet.ForEach(func(i int) bool {
			ini.PUs = append(ini.PUs, uint32(i))
			return true
		})
		t.Initiators = append(t.Initiators, ini)
	}

	nodes := topo.NUMANodes()
	value := func(p, n *topology.Object, dt DataType, local bool) uint64 {
		if opts.Override != nil {
			if v, ok := opts.Override(p, n, dt, local); ok {
				return v
			}
		}
		nm, ok := model.Nodes[n.OSIndex]
		if !ok {
			return NoEntry
		}
		const mibPerGib = 1024
		var v float64
		switch dt {
		case AccessBandwidth, ReadBandwidth:
			v = nm.ReadBW * mibPerGib
		case WriteBandwidth:
			v = nm.WriteBW * mibPerGib
		case AccessLatency, ReadLatency:
			v = nm.IdleLatency
		case WriteLatency:
			v = nm.IdleLatency
		}
		if !local {
			switch {
			case dt.IsLatency():
				add := model.Remote.LatencyAdd
				if add <= 0 {
					add = 60
				}
				v += add
			default:
				f := model.Remote.BWFactor
				if f <= 0 {
					f = 0.5
				}
				v *= f
			}
		}
		return uint64(v + 0.5)
	}

	types := []DataType{AccessBandwidth, AccessLatency}
	if opts.IncludeReadWrite {
		types = append(types, ReadBandwidth, WriteBandwidth, ReadLatency, WriteLatency)
	}
	for _, dt := range types {
		l := LatBW{Type: dt}
		for pd := range parents {
			l.Initiators = append(l.Initiators, uint32(pd))
		}
		for _, n := range nodes {
			l.Targets = append(l.Targets, uint32(n.OSIndex))
		}
		for _, p := range parents {
			for _, n := range nodes {
				local := bitmap.Intersects(p.CPUSet, n.CPUSet)
				if opts.LocalOnly && !local {
					l.Entries = append(l.Entries, NoEntry)
					continue
				}
				l.Entries = append(l.Entries, value(p, n, dt, local))
			}
		}
		t.LatBW = append(t.LatBW, l)
	}

	// Memory-side caches.
	var cached []int
	for os := range model.MemCaches {
		cached = append(cached, os)
	}
	sort.Ints(cached)
	for _, os := range cached {
		mc := model.MemCaches[os]
		t.Caches = append(t.Caches, MemSideCache{
			MemoryPD:  uint32(os),
			CacheSize: mc.Size,
			LatencyNS: uint32(mc.Latency),
			BWMBs:     uint32(mc.TotalBW * 1024),
		})
	}
	return t
}

var dtToAttr = map[DataType]memattr.ID{
	AccessBandwidth: memattr.Bandwidth,
	AccessLatency:   memattr.Latency,
	ReadBandwidth:   memattr.ReadBandwidth,
	WriteBandwidth:  memattr.WriteBandwidth,
	ReadLatency:     memattr.ReadLatency,
	WriteLatency:    memattr.WriteLatency,
}

// Apply feeds a decoded table into a memory-attribute registry: every
// present matrix entry becomes a per-initiator attribute value. This is
// the "native discovery" path of Table I in the paper.
func Apply(t *Table, reg *memattr.Registry) error {
	topo := reg.Topology()
	iniSet := make(map[uint32]*bitmap.Bitmap)
	for _, ini := range t.Initiators {
		b := bitmap.New()
		for _, pu := range ini.PUs {
			b.Set(int(pu))
		}
		iniSet[ini.PD] = b
	}
	for _, l := range t.LatBW {
		attr, ok := dtToAttr[l.Type]
		if !ok {
			return fmt.Errorf("hmat: unsupported data type %s", l.Type)
		}
		for i, ipd := range l.Initiators {
			cpus, ok := iniSet[ipd]
			if !ok {
				return fmt.Errorf("hmat: initiator PD %d has no initiator map entry", ipd)
			}
			for j, tpd := range l.Targets {
				v := l.Entry(i, j)
				if v == NoEntry {
					continue
				}
				node := topo.ObjectByOS(topology.NUMANode, int(tpd))
				if node == nil {
					return fmt.Errorf("hmat: target PD %d is not a NUMA node", tpd)
				}
				if err := reg.SetValue(attr, node, cpus, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
