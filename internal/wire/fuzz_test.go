package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeedFrames returns a spread of valid and deliberately broken
// frames used to seed both fuzzers.
func fuzzSeedFrames() [][]byte {
	var seeds [][]byte
	good, _ := AppendRequest(nil, OpAlloc, 42, "team-a", []byte(`{"name":"x","size":4096}`))
	seeds = append(seeds, good)
	resp, _ := AppendResponse(nil, 42, 200, []byte(`{"lease":7}`))
	seeds = append(seeds, resp)
	// Two frames back to back (the reader loops over a stream).
	seeds = append(seeds, append(append([]byte(nil), good...), resp...))
	// Truncated mid-payload.
	seeds = append(seeds, good[:len(good)-3])
	// Corrupted CRC.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	seeds = append(seeds, bad)
	// Length header larger than the cap.
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(huge[0:4], 1<<31)
	seeds = append(seeds, huge)
	// Zero-length frame and bare header fragments.
	seeds = append(seeds, make([]byte, frameHeaderSize), []byte{0x01, 0x02}, nil)
	return seeds
}

// FuzzWireFrame feeds arbitrary bytes through the frame reader: it
// must never panic, never return a payload whose CRC was not checked,
// and always terminate (no infinite loops on garbage).
func FuzzWireFrame(f *testing.F) {
	for _, s := range fuzzSeedFrames() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for {
			payload, newBuf, err := readFrame(br, buf, MaxRequestFrame)
			if err != nil {
				return // any error ends the stream — that's the contract
			}
			buf = newBuf
			if len(payload) == 0 || len(payload) > MaxRequestFrame {
				t.Fatalf("accepted frame with payload length %d", len(payload))
			}
			// A frame the reader accepted re-encodes to bytes the
			// reader accepts again (CRC is internally consistent).
			re := make([]byte, 0, frameHeaderSize+len(payload))
			re, start := beginFrame(re)
			re = append(re, payload...)
			re, ferr := finishFrame(re, start, MaxRequestFrame)
			if ferr != nil {
				t.Fatalf("re-framing accepted payload: %v", ferr)
			}
			if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(re)), nil, MaxRequestFrame); err != nil {
				t.Fatalf("re-encoded accepted frame rejected: %v", err)
			}
		}
	})
}

// FuzzWireRequestDecode throws arbitrary payloads at both payload
// decoders: no panics, and anything DecodeRequest accepts must
// round-trip identically through AppendRequest.
func FuzzWireRequestDecode(f *testing.F) {
	// Seed with real decoded payloads (frame body minus the header)
	// plus mutations targeting each validation branch.
	for _, frame := range fuzzSeedFrames() {
		if len(frame) > frameHeaderSize {
			f.Add(frame[frameHeaderSize:])
		}
	}
	good, _ := AppendRequest(nil, OpMigrate, 7, "t", []byte(`{"lease":7}`))
	payload := good[frameHeaderSize:]
	f.Add(payload)
	badVer := append([]byte(nil), payload...)
	badVer[0] = 0xee
	f.Add(badVer)
	badOp := append([]byte(nil), payload...)
	badOp[1] = byte(opSentinel)
	f.Add(badOp)
	badTenant := append([]byte(nil), payload...)
	badTenant[10] = 0xff
	f.Add(badTenant)
	f.Add(payload[:10]) // one byte short of the minimum

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRequest(data); err == nil {
			re, err := AppendRequest(nil, req.Op, req.ID, req.Tenant, req.Body)
			if err != nil {
				t.Fatalf("accepted request does not re-encode: %v", err)
			}
			req2, err := DecodeRequest(re[frameHeaderSize:])
			if err != nil {
				t.Fatalf("re-encoded request does not decode: %v", err)
			}
			if req2.Op != req.Op || req2.ID != req.ID || req2.Tenant != req.Tenant || !bytes.Equal(req2.Body, req.Body) {
				t.Fatalf("request round-trip mismatch: %+v vs %+v", req, req2)
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			re, err := AppendResponse(nil, resp.ID, resp.Status, resp.Body)
			if err != nil {
				t.Fatalf("accepted response does not re-encode: %v", err)
			}
			resp2, err := DecodeResponse(re[frameHeaderSize:])
			if err != nil {
				t.Fatalf("re-encoded response does not decode: %v", err)
			}
			if resp2.ID != resp.ID || resp2.Status != resp.Status || !bytes.Equal(resp2.Body, resp.Body) {
				t.Fatalf("response round-trip mismatch: %+v vs %+v", resp, resp2)
			}
		}
	})
}
