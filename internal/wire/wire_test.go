package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

// readOne parses a single frame out of raw bytes.
func readOne(t *testing.T, data []byte, max int) ([]byte, error) {
	t.Helper()
	payload, _, err := readFrame(bufio.NewReader(bytes.NewReader(data)), nil, max)
	return payload, err
}

func TestRequestRoundTrip(t *testing.T) {
	body := []byte(`{"name":"x","size":4096}`)
	frame, err := AppendRequest(nil, OpAlloc, 42, "team-a", body)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := readOne(t, frame, MaxRequestFrame)
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpAlloc || req.ID != 42 || req.Tenant != "team-a" || !bytes.Equal(req.Body, body) {
		t.Fatalf("roundtrip mismatch: %+v", req)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	body := []byte(`{"lease":7}`)
	frame, err := AppendResponse(nil, 99, 503, body)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := readOne(t, frame, MaxResponseFrame)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 99 || resp.Status != 503 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("roundtrip mismatch: %+v", resp)
	}
}

func TestAppendRequestValidation(t *testing.T) {
	if _, err := AppendRequest(nil, 0, 1, "", nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("invalid op: %v", err)
	}
	if _, err := AppendRequest(nil, opSentinel, 1, "", nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("sentinel op: %v", err)
	}
	long := make([]byte, 256)
	if _, err := AppendRequest(nil, OpAlloc, 1, string(long), nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overlong tenant: %v", err)
	}
	big := make([]byte, MaxRequestFrame)
	if _, err := AppendRequest(nil, OpAlloc, 1, "", big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized body: %v", err)
	}
}

func TestReadFrameErrors(t *testing.T) {
	good, err := AppendRequest(nil, OpFree, 7, "", []byte(`{"lease":7}`))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("clean EOF", func(t *testing.T) {
		if _, err := readOne(t, nil, MaxRequestFrame); err != io.EOF {
			t.Fatalf("want io.EOF, got %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := readOne(t, good[:5], MaxRequestFrame); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("want ErrBadFrame, got %v", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		if _, err := readOne(t, good[:len(good)-3], MaxRequestFrame); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("want ErrBadFrame, got %v", err)
		}
	})
	t.Run("CRC mismatch", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-1] ^= 0x40
		if _, err := readOne(t, bad, MaxRequestFrame); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("want ErrBadFrame, got %v", err)
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(bad[0:4], MaxRequestFrame+1)
		if _, err := readOne(t, bad, MaxRequestFrame); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("want ErrFrameTooLarge, got %v", err)
		}
	})
	t.Run("zero length", func(t *testing.T) {
		bad := make([]byte, frameHeaderSize)
		if _, err := readOne(t, bad, MaxRequestFrame); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("want ErrBadFrame, got %v", err)
		}
	})
}

func TestDecodeRequestErrors(t *testing.T) {
	good, _ := AppendRequest(nil, OpAlloc, 1, "t", []byte("{}"))
	payload, err := readOne(t, good, MaxRequestFrame)
	if err != nil {
		t.Fatal(err)
	}

	short := payload[:5]
	if _, err := DecodeRequest(short); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short payload: %v", err)
	}
	badVer := append([]byte(nil), payload...)
	badVer[0] = 9
	if _, err := DecodeRequest(badVer); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	badOp := append([]byte(nil), payload...)
	badOp[1] = byte(opSentinel)
	if _, err := DecodeRequest(badOp); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad op: %v", err)
	}
	badTenant := append([]byte(nil), payload...)
	badTenant[10] = 200 // tenant length far past the payload end
	if _, err := DecodeRequest(badTenant); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated tenant: %v", err)
	}
	if _, err := DecodeResponse([]byte{Version}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short response: %v", err)
	}
}

// echoHandler answers 200 with the request body, optionally sleeping
// per request to force out-of-order completion.
type echoHandler struct {
	delay func(body []byte) time.Duration
}

func (h echoHandler) ServeWire(_ context.Context, _ Op, _ string, body, dst []byte) (int, []byte) {
	if h.delay != nil {
		time.Sleep(h.delay(body))
	}
	return 200, append(dst, body...)
}

// startUDS serves h on a fresh unix socket and returns its path.
func startUDS(t *testing.T, h Handler, stats *Stats) (string, *Server) {
	t.Helper()
	path := filepath.Join(os.TempDir(), fmt.Sprintf("wiretest-%d.sock", os.Getpid()))
	os.Remove(path)
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(h, stats)
	go s.Serve(ln)
	t.Cleanup(func() { s.Close(); os.Remove(path) })
	return path, s
}

// TestMuxOutOfOrder floods one connection with concurrent requests
// whose handler latency is inverted (early requests are slow), so the
// server must answer out of order and the client must re-correlate
// every response by ID.
func TestMuxOutOfOrder(t *testing.T) {
	var stats Stats
	path, _ := startUDS(t, echoHandler{delay: func(body []byte) time.Duration {
		n, _ := strconv.Atoi(string(body))
		return time.Duration(31-n) * time.Millisecond
	}}, &stats)
	cl := NewClient("unix", path)
	defer cl.Close()

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := strconv.Itoa(i)
			status, body, err := cl.RoundTrip(context.Background(), OpHealth, "", []byte(want))
			if err != nil {
				errs[i] = err
				return
			}
			if status != 200 || string(body) != want {
				errs[i] = fmt.Errorf("request %d got status %d body %q", i, status, body)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := stats.Requests.Load(); got != n {
		t.Fatalf("requests counter %d, want %d", got, n)
	}
	if got := stats.ActiveConns.Load(); got != 1 {
		t.Fatalf("active conns %d, want 1", got)
	}
	if rx, tx := stats.BytesRx.Load(), stats.BytesTx.Load(); rx == 0 || tx == 0 {
		t.Fatalf("byte counters did not move: rx %d tx %d", rx, tx)
	}
}

// TestDuplicateRequestIDCloses hand-writes two frames reusing one
// request ID while the first is still in flight; the server must treat
// it as a protocol error, count it, and hang up.
func TestDuplicateRequestIDCloses(t *testing.T) {
	var stats Stats
	path, _ := startUDS(t, echoHandler{delay: func([]byte) time.Duration {
		return 200 * time.Millisecond
	}}, &stats)
	nc, err := net.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	frame, err := AppendRequest(nil, OpHealth, 1, "", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	// Same ID twice, back to back: the first is parked in its handler
	// sleep when the second arrives.
	if _, err := nc.Write(append(append([]byte(nil), frame...), frame...)); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	for {
		if _, err := nc.Read(buf); err != nil {
			break // server hung up (possibly after flushing the first response)
		}
	}
	if got := stats.DecodeErrors.Load(); got != 1 {
		t.Fatalf("decode errors %d, want 1", got)
	}
}

// TestClientReconnect kills the server under a client, restarts it on
// the same socket, and expects the next RoundTrip to redial and
// succeed — with the in-between failure classified ErrConnDropped.
func TestClientReconnect(t *testing.T) {
	var stats Stats
	path, s := startUDS(t, echoHandler{}, &stats)
	cl := NewClient("unix", path)
	defer cl.Close()

	if _, _, err := cl.RoundTrip(context.Background(), OpHealth, "", []byte("1")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// The connection is dead; the next exchange either fails as a
	// mid-stream drop (the conn died under us) or as not-sent (the
	// redial hit the removed socket) — never silently succeeds.
	if _, _, err := cl.RoundTrip(context.Background(), OpHealth, "", []byte("2")); err == nil {
		t.Fatal("round trip against a closed server succeeded")
	} else if !errors.Is(err, ErrConnDropped) && !errors.Is(err, ErrNotSent) {
		t.Fatalf("unclassified transport error: %v", err)
	}

	os.Remove(path)
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(echoHandler{}, &stats)
	go s2.Serve(ln)
	defer s2.Close()

	status, body, err := cl.RoundTrip(context.Background(), OpHealth, "", []byte("3"))
	if err != nil {
		t.Fatalf("round trip after server restart: %v", err)
	}
	if status != 200 || string(body) != "3" {
		t.Fatalf("got %d %q after reconnect", status, body)
	}
}

func TestDialFailureIsNotSent(t *testing.T) {
	cl := NewClient("unix", filepath.Join(t.TempDir(), "nothing-here.sock"))
	_, _, err := cl.RoundTrip(context.Background(), OpHealth, "", nil)
	if !errors.Is(err, ErrNotSent) {
		t.Fatalf("dial failure must classify as ErrNotSent, got %v", err)
	}
	if errors.Is(err, ErrConnDropped) {
		t.Fatalf("dial failure must not classify as ErrConnDropped: %v", err)
	}
}

// bigHandler answers with a body larger than MaxResponseFrame.
type bigHandler struct{}

func (bigHandler) ServeWire(_ context.Context, _ Op, _ string, _, dst []byte) (int, []byte) {
	return 200, append(dst, make([]byte, MaxResponseFrame+1)...)
}

// TestOversizedResponseAnswers500 proves a response outgrowing the
// frame cap degrades to a 500 for that request without killing the
// connection.
func TestOversizedResponseAnswers500(t *testing.T) {
	path, _ := startUDS(t, bigHandler{}, nil)
	cl := NewClient("unix", path)
	defer cl.Close()
	status, body, err := cl.RoundTrip(context.Background(), OpMetrics, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != 500 || len(body) != 0 {
		t.Fatalf("oversized response: got %d with %d body bytes, want bare 500", status, len(body))
	}
	// Same connection still serves.
	if status, _, err = cl.RoundTrip(context.Background(), OpMetrics, "", nil); err != nil || status != 500 {
		t.Fatalf("connection unusable after oversized response: %d %v", status, err)
	}
}

// TestContextCancelMidFlight cancels a waiting RoundTrip; the call
// returns the context error and the connection keeps serving others.
func TestContextCancelMidFlight(t *testing.T) {
	path, _ := startUDS(t, echoHandler{delay: func(body []byte) time.Duration {
		if string(body) == "slow" {
			return 300 * time.Millisecond
		}
		return 0
	}}, nil)
	cl := NewClient("unix", path)
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := cl.RoundTrip(ctx, OpHealth, "", []byte("slow")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	status, body, err := cl.RoundTrip(context.Background(), OpHealth, "", []byte("ok"))
	if err != nil || status != 200 || string(body) != "ok" {
		t.Fatalf("connection unusable after canceled request: %d %q %v", status, body, err)
	}
}
