package wire

import "sync/atomic"

// Stats is one transport listener's observability surface: lock-free
// counters the daemon renders into /metrics as the
// hetmemd_transport_* series. A Server writes into the Stats it was
// built with, so the daemon can hand each listener the slot matching
// its transport label and render all of them deterministically —
// including all-zero rows for transports that are not mounted.
type Stats struct {
	// Requests counts frames accepted for dispatch.
	Requests atomic.Uint64
	// BytesRx / BytesTx count frame bytes (headers included) read from
	// and written to peers.
	BytesRx atomic.Uint64
	BytesTx atomic.Uint64
	// ActiveConns is the live connection gauge.
	ActiveConns atomic.Int64
	// DecodeErrors counts connections dropped for undecodable input:
	// truncated frames, CRC mismatches, oversized lengths, bad
	// versions, unknown ops, and duplicate in-flight request IDs.
	DecodeErrors atomic.Uint64
}
