package wire

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Error kinds for transport-failure classification. The distinction is
// the whole point of satellite retry safety: a request that provably
// never reached the server (the dial failed, or the connection was
// already dead before a byte of the frame was queued) is safe to retry
// even when non-idempotent; a connection that dropped after the frame
// was written is ambiguous — the server may have processed the request
// without us seeing the answer — so only idempotent requests may
// replay it.
var (
	// ErrNotSent: the request provably never reached the server.
	ErrNotSent = errors.New("wire: request not sent")
	// ErrConnDropped: the connection died with the request in flight.
	ErrConnDropped = errors.New("wire: connection dropped mid-request")
)

// transportError pairs the classification sentinel with the underlying
// error, and unwraps to both — errors.Is sees ErrNotSent/ErrConnDropped
// AND syscall-level causes like ECONNREFUSED through one wrapper.
type transportError struct {
	kind error // ErrNotSent or ErrConnDropped
	err  error
}

func (e *transportError) Error() string   { return e.kind.Error() + ": " + e.err.Error() }
func (e *transportError) Unwrap() []error { return []error{e.kind, e.err} }

func notSent(err error) error     { return &transportError{kind: ErrNotSent, err: err} }
func connDropped(err error) error { return &transportError{kind: ErrConnDropped, err: err} }

// Client is one multiplexed binary-protocol connection to a daemon,
// with lazy dialing and automatic re-establishment: the first
// RoundTrip after a drop dials fresh. It is safe for concurrent use —
// that is the point: many goroutines share the one connection, each
// request tagged with a unique ID, responses correlated as they
// arrive in any order.
//
// The Client retries nothing itself. Retry policy, backoff, circuit
// breaking, and idempotency live in server.Client, which treats this
// as one transport attempt; the error classification above tells it
// which failures are replayable.
type Client struct {
	network string // "unix" or "tcp"
	addr    string

	dialTimeout time.Duration
	nextID      atomic.Uint64

	mu sync.Mutex
	cc *clientConn
}

// NewClient prepares a client for the daemon's binary listener at
// network/addr ("unix" + socket path, or "tcp" + host:port). No
// connection is made until the first RoundTrip.
func NewClient(network, addr string) *Client {
	return &Client{network: network, addr: addr, dialTimeout: 10 * time.Second}
}

// Close drops the current connection (if any); in-flight requests fail
// with ErrConnDropped. The client remains usable — the next RoundTrip
// redials.
func (c *Client) Close() error {
	c.mu.Lock()
	cc := c.cc
	c.cc = nil
	c.mu.Unlock()
	if cc != nil {
		cc.fail(connDropped(errors.New("client closed")))
	}
	return nil
}

// RoundTrip sends one request and waits for its response. The returned
// body is freshly allocated and owned by the caller. Errors unwrap to
// ErrNotSent or ErrConnDropped (see above); a context error is
// returned as-is.
func (c *Client) RoundTrip(ctx context.Context, op Op, tenant string, body []byte) (status int, respBody []byte, err error) {
	cc, err := c.conn(ctx)
	if err != nil {
		return 0, nil, notSent(err)
	}
	id := c.nextID.Add(1)
	ch, err := cc.register(id)
	if err != nil {
		// The connection died between our dial/lookup and registration;
		// nothing of this request was ever queued.
		return 0, nil, notSent(err)
	}

	bp := getBuf()
	frame, err := AppendRequest((*bp)[:0], op, id, tenant, body)
	if err != nil {
		*bp = frame[:0]
		putBuf(bp)
		cc.forget(id)
		return 0, nil, notSent(err)
	}
	*bp = frame
	if err := cc.write(frame); err != nil {
		putBuf(bp)
		cc.forget(id)
		// A write error after bytes may have left the socket is
		// ambiguous; fail the whole connection so every waiter learns.
		cc.fail(connDropped(err))
		return 0, nil, connDropped(err)
	}
	putBuf(bp)

	select {
	case r := <-ch:
		return r.status, r.body, r.err
	case <-ctx.Done():
		cc.forget(id)
		return 0, nil, ctx.Err()
	}
}

// conn returns the live connection, dialing one if needed.
func (c *Client) conn(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cc != nil && !c.cc.dead() {
		return c.cc, nil
	}
	d := net.Dialer{Timeout: c.dialTimeout}
	nc, err := d.DialContext(ctx, c.network, c.addr)
	if err != nil {
		return nil, err
	}
	cc := &clientConn{
		c:       nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		waiters: make(map[uint64]chan clientResult),
		done:    make(chan struct{}),
	}
	go cc.readLoop()
	c.cc = cc
	return cc, nil
}

type clientResult struct {
	status int
	body   []byte
	err    error
}

// clientConn is one live multiplexed connection: a write mutex
// serializing frame writes, a waiter table keyed by request ID, and a
// reader goroutine correlating responses.
type clientConn struct {
	c net.Conn

	wmu     sync.Mutex    // serializes whole-frame writes
	bw      *bufio.Writer // written under wmu
	pending atomic.Int32  // senders that have committed to taking wmu

	mu      sync.Mutex
	waiters map[uint64]chan clientResult
	err     error // set once the connection is failed
	done    chan struct{}
	once    sync.Once
}

func (cc *clientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

func (cc *clientConn) register(id uint64) (chan clientResult, error) {
	ch := make(chan clientResult, 1)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return nil, cc.err
	}
	cc.waiters[id] = ch
	return ch, nil
}

func (cc *clientConn) forget(id uint64) {
	cc.mu.Lock()
	delete(cc.waiters, id)
	cc.mu.Unlock()
}

// write sends one whole frame under the write lock. net.Conn allows
// concurrent Write calls but does not make them atomic, and an
// interleaved frame would corrupt the stream for every request on the
// connection.
//
// Frames group-commit: a sender that observes another sender already
// committed to the lock (pending > 0 after its own decrement) leaves
// its frame in the buffer and skips the flush — the last sender in
// the burst flushes everyone's frames in one syscall, the same
// coalescing the server's write loop does for responses.
func (cc *clientConn) write(frame []byte) error {
	cc.pending.Add(1)
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	_, err := cc.bw.Write(frame)
	if cc.pending.Add(-1) > 0 && err == nil {
		// The observed sender increments pending before taking wmu, so
		// it (or a later sender, inductively) reaches the flush below.
		return nil
	}
	if err != nil {
		return err
	}
	return cc.bw.Flush()
}

// fail marks the connection dead exactly once and delivers err to
// every waiter: one mid-stream drop fails all in-flight requests, and
// each caller classifies it against its own idempotency.
func (cc *clientConn) fail(err error) {
	cc.once.Do(func() {
		cc.mu.Lock()
		cc.err = err
		waiters := cc.waiters
		cc.waiters = make(map[uint64]chan clientResult)
		cc.mu.Unlock()
		close(cc.done)
		cc.c.Close()
		for _, ch := range waiters {
			ch <- clientResult{err: err}
		}
	})
}

func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.c, 64<<10)
	var buf []byte
	for {
		payload, nbuf, err := readFrame(br, buf[:0], MaxResponseFrame)
		if err != nil {
			cc.fail(connDropped(err))
			return
		}
		buf = nbuf
		resp, err := DecodeResponse(payload)
		if err != nil {
			cc.fail(connDropped(err))
			return
		}
		cc.mu.Lock()
		ch, ok := cc.waiters[resp.ID]
		delete(cc.waiters, resp.ID)
		cc.mu.Unlock()
		if ok {
			// The payload buffer is reused for the next frame; the
			// waiter gets its own copy.
			body := make([]byte, len(resp.Body))
			copy(body, resp.Body)
			ch <- clientResult{status: resp.Status, body: body}
		}
	}
}
