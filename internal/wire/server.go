package wire

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
)

// Handler answers one decoded request. The implementation appends the
// response body (JSON, same as the /v1 surface) to dst and returns the
// HTTP-equivalent status plus the extended slice — the server reserves
// the frame header around it, so the whole response is built in one
// pooled buffer with zero copies.
//
// body aliases a per-request buffer owned by the caller for the
// duration of the call; implementations must not retain it.
type Handler interface {
	ServeWire(ctx context.Context, op Op, tenant string, body, dst []byte) (status int, out []byte)
}

// Server speaks the binary protocol on any net.Listener — the daemon
// mounts one on a Unix socket (-uds) and one on TCP (-tcp-bin), both
// dispatching into the same Handler. Connections are persistent and
// multiplexed: request frames are dispatched onto a per-connection
// pool of reusable handler goroutines (spilling to fresh ones under
// burst) and a per-connection writer goroutine coalesces completed
// responses into batched writes, the way journal group commit
// coalesces fsyncs.
type Server struct {
	h     Handler
	stats *Stats

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*serverConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a server dispatching into h. stats may be nil.
func NewServer(h Handler, stats *Stats) *Server {
	if stats == nil {
		stats = &Stats{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		h:      h,
		stats:  stats,
		ctx:    ctx,
		cancel: cancel,
		lns:    make(map[net.Listener]struct{}),
		conns:  make(map[*serverConn]struct{}),
	}
}

// Serve accepts connections on ln until Close (returning nil) or a
// listener error. The caller usually runs it in a goroutine, one per
// mounted listener.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server closed")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
		ln.Close()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sc := &serverConn{
			c:       c,
			writeCh: make(chan *[]byte, 128),
			idle:    make(chan chan dispatchWork, 64),
			done:    make(chan struct{}),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[sc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(sc)
	}
}

// Close stops accepting, closes every live connection, and waits for
// in-flight request goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	s.cancel()
	for _, sc := range conns {
		sc.close()
	}
	s.wg.Wait()
	return nil
}

// serverConn is one accepted connection: a reader (the serveConn
// goroutine), a writer goroutine draining writeCh, and the in-flight
// request-ID set that rejects duplicates.
type serverConn struct {
	c       net.Conn
	writeCh chan *[]byte
	idle    chan chan dispatchWork
	done    chan struct{}
	once    sync.Once

	mu       sync.Mutex
	inflight map[uint64]struct{}
}

// close tears the connection down exactly once: the done channel stops
// the writer and unblocks any dispatcher parked on a full writeCh, and
// closing the conn unblocks the reader.
func (sc *serverConn) close() {
	sc.once.Do(func() {
		close(sc.done)
		sc.c.Close()
	})
}

func (sc *serverConn) beginRequest(id uint64) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.inflight == nil {
		sc.inflight = make(map[uint64]struct{})
	}
	if _, dup := sc.inflight[id]; dup {
		return false
	}
	sc.inflight[id] = struct{}{}
	return true
}

func (sc *serverConn) endRequest(id uint64) {
	sc.mu.Lock()
	delete(sc.inflight, id)
	sc.mu.Unlock()
}

func (s *Server) serveConn(sc *serverConn) {
	defer s.wg.Done()
	s.stats.ActiveConns.Add(1)
	defer s.stats.ActiveConns.Add(-1)
	defer func() {
		sc.close()
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
	}()

	s.wg.Add(1)
	go s.writeLoop(sc)

	br := bufio.NewReaderSize(sc.c, 64<<10)
	for {
		bp := getBuf()
		payload, buf, err := readFrame(br, (*bp)[:0], MaxRequestFrame)
		*bp = buf[:0]
		if err != nil {
			putBuf(bp)
			if err != io.EOF {
				// Anything but a clean close at a frame boundary means the
				// stream is untrustworthy; count it and hang up.
				select {
				case <-sc.done:
					// The error is our own teardown racing the read, not
					// undecodable client input.
				default:
					s.stats.DecodeErrors.Add(1)
				}
			}
			return
		}
		*bp = buf // the payload's backing array, owned by the request now
		s.stats.BytesRx.Add(uint64(frameHeaderSize + len(payload)))
		req, err := DecodeRequest(payload)
		if err != nil {
			putBuf(bp)
			s.stats.DecodeErrors.Add(1)
			return
		}
		if !sc.beginRequest(req.ID) {
			// A request ID reused while still in flight: the client's
			// mux bookkeeping is broken and its responses can no longer
			// be correlated. Protocol error; hang up.
			putBuf(bp)
			s.stats.DecodeErrors.Add(1)
			return
		}
		s.stats.Requests.Add(1)
		s.handOff(sc, dispatchWork{req: req, buf: bp})
	}
}

// dispatchWork is one decoded request on its way to a handler
// goroutine; buf backs req.Body.
type dispatchWork struct {
	req Request
	buf *[]byte
}

// handOff gives the request to a parked dispatch worker when one is
// idle and spawns a fresh goroutine otherwise. The pool is an upper
// bound on reuse, not a cap on concurrency: a handler that blocks
// (admission queues park for seconds) occupies its worker only, and
// the next request simply spawns past it.
func (s *Server) handOff(sc *serverConn, w dispatchWork) {
	select {
	case inbox := <-sc.idle:
		inbox <- w
	default:
		s.wg.Add(1)
		go s.dispatchWorker(sc, w)
	}
}

// dispatchWorker runs requests for one connection, parking between
// them instead of exiting: goroutine stack growth through the handler
// call tree is paid once per worker, not once per request.
func (s *Server) dispatchWorker(sc *serverConn, w dispatchWork) {
	defer s.wg.Done()
	// Buffered so a hand-off that claimed this worker never blocks,
	// even if teardown wins the race below.
	inbox := make(chan dispatchWork, 1)
	for {
		s.dispatch(sc, w.req, w.buf)
		select {
		case sc.idle <- inbox:
		default:
			return // pool full; retire
		}
		select {
		case w = <-inbox:
		case <-sc.done:
			// A hand-off may have claimed our inbox just before
			// teardown; the connection is dying either way, so any
			// such request is dropped with it.
			return
		}
	}
}

// dispatch runs one request to completion and enqueues its response
// frame for the writer. reqBuf backs req.Body and is recycled here.
// (The wg slot belongs to the worker goroutine, not to dispatch.)
func (s *Server) dispatch(sc *serverConn, req Request, reqBuf *[]byte) {
	defer sc.endRequest(req.ID)
	rb := getBuf()
	out, start := beginFrame((*rb)[:0])
	out = appendResponseEnvelope(out, req.ID, 0)
	status, out := s.h.ServeWire(s.ctx, req.Op, req.Tenant, req.Body, out)
	putBuf(reqBuf)
	// The status is only known after the handler ran; its slot in the
	// envelope has a fixed offset, so patch it in place.
	statusOff := start + frameHeaderSize + 1 + 8
	out[statusOff] = byte(status)
	out[statusOff+1] = byte(status >> 8)
	sealed, err := finishFrame(out, start, MaxResponseFrame)
	if err != nil {
		// The response outgrew the frame cap. The request itself was
		// fine — answer 500 with an empty body rather than killing the
		// connection.
		sealed, _ = AppendResponse(out[:start], req.ID, 500, nil)
	}
	*rb = sealed
	select {
	case sc.writeCh <- rb:
	case <-sc.done:
		putBuf(rb)
	}
}

// writeLoop is the per-connection writer: it batches every response
// already waiting in writeCh into one buffered write and flushes when
// the channel runs dry — N racing responses pay ~1 syscall instead of
// N, the journal group-commit idiom applied to the socket.
func (s *Server) writeLoop(sc *serverConn) {
	defer s.wg.Done()
	bw := bufio.NewWriterSize(sc.c, 64<<10)
	for {
		select {
		case <-sc.done:
			return
		case bp := <-sc.writeCh:
			if !s.writeFrame(bw, bp) {
				sc.close()
				return
			}
			// Coalesce: drain everything already queued before paying
			// the flush.
			for {
				select {
				case bp := <-sc.writeCh:
					if !s.writeFrame(bw, bp) {
						sc.close()
						return
					}
					continue
				case <-sc.done:
					return
				default:
				}
				break
			}
			if bw.Flush() != nil {
				sc.close()
				return
			}
		}
	}
}

func (s *Server) writeFrame(bw *bufio.Writer, bp *[]byte) bool {
	n, err := bw.Write(*bp)
	s.stats.BytesTx.Add(uint64(n))
	putBuf(bp)
	return err == nil
}
