// Package wire is hetmemd's binary protocol: the /v1 request set over
// a persistent, multiplexed byte stream (Unix domain socket or TCP)
// instead of one HTTP exchange per call. The HTTP surface remains the
// stable compat API; this is the hot path for clients that allocate at
// allocator-call granularity, where HTTP/1.1 framing and header
// parsing dominate the request cost.
//
// # Frame layout
//
// Every message — request or response — travels in the journal's frame
// shape (see internal/journal/encode.go): a fixed 8-byte header
// followed by the payload.
//
//	offset  size  field
//	0       4     payload length N (uint32, little-endian)
//	4       4     CRC32-IEEE of the payload (uint32, little-endian)
//	8       N     payload
//
// A request payload is
//
//	ver(1) | op(1) | request id (uint64 LE) | tenant len(1) | tenant | body
//
// and a response payload is
//
//	ver(1) | request id (uint64 LE) | status (uint16 LE) | body
//
// where status carries the same HTTP status code the /v1 surface would
// have answered, and body is the same JSON the /v1 surface would have
// sent (response object or v1 error envelope) — the two transports
// share one wire vocabulary, so a client can switch schemes without
// reinterpreting anything.
//
// One connection carries many in-flight requests: the client tags each
// with a 64-bit request ID and the server may answer out of order.
// Reusing a request ID while it is still in flight is a protocol error
// and closes the connection.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Version is the protocol version stamped on every payload. A peer
// speaking a different version is rejected at decode.
const Version = 1

// frameHeaderSize is the fixed length+CRC prefix on every frame.
const frameHeaderSize = 8

// MaxRequestFrame bounds a request payload: the /v1 body limit plus
// the request envelope. Anything larger is a decode error and closes
// the connection before the daemon buffers it.
const MaxRequestFrame = 1<<20 + 512

// MaxResponseFrame bounds a response payload. Responses can outgrow
// requests by orders of magnitude (lease lists, /metrics text), so the
// cap is looser; a response the server cannot fit answers 500 instead.
const MaxResponseFrame = 8 << 20

// Op identifies one /v1 operation in a request payload.
type Op uint8

// The binary ops, mirroring the /v1 surface. Advisor control stays
// HTTP-only: it is an operator surface, not an allocation hot path.
const (
	OpTopology Op = iota + 1
	OpAttrs
	OpAlloc
	OpAllocBatch
	OpFree
	OpRenew
	OpMigrate
	OpLeases     // lease-table summary (no per-lease list)
	OpLeaseList  // lease-table summary plus the per-lease list
	OpLeaseDetail
	OpHealth
	OpMetrics
	opSentinel // one past the last valid op
)

var opNames = [opSentinel]string{
	0:             "invalid",
	OpTopology:    "topology",
	OpAttrs:       "attrs",
	OpAlloc:       "alloc",
	OpAllocBatch:  "alloc_batch",
	OpFree:        "free",
	OpRenew:       "renew",
	OpMigrate:     "migrate",
	OpLeases:      "leases",
	OpLeaseList:   "lease_list",
	OpLeaseDetail: "lease_detail",
	OpHealth:      "health",
	OpMetrics:     "metrics",
}

func (o Op) String() string {
	if o == 0 || o >= opSentinel {
		return fmt.Sprintf("op(%d)", uint8(o))
	}
	return opNames[o]
}

// Valid reports whether the op is one this version speaks.
func (o Op) Valid() bool { return o >= OpTopology && o < opSentinel }

// Decode and protocol errors. ErrBadFrame covers everything that makes
// the byte stream untrustworthy — truncation, CRC mismatch, a
// malformed envelope — after which the only safe move is closing the
// connection: framing is lost and every later byte is suspect.
var (
	ErrBadFrame      = errors.New("wire: bad frame")
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrBadVersion    = errors.New("wire: unsupported protocol version")
)

// Request is a decoded request payload. Body aliases the decoded
// buffer; it is valid until the buffer is reused.
type Request struct {
	Op     Op
	ID     uint64
	Tenant string
	Body   []byte
}

// Response is a decoded response payload. Body aliases the decoded
// buffer.
type Response struct {
	ID     uint64
	Status int
	Body   []byte
}

// bufPool recycles frame build/read buffers. Buffers start at 512
// bytes — enough for any single-lease exchange — and grow as payloads
// demand.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { *b = (*b)[:0]; bufPool.Put(b) }

// beginFrame reserves the 8-byte header and returns its offset;
// finishFrame seals it once the payload has been appended in place —
// the journal encoder's one-buffer-per-frame idiom.
func beginFrame(dst []byte) ([]byte, int) {
	start := len(dst)
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0), start
}

func finishFrame(dst []byte, start, max int) ([]byte, error) {
	payload := dst[start+frameHeaderSize:]
	if len(payload) > max {
		return dst[:start], fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, len(payload), max)
	}
	binary.LittleEndian.PutUint32(dst[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:start+8], crc32.ChecksumIEEE(payload))
	return dst, nil
}

// AppendRequest appends one framed request to dst.
func AppendRequest(dst []byte, op Op, id uint64, tenant string, body []byte) ([]byte, error) {
	if !op.Valid() {
		return dst, fmt.Errorf("%w: invalid op %d", ErrBadFrame, uint8(op))
	}
	if len(tenant) > 255 {
		return dst, fmt.Errorf("%w: tenant name over 255 bytes", ErrBadFrame)
	}
	dst, start := beginFrame(dst)
	dst = append(dst, Version, byte(op))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = append(dst, byte(len(tenant)))
	dst = append(dst, tenant...)
	dst = append(dst, body...)
	return finishFrame(dst, start, MaxRequestFrame)
}

// AppendResponse appends one framed response to dst.
func AppendResponse(dst []byte, id uint64, status int, body []byte) ([]byte, error) {
	dst, start := beginFrame(dst)
	dst = appendResponseEnvelope(dst, id, status)
	dst = append(dst, body...)
	return finishFrame(dst, start, MaxResponseFrame)
}

// responseEnvelopeSize is ver + request id + status.
const responseEnvelopeSize = 1 + 8 + 2

func appendResponseEnvelope(dst []byte, id uint64, status int) []byte {
	dst = append(dst, Version)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	return binary.LittleEndian.AppendUint16(dst, uint16(status))
}

// DecodeRequest parses a request payload (the bytes after the frame
// header). The returned Body aliases payload.
func DecodeRequest(payload []byte) (Request, error) {
	// ver + op + id + tenant len
	if len(payload) < 1+1+8+1 {
		return Request{}, fmt.Errorf("%w: request payload of %d bytes", ErrBadFrame, len(payload))
	}
	if payload[0] != Version {
		return Request{}, fmt.Errorf("%w: %d", ErrBadVersion, payload[0])
	}
	op := Op(payload[1])
	if !op.Valid() {
		return Request{}, fmt.Errorf("%w: unknown op %d", ErrBadFrame, payload[1])
	}
	id := binary.LittleEndian.Uint64(payload[2:10])
	tlen := int(payload[10])
	if len(payload) < 11+tlen {
		return Request{}, fmt.Errorf("%w: truncated tenant field", ErrBadFrame)
	}
	var tenant string
	if tlen > 0 {
		tenant = string(payload[11 : 11+tlen])
	}
	return Request{Op: op, ID: id, Tenant: tenant, Body: payload[11+tlen:]}, nil
}

// DecodeResponse parses a response payload. The returned Body aliases
// payload.
func DecodeResponse(payload []byte) (Response, error) {
	if len(payload) < responseEnvelopeSize {
		return Response{}, fmt.Errorf("%w: response payload of %d bytes", ErrBadFrame, len(payload))
	}
	if payload[0] != Version {
		return Response{}, fmt.Errorf("%w: %d", ErrBadVersion, payload[0])
	}
	return Response{
		ID:     binary.LittleEndian.Uint64(payload[1:9]),
		Status: int(binary.LittleEndian.Uint16(payload[9:11])),
		Body:   payload[responseEnvelopeSize:],
	}, nil
}

// readFrame reads one frame from br into buf (which is grown as
// needed) and returns the CRC-verified payload, aliasing buf. io.EOF
// at the frame boundary is a clean end of stream; a partial header or
// payload is ErrBadFrame.
func readFrame(br *bufio.Reader, buf []byte, max int) (payload, newBuf []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, buf, io.EOF
		}
		return nil, buf, fmt.Errorf("%w: truncated header: %v", ErrBadFrame, err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	if n == 0 {
		return nil, buf, fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	if n > max {
		return nil, buf, fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, n, max)
	}
	if cap(buf) < n {
		buf = make([]byte, 0, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, buf, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, buf, fmt.Errorf("%w: CRC mismatch", ErrBadFrame)
	}
	return payload, buf, nil
}
