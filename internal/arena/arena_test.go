package arena

import (
	"errors"
	"testing"

	"hetmem/internal/alloc"
	"hetmem/internal/bench"
	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

const gib = uint64(1) << 30

func knlAllocator(t *testing.T) (*alloc.Allocator, *bitmap.Bitmap) {
	t.Helper()
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	results, err := bench.MeasureAll(m, bench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	if err := bench.Apply(results, reg); err != nil {
		t.Fatal(err)
	}
	return alloc.New(m, reg), bitmap.NewFromRange(0, 15)
}

func TestSubAllocationPacking(t *testing.T) {
	a, ini := knlAllocator(t)
	ar, err := New("bw-arena", a, ini, memattr.Bandwidth, Options{ChunkSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Four 256KiB allocations pack into one 1MiB chunk.
	var allocs []Allocation
	for i := 0; i < 4; i++ {
		al, err := ar.Alloc(256 << 10)
		if err != nil {
			t.Fatal(err)
		}
		allocs = append(allocs, al)
	}
	st := ar.Stats()
	if st.Chunks != 1 || st.Reserved != 1<<20 || st.Utilization != 1.0 {
		t.Fatalf("stats = %+v", st)
	}
	for i, al := range allocs {
		if al.Chunk != allocs[0].Chunk || al.Offset != uint64(i)*(256<<10) {
			t.Fatalf("allocation %d = %+v", i, al)
		}
	}
	// The fifth spills into a second chunk.
	if _, err := ar.Alloc(256 << 10); err != nil {
		t.Fatal(err)
	}
	if ar.Stats().Chunks != 2 {
		t.Fatalf("chunks = %d", ar.Stats().Chunks)
	}
	// All chunks landed on the bandwidth-best node.
	for _, pl := range ar.Stats().Placements {
		if pl != "MCDRAM#4" {
			t.Fatalf("placements = %v", ar.Stats().Placements)
		}
	}
}

func TestChunkFallbackAcrossTargets(t *testing.T) {
	a, ini := knlAllocator(t)
	ar, err := New("big", a, ini, memattr.Bandwidth, Options{ChunkSize: 2 * gib})
	if err != nil {
		t.Fatal(err)
	}
	// Three 2GiB chunks: the first two fill the 4GiB MCDRAM, the third
	// falls back to DRAM — ranked fallback at chunk granularity.
	for i := 0; i < 3; i++ {
		if _, err := ar.Alloc(2 * gib); err != nil {
			t.Fatal(err)
		}
	}
	st := ar.Stats()
	want := []string{"MCDRAM#4", "MCDRAM#4", "DRAM#0"}
	if len(st.Placements) != 3 {
		t.Fatalf("placements = %v", st.Placements)
	}
	for i, w := range want {
		if st.Placements[i] != w {
			t.Fatalf("placements = %v, want %v", st.Placements, want)
		}
	}
}

func TestOversizedDedicatedChunk(t *testing.T) {
	a, ini := knlAllocator(t)
	ar, _ := New("mixed", a, ini, memattr.Capacity, Options{ChunkSize: 1 << 20})
	small, err := ar.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ar.Alloc(3 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if big.Chunk == small.Chunk || big.Chunk.Size != 3<<20 {
		t.Fatalf("big allocation should get a dedicated chunk: %+v", big)
	}
	// Small allocations continue in the original chunk afterwards.
	small2, err := ar.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	// The newest chunk is the dedicated big one (full), so a new chunk
	// is opened; either way the sub-allocation must not land inside
	// the dedicated chunk.
	if small2.Chunk == big.Chunk {
		t.Fatal("sub-allocation landed in a dedicated chunk")
	}
}

func TestDestroyFreesEverything(t *testing.T) {
	a, ini := knlAllocator(t)
	m := a.Machine()
	before := m.NodeByOS(4).Allocated() + m.NodeByOS(0).Allocated()
	ar, _ := New("tmp", a, ini, memattr.Bandwidth, Options{ChunkSize: gib})
	for i := 0; i < 5; i++ {
		if _, err := ar.Alloc(900 << 20); err != nil {
			t.Fatal(err)
		}
	}
	if err := ar.Destroy(); err != nil {
		t.Fatal(err)
	}
	after := m.NodeByOS(4).Allocated() + m.NodeByOS(0).Allocated()
	if after != before {
		t.Fatalf("destroy leaked: %d -> %d", before, after)
	}
	if _, err := ar.Alloc(1); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("err = %v", err)
	}
	if err := ar.Destroy(); !errors.Is(err, ErrDestroyed) {
		t.Fatalf("double destroy err = %v", err)
	}
}

func TestArenaErrors(t *testing.T) {
	a, ini := knlAllocator(t)
	if _, err := New("x", a, ini, memattr.ID(99), Options{}); err == nil {
		t.Fatal("unknown attribute should fail")
	}
	ar, _ := New("x", a, ini, memattr.Bandwidth, Options{})
	if _, err := ar.Alloc(0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("zero size err = %v", err)
	}
	// Exhaustion propagates from the allocator.
	if _, err := ar.Alloc(4096 * gib); !errors.Is(err, alloc.ErrExhausted) {
		t.Fatalf("exhaustion err = %v", err)
	}
}

func TestArenaRunsPhases(t *testing.T) {
	// Allocations are usable for engine phases via their chunk.
	a, ini := knlAllocator(t)
	ar, _ := New("run", a, ini, memattr.Bandwidth, Options{ChunkSize: gib})
	al, err := ar.Alloc(512 << 20)
	if err != nil {
		t.Fatal(err)
	}
	e := memsim.NewEngine(a.Machine(), ini)
	res := e.Phase("k", []memsim.Access{{Buffer: al.Chunk, ReadBytes: 8 * gib}})
	if res.Seconds <= 0 || res.BoundKind != "MCDRAM" {
		t.Fatalf("phase = %+v", res)
	}
}
