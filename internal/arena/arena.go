// Package arena provides a SICM-style high-level interface on top of
// the heterogeneous allocator. The paper's conclusion names SICM,
// FLEXMALLOC and Hexe as frameworks that "may use our work to provide
// easy discovery of the hardware"; interpose covers the FLEXMALLOC
// shape, and this package covers the SICM shape: an *arena* is bound
// to a performance attribute once, grows in chunks placed by the
// attribute-driven allocator (ranked fallback included), and serves
// many small allocations from those chunks — the usual way runtimes
// avoid per-allocation placement cost.
package arena

import (
	"errors"
	"fmt"

	"hetmem/internal/alloc"
	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
)

// DefaultChunkSize is used when Options.ChunkSize is zero.
const DefaultChunkSize = 256 << 20

// Options configures an arena.
type Options struct {
	// ChunkSize is the growth unit. Allocations larger than a chunk
	// get a dedicated chunk of their own size.
	ChunkSize uint64
	// AllocOpts are passed through to the underlying allocator
	// (WithPartial, WithRemote, ...).
	AllocOpts []alloc.Option
}

// Arena is a growable allocation pool bound to one attribute.
type Arena struct {
	name string
	a    *alloc.Allocator
	ini  *bitmap.Bitmap
	attr memattr.ID
	opts Options

	chunks []*memsim.Buffer
	// used bytes in the newest chunk.
	used      uint64
	allocated uint64
	destroyed bool
}

// Allocation is a sub-range of an arena chunk. Applications run
// engine accesses against Chunk (the arena's placement decides the
// performance of every allocation it serves).
type Allocation struct {
	Chunk  *memsim.Buffer
	Offset uint64
	Size   uint64
}

// Errors.
var (
	ErrDestroyed = errors.New("arena: arena destroyed")
	ErrBadSize   = errors.New("arena: bad allocation size")
)

// New creates an arena serving allocations for threads on the
// initiator, placed by the given attribute.
func New(name string, a *alloc.Allocator, initiator *bitmap.Bitmap, attr memattr.ID, opts Options) (*Arena, error) {
	if opts.ChunkSize == 0 {
		opts.ChunkSize = DefaultChunkSize
	}
	if a.Registry().Name(attr) == "" {
		return nil, fmt.Errorf("arena: unknown attribute %d", int(attr))
	}
	return &Arena{name: name, a: a, ini: initiator.Copy(), attr: attr, opts: opts}, nil
}

// Attribute returns the attribute driving this arena's placement.
func (ar *Arena) Attribute() memattr.ID { return ar.attr }

func (ar *Arena) grow(size uint64) (*memsim.Buffer, error) {
	chunkName := fmt.Sprintf("%s[%d]", ar.name, len(ar.chunks))
	buf, _, err := ar.a.Alloc(chunkName, size, ar.attr, ar.ini, ar.opts.AllocOpts...)
	if err != nil {
		return nil, err
	}
	ar.chunks = append(ar.chunks, buf)
	return buf, nil
}

// Alloc carves size bytes out of the arena, growing it when needed.
func (ar *Arena) Alloc(size uint64) (Allocation, error) {
	if ar.destroyed {
		return Allocation{}, ErrDestroyed
	}
	if size == 0 {
		return Allocation{}, ErrBadSize
	}
	// Oversized allocations get a dedicated chunk, like SICM's and
	// every malloc's large-object path.
	if size > ar.opts.ChunkSize {
		buf, err := ar.grow(size)
		if err != nil {
			return Allocation{}, err
		}
		ar.allocated += size
		return Allocation{Chunk: buf, Offset: 0, Size: size}, nil
	}
	// Current chunk, if any, with room?
	if len(ar.chunks) > 0 {
		cur := ar.chunks[len(ar.chunks)-1]
		if cur.Size <= ar.opts.ChunkSize && ar.used+size <= cur.Size {
			a := Allocation{Chunk: cur, Offset: ar.used, Size: size}
			ar.used += size
			ar.allocated += size
			return a, nil
		}
	}
	buf, err := ar.grow(ar.opts.ChunkSize)
	if err != nil {
		return Allocation{}, err
	}
	ar.used = size
	ar.allocated += size
	return Allocation{Chunk: buf, Offset: 0, Size: size}, nil
}

// Stats reports the arena's footprint.
type Stats struct {
	Chunks      int
	Reserved    uint64 // bytes held from the machine
	Allocated   uint64 // bytes handed to callers
	Utilization float64
	// Placements lists chunk placements, e.g. ["MCDRAM#4", "DRAM#0"]:
	// visible evidence of ranked fallback at chunk granularity.
	Placements []string
}

// Stats snapshots the arena.
func (ar *Arena) Stats() Stats {
	s := Stats{Chunks: len(ar.chunks), Allocated: ar.allocated}
	for _, c := range ar.chunks {
		s.Reserved += c.Size
		s.Placements = append(s.Placements, c.NodeNames())
	}
	if s.Reserved > 0 {
		s.Utilization = float64(s.Allocated) / float64(s.Reserved)
	}
	return s
}

// Destroy frees every chunk. Allocations become invalid.
func (ar *Arena) Destroy() error {
	if ar.destroyed {
		return ErrDestroyed
	}
	ar.destroyed = true
	m := ar.a.Machine()
	for _, c := range ar.chunks {
		if err := m.Free(c); err != nil {
			return err
		}
	}
	ar.chunks = nil
	return nil
}
