package stream

import (
	"math"
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

const gib = uint64(1) << 30

func xeonMachine(t *testing.T) *memsim.Machine {
	t.Helper()
	p, err := platform.Get("xeon")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func placeOn(m *memsim.Machine, os int) func(string, uint64) (*memsim.Buffer, error) {
	return func(name string, size uint64) (*memsim.Buffer, error) {
		return m.Alloc(name, size, m.NodeByOS(os))
	}
}

func TestAllocArrays(t *testing.T) {
	m := xeonMachine(t)
	ar, err := AllocArrays(placeOn(m, 0), gib/ElemBytes)
	if err != nil {
		t.Fatal(err)
	}
	if ar.TotalBytes() != 3*gib {
		t.Fatalf("total = %d", ar.TotalBytes())
	}
	if m.NodeByOS(0).Allocated() != 3*gib {
		t.Fatalf("allocated = %d", m.NodeByOS(0).Allocated())
	}
	ar.Free(m)
	if m.NodeByOS(0).Allocated() != 0 {
		t.Fatal("free incomplete")
	}
	// Failure cleanliness: an NVDIMM-sized request on the 192GB DRAM
	// fails on the second array and reports which one.
	if _, err := AllocArrays(placeOn(m, 0), 80*gib/ElemBytes); err == nil {
		t.Fatal("oversized arrays should fail")
	}
}

func TestTriadCalibrationXeon(t *testing.T) {
	m := xeonMachine(t)
	ini := bitmap.NewFromRange(0, 19)

	run := func(nodeOS int, totalGiB uint64) Result {
		elems := totalGiB * gib / 3 / ElemBytes
		ar, err := AllocArrays(placeOn(m, nodeOS), elems)
		if err != nil {
			t.Fatal(err)
		}
		defer ar.Free(m)
		e := memsim.NewEngine(m, ini)
		return Run(e, ar, 3)
	}

	// Paper Table IIIa: DRAM triad ~75 GB/s; NVDIMM ~31.6 small,
	// ~10.5 at 89 GiB.
	d := run(0, 22)
	if math.Abs(d.TriadBW-75) > 8 {
		t.Fatalf("DRAM triad = %.2f, want ~75", d.TriadBW)
	}
	nvSmall := run(2, 22)
	if math.Abs(nvSmall.TriadBW-31.6) > 5 {
		t.Fatalf("NVDIMM small triad = %.2f, want ~31.6", nvSmall.TriadBW)
	}
	nvBig := run(2, 89)
	if math.Abs(nvBig.TriadBW-10.5) > 3 {
		t.Fatalf("NVDIMM large triad = %.2f, want ~10.5", nvBig.TriadBW)
	}
	nvHuge := run(2, 223)
	if nvHuge.TriadBW >= nvBig.TriadBW {
		t.Fatalf("NVDIMM should degrade with footprint: %.2f vs %.2f", nvHuge.TriadBW, nvBig.TriadBW)
	}
	// Kernel ordering: triad/add move 3 lengths, copy/scale 2; all
	// bound by the same node, so reported numbers are similar.
	if d.CopyBW <= 0 || d.ScaleBW <= 0 || d.AddBW <= 0 {
		t.Fatalf("missing kernels: %+v", d)
	}
}

func TestTriadCalibrationKNL(t *testing.T) {
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	ini := bitmap.NewFromRange(0, 15) // cluster 0

	run := func(nodeOS int, totalGiB float64) Result {
		elems := uint64(totalGiB * float64(gib) / 3 / ElemBytes)
		ar, err := AllocArrays(placeOn(m, nodeOS), elems)
		if err != nil {
			t.Fatal(err)
		}
		defer ar.Free(m)
		e := memsim.NewEngine(m, ini)
		return Run(e, ar, 3)
	}
	// Paper Table IIIb: MCDRAM triad 85-90; DRAM 29.17.
	mc := run(4, 1.1)
	if math.Abs(mc.TriadBW-88) > 8 {
		t.Fatalf("MCDRAM triad = %.2f, want ~88", mc.TriadBW)
	}
	dr := run(0, 1.1)
	if math.Abs(dr.TriadBW-29.2) > 4 {
		t.Fatalf("DRAM triad = %.2f, want ~29.2", dr.TriadBW)
	}
}

func TestRunThreadScaling(t *testing.T) {
	m := xeonMachine(t)
	ar, err := AllocArrays(placeOn(m, 0), 4*gib/ElemBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Free(m)
	one := memsim.NewEngine(m, bitmap.NewFromIndexes(0))
	many := memsim.NewEngine(m, bitmap.NewFromRange(0, 19))
	r1 := Run(one, ar, 1)
	rn := Run(many, ar, 1)
	if r1.TriadBW >= rn.TriadBW {
		t.Fatalf("1-thread triad %.1f should be below 20-thread %.1f", r1.TriadBW, rn.TriadBW)
	}
	// A single thread cannot saturate the node (PerThreadBW = 12).
	if r1.TriadBW > 13 {
		t.Fatalf("1-thread triad %.1f exceeds per-thread cap", r1.TriadBW)
	}
}

func TestRealRunVerifies(t *testing.T) {
	if err := RealRun(1000, 3); err != nil {
		t.Fatal(err)
	}
	if err := RealRun(0, 1); err == nil {
		t.Fatal("zero elements should fail")
	}
}
