// Package stream implements the STREAM benchmark (McCalpin) used in
// the paper both as a discovery microbenchmark and as the
// bandwidth-bound application of the use case (Table III). The four
// kernels (Copy, Scale, Add, Triad) run against simulated buffers; a
// reference implementation over real slices (RealRun) validates the
// arithmetic and provides the verification step of the original
// benchmark.
package stream

import (
	"fmt"

	"hetmem/internal/memsim"
)

// Arrays are the three STREAM vectors placed on simulated memory.
type Arrays struct {
	A, B, C *memsim.Buffer
	// Elems is the element count per array (float64 elements).
	Elems uint64
}

// ElemBytes is the size of one STREAM element.
const ElemBytes = 8

// AllocArrays places the three arrays through the given placement
// function. Total allocated memory is 3 * elems * 8 bytes — the
// paper's Table III labels columns by this total.
func AllocArrays(place func(name string, size uint64) (*memsim.Buffer, error), elems uint64) (*Arrays, error) {
	ar := &Arrays{Elems: elems}
	size := elems * ElemBytes
	var err error
	alloc := func(dst **memsim.Buffer, name string) {
		if err != nil {
			return
		}
		*dst, err = place(name, size)
		if err != nil {
			err = fmt.Errorf("stream: allocating %s (%d bytes): %w", name, size, err)
		}
	}
	alloc(&ar.A, "stream_a")
	alloc(&ar.B, "stream_b")
	alloc(&ar.C, "stream_c")
	if err != nil {
		return nil, err
	}
	return ar, nil
}

// Free releases the arrays.
func (ar *Arrays) Free(m *memsim.Machine) {
	for _, b := range []*memsim.Buffer{ar.A, ar.B, ar.C} {
		if b != nil {
			m.Free(b)
		}
	}
}

// TotalBytes is the memory footprint of the three arrays.
func (ar *Arrays) TotalBytes() uint64 { return 3 * ar.Elems * ElemBytes }

// Result reports best-iteration bandwidth per kernel in GiB/s, using
// STREAM's byte-counting convention (Copy/Scale move 2 array-lengths,
// Add/Triad move 3).
type Result struct {
	CopyBW  float64
	ScaleBW float64
	AddBW   float64
	TriadBW float64
}

// Run executes iterations of the four kernels on the simulated
// machine and reports the best bandwidth per kernel, like STREAM.
func Run(e *memsim.Engine, ar *Arrays, iterations int) Result {
	if iterations < 1 {
		iterations = 1
	}
	n := ar.Elems * ElemBytes
	var res Result
	best := func(cur *float64, bytes uint64, seconds float64) {
		if seconds <= 0 {
			return
		}
		bw := float64(bytes) / float64(1<<30) / seconds
		if bw > *cur {
			*cur = bw
		}
	}
	for i := 0; i < iterations; i++ {
		// Copy: c[j] = a[j]
		p := e.Phase("stream-copy", []memsim.Access{
			{Buffer: ar.A, ReadBytes: n},
			{Buffer: ar.C, WriteBytes: n},
		})
		best(&res.CopyBW, 2*n, p.Seconds)
		// Scale: b[j] = s*c[j]
		p = e.Phase("stream-scale", []memsim.Access{
			{Buffer: ar.C, ReadBytes: n},
			{Buffer: ar.B, WriteBytes: n},
		})
		best(&res.ScaleBW, 2*n, p.Seconds)
		// Add: c[j] = a[j] + b[j]
		p = e.Phase("stream-add", []memsim.Access{
			{Buffer: ar.A, ReadBytes: n},
			{Buffer: ar.B, ReadBytes: n},
			{Buffer: ar.C, WriteBytes: n},
		})
		best(&res.AddBW, 3*n, p.Seconds)
		// Triad: a[j] = b[j] + s*c[j]
		p = e.Phase("stream-triad", []memsim.Access{
			{Buffer: ar.B, ReadBytes: n},
			{Buffer: ar.C, ReadBytes: n},
			{Buffer: ar.A, WriteBytes: n},
		})
		best(&res.TriadBW, 3*n, p.Seconds)
	}
	return res
}

// RealRun executes the four kernels for real over Go slices of the
// given length and verifies the results against the analytic solution,
// like the original benchmark's check phase. It returns an error when
// verification fails (it never should; it exists to keep the simulated
// kernels honest about what they model).
func RealRun(elems int, iterations int) error {
	if elems <= 0 {
		return fmt.Errorf("stream: bad element count %d", elems)
	}
	a := make([]float64, elems)
	b := make([]float64, elems)
	c := make([]float64, elems)
	for i := range a {
		a[i], b[i], c[i] = 1.0, 2.0, 0.0
	}
	const scalar = 3.0
	va, vb, vc := 1.0, 2.0, 0.0
	for it := 0; it < iterations; it++ {
		for i := range c {
			c[i] = a[i]
		}
		for i := range b {
			b[i] = scalar * c[i]
		}
		for i := range c {
			c[i] = a[i] + b[i]
		}
		for i := range a {
			a[i] = b[i] + scalar*c[i]
		}
		vc = va
		vb = scalar * vc
		vc = va + vb
		va = vb + scalar*vc
	}
	for i := range a {
		if a[i] != va || b[i] != vb || c[i] != vc {
			return fmt.Errorf("stream: verification failed at %d: got (%g,%g,%g) want (%g,%g,%g)",
				i, a[i], b[i], c[i], va, vb, vc)
		}
	}
	return nil
}
