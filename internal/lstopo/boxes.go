package lstopo

import (
	"fmt"
	"strings"

	"hetmem/internal/topology"
)

// RenderBoxes draws the topology as nested ASCII boxes, approximating
// the graphical lstopo output reproduced in the paper's Figures 1-3:
// each container object is a box, memory objects appear as labelled
// boxes at the top of their parent, and runs of cores collapse into
// one box.
//
//	+-Machine (28GB total)--------------------+
//	| +-Package P#0---------------------------+
//	| | +-NUMANode P#0 (DRAM, 24GB)---------+ |
//	...
func RenderBoxes(topo *topology.Topology) string {
	lines := boxObject(topo.Root())
	return strings.Join(lines, "\n") + "\n"
}

// boxObject renders an object and its children as a slice of lines.
func boxObject(o *topology.Object) []string {
	label := boxLabel(o)

	var inner []string
	appendChild := func(c *topology.Object) {
		for _, l := range boxObject(c) {
			inner = append(inner, l)
		}
	}
	for _, m := range o.MemChildren {
		appendChild(m)
	}
	// Collapse simple-core runs.
	i := 0
	for i < len(o.Children) {
		c := o.Children[i]
		if c.Type == topology.Core && isSimpleCore(c) {
			j := i
			for j+1 < len(o.Children) && o.Children[j+1].Type == topology.Core &&
				isSimpleCore(o.Children[j+1]) &&
				o.Children[j+1].LogicalIndex == o.Children[j].LogicalIndex+1 {
				j++
			}
			if j > i {
				inner = append(inner, fmt.Sprintf("[ Core L#%d-%d + PU P#%s ]",
					c.LogicalIndex, o.Children[j].LogicalIndex, coresPUs(o.Children[i:j+1])))
				i = j + 1
				continue
			}
		}
		appendChild(c)
		i++
	}

	if len(inner) == 0 {
		// Leaf: a single-line box.
		return []string{"[ " + label + " ]"}
	}

	width := len(label) + 4
	for _, l := range inner {
		if len(l)+4 > width {
			width = len(l) + 4
		}
	}
	top := "+-" + label + strings.Repeat("-", width-len(label)-3) + "+"
	bottom := "+" + strings.Repeat("-", width-2) + "+"
	out := make([]string, 0, len(inner)+2)
	out = append(out, top)
	for _, l := range inner {
		out = append(out, "| "+l+strings.Repeat(" ", width-len(l)-4)+" |")
	}
	out = append(out, bottom)
	return out
}

func boxLabel(o *topology.Object) string {
	switch o.Type {
	case topology.Machine:
		s := fmt.Sprintf("Machine (%s total)", topology.FormatBytes(totalMemory(o)))
		if o.Name != "" {
			s += " " + o.Name
		}
		return s
	case topology.MemCache:
		return fmt.Sprintf("MemCache %s (memory-side)", topology.FormatBytes(o.CacheSize))
	default:
		s := o.String()
		if o.Type == topology.Group && o.Name != "" {
			s += " \"" + o.Name + "\""
		}
		return s
	}
}
