// Package lstopo renders topologies and memory attributes as text, in
// the spirit of hwloc's lstopo tool: the tree views of Figures 1-3 of
// the paper and the --memattrs report of Figure 5.
package lstopo

import (
	"fmt"
	"strings"

	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/topology"
)

// Render produces the indented tree view of a topology. Memory
// children are printed before CPU children under the same parent
// (hwloc's display convention), and runs of identical cores are
// compressed to one line.
func Render(topo *topology.Topology) string {
	var sb strings.Builder
	renderObj(&sb, topo.Root(), 0)
	return sb.String()
}

func renderObj(sb *strings.Builder, o *topology.Object, depth int) {
	indent := strings.Repeat("  ", depth)
	label := o.String()
	if o.Type == topology.Machine {
		label = fmt.Sprintf("Machine (%s total)", topology.FormatBytes(totalMemory(o)))
		if o.Name != "" {
			label += " \"" + o.Name + "\""
		}
	}
	if o.Type == topology.Group && o.Name != "" {
		label += " \"" + o.Name + "\""
	}
	if o.Type == topology.MemCache {
		label = fmt.Sprintf("MemCache (%s, memory-side)", topology.FormatBytes(o.CacheSize))
	}
	sb.WriteString(indent + label + "\n")

	for _, m := range o.MemChildren {
		renderObj(sb, m, depth+1)
	}
	// Compress consecutive single-PU cores into one line.
	i := 0
	for i < len(o.Children) {
		c := o.Children[i]
		if c.Type == topology.Core && isSimpleCore(c) {
			j := i
			for j+1 < len(o.Children) && o.Children[j+1].Type == topology.Core &&
				isSimpleCore(o.Children[j+1]) &&
				o.Children[j+1].LogicalIndex == o.Children[j].LogicalIndex+1 {
				j++
			}
			if j > i {
				fmt.Fprintf(sb, "%s  Core L#%d-%d + PU P#%s\n",
					indent, c.LogicalIndex, o.Children[j].LogicalIndex, coresPUs(o.Children[i:j+1]))
				i = j + 1
				continue
			}
		}
		renderObj(sb, c, depth+1)
		i++
	}
}

func isSimpleCore(c *topology.Object) bool {
	return len(c.MemChildren) == 0 && len(c.Children) == 1 && c.Children[0].Type == topology.PU
}

func coresPUs(cores []*topology.Object) string {
	b := bitmap.New()
	for _, c := range cores {
		b.Set(c.Children[0].OSIndex)
	}
	return b.ListString()
}

func totalMemory(o *topology.Object) uint64 {
	var t uint64
	if o.Type == topology.NUMANode {
		t += o.Memory
	}
	for _, c := range o.Children {
		t += totalMemory(c)
	}
	for _, m := range o.MemChildren {
		t += totalMemory(m)
	}
	return t
}

// RenderMemAttrs produces the Figure 5 style report: every attribute
// with values, listing each target's value and the initiator it was
// recorded for.
func RenderMemAttrs(reg *memattr.Registry) string {
	topo := reg.Topology()
	var sb strings.Builder
	for i, id := range reg.IDs() {
		targets := reg.Targets(id)
		if len(targets) == 0 {
			continue
		}
		flags, _ := reg.Flags(id)
		fmt.Fprintf(&sb, "Memory attribute #%d name '%s' flags '%s'\n", i, reg.Name(id), flags)
		for _, tgt := range targets {
			ivs, err := reg.Initiators(id, tgt)
			if err != nil {
				continue
			}
			for _, iv := range ivs {
				if iv.Initiator == nil {
					fmt.Fprintf(&sb, "  NUMANode L#%d = %d\n", tgt.LogicalIndex, iv.Value)
				} else {
					fmt.Fprintf(&sb, "  NUMANode L#%d = %d from %s\n",
						tgt.LogicalIndex, iv.Value, describeInitiator(topo, iv.Initiator))
				}
			}
		}
	}
	return sb.String()
}

// describeInitiator names the topology object whose cpuset matches the
// initiator, falling back to the raw cpuset.
func describeInitiator(topo *topology.Topology, ini *bitmap.Bitmap) string {
	for _, typ := range []topology.Type{topology.Group, topology.Package, topology.Machine, topology.Core, topology.PU} {
		for _, o := range topo.Objects(typ) {
			if bitmap.Equal(o.CPUSet, ini) {
				return fmt.Sprintf("%s L#%d", o.Type, o.LogicalIndex)
			}
		}
	}
	return "cpuset " + ini.String()
}
