package lstopo

import (
	"strings"
	"testing"

	"hetmem/internal/hmat"
	"hetmem/internal/memattr"
	"hetmem/internal/platform"
)

func TestRenderFig1KNLHybrid(t *testing.T) {
	p, err := platform.Get("knl-snc4-hybrid50")
	if err != nil {
		t.Fatal(err)
	}
	out := Render(p.Topo)
	// Figure 1 structure: clusters with 12GB DRAM behind a 2GB
	// memory-side cache plus 2GB MCDRAM.
	for _, want := range []string{
		"MemCache (2GB, memory-side)",
		"(DRAM, 12GB)",
		"(MCDRAM, 2GB)",
		`Group L#0 P#0 "Cluster"`,
		"Core L#0-17",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in render:\n%s", want, out)
		}
	}
}

func TestRenderFig2Xeon(t *testing.T) {
	p, _ := platform.Get("xeon-snc2")
	out := Render(p.Topo)
	for _, want := range []string{
		"(DRAM, 96GB)",
		"(NVDIMM, 768GB)",
		`"SubNUMA Cluster"`,
		"Package L#0",
		"Package L#1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in render:\n%s", want, out)
		}
	}
	// Total: 4x96 DRAM + 2x768 NVDIMM = 1920GB.
	if !strings.Contains(out, "Machine (1920GB total)") {
		t.Errorf("machine header wrong:\n%s", strings.SplitN(out, "\n", 2)[0])
	}
}

func TestRenderFig3Fictitious(t *testing.T) {
	p, _ := platform.Get("fictitious")
	out := Render(p.Topo)
	for _, want := range []string{"(DRAM, 64GB)", "(NVDIMM, 512GB)", "(HBM, 8GB)", "(NAM, 1TB)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// The NAM is attached to the machine: it appears indented once.
	lines := strings.Split(out, "\n")
	found := false
	for _, l := range lines {
		if strings.Contains(l, "NAM") && strings.HasPrefix(l, "  NUMANode") {
			found = true
		}
	}
	if !found {
		t.Errorf("NAM not at machine level:\n%s", out)
	}
}

func TestRenderMemAttrsFig5(t *testing.T) {
	p, _ := platform.Get("xeon-snc2")
	reg := memattr.NewRegistry(p.Topo)
	if err := hmat.Apply(p.HMATTable(), reg); err != nil {
		t.Fatal(err)
	}
	out := RenderMemAttrs(reg)
	// Figure 5's content: capacity without initiator, bandwidth and
	// latency per initiator, with the verbatim values.
	for _, want := range []string{
		"name 'Capacity'",
		"name 'Bandwidth'",
		"name 'Latency'",
		"NUMANode L#0 = 131072 from Group L#0",
		"NUMANode L#2 = 78644 from Package L#0",
		"NUMANode L#0 = 26 from Group L#0",
		"NUMANode L#2 = 77 from Package L#0",
		"NUMANode L#5 = 77 from Package L#1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Capacity lines carry no initiator.
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "= 103079215104") && strings.Contains(l, "from") {
			t.Errorf("capacity line has initiator: %s", l)
		}
	}
}

func TestDescribeInitiatorFallback(t *testing.T) {
	p, _ := platform.Get("xeon")
	reg := memattr.NewRegistry(p.Topo)
	// A custom attribute with an initiator matching no object.
	id, err := reg.Register("Weird", memattr.HigherFirst|memattr.NeedInitiator)
	if err != nil {
		t.Fatal(err)
	}
	node := p.Topo.NUMANodes()[0]
	ini := node.CPUSet.Copy()
	ini.Clr(ini.First()) // no longer any object's cpuset
	if err := reg.SetValue(id, node, ini, 1); err != nil {
		t.Fatal(err)
	}
	out := RenderMemAttrs(reg)
	if !strings.Contains(out, "from cpuset 0x") {
		t.Errorf("fallback initiator description missing:\n%s", out)
	}
}

func TestRenderBoxes(t *testing.T) {
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		t.Fatal(err)
	}
	out := RenderBoxes(p.Topo)
	for _, want := range []string{
		"+-Machine",
		"+-Package L#0 P#0",
		"[ NUMANode L#0 P#0 (DRAM, 24GB) ]",
		"[ NUMANode L#1 P#4 (MCDRAM, 4GB) ]",
		"[ Core L#0-15 + PU P#0-15 ]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("boxes missing %q:\n%s", want, out)
		}
	}
	// Every line of a box drawing is properly closed.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if len(line) == 0 {
			t.Fatal("empty line in box render")
		}
		first, last := line[0], line[len(line)-1]
		okFirst := first == '+' || first == '|' || first == '['
		okLast := last == '+' || last == '|' || last == ']'
		if !okFirst || !okLast {
			t.Fatalf("unclosed box line: %q", line)
		}
	}
}

func TestRenderBoxesMemCache(t *testing.T) {
	p, _ := platform.Get("knl-snc4-hybrid50")
	out := RenderBoxes(p.Topo)
	if !strings.Contains(out, "+-MemCache 2GB (memory-side)") {
		t.Errorf("memory-side cache box missing:\n%s", out)
	}
	// The cached DRAM node nests inside the cache box.
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.Contains(l, "MemCache 2GB") {
			if i+1 >= len(lines) || !strings.Contains(lines[i+1], "(DRAM, 12GB)") {
				t.Fatalf("DRAM not nested in cache box at line %d:\n%s", i, out)
			}
			break
		}
	}
}
