package bitmap

import "testing"

// FuzzParseList checks that the list parser never panics and that
// anything it accepts round-trips canonically.
func FuzzParseList(f *testing.F) {
	for _, seed := range []string{"", "0", "0-3,12,14-15", "5-3", "x", "1,,2", "000", "0-0"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		b, err := ParseList(s)
		if err != nil {
			return
		}
		back, err := ParseList(b.ListString())
		if err != nil || !Equal(back, b) {
			t.Fatalf("accepted %q but round trip broke: %v", s, err)
		}
	})
}

// FuzzParseHex mirrors FuzzParseList for the mask format.
func FuzzParseHex(f *testing.F) {
	for _, seed := range []string{"0x0", "0x00000001", "0x00000001,0xffffffff", "0xzz", "0x123456789"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		b, err := ParseHex(s)
		if err != nil {
			return
		}
		back, err := ParseHex(b.String())
		if err != nil || !Equal(back, b) {
			t.Fatalf("accepted %q but round trip broke: %v", s, err)
		}
	})
}
