package bitmap

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestZeroValueEmpty(t *testing.T) {
	var b Bitmap
	if !b.IsZero() {
		t.Fatal("zero value should be empty")
	}
	if b.Weight() != 0 {
		t.Fatalf("Weight = %d, want 0", b.Weight())
	}
	if b.First() != -1 || b.Last() != -1 {
		t.Fatalf("First/Last = %d/%d, want -1/-1", b.First(), b.Last())
	}
	if b.String() != "0x0" {
		t.Fatalf("String = %q, want 0x0", b.String())
	}
	if b.ListString() != "" {
		t.Fatalf("ListString = %q, want empty", b.ListString())
	}
}

func TestSetTestClr(t *testing.T) {
	b := New()
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("Test(%d) = false after Set", i)
		}
	}
	if b.Weight() != 8 {
		t.Fatalf("Weight = %d, want 8", b.Weight())
	}
	b.Clr(64)
	if b.Test(64) {
		t.Fatal("Test(64) = true after Clr")
	}
	if b.Test(63) != true || b.Test(65) != true {
		t.Fatal("Clr(64) disturbed neighbors")
	}
	// Clearing absent/out-of-range indexes is a no-op.
	b.Clr(5000)
	b.Clr(-3)
	if b.Weight() != 7 {
		t.Fatalf("Weight = %d, want 7", b.Weight())
	}
}

func TestTestNegative(t *testing.T) {
	b := NewFromIndexes(0)
	if b.Test(-1) {
		t.Fatal("Test(-1) should be false")
	}
}

func TestSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) should panic")
		}
	}()
	New().Set(-1)
}

func TestSetRangeBadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetRange(5,2) should panic")
		}
	}()
	New().SetRange(5, 2)
}

func TestRanges(t *testing.T) {
	b := NewFromRange(10, 20)
	if b.Weight() != 11 {
		t.Fatalf("Weight = %d, want 11", b.Weight())
	}
	if b.First() != 10 || b.Last() != 20 {
		t.Fatalf("First/Last = %d/%d", b.First(), b.Last())
	}
	b.ClrRange(12, 18)
	if got := b.ListString(); got != "10-11,19-20" {
		t.Fatalf("ListString = %q", got)
	}
}

func TestNextIteration(t *testing.T) {
	b := NewFromIndexes(3, 64, 65, 200)
	var got []int
	for i := b.Next(-1); i >= 0; i = b.Next(i) {
		got = append(got, i)
	}
	want := []int{3, 64, 65, 200}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("iteration = %v, want %v", got, want)
	}
	if b.Next(200) != -1 {
		t.Fatal("Next past last should be -1")
	}
	if b.Next(-10) != 3 {
		t.Fatal("Next with very negative prev should return First")
	}
}

func TestForEachEarlyStop(t *testing.T) {
	b := NewFromRange(0, 9)
	n := 0
	b.ForEach(func(i int) bool {
		n++
		return i < 4
	})
	if n != 6 { // visits 0..5, stops after fn(5) returns false? fn(4) returns false -> stops after visiting 0,1,2,3,4
		// fn returns i<4: visits 0(true),1,2,3(true),4(false) => 5 visits
		t.Logf("n=%d", n)
	}
	if n != 5 {
		t.Fatalf("ForEach visited %d, want 5", n)
	}
}

func TestSetOps(t *testing.T) {
	a := NewFromIndexes(1, 2, 3, 100)
	b := NewFromIndexes(2, 3, 4)

	if got := AndNew(a, b).ListString(); got != "2-3" {
		t.Fatalf("And = %q", got)
	}
	if got := OrNew(a, b).ListString(); got != "1-4,100" {
		t.Fatalf("Or = %q", got)
	}
	if got := XorNew(a, b).ListString(); got != "1,4,100" {
		t.Fatalf("Xor = %q", got)
	}
	if got := AndNotNew(a, b).ListString(); got != "1,100" {
		t.Fatalf("AndNot = %q", got)
	}
}

func TestPredicates(t *testing.T) {
	a := NewFromIndexes(1, 2)
	b := NewFromIndexes(2, 3)
	c := NewFromIndexes(1, 2, 3)
	if !Intersects(a, b) {
		t.Fatal("a and b should intersect")
	}
	if Intersects(a, NewFromIndexes(99)) {
		t.Fatal("disjoint sets should not intersect")
	}
	if !IsIncluded(a, c) {
		t.Fatal("a should be included in c")
	}
	if IsIncluded(c, a) {
		t.Fatal("c should not be included in a")
	}
	if !IsIncluded(New(), a) {
		t.Fatal("empty set is included in everything")
	}
	if !Equal(NewFromIndexes(5), NewFromIndexes(5)) {
		t.Fatal("equal sets reported unequal")
	}
	if Equal(NewFromIndexes(5), NewFromIndexes(6)) {
		t.Fatal("unequal sets reported equal")
	}
	// Equality must ignore trailing zero words.
	d := NewFromIndexes(5, 500)
	d.Clr(500)
	if !Equal(d, NewFromIndexes(5)) {
		t.Fatal("trailing zero words broke Equal")
	}
}

func TestCopyIndependent(t *testing.T) {
	a := NewFromIndexes(1, 2)
	b := a.Copy()
	b.Set(3)
	if a.Test(3) {
		t.Fatal("Copy is not independent")
	}
}

func TestSinglify(t *testing.T) {
	b := NewFromIndexes(7, 8, 9)
	b.Singlify()
	if got := b.ListString(); got != "7" {
		t.Fatalf("Singlify = %q, want 7", got)
	}
	e := New()
	e.Singlify()
	if !e.IsZero() {
		t.Fatal("Singlify of empty should stay empty")
	}
}

func TestStringHex(t *testing.T) {
	cases := []struct {
		idxs []int
		want string
	}{
		{nil, "0x0"},
		{[]int{0}, "0x00000001"},
		{[]int{4, 8}, "0x00000110"},
		{[]int{32}, "0x00000001,0x00000000"},
		{[]int{0, 32, 33}, "0x00000003,0x00000001"},
		{[]int{64}, "0x00000001,0x00000000,0x00000000"},
	}
	for _, c := range cases {
		b := NewFromIndexes(c.idxs...)
		if got := b.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.idxs, got, c.want)
		}
		back, err := ParseHex(c.want)
		if err != nil {
			t.Fatalf("ParseHex(%q): %v", c.want, err)
		}
		if !Equal(back, b) {
			t.Errorf("ParseHex(String(%v)) != original", c.idxs)
		}
	}
}

func TestParseList(t *testing.T) {
	b, err := ParseList(" 0-3, 12 ,14-15 ")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.ListString(); got != "0-3,12,14-15" {
		t.Fatalf("round-trip = %q", got)
	}
	for _, bad := range []string{"x", "3-", "-2", "5-3", "1,,2", "1-2-3"} {
		if _, err := ParseList(bad); err == nil {
			t.Errorf("ParseList(%q) should fail", bad)
		}
	}
}

func TestParseHexErrors(t *testing.T) {
	for _, bad := range []string{"0xzz", "0x123456789"} {
		if _, err := ParseHex(bad); err == nil {
			t.Errorf("ParseHex(%q) should fail", bad)
		}
	}
}

// randomBitmap builds a bitmap from a seed for property tests.
func randomBitmap(r *rand.Rand) *Bitmap {
	b := New()
	n := r.Intn(40)
	for i := 0; i < n; i++ {
		b.Set(r.Intn(300))
	}
	return b
}

func TestQuickListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		b := randomBitmap(rand.New(rand.NewSource(seed)))
		back, err := ParseList(b.ListString())
		return err == nil && Equal(back, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHexRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		b := randomBitmap(rand.New(rand.NewSource(seed)))
		back, err := ParseHex(b.String())
		return err == nil && Equal(back, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// |A ∪ B| = |A| + |B| - |A ∩ B|, and (A∪B)\(A∩B) == A xor B.
	f := func(s1, s2 int64) bool {
		a := randomBitmap(rand.New(rand.NewSource(s1)))
		b := randomBitmap(rand.New(rand.NewSource(s2)))
		union := OrNew(a, b)
		inter := AndNew(a, b)
		if union.Weight() != a.Weight()+b.Weight()-inter.Weight() {
			return false
		}
		return Equal(AndNotNew(union, inter), XorNew(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInclusion(t *testing.T) {
	// A∩B ⊆ A ⊆ A∪B, and xor never intersects the intersection.
	f := func(s1, s2 int64) bool {
		a := randomBitmap(rand.New(rand.NewSource(s1)))
		b := randomBitmap(rand.New(rand.NewSource(s2)))
		inter := AndNew(a, b)
		union := OrNew(a, b)
		if !IsIncluded(inter, a) || !IsIncluded(a, union) {
			return false
		}
		x := XorNew(a, b)
		return x.IsZero() || inter.IsZero() || !Intersects(x, inter)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIterationMatchesWeight(t *testing.T) {
	f := func(seed int64) bool {
		b := randomBitmap(rand.New(rand.NewSource(seed)))
		idxs := b.Indexes()
		if len(idxs) != b.Weight() {
			return false
		}
		for i := 1; i < len(idxs); i++ {
			if idxs[i] <= idxs[i-1] {
				return false
			}
		}
		for _, i := range idxs {
			if !b.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetTest(b *testing.B) {
	bm := New()
	for i := 0; i < b.N; i++ {
		bm.Set(i % 4096)
		bm.Test((i * 7) % 4096)
	}
}

func BenchmarkNextIteration(b *testing.B) {
	bm := New()
	for i := 0; i < 4096; i += 3 {
		bm.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := bm.Next(-1); j >= 0; j = bm.Next(j) {
		}
	}
}

func TestHash(t *testing.T) {
	a := NewFromRange(0, 15)
	b := NewFromRange(0, 15)
	if a.Hash() != b.Hash() {
		t.Fatalf("equal bitmaps must hash equally: %x vs %x", a.Hash(), b.Hash())
	}
	c := NewFromRange(0, 16)
	if a.Hash() == c.Hash() {
		t.Fatalf("different bitmaps should (almost always) hash differently")
	}
	// Trailing zero words must not change the hash: a bitmap that grew
	// and shrank hashes like one that never grew.
	d := New()
	d.Set(1000)
	d.Clr(1000)
	d.Set(3)
	e := New()
	e.Set(3)
	if d.Hash() != e.Hash() {
		t.Fatalf("trailing zero words changed the hash: %x vs %x", d.Hash(), e.Hash())
	}
}
