// Package bitmap implements hwloc-style bitmaps used throughout the
// topology and memory-attribute layers to represent sets of logical
// processors (CPU sets) and sets of NUMA nodes (node sets).
//
// A Bitmap is a growable set of non-negative integer indexes. The zero
// value is an empty, ready-to-use bitmap. All operations that modify a
// bitmap are methods on *Bitmap; binary set operations are provided both
// as in-place methods (And, Or, ...) and as allocating package functions
// (AndNew, OrNew, ...).
//
// Two textual formats are supported, mirroring hwloc:
//
//   - the hexadecimal mask format produced by String, e.g. "0x0000f00f",
//     parsed by ParseHex;
//   - the comma-separated list format produced by ListString, e.g.
//     "0-3,12,14-15", parsed by ParseList.
package bitmap

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Bitmap is a set of non-negative integers. The zero value is empty and
// ready to use. Bitmap is not safe for concurrent mutation.
type Bitmap struct {
	words []uint64
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

// NewFromIndexes returns a bitmap with exactly the given indexes set.
func NewFromIndexes(idxs ...int) *Bitmap {
	b := New()
	for _, i := range idxs {
		b.Set(i)
	}
	return b
}

// NewFromRange returns a bitmap with all indexes in [lo, hi] set.
// It panics if lo < 0 or hi < lo.
func NewFromRange(lo, hi int) *Bitmap {
	b := New()
	b.SetRange(lo, hi)
	return b
}

func (b *Bitmap) grow(word int) {
	for len(b.words) <= word {
		b.words = append(b.words, 0)
	}
}

// trim drops trailing zero words so that Equal and String are canonical.
func (b *Bitmap) trim() {
	n := len(b.words)
	for n > 0 && b.words[n-1] == 0 {
		n--
	}
	b.words = b.words[:n]
}

// Set adds index i to the set. It panics if i is negative.
func (b *Bitmap) Set(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitmap: negative index %d", i))
	}
	b.grow(i / wordBits)
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clr removes index i from the set. Clearing an absent index is a no-op.
func (b *Bitmap) Clr(i int) {
	if i < 0 || i/wordBits >= len(b.words) {
		return
	}
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	b.trim()
}

// Test reports whether index i is in the set.
func (b *Bitmap) Test(i int) bool {
	if i < 0 || i/wordBits >= len(b.words) {
		return false
	}
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// SetRange adds all indexes in [lo, hi] to the set.
// It panics if lo < 0 or hi < lo.
func (b *Bitmap) SetRange(lo, hi int) {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("bitmap: bad range [%d,%d]", lo, hi))
	}
	for i := lo; i <= hi; i++ {
		b.Set(i)
	}
}

// ClrRange removes all indexes in [lo, hi] from the set.
func (b *Bitmap) ClrRange(lo, hi int) {
	for i := lo; i <= hi && i/wordBits < len(b.words); i++ {
		b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
	b.trim()
}

// Reset removes all indexes, leaving the bitmap empty.
func (b *Bitmap) Reset() { b.words = b.words[:0] }

// IsZero reports whether the set is empty.
func (b *Bitmap) IsZero() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Weight returns the number of indexes in the set.
func (b *Bitmap) Weight() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// First returns the smallest index in the set, or -1 if empty.
func (b *Bitmap) First() int {
	for wi, w := range b.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Last returns the largest index in the set, or -1 if empty.
func (b *Bitmap) Last() int {
	for wi := len(b.words) - 1; wi >= 0; wi-- {
		if w := b.words[wi]; w != 0 {
			return wi*wordBits + (wordBits - 1 - bits.LeadingZeros64(w))
		}
	}
	return -1
}

// Next returns the smallest index strictly greater than prev, or -1 if
// none. Use Next(-1) to start an iteration at First.
func (b *Bitmap) Next(prev int) int {
	i := prev + 1
	if i < 0 {
		i = 0
	}
	wi := i / wordBits
	if wi >= len(b.words) {
		return -1
	}
	// Mask off bits below i in the first candidate word.
	w := b.words[wi] &^ ((1 << (uint(i) % wordBits)) - 1)
	for {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(b.words) {
			return -1
		}
		w = b.words[wi]
	}
}

// Indexes returns all set indexes in increasing order.
func (b *Bitmap) Indexes() []int {
	out := make([]int, 0, b.Weight())
	for i := b.First(); i >= 0; i = b.Next(i) {
		out = append(out, i)
	}
	return out
}

// ForEach calls fn for every set index in increasing order. If fn
// returns false the iteration stops early.
func (b *Bitmap) ForEach(fn func(i int) bool) {
	for i := b.First(); i >= 0; i = b.Next(i) {
		if !fn(i) {
			return
		}
	}
}

// Copy returns an independent copy of b.
func (b *Bitmap) Copy() *Bitmap {
	c := &Bitmap{words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// Singlify removes all indexes except the smallest one, mirroring
// hwloc_bitmap_singlify. Singlifying an empty bitmap is a no-op.
func (b *Bitmap) Singlify() {
	f := b.First()
	b.Reset()
	if f >= 0 {
		b.Set(f)
	}
}

// Equal reports whether a and b contain the same indexes.
func Equal(a, b *Bitmap) bool {
	an, bn := len(a.words), len(b.words)
	n := an
	if bn > n {
		n = bn
	}
	for i := 0; i < n; i++ {
		var aw, bw uint64
		if i < an {
			aw = a.words[i]
		}
		if i < bn {
			bw = b.words[i]
		}
		if aw != bw {
			return false
		}
	}
	return true
}

// Intersects reports whether a and b share at least one index.
func Intersects(a, b *Bitmap) bool {
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	for i := 0; i < n; i++ {
		if a.words[i]&b.words[i] != 0 {
			return true
		}
	}
	return false
}

// IsIncluded reports whether every index of sub is also in super.
func IsIncluded(sub, super *Bitmap) bool {
	for i, w := range sub.words {
		var sw uint64
		if i < len(super.words) {
			sw = super.words[i]
		}
		if w&^sw != 0 {
			return false
		}
	}
	return true
}

// And replaces b with the intersection of b and o.
func (b *Bitmap) And(o *Bitmap) {
	for i := range b.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		b.words[i] &= ow
	}
	b.trim()
}

// Or replaces b with the union of b and o.
func (b *Bitmap) Or(o *Bitmap) {
	b.grow(len(o.words) - 1)
	for i, w := range o.words {
		b.words[i] |= w
	}
	b.trim()
}

// Xor replaces b with the symmetric difference of b and o.
func (b *Bitmap) Xor(o *Bitmap) {
	b.grow(len(o.words) - 1)
	for i, w := range o.words {
		b.words[i] ^= w
	}
	b.trim()
}

// AndNot removes every index of o from b.
func (b *Bitmap) AndNot(o *Bitmap) {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &^= o.words[i]
	}
	b.trim()
}

// AndNew returns the intersection of a and b as a new bitmap.
func AndNew(a, b *Bitmap) *Bitmap { c := a.Copy(); c.And(b); return c }

// OrNew returns the union of a and b as a new bitmap.
func OrNew(a, b *Bitmap) *Bitmap { c := a.Copy(); c.Or(b); return c }

// XorNew returns the symmetric difference of a and b as a new bitmap.
func XorNew(a, b *Bitmap) *Bitmap { c := a.Copy(); c.Xor(b); return c }

// AndNotNew returns a minus b as a new bitmap.
func AndNotNew(a, b *Bitmap) *Bitmap { c := a.Copy(); c.AndNot(b); return c }

// Hash returns an FNV-1a digest of the set. Equal bitmaps hash equal
// (the word storage is canonical — trailing zero words are trimmed),
// so the hash can key a cache, with Equal confirming on collision.
func (b *Bitmap) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range b.words {
		for s := 0; s < wordBits; s += 8 {
			h ^= (w >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// String returns the hwloc hexadecimal mask format, least significant
// 32-bit chunk last, chunks separated by commas when more than one is
// needed: e.g. "0x00000001" or "0x00000001,0xffffffff".
// The empty bitmap formats as "0x0".
func (b *Bitmap) String() string {
	last := b.Last()
	if last < 0 {
		return "0x0"
	}
	nchunks := last/32 + 1
	var sb strings.Builder
	sb.WriteString("0x")
	for c := nchunks - 1; c >= 0; c-- {
		w := b.words[c/2]
		var chunk uint32
		if c%2 == 1 {
			chunk = uint32(w >> 32)
		} else {
			chunk = uint32(w)
		}
		fmt.Fprintf(&sb, "%08x", chunk)
		if c > 0 {
			sb.WriteString(",0x")
		}
	}
	return sb.String()
}

// ListString returns the comma-separated range list format, e.g.
// "0-3,12,14-15". The empty bitmap formats as "".
func (b *Bitmap) ListString() string {
	var parts []string
	i := b.First()
	for i >= 0 {
		lo := i
		hi := i
		for {
			n := b.Next(hi)
			if n != hi+1 {
				break
			}
			hi = n
		}
		if lo == hi {
			parts = append(parts, strconv.Itoa(lo))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", lo, hi))
		}
		i = b.Next(hi)
	}
	return strings.Join(parts, ",")
}

// ParseList parses the range list format produced by ListString.
// An empty string yields an empty bitmap.
func ParseList(s string) (*Bitmap, error) {
	b := New()
	s = strings.TrimSpace(s)
	if s == "" {
		return b, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			l, err := strconv.Atoi(lo)
			if err != nil {
				return nil, fmt.Errorf("bitmap: bad list element %q: %w", part, err)
			}
			h, err := strconv.Atoi(hi)
			if err != nil {
				return nil, fmt.Errorf("bitmap: bad list element %q: %w", part, err)
			}
			if l < 0 || h < l {
				return nil, fmt.Errorf("bitmap: bad range %q", part)
			}
			b.SetRange(l, h)
		} else {
			i, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("bitmap: bad list element %q: %w", part, err)
			}
			if i < 0 {
				return nil, fmt.Errorf("bitmap: negative index %q", part)
			}
			b.Set(i)
		}
	}
	return b, nil
}

// ParseHex parses the hexadecimal mask format produced by String.
func ParseHex(s string) (*Bitmap, error) {
	b := New()
	s = strings.TrimSpace(s)
	if s == "" || s == "0x0" {
		return b, nil
	}
	chunks := strings.Split(s, ",")
	// chunks[0] is the most significant.
	n := len(chunks)
	for ci, chunk := range chunks {
		chunk = strings.TrimPrefix(strings.TrimSpace(chunk), "0x")
		v, err := strconv.ParseUint(chunk, 16, 32)
		if err != nil {
			return nil, fmt.Errorf("bitmap: bad hex chunk %q: %w", chunk, err)
		}
		pos := n - 1 - ci // 32-bit chunk position, 0 = least significant
		for bit := 0; bit < 32; bit++ {
			if v&(1<<uint(bit)) != 0 {
				b.Set(pos*32 + bit)
			}
		}
	}
	return b, nil
}
