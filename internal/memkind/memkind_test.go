package memkind

import (
	"errors"
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

const gib = uint64(1) << 30

func machine(t *testing.T, name string) *memsim.Machine {
	t.Helper()
	p, err := platform.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestKindString(t *testing.T) {
	if Default.String() != "MEMKIND_DEFAULT" || HBW.String() != "MEMKIND_HBW" {
		t.Fatal("kind names wrong")
	}
}

func TestHBWOnKNL(t *testing.T) {
	m := machine(t, "knl-snc4-flat")
	k := New(m, bitmap.NewFromRange(0, 15))
	if err := k.CheckAvailable(HBW); err != nil {
		t.Fatal(err)
	}
	b, err := k.Malloc(HBW, "hot", gib)
	if err != nil {
		t.Fatal(err)
	}
	if b.NodeNames() != "MCDRAM#4" {
		t.Fatalf("placed on %s", b.NodeNames())
	}
}

func TestHBWFailsOnXeon(t *testing.T) {
	// The portability failure the paper's allocator avoids: the same
	// code that worked on KNL errors on the Xeon.
	m := machine(t, "xeon")
	k := New(m, bitmap.NewFromRange(0, 19))
	if err := k.CheckAvailable(HBW); !errors.Is(err, ErrKindUnavailable) {
		t.Fatalf("check err = %v", err)
	}
	if _, err := k.Malloc(HBW, "hot", gib); !errors.Is(err, ErrKindUnavailable) {
		t.Fatalf("malloc err = %v", err)
	}
}

func TestDefaultGoesToDRAM(t *testing.T) {
	for _, pname := range []string{"xeon", "knl-snc4-flat", "fictitious"} {
		m := machine(t, pname)
		k := New(m, bitmap.NewFromRange(0, 3))
		b, err := k.Malloc(Default, "d", gib)
		if err != nil {
			t.Fatalf("%s: %v", pname, err)
		}
		if b.Segments[0].Node.Kind() != "DRAM" {
			t.Fatalf("%s: default landed on %s", pname, b.NodeNames())
		}
	}
}

func TestHBWPreferredFallsBack(t *testing.T) {
	m := machine(t, "knl-snc4-flat")
	k := New(m, bitmap.NewFromRange(0, 15))
	// Fits MCDRAM.
	b1, err := k.Malloc(HBWPreferred, "fit", 3*gib)
	if err != nil || b1.Segments[0].Node.Kind() != "MCDRAM" {
		t.Fatalf("fit: %v %v", b1, err)
	}
	// MCDRAM now too full: falls back to default DRAM.
	b2, err := k.Malloc(HBWPreferred, "spill", 3*gib)
	if err != nil || b2.Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("spill: %v %v", b2, err)
	}
	// On the Xeon (no HBM at all) HBWPreferred degenerates to default.
	xm := machine(t, "xeon")
	xk := New(xm, bitmap.NewFromRange(0, 19))
	b3, err := xk.Malloc(HBWPreferred, "x", gib)
	if err != nil || b3.Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("xeon preferred: %v %v", b3, err)
	}
}

func TestPMemKind(t *testing.T) {
	xm := machine(t, "xeon")
	xk := New(xm, bitmap.NewFromRange(0, 19))
	b, err := xk.Malloc(PMem, "persist", 10*gib)
	if err != nil || b.Segments[0].Node.Kind() != "NVDIMM" {
		t.Fatalf("pmem on xeon: %v %v", b, err)
	}
	km := machine(t, "knl-snc4-flat")
	kk := New(km, bitmap.NewFromRange(0, 15))
	if _, err := kk.Malloc(PMem, "persist", gib); !errors.Is(err, ErrKindUnavailable) {
		t.Fatalf("pmem on knl err = %v", err)
	}
}

func TestUnknownKind(t *testing.T) {
	m := machine(t, "xeon")
	k := New(m, bitmap.NewFromRange(0, 19))
	if _, err := k.Malloc(Kind(42), "x", gib); err == nil {
		t.Fatal("unknown kind should fail")
	}
	if err := k.CheckAvailable(Kind(42)); err == nil {
		t.Fatal("unknown kind check should fail")
	}
}

func TestAutoHBW(t *testing.T) {
	m := machine(t, "knl-snc4-flat")
	a := &AutoHBW{K: New(m, bitmap.NewFromRange(0, 15)), Low: 1 << 20, High: 2 * gib}
	small, err := a.Malloc("small", 4096)
	if err != nil || small.Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("small: %v %v", small, err)
	}
	mid, err := a.Malloc("mid", gib)
	if err != nil || mid.Segments[0].Node.Kind() != "MCDRAM" {
		t.Fatalf("mid: %v %v", mid, err)
	}
	big, err := a.Malloc("big", 3*gib)
	if err != nil || big.Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("big: %v %v", big, err)
	}
	// No upper bound.
	a2 := &AutoHBW{K: New(m, bitmap.NewFromRange(16, 31)), Low: 1 << 20}
	huge, err := a2.Malloc("huge", 3*gib)
	if err != nil || huge.Segments[0].Node.Kind() != "MCDRAM" {
		t.Fatalf("huge: %v %v", huge, err)
	}
}

func TestKindStringAll(t *testing.T) {
	cases := map[Kind]string{
		Default: "MEMKIND_DEFAULT", HBW: "MEMKIND_HBW",
		HBWPreferred: "MEMKIND_HBW_PREFERRED", PMem: "MEMKIND_PMEM",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d -> %q", k, k.String())
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("unknown kind string = %q", Kind(42).String())
	}
}

func TestCheckAvailableAll(t *testing.T) {
	xm := machine(t, "xeon")
	xk := New(xm, bitmap.NewFromRange(0, 19))
	if err := xk.CheckAvailable(Default); err != nil {
		t.Fatal(err)
	}
	if err := xk.CheckAvailable(PMem); err != nil {
		t.Fatal(err)
	}
	if err := xk.CheckAvailable(HBWPreferred); !errors.Is(err, ErrKindUnavailable) {
		t.Fatalf("HBWPreferred on xeon = %v", err)
	}
	km := machine(t, "knl-snc4-flat")
	kk := New(km, bitmap.NewFromRange(0, 15))
	if err := kk.CheckAvailable(HBWPreferred); err != nil {
		t.Fatal(err)
	}
	if err := kk.CheckAvailable(PMem); !errors.Is(err, ErrKindUnavailable) {
		t.Fatalf("PMem on knl = %v", err)
	}
	// An initiator with no local nodes at all.
	far := New(xm, bitmap.NewFromIndexes(500))
	if err := far.CheckAvailable(Default); !errors.Is(err, ErrKindUnavailable) {
		t.Fatalf("no-local-node default = %v", err)
	}
	if _, err := far.Malloc(Default, "x", 1); !errors.Is(err, ErrKindUnavailable) {
		t.Fatalf("no-local-node malloc = %v", err)
	}
}

func TestDefaultFallsBackToAnyLocal(t *testing.T) {
	// A machine whose only memory is HBM: Default still allocates.
	p, err := platform.FromSynthetic("hbm-only", "package:1 core:2 pu:1 mem:package:HBM:16GiB:bw=200:lat=100")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	k := New(m, bitmap.NewFromRange(0, 1))
	b, err := k.Malloc(Default, "d", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if b.Segments[0].Node.Kind() != "HBM" {
		t.Fatalf("default on %s", b.NodeNames())
	}
}
