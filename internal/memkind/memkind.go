// Package memkind reimplements the memkind-style allocation API
// (Cantalupo et al.) and the AutoHBW size-threshold interposer as
// *baselines*: both hardwire memory technologies ("give me HBW")
// instead of expressing requirements ("give me bandwidth"), which is
// exactly the portability failure the paper's attribute-based
// allocator fixes. The experiments use this package to show the
// contrast: MEMKIND_HBW succeeds on KNL but errors on a Xeon that has
// no HBM, while the same attribute request adapts.
package memkind

import (
	"errors"
	"fmt"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
)

// Kind mirrors the memkind_t constants that matter for placement.
type Kind int

const (
	// Default is MEMKIND_DEFAULT: the OS default node (lowest OS index
	// among local nodes — DRAM on every platform of the paper).
	Default Kind = iota
	// HBW is MEMKIND_HBW: high-bandwidth memory or failure.
	HBW
	// HBWPreferred is MEMKIND_HBW_PREFERRED: high-bandwidth memory if
	// available and not full, default otherwise.
	HBWPreferred
	// PMem is a pmem-style kind: persistent memory or failure.
	PMem
)

// String names the kind like the C constants.
func (k Kind) String() string {
	switch k {
	case Default:
		return "MEMKIND_DEFAULT"
	case HBW:
		return "MEMKIND_HBW"
	case HBWPreferred:
		return "MEMKIND_HBW_PREFERRED"
	case PMem:
		return "MEMKIND_PMEM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Errors.
var (
	// ErrKindUnavailable is returned when the hardwired technology
	// does not exist on this machine — the baseline's portability
	// failure mode.
	ErrKindUnavailable = errors.New("memkind: requested memory kind not available on this platform")
)

// Memkind is an allocator bound to one machine and one thread
// placement.
type Memkind struct {
	m   *memsim.Machine
	ini *bitmap.Bitmap
}

// New creates a memkind allocator for threads running on the initiator
// cpuset.
func New(m *memsim.Machine, initiator *bitmap.Bitmap) *Memkind {
	return &Memkind{m: m, ini: initiator.Copy()}
}

// localNodes returns the local nodes ordered by OS index (the OS
// default ordering memkind relies on).
func (k *Memkind) localNodes() []*memsim.Node {
	var out []*memsim.Node
	for _, obj := range k.m.Topology().LocalNUMANodes(k.ini) {
		out = append(out, k.m.Node(obj))
	}
	// LocalNUMANodes is in logical order; the OS default is the
	// lowest OS index, which on all modeled platforms coincides for
	// DRAM. Sort to be explicit.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].OSIndex() < out[j-1].OSIndex(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (k *Memkind) findLocal(pred func(*memsim.Node) bool) *memsim.Node {
	for _, n := range k.localNodes() {
		if pred(n) {
			return n
		}
	}
	return nil
}

// CheckAvailable mirrors memkind_check_available: it reports whether
// the kind exists on this machine without allocating.
func (k *Memkind) CheckAvailable(kind Kind) error {
	switch kind {
	case Default:
		if len(k.localNodes()) == 0 {
			return ErrKindUnavailable
		}
		return nil
	case HBW, HBWPreferred:
		if k.findLocal(func(n *memsim.Node) bool { return memsim.IsHighBandwidth(n.Kind()) }) == nil {
			return fmt.Errorf("%w: no HBW node local to the caller", ErrKindUnavailable)
		}
		return nil
	case PMem:
		if k.findLocal(func(n *memsim.Node) bool { return memsim.IsPMem(n.Kind()) }) == nil {
			return fmt.Errorf("%w: no persistent memory node", ErrKindUnavailable)
		}
		return nil
	default:
		return fmt.Errorf("memkind: unknown kind %d", int(kind))
	}
}

// Malloc allocates size bytes from the kind.
func (k *Memkind) Malloc(kind Kind, name string, size uint64) (*memsim.Buffer, error) {
	switch kind {
	case Default:
		n := k.findLocal(func(n *memsim.Node) bool { return !memsim.IsHighBandwidth(n.Kind()) && !memsim.IsPMem(n.Kind()) })
		if n == nil {
			n = k.findLocal(func(*memsim.Node) bool { return true })
		}
		if n == nil {
			return nil, ErrKindUnavailable
		}
		return k.m.Alloc(name, size, n)
	case HBW:
		n := k.findLocal(func(n *memsim.Node) bool { return memsim.IsHighBandwidth(n.Kind()) })
		if n == nil {
			return nil, fmt.Errorf("%w: MEMKIND_HBW on a machine without HBM", ErrKindUnavailable)
		}
		return k.m.Alloc(name, size, n)
	case HBWPreferred:
		if n := k.findLocal(func(n *memsim.Node) bool { return memsim.IsHighBandwidth(n.Kind()) && n.Available() >= size }); n != nil {
			return k.m.Alloc(name, size, n)
		}
		return k.Malloc(Default, name, size)
	case PMem:
		n := k.findLocal(func(n *memsim.Node) bool { return memsim.IsPMem(n.Kind()) })
		if n == nil {
			return nil, fmt.Errorf("%w: no persistent memory node", ErrKindUnavailable)
		}
		return k.m.Alloc(name, size, n)
	default:
		return nil, fmt.Errorf("memkind: unknown kind %d", int(kind))
	}
}

// AutoHBW reproduces the AutoHBW interposer: allocations whose size
// falls within [Low, High) go to HBW-preferred memory, everything else
// to the default kind — no code modification, but the thresholds must
// be re-tuned for every application and run, which is the
// "convenience, not portability" critique in the paper.
type AutoHBW struct {
	K    *Memkind
	Low  uint64
	High uint64 // 0 = no upper bound
}

// Malloc routes by size.
func (a *AutoHBW) Malloc(name string, size uint64) (*memsim.Buffer, error) {
	if size >= a.Low && (a.High == 0 || size < a.High) {
		return a.K.Malloc(HBWPreferred, name, size)
	}
	return a.K.Malloc(Default, name, size)
}
