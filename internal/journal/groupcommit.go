package journal

// Group commit: concurrent durable appends coalesce into one
// write+fsync. N racing /alloc requests each need their record on
// stable storage before the daemon may answer; paying N fsyncs
// serializes the hot path on the disk. Instead, the first arrival
// becomes the batch leader, lingers briefly so followers can pile in
// (bounded by the batch size), then writes every pending frame in a
// single contiguous write and fsyncs once. All waiters share the
// outcome.
//
// The WAL invariants survive unchanged: frames from one flush are one
// contiguous write, a failed write is rolled back to the last whole
// frame exactly like Append, and a torn tail is still truncated on
// replay. Journal-before-visible holds because AppendDurable returns
// only after the shared fsync.

import (
	"sync"
	"time"
)

// Group-commit tuning bounds. Lingers outside (0, maxLinger] and batch
// sizes < 1 are clamped, so a misconfigured daemon degrades to
// per-record commits instead of stalling.
const (
	DefaultGroupBatch  = 64
	DefaultGroupLinger = time.Millisecond
	maxGroupLinger     = 10 * time.Millisecond
)

// gcWaiter is one enqueued record waiting for the shared flush.
type gcWaiter struct {
	frame    []byte
	appended bool
	err      error
	done     chan struct{}
}

// groupCommit is the leader/follower batcher attached to a Store.
type groupCommit struct {
	maxBatch int
	linger   time.Duration
	onFlush  func(batched int) // observability hook (metrics histogram)

	mu      sync.Mutex
	pending []*gcWaiter
	leader  bool
	full    chan struct{} // kicked when pending reaches maxBatch
}

// EnableGroupCommit turns on group commit for AppendDurable: up to
// maxBatch records (default 64) are coalesced per fsync, with the
// leader lingering up to linger (default 1ms, capped at 10ms) for
// followers. onFlush, if non-nil, observes every flush's batch size.
// Call before serving traffic; not safe to toggle concurrently with
// appends.
func (s *Store) EnableGroupCommit(maxBatch int, linger time.Duration, onFlush func(batched int)) {
	if maxBatch < 1 {
		maxBatch = DefaultGroupBatch
	}
	if linger <= 0 {
		linger = DefaultGroupLinger
	}
	if linger > maxGroupLinger {
		linger = maxGroupLinger
	}
	s.gc = &groupCommit{
		maxBatch: maxBatch,
		linger:   linger,
		onFlush:  onFlush,
		full:     make(chan struct{}, 1),
	}
}

// GroupCommitEnabled reports whether AppendDurable coalesces fsyncs.
func (s *Store) GroupCommitEnabled() bool { return s.gc != nil }

// AppendDurable appends one record and returns once it is on stable
// storage. With group commit enabled the fsync is shared with every
// concurrently appending goroutine; without it this is Append+Sync.
//
// Like Server-facing Append semantics: appended=false means the record
// never reached the WAL (the write was rolled back), appended=true
// with a non-nil error means the record is in the file but its
// durability is unconfirmed (the fsync failed) — it will replay.
func (s *Store) AppendDurable(r Record) (appended bool, err error) {
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	frame, err := appendFrame(*bp, r)
	*bp = frame[:0]
	if err != nil {
		return false, err
	}
	gc := s.gc
	if gc == nil {
		if _, err := s.writeBuf(frame, true); err != nil {
			return s.frameInFile(err), err
		}
		return true, nil
	}

	// The waiter's frame aliases this goroutine's pooled buffer; the
	// leader is done reading it before it closes w.done, so returning
	// the buffer to the pool after the wait is safe.
	w := &gcWaiter{frame: frame, done: make(chan struct{})}
	gc.mu.Lock()
	gc.pending = append(gc.pending, w)
	if !gc.leader {
		gc.leader = true
		gc.mu.Unlock()
		s.lead(gc)
	} else {
		if len(gc.pending) >= gc.maxBatch {
			select {
			case gc.full <- struct{}{}:
			default:
			}
		}
		gc.mu.Unlock()
	}
	<-w.done
	return w.appended, w.err
}

// lead runs one group-commit round: linger (unless the batch is
// already full), claim the pending batch, flush it, wake everyone.
func (s *Store) lead(gc *groupCommit) {
	gc.mu.Lock()
	full := len(gc.pending) >= gc.maxBatch
	gc.mu.Unlock()
	if !full {
		t := time.NewTimer(gc.linger)
		select {
		case <-t.C:
		case <-gc.full:
			t.Stop()
		}
	}

	gc.mu.Lock()
	batch := gc.pending
	gc.pending = nil
	gc.leader = false
	select { // drop a stale full-kick meant for this round
	case <-gc.full:
	default:
	}
	gc.mu.Unlock()

	bp := getFrameBuf()
	defer putFrameBuf(bp)
	buf := *bp
	for _, w := range batch {
		buf = append(buf, w.frame...)
	}
	*bp = buf[:0]
	_, err := s.writeBuf(buf, true)
	if gc.onFlush != nil {
		gc.onFlush(len(batch))
	}
	appended := err == nil || s.frameInFile(err)
	for _, w := range batch {
		w.appended, w.err = appended, err
		close(w.done)
	}
}

// frameInFile reports whether a failed appendFrames left the frames in
// the WAL (only the fsync failed) rather than rolled back.
func (s *Store) frameInFile(err error) bool {
	_, ok := err.(*syncError)
	return ok
}

// syncError marks an appendFrames failure where the write landed but
// the fsync did not: the records are in the file and will replay.
type syncError struct{ err error }

func (e *syncError) Error() string { return "journal: sync: " + e.err.Error() }
func (e *syncError) Unwrap() error { return e.err }

// AppendBatch frames and writes many records as one contiguous write,
// optionally followed by a single fsync — the journal side of the
// /v1/alloc/batch endpoint: one batch, one write, one fsync, no matter
// how many placements it carries. Same appended semantics as
// AppendDurable; all-or-nothing on the write (a failed write rolls the
// whole batch back).
func (s *Store) AppendBatch(recs []Record, sync bool) (appended bool, err error) {
	if len(recs) == 0 {
		return false, nil
	}
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	buf := *bp
	for _, r := range recs {
		var err error
		buf, err = appendFrame(buf, r)
		if err != nil {
			*bp = buf[:0]
			return false, err
		}
	}
	*bp = buf[:0]
	if _, err := s.writeBuf(buf, sync); err != nil {
		return s.frameInFile(err), err
	}
	return true, nil
}
