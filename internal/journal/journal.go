// Package journal is the placement daemon's write-ahead lease log: an
// append-only file of framed, checksummed records from which a
// restarted daemon reconstructs its lease table and per-node byte
// accounting exactly.
//
// # Format
//
// A journal starts with the 6-byte magic "HMWJ1\n" followed by zero or
// more frames:
//
//	[4-byte little-endian payload length][4-byte CRC32 (IEEE) of payload][payload]
//
// The payload is one JSON-encoded Record. The CRC covers only the
// payload, so a torn write (a crash mid-append) is detected as a
// length/checksum mismatch on the final frame.
//
// # Recovery
//
// Replay never panics on corrupt input. It decodes frames until the
// first truncated or corrupt one, returns every record before it, and
// reports the clean recovery point (the byte offset up to which the
// file is intact). Open truncates the file to that point, so the daemon
// appends after the last good record — a crash costs at most the
// in-flight record, never the journal.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"hetmem/internal/faults"
)

// Magic identifies a journal file.
var Magic = []byte("HMWJ1\n")

// OriginAdvisor tags migrate records written by the daemon's tiering
// advisor (Record.Origin).
const OriginAdvisor = "advisor"

// MaxRecordBytes bounds a single record's payload; larger lengths in a
// frame header are treated as corruption.
const MaxRecordBytes = 1 << 20

// Errors returned by the journal.
var (
	// ErrNotJournal means the file does not start with the magic.
	ErrNotJournal = errors.New("journal: not a journal file (bad magic)")
	// ErrClosed means the journal was already closed.
	ErrClosed = errors.New("journal: closed")
)

// Op is a record's operation.
type Op uint8

// The journaled operations.
const (
	OpAlloc Op = iota + 1
	OpFree
	OpMigrate
	// OpCheckpoint anchors a WAL to a snapshot: as the first record of
	// a WAL it names the snapshot sequence the following records build
	// on. Snapshot files reuse the same record as their header (with
	// Count and NextLease filled in). Replay treats checkpoint records
	// appearing mid-stream as no-ops, so a crash between writing a
	// snapshot and rotating the WAL never changes replay semantics.
	OpCheckpoint
)

func (o Op) String() string {
	switch o {
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	case OpMigrate:
		return "migrate"
	case OpCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Segment is one placed part of a lease: bytes resident on a node.
type Segment struct {
	NodeOS int    `json:"node"`
	Bytes  uint64 `json:"bytes"`
}

// Record is one journaled lease event. Alloc records carry the full
// lease state; Migrate records carry the new placement; Free records
// carry only the lease ID.
type Record struct {
	Op    Op     `json:"op"`
	Lease uint64 `json:"lease"`
	// Name, Attr, Initiator, and Key describe an allocation: the
	// buffer's label, the requested attribute, the requester's cpuset,
	// and the client's idempotency key (if any).
	Name      string `json:"name,omitempty"`
	Attr      string `json:"attr,omitempty"`
	Initiator string `json:"initiator,omitempty"`
	Key       string `json:"key,omitempty"`
	Size      uint64 `json:"size,omitempty"`
	// Tenant is the owning tenant (alloc records; empty means the
	// default tenant, which also keeps pre-tenancy journals replayable).
	Tenant string `json:"tenant,omitempty"`
	// TTLMillis is the lease's granted time-to-live in milliseconds
	// (alloc records; 0 means the lease never expires).
	TTLMillis uint64 `json:"ttl_ms,omitempty"`
	// Segments is the placement (alloc and migrate records).
	Segments []Segment `json:"segments,omitempty"`
	// Origin names the subsystem that initiated a migrate record
	// (OriginAdvisor for moves made by the tiering advisor; empty for
	// client-requested and rebalancer moves). Replay uses it to restore
	// the advisor's promotion/demotion counters after a restart.
	Origin string `json:"origin,omitempty"`

	// Checkpoint-record fields. Seq is the snapshot sequence number
	// (always > 0 on a valid checkpoint record); Count is the number of
	// live-lease records that follow in a snapshot file; NextLease is
	// the lease-ID counter floor, so freed high IDs are never reissued
	// after a restart.
	Seq       uint64 `json:"seq,omitempty"`
	Count     int    `json:"count,omitempty"`
	NextLease uint64 `json:"next,omitempty"`
}

// Recovery describes what Replay found.
type Recovery struct {
	// Records is how many intact records were recovered.
	Records int
	// GoodBytes is the clean recovery point: the offset up to which
	// the file is intact (magic plus whole frames).
	GoodBytes int64
	// Truncated is true when data past GoodBytes was dropped (torn
	// write or corruption).
	Truncated bool
	// Reason describes the corruption when Truncated.
	Reason string
}

func (r Recovery) String() string {
	s := fmt.Sprintf("%d records, %d clean bytes", r.Records, r.GoodBytes)
	if r.Truncated {
		s += fmt.Sprintf(" (tail dropped: %s)", r.Reason)
	}
	return s
}

// Replay decodes a journal stream. It returns the records up to the
// first corruption and a Recovery describing the clean prefix; it never
// panics on corrupt or truncated input. A stream not starting with the
// magic returns ErrNotJournal (with a zero recovery point).
func Replay(r io.Reader) ([]Record, Recovery, error) {
	br := newByteCounter(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		if errors.Is(err, io.EOF) && br.n == 0 {
			// Empty stream: a fresh journal.
			return nil, Recovery{}, nil
		}
		return nil, Recovery{}, ErrNotJournal
	}
	if !bytes.Equal(magic, Magic) {
		return nil, Recovery{}, ErrNotJournal
	}

	rec := Recovery{GoodBytes: int64(len(Magic))}
	var out []Record
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return out, rec, nil // clean end
			}
			rec.Truncated, rec.Reason = true, "truncated frame header"
			return out, rec, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecordBytes {
			rec.Truncated, rec.Reason = true, fmt.Sprintf("frame length %d over limit", length)
			return out, rec, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			rec.Truncated, rec.Reason = true, "truncated payload"
			return out, rec, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			rec.Truncated, rec.Reason = true, "payload checksum mismatch"
			return out, rec, nil
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			rec.Truncated, rec.Reason = true, fmt.Sprintf("payload decode: %v", err)
			return out, rec, nil
		}
		if r.Op == OpCheckpoint {
			if r.Seq == 0 || r.Count < 0 {
				rec.Truncated, rec.Reason = true, fmt.Sprintf("invalid checkpoint record (seq=%d count=%d)", r.Seq, r.Count)
				return out, rec, nil
			}
		} else if r.Op < OpAlloc || r.Op > OpMigrate || r.Lease == 0 {
			rec.Truncated, rec.Reason = true, fmt.Sprintf("invalid record (op=%d lease=%d)", r.Op, r.Lease)
			return out, rec, nil
		}
		out = append(out, r)
		rec.Records++
		rec.GoodBytes = br.n
	}
}

// byteCounter counts bytes consumed from the underlying reader.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// Journal is an open, appendable lease log. Append is safe for
// concurrent use; records are written directly to the file (no
// userspace buffering), so a killed process loses at most the record
// being written — the OS still holds everything already appended.
type Journal struct {
	path string

	mu     sync.Mutex
	f      faults.File
	closed bool
}

// Open opens (or creates) the journal at path, replays any existing
// records, truncates a corrupt tail back to the clean recovery point,
// and returns the journal positioned for appending.
func Open(path string) (*Journal, []Record, Recovery, error) {
	return OpenFS(path, faults.OS)
}

// OpenFS is Open with the file I/O routed through an injectable
// filesystem, so tests can serve the journal disk faults.
func OpenFS(path string, fsys faults.FS) (*Journal, []Record, Recovery, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, Recovery{}, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, Recovery{}, err
	}
	if st.Size() == 0 {
		// Fresh journal: write the magic.
		if _, err := f.Write(Magic); err != nil {
			f.Close()
			return nil, nil, Recovery{}, err
		}
		return &Journal{path: path, f: f}, nil, Recovery{GoodBytes: int64(len(Magic))}, nil
	}

	recs, rec, err := Replay(f)
	if err != nil {
		f.Close()
		return nil, nil, rec, fmt.Errorf("journal: replaying %s: %w", path, err)
	}
	// Drop any corrupt tail and position at the clean end.
	if err := f.Truncate(rec.GoodBytes); err != nil {
		f.Close()
		return nil, nil, rec, err
	}
	if _, err := f.Seek(rec.GoodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, rec, err
	}
	return &Journal{path: path, f: f}, recs, rec, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append frames and writes one record. The write reaches the OS before
// Append returns (process-crash durable); call Sync for power-failure
// durability.
func (j *Journal) Append(r Record) error {
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	frame, err := appendFrame(*bp, r)
	*bp = frame[:0]
	if err != nil {
		return err
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	_, err = j.f.Write(frame)
	return err
}

// Sync flushes the journal to stable storage (fsync).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Further appends fail with
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
