package journal

// Parallel WAL replay. Sequential Replay pays two reads and one
// payload allocation per frame and decodes JSON on one core; on a
// restart behind a large journal that decode is the whole wait. The
// parallel path splits the work by its real shape:
//
//	1. slurp the file once,
//	2. scan frame boundaries sequentially — headers are 8 bytes and
//	   the scan does no checksum or decode work, so this pass is
//	   memory-bandwidth cheap,
//	3. fan the frames out to workers that checksum + decode + validate
//	   each one against a payload slice of the original buffer (no
//	   per-frame copy),
//	4. merge verdicts in frame order, truncating at the FIRST failed
//	   frame exactly where sequential replay would have stopped.
//
// The merge is what keeps the two paths byte-for-byte equivalent: a
// worker may well decode garbage frames that sit past an earlier
// corruption (sequential replay would never have looked at them), but
// their verdicts are discarded — Records, GoodBytes, Truncated, and
// Reason come out identical to Replay on the same bytes.
// FuzzJournalReplay holds that equivalence over arbitrary input,
// including torn tails and mid-stream corruption.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
)

// frameRef locates one whole frame found by the boundary scan. The
// payload aliases the replay buffer; workers never copy it.
type frameRef struct {
	payload []byte
	sum     uint32 // CRC32 the header claims
	end     int64  // offset just past the payload — GoodBytes if this frame is good
}

// chunkFail is a worker's first failure in its chunk of frames: the
// frame index and the truncation reason sequential replay would have
// reported there. idx < 0 means the whole chunk decoded cleanly.
type chunkFail struct {
	idx    int
	reason string
}

// scanFrames walks whole frames from the byte after the magic. It
// stops at the first structural problem — a short header, an
// over-limit length, or a payload running past the buffer — and
// returns the sequential-replay reason for it ("" for a clean end).
// Checksum, decode, and validation failures are the workers' to find.
func scanFrames(data []byte) (frames []frameRef, tailReason string) {
	off, n := int64(len(Magic)), int64(len(data))
	for off < n {
		if n-off < 8 {
			return frames, "truncated frame header"
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > MaxRecordBytes {
			return frames, fmt.Sprintf("frame length %d over limit", length)
		}
		if n-off-8 < length {
			return frames, "truncated payload"
		}
		frames = append(frames, frameRef{
			payload: data[off+8 : off+8+length],
			sum:     sum,
			end:     off + 8 + length,
		})
		off += 8 + length
	}
	return frames, ""
}

// decodeFrame runs the per-frame half of sequential replay — checksum,
// JSON decode, and record validation, with the same reason strings —
// writing the record in place so no worker result is ever copied.
func decodeFrame(fr frameRef, r *Record) (reason string) {
	if crc32.ChecksumIEEE(fr.payload) != fr.sum {
		return "payload checksum mismatch"
	}
	if err := json.Unmarshal(fr.payload, r); err != nil {
		return fmt.Sprintf("payload decode: %v", err)
	}
	if r.Op == OpCheckpoint {
		if r.Seq == 0 || r.Count < 0 {
			return fmt.Sprintf("invalid checkpoint record (seq=%d count=%d)", r.Seq, r.Count)
		}
	} else if r.Op < OpAlloc || r.Op > OpMigrate || r.Lease == 0 {
		return fmt.Sprintf("invalid record (op=%d lease=%d)", r.Op, r.Lease)
	}
	return ""
}

// ReplayParallel decodes a journal held in memory across workers
// goroutines, producing exactly what Replay produces on the same
// bytes: the records before the first corruption and a Recovery with
// identical Records, GoodBytes, Truncated, and Reason. workers <= 0
// means GOMAXPROCS; workers == 1 delegates to sequential Replay.
func ReplayParallel(data []byte, workers int) ([]Record, Recovery, error) {
	if len(data) == 0 {
		return nil, Recovery{}, nil
	}
	if len(data) < len(Magic) || !bytes.Equal(data[:len(Magic)], Magic) {
		return nil, Recovery{}, ErrNotJournal
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Replay(bytes.NewReader(data))
	}

	frames, tailReason := scanFrames(data)
	// Contiguous chunks, one per worker, decoding straight into one
	// pre-sized record slice: frame i's record lands in out[i], so the
	// merge below is deterministic regardless of which worker finishes
	// first, and nothing is copied afterwards. A worker abandons its
	// chunk at its first bad frame — everything after it is discarded
	// by the merge anyway.
	out := make([]Record, len(frames))
	chunk := (len(frames) + workers - 1) / workers
	fails := make([]chunkFail, 0, workers)
	var wg sync.WaitGroup
	for lo := 0; lo < len(frames); lo += chunk {
		hi := min(lo+chunk, len(frames))
		fails = append(fails, chunkFail{idx: -1})
		wg.Add(1)
		go func(fail *chunkFail, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if reason := decodeFrame(frames[i], &out[i]); reason != "" {
					fail.idx, fail.reason = i, reason
					return
				}
			}
		}(&fails[len(fails)-1], lo, hi)
	}
	wg.Wait()

	// Merge: the first chunk with a failure holds the globally first
	// bad frame (chunks are contiguous and in order), and it truncates
	// the result exactly where the sequential loop would have stopped.
	rec := Recovery{GoodBytes: int64(len(Magic))}
	n := len(frames)
	for _, f := range fails {
		if f.idx >= 0 {
			n = f.idx
			rec.Truncated, rec.Reason = true, f.reason
			break
		}
	}
	if !rec.Truncated && tailReason != "" {
		rec.Truncated, rec.Reason = true, tailReason
	}
	rec.Records = n
	if n > 0 {
		rec.GoodBytes = frames[n-1].end
	}
	if n == 0 {
		// Sequential replay returns a nil slice when nothing decoded;
		// match it exactly.
		return nil, rec, nil
	}
	return out[:n:n], rec, nil
}

// replayFile replays an open journal file of known size with the
// given parallelism. workers == 1 streams through sequential Replay;
// otherwise the file is slurped in one exact-size read (io.ReadAll's
// doubling would re-zero and re-copy the buffer a dozen times at WAL
// sizes) and decoded with ReplayParallel. A failed slurp falls back
// to streaming, which classifies mid-stream read failures as torn
// tails the way sequential recovery always has.
func replayFile(f io.ReadSeeker, size int64, workers int) ([]Record, Recovery, error) {
	if workers == 1 {
		return Replay(f)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		if _, serr := f.Seek(0, io.SeekStart); serr != nil {
			return nil, Recovery{}, serr
		}
		return Replay(f)
	}
	return ReplayParallel(data, workers)
}
