package journal_test

// Parallel replay equivalence: ReplayParallel must produce exactly
// what sequential Replay produces — records, GoodBytes, Truncated,
// and the Reason string — on clean streams, torn tails, and every
// mid-stream corruption class, at any worker count. The adversarial
// cases put VALID frames after the corruption: a parallel decoder
// happily decodes them, and only the in-order merge keeps them out of
// the result the way the sequential loop's early return does.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hetmem/internal/journal"
)

// stream builds a journal: magic plus one frame per payload.
func stream(payloads ...string) []byte {
	out := append([]byte(nil), journal.Magic...)
	for _, p := range payloads {
		out = append(out, frame([]byte(p))...)
	}
	return out
}

func replayCases() map[string][]byte {
	alloc := `{"op":1,"lease":%d,"name":"b","size":4096,"segments":[{"node":0,"bytes":4096}]}`
	many := make([]string, 0, 300)
	for i := 1; i <= 300; i++ {
		many = append(many, fmt.Sprintf(alloc, i))
	}

	corruptCRC := stream(fmt.Sprintf(alloc, 1), fmt.Sprintf(alloc, 2), fmt.Sprintf(alloc, 3))
	corruptCRC[len(journal.Magic)+8+1] ^= 0x40 // flip a payload bit in frame 1 of 3

	overLimit := stream(fmt.Sprintf(alloc, 1))
	bad := frame([]byte("x"))
	binary.LittleEndian.PutUint32(bad[0:4], 1<<21) // length over MaxRecordBytes
	overLimit = append(overLimit, bad...)
	overLimit = append(overLimit, frame([]byte(fmt.Sprintf(alloc, 2)))...)

	return map[string][]byte{
		"empty":             {},
		"magic_only":        append([]byte(nil), journal.Magic...),
		"bad_magic":         []byte("NOTJRNL\n"),
		"partial_magic":     journal.Magic[:3],
		"clean":             stream(fmt.Sprintf(alloc, 1), `{"op":2,"lease":1}`, fmt.Sprintf(alloc, 2)),
		"many_records":      stream(many...),
		"torn_header":       append(stream(fmt.Sprintf(alloc, 1)), 0x10, 0x00, 0x00),
		"torn_payload":      stream(fmt.Sprintf(alloc, 1), fmt.Sprintf(alloc, 2))[:len(journal.Magic)+30],
		"crc_mid_stream":    corruptCRC,
		"over_limit_mid":    overLimit,
		"bad_json_mid":      stream(fmt.Sprintf(alloc, 1), `{"op":`, fmt.Sprintf(alloc, 2)),
		"bad_op_mid":        stream(fmt.Sprintf(alloc, 1), `{"op":9,"lease":5}`, fmt.Sprintf(alloc, 2)),
		"zero_lease_mid":    stream(fmt.Sprintf(alloc, 1), `{"op":2,"lease":0}`, fmt.Sprintf(alloc, 2)),
		"bad_checkpoint":    stream(`{"op":4,"seq":3}`, `{"op":4}`, fmt.Sprintf(alloc, 2)),
		"anchored_wal":      stream(`{"op":4,"seq":3}`, `{"op":2,"lease":7}`),
		"snapshot_stream":   stream(`{"op":4,"seq":3,"count":1,"next":9}`, fmt.Sprintf(alloc, 7)),
		"empty_payload":     stream(fmt.Sprintf(alloc, 1), ""),
		"garbage_after_mag": append(append([]byte(nil), journal.Magic...), []byte("not a frame at all")...),
	}
}

func TestReplayParallelMatchesSequential(t *testing.T) {
	for name, data := range replayCases() {
		t.Run(name, func(t *testing.T) {
			want, wantRec, wantErr := journal.Replay(bytes.NewReader(data))
			for _, workers := range []int{0, 1, 2, 3, 7, 16} {
				got, gotRec, gotErr := journal.ReplayParallel(data, workers)
				if (gotErr == nil) != (wantErr == nil) || (wantErr != nil && !errors.Is(gotErr, journal.ErrNotJournal)) {
					t.Fatalf("workers=%d: err %v, sequential %v", workers, gotErr, wantErr)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: %d records, sequential %d", workers, len(got), len(want))
				}
				if gotRec != wantRec {
					t.Fatalf("workers=%d: recovery %+v, sequential %+v", workers, gotRec, wantRec)
				}
			}
		})
	}
}

// TestOpenStoreWorkersEquivalence proves the whole recovery stack —
// WAL replay, snapshot parse, torn-tail truncation — restores the
// same state at any parallelism, including through a checkpoint and
// with a torn tail appended.
func TestOpenStoreWorkersEquivalence(t *testing.T) {
	build := func(t *testing.T, tear bool) string {
		base := filepath.Join(t.TempDir(), "wal")
		s, _, err := journal.OpenStore(base, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= 50; i++ {
			rec := journal.Record{Op: journal.OpAlloc, Lease: i, Name: "b", Size: 4096,
				Segments: []journal.Segment{{NodeOS: 0, Bytes: 4096}}}
			if err := s.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		err = s.Checkpoint(func() ([]journal.Record, uint64, error) {
			live := make([]journal.Record, 0, 50)
			for i := uint64(1); i <= 50; i++ {
				live = append(live, journal.Record{Op: journal.OpAlloc, Lease: i, Name: "b", Size: 4096,
					Segments: []journal.Segment{{NodeOS: 0, Bytes: 4096}}})
			}
			return live, 51, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= 20; i++ {
			if err := s.Append(journal.Record{Op: journal.OpFree, Lease: i}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if tear {
			f, err := os.OpenFile(base, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
		return base
	}

	for _, tear := range []bool{false, true} {
		name := "clean"
		if tear {
			name = "torn_tail"
		}
		t.Run(name, func(t *testing.T) {
			// Sequential reference open. It truncates the torn tail, so
			// copy the damaged file first for the parallel opens.
			base := build(t, tear)
			raw, err := os.ReadFile(base)
			if err != nil {
				t.Fatal(err)
			}
			seq, seqRes, err := journal.OpenStoreWorkers(base, nil, 1)
			if err != nil {
				t.Fatal(err)
			}
			seq.Close()
			for _, workers := range []int{0, 2, 4} {
				pbase := filepath.Join(t.TempDir(), "wal")
				if err := os.WriteFile(pbase, raw, 0o644); err != nil {
					t.Fatal(err)
				}
				if data, err := os.ReadFile(base + ".ckpt"); err == nil {
					if err := os.WriteFile(pbase+".ckpt", data, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				par, parRes, err := journal.OpenStoreWorkers(pbase, nil, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				par.Close()
				if !reflect.DeepEqual(parRes.Records, seqRes.Records) {
					t.Fatalf("workers=%d: %d records, sequential %d", workers, len(parRes.Records), len(seqRes.Records))
				}
				if parRes.Seq != seqRes.Seq || parRes.NextLease != seqRes.NextLease ||
					parRes.SnapshotRecords != seqRes.SnapshotRecords || parRes.WAL != seqRes.WAL {
					t.Fatalf("workers=%d: restored %+v, sequential %+v", workers, parRes, seqRes)
				}
			}
		})
	}
}
