package journal_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hetmem/internal/faults"
	"hetmem/internal/journal"
)

// allocRec builds a one-segment alloc record.
func allocRec(lease uint64, bytes uint64) journal.Record {
	return journal.Record{
		Op: journal.OpAlloc, Lease: lease, Name: "b", Attr: "Capacity",
		Size: bytes, Segments: []journal.Segment{{NodeOS: 0, Bytes: bytes}},
	}
}

// foldLive replays records into the surviving lease set, failing the
// test on any semantically invalid sequence.
func foldLive(t *testing.T, recs []journal.Record) map[uint64]uint64 {
	t.Helper()
	live := map[uint64]uint64{}
	for i, r := range recs {
		switch r.Op {
		case journal.OpAlloc:
			if _, dup := live[r.Lease]; dup {
				t.Fatalf("record %d: duplicate alloc of lease %d", i, r.Lease)
			}
			live[r.Lease] = r.Size
		case journal.OpFree:
			if _, ok := live[r.Lease]; !ok {
				t.Fatalf("record %d: free of unknown lease %d", i, r.Lease)
			}
			delete(live, r.Lease)
		case journal.OpMigrate:
		default:
			t.Fatalf("record %d: unexpected op %v", i, r.Op)
		}
	}
	return live
}

func TestStoreCheckpointCompactsWAL(t *testing.T) {
	base := filepath.Join(t.TempDir(), "wal")
	s, res, err := journal.OpenStore(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.Seq != 0 {
		t.Fatalf("fresh store restored %+v", res)
	}
	for i := uint64(1); i <= 50; i++ {
		if err := s.Append(allocRec(i, 1<<20)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 40; i++ {
		if err := s.Append(journal.Record{Op: journal.OpFree, Lease: i}); err != nil {
			t.Fatal(err)
		}
	}
	pre := s.WALBytes()

	// Checkpoint the 10 survivors; the WAL must shrink.
	var live []journal.Record
	for i := uint64(41); i <= 50; i++ {
		live = append(live, allocRec(i, 1<<20))
	}
	if err := s.Checkpoint(func() ([]journal.Record, uint64, error) { return live, 51, nil }); err != nil {
		t.Fatal(err)
	}
	if post := s.WALBytes(); post >= pre {
		t.Fatalf("WAL grew across checkpoint: %d -> %d bytes", pre, post)
	}
	if s.Seq() != 1 {
		t.Fatalf("seq = %d, want 1", s.Seq())
	}
	// Post-checkpoint appends land in the compacted WAL.
	if err := s.Append(journal.Record{Op: journal.OpFree, Lease: 41}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, res2, err := journal.OpenStore(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if res2.Seq != 1 || res2.NextLease != 51 || res2.SnapshotRecords != 10 {
		t.Fatalf("restored %+v", res2)
	}
	liveSet := foldLive(t, res2.Records)
	if len(liveSet) != 9 {
		t.Fatalf("%d live leases after recovery, want 9", len(liveSet))
	}
	if _, ok := liveSet[41]; ok {
		t.Fatal("lease 41 resurrected: its free was in the WAL suffix")
	}
}

func TestStoreRecoversEveryCrashWindow(t *testing.T) {
	// Build a store with one completed checkpoint and a WAL suffix,
	// then simulate each crash window of the next checkpoint by
	// replaying the file operations by hand.
	build := func(t *testing.T) (string, map[uint64]uint64) {
		base := filepath.Join(t.TempDir(), "wal")
		s, _, err := journal.OpenStore(base, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= 6; i++ {
			if err := s.Append(allocRec(i, 4096)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Checkpoint(func() ([]journal.Record, uint64, error) {
			return []journal.Record{allocRec(1, 4096), allocRec(2, 4096), allocRec(3, 4096),
				allocRec(4, 4096), allocRec(5, 4096), allocRec(6, 4096)}, 7, nil
		}); err != nil {
			t.Fatal(err)
		}
		// Suffix on top of snapshot 1.
		if err := s.Append(journal.Record{Op: journal.OpFree, Lease: 6}); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(allocRec(7, 4096)); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return base, map[uint64]uint64{1: 4096, 2: 4096, 3: 4096, 4: 4096, 5: 4096, 7: 4096}
	}

	check := func(t *testing.T, base string, want map[uint64]uint64, wantFallback bool) {
		t.Helper()
		s, res, err := journal.OpenStore(base, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if res.UsedFallback != wantFallback {
			t.Fatalf("UsedFallback = %v, want %v", res.UsedFallback, wantFallback)
		}
		got := foldLive(t, res.Records)
		if len(got) != len(want) {
			t.Fatalf("recovered %d leases, want %d (%v)", len(got), len(want), got)
		}
		for id := range want {
			if _, ok := got[id]; !ok {
				t.Fatalf("lease %d lost in recovery", id)
			}
		}
	}

	// The next checkpoint would capture {1..5,7} as snapshot seq 2.
	snap2 := func(t *testing.T, base string) []byte {
		t.Helper()
		// Forge snapshot 2 bytes by running a real checkpoint in a
		// scratch copy, then stealing the .ckpt file.
		dir := t.TempDir()
		scratch := filepath.Join(dir, "wal")
		data, err := os.ReadFile(base)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(scratch, data, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, suf := range []string{".ckpt", ".ckpt.1"} {
			if d, err := os.ReadFile(base + suf); err == nil {
				os.WriteFile(scratch+suf, d, 0o644)
			}
		}
		s, _, err := journal.OpenStore(scratch, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(func() ([]journal.Record, uint64, error) {
			return []journal.Record{allocRec(1, 4096), allocRec(2, 4096), allocRec(3, 4096),
				allocRec(4, 4096), allocRec(5, 4096), allocRec(7, 4096)}, 8, nil
		}); err != nil {
			t.Fatal(err)
		}
		s.Close()
		d, err := os.ReadFile(scratch + ".ckpt")
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	t.Run("clean", func(t *testing.T) {
		base, want := build(t)
		check(t, base, want, false)
	})

	t.Run("crash-after-snapshot-published", func(t *testing.T) {
		// Steps 1-3 done, WAL swap never happened: .ckpt holds seq 2,
		// .ckpt.1 holds seq 1, WAL still anchored to seq 1.
		base, want := build(t)
		snap := snap2(t, base)
		if err := os.Rename(base+".ckpt", base+".ckpt.1"); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(base+".ckpt", snap, 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, base, want, true)
	})

	t.Run("torn-ckpt-falls-back", func(t *testing.T) {
		// The published .ckpt is torn mid-file; .ckpt.1 must recover.
		base, want := build(t)
		snap := snap2(t, base)
		if err := os.Rename(base+".ckpt", base+".ckpt.1"); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(base+".ckpt", snap[:len(snap)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, base, want, true)
	})

	t.Run("torn-wal-tail", func(t *testing.T) {
		base, want := build(t)
		data, err := os.ReadFile(base)
		if err != nil {
			t.Fatal(err)
		}
		// Tear the last record (alloc of lease 7) mid-frame: an
		// unacknowledged write may be lost, never a resurrected one.
		if err := os.WriteFile(base, data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		delete(want, 7)
		check(t, base, want, false)
	})

	t.Run("anchor-mismatch-is-an-error", func(t *testing.T) {
		base, _ := build(t)
		if err := os.Remove(base + ".ckpt"); err != nil {
			t.Fatal(err)
		}
		_, _, err := journal.OpenStore(base, nil)
		if !errors.Is(err, journal.ErrSnapshotMismatch) {
			t.Fatalf("recovery without any matching snapshot: %v, want ErrSnapshotMismatch", err)
		}
	})

	t.Run("destroyed-anchor-refuses-reset", func(t *testing.T) {
		base, _ := build(t)
		// Corrupt the WAL's first frame: zero records survive replay,
		// but a valid snapshot proves history existed.
		data, err := os.ReadFile(base)
		if err != nil {
			t.Fatal(err)
		}
		data[len(journal.Magic)+9] ^= 0xff
		if err := os.WriteFile(base, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err = journal.OpenStore(base, nil)
		if !errors.Is(err, journal.ErrWALAnchorLost) {
			t.Fatalf("recovery with destroyed anchor: %v, want ErrWALAnchorLost", err)
		}
	})
}

func TestStoreDiskFaults(t *testing.T) {
	t.Run("fsync-failure-aborts-checkpoint", func(t *testing.T) {
		base := filepath.Join(t.TempDir(), "wal")
		ffs := faults.NewFaultFS(faults.OS, 1)
		s, _, err := journal.OpenStore(base, ffs)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= 4; i++ {
			if err := s.Append(allocRec(i, 4096)); err != nil {
				t.Fatal(err)
			}
		}
		ffs.FailSyncs(1)
		err = s.Checkpoint(func() ([]journal.Record, uint64, error) {
			return []journal.Record{allocRec(1, 4096), allocRec(2, 4096),
				allocRec(3, 4096), allocRec(4, 4096)}, 5, nil
		})
		if !errors.Is(err, faults.ErrInjectedSync) {
			t.Fatalf("checkpoint under fsync fault: %v, want ErrInjectedSync", err)
		}
		if s.Seq() != 0 {
			t.Fatalf("failed checkpoint advanced seq to %d", s.Seq())
		}
		// The store still appends, and a reopen sees everything.
		if err := s.Append(journal.Record{Op: journal.OpFree, Lease: 1}); err != nil {
			t.Fatal(err)
		}
		s.Close()
		_, res, err := journal.OpenStore(base, faults.OS)
		if err != nil {
			t.Fatal(err)
		}
		live := foldLive(t, res.Records)
		if len(live) != 3 {
			t.Fatalf("recovered %d leases, want 3", len(live))
		}
		// A retried checkpoint on the reopened store succeeds.
		s2, _, err := journal.OpenStore(base, faults.OS)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if err := s2.Checkpoint(func() ([]journal.Record, uint64, error) {
			return []journal.Record{allocRec(2, 4096), allocRec(3, 4096), allocRec(4, 4096)}, 5, nil
		}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("short-write-on-append-rolls-back", func(t *testing.T) {
		// A torn append must not strand later records behind an
		// undecodable frame: Append truncates the tear away, so the
		// next append lands on a clean tail and survives replay.
		base := filepath.Join(t.TempDir(), "wal")
		ffs := faults.NewFaultFS(faults.OS, 2)
		s, _, err := journal.OpenStore(base, ffs)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Append(allocRec(1, 4096)); err != nil {
			t.Fatal(err)
		}
		ffs.ShortWrites(1)
		if err := s.Append(allocRec(2, 4096)); !errors.Is(err, faults.ErrInjectedShortWrite) {
			t.Fatalf("torn append: %v", err)
		}
		if err := s.Append(allocRec(3, 4096)); err != nil {
			t.Fatalf("append after rollback: %v", err)
		}
		s.Close()

		_, res, err := journal.OpenStore(base, faults.OS)
		if err != nil {
			t.Fatal(err)
		}
		live := foldLive(t, res.Records)
		if len(live) != 2 {
			t.Fatalf("recovery after torn append: %v, want leases 1 and 3", live)
		}
		if _, ok := live[2]; ok {
			t.Fatal("failed append resurrected")
		}
		if _, ok := live[3]; !ok {
			t.Fatal("append after rollback lost behind the tear")
		}
		if res.WAL.Truncated {
			t.Fatal("rollback should leave a clean tail, not a torn one")
		}
	})

	t.Run("bit-flip-on-snapshot-read-falls-back", func(t *testing.T) {
		base := filepath.Join(t.TempDir(), "wal")
		s, _, err := journal.OpenStore(base, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= 3; i++ {
			if err := s.Append(allocRec(i, 4096)); err != nil {
				t.Fatal(err)
			}
		}
		ck := func(n uint64) func() ([]journal.Record, uint64, error) {
			return func() ([]journal.Record, uint64, error) {
				var live []journal.Record
				for i := uint64(1); i <= 3; i++ {
					live = append(live, allocRec(i, 4096))
				}
				return live, n, nil
			}
		}
		// Two checkpoints so both .ckpt (seq 2) and .ckpt.1 (seq 1)
		// exist; then rewind the WAL anchor... instead, corrupt only
		// the read path: a flipped bit in .ckpt must fail its CRC and
		// recovery must fall back — here .ckpt.1 has the wrong seq, so
		// the mismatch must surface as an error, never silent corruption.
		if err := s.Checkpoint(ck(4)); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(ck(4)); err != nil {
			t.Fatal(err)
		}
		s.Close()

		ffs := faults.NewFaultFS(faults.OS, 9)
		ffs.FlipReadBits(1) // first read: the WAL itself — tolerated or anchors
		// Arm enough flips that the .ckpt read is corrupted too.
		_, res, err := journal.OpenStore(base, ffs)
		if err != nil {
			// Acceptable outcome: corruption detected, never a panic or
			// a silently wrong table.
			t.Logf("recovery refused corrupt state: %v", err)
			return
		}
		live := foldLive(t, res.Records)
		if len(live) != 3 {
			t.Fatalf("recovered %d leases, want 3", len(live))
		}
	})
}
