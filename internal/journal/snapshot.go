package journal

// Checkpointing and compaction. A Store manages a WAL plus a pair of
// snapshot files next to it:
//
//	<base>         the write-ahead log (magic + frames)
//	<base>.ckpt    the newest snapshot
//	<base>.ckpt.1  the previous snapshot (fallback for a torn .ckpt)
//
// A snapshot file reuses the WAL's frame format: magic, then an
// OpCheckpoint header record carrying the snapshot sequence, the
// live-record count, and the lease-ID floor, then one OpAlloc record
// per live lease. A compacted WAL starts with the same OpCheckpoint
// header (Seq only), anchoring its suffix to the snapshot it builds on.
//
// # Checkpoint protocol
//
// Checkpoint holds the append lock for the whole operation, so the
// captured state and the WAL agree exactly:
//
//	1. write the snapshot to <base>.ckpt.tmp, fsync, close
//	2. rotate <base>.ckpt to <base>.ckpt.1 (only when the current
//	   .ckpt is the anchor of the live WAL — a stale .ckpt left by an
//	   earlier failed checkpoint is simply overwritten)
//	3. rename the temp over <base>.ckpt   (snapshot published)
//	4. write a fresh WAL (magic + checkpoint header) to <base>.wal.tmp,
//	   fsync, and rename it over <base>    (WAL truncated)
//
// Every crash point leaves a recoverable pair: before step 3 the old
// snapshot and the full WAL are untouched; between 3 and 4 the WAL's
// anchor still names the previous snapshot, which step 2 preserved in
// .ckpt.1; after 4 the new pair is live. OpenStore picks the snapshot
// whose sequence matches the WAL's anchor, falling back from .ckpt to
// .ckpt.1, and normalizes the files so the invariant holds again.
import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"hetmem/internal/faults"
)

// Snapshot/WAL-related errors.
var (
	// ErrSnapshotMismatch means the WAL is anchored to a snapshot
	// sequence that no readable snapshot file provides — the state is
	// unrecoverable without operator intervention (restore a snapshot
	// or accept the loss by removing the WAL anchor).
	ErrSnapshotMismatch = errors.New("journal: no snapshot matches the WAL anchor")
	// ErrWALAnchorLost means the WAL decayed to zero records while a
	// valid snapshot exists: the anchor frame itself was destroyed.
	// Refusing to guess beats silently resurrecting freed leases.
	ErrWALAnchorLost = errors.New("journal: WAL anchor lost but a snapshot exists")
)

// Restored is what OpenStore recovered.
type Restored struct {
	// Records is the full logical history to fold: the snapshot's live
	// leases (as alloc records) followed by the WAL suffix. Checkpoint
	// records are stripped.
	Records []Record
	// SnapshotRecords is how many leading Records came from the
	// snapshot.
	SnapshotRecords int
	// Seq is the snapshot sequence in effect (0: no snapshot).
	Seq uint64
	// NextLease is the lease-ID floor from the snapshot header.
	NextLease uint64
	// UsedFallback is true when .ckpt was torn/corrupt/stale and the
	// previous snapshot (.ckpt.1) recovered the state.
	UsedFallback bool
	// WAL describes the WAL replay (torn-tail truncation etc).
	WAL Recovery
}

// Store is a compacting lease log: an appendable WAL anchored to the
// newest durable snapshot. All I/O goes through the injectable
// filesystem it was opened with.
type Store struct {
	base string
	fs   faults.FS

	// gc, when set, coalesces AppendDurable fsyncs (see groupcommit.go).
	gc *groupCommit

	mu       sync.Mutex
	f        faults.File
	seq      uint64 // snapshot sequence the live WAL is anchored to
	ckptSeq  uint64 // sequence of the snapshot currently at .ckpt
	walBytes int64
	closed   bool
}

func (s *Store) ckptPath() string { return s.base + ".ckpt" }
func (s *Store) prevPath() string { return s.base + ".ckpt.1" }

// readFile slurps one file through the store's filesystem.
func readFile(fsys faults.FS, path string) ([]byte, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// parseSnapshot validates snapshot bytes: a clean journal stream whose
// first record is a checkpoint header and whose body is exactly the
// promised number of alloc records. A big snapshot (one record per
// live lease) decodes across workers; ReplayParallel is byte-for-byte
// equivalent to sequential Replay, so the validation is too.
func parseSnapshot(data []byte, workers int) (header Record, body []Record, err error) {
	recs, rec, err := ReplayParallel(data, workers)
	if err != nil {
		return Record{}, nil, err
	}
	if rec.Truncated {
		return Record{}, nil, fmt.Errorf("journal: snapshot torn: %s", rec.Reason)
	}
	if len(recs) == 0 || recs[0].Op != OpCheckpoint {
		return Record{}, nil, errors.New("journal: snapshot missing checkpoint header")
	}
	header, body = recs[0], recs[1:]
	if header.Count != len(body) {
		return Record{}, nil, fmt.Errorf("journal: snapshot promises %d records, holds %d", header.Count, len(body))
	}
	for i, r := range body {
		if r.Op != OpAlloc {
			return Record{}, nil, fmt.Errorf("journal: snapshot record %d is %s, want alloc", i, r.Op)
		}
	}
	return header, body, nil
}

// loadSnapshot reads and validates the snapshot at path against the
// wanted sequence.
func loadSnapshot(fsys faults.FS, path string, wantSeq uint64, workers int) (Record, []Record, error) {
	data, err := readFile(fsys, path)
	if err != nil {
		return Record{}, nil, err
	}
	header, body, err := parseSnapshot(data, workers)
	if err != nil {
		return Record{}, nil, err
	}
	if header.Seq != wantSeq {
		return Record{}, nil, fmt.Errorf("journal: snapshot seq %d, WAL anchored to %d", header.Seq, wantSeq)
	}
	return header, body, nil
}

// OpenStore opens (or creates) the compacting lease log rooted at
// base, recovering the newest consistent (snapshot, WAL-suffix) pair.
// Torn WAL tails are truncated; a torn or stale .ckpt falls back to
// .ckpt.1. The returned store is positioned for appending.
func OpenStore(base string, fsys faults.FS) (*Store, Restored, error) {
	return OpenStoreWorkers(base, fsys, 1)
}

// OpenStoreWorkers is OpenStore with the WAL and snapshot replay
// spread across workers goroutines (see ReplayParallel). workers <= 0
// means GOMAXPROCS; workers == 1 is the sequential streaming path.
// Recovery semantics are identical at any width.
func OpenStoreWorkers(base string, fsys faults.FS, workers int) (*Store, Restored, error) {
	if fsys == nil {
		fsys = faults.OS
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var res Restored

	f, err := fsys.OpenFile(base, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, res, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, res, err
	}
	s := &Store{base: base, fs: fsys, f: f}
	if st.Size() == 0 {
		if _, err := f.Write(Magic); err != nil {
			f.Close()
			return nil, res, err
		}
		s.walBytes = int64(len(Magic))
		return s, res, nil
	}

	walRecs, walRec, err := replayFile(f, st.Size(), workers)
	if err != nil {
		f.Close()
		return nil, res, fmt.Errorf("journal: replaying %s: %w", base, err)
	}
	res.WAL = walRec

	// The anchor is the WAL's first record, when it is a checkpoint.
	var suffix []Record
	var baseSeq uint64
	if len(walRecs) > 0 && walRecs[0].Op == OpCheckpoint {
		baseSeq = walRecs[0].Seq
		suffix = walRecs[1:]
	} else {
		suffix = walRecs
	}
	// Mid-stream checkpoint markers (possible after interrupted
	// compactions) carry no state; drop them.
	clean := suffix[:0]
	for _, r := range suffix {
		if r.Op != OpCheckpoint {
			clean = append(clean, r)
		}
	}
	suffix = clean

	if baseSeq > 0 {
		header, body, cerr := loadSnapshot(fsys, s.ckptPath(), baseSeq, workers)
		if cerr != nil {
			header, body, err = loadSnapshot(fsys, s.prevPath(), baseSeq, workers)
			if err != nil {
				f.Close()
				return nil, res, fmt.Errorf("%w: seq %d (.ckpt: %v; .ckpt.1: %v)",
					ErrSnapshotMismatch, baseSeq, cerr, err)
			}
			res.UsedFallback = true
			// Promote the fallback so the on-disk invariant — .ckpt
			// matches the WAL anchor — holds again.
			fsys.Remove(s.ckptPath())
			if err := fsys.Rename(s.prevPath(), s.ckptPath()); err != nil {
				f.Close()
				return nil, res, err
			}
		}
		res.Seq = baseSeq
		res.NextLease = header.NextLease
		res.SnapshotRecords = len(body)
		res.Records = append(body, suffix...)
		s.seq, s.ckptSeq = baseSeq, baseSeq
	} else {
		// No anchor: the whole WAL is the history. If the WAL decayed
		// to nothing while a valid snapshot sits next to it, the anchor
		// frame itself was destroyed — refuse to silently reset.
		if len(walRecs) == 0 && walRec.Truncated {
			if data, err := readFile(fsys, s.ckptPath()); err == nil {
				if _, _, perr := parseSnapshot(data, workers); perr == nil {
					f.Close()
					return nil, res, ErrWALAnchorLost
				}
			}
		}
		res.Records = suffix
	}

	// Drop any corrupt tail and position at the clean end.
	if err := f.Truncate(walRec.GoodBytes); err != nil {
		f.Close()
		return nil, res, err
	}
	if _, err := f.Seek(walRec.GoodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, res, err
	}
	s.walBytes = walRec.GoodBytes
	return s, res, nil
}

// Base returns the store's WAL path.
func (s *Store) Base() string { return s.base }

// Seq returns the snapshot sequence the live WAL is anchored to.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// WALBytes returns the current WAL size, for size-triggered
// checkpoints.
func (s *Store) WALBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walBytes
}

// Append frames and writes one record to the WAL. Like
// Journal.Append, the write is process-crash durable; call Sync for
// power-failure durability.
//
// A failed write is rolled back: the WAL is truncated to the last
// whole frame, so one torn append cannot strand every later record
// behind an undecodable frame. When even the rollback fails, the torn
// bytes stay (replay truncates them on the next open) and the error
// reports both failures.
func (s *Store) Append(r Record) error {
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	buf, err := appendFrame(*bp, r)
	*bp = buf[:0]
	if err != nil {
		return err
	}
	_, err = s.writeBuf(buf, false)
	return err
}

// writeBuf writes one pre-framed buffer as one contiguous write under
// the append lock, with the same rollback-on-failure contract as
// Append, optionally followed by an fsync. An fsync failure is
// reported as a *syncError so callers can tell "in the file but
// unconfirmed" from "rolled back".
func (s *Store) writeBuf(buf []byte, sync bool) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	n, err := s.f.Write(buf)
	if err != nil {
		if n > 0 {
			if terr := s.f.Truncate(s.walBytes); terr != nil {
				s.walBytes += int64(n)
				return n, fmt.Errorf("journal: torn append not rolled back (%v): %w", terr, err)
			}
			if _, serr := s.f.Seek(s.walBytes, io.SeekStart); serr != nil {
				return 0, fmt.Errorf("journal: seek after rollback (%v): %w", serr, err)
			}
		}
		return 0, err
	}
	s.walBytes += int64(n)
	if sync {
		if err := s.f.Sync(); err != nil {
			return n, &syncError{err}
		}
	}
	return n, nil
}

// Sync flushes the WAL to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.f.Sync()
}

// Close syncs and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	serr := s.f.Sync()
	cerr := s.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// writeStream writes a fresh journal-format file at path: magic plus
// the given records, fsynced. The returned file is open for appending.
func (s *Store) writeStream(path string, recs []Record) (faults.File, error) {
	f, err := s.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (faults.File, error) {
		f.Close()
		s.fs.Remove(path)
		return nil, err
	}
	if _, err := f.Write(Magic); err != nil {
		return fail(err)
	}
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	for _, r := range recs {
		frame, err := appendFrame((*bp)[:0], r)
		if err != nil {
			return fail(err)
		}
		if _, err := f.Write(frame); err != nil {
			return fail(err)
		}
		*bp = frame[:0]
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	return f, nil
}

// Checkpoint snapshots the live state and truncates the WAL. The
// caller supplies the live leases as alloc records plus the lease-ID
// floor; the capture callback runs under the store's append lock, so
// the snapshot and the WAL cannot disagree. On error the store keeps
// appending to the old WAL and the old snapshot pair stays
// recoverable; a later Checkpoint retries the whole protocol.
func (s *Store) Checkpoint(capture func() (live []Record, nextLease uint64, err error)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	live, nextLease, err := capture()
	if err != nil {
		return err
	}
	seq := s.seq + 1
	header := Record{Op: OpCheckpoint, Seq: seq, Count: len(live), NextLease: nextLease}

	// 1. Durable snapshot at a temp name.
	tmp := s.base + ".ckpt.tmp"
	sf, err := s.writeStream(tmp, append([]Record{header}, live...))
	if err != nil {
		return fmt.Errorf("journal: writing snapshot: %w", err)
	}
	sf.Close()

	// 2. Preserve the WAL's current anchor snapshot, if .ckpt is it. A
	// stale .ckpt (left by a checkpoint that failed between publishing
	// the snapshot and truncating the WAL) is overwritten instead: the
	// fallback slot keeps the one that matches the live WAL.
	if s.ckptSeq == s.seq && s.seq > 0 {
		if _, err := s.fs.Stat(s.ckptPath()); err == nil {
			if err := s.fs.Rename(s.ckptPath(), s.prevPath()); err != nil {
				s.fs.Remove(tmp)
				return fmt.Errorf("journal: rotating snapshot: %w", err)
			}
		}
	}
	// 3. Publish.
	if err := s.fs.Rename(tmp, s.ckptPath()); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("journal: publishing snapshot: %w", err)
	}
	s.ckptSeq = seq

	// 4. Truncate the WAL: fresh file anchored to the new snapshot,
	// renamed over the old log. The open handle survives the rename.
	walTmp := s.base + ".wal.tmp"
	wf, err := s.writeStream(walTmp, []Record{{Op: OpCheckpoint, Seq: seq}})
	if err != nil {
		return fmt.Errorf("journal: writing compacted WAL: %w", err)
	}
	if err := s.fs.Rename(walTmp, s.base); err != nil {
		wf.Close()
		s.fs.Remove(walTmp)
		return fmt.Errorf("journal: swapping WAL: %w", err)
	}
	s.f.Close()
	s.f = wf
	s.seq = seq
	st, err := wf.Stat()
	if err != nil {
		return err
	}
	s.walBytes = st.Size()
	return nil
}
