package journal

// Zero-allocation record encoding. The WAL append sits on the daemon's
// /alloc hot path — every acknowledged placement pays one record encode
// — so the JSON payload and the frame around it are built by hand into
// pooled buffers instead of through encoding/json and fresh slices.
//
// Replay still decodes with encoding/json: the hand encoder emits the
// same fields in the same order with the same omitempty behaviour as
// json.Marshal(Record) did, and TestAppendRecordJSONMatchesMarshal pins
// that equivalence byte-for-byte, so journals written by any version
// replay identically.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"hetmem/internal/jsonenc"
)

// framePool recycles frame build buffers across appends. Buffers start
// at 512 bytes — enough for any single-segment alloc record — and grow
// as records demand.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

func getFrameBuf() *[]byte  { return framePool.Get().(*[]byte) }
func putFrameBuf(b *[]byte) { *b = (*b)[:0]; framePool.Put(b) }

// appendRecordJSON appends r's JSON payload, reproducing
// json.Marshal(Record): declaration-order fields, omitempty semantics,
// op and lease always present.
func appendRecordJSON(dst []byte, r Record) []byte {
	dst = append(dst, '{')
	dst = jsonenc.AppendKey(dst, "op")
	dst = jsonenc.AppendUint(dst, uint64(r.Op))
	dst = jsonenc.AppendKey(dst, "lease")
	dst = jsonenc.AppendUint(dst, r.Lease)
	if r.Name != "" {
		dst = jsonenc.AppendKey(dst, "name")
		dst = jsonenc.AppendString(dst, r.Name)
	}
	if r.Attr != "" {
		dst = jsonenc.AppendKey(dst, "attr")
		dst = jsonenc.AppendString(dst, r.Attr)
	}
	if r.Initiator != "" {
		dst = jsonenc.AppendKey(dst, "initiator")
		dst = jsonenc.AppendString(dst, r.Initiator)
	}
	if r.Key != "" {
		dst = jsonenc.AppendKey(dst, "key")
		dst = jsonenc.AppendString(dst, r.Key)
	}
	if r.Size != 0 {
		dst = jsonenc.AppendKey(dst, "size")
		dst = jsonenc.AppendUint(dst, r.Size)
	}
	if r.Tenant != "" {
		dst = jsonenc.AppendKey(dst, "tenant")
		dst = jsonenc.AppendString(dst, r.Tenant)
	}
	if r.TTLMillis != 0 {
		dst = jsonenc.AppendKey(dst, "ttl_ms")
		dst = jsonenc.AppendUint(dst, r.TTLMillis)
	}
	if len(r.Segments) > 0 {
		dst = jsonenc.AppendKey(dst, "segments")
		dst = append(dst, '[')
		for i, seg := range r.Segments {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, '{')
			dst = jsonenc.AppendKey(dst, "node")
			dst = jsonenc.AppendInt(dst, int64(seg.NodeOS))
			dst = jsonenc.AppendKey(dst, "bytes")
			dst = jsonenc.AppendUint(dst, seg.Bytes)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if r.Origin != "" {
		dst = jsonenc.AppendKey(dst, "origin")
		dst = jsonenc.AppendString(dst, r.Origin)
	}
	if r.Seq != 0 {
		dst = jsonenc.AppendKey(dst, "seq")
		dst = jsonenc.AppendUint(dst, r.Seq)
	}
	if r.Count != 0 {
		dst = jsonenc.AppendKey(dst, "count")
		dst = jsonenc.AppendInt(dst, int64(r.Count))
	}
	if r.NextLease != 0 {
		dst = jsonenc.AppendKey(dst, "next")
		dst = jsonenc.AppendUint(dst, r.NextLease)
	}
	return append(dst, '}')
}

// appendFrame appends one framed record — length, CRC, payload — to
// dst. The payload is encoded in place (after the 8 reserved header
// bytes), so one buffer serves the whole frame.
func appendFrame(dst []byte, r Record) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header, filled below
	dst = appendRecordJSON(dst, r)
	payload := dst[start+8:]
	if len(payload) > MaxRecordBytes {
		return dst[:start], fmt.Errorf("journal: record over %d bytes", MaxRecordBytes)
	}
	binary.LittleEndian.PutUint32(dst[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:start+8], crc32.ChecksumIEEE(payload))
	return dst, nil
}
