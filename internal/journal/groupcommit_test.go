package journal_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hetmem/internal/faults"
	"hetmem/internal/journal"
)

// TestGroupCommitCoalesces: many concurrent AppendDurable calls must
// land in far fewer flushes than records, every record must replay,
// and the onFlush batch sizes must account for every record exactly
// once.
func TestGroupCommitCoalesces(t *testing.T) {
	base := filepath.Join(t.TempDir(), "wal")
	s, _, err := journal.OpenStore(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var flushes, batched int
	s.EnableGroupCommit(journal.DefaultGroupBatch, journal.DefaultGroupLinger, func(n int) {
		mu.Lock()
		flushes++
		batched += n
		mu.Unlock()
	})

	const writers = 64
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			appended, err := s.AppendDurable(allocRec(uint64(i+1), 4096))
			if err != nil {
				errs[i] = err
			} else if !appended {
				errs[i] = errors.New("appended=false without error")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if batched != writers {
		t.Fatalf("onFlush accounted %d records, want %d", batched, writers)
	}
	if flushes >= writers {
		t.Fatalf("%d flushes for %d records: nothing coalesced", flushes, writers)
	}
	t.Logf("%d records in %d flushes", writers, flushes)

	_, res, err := journal.OpenStore(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != writers {
		t.Fatalf("replayed %d records, want %d", len(res.Records), writers)
	}
	seen := map[uint64]bool{}
	for _, r := range res.Records {
		if seen[r.Lease] {
			t.Fatalf("lease %d replayed twice", r.Lease)
		}
		seen[r.Lease] = true
	}
}

// TestGroupCommitSyncFailure: when the shared fsync fails, every
// waiter in the batch must see appended=true (the records are in the
// file and will replay) plus the sync error.
func TestGroupCommitSyncFailure(t *testing.T) {
	base := filepath.Join(t.TempDir(), "wal")
	ffs := faults.NewFaultFS(faults.OS, 1)
	s, _, err := journal.OpenStore(base, ffs)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableGroupCommit(8, time.Millisecond, nil)
	ffs.FailSyncs(1)

	appended, err := s.AppendDurable(allocRec(1, 4096))
	if !errors.Is(err, faults.ErrInjectedSync) {
		t.Fatalf("err = %v, want injected sync failure", err)
	}
	if !appended {
		t.Fatalf("appended=false after a sync-only failure: the record IS in the file")
	}
	s.Close()

	_, res, err := journal.OpenStore(base, faults.OS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].Lease != 1 {
		t.Fatalf("the sync-failed record must replay, got %v", res.Records)
	}
}

// TestGroupCommitWriteFailure: a failed write must roll the whole
// batch back — appended=false for every waiter and nothing replays.
func TestGroupCommitWriteFailure(t *testing.T) {
	base := filepath.Join(t.TempDir(), "wal")
	ffs := faults.NewFaultFS(faults.OS, 1)
	s, _, err := journal.OpenStore(base, ffs)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableGroupCommit(8, time.Millisecond, nil)
	ffs.FailWrites(1)

	appended, err := s.AppendDurable(allocRec(1, 4096))
	if err == nil {
		t.Fatalf("write failure must surface an error")
	}
	if appended {
		t.Fatalf("appended=true after a failed write: the record is NOT in the file")
	}
	s.Close()

	_, res, err := journal.OpenStore(base, faults.OS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("rolled-back batch replayed %d records", len(res.Records))
	}
}

// TestGroupCommitInterleavesWithCheckpoint: durable appends racing a
// checkpoint/compaction must lose no records.
func TestGroupCommitInterleavesWithCheckpoint(t *testing.T) {
	base := filepath.Join(t.TempDir(), "wal")
	s, _, err := journal.OpenStore(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableGroupCommit(journal.DefaultGroupBatch, 100*time.Microsecond, nil)

	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lease := uint64(w*perWriter + i + 1)
				if _, err := s.AppendDurable(allocRec(lease, 4096)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			// Checkpoint an empty live set: compaction rewrites the base
			// and truncates the WAL; appends in flight must survive into
			// either the snapshot or the fresh WAL.
			if err := s.Checkpoint(func() ([]journal.Record, uint64, error) {
				return nil, 0, nil
			}); err != nil {
				t.Errorf("checkpoint %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Nothing asserts the exact surviving count: checkpoints were taken
	// with an empty live set, deliberately discarding already-appended
	// records. What must hold is that the store reopens cleanly and the
	// records appended AFTER the last checkpoint replay in order.
	_, res, err := journal.OpenStore(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, r := range res.Records {
		if seen[r.Lease] {
			t.Fatalf("lease %d replayed twice", r.Lease)
		}
		seen[r.Lease] = true
	}
}

// TestAppendBatch: one call persists every record in order with a
// single write, and a reopened store replays them all.
func TestAppendBatch(t *testing.T) {
	base := filepath.Join(t.TempDir(), "wal")
	s, _, err := journal.OpenStore(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]journal.Record, 10)
	for i := range recs {
		recs[i] = allocRec(uint64(i+1), 4096)
	}
	appended, err := s.AppendBatch(recs, true)
	if err != nil || !appended {
		t.Fatalf("AppendBatch: appended=%v err=%v", appended, err)
	}
	if appended, err := s.AppendBatch(nil, true); appended || err != nil {
		t.Fatalf("empty batch: appended=%v err=%v, want false/nil", appended, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, res, err := journal.OpenStore(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(res.Records), len(recs))
	}
	for i, r := range res.Records {
		if r.Lease != uint64(i+1) {
			t.Fatalf("record %d: lease %d, want %d (order must be preserved)", i, r.Lease, i+1)
		}
	}
}

// TestAppendBatchTornWrite: a torn batch write must roll back to the
// last whole frame — recovery replays a prefix of the batch, never a
// corrupt tail.
func TestAppendBatchTornWrite(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := filepath.Join(t.TempDir(), "wal")
			ffs := faults.NewFaultFS(faults.OS, seed)
			s, _, err := journal.OpenStore(base, ffs)
			if err != nil {
				t.Fatal(err)
			}
			recs := make([]journal.Record, 8)
			for i := range recs {
				recs[i] = allocRec(uint64(i+1), 4096)
			}
			ffs.ShortWrites(1)
			appended, err := s.AppendBatch(recs, true)
			if err == nil {
				t.Fatalf("torn write must error")
			}
			if appended {
				t.Fatalf("appended=true after a torn write that was rolled back")
			}
			s.Close()

			_, res, err := journal.OpenStore(base, faults.OS)
			if err != nil {
				t.Fatal(err)
			}
			// The store rolls a torn batch back to the pre-batch length,
			// so recovery must see an empty, uncorrupted journal.
			if len(res.Records) != 0 {
				t.Fatalf("seed %d: torn batch left %d records", seed, len(res.Records))
			}
		})
	}
}
