package journal_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"hetmem/internal/journal"
)

// frame encodes one record the way Append does, for seeding the fuzzer.
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// FuzzJournalReplay feeds arbitrary bytes to the WAL decoder. Replay
// must never panic, must never report a recovery point past the input,
// and the clean prefix it reports must itself replay cleanly with the
// same record count — the invariant crash recovery depends on.
func FuzzJournalReplay(f *testing.F) {
	valid := append([]byte(nil), journal.Magic...)
	valid = append(valid, frame([]byte(`{"op":1,"lease":1,"name":"a","size":4096,"segments":[{"node":0,"bytes":4096}]}`))...)
	valid = append(valid, frame([]byte(`{"op":2,"lease":1}`))...)

	f.Add([]byte{})
	f.Add(append([]byte(nil), journal.Magic...))
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                              // torn tail
	f.Add(append(append([]byte(nil), valid...), 0, 0, 0, 0)) // trailing garbage header
	f.Add([]byte("HMWJ1\nnot a frame at all"))
	huge := append([]byte(nil), journal.Magic...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // absurd length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, rec, err := journal.Replay(bytes.NewReader(data))
		if err != nil {
			// Only the not-a-journal error is allowed, and it must come
			// with an empty result.
			if len(recs) != 0 {
				t.Fatalf("error %v with %d records", err, len(recs))
			}
			return
		}
		if rec.GoodBytes > int64(len(data)) {
			t.Fatalf("recovery point %d past input length %d", rec.GoodBytes, len(data))
		}
		if rec.Records != len(recs) {
			t.Fatalf("recovery reports %d records, replay returned %d", rec.Records, len(recs))
		}
		if len(recs) > 0 && rec.GoodBytes <= int64(len(journal.Magic)) {
			t.Fatalf("recovered %d records but recovery point %d is before any frame", len(recs), rec.GoodBytes)
		}
		// The reported clean prefix must replay cleanly and identically.
		recs2, rec2, err2 := journal.Replay(bytes.NewReader(data[:rec.GoodBytes]))
		if err2 != nil {
			t.Fatalf("clean prefix failed to replay: %v", err2)
		}
		if rec2.Truncated || len(recs2) != len(recs) || rec2.GoodBytes != rec.GoodBytes {
			t.Fatalf("clean prefix replay diverged: %+v vs %+v", rec2, rec)
		}
	})
}
