package journal_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hetmem/internal/journal"
)

// frame encodes one record the way Append does, for seeding the fuzzer.
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// FuzzJournalReplay feeds arbitrary bytes to the WAL decoder. Replay
// must never panic, must never report a recovery point past the input,
// and the clean prefix it reports must itself replay cleanly with the
// same record count — the invariant crash recovery depends on. At
// every input, ReplayParallel must agree with Replay byte for byte:
// same records, same Recovery (GoodBytes, Truncated, Reason), same
// error — the equivalence that lets a restart pick either decoder.
func FuzzJournalReplay(f *testing.F) {
	valid := append([]byte(nil), journal.Magic...)
	valid = append(valid, frame([]byte(`{"op":1,"lease":1,"name":"a","size":4096,"segments":[{"node":0,"bytes":4096}]}`))...)
	valid = append(valid, frame([]byte(`{"op":2,"lease":1}`))...)

	// A compacted WAL: checkpoint anchor record, then a suffix.
	compacted := append([]byte(nil), journal.Magic...)
	compacted = append(compacted, frame([]byte(`{"op":4,"seq":3}`))...)
	compacted = append(compacted, frame([]byte(`{"op":2,"lease":7}`))...)
	// A snapshot stream: checkpoint header with count and lease floor,
	// then the live-lease alloc records it promises.
	snapshot := append([]byte(nil), journal.Magic...)
	snapshot = append(snapshot, frame([]byte(`{"op":4,"seq":3,"count":1,"next":9}`))...)
	snapshot = append(snapshot, frame([]byte(`{"op":1,"lease":7,"size":4096,"segments":[{"node":0,"bytes":4096}]}`))...)

	f.Add([]byte{})
	f.Add(append([]byte(nil), journal.Magic...))
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                              // torn tail
	f.Add(append(append([]byte(nil), valid...), 0, 0, 0, 0)) // trailing garbage header
	f.Add([]byte("HMWJ1\nnot a frame at all"))
	huge := append([]byte(nil), journal.Magic...)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // absurd length
	f.Add(huge)
	f.Add(compacted)
	f.Add(compacted[:len(compacted)-3]) // torn compacted suffix
	f.Add(snapshot)
	badCkpt := append([]byte(nil), journal.Magic...)
	badCkpt = append(badCkpt, frame([]byte(`{"op":4}`))...) // checkpoint without a sequence
	f.Add(badCkpt)
	// Mid-checkpoint crash: a compaction that died between snapshot
	// publication and WAL truncation leaves a checkpoint marker
	// mid-stream with live frames after it.
	midCkpt := append(append([]byte(nil), valid...), frame([]byte(`{"op":4,"seq":5}`))...)
	midCkpt = append(midCkpt, frame([]byte(`{"op":1,"lease":9,"size":64,"segments":[{"node":1,"bytes":64}]}`))...)
	f.Add(midCkpt)
	// Corruption followed by VALID frames: a parallel decoder decodes
	// the tail frames happily, and only the in-order merge may keep
	// them out of the result.
	corruptMid := append([]byte(nil), midCkpt...)
	corruptMid[len(valid)+10] ^= 0x01
	f.Add(corruptMid)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, rec, err := journal.Replay(bytes.NewReader(data))

		// Parallel replay must agree exactly, at more than one width.
		for _, workers := range []int{2, 5} {
			precs, prec, perr := journal.ReplayParallel(data, workers)
			if (perr == nil) != (err == nil) {
				t.Fatalf("workers=%d error %v, sequential error %v", workers, perr, err)
			}
			if !reflect.DeepEqual(precs, recs) {
				t.Fatalf("workers=%d records diverged: %d vs %d", workers, len(precs), len(recs))
			}
			if prec != rec {
				t.Fatalf("workers=%d recovery diverged: %+v vs %+v", workers, prec, rec)
			}
		}

		if err != nil {
			// Only the not-a-journal error is allowed, and it must come
			// with an empty result.
			if len(recs) != 0 {
				t.Fatalf("error %v with %d records", err, len(recs))
			}
			return
		}
		if rec.GoodBytes > int64(len(data)) {
			t.Fatalf("recovery point %d past input length %d", rec.GoodBytes, len(data))
		}
		if rec.Records != len(recs) {
			t.Fatalf("recovery reports %d records, replay returned %d", rec.Records, len(recs))
		}
		if len(recs) > 0 && rec.GoodBytes <= int64(len(journal.Magic)) {
			t.Fatalf("recovered %d records but recovery point %d is before any frame", len(recs), rec.GoodBytes)
		}
		// The reported clean prefix must replay cleanly and identically.
		recs2, rec2, err2 := journal.Replay(bytes.NewReader(data[:rec.GoodBytes]))
		if err2 != nil {
			t.Fatalf("clean prefix failed to replay: %v", err2)
		}
		if rec2.Truncated || len(recs2) != len(recs) || rec2.GoodBytes != rec.GoodBytes {
			t.Fatalf("clean prefix replay diverged: %+v vs %+v", rec2, rec)
		}
	})
}

// FuzzSnapshotRecovery throws arbitrary snapshot and WAL byte pairs at
// OpenStore. Opening must never panic, and whenever it succeeds, the
// open itself must have normalized the files: closing and reopening
// yields the same state with nothing left to repair.
func FuzzSnapshotRecovery(f *testing.F) {
	wal := func(frames ...[]byte) []byte {
		out := append([]byte(nil), journal.Magic...)
		for _, fr := range frames {
			out = append(out, frame(fr)...)
		}
		return out
	}
	allocJSON := []byte(`{"op":1,"lease":7,"size":4096,"segments":[{"node":0,"bytes":4096}]}`)
	snap := wal([]byte(`{"op":4,"seq":2,"count":1,"next":9}`), allocJSON)
	anchored := wal([]byte(`{"op":4,"seq":2}`), []byte(`{"op":2,"lease":7}`))
	plain := wal(allocJSON)

	f.Add([]byte{}, []byte{})
	f.Add(snap, anchored)
	f.Add(snap, anchored[:len(anchored)-4])      // torn WAL tail
	f.Add(snap[:len(snap)-6], anchored)          // torn snapshot
	f.Add([]byte{}, plain)                       // no snapshot at all
	f.Add(snap, plain)                           // stale snapshot beside an unanchored WAL
	f.Add(snap, wal([]byte(`{"op":4,"seq":9}`))) // anchor naming a missing sequence
	f.Add([]byte("garbage"), []byte("garbage"))

	f.Fuzz(func(t *testing.T, ckpt, walBytes []byte) {
		base := filepath.Join(t.TempDir(), "wal")
		if err := os.WriteFile(base, walBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if len(ckpt) > 0 {
			if err := os.WriteFile(base+".ckpt", ckpt, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s, res, err := journal.OpenStore(base, nil)
		if err != nil {
			return // rejected is fine; panicking or succeeding inconsistently is not
		}
		seq, n, next := res.Seq, len(res.Records), res.NextLease
		if err := s.Close(); err != nil {
			t.Fatalf("close after successful open: %v", err)
		}

		s2, res2, err := journal.OpenStore(base, nil)
		if err != nil {
			t.Fatalf("reopen after successful open: %v", err)
		}
		defer s2.Close()
		if res2.WAL.Truncated {
			t.Fatal("first open left a torn tail behind")
		}
		if res2.UsedFallback {
			t.Fatal("first open left the fallback unpromoted")
		}
		if res2.Seq != seq || len(res2.Records) != n || res2.NextLease != next {
			t.Fatalf("reopen diverged: seq %d/%d, records %d/%d, next %d/%d",
				res2.Seq, seq, len(res2.Records), n, res2.NextLease, next)
		}
	})
}
