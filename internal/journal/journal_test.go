package journal_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hetmem/internal/journal"
)

func sampleRecords() []journal.Record {
	return []journal.Record{
		{Op: journal.OpAlloc, Lease: 1, Name: "hot", Attr: "Bandwidth", Initiator: "0-15", Key: "k1",
			Size: 1 << 30, Segments: []journal.Segment{{NodeOS: 4, Bytes: 1 << 30}}},
		{Op: journal.OpAlloc, Lease: 2, Name: "big", Attr: "Capacity",
			Size: 3 << 30, Segments: []journal.Segment{{NodeOS: 0, Bytes: 1 << 30}, {NodeOS: 1, Bytes: 2 << 30}}},
		{Op: journal.OpMigrate, Lease: 1, Segments: []journal.Segment{{NodeOS: 0, Bytes: 1 << 30}}},
		{Op: journal.OpFree, Lease: 2},
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, recs, rec, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || rec.Records != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := sampleRecords()
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journal.Record{Op: journal.OpFree, Lease: 1}); !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}

	_, got, rec2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if rec2.Records != len(want) || rec2.Truncated {
		t.Fatalf("recovery: %+v", rec2)
	}
}

func TestTornTailIsDroppedCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn final write: chop bytes off the end.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, rec, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated {
		t.Fatalf("recovery not marked truncated: %+v", rec)
	}
	if len(recs) != len(sampleRecords())-1 {
		t.Fatalf("recovered %d records, want %d", len(recs), len(sampleRecords())-1)
	}
	// The journal must be appendable again after tail truncation, and
	// the new record must survive a reopen.
	extra := journal.Record{Op: journal.OpFree, Lease: 1}
	if err := j2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs3, rec3, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Truncated || len(recs3) != len(sampleRecords()) {
		t.Fatalf("after repair+append: %d records, recovery %+v", len(recs3), rec3)
	}
	if !reflect.DeepEqual(recs3[len(recs3)-1], extra) {
		t.Fatalf("last record = %+v, want %+v", recs3[len(recs3)-1], extra)
	}
}

func TestCorruptPayloadStopsReplayAtCleanPoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the last record's payload.
	data[len(data)-2] ^= 0xff
	recs, rec, err := journal.Replay(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated || rec.Reason == "" {
		t.Fatalf("corruption not reported: %+v", rec)
	}
	if len(recs) != len(sampleRecords())-1 {
		t.Fatalf("replayed %d records past corruption, want %d", len(recs), len(sampleRecords())-1)
	}
	// Replaying just the clean prefix must be... clean.
	recs2, rec2, err := journal.Replay(bytes.NewReader(data[:rec.GoodBytes]))
	if err != nil || rec2.Truncated || len(recs2) != len(recs) {
		t.Fatalf("clean prefix replay: %d records, %+v, err %v", len(recs2), rec2, err)
	}
}

func TestNotAJournal(t *testing.T) {
	if _, _, err := journal.Replay(bytes.NewReader([]byte("GARBAGE FILE"))); !errors.Is(err, journal.ErrNotJournal) {
		t.Fatalf("garbage replay: %v, want ErrNotJournal", err)
	}
	// Empty input is a fresh journal, not an error.
	recs, rec, err := journal.Replay(bytes.NewReader(nil))
	if err != nil || len(recs) != 0 || rec.Truncated {
		t.Fatalf("empty replay: %v %+v", err, rec)
	}
}
