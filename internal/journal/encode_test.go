package journal

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"testing"
)

// encodeTestRecords exercises every field combination the daemon
// journals: allocs (full state, with/without TTL, key, multi-segment),
// frees (lease only), migrates, and checkpoint headers/anchors.
var encodeTestRecords = []Record{
	{Op: OpAlloc, Lease: 1, Name: "buf-a", Attr: "bandwidth", Initiator: "0-3",
		Size: 4096, Segments: []Segment{{NodeOS: 0, Bytes: 4096}}},
	{Op: OpAlloc, Lease: 42, Name: "multi", Attr: "latency", Initiator: "0",
		Key: "idem-key-1", Size: 1 << 20, TTLMillis: 30000,
		Segments: []Segment{{NodeOS: 0, Bytes: 512 << 10}, {NodeOS: 4, Bytes: 512 << 10}}},
	{Op: OpAlloc, Lease: 7, Name: `weird "name"\with\escapes` + "\n\t\x01", Attr: "capacity",
		Initiator: "0-63", Size: 1, Segments: []Segment{{NodeOS: 12, Bytes: 1}}},
	{Op: OpAlloc, Lease: 9, Name: "tenanted", Attr: "capacity", Tenant: "team-a",
		Size: 4096, Segments: []Segment{{NodeOS: 2, Bytes: 4096}}},
	{Op: OpFree, Lease: 42},
	{Op: OpMigrate, Lease: 7, Segments: []Segment{{NodeOS: 2, Bytes: 1}}},
	{Op: OpMigrate, Lease: 7, Attr: "Latency", Origin: OriginAdvisor,
		Segments: []Segment{{NodeOS: 0, Bytes: 1}}},
	{Op: OpCheckpoint, Seq: 3, Count: 17, NextLease: 99},
	{Op: OpCheckpoint, Seq: 5},
	{Op: OpAlloc, Lease: ^uint64(0), Name: "max", Size: ^uint64(0),
		Segments: []Segment{{NodeOS: -1, Bytes: ^uint64(0)}}},
}

// TestAppendRecordJSONMatchesMarshal pins the hand-rolled record
// encoding against encoding/json byte-for-byte: any divergence would
// change the on-disk WAL format.
func TestAppendRecordJSONMatchesMarshal(t *testing.T) {
	for _, r := range encodeTestRecords {
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		got := appendRecordJSON(nil, r)
		if string(got) != string(want) {
			t.Errorf("record %+v:\n  hand: %s\n  json: %s", r, got, want)
		}
	}
}

func TestAppendFrameRoundTrip(t *testing.T) {
	for _, r := range encodeTestRecords {
		frame, err := appendFrame(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		payload := frame[8:]
		if int(length) != len(payload) {
			t.Fatalf("frame length %d, payload %d", length, len(payload))
		}
		if crc32.ChecksumIEEE(payload) != sum {
			t.Fatalf("frame CRC mismatch for %+v", r)
		}
		var back Record
		if err := json.Unmarshal(payload, &back); err != nil {
			t.Fatalf("payload does not decode: %v", err)
		}
	}
}

func TestAppendFrameZeroAlloc(t *testing.T) {
	r := Record{Op: OpAlloc, Lease: 12345, Name: "bench-buf", Attr: "bandwidth",
		Initiator: "0-31", Size: 1 << 20, TTLMillis: 60000,
		Segments: []Segment{{NodeOS: 0, Bytes: 1 << 20}}}
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(200, func() {
		f, err := appendFrame(buf[:0], r)
		if err != nil {
			t.Fatal(err)
		}
		buf = f[:0]
	})
	if allocs != 0 {
		t.Fatalf("appendFrame allocated %.1f times per run, want 0", allocs)
	}
}
