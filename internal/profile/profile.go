// Package profile is the reproduction's stand-in for the Intel VTune
// Profiler Memory Access analysis used in the paper's Section VI-B.
// It turns the simulator's hardware counters into
//
//   - an execution summary in the shape of Table IV — DRAM Bound and
//     PMem Bound as a percentage of clockticks, DRAM/PMem Bandwidth
//     Bound as a percentage of elapsed time, with indicator flags for
//     latency- and bandwidth-sensitivity;
//   - a hot-object report in the shape of Figure 7 — buffers ranked by
//     LLC miss count, with their placement, load/store counts and the
//     random share of their misses;
//   - a per-phase bandwidth timeline.
//
// Counter semantics note (recorded in EXPERIMENTS.md): VTune's "DRAM
// Bound" metric counts cycles stalled on the memory subsystem beyond
// the LLC — which is why the paper's Graph500-on-NVDIMM row shows both
// DRAM Bound 63% and PMem Bound 60.9%. We reproduce that overlapping
// semantics: DRAMBound counts stalls on *any* main memory, PMemBound
// only those on persistent memory.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"hetmem/internal/memsim"
)

// Summary is the Table IV row for one run.
//
// The JSON tags are a stable schema shared by every programmatic
// surface — the repro/membench CLIs and the daemon's /v1/advisor API
// all emit this one shape. The Render* functions below remain the
// human-facing text renderers; new tooling should consume the JSON.
type Summary struct {
	Elapsed    float64 `json:"elapsed_seconds"`
	CPUSeconds float64 `json:"cpu_seconds"`

	// DRAMBoundPct is the share of clockticks stalled on any main
	// memory (VTune "DRAM Bound" semantics, see package comment).
	DRAMBoundPct float64 `json:"dram_bound_pct"`
	// PMemBoundPct is the share of clockticks stalled on persistent
	// memory.
	PMemBoundPct float64 `json:"pmem_bound_pct"`

	// BWBoundPct maps each memory kind to the share of elapsed time
	// spent saturating that kind's bandwidth.
	BWBoundPct map[string]float64 `json:"bw_bound_pct,omitempty"`

	// LatencySensitive and BandwidthSensitive are the indicator flags
	// the paper reads off the VTune summary.
	LatencySensitive   bool `json:"latency_sensitive"`
	BandwidthSensitive bool `json:"bandwidth_sensitive"`
	// BandwidthKind is the kind whose bandwidth flag fired ("" when
	// none).
	BandwidthKind string `json:"bandwidth_kind,omitempty"`
}

// DRAMBWBoundPct and PMemBWBoundPct return the Table IV bandwidth
// columns.
func (s Summary) DRAMBWBoundPct() float64 { return s.BWBoundPct["DRAM"] }

// PMemBWBoundPct returns the persistent-memory bandwidth-bound share.
func (s Summary) PMemBWBoundPct() float64 {
	var v float64
	for kind, pct := range s.BWBoundPct {
		if memsim.IsPMem(kind) {
			v += pct
		}
	}
	return v
}

// Thresholds for the indicator flags.
const (
	bwFlagPct        = 30.0
	latStallPct      = 15.0
	latBWQuietPct    = 15.0
	randomShareSplit = 0.5 // above: misses are irregular -> latency-critical
)

// Summarize computes the execution summary from engine statistics.
func Summarize(st memsim.Stats) Summary {
	s := Summary{
		Elapsed:    st.Elapsed,
		CPUSeconds: st.CPUSeconds,
		BWBoundPct: make(map[string]float64),
	}
	if st.Elapsed <= 0 {
		return s
	}
	var allStall, pmemStall float64
	for kind, sec := range st.StallSeconds {
		allStall += sec
		if memsim.IsPMem(kind) {
			pmemStall += sec
		}
	}
	s.DRAMBoundPct = 100 * allStall / st.Elapsed
	s.PMemBoundPct = 100 * pmemStall / st.Elapsed

	var maxBW float64
	for kind, sec := range st.BWBoundSeconds {
		pct := 100 * sec / st.Elapsed
		s.BWBoundPct[kind] = pct
		if pct > maxBW {
			maxBW = pct
			s.BandwidthKind = kind
		}
	}
	if maxBW >= bwFlagPct {
		s.BandwidthSensitive = true
	} else {
		s.BandwidthKind = ""
	}
	if !s.BandwidthSensitive && s.DRAMBoundPct >= latStallPct && maxBW < latBWQuietPct {
		s.LatencySensitive = true
	}
	return s
}

// ObjectReport is one row of the Figure 7 hot-object list. Like
// Summary, its JSON tags are the stable schema shared by the CLIs and
// the daemon's lease/advisor API.
type ObjectReport struct {
	Name      string `json:"name"`
	Placement string `json:"placement"`
	Size      uint64 `json:"size"`
	LLCMisses uint64 `json:"llc_misses"`
	Loads     uint64 `json:"loads"`
	Stores    uint64 `json:"stores"`
	// RandomShare is the fraction of LLC misses caused by irregular
	// accesses: close to 1 for latency-critical buffers (graph
	// indirection arrays), close to 0 for streaming buffers.
	RandomShare float64 `json:"random_share"`
}

// Sensitivity classifies the buffer the way an analyst reads Figure 7:
// "Latency" when most misses are irregular, "Bandwidth" when the
// buffer streams, "None" when it barely misses.
func (o ObjectReport) Sensitivity() string {
	if o.LLCMisses == 0 {
		return "None"
	}
	if o.RandomShare >= randomShareSplit {
		return "Latency"
	}
	return "Bandwidth"
}

// HotObjects returns the live buffers ranked by LLC misses,
// descending — the "memory objects ordered by importance" view of the
// VTune Memory Access analysis.
func HotObjects(m *memsim.Machine) []ObjectReport {
	var out []ObjectReport
	for _, b := range m.Buffers() {
		r := ObjectReport{
			Name:      b.Name,
			Placement: b.NodeNames(),
			Size:      b.Size,
			LLCMisses: b.LLCMisses,
			Loads:     b.Loads,
			Stores:    b.Stores,
		}
		if b.LLCMisses > 0 {
			r.RandomShare = float64(b.RandomMisses) / float64(b.LLCMisses)
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].LLCMisses > out[j].LLCMisses })
	return out
}

// ObjectReportDelta builds one hot-object row from the difference of
// two telemetry snapshots of the same buffer — the incremental,
// per-lease form of HotObjects used by the daemon's tiering advisor,
// which samples counters over an interval instead of reading
// whole-machine cumulative totals. prev may be the zero value for the
// first sample.
func ObjectReportDelta(name, placement string, size uint64, prev, cur memsim.Telemetry) ObjectReport {
	r := ObjectReport{
		Name:      name,
		Placement: placement,
		Size:      size,
		LLCMisses: cur.LLCMisses - prev.LLCMisses,
		Loads:     cur.Loads - prev.Loads,
		Stores:    cur.Stores - prev.Stores,
	}
	if r.LLCMisses > 0 {
		r.RandomShare = float64(cur.RandomMisses-prev.RandomMisses) / float64(r.LLCMisses)
	}
	return r
}

// TimelineEntry is one phase of the bandwidth timeline (the graph part
// of Figure 7).
type TimelineEntry struct {
	Phase      string
	Seconds    float64
	AchievedBW float64
	BoundKind  string
}

// Timeline extracts the per-phase bandwidth sequence.
func Timeline(st memsim.Stats) []TimelineEntry {
	out := make([]TimelineEntry, 0, len(st.Phases))
	for _, p := range st.Phases {
		out = append(out, TimelineEntry{Phase: p.Name, Seconds: p.Seconds, AchievedBW: p.AchievedBW, BoundKind: p.BoundKind})
	}
	return out
}

// RenderSummary formats summaries as the Table IV layout.
func RenderSummary(rows map[string]Summary) string {
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %12s %12s %16s %16s  %s\n", "Run", "DRAM Bound", "PMem Bound", "DRAM BW Bound", "PMem BW Bound", "Flags")
	for _, n := range names {
		s := rows[n]
		var flags []string
		if s.LatencySensitive {
			flags = append(flags, "latency-sensitive")
		}
		if s.BandwidthSensitive {
			flags = append(flags, "bandwidth-sensitive("+s.BandwidthKind+")")
		}
		fmt.Fprintf(&sb, "%-28s %11.1f%% %11.1f%% %15.1f%% %15.1f%%  %s\n",
			n, s.DRAMBoundPct, s.PMemBoundPct, s.DRAMBWBoundPct(), s.PMemBWBoundPct(), strings.Join(flags, ","))
	}
	return sb.String()
}

// RenderObjects formats the hot-object list like Figure 7's table.
func RenderObjects(objs []ObjectReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-18s %14s %14s %14s %8s  %s\n", "Object", "Placement", "LLC Misses", "Loads", "Stores", "Random", "Sensitivity")
	for _, o := range objs {
		fmt.Fprintf(&sb, "%-14s %-18s %14d %14d %14d %7.0f%%  %s\n",
			o.Name, o.Placement, o.LLCMisses, o.Loads, o.Stores, 100*o.RandomShare, o.Sensitivity())
	}
	return sb.String()
}

// RenderTimeline draws the per-phase bandwidth sequence as a compact
// horizontal bar chart — the textual cousin of Figure 7's bandwidth
// graphs. Bars scale to the highest achieved bandwidth.
func RenderTimeline(entries []TimelineEntry) string {
	var max float64
	for _, e := range entries {
		if e.AchievedBW > max {
			max = e.AchievedBW
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s %10s  %s\n", "Phase", "seconds", "GiB/s", "bandwidth")
	for _, e := range entries {
		bar := ""
		if max > 0 {
			n := int(e.AchievedBW / max * 40)
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&sb, "%-16s %10.3f %10.1f  %s\n", e.Phase, e.Seconds, e.AchievedBW, bar)
	}
	return sb.String()
}
