package profile

import (
	"strings"
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/graph500"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
	"hetmem/internal/stream"
)

const gib = uint64(1) << 30

func xeonMachine(t *testing.T) *memsim.Machine {
	t.Helper()
	p, err := platform.Get("xeon")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func placeOn(m *memsim.Machine, os int) func(string, uint64) (*memsim.Buffer, error) {
	return func(name string, size uint64) (*memsim.Buffer, error) {
		return m.Alloc(name, size, m.NodeByOS(os))
	}
}

// runGraph500 profiles an analytic Graph500 run placed on one node.
func runGraph500(t *testing.T, m *memsim.Machine, nodeOS int) (Summary, []ObjectReport) {
	t.Helper()
	s := graph500.Sizes(23, 16)
	bufs, err := graph500.AllocBuffers(placeOn(m, nodeOS), s)
	if err != nil {
		t.Fatal(err)
	}
	defer bufs.Free(m)
	e := memsim.NewEngine(m, bitmap.NewFromRange(0, 19))
	e.SetThreads(16)
	an := graph500.AnalyticStats(23, 16)
	graph500.RunTEPS(e, bufs, []graph500.BFSStats{an, an}, graph500.SimParams{})
	sum := Summarize(e.Stats())
	objs := HotObjects(m)
	return sum, objs
}

// runStream profiles a STREAM run placed on one node.
func runStream(t *testing.T, m *memsim.Machine, nodeOS int) Summary {
	t.Helper()
	ar, err := stream.AllocArrays(placeOn(m, nodeOS), 22*gib/3/stream.ElemBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Free(m)
	e := memsim.NewEngine(m, bitmap.NewFromRange(0, 19))
	stream.Run(e, ar, 3)
	return Summarize(e.Stats())
}

func TestTableIVShape(t *testing.T) {
	// The four Table IV rows: the flags must land where the paper's do.
	m := xeonMachine(t)

	g500DRAM, _ := runGraph500(t, m, 0)
	m.ResetCounters()
	g500NV, _ := runGraph500(t, m, 2)
	m.ResetCounters()
	strDRAM := runStream(t, m, 0)
	m.ResetCounters()
	strNV := runStream(t, m, 2)

	// Graph500 is latency-sensitive on both placements, never
	// bandwidth-bound.
	for name, s := range map[string]Summary{"g500-dram": g500DRAM, "g500-nv": g500NV} {
		if !s.LatencySensitive || s.BandwidthSensitive {
			t.Errorf("%s flags: latency=%v bandwidth=%v (want latency only); %+v", name, s.LatencySensitive, s.BandwidthSensitive, s)
		}
		if s.DRAMBWBoundPct() > 15 || s.PMemBWBoundPct() > 15 {
			t.Errorf("%s bandwidth-bound too high: %+v", name, s.BWBoundPct)
		}
	}
	// Stalls are higher on NVDIMM (63% vs 29% in the paper).
	if g500NV.DRAMBoundPct <= g500DRAM.DRAMBoundPct {
		t.Errorf("NVDIMM run should stall more: %.1f vs %.1f", g500NV.DRAMBoundPct, g500DRAM.DRAMBoundPct)
	}
	// The overlapping-counter semantics: on NVDIMM, PMem Bound tracks
	// DRAM Bound closely; on DRAM it is zero.
	if g500DRAM.PMemBoundPct != 0 {
		t.Errorf("PMem bound on a DRAM run: %.1f", g500DRAM.PMemBoundPct)
	}
	if g500NV.PMemBoundPct < g500NV.DRAMBoundPct*0.8 {
		t.Errorf("NVDIMM run PMem bound %.1f should track DRAM bound %.1f", g500NV.PMemBoundPct, g500NV.DRAMBoundPct)
	}

	// STREAM is bandwidth-sensitive, with the flag on the kind it ran on.
	if !strDRAM.BandwidthSensitive || strDRAM.BandwidthKind != "DRAM" || strDRAM.LatencySensitive {
		t.Errorf("stream-dram flags wrong: %+v", strDRAM)
	}
	if !strNV.BandwidthSensitive || strNV.BandwidthKind != "NVDIMM" {
		t.Errorf("stream-nv flags wrong: %+v", strNV)
	}
	// Paper: DRAM Bandwidth Bound 80.4% on the DRAM run.
	if strDRAM.DRAMBWBoundPct() < 50 {
		t.Errorf("stream-dram DRAM BW bound = %.1f, want high", strDRAM.DRAMBWBoundPct())
	}
	if strNV.PMemBWBoundPct() < 50 {
		t.Errorf("stream-nv PMem BW bound = %.1f, want high", strNV.PMemBWBoundPct())
	}
}

func TestHotObjectsFig7a(t *testing.T) {
	m := xeonMachine(t)
	_, objs := runGraph500(t, m, 0)
	if len(objs) < 5 {
		t.Fatalf("objects = %d", len(objs))
	}
	// The top two objects by LLC misses are the parent array (random
	// probes) and the adjacency array — the paper identifies the
	// xmalloc'd column array as the hot object.
	top2 := []string{objs[0].Name, objs[1].Name}
	want := map[string]bool{"bfs_parent": true, "csr_adj": true}
	for _, n := range top2 {
		if !want[n] {
			t.Fatalf("top objects = %v, want bfs_parent and csr_adj first", top2)
		}
	}
	// The parent array's misses are overwhelmingly random → latency
	// sensitivity; the adjacency array streams → bandwidth.
	for _, o := range objs {
		switch o.Name {
		case "bfs_parent":
			if o.Sensitivity() != "Latency" {
				t.Errorf("bfs_parent classified %s (random share %.2f)", o.Sensitivity(), o.RandomShare)
			}
		case "csr_adj":
			if o.Sensitivity() != "Bandwidth" {
				t.Errorf("csr_adj classified %s (random share %.2f)", o.Sensitivity(), o.RandomShare)
			}
		}
		if o.Placement == "" || o.Size == 0 {
			t.Errorf("incomplete report %+v", o)
		}
	}
	// Ranking is by misses, descending.
	for i := 1; i < len(objs); i++ {
		if objs[i].LLCMisses > objs[i-1].LLCMisses {
			t.Fatal("hot objects not sorted")
		}
	}
}

func TestTimeline(t *testing.T) {
	m := xeonMachine(t)
	ar, err := stream.AllocArrays(placeOn(m, 0), gib/stream.ElemBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Free(m)
	e := memsim.NewEngine(m, bitmap.NewFromRange(0, 19))
	stream.Run(e, ar, 2)
	tl := Timeline(e.Stats())
	if len(tl) != 8 { // 4 kernels × 2 iterations
		t.Fatalf("timeline entries = %d", len(tl))
	}
	for _, p := range tl {
		if p.AchievedBW <= 0 || p.Seconds <= 0 || p.BoundKind != "DRAM" {
			t.Fatalf("timeline entry %+v", p)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(memsim.Stats{})
	if s.LatencySensitive || s.BandwidthSensitive || s.DRAMBoundPct != 0 {
		t.Fatalf("empty stats produced flags: %+v", s)
	}
}

func TestRenderers(t *testing.T) {
	m := xeonMachine(t)
	sum, objs := runGraph500(t, m, 2)
	txt := RenderSummary(map[string]Summary{"Graph500/NVDIMM": sum})
	if !strings.Contains(txt, "Graph500/NVDIMM") || !strings.Contains(txt, "latency-sensitive") {
		t.Fatalf("summary render:\n%s", txt)
	}
	objTxt := RenderObjects(objs)
	if !strings.Contains(objTxt, "bfs_parent") || !strings.Contains(objTxt, "NVDIMM#2") {
		t.Fatalf("objects render:\n%s", objTxt)
	}
}

func TestRenderTimeline(t *testing.T) {
	m := xeonMachine(t)
	ar, err := stream.AllocArrays(placeOn(m, 0), gib/stream.ElemBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Free(m)
	e := memsim.NewEngine(m, bitmap.NewFromRange(0, 19))
	stream.Run(e, ar, 1)
	out := RenderTimeline(Timeline(e.Stats()))
	if !strings.Contains(out, "stream-triad") || !strings.Contains(out, "#") {
		t.Fatalf("timeline render:\n%s", out)
	}
	if RenderTimeline(nil) == "" {
		t.Fatal("empty timeline should still render a header")
	}
}
