package server

// The online tiering advisor's server half: the sample→classify→migrate
// loop over the live lease table, and the /v1/advisor observation and
// control surface. The policy (classification, hysteresis, cooldown,
// decision log) lives in internal/advisor; this file owns the
// mechanism — borrowing leases, reading telemetry snapshots, checking
// placements against ranked candidates, and driving the journaled
// migrate path under the shared rebalance budget.

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hetmem/internal/advisor"
	"hetmem/internal/journal"
)

// Advisor returns the daemon's tiering-advisor tracker (nil when the
// advisor is disabled). Tests use it to reach the decision log.
func (s *Server) Advisor() *advisor.Tracker { return s.advisor }

// advisorLoop runs one sample cycle per AdvisorInterval until Close.
func (s *Server) advisorLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.AdvisorInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.AdviseOnce()
		}
	}
}

// AdviseOnce runs one advisor cycle — sample, classify, migrate — and
// returns how many leases it moved. Exported so tests and the bench
// harness can drive cycles deterministically between workload phases
// instead of waiting out the interval. A paused (or disabled) advisor
// does nothing.
func (s *Server) AdviseOnce() int {
	moved, _ := s.AdviseCycle()
	return moved
}

// AdviseCycle is AdviseOnce plus the summed simulated copy cost of the
// moves it made, so a workload harness can charge the migrations to
// its simulated clock.
func (s *Server) AdviseCycle() (int, float64) {
	if s.advisor == nil || s.advisor.Paused() {
		return 0, 0
	}
	s.adviseMu.Lock()
	defer s.adviseMu.Unlock()

	all := s.leases.borrowAll()
	defer releaseAll(all)
	samples := make([]advisor.Sample, 0, len(all))
	byID := make(map[uint64]*lease, len(all))
	for _, l := range all {
		if l.buf == nil || l.buf.Freed() {
			continue
		}
		byID[l.id] = l
		samples = append(samples, advisor.Sample{
			Lease:     l.id,
			Name:      l.name,
			Placement: l.buf.NodeNames(),
			Size:      l.size,
			Attr:      attrOf(l),
			Telemetry: l.buf.TelemetrySnapshot(),
		})
	}
	recs := s.advisor.Classify(samples)
	s.metrics.AdvisorCycles.Add(1)

	budget := s.cfg.RebalanceBudget
	var spent uint64
	var costSum float64
	moved := 0
	for _, r := range recs {
		l := byID[r.Lease]
		if l == nil {
			continue
		}
		misplaced, feasible := s.misplacedFor(l, r.AttrName)
		if !misplaced {
			s.advisor.Aligned(r.Lease)
			continue
		}
		if !feasible {
			// The better tier has no room (yet): MigrateToBestSpec would
			// fall back down the ranking and "succeed" without moving a
			// byte. Skip the lease this cycle — its streak is frozen, and
			// a later free opens the door.
			continue
		}
		switch s.advisor.Consider(r) {
		case advisor.Hold, advisor.Cooldown:
			s.metrics.AdvisorHeldHysteresis.Add(1)
			continue
		case advisor.Move:
		}
		if budget > 0 && spent >= budget {
			s.advisor.RecordHeldBudget(r)
			s.metrics.AdvisorHeldBudget.Add(1)
			continue
		}
		from := l.buf.NodeNames()
		s.ckmu.RLock()
		l.jmu.Lock()
		var err error
		var cost float64
		if l.buf.Freed() {
			err = errNoSuchLease
		} else {
			cost, _, err = s.migrateOriginLocked(l, r.AttrName, l.initiator, true, journal.OriginAdvisor)
		}
		l.jmu.Unlock()
		s.ckmu.RUnlock()
		if err != nil {
			// The machine would not take the move (full target, offline
			// node, racing free). The streak survives, so the advisor
			// retries next cycle once the obstacle clears.
			continue
		}
		s.advisor.RecordMove(r, from, l.buf.NodeNames())
		if r.AttrName == "Capacity" {
			s.metrics.AdvisorDemoted.Add(1)
		} else {
			s.metrics.AdvisorPromoted.Add(1)
		}
		s.metrics.AdvisorBytesMoved.Add(l.size)
		spent += l.size
		costSum += cost
		moved++
	}
	if moved > 0 {
		s.admitGate.broadcast()
	}
	// Telemetry and classifications changed even without a move; the
	// /v1/leases snapshot should reflect this cycle.
	s.bumpEpoch()
	return moved, costSum
}

// misplacedFor reports whether any of the lease's bytes sit on a node
// whose attribute value is strictly worse than the best-ranked
// target's — the advisor's trigger condition — and whether a move to
// a best-value node is feasible right now (one of them has room for
// the whole lease). Comparing values, not node identity, keeps the
// advisor from shuffling a lease between equally good nodes (two
// symmetric DRAM sockets) just because the ranking's tie-break
// prefers one of them. Unknown attributes or unrankable candidates
// read as well-placed: no opinion, no move.
func (s *Server) misplacedFor(l *lease, attrName string) (misplaced, feasible bool) {
	id, ok := s.sys.Registry.ByName(attrName)
	if !ok {
		return false, false
	}
	ini, err := s.resolveInitiator(l.initiator)
	if err != nil {
		return false, false
	}
	cands, _, _, err := s.sys.Allocator.Candidates(id, ini, true)
	if err != nil || len(cands) == 0 {
		return false, false
	}
	best := cands[0].Value
	valueOf := func(os int) (uint64, bool) {
		for _, c := range cands {
			if c.Target.OSIndex == os {
				return c.Value, true
			}
		}
		return 0, false
	}
	for _, seg := range l.buf.SegmentsSnapshot() {
		v, ok := valueOf(seg.Node.OSIndex())
		if !ok || v != best {
			misplaced = true
			break
		}
	}
	if !misplaced {
		return false, false
	}
	for _, c := range cands {
		if c.Value != best {
			break // ranked, so no later candidate has the best value
		}
		if n := s.sys.Machine.NodeByOS(c.Target.OSIndex); n != nil && n.Available() >= l.size {
			return true, true
		}
	}
	return true, false
}

// attrOf reads a lease's attribute under its journal-order lock: the
// advisor reclassifies attributes concurrently with other readers.
func attrOf(l *lease) string {
	l.jmu.Lock()
	a := l.attr
	l.jmu.Unlock()
	return a
}

// adviceFor returns the advisor's would-be placement attribute for an
// attribute-less allocation: the live classification of the buffer
// name if one exists, else the conservative capacity tier.
func (s *Server) adviceFor(name string) string {
	if s.advisor == nil {
		return ""
	}
	if a := s.advisor.Advice(name); a != "" {
		return a
	}
	return "Capacity"
}

// AdvisorControlResponse acknowledges a pause or resume.
type AdvisorControlResponse struct {
	Paused bool `json:"paused"`
}

func (s *Server) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	if s.advisor == nil {
		s.writeError(w, r, fmt.Errorf("%w: advisor not running on this daemon", ErrAdvisorPaused))
		return
	}
	writeJSON(w, http.StatusOK, s.advisor.Snapshot())
}

func (s *Server) handleAdvisorPause(w http.ResponseWriter, r *http.Request) {
	if s.advisor == nil {
		s.writeError(w, r, fmt.Errorf("%w: advisor not running on this daemon", ErrAdvisorPaused))
		return
	}
	if !s.advisor.Pause() {
		s.writeError(w, r, fmt.Errorf("%w: already paused", ErrAdvisorPaused))
		return
	}
	writeJSON(w, http.StatusOK, AdvisorControlResponse{Paused: true})
}

func (s *Server) handleAdvisorResume(w http.ResponseWriter, r *http.Request) {
	if s.advisor == nil {
		s.writeError(w, r, fmt.Errorf("%w: advisor not running on this daemon", ErrAdvisorPaused))
		return
	}
	s.advisor.Resume()
	writeJSON(w, http.StatusOK, AdvisorControlResponse{Paused: false})
}

// pathID parses a {name} path segment as a lease ID — the router-level
// helper behind GET /v1/leases/{id} (net/http pattern wildcards, not
// prefix trimming).
func pathID(r *http.Request, name string) (uint64, error) {
	v := r.PathValue(name)
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil || id == 0 {
		return 0, fmt.Errorf("%w: bad lease id %q", ErrBadRequest, v)
	}
	return id, nil
}

func (s *Server) handleLeaseDetail(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp, err := s.LeaseDetail(r.Context(), id)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeLeaseDetailResponse(w, resp)
}

// LeaseDetail is the LeaseDetailer entry behind GET /v1/leases/{id},
// shared with the binary transport's lease-detail op.
func (s *Server) LeaseDetail(ctx context.Context, id uint64) (LeaseDetailResponse, error) {
	l, ok := s.leases.get(id)
	if !ok {
		return LeaseDetailResponse{}, fmt.Errorf("%w: %d", errNoSuchLease, id)
	}
	resp := LeaseDetailResponse{
		Lease:      l.id,
		Name:       l.name,
		Size:       l.size,
		Attr:       attrOf(l),
		Placement:  l.buf.NodeNames(),
		Tenant:     l.tenant,
		Initiator:  l.initiator,
		TTLSeconds: l.getTTL().Seconds(),
		Telemetry:  l.buf.TelemetrySnapshot(),
	}
	if s.advisor != nil {
		resp.Class = s.advisor.Classification(l.id)
	}
	l.release()
	return resp, nil
}
