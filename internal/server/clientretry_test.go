package server_test

// Black-box client behavior under unhappy responses: 429 is retried
// (honoring Retry-After), every other 4xx is terminal after a single
// attempt, and the circuit breaker fails fast while the daemon is
// unreachable, then recovers through a half-open probe.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hetmem/internal/server"
)

func fastRetry(attempts int) server.RetryPolicy {
	return server.RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func TestClientRetries429(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"shedding"}`, http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, `{"status":"ok"}`)
	}))
	defer ts.Close()

	cl := server.NewClient(ts.URL, server.WithRetryPolicy(fastRetry(4)), server.WithoutHeartbeat())
	if _, err := cl.Health(context.Background()); err != nil {
		t.Fatalf("429 then 200 should succeed: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (one 429, one retry)", got)
	}
}

func TestClientTreats4xxAsTerminal(t *testing.T) {
	for _, code := range []int{http.StatusBadRequest, http.StatusNotFound, http.StatusConflict, http.StatusInsufficientStorage} {
		var hits atomic.Int32
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			http.Error(w, `{"error":"no"}`, code)
		}))
		cl := server.NewClient(ts.URL, server.WithRetryPolicy(fastRetry(4)), server.WithoutHeartbeat())
		_, err := cl.Health(context.Background())
		ts.Close()
		var apiErr *server.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != code {
			t.Fatalf("status %d: err %v, want APIError %d", code, err, code)
		}
		if got := hits.Load(); got != 1 {
			t.Fatalf("status %d: server saw %d requests, want exactly 1", code, got)
		}
	}
}

// flakyTransport refuses connections while failing is set, counting
// every attempt that actually reaches it.
type flakyTransport struct {
	failing atomic.Bool
	calls   atomic.Int32
}

func (ft *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	ft.calls.Add(1)
	if ft.failing.Load() {
		return nil, errors.New("connection refused (simulated)")
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"application/json"}},
		Body:       io.NopCloser(strings.NewReader(`{"status":"ok"}`)),
		Request:    r,
	}, nil
}

func TestCircuitBreakerFailsFastAndRecovers(t *testing.T) {
	ctx := context.Background()
	ft := &flakyTransport{}
	ft.failing.Store(true)
	cl := server.NewClient("http://hetmemd.invalid",
		server.WithHTTPClient(&http.Client{Transport: ft}),
		server.WithRetryPolicy(server.NoRetry),
		server.WithCircuitBreaker(2, 250*time.Millisecond),
		server.WithoutHeartbeat())

	// Two transport failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := cl.Health(ctx); err == nil {
			t.Fatal("transport failure reported success")
		}
	}
	if got := ft.calls.Load(); got != 2 {
		t.Fatalf("transport saw %d calls, want 2", got)
	}

	// Open: requests fail fast without touching the network.
	_, err := cl.Health(ctx)
	if !errors.Is(err, server.ErrCircuitOpen) {
		t.Fatalf("open breaker: err %v, want ErrCircuitOpen", err)
	}
	if got := ft.calls.Load(); got != 2 {
		t.Fatalf("open breaker leaked a request to the network (%d calls)", got)
	}

	// After the cooldown the daemon is back; the probe closes the
	// breaker and traffic flows again.
	ft.failing.Store(false)
	time.Sleep(300 * time.Millisecond)
	if _, err := cl.Health(ctx); err != nil {
		t.Fatalf("probe after recovery failed: %v", err)
	}
	if _, err := cl.Health(ctx); err != nil {
		t.Fatalf("closed breaker rejected traffic: %v", err)
	}
	if got := ft.calls.Load(); got != 4 {
		t.Fatalf("transport saw %d calls, want 4", got)
	}
}

// The deadline contract: the retry loop must fit inside the caller's
// context. A backoff that would sleep past the deadline fails
// immediately with the last error instead of burning the remaining
// time asleep.
func TestClientBackoffHonorsCallDeadline(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "30") // hint far past any sane deadline
		http.Error(w, `{"code":"shedding","message":"full","retryable":true}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	cl := server.NewClient(ts.URL,
		server.WithRetryPolicy(server.RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Second, MaxDelay: 60 * time.Second}),
		server.WithoutHeartbeat())
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := cl.Health(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("503-forever should fail")
	}
	// The call must return promptly — around one attempt, not after the
	// 10s backoff and certainly not after MaxAttempts of them.
	if elapsed > time.Second {
		t.Fatalf("call took %v; backoff slept past the 250ms deadline", elapsed)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts; with no deadline room there is only time for 1", got)
	}
	// The error carries the retryable status the last attempt saw.
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err %v should surface the last 503", err)
	}
}

// A transport-level hang (the asymmetric-partition signature: the
// connection opens, bytes vanish) is bounded by the per-attempt
// timeout, so one silent member costs attemptTimeout, not forever.
func TestClientAttemptTimeoutBoundsSilentServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // never answer
	}))
	defer ts.Close()

	cl := server.NewClient(ts.URL,
		server.WithRetryPolicy(server.NoRetry),
		server.WithAttemptTimeout(100*time.Millisecond),
		server.WithoutHeartbeat())
	start := time.Now()
	_, err := cl.Health(context.Background())
	if err == nil {
		t.Fatal("silent server reported success")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("silent server held the call for %v; attempt timeout did not bound it", elapsed)
	}
}

// The caller's context deadline propagates through every attempt: a
// shorter caller deadline beats a longer attempt timeout.
func TestClientCallerDeadlineBeatsAttemptTimeout(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer ts.Close()

	cl := server.NewClient(ts.URL,
		server.WithRetryPolicy(server.NoRetry),
		server.WithAttemptTimeout(30*time.Second),
		server.WithoutHeartbeat())
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Health(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want the caller's DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("caller deadline of 100ms took %v to fire", elapsed)
	}
}
