package server

import "sync"

// idemEntry is one idempotency key's outcome. done closes when the
// owning request finishes; waiters then read resp/err.
type idemEntry struct {
	done chan struct{}
	resp AllocResponse
	err  error
}

// idemTable coalesces /alloc requests that share an idempotency key:
// the first request with a key owns the allocation, concurrent and
// later duplicates wait on it and replay its response. Failed attempts
// are dropped from the table so a retry can try again for real.
type idemTable struct {
	mu sync.Mutex
	m  map[string]*idemEntry
}

func newIdemTable() *idemTable {
	return &idemTable{m: make(map[string]*idemEntry)}
}

// begin claims a key. The second return is true when the caller owns
// the key and must run the allocation (then call succeed or fail);
// false means another request owns it — wait on entry.done and replay.
func (t *idemTable) begin(key string) (*idemEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.m[key]; ok {
		return e, false
	}
	e := &idemEntry{done: make(chan struct{})}
	t.m[key] = e
	return e, true
}

// succeed publishes the owner's successful response to all waiters.
func (t *idemTable) succeed(e *idemEntry, resp AllocResponse) {
	e.resp = resp
	close(e.done)
}

// fail publishes the owner's error and releases the key so a fresh
// retry can allocate.
func (t *idemTable) fail(key string, e *idemEntry, err error) {
	t.mu.Lock()
	delete(t.m, key)
	t.mu.Unlock()
	e.err = err
	close(e.done)
}

// forget drops a key (its lease was freed); a reused key allocates
// anew.
func (t *idemTable) forget(key string) {
	t.mu.Lock()
	delete(t.m, key)
	t.mu.Unlock()
}

// restoreDone seeds a completed entry during journal replay, so
// post-restart retries of a pre-crash request still replay the
// original lease.
func (t *idemTable) restoreDone(key string, resp AllocResponse) {
	e := &idemEntry{done: make(chan struct{}), resp: resp}
	close(e.done)
	t.mu.Lock()
	t.m[key] = e
	t.mu.Unlock()
}
