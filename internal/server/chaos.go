package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"hetmem/internal/core"
	"hetmem/internal/faults"
)

// ChaosOptions configures a ChaosRun.
type ChaosOptions struct {
	// Seed drives both the fault plan and the client traffic mix.
	Seed int64
	// Steps is the number of fault steps in the plan.
	Steps int
	// StepInterval is the pause between fault steps (default 10ms), so
	// client traffic interleaves with the faults.
	StepInterval time.Duration
	// Load shapes the client traffic (Tolerate and Retry are set by the
	// harness).
	Load LoadOptions
	// Server configures the daemon under test; set JournalPath to make
	// the run durable.
	Server Config
}

// ChaosReport is the outcome of a ChaosRun.
type ChaosReport struct {
	Load        LoadStats
	FaultEvents int
	// Consistency is VerifyConsistency's description of the final
	// state.
	Consistency string
	// Metrics is the final parsed /metrics snapshot.
	Metrics map[string]float64
}

// TolerateDegraded accepts the errors a correctly degrading daemon is
// allowed to return while faults are active: 503 (shedding, offline,
// transient) and 507 (capacity shrunk under the workload). Anything
// else — 500s, bad JSON, accounting errors — still fails the run.
func TolerateDegraded(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusServiceUnavailable ||
			apiErr.StatusCode == http.StatusInsufficientStorage
	}
	return false
}

// ChaosRun boots a daemon on a loopback listener, drives concurrent
// client load against it while a seeded fault plan kills, degrades,
// shrinks, and trips the machine's nodes, heals everything, and then
// audits the daemon's books: the lease table, /metrics per-node bytes,
// and (when a journal is configured) the journaled state must all
// agree. It is the engine of both the chaos tests and the `hetmemd
// chaostest` subcommand.
func ChaosRun(ctx context.Context, sys *core.System, opts ChaosOptions) (ChaosReport, error) {
	var rep ChaosReport
	if opts.Steps <= 0 {
		opts.Steps = 40
	}
	if opts.StepInterval <= 0 {
		opts.StepInterval = 10 * time.Millisecond
	}
	srv, err := NewWithConfig(sys, opts.Server)
	if err != nil {
		return rep, err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	injector := faults.NewInjector(faults.NewMachineTarget(sys.Machine))
	injector.Subscribe(srv.ApplyFault)

	var nodeOS []int
	caps := map[int]uint64{}
	for _, n := range sys.Machine.Nodes() {
		nodeOS = append(nodeOS, n.OSIndex())
		caps[n.OSIndex()] = n.Capacity()
	}
	plan := faults.RandomPlan(opts.Seed, opts.Steps, nodeOS, faults.RandomOptions{Capacities: caps})

	load := opts.Load
	load.Seed = opts.Seed
	load.Tolerate = TolerateDegraded

	// Faults and load run concurrently; the plan's built-in heal step
	// runs last, so the daemon always finishes the run nominal.
	faultErr := make(chan error, 1)
	go func() {
		defer close(faultErr)
		for step := 0; step <= plan.Steps(); step++ {
			select {
			case <-ctx.Done():
				// Heal before bailing so the audit below still runs
				// against a nominal machine.
				if err := injector.HealAll(); err != nil {
					faultErr <- err
				}
				return
			case <-time.After(opts.StepInterval):
			}
			for _, ev := range plan.StepEvents(step) {
				if err := injector.Apply(ev); err != nil {
					faultErr <- err
					return
				}
			}
		}
	}()

	stats, loadErr := LoadTest(ctx, base, load)
	rep.Load = stats
	if err := <-faultErr; err != nil {
		return rep, fmt.Errorf("server: fault injection failed: %w", err)
	}
	rep.FaultEvents = len(injector.Log())
	if loadErr != nil {
		return rep, loadErr
	}

	// The plan healed the machine; every node must have found its way
	// back to healthy through the daemon's state machine.
	auditCtx := context.Background()
	cl := NewClient(base)
	health, err := cl.Health(auditCtx)
	if err != nil {
		return rep, err
	}
	for _, n := range health.Nodes {
		if n.State != Healthy.String() {
			return rep, fmt.Errorf("server: node %s still %s after heal", n.Node, n.State)
		}
	}

	desc, err := VerifyConsistency(auditCtx, base)
	if err != nil {
		return rep, err
	}
	rep.Consistency = desc
	rep.Metrics, err = cl.Metrics(auditCtx)
	if err != nil {
		return rep, err
	}
	return rep, nil
}
