package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"hetmem/internal/core"
	"hetmem/internal/server"
)

// leasesOf reads /leases?list=1 straight off a server's handler (no
// network), so a crashed-but-in-memory daemon can still be audited.
func leasesOf(t *testing.T, srv *server.Server) server.LeasesResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/leases?list=1", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /leases: %d %s", rec.Code, rec.Body.String())
	}
	var out server.LeasesResponse
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCrashRecoveryMidStream kills the daemon's HTTP frontend while 32
// clients are mid-request, then restarts a fresh daemon from the
// journal and requires its lease table and per-node byte accounting to
// match the crashed instance's in-memory state exactly — the journal
// is written before a lease becomes visible, so nothing a client could
// have observed is ever lost.
func TestCrashRecoveryMidStream(t *testing.T) {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wal")
	srv, err := server.NewWithConfig(sys, server.Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := server.NewClient(ts.URL, server.WithRetryPolicy(server.NoRetry))
			var leases []uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Mixed traffic; errors after the kill are expected and
				// irrelevant — consistency is what's under test.
				switch i % 4 {
				case 0, 1:
					resp, err := cl.Alloc(ctx, server.AllocRequest{
						Name: fmt.Sprintf("c%d-%d", id, i), Size: 8 << 20,
						Attr: attrFor(id + i), Partial: true, Remote: true,
					})
					if err == nil {
						leases = append(leases, resp.Lease)
					}
				case 2:
					if len(leases) > 0 {
						if cl.Free(ctx, leases[0]) == nil {
							leases = leases[1:]
						}
					}
				default:
					if len(leases) > 0 {
						cl.Migrate(ctx, server.MigrateRequest{
							Lease: leases[0], Attr: attrFor(i), Remote: true,
						})
					}
				}
			}
		}(c)
	}

	// Let traffic build, then yank the frontend mid-stream. ts.Close
	// waits for in-flight handlers, so the journal has no torn records
	// — exactly what a SIGKILL between requests looks like.
	time.Sleep(150 * time.Millisecond)
	close(stop)
	ts.Close()
	wg.Wait()

	pre := leasesOf(t, srv)
	if pre.Count == 0 {
		t.Fatal("crash test ended with an empty lease table; nothing to recover")
	}
	// No srv.Close(): the daemon is "killed" with the journal unfsynced
	// and unclosed.

	sys2, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.NewWithConfig(sys2, server.Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	post := leasesOf(t, srv2)
	if !reflect.DeepEqual(pre, post) {
		t.Fatalf("restart diverged from pre-crash state:\npre  %+v\npost %+v", pre, post)
	}
	// The machine's per-node accounting matches too, node for node.
	for _, n := range sys.Machine.Nodes() {
		n2 := sys2.Machine.NodeByOS(n.OSIndex())
		if n.Allocated() != n2.Allocated() {
			t.Errorf("node %s#%d: pre-crash %d bytes, restored %d",
				n.Kind(), n.OSIndex(), n.Allocated(), n2.Allocated())
		}
	}
}

// TestRestartAfterGracefulShutdown is the clean half: Close flushes
// the journal and a restart reproduces the state, including the
// idempotency table — a pre-shutdown alloc retried after the restart
// replays its original lease.
func TestRestartAfterGracefulShutdown(t *testing.T) {
	ctx := context.Background()
	sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wal")
	srv, err := server.NewWithConfig(sys, server.Config{JournalPath: path, SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	cl := server.NewClient(ts.URL)

	req := server.AllocRequest{
		Name: "sticky", Size: 1 << 30, Attr: "Bandwidth", Initiator: "0-15",
		IdempotencyKey: "boot-42",
	}
	first, err := cl.Alloc(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := core.NewSystem("knl-snc4-flat", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.NewWithConfig(sys2, server.Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	cl2 := server.NewClient(ts2.URL)

	// The lease survived; a retry of the pre-shutdown request replays
	// it instead of allocating a second buffer.
	again, err := cl2.Alloc(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Lease != first.Lease || again.Placement != first.Placement {
		t.Fatalf("replayed alloc = %+v, want lease %d on %s", again, first.Lease, first.Placement)
	}
	m, err := cl2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["hetmemd_alloc_total"] != 0 {
		t.Fatalf("replay allocated for real: alloc_total = %v", m["hetmemd_alloc_total"])
	}
	// And freeing the restored lease balances the books to zero.
	if err := cl2.Free(ctx, first.Lease); err != nil {
		t.Fatal(err)
	}
	m, err = cl2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := server.SumSeries(m, "hetmemd_node_bytes_in_use"); got != 0 {
		t.Fatalf("bytes in use after full drain: %v", got)
	}
}
