package server_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hetmem/internal/core"
	"hetmem/internal/server"
)

// startDaemon boots an in-process daemon on the named platform.
func startDaemon(t testing.TB, platform string) (*httptest.Server, *server.Client) {
	t.Helper()
	sys, err := core.NewSystem(platform, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(sys).Handler())
	t.Cleanup(ts.Close)
	return ts, server.NewClient(ts.URL)
}

func TestTopologyEndpoint(t *testing.T) {
	ctx := context.Background()
	_, cl := startDaemon(t, "xeon")
	topo, err := cl.Topology(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(topo.NUMANodes()); n != 4 {
		t.Fatalf("xeon topology has %d NUMA nodes over the wire, want 4", n)
	}
}

func TestAttrsEndpoint(t *testing.T) {
	ctx := context.Background()
	ts, cl := startDaemon(t, "xeon")
	attrs, err := cl.Attrs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]server.AttrReport{}
	for _, a := range attrs {
		byName[a.Name] = a
	}
	for _, want := range []string{"Capacity", "Bandwidth", "Latency"} {
		if len(byName[want].Values) == 0 {
			t.Errorf("attribute %s has no values in the dump", want)
		}
	}
	// Initiator-dependent attributes must carry initiators.
	for _, v := range byName["Bandwidth"].Values {
		if v.Initiator == "" {
			t.Errorf("Bandwidth value for %s has no initiator", v.Target)
		}
	}

	// The text rendering (Figure 5) is served under ?format=text.
	resp, err := http.Get(ts.URL + "/attrs?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "Bandwidth") {
		t.Errorf("text attrs dump missing Bandwidth: %q", buf[:n])
	}
}

func TestAllocFreeMigrateRoundTrip(t *testing.T) {
	ctx := context.Background()
	_, cl := startDaemon(t, "xeon")

	// Bandwidth from package 0 should land on its local DRAM.
	resp, err := cl.Alloc(ctx, server.AllocRequest{
		Name: "hot", Size: 1 << 30, Attr: "Bandwidth", Initiator: "0-19",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Lease == 0 || !strings.HasPrefix(resp.Placement, "DRAM#") {
		t.Fatalf("alloc: %+v", resp)
	}

	// Capacity should pick an NVDIMM.
	big, err := cl.Alloc(ctx, server.AllocRequest{
		Name: "big", Size: 200 << 30, Attr: "Capacity", Initiator: "0-19",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(big.Placement, "NVDIMM#") {
		t.Fatalf("capacity request placed on %s, want NVDIMM", big.Placement)
	}

	// Migrating the hot buffer for Capacity moves it with a real cost.
	mig, err := cl.Migrate(ctx, server.MigrateRequest{Lease: resp.Lease, Attr: "Capacity", Initiator: "0-19"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(mig.Placement, "NVDIMM#") || mig.CostSeconds <= 0 {
		t.Fatalf("migrate: %+v", mig)
	}

	// The lease table sees both buffers.
	leases, err := cl.Leases(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if leases.Count != 2 || len(leases.Leases) != 2 {
		t.Fatalf("leases: %+v", leases)
	}

	if err := cl.Free(ctx, resp.Lease); err != nil {
		t.Fatal(err)
	}
	if err := cl.Free(ctx, big.Lease); err != nil {
		t.Fatal(err)
	}
	// Double free over the API is a clean 404, not corruption.
	if err := cl.Free(ctx, resp.Lease); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("double free error = %v, want 404", err)
	}
}

func TestAllocErrors(t *testing.T) {
	ctx := context.Background()
	ts, cl := startDaemon(t, "xeon")

	cases := []struct {
		name string
		req  server.AllocRequest
		code string
	}{
		{"unknown attr", server.AllocRequest{Name: "x", Size: 1, Attr: "Nope"}, "400"},
		{"bad initiator", server.AllocRequest{Name: "x", Size: 1, Attr: "Bandwidth", Initiator: "zz"}, "400"},
		{"bad policy", server.AllocRequest{Name: "x", Size: 1, Attr: "Bandwidth", Policy: "weird"}, "400"},
		{"too big", server.AllocRequest{Name: "x", Size: 1 << 62, Attr: "Bandwidth", Remote: true}, "507"},
	}
	for _, c := range cases {
		if _, err := cl.Alloc(ctx, c.req); err == nil || !strings.Contains(err.Error(), c.code) {
			t.Errorf("%s: err = %v, want HTTP %s", c.name, err, c.code)
		}
	}

	// Malformed JSON and unknown fields are 400s.
	for _, body := range []string{"{", `{"name":"x","bogus":1}`, `{"name":"x","size":1,"attr":"Bandwidth"} trailing`} {
		resp, err := http.Post(ts.URL+"/alloc", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/alloc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /alloc: status %d, want 405", resp.StatusCode)
	}
}

func TestMetricsTrackAllocations(t *testing.T) {
	ctx := context.Background()
	_, cl := startDaemon(t, "knl-snc4-flat")

	before, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var leases []uint64
	for i := 0; i < 5; i++ {
		resp, err := cl.Alloc(ctx, server.AllocRequest{
			Name: "m", Size: 1 << 30, Attr: "Bandwidth", Initiator: "0-15",
		})
		if err != nil {
			t.Fatal(err)
		}
		leases = append(leases, resp.Lease)
	}
	if err := cl.Free(ctx, leases[0]); err != nil {
		t.Fatal(err)
	}

	after, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := after["hetmemd_alloc_total"] - before["hetmemd_alloc_total"]; got != 5 {
		t.Errorf("alloc_total moved by %v, want 5", got)
	}
	if got := after["hetmemd_free_total"] - before["hetmemd_free_total"]; got != 1 {
		t.Errorf("free_total moved by %v, want 1", got)
	}
	if got := after["hetmemd_leases_active"]; got != 4 {
		t.Errorf("leases_active = %v, want 4", got)
	}
	// 4 GiB live on MCDRAM nodes (bandwidth requests on KNL).
	if got := server.SumSeries(after, "hetmemd_node_bytes_in_use"); got != 4<<30 {
		t.Errorf("bytes in use = %v, want %v", got, uint64(4)<<30)
	}
	if server.SumSeries(after, "hetmemd_requests_total") <= server.SumSeries(before, "hetmemd_requests_total") {
		t.Error("request counters did not move")
	}
	// Histogram sanity: count series match request counters.
	if after[`hetmemd_request_seconds_count{endpoint="alloc"}`] != after[`hetmemd_requests_total{endpoint="alloc"}`] {
		t.Error("latency histogram count diverges from request counter")
	}
}

// TestConcurrentClients hammers one daemon from many goroutines and
// then checks the books balance. Run with -race.
func TestConcurrentClients(t *testing.T) {
	ctx := context.Background()
	ts, cl := startDaemon(t, "xeon")

	const clients = 16
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cc := server.NewClient(ts.URL)
			var leases []uint64
			for i := 0; i < 30; i++ {
				resp, err := cc.Alloc(ctx, server.AllocRequest{
					Name: "c", Size: 32 << 20, Attr: attrFor(id + i), Partial: true, Remote: true,
				})
				if err != nil {
					t.Error(err)
					continue
				}
				leases = append(leases, resp.Lease)
				if len(leases) > 4 {
					if err := cc.Free(ctx, leases[0]); err != nil {
						t.Error(err)
					}
					leases = leases[1:]
				}
			}
			for _, l := range leases {
				if err := cc.Free(ctx, l); err != nil {
					t.Error(err)
				}
			}
		}(c)
	}
	wg.Wait()

	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics["hetmemd_leases_active"]; got != 0 {
		t.Errorf("leases_active = %v after full drain, want 0", got)
	}
	if got := server.SumSeries(metrics, "hetmemd_node_bytes_in_use"); got != 0 {
		t.Errorf("bytes in use = %v after full drain, want 0", got)
	}
	if got := metrics["hetmemd_alloc_total"]; got != clients*30 {
		t.Errorf("alloc_total = %v, want %d", got, clients*30)
	}
}

func attrFor(i int) string {
	switch i % 3 {
	case 0:
		return "Bandwidth"
	case 1:
		return "Latency"
	default:
		return "Capacity"
	}
}

func TestLoadTestAndConsistency(t *testing.T) {
	ctx := context.Background()
	ts, _ := startDaemon(t, "xeon")
	stats, err := server.LoadTest(ctx, ts.URL, server.LoadOptions{
		Clients:           8,
		RequestsPerClient: 40,
		Seed:              1,
	})
	if err != nil {
		t.Fatalf("%v (stats: %s)", err, stats)
	}
	if stats.Failed != 0 || stats.Allocs == 0 || stats.Frees == 0 {
		t.Fatalf("stats: %s", stats)
	}
	desc, err := server.VerifyConsistency(ctx, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(stats.String(), "/", desc)
}
