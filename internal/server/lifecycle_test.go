package server_test

// Lease-lifecycle and durable-state tests: TTL clamping and renewal,
// orphan reaping vs heartbeating clients, checkpoint-bounded WALs,
// crash recovery with checkpoints racing traffic, and crash recovery
// under injected disk faults.

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"hetmem/internal/core"
	"hetmem/internal/faults"
	"hetmem/internal/server"
)

// startLifecycle boots a daemon with a lease-lifecycle Config over a
// real HTTP frontend. The caller owns any clients it makes.
func startLifecycle(t *testing.T, cfg server.Config) (*core.System, *server.Server, *httptest.Server) {
	t.Helper()
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWithConfig(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return sys, srv, ts
}

// metricsOf scrapes a server's /metrics straight off its handler, so a
// crashed-but-in-memory daemon can still be read.
func metricsOf(t *testing.T, srv *server.Server) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	m, err := server.ParseMetrics(rec.Body.String())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLeaseTTLClampAndRenew(t *testing.T) {
	ctx := context.Background()
	_, _, ts := startLifecycle(t, server.Config{
		DefaultLeaseTTL: 200 * time.Millisecond,
		MinLeaseTTL:     50 * time.Millisecond,
		MaxLeaseTTL:     500 * time.Millisecond,
		ReapInterval:    100 * time.Millisecond,
	})
	cl := server.NewClient(ts.URL, server.WithoutHeartbeat())

	for _, tc := range []struct {
		name string
		req  float64
		want float64
	}{
		{"default", 0, 0.2},
		{"clamped-up", 0.001, 0.05},
		{"clamped-down", 3600, 0.5},
		{"in-range", 0.3, 0.3},
	} {
		resp, err := cl.Alloc(ctx, server.AllocRequest{
			Name: "ttl-" + tc.name, Size: 1 << 20, Attr: "Capacity",
			Partial: true, Remote: true, TTLSeconds: tc.req,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if resp.TTLSeconds != tc.want {
			t.Errorf("%s: granted TTL %v, want %v", tc.name, resp.TTLSeconds, tc.want)
		}
		// Renewing may also re-negotiate the TTL, with the same clamps.
		rr, err := cl.Renew(ctx, resp.Lease, time.Hour)
		if err != nil {
			t.Fatalf("%s: renew: %v", tc.name, err)
		}
		if rr.TTLSeconds != 0.5 {
			t.Errorf("%s: renewed TTL %v, want clamp to 0.5", tc.name, rr.TTLSeconds)
		}
		if err := cl.Free(ctx, resp.Lease); err != nil {
			t.Fatal(err)
		}
	}

	var apiErr *server.APIError
	if _, err := cl.Renew(ctx, 999999, 0); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("renew of unknown lease: %v, want 404", err)
	}
}

// TestOrphanReaperReclaimsAbandonedLeases checks the two reaper
// invariants end to end: an abandoned lease is gone within 2×TTL while
// a heartbeating client's lease survives — including across a restart,
// where the reap must have been journaled as a free.
func TestOrphanReaperReclaimsAbandonedLeases(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "wal")
	ttl := 200 * time.Millisecond
	_, srv, ts := startLifecycle(t, server.Config{
		JournalPath:     path,
		DefaultLeaseTTL: ttl,
		MinLeaseTTL:     20 * time.Millisecond,
		ReapInterval:    30 * time.Millisecond,
	})

	crasher := server.NewClient(ts.URL, server.WithoutHeartbeat())
	orphan, err := crasher.Alloc(ctx, server.AllocRequest{
		Name: "orphan", Size: 1 << 20, Attr: "Capacity", Partial: true, Remote: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	holder := server.NewClient(ts.URL)
	defer holder.Close()
	held, err := holder.Alloc(ctx, server.AllocRequest{
		Name: "held", Size: 1 << 20, Attr: "Capacity", Partial: true, Remote: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if held.TTLSeconds <= 0 {
		t.Fatalf("no TTL granted: %+v", held)
	}

	deadline := time.Now().Add(2 * ttl)
	for {
		alive := false
		for _, l := range leasesOf(t, srv).Leases {
			if l.Lease == orphan.Lease {
				alive = true
			}
		}
		if !alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("orphan still alive after 2×TTL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m := metricsOf(t, srv); m["hetmemd_leases_reaped_total"] < 1 {
		t.Errorf("leases_reaped_total = %v, want >= 1", m["hetmemd_leases_reaped_total"])
	}
	// The heartbeating client's lease must still be renewable.
	if _, err := holder.Renew(ctx, held.Lease, 0); err != nil {
		t.Fatalf("heartbeating lease lost: %v", err)
	}

	// Restart from the journal: the reap was journaled as a free, so
	// the orphan must not be resurrected; the held lease must survive.
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	sys2, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.NewWithConfig(sys2, server.Config{
		JournalPath:     path,
		DefaultLeaseTTL: ttl,
		MinLeaseTTL:     20 * time.Millisecond,
		ReapInterval:    30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	var sawHeld, sawOrphan bool
	for _, l := range leasesOf(t, srv2).Leases {
		switch l.Lease {
		case held.Lease:
			sawHeld = true
		case orphan.Lease:
			sawOrphan = true
		}
	}
	if sawOrphan {
		t.Error("reaped orphan resurrected by restart")
	}
	if !sawHeld {
		t.Error("held lease lost across restart")
	}
}

// TestReapStressHarness runs the reapstress acceptance harness (the
// same code `hetmemd reapstress` uses) against an in-process daemon.
func TestReapStressHarness(t *testing.T) {
	_, _, ts := startLifecycle(t, server.Config{
		DefaultLeaseTTL: 250 * time.Millisecond,
		MinLeaseTTL:     50 * time.Millisecond,
		ReapInterval:    60 * time.Millisecond,
	})
	rep, err := server.ReapStress(context.Background(), ts.URL, server.ReapStressOptions{
		Crashers: 8, Holders: 4, LeaseTTL: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("%v (%s)", err, rep)
	}
	if rep.Reaped != 8 || rep.HoldersKept != 4 {
		t.Fatalf("unexpected report: %s", rep)
	}
}

// TestCheckpointBoundsWAL drives sequential alloc/free churn against a
// size-triggered checkpointer and requires the WAL to stay bounded
// instead of growing with history — then verifies a restart still
// recovers the live set exactly.
func TestCheckpointBoundsWAL(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "wal")
	_, srv, ts := startLifecycle(t, server.Config{
		JournalPath:      path,
		CheckpointMaxWAL: 8 << 10,
	})
	cl := server.NewClient(ts.URL, server.WithoutHeartbeat())

	var keep []uint64
	for i := 0; i < 300; i++ {
		resp, err := cl.Alloc(ctx, server.AllocRequest{
			Name: fmt.Sprintf("churn-%d", i), Size: 1 << 20,
			Attr: attrFor(i), Partial: true, Remote: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			keep = append(keep, resp.Lease)
		} else if err := cl.Free(ctx, resp.Lease); err != nil {
			t.Fatal(err)
		}
	}
	// The size trigger fires asynchronously; give the checkpointer a
	// moment to drain the last kick.
	var m map[string]float64
	deadline := time.Now().Add(2 * time.Second)
	for {
		m = metricsOf(t, srv)
		if m["hetmemd_wal_bytes"] <= 64<<10 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m["hetmemd_checkpoint_total"] < 1 {
		t.Fatalf("no checkpoint ran under churn: %v", m["hetmemd_checkpoint_total"])
	}
	if m["hetmemd_wal_bytes"] > 64<<10 {
		t.Fatalf("WAL unbounded after checkpoints: %v bytes", m["hetmemd_wal_bytes"])
	}

	pre := leasesOf(t, srv)
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	sys2, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.NewWithConfig(sys2, server.Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	post := leasesOf(t, srv2)
	if !reflect.DeepEqual(pre, post) {
		t.Fatalf("restart diverged after compaction:\npre  %+v\npost %+v", pre, post)
	}
	if post.Count != len(keep) {
		t.Fatalf("recovered %d leases, want %d", post.Count, len(keep))
	}
}

// TestChaosCheckpointCrashRecovery is the mid-checkpoint kill: 32
// clients hammer a daemon whose checkpointer runs every few
// milliseconds (and on a small size trigger), the HTTP frontend is
// yanked mid-stream, and a fresh daemon restarted from the same files
// must reproduce the crashed instance's lease table and per-node byte
// accounting exactly — with /metrics agreeing node for node.
func TestChaosCheckpointCrashRecovery(t *testing.T) {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wal")
	srv, err := server.NewWithConfig(sys, server.Config{
		JournalPath:      path,
		CheckpointEvery:  5 * time.Millisecond,
		CheckpointMaxWAL: 32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := server.NewClient(ts.URL, server.WithRetryPolicy(server.NoRetry))
			var leases []uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 4 {
				case 0, 1:
					resp, err := cl.Alloc(ctx, server.AllocRequest{
						Name: fmt.Sprintf("c%d-%d", id, i), Size: 8 << 20,
						Attr: attrFor(id + i), Partial: true, Remote: true,
					})
					if err == nil {
						leases = append(leases, resp.Lease)
					}
				case 2:
					if len(leases) > 0 {
						if cl.Free(ctx, leases[0]) == nil {
							leases = leases[1:]
						}
					}
				default:
					if len(leases) > 0 {
						cl.Migrate(ctx, server.MigrateRequest{
							Lease: leases[0], Attr: attrFor(i), Remote: true,
						})
					}
				}
			}
		}(c)
	}

	time.Sleep(250 * time.Millisecond)
	close(stop)
	ts.Close()
	wg.Wait()

	pre := leasesOf(t, srv)
	if pre.Count == 0 {
		t.Fatal("crash test ended with an empty lease table; nothing to recover")
	}
	if m := metricsOf(t, srv); m["hetmemd_checkpoint_total"] < 1 {
		t.Fatalf("checkpointer never ran during traffic: %v", m["hetmemd_checkpoint_total"])
	}
	// Stopping the daemon's background goroutines is the only way to
	// safely reopen its files in-process; Close appends nothing, so the
	// on-disk bytes are exactly the crash image the kill left behind.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.NewWithConfig(sys2, server.Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	post := leasesOf(t, srv2)
	if !reflect.DeepEqual(pre, post) {
		t.Fatalf("restart diverged from pre-crash state:\npre  %+v\npost %+v", pre, post)
	}
	m2 := metricsOf(t, srv2)
	for _, n := range sys.Machine.Nodes() {
		n2 := sys2.Machine.NodeByOS(n.OSIndex())
		if n.Allocated() != n2.Allocated() {
			t.Errorf("node %s#%d: pre-crash %d bytes, restored %d",
				n.Kind(), n.OSIndex(), n.Allocated(), n2.Allocated())
		}
		key := fmt.Sprintf("hetmemd_node_bytes_in_use{node=%q}", fmt.Sprintf("%s#%d", n2.Kind(), n2.OSIndex()))
		if got := m2[key]; got != float64(n2.Allocated()) {
			t.Errorf("%s = %v, machine says %d", key, got, n2.Allocated())
		}
	}
}

// TestChaosDiskFaultRecovery arms fsync failures and torn writes under
// live traffic, then restarts from the battered files and checks the
// two durability invariants: no lease whose alloc was acknowledged and
// never freed may be lost, and no lease whose free was acknowledged
// may be resurrected. (Leases whose free ERRORED are indeterminate —
// the free may or may not have reached the WAL — and are skipped.)
func TestChaosDiskFaultRecovery(t *testing.T) {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wal")
	ffs := faults.NewFaultFS(faults.OS, 7)
	srv, err := server.NewWithConfig(sys, server.Config{
		JournalPath:      path,
		FS:               ffs,
		SyncEveryAppend:  true,
		CheckpointEvery:  10 * time.Millisecond,
		CheckpointMaxWAL: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	ctx := context.Background()
	stop := make(chan struct{})
	var pump sync.WaitGroup
	pump.Add(1)
	go func() {
		defer pump.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(15 * time.Millisecond):
				ffs.FailSyncs(1)
				ffs.ShortWrites(1)
			}
		}
	}()

	type ledger struct {
		acked     map[uint64]bool // alloc acknowledged
		freed     map[uint64]bool // free acknowledged
		freeTried map[uint64]bool // free attempted (acked or not)
	}
	ledgers := make([]ledger, 16)
	var wg sync.WaitGroup
	for c := 0; c < len(ledgers); c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			led := ledger{map[uint64]bool{}, map[uint64]bool{}, map[uint64]bool{}}
			cl := server.NewClient(ts.URL, server.WithRetryPolicy(server.NoRetry))
			var live []uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					ledgers[id] = led
					return
				default:
				}
				if i%3 == 2 && len(live) > 0 {
					lease := live[0]
					led.freeTried[lease] = true
					if cl.Free(ctx, lease) == nil {
						led.freed[lease] = true
					}
					live = live[1:]
					continue
				}
				resp, err := cl.Alloc(ctx, server.AllocRequest{
					Name: fmt.Sprintf("df%d-%d", id, i), Size: 4 << 20,
					Attr: attrFor(id + i), Partial: true, Remote: true,
				})
				if err == nil {
					led.acked[resp.Lease] = true
					live = append(live, resp.Lease)
				}
			}
		}(c)
	}

	time.Sleep(250 * time.Millisecond)
	close(stop)
	ts.Close()
	wg.Wait()
	pump.Wait()

	syncs, shorts, _, _ := ffs.Delivered()
	if syncs == 0 && shorts == 0 {
		t.Fatal("no disk faults delivered; test proved nothing")
	}
	t.Logf("delivered %d fsync failures, %d torn writes", syncs, shorts)
	// The pump may leave one armed fault for Close's final checkpoint to
	// trip over; that error is the injection working, and recovery below
	// must still hold.
	if err := srv.Close(); err != nil &&
		!errors.Is(err, faults.ErrInjectedSync) &&
		!errors.Is(err, faults.ErrInjectedShortWrite) &&
		!errors.Is(err, faults.ErrInjectedWrite) {
		t.Fatal(err)
	}

	sys2, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.NewWithConfig(sys2, server.Config{JournalPath: path})
	if err != nil {
		t.Fatalf("recovery from fault-battered files: %v", err)
	}
	defer srv2.Close()

	post := make(map[uint64]bool)
	for _, l := range leasesOf(t, srv2).Leases {
		post[l.Lease] = true
	}
	for _, led := range ledgers {
		for lease := range led.acked {
			switch {
			case led.freed[lease]:
				if post[lease] {
					t.Errorf("lease %d: free was acknowledged but restart resurrected it", lease)
				}
			case !led.freeTried[lease]:
				if !post[lease] {
					t.Errorf("lease %d: alloc was acknowledged, never freed, but lost", lease)
				}
			}
		}
	}

	// Confirm via os.Stat that disk-fault churn did not leave the WAL
	// unbounded either: compaction kept running between faults.
	if st, err := os.Stat(path); err == nil && st.Size() > 4<<20 {
		t.Errorf("WAL grew to %d bytes despite checkpointing", st.Size())
	}
}
