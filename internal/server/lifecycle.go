package server

// Lease lifecycle and durable-state maintenance: the background
// goroutines NewWithConfig starts (and Close stops) plus their
// manually-invokable cores, which tests and the reapstress harness
// drive directly.
//
//   - The orphan reaper reclaims leases whose clients stopped
//     heartbeating: an expired lease is taken from the table, its
//     bytes freed, and the free journaled exactly like a client free —
//     so a restart never resurrects a reaped lease.
//   - The checkpointer snapshots the lease table and compacts the WAL,
//     on a timer and whenever the WAL outgrows CheckpointMaxWAL.
//   - The rebalancer re-admits a healed node: leases evacuated while
//     it was offline migrate back in byte-budgeted, paced batches.

import (
	"time"

	"hetmem/internal/journal"
)

// startBackground launches the goroutines the config asks for.
func (s *Server) startBackground() {
	if s.cfg.ReapInterval > 0 {
		s.wg.Add(1)
		go s.reapLoop()
	}
	if s.store != nil && (s.cfg.CheckpointEvery > 0 || s.cfg.CheckpointMaxWAL > 0) {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	if s.advisor != nil {
		s.wg.Add(1)
		go s.advisorLoop()
	}
}

func (s *Server) reapLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.ReapNow()
		}
	}
}

// ReapNow scans the lease table once and reclaims every expired lease,
// returning how many it reaped. Exported so tests and the reapstress
// harness can force a scan without waiting out the ReapInterval.
func (s *Server) ReapNow() int {
	now := time.Now()
	reaped := 0
	all := s.leases.borrowAll()
	defer releaseAll(all)
	for _, l := range all {
		if !l.expiredAt(now) {
			continue
		}
		taken, ok := s.leases.take(l.id)
		if !ok {
			continue // freed concurrently
		}
		// A renewal may have slipped in between the scan and the take;
		// put a refreshed lease back instead of reaping it under the
		// client's feet.
		if !taken.expiredAt(time.Now()) {
			s.leases.restore(taken)
			continue
		}
		s.ckmu.RLock()
		taken.jmu.Lock()
		segs := taken.buf.SegmentsSnapshot()
		err := s.sys.Machine.Free(taken.buf)
		if err == nil {
			// Journaled exactly like a client free. If the append
			// fails, the restart replays the alloc, regrants one TTL of
			// grace, and reaps again — self-healing, so no rollback.
			s.appendJournal(journal.Record{Op: journal.OpFree, Lease: taken.id})
		}
		taken.jmu.Unlock()
		s.ckmu.RUnlock()
		if err != nil {
			// take transferred the table's reference to us; the lease
			// stays out of the table either way, so drop it.
			taken.release()
			continue
		}
		if taken.key != "" {
			s.idem.forget(taken.key)
		}
		// A reap is an eviction from the tenant's point of view: give
		// the bytes back, count it, and wake queued admissions.
		tn := s.tenants.Get(taken.tenant)
		refundSegs(tn, segs)
		tn.Evictions.Add(1)
		taken.release()
		reaped++
		s.metrics.LeasesReaped.Add(1)
	}
	if reaped > 0 {
		s.admitGate.broadcast()
	}
	if reaped > 0 {
		s.bumpEpoch()
	}
	return reaped
}

func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	every := s.cfg.CheckpointEvery
	if every <= 0 {
		// Size-triggered only: the ticker is just a liveness backstop.
		every = time.Minute
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		case <-s.ckptKick:
		}
		s.CheckpointNow()
	}
}

// CheckpointNow snapshots the lease table and compacts the WAL. It
// holds the checkpoint lock's write side, freezing every mutator for
// the capture+swap, so the snapshot and the compacted WAL describe the
// same instant. A no-op without a journal.
func (s *Server) CheckpointNow() error {
	if s.store == nil {
		return nil
	}
	s.ckmu.Lock()
	defer s.ckmu.Unlock()
	err := s.store.Checkpoint(func() ([]journal.Record, uint64, error) {
		leases := s.leases.borrowAll()
		defer releaseAll(leases)
		live := make([]journal.Record, 0, len(leases))
		for _, l := range leases {
			live = append(live, journal.Record{
				Op:        journal.OpAlloc,
				Lease:     l.id,
				Name:      l.name,
				Attr:      l.attr,
				Initiator: l.initiator,
				Key:       l.key,
				Size:      l.size,
				Tenant:    l.tenant,
				TTLMillis: uint64(l.getTTL() / time.Millisecond),
				Segments:  segmentsOf(l.buf),
			})
		}
		return live, s.leases.next.Load(), nil
	})
	if err != nil {
		s.metrics.CheckpointFailed.Add(1)
		return err
	}
	s.metrics.CheckpointTotal.Add(1)
	return nil
}

// maybeRebalance starts one paced rebalance toward a node that just
// returned to healthy, unless one is already running for it.
func (s *Server) maybeRebalance(nodeOS int) {
	if s.cfg.RebalanceInterval <= 0 {
		return
	}
	s.rebalMu.Lock()
	if s.rebalancing[nodeOS] {
		s.rebalMu.Unlock()
		return
	}
	s.rebalancing[nodeOS] = true
	s.rebalMu.Unlock()
	s.wg.Add(1)
	go s.rebalance(nodeOS)
}

// rebalance migrates leases whose best-ranked target is the healed
// node (and which have no bytes on it) back onto it, at most
// RebalanceBudget bytes per batch with RebalanceInterval pauses in
// between — re-admission must not stampede a node that just recovered.
// It bails out if the node leaves the healthy state mid-walk.
func (s *Server) rebalance(nodeOS int) {
	defer s.wg.Done()
	defer func() {
		s.rebalMu.Lock()
		delete(s.rebalancing, nodeOS)
		s.rebalMu.Unlock()
	}()
	var batch uint64
	all := s.leases.borrowAll()
	defer releaseAll(all)
	for _, l := range all {
		select {
		case <-s.stop:
			return
		default:
		}
		if s.health.state(nodeOS) != Healthy {
			return // relapsed; stop sending load at it
		}
		if !s.wantsNode(l, nodeOS) {
			continue
		}
		s.ckmu.RLock()
		l.jmu.Lock()
		var err error
		if l.buf.Freed() {
			err = errNoSuchLease
		} else {
			_, _, err = s.migrateLocked(l, l.attr, l.initiator, false)
		}
		l.jmu.Unlock()
		s.ckmu.RUnlock()
		if err != nil {
			s.metrics.RebalanceFailed.Add(1)
			continue
		}
		s.metrics.RebalanceTotal.Add(1)
		s.metrics.RebalanceBytes.Add(l.size)
		batch += l.size
		if s.cfg.RebalanceBudget > 0 && batch >= s.cfg.RebalanceBudget {
			batch = 0
			select {
			case <-s.stop:
				return
			case <-time.After(s.cfg.RebalanceInterval):
			}
		}
	}
}

// wantsNode reports whether the lease's best-ranked placement is the
// given node while the lease holds no bytes there — the signature of a
// lease that was evacuated (or allocated elsewhere) while the node was
// down.
func (s *Server) wantsNode(l *lease, nodeOS int) bool {
	for _, seg := range l.buf.SegmentsSnapshot() {
		if seg.Node.OSIndex() == nodeOS {
			return false
		}
	}
	id, ok := s.sys.Registry.ByName(attrOf(l))
	if !ok {
		return false
	}
	ini, err := s.resolveInitiator(l.initiator)
	if err != nil {
		return false
	}
	cands, _, _, err := s.sys.Allocator.Candidates(id, ini, true)
	if err != nil || len(cands) == 0 {
		return false
	}
	return cands[0].Target.OSIndex == nodeOS
}
