package server

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions configures a load-generation run.
type LoadOptions struct {
	// Clients is the number of concurrent client goroutines.
	Clients int
	// RequestsPerClient is how many operations each client issues.
	RequestsPerClient int
	// MaxLive bounds how many leases each client keeps alive at once.
	MaxLive int
	// MaxSizeBytes bounds individual allocation sizes (sizes are drawn
	// uniformly in [1 MiB, MaxSizeBytes]).
	MaxSizeBytes uint64
	// Seed makes the traffic mix reproducible.
	Seed int64
	// Initiator is the cpuset list requests carry; empty lets the
	// daemon use the whole machine.
	Initiator string
	// Tolerate, when set, classifies errors the run accepts as part of
	// the experiment (e.g. 503s while a chaos plan has nodes down):
	// tolerated errors are counted but do not fail the run.
	Tolerate func(error) bool
	// Retry overrides the clients' retry policy (nil = DefaultRetry).
	Retry *RetryPolicy
}

// withDefaults fills unset options with sane load-test values.
func (o LoadOptions) withDefaults() LoadOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.RequestsPerClient <= 0 {
		o.RequestsPerClient = 100
	}
	if o.MaxLive <= 0 {
		o.MaxLive = 8
	}
	if o.MaxSizeBytes == 0 {
		o.MaxSizeBytes = 64 << 20
	}
	return o
}

// LoadStats summarizes a load-generation run.
type LoadStats struct {
	Requests   uint64  // operations issued (allocs, frees, migrates, queries)
	Failed     uint64  // operations that returned an unexpected error
	Tolerated  uint64  // operations that failed in a way Tolerate accepts
	Allocs     uint64  // successful allocations
	Frees      uint64  // successful frees
	Migrates   uint64  // successful migrations
	Queries    uint64  // attrs/leases/metrics reads
	Seconds    float64 // wall time of the run
	Throughput float64 // requests per second
	// LeasesLeft is how many leases the run left alive on purpose, so
	// the caller can cross-check /metrics against /leases.
	LeasesLeft int
}

func (s LoadStats) String() string {
	return fmt.Sprintf("%d requests in %.2fs (%.0f req/s): %d allocs, %d frees, %d migrates, %d queries, %d failed, %d tolerated, %d leases left",
		s.Requests, s.Seconds, s.Throughput, s.Allocs, s.Frees, s.Migrates, s.Queries, s.Failed, s.Tolerated, s.LeasesLeft)
}

// attrMix is the attribute distribution of generated allocations: the
// three requests of the paper's portability demo.
var attrMix = []string{"Bandwidth", "Latency", "Capacity"}

// LoadTest drives mixed alloc/free/migrate/query traffic against the
// daemon at base from many concurrent clients and reports throughput.
// Roughly half the operations are allocations, a third frees, and the
// rest migrations and read-only queries. Each client frees all but its
// last few leases at the end, so the daemon is left with a small live
// table the caller can verify against /metrics. Canceling the context
// stops the run early (clients still drain their leases).
func LoadTest(ctx context.Context, base string, opts LoadOptions) (LoadStats, error) {
	opts = opts.withDefaults()
	var stats LoadStats
	var requests, failed, tolerated, allocs, frees, migrates, queries atomic.Uint64
	var leasesLeft atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, opts.Clients)
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var copts []ClientOption
			if opts.Retry != nil {
				copts = append(copts, WithRetryPolicy(*opts.Retry))
			}
			cl := NewClient(base, copts...)
			rng := rand.New(rand.NewSource(opts.Seed + int64(id)))
			var leases []uint64
			fail := func(err error) {
				if opts.Tolerate != nil && opts.Tolerate(err) {
					tolerated.Add(1)
					return
				}
				failed.Add(1)
				select {
				case errCh <- err:
				default:
				}
			}
			for i := 0; i < opts.RequestsPerClient && ctx.Err() == nil; i++ {
				requests.Add(1)
				switch op := rng.Intn(12); {
				case op < 6 || len(leases) == 0: // alloc
					size := 1<<20 + uint64(rng.Int63n(int64(opts.MaxSizeBytes-1<<20+1)))
					resp, err := cl.Alloc(ctx, AllocRequest{
						Name:      fmt.Sprintf("load-%d-%d", id, i),
						Size:      size,
						Attr:      attrMix[rng.Intn(len(attrMix))],
						Initiator: opts.Initiator,
						Partial:   true,
						Remote:    true,
					})
					if err != nil {
						fail(err)
						continue
					}
					allocs.Add(1)
					leases = append(leases, resp.Lease)
					// Stay under the live-lease cap.
					for len(leases) > opts.MaxLive {
						requests.Add(1)
						if err := cl.Free(ctx, leases[0]); err != nil {
							fail(err)
						} else {
							frees.Add(1)
						}
						leases = leases[1:]
					}
				case op < 9: // free
					j := rng.Intn(len(leases))
					if err := cl.Free(ctx, leases[j]); err != nil {
						fail(err)
					} else {
						frees.Add(1)
					}
					leases = append(leases[:j], leases[j+1:]...)
				case op < 10: // migrate
					j := rng.Intn(len(leases))
					_, err := cl.Migrate(ctx, MigrateRequest{
						Lease:     leases[j],
						Attr:      attrMix[rng.Intn(len(attrMix))],
						Initiator: opts.Initiator,
						Remote:    true,
					})
					if err != nil {
						fail(err)
					} else {
						migrates.Add(1)
					}
				default: // read-only queries
					var err error
					switch rng.Intn(3) {
					case 0:
						_, err = cl.Attrs(ctx)
					case 1:
						_, err = cl.Leases(ctx, false)
					default:
						_, err = cl.Metrics(ctx)
					}
					if err != nil {
						fail(err)
					} else {
						queries.Add(1)
					}
				}
			}
			// Drain down to at most one survivor per client so the
			// verification workload is non-trivial but small. Draining
			// outlives ctx cancellation: use a fresh context so an early
			// stop still leaves clean books.
			drainCtx := context.Background()
			for len(leases) > 1 {
				requests.Add(1)
				if err := cl.Free(drainCtx, leases[0]); err != nil {
					fail(err)
				} else {
					frees.Add(1)
				}
				leases = leases[1:]
			}
			leasesLeft.Add(int64(len(leases)))
		}(c)
	}
	wg.Wait()

	stats.Requests = requests.Load()
	stats.Failed = failed.Load()
	stats.Tolerated = tolerated.Load()
	stats.Allocs = allocs.Load()
	stats.Frees = frees.Load()
	stats.Migrates = migrates.Load()
	stats.Queries = queries.Load()
	stats.Seconds = time.Since(start).Seconds()
	stats.Throughput = float64(stats.Requests) / stats.Seconds
	stats.LeasesLeft = int(leasesLeft.Load())

	var firstErr error
	select {
	case firstErr = <-errCh:
	default:
	}
	if stats.Failed > 0 {
		return stats, fmt.Errorf("server: load test had %d failed requests, first: %w", stats.Failed, firstErr)
	}
	return stats, nil
}

// VerifyConsistency cross-checks the daemon's books: the per-node
// bytes-in-use gauges of /metrics must sum to exactly the bytes of the
// live lease table reported by /leases, and the per-node breakdowns
// must match node for node. It returns a description of the state on
// success.
func VerifyConsistency(ctx context.Context, base string) (string, error) {
	cl := NewClient(base)
	leases, err := cl.Leases(ctx, false)
	if err != nil {
		return "", err
	}
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		return "", err
	}
	inUse := SumSeries(metrics, "hetmemd_node_bytes_in_use")
	var leaseBytes uint64
	for _, b := range leases.NodeBytes {
		leaseBytes += b
	}
	if math.Abs(inUse-float64(leaseBytes)) > 0.5 {
		return "", fmt.Errorf("server: /metrics reports %.0f bytes in use, lease table holds %d", inUse, leaseBytes)
	}
	for node, b := range leases.NodeBytes {
		key := fmt.Sprintf("hetmemd_node_bytes_in_use{node=%q}", node)
		if got, ok := metrics[key]; !ok || math.Abs(got-float64(b)) > 0.5 {
			return "", fmt.Errorf("server: node %s: /metrics=%v, leases=%d", node, got, b)
		}
	}
	active := SumSeries(metrics, "hetmemd_leases_active")
	if int(active) != leases.Count {
		return "", fmt.Errorf("server: /metrics reports %d active leases, /leases reports %d", int(active), leases.Count)
	}
	// Per-tenant books: each tenant's lease-table bytes must equal the
	// sum of its hetmemd_tenant_bytes{tenant=...,kind=...} series. The
	// tenant label is always emitted first, so the prefix is exact.
	var tenantBytes uint64
	for name, b := range leases.TenantBytes {
		tenantBytes += b
		got := SumSeriesPrefix(metrics, fmt.Sprintf("hetmemd_tenant_bytes{tenant=%q", name))
		if math.Abs(got-float64(b)) > 0.5 {
			return "", fmt.Errorf("server: tenant %s: /metrics=%v bytes, leases=%d", name, got, b)
		}
	}
	if len(leases.TenantBytes) > 0 && tenantBytes != leaseBytes {
		return "", fmt.Errorf("server: tenant bytes sum to %d, lease table holds %d", tenantBytes, leaseBytes)
	}
	return fmt.Sprintf("consistent: %d leases, %d bytes across %d nodes, %d tenants", leases.Count, leaseBytes, len(leases.NodeBytes), len(leases.TenantBytes)), nil
}
