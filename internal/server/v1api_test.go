package server_test

// PR-4 API tests: the /v1 prefix, the deprecated legacy aliases, the
// uniform v1 error envelope (golden bodies), the typed client errors,
// the batch allocation endpoint, and the fast-path metrics.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hetmem/internal/core"
	"hetmem/internal/faults"
	"hetmem/internal/server"
)

// postJSON fires one raw POST so tests can hit exact paths and inspect
// raw bodies without the client's conveniences in the way.
func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestLegacyRoutes is the backward-compatibility contract: every
// pre-v1 path keeps answering with the old wire format for one
// release, stamped with a Deprecation header and a successor-version
// link. CI greps for this test's PASS line — do not rename or skip it.
func TestLegacyRoutes(t *testing.T) {
	ts, _ := startDaemon(t, "xeon")

	// Legacy GET routes answer 200 with the deprecation stamps.
	for _, path := range []string{"/topology", "/attrs", "/leases", "/metrics", "/health"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
		if dep := resp.Header.Get("Deprecation"); dep != "true" {
			t.Errorf("GET %s: Deprecation header %q, want \"true\"", path, dep)
		}
		want := "</v1" + path + `>; rel="successor-version"`
		if link := resp.Header.Get("Link"); link != want {
			t.Errorf("GET %s: Link header %q, want %q", path, link, want)
		}
	}

	// The v1 routes carry no deprecation stamps.
	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Errorf("/v1/health is stamped deprecated")
	}

	// A legacy alloc round-trip still works end to end.
	resp2, body := postJSON(t, ts.URL+"/alloc", `{"name":"legacy","size":1048576,"attr":"Bandwidth","initiator":"0-19"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("legacy /alloc: status %d: %s", resp2.StatusCode, body)
	}
	var ar server.AllocResponse
	if err := json.Unmarshal(body, &ar); err != nil || ar.Lease == 0 {
		t.Fatalf("legacy /alloc response %s: %v", body, err)
	}
	if resp2.Header.Get("Deprecation") != "true" {
		t.Errorf("legacy /alloc missing Deprecation header")
	}

	// Legacy errors keep the old {"error": ...} body — no v1 envelope.
	resp3, body := postJSON(t, ts.URL+"/free", `{"lease":999999}`)
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("legacy /free of unknown lease: status %d, want 404", resp3.StatusCode)
	}
	var legacy map[string]json.RawMessage
	if err := json.Unmarshal(body, &legacy); err != nil {
		t.Fatal(err)
	}
	if _, ok := legacy["error"]; !ok {
		t.Errorf("legacy error body %s lacks the old \"error\" field", body)
	}
	if _, ok := legacy["code"]; ok {
		t.Errorf("legacy error body %s leaked the v1 \"code\" field", body)
	}
}

// TestV1ErrorEnvelope pins the v1 error contract with golden bodies:
// stable code, exact message, retryable flag, and the retry hint.
func TestV1ErrorEnvelope(t *testing.T) {
	_, _, ts, _ := startConfigured(t, "xeon", server.Config{ShedWatermark: 0.5, RetryAfterSeconds: 2})

	cases := []struct {
		name       string
		path, body string
		status     int
		golden     string
	}{
		{
			name: "bad_request",
			path: "/v1/alloc", body: `{"name":"x","size":1,"attr":"Nope"}`,
			status: http.StatusBadRequest,
			golden: `{"code":"bad_request","message":"server: bad request: unknown attribute \"Nope\"","retryable":false}`,
		},
		{
			name: "lease_expired",
			path: "/v1/free", body: `{"lease":424242}`,
			status: http.StatusNotFound,
			golden: `{"code":"lease_expired","message":"server: no such lease: 424242","retryable":false}`,
		},
		{
			name: "migrate_unknown_lease",
			path: "/v1/migrate", body: `{"lease":424242,"attr":"Bandwidth"}`,
			status: http.StatusNotFound,
			golden: `{"code":"lease_expired","message":"server: no such lease: 424242","retryable":false}`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+c.path, c.body)
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, c.status, body)
			}
			if got := strings.TrimSpace(string(body)); got != c.golden {
				t.Errorf("envelope\n got %s\nwant %s", got, c.golden)
			}
		})
	}

	// Shedding: 503 with retryable=true, the retry hint in the body,
	// and the Retry-After header agreeing with it.
	resp, body := postJSON(t, ts.URL+"/v1/alloc",
		`{"name":"huge","size":18446744073709551615,"attr":"Capacity"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed alloc: status %d, want 503 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", resp.Header.Get("Retry-After"))
	}
	var eb server.ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != server.CodeShedding || !eb.Retryable || eb.RetryAfterSeconds != 2 {
		t.Errorf("shed envelope %+v, want code=shedding retryable=true retry_after=2", eb)
	}
}

// TestClientTypedErrors: the client rebuilds the envelope into an
// errors.As-able *APIError that errors.Is-matches the code sentinels.
func TestClientTypedErrors(t *testing.T) {
	ctx := context.Background()
	_, cl := startDaemon(t, "xeon")

	err := cl.Free(ctx, 987654)
	if err == nil {
		t.Fatal("free of unknown lease succeeded")
	}
	if !errors.Is(err, server.ErrLeaseExpired) {
		t.Errorf("errors.Is(err, ErrLeaseExpired) = false for %v", err)
	}
	if errors.Is(err, server.ErrCapacityExhausted) {
		t.Errorf("err matched the wrong sentinel: %v", err)
	}
	var ae *server.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("errors.As(*APIError) = false for %v", err)
	}
	if ae.StatusCode != http.StatusNotFound || ae.Code != server.CodeLeaseExpired {
		t.Errorf("APIError = %+v, want 404/lease_expired", ae)
	}

	_, err = cl.Alloc(ctx, server.AllocRequest{Name: "x", Size: 1, Attr: "Nope"})
	if !errors.Is(err, server.ErrCodeBadRequest) {
		t.Errorf("unknown attribute: errors.Is(ErrCodeBadRequest) = false for %v", err)
	}
}

// TestAllocBatch: per-item outcomes — valid items place and are
// leased, invalid items fail in place without vetoing their siblings.
func TestAllocBatch(t *testing.T) {
	ctx := context.Background()
	_, cl := startDaemon(t, "xeon")

	reqs := []server.AllocRequest{
		{Name: "a", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19"},
		{Name: "bad-attr", Size: 1 << 20, Attr: "Nope"},
		{Name: "b", Size: 1 << 20, Attr: "Latency", Initiator: "0-19"},
		{Name: "keyed", Size: 1 << 20, Attr: "Capacity", IdempotencyKey: "k1"},
		{Name: "", Size: 1 << 20, Attr: "Capacity"},
	}
	resp, err := cl.AllocBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(resp.Results), len(reqs))
	}
	if resp.Succeeded != 2 || resp.Failed != 3 {
		t.Fatalf("succeeded=%d failed=%d, want 2/3", resp.Succeeded, resp.Failed)
	}
	for _, i := range []int{0, 2} {
		if resp.Results[i].Alloc == nil || resp.Results[i].Alloc.Lease == 0 {
			t.Errorf("item %d should have placed: %+v", i, resp.Results[i])
		}
	}
	for _, i := range []int{1, 3, 4} {
		e := resp.Results[i].Error
		if e == nil || e.Code != server.CodeBadRequest {
			t.Errorf("item %d should be a per-item bad_request, got %+v", i, resp.Results[i])
		}
	}

	// The placed leases are real: free them through the normal path.
	for _, i := range []int{0, 2} {
		if err := cl.Free(ctx, resp.Results[i].Alloc.Lease); err != nil {
			t.Errorf("free of batch lease %d: %v", resp.Results[i].Alloc.Lease, err)
		}
	}

	// Envelope-level failures are batch-level errors.
	if _, err := cl.AllocBatch(ctx, nil); !errors.Is(err, server.ErrCodeBadRequest) {
		t.Errorf("empty batch: %v, want bad_request", err)
	}
	over := make([]server.AllocRequest, server.MaxBatchAllocs+1)
	for i := range over {
		over[i] = server.AllocRequest{Name: "x", Size: 1, Attr: "Capacity"}
	}
	if _, err := cl.AllocBatch(ctx, over); !errors.Is(err, server.ErrCodeBadRequest) {
		t.Errorf("oversized batch: %v, want bad_request", err)
	}
}

// TestBatchAllocDurable: batch-placed leases go through the journal
// like single allocs — a restarted daemon restores every batch lease
// that was not freed.
func TestBatchAllocDurable(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{JournalPath: filepath.Join(dir, "wal"), GroupCommit: true}
	srv, err := server.NewWithConfig(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	cl := server.NewClient(ts.URL)

	reqs := make([]server.AllocRequest, 6)
	for i := range reqs {
		reqs[i] = server.AllocRequest{
			Name: fmt.Sprintf("batch%d", i), Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19",
		}
	}
	resp, err := cl.AllocBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Failed != 0 {
		t.Fatalf("batch had %d failures", resp.Failed)
	}
	// Free one so the restart must tell the difference.
	if err := cl.Free(ctx, resp.Results[0].Alloc.Lease); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.NewWithConfig(sys2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.LeaseCount(); got != len(reqs)-1 {
		t.Fatalf("restored %d leases, want %d", got, len(reqs)-1)
	}
}

// TestGroupCommitServerConcurrentDurability: many clients allocating
// through a group-commit daemon; after a clean restart every acked
// lease that was not freed is back, and every freed one stays gone.
func TestGroupCommitServerConcurrentDurability(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{JournalPath: filepath.Join(dir, "wal"), GroupCommit: true}
	srv, err := server.NewWithConfig(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	const clients, perClient = 8, 10
	kept := make([][]uint64, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := server.NewClient(ts.URL, server.WithRetryPolicy(server.NoRetry))
			for i := 0; i < perClient; i++ {
				resp, err := cl.Alloc(ctx, server.AllocRequest{
					Name: "gc", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19",
				})
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if i%2 == 0 {
					if err := cl.Free(ctx, resp.Lease); err != nil {
						t.Errorf("client %d free: %v", c, err)
						return
					}
				} else {
					kept[c] = append(kept[c], resp.Lease)
				}
			}
		}(c)
	}
	wg.Wait()
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	want := map[uint64]bool{}
	for _, ls := range kept {
		for _, l := range ls {
			want[l] = true
		}
	}
	sys2, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.NewWithConfig(sys2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.LeaseCount(); got != len(want) {
		t.Fatalf("restored %d leases, want %d", got, len(want))
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	cl := server.NewClient(ts2.URL)
	lr, err := cl.Leases(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lr.Leases {
		if !want[l.Lease] {
			t.Errorf("lease %d resurrected (was freed or never acked)", l.Lease)
		}
	}
}

// TestMetricsFastPathCounters: /metrics exposes the candidate-cache
// counters and the group-commit batch-size histogram.
func TestMetricsFastPathCounters(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWithConfig(sys, server.Config{
		JournalPath: filepath.Join(dir, "wal"), GroupCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := server.NewClient(ts.URL)

	// Identical placements: the second one hits the cache.
	for i := 0; i < 3; i++ {
		resp, err := cl.Alloc(ctx, server.AllocRequest{
			Name: "m", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19",
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Free(ctx, resp.Lease); err != nil {
			t.Fatal(err)
		}
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["hetmemd_placement_cache_hits_total"] < 2 {
		t.Errorf("cache hits = %v, want >= 2", m["hetmemd_placement_cache_hits_total"])
	}
	if m["hetmemd_placement_cache_misses_total"] < 1 {
		t.Errorf("cache misses = %v, want >= 1", m["hetmemd_placement_cache_misses_total"])
	}
	if m["hetmemd_journal_batch_size_count"] < 1 {
		t.Errorf("journal batch histogram empty: %v", m["hetmemd_journal_batch_size_count"])
	}
	if m["hetmemd_journal_batch_size_sum"] < 6 {
		t.Errorf("journal batch sum = %v, want >= 6 (3 allocs + 3 frees)", m["hetmemd_journal_batch_size_sum"])
	}
}

// TestCacheInvalidationOnHealthTransition: a fault-driven health
// transition must re-rank placements — the cached pre-fault ranking
// may not survive into the post-fault daemon.
func TestCacheInvalidationOnHealthTransition(t *testing.T) {
	ctx := context.Background()
	sys, injector, ts, cl := startConfigured(t, "xeon", server.Config{})

	// Warm the cache.
	resp, err := cl.Alloc(ctx, server.AllocRequest{
		Name: "warm", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19",
	})
	if err != nil {
		t.Fatal(err)
	}
	node := nodeOSOf(t, resp.Placement)

	// Knock the placed node offline: the health machinery invalidates
	// the cache, so the next identical alloc re-ranks (a miss) and
	// lands elsewhere.
	if err := injector.Apply(faults.Event{NodeOS: node, Kind: faults.Offline}); err != nil {
		t.Fatal(err)
	}

	resp2, err := cl.Alloc(ctx, server.AllocRequest{
		Name: "after", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19",
	})
	if err != nil {
		t.Fatal(err)
	}
	if nodeOSOf(t, resp2.Placement) == node {
		t.Errorf("post-fault alloc landed on the offline node %d", node)
	}
	_, misses := sys.Allocator.CacheStats()
	if misses < 2 {
		t.Errorf("health transition did not force a re-rank: misses=%d", misses)
	}
	_ = ts
}
