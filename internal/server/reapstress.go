package server

// ReapStress is the lease-lifecycle acceptance harness: it aims a
// crowd of crasher clients (allocate TTL leases, then vanish without
// freeing or heartbeating) and holder clients (allocate and keep
// heartbeating) at a daemon, waits out the reaping window, and checks
// the two invariants the orphan reaper promises:
//
//   - every abandoned lease is reclaimed within 2×TTL, and
//   - no heartbeating client ever loses a live lease.

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// ReapStressOptions configures the harness.
type ReapStressOptions struct {
	// Crashers is the number of leases allocated and then abandoned.
	Crashers int
	// Holders is the number of leases allocated and heartbeat-renewed
	// for the whole run.
	Holders int
	// LeaseTTL is the TTL requested for every lease. The daemon must
	// be configured so this survives clamping (MinLeaseTTL <= LeaseTTL
	// <= MaxLeaseTTL) and with a ReapInterval well under it.
	LeaseTTL time.Duration
	// SizeBytes is each lease's size (default 1 MiB).
	SizeBytes uint64
}

// ReapStressReport is the outcome.
type ReapStressReport struct {
	Orphaned    int           // leases abandoned
	Reaped      int           // of those, reclaimed by the deadline
	ReapedIn    time.Duration // when the last orphan disappeared
	HoldersKept int           // holder leases still alive at the end
	HoldersLost int           // holder leases the reaper wrongly took
}

func (r ReapStressReport) String() string {
	return fmt.Sprintf("%d/%d orphans reaped in %s, %d/%d heartbeating leases kept",
		r.Reaped, r.Orphaned, r.ReapedIn.Round(time.Millisecond),
		r.HoldersKept, r.HoldersKept+r.HoldersLost)
}

// ReapStress runs the harness against the daemon at base. It returns
// an error (with the report still filled in) if any orphan outlives
// 2×TTL or any heartbeating client loses a lease.
func ReapStress(ctx context.Context, base string, opts ReapStressOptions) (ReapStressReport, error) {
	if opts.SizeBytes == 0 {
		opts.SizeBytes = 1 << 20
	}
	var rep ReapStressReport
	ttl := opts.LeaseTTL
	if ttl <= 0 {
		return rep, fmt.Errorf("reapstress: LeaseTTL must be > 0")
	}

	// Crashers: allocate, never heartbeat, never free — the client-side
	// heartbeater is disabled so the leases are true orphans.
	crasher := NewClient(base, WithoutHeartbeat())
	orphans := make(map[uint64]bool, opts.Crashers)
	for i := 0; i < opts.Crashers; i++ {
		resp, err := crasher.Alloc(ctx, AllocRequest{
			Name: fmt.Sprintf("orphan-%d", i), Size: opts.SizeBytes,
			Attr: "Capacity", Partial: true, Remote: true,
			TTLSeconds: ttl.Seconds(),
		})
		if err != nil {
			return rep, fmt.Errorf("reapstress: orphan alloc %d: %w", i, err)
		}
		if resp.TTLSeconds <= 0 {
			return rep, fmt.Errorf("reapstress: orphan alloc %d granted no TTL — is the daemon's lease lifecycle on?", i)
		}
		orphans[resp.Lease] = true
	}
	rep.Orphaned = len(orphans)

	// Holders: same TTL, but the client heartbeats them automatically.
	holder := NewClient(base)
	defer holder.Close()
	held := make([]uint64, 0, opts.Holders)
	for i := 0; i < opts.Holders; i++ {
		resp, err := holder.Alloc(ctx, AllocRequest{
			Name: fmt.Sprintf("holder-%d", i), Size: opts.SizeBytes,
			Attr: "Capacity", Partial: true, Remote: true,
			TTLSeconds: ttl.Seconds(),
		})
		if err != nil {
			return rep, fmt.Errorf("reapstress: holder alloc %d: %w", i, err)
		}
		held = append(held, resp.Lease)
	}

	// Watch the lease table until every orphan is gone or 2×TTL is up.
	start := time.Now()
	deadline := start.Add(2 * ttl)
	poll := ttl / 10
	if poll < 5*time.Millisecond {
		poll = 5 * time.Millisecond
	}
	liveOrphans := func() (int, error) {
		lr, err := crasher.Leases(ctx, true)
		if err != nil {
			return 0, err
		}
		n := 0
		for _, l := range lr.Leases {
			if orphans[l.Lease] {
				n++
			}
		}
		return n, nil
	}
	remaining := len(orphans)
	for time.Now().Before(deadline) {
		var err error
		if remaining, err = liveOrphans(); err != nil {
			return rep, fmt.Errorf("reapstress: polling leases: %w", err)
		}
		if remaining == 0 {
			rep.ReapedIn = time.Since(start)
			break
		}
		select {
		case <-ctx.Done():
			return rep, ctx.Err()
		case <-time.After(poll):
		}
	}
	if remaining > 0 {
		// One last look exactly at the deadline.
		var err error
		if remaining, err = liveOrphans(); err != nil {
			return rep, fmt.Errorf("reapstress: polling leases: %w", err)
		}
		rep.ReapedIn = time.Since(start)
	}
	rep.Reaped = rep.Orphaned - remaining

	// The holders must all still be renewable — the reaper may never
	// take a lease whose client is heartbeating.
	var lost []string
	for _, id := range held {
		if _, err := holder.Renew(ctx, id, 0); err != nil {
			rep.HoldersLost++
			lost = append(lost, fmt.Sprintf("%d (%v)", id, err))
			continue
		}
		rep.HoldersKept++
		holder.Free(ctx, id)
	}

	switch {
	case remaining > 0 && rep.HoldersLost > 0:
		return rep, fmt.Errorf("reapstress: %d orphans outlived 2×TTL AND lost heartbeating leases: %s",
			remaining, strings.Join(lost, ", "))
	case remaining > 0:
		return rep, fmt.Errorf("reapstress: %d of %d orphans still alive after 2×TTL (%s)", remaining, rep.Orphaned, 2*ttl)
	case rep.HoldersLost > 0:
		return rep, fmt.Errorf("reapstress: reaper took %d heartbeating leases: %s", rep.HoldersLost, strings.Join(lost, ", "))
	}
	return rep, nil
}
