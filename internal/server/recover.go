package server

import (
	"fmt"
	"sort"
	"time"

	"hetmem/internal/journal"
	"hetmem/internal/memsim"
	"hetmem/internal/tenant"
)

// restoreFromJournal folds replayed records into the lease table and
// re-reserves each live lease's bytes on the machine, reconstructing
// per-node accounting exactly as it was journaled. The records come
// from journal.OpenStore, which has already truncated any torn tail
// and stitched the snapshot onto the WAL suffix, so every record here
// is internally consistent — but the sequence can still be
// semantically invalid (a free without an alloc), which is an error:
// it means the file was tampered with, not torn.
//
// Restored TTL leases get a fresh full TTL of grace from now: their
// clients' heartbeats were lost with the crash, and reaping a live
// client's lease is worse than carrying an orphan one extra TTL.
func (s *Server) restoreFromJournal(recs []journal.Record, nextLease uint64) error {
	type pending struct {
		rec   journal.Record // the alloc record, segments updated by migrates
		keyed bool
	}
	live := make(map[uint64]*pending)
	for i, r := range recs {
		switch r.Op {
		case journal.OpAlloc:
			if _, dup := live[r.Lease]; dup {
				return fmt.Errorf("server: journal record %d: duplicate alloc of lease %d", i, r.Lease)
			}
			var sum uint64
			for _, seg := range r.Segments {
				sum += seg.Bytes
			}
			if sum != r.Size {
				return fmt.Errorf("server: journal record %d: lease %d segments sum to %d, size %d",
					i, r.Lease, sum, r.Size)
			}
			live[r.Lease] = &pending{rec: r, keyed: r.Key != ""}
		case journal.OpFree:
			if _, ok := live[r.Lease]; !ok {
				return fmt.Errorf("server: journal record %d: free of unknown lease %d", i, r.Lease)
			}
			delete(live, r.Lease)
		case journal.OpMigrate:
			p, ok := live[r.Lease]
			if !ok {
				return fmt.Errorf("server: journal record %d: migrate of unknown lease %d", i, r.Lease)
			}
			var sum uint64
			for _, seg := range r.Segments {
				sum += seg.Bytes
			}
			if sum != p.rec.Size {
				return fmt.Errorf("server: journal record %d: migrated lease %d segments sum to %d, size %d",
					i, r.Lease, sum, p.rec.Size)
			}
			p.rec.Segments = r.Segments
			if r.Attr != "" {
				// The move reclassified the lease (the tiering advisor
				// journals its target attribute); the restored lease keeps
				// the new attribute.
				p.rec.Attr = r.Attr
			}
			if r.Origin == journal.OriginAdvisor {
				// Restore the advisor's move counters exactly as they
				// were: a Capacity-bound move was a demotion, anything
				// else a promotion.
				if r.Attr == "Capacity" {
					s.metrics.AdvisorDemoted.Add(1)
				} else {
					s.metrics.AdvisorPromoted.Add(1)
				}
			}
		default:
			return fmt.Errorf("server: journal record %d: unknown op %d", i, r.Op)
		}
	}

	// Materialize survivors in lease-ID order so buffer and ID ordering
	// are deterministic across restarts.
	ids := make([]uint64, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := live[id]
		parts := make([]memsim.Segment, len(p.rec.Segments))
		for i, seg := range p.rec.Segments {
			n := s.sys.Machine.NodeByOS(seg.NodeOS)
			if n == nil {
				return fmt.Errorf("server: journal lease %d references unknown node %d", id, seg.NodeOS)
			}
			parts[i] = memsim.Segment{Node: n, Bytes: seg.Bytes}
		}
		buf, err := s.sys.Machine.AllocSplit(p.rec.Name, parts)
		if err != nil {
			return fmt.Errorf("server: journal lease %d does not fit the machine: %w", id, err)
		}
		l := newLease()
		l.id = id
		l.name = p.rec.Name
		l.size = p.rec.Size
		l.attr = p.rec.Attr
		l.initiator = p.rec.Initiator
		l.key = p.rec.Key
		l.tenant = p.rec.Tenant
		if l.tenant == "" {
			// Pre-tenancy journal record: its lease belongs to the
			// default tenant, same as an untenanted live request.
			l.tenant = tenant.Default
		}
		l.buf = buf
		// Re-charge the tenant's books. ForceCharge, not Charge: the
		// bytes are already placed, and a quota lowered across the
		// restart must not strand a journaled lease.
		forceChargeBuf(s.tenants.Get(l.tenant), buf)
		l.setTTL(time.Duration(p.rec.TTLMillis) * time.Millisecond)
		l.renew(time.Now())
		s.leases.restore(l)
		if p.keyed {
			s.idem.restoreDone(p.rec.Key, AllocResponse{
				Lease:     id,
				Placement: buf.NodeNames(),
				AttrUsed:  p.rec.Attr,
			})
		}
	}
	s.leases.floor(nextLease)
	return nil
}
