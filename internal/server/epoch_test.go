package server_test

// Epoch-snapshot freshness under fire. The read endpoints serve an
// RCU snapshot rebuilt on generation bumps (see epoch.go); the
// correctness bound is that a read STARTED after a write's response
// returned observes that write — a snapshot can lag an in-flight
// write, never a completed one. Readers here hammer /v1/leases and
// /metrics while writers allocate (monotonically — nothing is freed,
// so the lease count is a watermark) and a fault injector degrades and
// restores a node to churn the machine generation. Each reader latches
// the writers' completed count before issuing its read and requires
// the response to be at or past that watermark. Run under -race this
// doubles as the data-race proof for the snapshot swap.
//
// Every loop is iteration-bounded, not time-bounded: on a small (even
// single-core) runner under the race detector, a free-running reader
// loop starves the writers and the test drags on for minutes doing no
// additional verification.

import (
	"context"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"hetmem/internal/core"
	"hetmem/internal/faults"
	"hetmem/internal/server"
)

func TestEpochReadFreshness(t *testing.T) {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWithConfig(sys, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inj := faults.NewInjector(faults.NewMachineTarget(sys.Machine))
	inj.Subscribe(srv.ApplyFault)

	const (
		writers    = 2
		allocsEach = 60
		readerIter = 80
		churnIter  = 60
	)
	ctx := context.Background()
	var completed atomic.Int64 // allocs whose responses have returned
	var wg sync.WaitGroup

	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := server.NewClient(ts.URL, server.WithRetryPolicy(server.NoRetry))
			for j := 0; j < allocsEach; j++ {
				if _, err := cl.Alloc(ctx, server.AllocRequest{
					Name: "epoch", Size: 4096, Attr: "Capacity",
				}); err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				completed.Add(1)
			}
		}()
	}

	// Fault churn: degrading and restoring a node bumps the machine
	// generation, forcing snapshot rebuilds to race the reads.
	churnNode := sys.Machine.Nodes()[0].OSIndex()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churnIter; i++ {
			inj.Apply(faults.Event{NodeOS: churnNode, Kind: faults.Degrade, BWFactor: 0.5, LatFactor: 2})
			inj.Apply(faults.Event{NodeOS: churnNode, Kind: faults.Restore})
		}
	}()

	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := server.NewClient(ts.URL, server.WithRetryPolicy(server.NoRetry))
			for j := 0; j < readerIter; j++ {
				lo := completed.Load()
				resp, err := cl.Leases(ctx, false)
				if err != nil {
					continue
				}
				if int64(resp.Count) < lo {
					t.Errorf("/v1/leases count %d staler than completed watermark %d", resp.Count, lo)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < readerIter; j++ {
				lo := completed.Load()
				rec := httptest.NewRecorder()
				srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				m, err := server.ParseMetrics(rec.Body.String())
				if err != nil {
					t.Errorf("parse /metrics: %v", err)
					return
				}
				if got := int64(m["hetmemd_leases_active"]); got < lo {
					t.Errorf("/metrics hetmemd_leases_active %d staler than completed watermark %d", got, lo)
					return
				}
			}
		}()
	}

	wg.Wait()

	// Quiesced: a final read must see every completed alloc exactly.
	cl := server.NewClient(ts.URL)
	resp, err := cl.Leases(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if want := writers * allocsEach; resp.Count != want {
		t.Fatalf("final lease count %d, want %d", resp.Count, want)
	}
}
