package server

// The tiering advisor's acceptance tests: convergence under hysteresis
// (a phase flip triggers exactly one migration, no flapping), the
// pause/resume control surface, budget exhaustion producing held_budget
// decisions, crash-restart preservation of the promoted/demoted
// counters byte-for-byte, and the /v1 surface around it (lease detail,
// advice on attribute-less allocs, the advisor_paused error code).
//
// The scenario mirrors the paper's motivating workload and the
// `hetmemd bench -advisor` harness: a latency-bound lease is allocated
// while the local fast tier is full of init scratch, so it lands on
// the capacity tier; the scratch is freed after the first phase; the
// advisor must notice the misplacement from telemetry alone and walk
// the lease up — but only after the configured number of agreeing
// samples.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hetmem/internal/advisor"
	"hetmem/internal/core"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
)

const advGiB = uint64(1) << 30

// advScenario is the shared workload rig: a xeon daemon whose package-0
// DRAM is stuffed with machine-level scratch, plus an engine pinned to
// package 0 to generate telemetry.
type advScenario struct {
	t       *testing.T
	sys     *core.System
	s       *Server
	eng     *memsim.Engine
	scratch *memsim.Buffer
}

func newAdvScenario(t *testing.T, cfg Config) *advScenario {
	t.Helper()
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithConfig(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ini := sys.InitiatorForPackage(0)
	scratch, _, err := sys.MemAlloc("scratch", 190*advGiB, memattr.Latency, ini)
	if err != nil {
		t.Fatal(err)
	}
	return &advScenario{t: t, sys: sys, s: s, eng: sys.Engine(ini), scratch: scratch}
}

// lease allocates a latency-bound lease pinned to package 0 and returns
// its ID and buffer.
func (a *advScenario) lease(name string, size uint64) (uint64, *memsim.Buffer) {
	a.t.Helper()
	resp, err := a.s.doAlloc(context.Background(), AllocRequest{
		Name: name, Size: size, Attr: "Latency",
		Initiator: a.sys.InitiatorForPackage(0).ListString(),
	})
	if err != nil {
		a.t.Fatal(err)
	}
	l, ok := a.s.leases.get(resp.Lease)
	if !ok {
		a.t.Fatalf("lease %d vanished", resp.Lease)
	}
	buf := l.buf
	l.release()
	return resp.Lease, buf
}

// freeScratch opens up the fast tier.
func (a *advScenario) freeScratch() {
	a.t.Helper()
	if err := a.sys.Free(a.scratch); err != nil {
		a.t.Fatal(err)
	}
	a.scratch = nil
}

// chase runs one pointer-chase phase against the given buffers,
// publishing fresh telemetry for the advisor to read.
func (a *advScenario) chase(bufs ...*memsim.Buffer) {
	accesses := make([]memsim.Access, len(bufs))
	for i, b := range bufs {
		accesses[i] = memsim.Access{Buffer: b, RandomReads: 50_000_000, MLP: 4}
	}
	a.eng.Phase("phase", accesses)
}

// decisionsByReason buckets a snapshot's decision log.
func decisionsByReason(snap advisor.Snapshot) map[string][]advisor.Decision {
	out := make(map[string][]advisor.Decision)
	for _, d := range snap.Decisions {
		out[d.Reason] = append(out[d.Reason], d)
	}
	return out
}

// TestAdvisorConvergesAfterPhaseFlip is the headline property: a lease
// that lands on the wrong tier is promoted exactly once, only after
// the hysteresis streak completes, and never touched again while its
// behaviour is stable.
func TestAdvisorConvergesAfterPhaseFlip(t *testing.T) {
	a := newAdvScenario(t, Config{
		AdvisorInterval:   time.Hour, // loop parked; cycles driven by hand
		AdvisorHysteresis: 3,
		AdvisorCooldown:   2,
	})
	id, index := a.lease("graph-index", 6*advGiB)
	if got := index.NodeNames(); !strings.Contains(got, "NVDIMM") {
		t.Fatalf("setup: lease should start on the capacity tier, got %s", got)
	}

	// Phase 1: DRAM is still full of scratch. The lease is misplaced
	// but the move is infeasible, so the advisor must not burn its
	// hysteresis streak (or journal a no-op "migration").
	a.chase(index)
	if n := a.s.AdviseOnce(); n != 0 {
		t.Fatalf("cycle with full fast tier moved %d leases, want 0", n)
	}
	a.freeScratch()

	// Streak cycles: hysteresis 3 means two held cycles, then the move.
	moves := 0
	for cycle := 1; cycle <= 3; cycle++ {
		a.chase(index)
		n := a.s.AdviseOnce()
		moves += n
		if cycle < 3 && n != 0 {
			t.Fatalf("cycle %d moved %d leases before the streak completed", cycle, n)
		}
	}
	if moves != 1 {
		t.Fatalf("streak completion made %d moves, want exactly 1", moves)
	}
	if got := index.NodeNames(); got != "DRAM#0" {
		t.Fatalf("promoted lease sits on %s, want DRAM#0", got)
	}

	// Stability: further agreeing cycles must not move it again.
	for i := 0; i < 3; i++ {
		a.chase(index)
		if n := a.s.AdviseOnce(); n != 0 {
			t.Fatalf("advisor flapped: moved an aligned lease on post-move cycle %d", i+1)
		}
	}

	if p := a.s.Metrics().AdvisorPromoted.Load(); p != 1 {
		t.Errorf("advisor_promoted_total = %d, want 1", p)
	}
	if d := a.s.Metrics().AdvisorDemoted.Load(); d != 0 {
		t.Errorf("advisor_demoted_total = %d, want 0", d)
	}

	snap := a.s.Advisor().Snapshot()
	if snap.Counters.Promoted != 1 || snap.Counters.Demoted != 0 {
		t.Errorf("snapshot counters %+v, want exactly one promotion", snap.Counters)
	}
	byReason := decisionsByReason(snap)
	// Every migration the advisor made must be accounted for in the
	// decision log, and vice versa.
	if got := uint64(len(byReason[advisor.ReasonPromoted]) + len(byReason[advisor.ReasonDemoted])); got != a.s.Metrics().AdvisorPromoted.Load()+a.s.Metrics().AdvisorDemoted.Load() {
		t.Errorf("decision log records %d moves, metrics record %d",
			got, a.s.Metrics().AdvisorPromoted.Load()+a.s.Metrics().AdvisorDemoted.Load())
	}
	if len(byReason[advisor.ReasonHeldHysteresis]) != 2 {
		t.Errorf("held_hysteresis decisions = %d, want 2 (hysteresis 3)", len(byReason[advisor.ReasonHeldHysteresis]))
	}
	mv := byReason[advisor.ReasonPromoted]
	if len(mv) != 1 {
		t.Fatalf("promoted decisions = %d, want 1", len(mv))
	}
	if mv[0].Lease != id || mv[0].Attr != "Latency" ||
		!strings.Contains(mv[0].From, "NVDIMM") || mv[0].To != "DRAM#0" {
		t.Errorf("promoted decision %+v, want lease %d Latency NVDIMM→DRAM#0", mv[0], id)
	}

	// The classification and the advice cache reflect the live verdict.
	if c := a.s.Advisor().Classification(id); c != "Latency" {
		t.Errorf("classification %q, want Latency", c)
	}
	if adv := a.s.Advisor().Advice("graph-index"); adv != "Latency" {
		t.Errorf("advice for graph-index %q, want Latency", adv)
	}
}

// TestAdvisorPauseResume drives the control endpoints end-to-end: a
// paused advisor makes zero moves, pausing twice is a 409 with the
// stable advisor_paused code, and resume is idempotent.
func TestAdvisorPauseResume(t *testing.T) {
	a := newAdvScenario(t, Config{
		AdvisorInterval:   time.Hour,
		AdvisorHysteresis: 1,
		AdvisorCooldown:   1,
	})
	_, index := a.lease("hot", 6*advGiB)
	ts := httptest.NewServer(a.s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL, WithRetryPolicy(NoRetry))
	ctx := context.Background()

	if err := cl.AdvisorPause(ctx); err != nil {
		t.Fatalf("pause: %v", err)
	}
	err := cl.AdvisorPause(ctx)
	if !errors.Is(err, ErrCodeAdvisorPaused) {
		t.Fatalf("second pause: got %v, want advisor_paused", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 409 || apiErr.Retryable {
		t.Fatalf("second pause: %+v, want non-retryable 409", apiErr)
	}

	// The trigger conditions are all present — hot lease on the slow
	// tier, fast tier empty, hysteresis 1 — but the advisor is paused.
	a.freeScratch()
	for i := 0; i < 3; i++ {
		a.chase(index)
		if n := a.s.AdviseOnce(); n != 0 {
			t.Fatalf("paused advisor moved %d leases", n)
		}
	}
	snap, err := cl.Advisor(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Paused {
		t.Error("GET /v1/advisor reports paused=false after pause")
	}
	if snap.Cycles != 0 {
		t.Errorf("paused advisor ran %d cycles, want 0", snap.Cycles)
	}
	if got := index.NodeNames(); !strings.Contains(got, "NVDIMM") {
		t.Fatalf("lease moved to %s while advisor was paused", got)
	}

	// Resume (twice — idempotent), and the pending move happens.
	if err := cl.AdvisorResume(ctx); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := cl.AdvisorResume(ctx); err != nil {
		t.Fatalf("second resume: %v", err)
	}
	a.chase(index)
	if n := a.s.AdviseOnce(); n != 1 {
		t.Fatalf("post-resume cycle moved %d leases, want 1", n)
	}
	if got := index.NodeNames(); got != "DRAM#0" {
		t.Fatalf("post-resume placement %s, want DRAM#0", got)
	}
}

// TestAdvisorHeldBudget pins the shared-budget semantics: when two
// moves are due and the cycle budget only covers one, the second is
// logged held_budget and completes on the next cycle.
func TestAdvisorHeldBudget(t *testing.T) {
	a := newAdvScenario(t, Config{
		AdvisorInterval:   time.Hour,
		AdvisorHysteresis: 1,
		AdvisorCooldown:   1,
		// One byte: the first move of a cycle fits (spent 0 < 1), the
		// second is held.
		RebalanceBudget: 1,
	})
	_, bufA := a.lease("hot-a", 3*advGiB)
	_, bufB := a.lease("hot-b", 3*advGiB)
	a.chase(bufA, bufB)
	a.freeScratch()

	a.chase(bufA, bufB)
	if n := a.s.AdviseOnce(); n != 1 {
		t.Fatalf("budget-capped cycle moved %d leases, want 1", n)
	}
	if hb := a.s.Metrics().AdvisorHeldBudget.Load(); hb != 1 {
		t.Fatalf("advisor_held_budget_total = %d, want 1", hb)
	}
	byReason := decisionsByReason(a.s.Advisor().Snapshot())
	if len(byReason[advisor.ReasonHeldBudget]) != 1 {
		t.Fatalf("held_budget decisions = %d, want 1", len(byReason[advisor.ReasonHeldBudget]))
	}

	// The budget is per cycle: the held lease moves on the next one.
	a.chase(bufA, bufB)
	if n := a.s.AdviseOnce(); n != 1 {
		t.Fatalf("follow-up cycle moved %d leases, want the held one", n)
	}
	if got, want := a.s.Metrics().AdvisorPromoted.Load(), uint64(2); got != want {
		t.Fatalf("advisor_promoted_total = %d, want %d", got, want)
	}
	for name, buf := range map[string]*memsim.Buffer{"hot-a": bufA, "hot-b": bufB} {
		if got := buf.NodeNames(); got != "DRAM#0" {
			t.Errorf("%s sits on %s, want DRAM#0", name, got)
		}
	}
}

// advisorMetricLines extracts the restart-durable advisor counter
// lines from a /metrics scrape.
func advisorMetricLines(t *testing.T, s *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	var out []string
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, "hetmemd_advisor_promoted_total") ||
			strings.HasPrefix(line, "hetmemd_advisor_demoted_total") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestAdvisorCrashRestartPreservesCounters kills a daemon after the
// advisor has both promoted and demoted (no graceful Close, journal
// unfsynced), restarts from the WAL, and requires the advisor move
// counters — metric lines byte-for-byte — plus every lease's advisor-
// written attribute and placement to survive the replay.
func TestAdvisorCrashRestartPreservesCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	cfg := Config{
		JournalPath:       path,
		AdvisorInterval:   time.Hour,
		AdvisorHysteresis: 1,
		AdvisorCooldown:   1,
	}
	a := newAdvScenario(t, cfg)
	hotID, hot := a.lease("hot", 6*advGiB)

	// Promotion: hot lease chased on the slow tier, fast tier freed.
	a.chase(hot)
	a.freeScratch()
	a.chase(hot)
	if n := a.s.AdviseOnce(); n != 1 {
		t.Fatalf("promotion cycle moved %d, want 1", n)
	}

	// Demotion: a second lease lands on now-empty DRAM, is hot for one
	// phase, then goes cold; its zero-delta interval classifies it to
	// the capacity tier and the advisor walks it down.
	coldID, cold := a.lease("cold", 4*advGiB)
	if got := cold.NodeNames(); got != "DRAM#0" {
		t.Fatalf("cold lease landed on %s, want DRAM#0", got)
	}
	a.chase(hot, cold) // cold becomes active (and, this cycle, aligned)
	a.s.AdviseOnce()
	a.chase(hot) // cold idles: zero delta → Capacity
	if n := a.s.AdviseOnce(); n != 1 {
		t.Fatalf("demotion cycle moved %d, want 1", n)
	}
	if got := cold.NodeNames(); !strings.Contains(got, "NVDIMM") {
		t.Fatalf("cold lease demoted to %s, want a NVDIMM node", got)
	}
	if got := attrOf(mustLease(t, a.s, coldID)); got != "Capacity" {
		t.Fatalf("demoted lease attr %q, want Capacity", got)
	}

	preMetrics := advisorMetricLines(t, a.s)
	prePlacement := map[uint64][2]string{
		hotID:  {attrOf(mustLease(t, a.s, hotID)), hot.NodeNames()},
		coldID: {attrOf(mustLease(t, a.s, coldID)), cold.NodeNames()},
	}
	// No Close: the crash leaves the WAL as-is.

	sys2, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewWithConfig(sys2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	if post := advisorMetricLines(t, s2); post != preMetrics {
		t.Errorf("advisor counters diverged across restart:\npre:\n%s\npost:\n%s", preMetrics, post)
	}
	snap := s2.Advisor().Snapshot()
	if snap.Counters.Promoted != 1 || snap.Counters.Demoted != 1 {
		t.Errorf("restored tracker counters %+v, want 1 promoted / 1 demoted", snap.Counters)
	}
	for id, want := range prePlacement {
		l := mustLease(t, s2, id)
		if got := attrOf(l); got != want[0] {
			t.Errorf("lease %d attr %q after restart, want %q", id, got, want[0])
		}
		l2, _ := s2.leases.get(id)
		if got := l2.buf.NodeNames(); got != want[1] {
			t.Errorf("lease %d placement %s after restart, want %s", id, got, want[1])
		}
		l2.release()
	}
}

// mustLease borrows a lease by ID and releases it immediately — enough
// to read fields that don't need the borrow held.
func mustLease(t *testing.T, s *Server, id uint64) *lease {
	t.Helper()
	l, ok := s.leases.get(id)
	if !ok {
		t.Fatalf("lease %d not found", id)
	}
	l.release()
	return l
}

// TestLeaseDetailAndAdviceAPI covers the new v1 surface: GET
// /v1/leases/{id} (including its 400/404 edges), the advice field on
// attribute-less allocs, and the advisor_paused error on daemons
// running without an advisor.
func TestLeaseDetailAndAdviceAPI(t *testing.T) {
	a := newAdvScenario(t, Config{
		AdvisorInterval:   time.Hour,
		AdvisorHysteresis: 1,
		AdvisorCooldown:   1,
	})
	a.freeScratch()
	ts := httptest.NewServer(a.s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL, WithRetryPolicy(NoRetry))
	ctx := context.Background()

	// An attribute-less alloc on an advisor daemon is advised, not
	// rejected; with no telemetry history the advice is the
	// conservative capacity tier.
	resp, err := cl.Alloc(ctx, AllocRequest{Name: "unknown-buf", Size: 4096})
	if err != nil {
		t.Fatalf("attr-less alloc: %v", err)
	}
	if resp.Advice != "Capacity" || resp.AttrUsed != "Capacity" {
		t.Errorf("attr-less alloc: advice %q attr_used %q, want Capacity/Capacity", resp.Advice, resp.AttrUsed)
	}
	// An explicit-attr alloc carries no advice.
	explicit, err := cl.Alloc(ctx, AllocRequest{Name: "explicit", Size: 4096, Attr: "Latency"})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Advice != "" {
		t.Errorf("explicit alloc has advice %q, want none", explicit.Advice)
	}

	// Once the advisor has observed a name, new attr-less allocs of
	// that name inherit the live classification.
	id, buf := a.lease("graph-index", 2*advGiB)
	a.chase(buf)
	a.s.AdviseOnce()
	advised, err := cl.Alloc(ctx, AllocRequest{Name: "graph-index", Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if advised.Advice != "Latency" {
		t.Errorf("advised alloc: advice %q, want Latency from live classification", advised.Advice)
	}

	// Lease detail: the full per-lease record, telemetry included.
	detail, err := cl.LeaseDetail(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if detail.Lease != id || detail.Name != "graph-index" || detail.Size != 2*advGiB ||
		detail.Attr != "Latency" || detail.Placement != buf.NodeNames() {
		t.Errorf("lease detail %+v diverges from the lease", detail)
	}
	if detail.Class != "Latency" {
		t.Errorf("lease detail class %q, want Latency", detail.Class)
	}
	if detail.Telemetry.LLCMisses == 0 || detail.Telemetry.Loads == 0 {
		t.Errorf("lease detail telemetry %+v, want nonzero counters after a chase", detail.Telemetry)
	}

	// The list view carries the same attribute and classification.
	leases, err := cl.Leases(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, li := range leases.Leases {
		if li.Lease != id {
			continue
		}
		found = true
		if li.Attr != "Latency" || li.Class != "Latency" || li.Telemetry == nil {
			t.Errorf("lease list entry %+v missing attr/class/telemetry", li)
		}
	}
	if !found {
		t.Errorf("lease %d missing from /v1/leases list", id)
	}

	// Path edges: non-numeric → 400 bad_request, unknown → 404.
	rec := httptest.NewRecorder()
	a.s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/leases/abc", nil))
	if rec.Code != 400 {
		t.Errorf("GET /v1/leases/abc: %d, want 400", rec.Code)
	}
	var eb struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(rec.Body.Bytes(), &eb) != nil || eb.Code != CodeBadRequest {
		t.Errorf("GET /v1/leases/abc code %q, want %q", eb.Code, CodeBadRequest)
	}
	if _, err := cl.LeaseDetail(ctx, 123456789); !errors.Is(err, ErrLeaseExpired) {
		t.Errorf("unknown lease detail: %v, want lease_expired", err)
	}
}

// TestAdvisorDisabledDaemon pins the behaviour contract when
// Config.AdvisorInterval is zero: attribute-less allocs stay a 400
// (the pre-advisor contract), and the advisor endpoints answer with
// the stable advisor_paused code.
func TestAdvisorDisabledDaemon(t *testing.T) {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithConfig(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL, WithRetryPolicy(NoRetry))
	ctx := context.Background()

	if s.Advisor() != nil {
		t.Fatal("zero config built an advisor")
	}
	if _, err := cl.Alloc(ctx, AllocRequest{Name: "x", Size: 4096}); !errors.Is(err, ErrCodeBadRequest) {
		t.Errorf("attr-less alloc without advisor: %v, want bad_request", err)
	}
	if _, err := cl.Advisor(ctx); !errors.Is(err, ErrCodeAdvisorPaused) {
		t.Errorf("GET /v1/advisor without advisor: %v, want advisor_paused", err)
	}
	if err := cl.AdvisorPause(ctx); !errors.Is(err, ErrCodeAdvisorPaused) {
		t.Errorf("pause without advisor: %v, want advisor_paused", err)
	}
	if n := s.AdviseOnce(); n != 0 {
		t.Errorf("AdviseOnce on a disabled advisor moved %d", n)
	}

	// The batch path follows the same contract.
	batch, err := cl.AllocBatch(ctx, []AllocRequest{{Name: "y", Size: 4096}})
	if err != nil {
		t.Fatalf("batch alloc: %v", err)
	}
	if batch.Failed != 1 || batch.Results[0].Error == nil || batch.Results[0].Error.Code != CodeBadRequest {
		t.Errorf("attr-less batch item without advisor: %+v, want bad_request item error", batch)
	}
}
