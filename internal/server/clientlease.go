package server

// Client-side lease lifecycle: the circuit breaker that fails fast
// when the daemon is unreachable, and the heartbeater that renews TTL
// leases in the background so a live client never loses one to the
// orphan reaper.

import (
	"context"
	"errors"
	mrand "math/rand"
	"sync"
	"time"
)

// ErrCircuitOpen is returned without touching the network while the
// client's circuit breaker is open: recent requests all died in
// transport, so the daemon is presumed down until the cooldown passes.
var ErrCircuitOpen = errors.New("server: circuit breaker open")

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a consecutive-transport-failure circuit breaker. A nil
// breaker is always closed, so the client can call it unconditionally.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	probing  bool
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may go out. In the open state it
// rejects until the cooldown elapses, then admits exactly one probe
// (half-open); concurrent requests keep failing fast until the probe
// reports back.
func (b *breaker) allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return ErrCircuitOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// record feeds one attempt's outcome back. Any received HTTP response
// counts as success; only transport failures count against the
// threshold.
func (b *breaker) record(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = breakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	b.failures++
	b.probing = false
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}

// heartbeater renews a client's TTL leases in the background. The
// goroutine starts lazily with the first tracked lease and parks when
// stopAll runs; renewals are jittered around TTL/3 so a fleet of
// clients does not beat on the daemon in phase.
type heartbeater struct {
	c *Client

	mu      sync.Mutex
	leases  map[uint64]*hbLease
	started bool
	stop    chan struct{}
	wake    chan struct{}
	done    chan struct{}
}

type hbLease struct {
	ttl  time.Duration
	next time.Time
}

func newHeartbeater(c *Client) *heartbeater {
	return &heartbeater{
		c:      c,
		leases: make(map[uint64]*hbLease),
		stop:   make(chan struct{}),
		wake:   make(chan struct{}, 1),
	}
}

// renewAt schedules the next heartbeat at roughly a third of the TTL
// from now (jittered ±20%), giving the client two more chances inside
// one TTL if a renewal is lost.
func renewAt(now time.Time, ttl time.Duration) time.Time {
	base := ttl / 3
	if base <= 0 {
		base = time.Millisecond
	}
	jitter := time.Duration(mrand.Int63n(int64(base)/2+1)) - base/4
	return now.Add(base + jitter)
}

// track starts renewing a lease with the given granted TTL.
func (h *heartbeater) track(lease uint64, ttl time.Duration) {
	if ttl <= 0 {
		return
	}
	h.mu.Lock()
	select {
	case <-h.stop:
		h.mu.Unlock()
		return // client closed; do not restart
	default:
	}
	h.leases[lease] = &hbLease{ttl: ttl, next: renewAt(time.Now(), ttl)}
	if !h.started {
		h.started = true
		h.done = make(chan struct{})
		go h.loop()
	}
	h.mu.Unlock()
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// untrack stops renewing a lease (freed, or the daemon no longer knows
// it).
func (h *heartbeater) untrack(lease uint64) {
	h.mu.Lock()
	delete(h.leases, lease)
	h.mu.Unlock()
}

// stopAll parks the heartbeat goroutine and forgets every lease.
func (h *heartbeater) stopAll() {
	h.mu.Lock()
	select {
	case <-h.stop:
		h.mu.Unlock()
		return
	default:
	}
	close(h.stop)
	done := h.done
	h.leases = make(map[uint64]*hbLease)
	h.mu.Unlock()
	if done != nil {
		<-done
	}
}

// nextDue returns the earliest scheduled renewal, or a far-future
// fallback when no lease is tracked.
func (h *heartbeater) nextDue() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	next := time.Now().Add(time.Hour)
	for _, l := range h.leases {
		if l.next.Before(next) {
			next = l.next
		}
	}
	return next
}

// due collects the leases whose renewal time has arrived.
func (h *heartbeater) due(now time.Time) []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []uint64
	for id, l := range h.leases {
		if !now.Before(l.next) {
			out = append(out, id)
		}
	}
	return out
}

func (h *heartbeater) loop() {
	defer close(h.done)
	for {
		wait := time.Until(h.nextDue())
		if wait < 0 {
			wait = 0
		}
		t := time.NewTimer(wait)
		select {
		case <-h.stop:
			t.Stop()
			return
		case <-h.wake:
			t.Stop()
			continue
		case <-t.C:
		}
		now := time.Now()
		for _, id := range h.due(now) {
			h.renewOne(id)
		}
	}
}

// renewOne heartbeats a single lease, rescheduling on success and
// dropping the lease when the daemon says it no longer exists.
func (h *heartbeater) renewOne(id uint64) {
	h.mu.Lock()
	l, ok := h.leases[id]
	if !ok {
		h.mu.Unlock()
		return
	}
	ttl := l.ttl
	h.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), ttl/2+time.Second)
	resp, err := h.c.Renew(ctx, id, 0)
	cancel()
	var apiErr *APIError
	switch {
	case err == nil:
		if resp.TTLSeconds > 0 {
			ttl = time.Duration(resp.TTLSeconds * float64(time.Second))
		}
		h.mu.Lock()
		if l, ok := h.leases[id]; ok {
			l.ttl = ttl
			l.next = renewAt(time.Now(), ttl)
		}
		h.mu.Unlock()
	case errors.As(err, &apiErr) && apiErr.StatusCode == 404:
		// The lease is gone (freed elsewhere, or already reaped);
		// renewing it forever would just spam the daemon.
		h.untrack(id)
	default:
		// Transport trouble or a retryable status that exhausted its
		// attempts: try again soon, well inside the TTL.
		h.mu.Lock()
		if l, ok := h.leases[id]; ok {
			l.next = time.Now().Add(ttl / 6)
		}
		h.mu.Unlock()
	}
}
