package server

// White-box tests for client-side retry and circuit-breaker plumbing:
// Retry-After parsing in both RFC 9110 forms, and the breaker's state
// machine including the single-probe half-open rule.

import (
	"errors"
	"net/http"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	hdr := func(v string) http.Header {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return h
	}

	if got := parseRetryAfter(hdr("")); got != 0 {
		t.Errorf("absent header: %v, want 0", got)
	}
	if got := parseRetryAfter(hdr("2")); got != 2*time.Second {
		t.Errorf("delay-seconds: %v, want 2s", got)
	}
	if got := parseRetryAfter(hdr("0")); got != 0 {
		t.Errorf("zero seconds: %v, want 0", got)
	}
	if got := parseRetryAfter(hdr("-3")); got != 0 {
		t.Errorf("negative seconds: %v, want 0", got)
	}
	if got := parseRetryAfter(hdr("soonish")); got != 0 {
		t.Errorf("garbage: %v, want 0", got)
	}

	// HTTP-date form, as a proxy might rewrite it.
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(hdr(future)); got <= 0 || got > 3*time.Second {
		t.Errorf("future HTTP-date: %v, want in (0, 3s]", got)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(hdr(past)); got != 0 {
		t.Errorf("past HTTP-date: %v, want 0", got)
	}
}

func TestRetryableStatus(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusTooManyRequests:     true,  // 429: backpressure, retry
		http.StatusServiceUnavailable:  true,  // 503
		http.StatusInsufficientStorage: false, // daemon's capacity verdict is final
		http.StatusBadRequest:          false, // 4xx: the request will never work
		http.StatusNotFound:            false,
		http.StatusConflict:            false,
		http.StatusOK:                  false,
	} {
		if got := retryableStatus(code); got != want {
			t.Errorf("retryableStatus(%d) = %v, want %v", code, got, want)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(2, 250*time.Millisecond)

	// Closed: requests flow; one failure is not enough to trip.
	if err := b.allow(); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
	b.record(false)
	if err := b.allow(); err != nil {
		t.Fatalf("one failure tripped a threshold-2 breaker: %v", err)
	}
	b.record(false)

	// Open: fail fast until the cooldown passes.
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker allowed a request: %v", err)
	}
	time.Sleep(300 * time.Millisecond)

	// Half-open: exactly one probe goes out; concurrents fail fast.
	if err := b.allow(); err != nil {
		t.Fatalf("half-open breaker rejected the probe: %v", err)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("half-open breaker admitted a second probe: %v", err)
	}

	// A failed probe reopens immediately.
	b.record(false)
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed probe did not reopen the breaker: %v", err)
	}
	time.Sleep(300 * time.Millisecond)

	// A successful probe closes it again.
	if err := b.allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.record(true)
	if err := b.allow(); err != nil {
		t.Fatalf("breaker did not close after successful probe: %v", err)
	}

	// A nil breaker (no WithCircuitBreaker option) never interferes.
	var nb *breaker
	if err := nb.allow(); err != nil {
		t.Fatalf("nil breaker rejected: %v", err)
	}
	nb.record(false)
}
