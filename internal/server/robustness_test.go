package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hetmem/internal/core"
	"hetmem/internal/faults"
	"hetmem/internal/server"
)

// startConfigured boots a daemon with a Config and wires a fault
// injector into its health state machine, the way chaostest does.
func startConfigured(t testing.TB, platform string, cfg server.Config) (*core.System, *faults.Injector, *httptest.Server, *server.Client) {
	t.Helper()
	sys, err := core.NewSystem(platform, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWithConfig(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	injector := faults.NewInjector(faults.NewMachineTarget(sys.Machine))
	injector.Subscribe(srv.ApplyFault)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return sys, injector, ts, server.NewClient(ts.URL)
}

// nodeOSOf extracts the OS index from a placement like "DRAM#0".
func nodeOSOf(t *testing.T, placement string) int {
	t.Helper()
	i := strings.LastIndexByte(placement, '#')
	if i < 0 {
		t.Fatalf("placement %q has no node", placement)
	}
	var os int
	if _, err := fmt.Sscanf(placement[i+1:], "%d", &os); err != nil {
		t.Fatalf("placement %q: %v", placement, err)
	}
	return os
}

func TestOfflineNodeEvacuatesLeasesAndRecovers(t *testing.T) {
	ctx := context.Background()
	_, injector, _, cl := startConfigured(t, "xeon", server.Config{})

	resp, err := cl.Alloc(ctx, server.AllocRequest{
		Name: "hot", Size: 1 << 30, Attr: "Bandwidth", Initiator: "0-19",
	})
	if err != nil {
		t.Fatal(err)
	}
	victim := nodeOSOf(t, resp.Placement)

	// Kill the node under the lease: the daemon must move it.
	if err := injector.Apply(faults.Event{NodeOS: victim, Kind: faults.Offline}); err != nil {
		t.Fatal(err)
	}
	leases, err := cl.Leases(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases.Leases) != 1 {
		t.Fatalf("leases: %+v", leases)
	}
	if got := leases.Leases[0].Placement; strings.Contains(got, fmt.Sprintf("#%d", victim)) {
		t.Fatalf("lease still on offline node: %s", got)
	}

	// /health reports the node offline and overall status degraded.
	health, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("health status %q, want degraded", health.Status)
	}
	found := false
	for _, n := range health.Nodes {
		if n.OS == victim {
			found = true
			if n.State != "offline" {
				t.Fatalf("node %d state %q, want offline", victim, n.State)
			}
		}
	}
	if !found {
		t.Fatalf("node %d missing from health report: %+v", victim, health.Nodes)
	}

	// New placements steer clear of the dead node.
	resp2, err := cl.Alloc(ctx, server.AllocRequest{
		Name: "hot2", Size: 1 << 30, Attr: "Bandwidth", Initiator: "0-19",
	})
	if err != nil {
		t.Fatal(err)
	}
	if nodeOSOf(t, resp2.Placement) == victim {
		t.Fatalf("new alloc landed on offline node: %s", resp2.Placement)
	}

	// The move is visible in the counters.
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["hetmemd_auto_migrate_total"] != 1 {
		t.Fatalf("auto_migrate_total = %v, want 1", m["hetmemd_auto_migrate_total"])
	}
	if m["hetmemd_health_transitions_total"] == 0 {
		t.Fatal("health_transitions_total did not move")
	}
	if m[fmt.Sprintf("hetmemd_node_health{node=%q}", fmt.Sprintf("DRAM#%d", victim))] != 2 {
		t.Fatalf("node health gauge not offline: %v", m)
	}

	// Heal: the node returns to service and to the health report.
	if err := injector.Apply(faults.Event{NodeOS: victim, Kind: faults.Online}); err != nil {
		t.Fatal(err)
	}
	health, err = cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("health status after heal %q, want ok", health.Status)
	}
}

func TestDegradedNodeIsDemotedNotExcluded(t *testing.T) {
	ctx := context.Background()
	_, injector, _, cl := startConfigured(t, "xeon", server.Config{})

	probe, err := cl.Alloc(ctx, server.AllocRequest{
		Name: "probe", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19",
	})
	if err != nil {
		t.Fatal(err)
	}
	best := nodeOSOf(t, probe.Placement)
	if err := cl.Free(ctx, probe.Lease); err != nil {
		t.Fatal(err)
	}

	// Degrade the preferred node: placements shift off it.
	if err := injector.Apply(faults.Event{NodeOS: best, Kind: faults.Degrade, BWFactor: 0.3, LatFactor: 2}); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Alloc(ctx, server.AllocRequest{
		Name: "shifted", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19",
	})
	if err != nil {
		t.Fatal(err)
	}
	if nodeOSOf(t, resp.Placement) == best {
		t.Fatalf("alloc still on degraded node: %s", resp.Placement)
	}
	health, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range health.Nodes {
		if n.OS == best && n.State != "degraded" {
			t.Fatalf("node %d state %q, want degraded", best, n.State)
		}
	}
}

func TestAdmissionControlShedsWith503AndRetryAfter(t *testing.T) {
	ctx := context.Background()
	_, _, ts, cl := startConfigured(t, "xeon", server.Config{
		ShedWatermark:     1e-9, // everything sheds
		RetryAfterSeconds: 3,
	})

	// The typed client sees a 503 APIError.
	fastRetry := server.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	cl = server.NewClient(ts.URL, server.WithRetryPolicy(fastRetry))
	_, err := cl.Alloc(ctx, server.AllocRequest{Name: "x", Size: 1 << 20, Attr: "Bandwidth"})
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed error = %v, want 503", err)
	}

	// The raw response carries the Retry-After contract.
	resp, err := http.Post(ts.URL+"/alloc", "application/json",
		strings.NewReader(`{"name":"x","size":1048576,"attr":"Bandwidth"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want 3", got)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["hetmemd_shed_total"] < 2 {
		t.Fatalf("shed_total = %v, want >= 2", m["hetmemd_shed_total"])
	}
}

func TestIdempotencyKeyNeverDoubleAllocates(t *testing.T) {
	ctx := context.Background()
	_, _, _, cl := startConfigured(t, "xeon", server.Config{})

	req := server.AllocRequest{
		Name: "idem", Size: 1 << 30, Attr: "Bandwidth", Initiator: "0-19",
		IdempotencyKey: "key-1",
	}
	first, err := cl.Alloc(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent duplicates all coalesce onto the same lease.
	const dups = 16
	var wg sync.WaitGroup
	leases := make([]uint64, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cl.Alloc(ctx, req)
			if err != nil {
				t.Error(err)
				return
			}
			leases[i] = resp.Lease
		}(i)
	}
	wg.Wait()
	for i, l := range leases {
		if l != first.Lease {
			t.Fatalf("duplicate %d got lease %d, want %d", i, l, first.Lease)
		}
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["hetmemd_alloc_total"] != 1 {
		t.Fatalf("alloc_total = %v after %d duplicate requests, want 1", m["hetmemd_alloc_total"], dups+1)
	}
	if m["hetmemd_idempotent_replays_total"] != dups {
		t.Fatalf("idempotent_replays_total = %v, want %d", m["hetmemd_idempotent_replays_total"], dups)
	}

	// Freeing the lease retires the key: the same key allocates anew.
	if err := cl.Free(ctx, first.Lease); err != nil {
		t.Fatal(err)
	}
	again, err := cl.Alloc(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Lease == first.Lease {
		t.Fatal("retired idempotency key replayed a freed lease")
	}
}

func TestClientRetriesTransientFaultTransparently(t *testing.T) {
	ctx := context.Background()
	sys, injector, _, cl := startConfigured(t, "xeon", server.Config{})

	// Arm one transient failure on every node: the first attempt fails
	// with 503 wherever it lands, the retry drains the fault.
	for _, n := range sys.Machine.Nodes() {
		if err := injector.Apply(faults.Event{NodeOS: n.OSIndex(), Kind: faults.Transient, Failures: 1}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := cl.Alloc(ctx, server.AllocRequest{
		Name: "flaky", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19",
	})
	if err != nil {
		t.Fatalf("alloc through transient fault: %v", err)
	}
	if resp.Lease == 0 {
		t.Fatalf("no lease: %+v", resp)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["hetmemd_alloc_failed_total"] == 0 {
		t.Fatal("expected the first attempt to fail server-side")
	}
	if m["hetmemd_alloc_total"] != 1 {
		t.Fatalf("alloc_total = %v, want 1 (no double alloc on retry)", m["hetmemd_alloc_total"])
	}
}

func TestClientRetryBackoffAndIdempotencyKeyStamping(t *testing.T) {
	ctx := context.Background()
	var mu sync.Mutex
	var attempts int
	var keys []string
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req server.AllocRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		mu.Lock()
		attempts++
		n := attempts
		keys = append(keys, req.IdempotencyKey)
		mu.Unlock()
		if n < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "try again"})
			return
		}
		json.NewEncoder(w).Encode(server.AllocResponse{Lease: 7, Placement: "DRAM#0"})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl := server.NewClient(ts.URL, server.WithRetryPolicy(server.RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
	}))
	resp, err := cl.Alloc(ctx, server.AllocRequest{Name: "r", Size: 1, Attr: "Bandwidth"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Lease != 7 {
		t.Fatalf("lease %d, want 7", resp.Lease)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 3 {
		t.Fatalf("server saw %d attempts, want 3", attempts)
	}
	// Every retry must carry the same, non-empty idempotency key.
	if keys[0] == "" {
		t.Fatal("client did not stamp an idempotency key")
	}
	for _, k := range keys[1:] {
		if k != keys[0] {
			t.Fatalf("idempotency key changed across retries: %v", keys)
		}
	}
}

func TestClientFreeToleratesLostResponse(t *testing.T) {
	ctx := context.Background()
	var mu sync.Mutex
	calls := 0
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			// The daemon freed the lease but the response is lost: sever
			// the connection without answering.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		// The retry finds the lease gone.
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "no such lease"})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl := server.NewClient(ts.URL, server.WithRetryPolicy(server.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
	}))
	if err := cl.Free(ctx, 1); err != nil {
		t.Fatalf("free after lost response: %v", err)
	}

	// Without a lost response, a 404 is a real error.
	if err := cl.Free(ctx, 2); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("clean 404 free: %v, want error", err)
	}
}
