package server

// The v1 error model: every non-2xx response under /v1/ carries a
// uniform machine-readable envelope,
//
//	{"code": "capacity_exhausted", "message": "...", "retryable": false,
//	 "retry_after_seconds": 0}
//
// with a small, stable code vocabulary clients can switch on instead
// of string-matching status text. Legacy unversioned routes keep the
// old {"error": "..."} body for one release (see the deprecation
// policy in the README).

import (
	"errors"
	"net/http"

	"hetmem/internal/alloc"
	"hetmem/internal/memsim"
	"hetmem/internal/tenant"
)

// The stable v1 error codes.
const (
	// CodeBadRequest: the request was malformed (missing field, unknown
	// attribute or policy, bad cpuset). Retrying unchanged cannot help.
	CodeBadRequest = "bad_request"
	// CodeLeaseExpired: the lease does not exist — never granted,
	// already freed, or reclaimed by the orphan reaper after its TTL
	// lapsed.
	CodeLeaseExpired = "lease_expired"
	// CodeShedding: admission control refused the allocation to protect
	// the machine's remaining headroom. Retry after the hinted delay.
	CodeShedding = "shedding"
	// CodeNodeOffline: the target node went offline mid-request. Retry;
	// the daemon re-ranks around it.
	CodeNodeOffline = "node_offline"
	// CodeTransientFault: an injected or hardware-transient allocation
	// fault. The node is fine; retry.
	CodeTransientFault = "transient_fault"
	// CodeCapacityExhausted: no candidate target can hold the buffer.
	// Retrying will not help — free, shrink, or ask for partial/remote.
	CodeCapacityExhausted = "capacity_exhausted"
	// CodeInternal: an unexpected daemon-side failure.
	CodeInternal = "internal"
	// CodeMemberUnavailable: a cluster router could not reach the
	// member daemon that owns (or would receive) the lease. Retry; the
	// router migrates the member's leases to survivors in the
	// background, after which the same request lands on a live member.
	CodeMemberUnavailable = "member_unavailable"
	// CodeQuotaExceeded: the tenant's per-kind byte quota cannot hold
	// the allocation. Not retryable — the message names the tenant,
	// the memory kind, and the limit; free bytes or raise the quota.
	CodeQuotaExceeded = "quota_exceeded"
	// CodeQueueTimeout: a burstable allocation waited in the bounded
	// admission queue until its deadline without headroom appearing.
	// Retryable — load may drain.
	CodeQueueTimeout = "queue_timeout"
	// CodeAdvisorPaused: the tiering advisor is paused (or not running
	// at all on this daemon) and the request requires it — pausing an
	// already-paused advisor, or asking an advisor-less daemon for its
	// state. Not retryable: an operator must resume (or enable) it.
	CodeAdvisorPaused = "advisor_paused"
)

// ErrorBody is the uniform v1 error envelope.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
	// RetryAfterSeconds hints when a retryable request is worth
	// retrying (0: client's choice).
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// classify maps a daemon error to its HTTP status, v1 code, and
// whether the same request may succeed later. 503 means "retry later"
// (shed load, transient fault, node just went down); 507 means the
// machine is genuinely full and retrying will not help.
func classify(err error) (status int, code string, retryable bool) {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, CodeBadRequest, false
	case errors.Is(err, errNoSuchLease):
		return http.StatusNotFound, CodeLeaseExpired, false
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable, CodeShedding, true
	case errors.Is(err, tenant.ErrOverQuota):
		// 429, not 503: the daemon has room, this tenant does not.
		return http.StatusTooManyRequests, CodeQuotaExceeded, false
	case errors.Is(err, ErrQueueTimedOut):
		return http.StatusServiceUnavailable, CodeQueueTimeout, true
	case errors.Is(err, memsim.ErrTransient):
		return http.StatusServiceUnavailable, CodeTransientFault, true
	case errors.Is(err, memsim.ErrNodeOffline):
		return http.StatusServiceUnavailable, CodeNodeOffline, true
	case errors.Is(err, ErrMemberUnavailable):
		return http.StatusServiceUnavailable, CodeMemberUnavailable, true
	case errors.Is(err, ErrAdvisorPaused):
		// 409: the request conflicts with the advisor's current state,
		// and only an operator action changes that state.
		return http.StatusConflict, CodeAdvisorPaused, false
	case errors.Is(err, alloc.ErrExhausted), errors.Is(err, memsim.ErrNoCapacity):
		// The daemon is healthy; the machine is full. 507 tells the
		// client to free, shrink, or retry with partial/remote.
		return http.StatusInsufficientStorage, CodeCapacityExhausted, false
	}
	return http.StatusInternalServerError, CodeInternal, false
}

// ErrMemberUnavailable is the cluster router's "the owning member is
// down" error: retryable, because the router re-homes the member's
// leases onto survivors in the background. It lives here, next to the
// rest of the v1 error vocabulary, so classify can map it without the
// server importing the cluster package.
var ErrMemberUnavailable = errors.New("server: cluster member unavailable")

// ErrQueueTimedOut is the admission queue's deadline error: a
// burstable allocation waited QueueTimeout (or its request deadline)
// without the watermark clearing.
var ErrQueueTimedOut = errors.New("server: admission queue timeout")

// ErrAdvisorPaused means the tiering advisor is paused or not running
// on this daemon and the request needed it.
var ErrAdvisorPaused = errors.New("server: advisor paused")

// Sentinel errors matching the v1 codes. server.Client maps an error
// envelope back to these, so callers write
//
//	errors.Is(err, server.ErrCapacityExhausted)
//
// instead of matching on status text; errors.As(*APIError) still
// yields the full envelope.
var (
	ErrCodeBadRequest        = codeSentinel(CodeBadRequest)
	ErrLeaseExpired          = codeSentinel(CodeLeaseExpired)
	ErrShedding              = codeSentinel(CodeShedding)
	ErrNodeOffline           = codeSentinel(CodeNodeOffline)
	ErrTransientFault        = codeSentinel(CodeTransientFault)
	ErrCapacityExhausted     = codeSentinel(CodeCapacityExhausted)
	ErrInternal              = codeSentinel(CodeInternal)
	ErrCodeMemberUnavailable = codeSentinel(CodeMemberUnavailable)
	ErrQuotaExceeded         = codeSentinel(CodeQuotaExceeded)
	ErrQueueTimeout          = codeSentinel(CodeQueueTimeout)
	ErrCodeAdvisorPaused     = codeSentinel(CodeAdvisorPaused)
)

// codeSentinel is an error identified purely by its v1 code.
type codeSentinel string

func (c codeSentinel) Error() string { return "server: " + string(c) }
