package server_test

import (
	"bytes"
	"testing"

	"hetmem/internal/server"
)

// FuzzDecodeRequest throws arbitrary bytes at the daemon's three
// request decoders: they must never panic, and whatever they accept
// must satisfy the documented invariants (non-empty name/attr,
// non-zero size/lease, parsable initiator).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"name":"hot","size":1073741824,"attr":"Bandwidth","initiator":"0-19"}`))
	f.Add([]byte(`{"name":"big","size":1,"attr":"Capacity","policy":"bind","partial":true,"remote":true}`))
	f.Add([]byte(`{"lease":42}`))
	f.Add([]byte(`{"lease":7,"attr":"Latency","initiator":"0,2,4-8"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","size":-1,"attr":"a"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"name":"x","size":1,"attr":"a"} {"again":true}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := server.DecodeAllocRequest(bytes.NewReader(data)); err == nil {
			if req.Name == "" || req.Size == 0 || req.Attr == "" {
				t.Fatalf("accepted invalid alloc request: %+v", req)
			}
			switch req.Policy {
			case "", "preferred", "bind":
			default:
				t.Fatalf("accepted invalid policy: %+v", req)
			}
		}
		if req, err := server.DecodeFreeRequest(bytes.NewReader(data)); err == nil {
			if req.Lease == 0 {
				t.Fatalf("accepted invalid free request: %+v", req)
			}
		}
		if req, err := server.DecodeMigrateRequest(bytes.NewReader(data)); err == nil {
			if req.Lease == 0 || req.Attr == "" {
				t.Fatalf("accepted invalid migrate request: %+v", req)
			}
		}
	})
}
