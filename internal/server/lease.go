package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetmem/internal/memsim"
)

// leaseShards is the number of independent lock domains of the lease
// table. IDs are dealt round-robin, so concurrent clients touch
// different shards with high probability.
const leaseShards = 64

// lease ties a lease ID to its live buffer, plus the request context
// (attribute, initiator, idempotency key) the daemon needs to re-place
// it after a node failure and to replay it from the journal.
type lease struct {
	id        uint64
	name      string
	size      uint64
	attr      string
	initiator string
	key       string
	buf       *memsim.Buffer

	// ttlNS is the granted time-to-live in nanoseconds (0 = never
	// expires); deadlineNS is the unix-nano expiry the reaper checks.
	// Both are atomics so renewals never contend with the reaper scan.
	ttlNS      atomic.Int64
	deadlineNS atomic.Int64

	// jmu orders a lease's placement mutations against their journal
	// appends: whoever mutates the buffer (migrate, evacuation) holds
	// jmu across the mutation and the append, so the journal's record
	// order matches the buffer's state history.
	jmu sync.Mutex
}

// getTTL returns the lease's granted TTL (0 = never expires).
func (l *lease) getTTL() time.Duration { return time.Duration(l.ttlNS.Load()) }

// setTTL changes the granted TTL; the new value takes effect at the
// next renew.
func (l *lease) setTTL(d time.Duration) { l.ttlNS.Store(int64(d)) }

// renew pushes the expiry one TTL past now. A lease without a TTL has
// no deadline.
func (l *lease) renew(now time.Time) {
	ttl := l.ttlNS.Load()
	if ttl <= 0 {
		l.deadlineNS.Store(0)
		return
	}
	l.deadlineNS.Store(now.UnixNano() + ttl)
}

// expiredAt reports whether the lease's deadline has passed.
func (l *lease) expiredAt(now time.Time) bool {
	d := l.deadlineNS.Load()
	return d != 0 && now.UnixNano() > d
}

// leaseTable is a sharded map from lease ID to buffer. IDs come from a
// single atomic counter (so they are unique and dense), and each shard
// guards its slice of the ID space with its own mutex.
type leaseTable struct {
	next   atomic.Uint64
	shards [leaseShards]struct {
		mu sync.Mutex
		m  map[uint64]*lease
	}
}

func newLeaseTable() *leaseTable {
	t := &leaseTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*lease)
	}
	return t
}

func (t *leaseTable) shard(id uint64) *struct {
	mu sync.Mutex
	m  map[uint64]*lease
} {
	return &t.shards[id%leaseShards]
}

// put registers a buffer and returns its fresh lease ID (never 0).
func (t *leaseTable) put(name string, buf *memsim.Buffer) uint64 {
	return t.putFull(&lease{name: name, size: buf.Size, buf: buf})
}

// putFull registers a lease with full request context, assigning its
// ID.
func (t *leaseTable) putFull(l *lease) uint64 {
	id := t.next.Add(1)
	l.id = id
	s := t.shard(id)
	s.mu.Lock()
	s.m[id] = l
	s.mu.Unlock()
	return id
}

// restore registers a lease under its pre-assigned ID (journal replay)
// and keeps the ID counter past it so fresh IDs never collide.
func (t *leaseTable) restore(l *lease) {
	s := t.shard(l.id)
	s.mu.Lock()
	s.m[l.id] = l
	s.mu.Unlock()
	t.floor(l.id)
}

// floor raises the ID counter to at least id, so fresh IDs never
// collide with restored ones — including IDs freed before a
// checkpoint, which survive only as the snapshot's NextLease.
func (t *leaseTable) floor(id uint64) {
	for {
		cur := t.next.Load()
		if cur >= id || t.next.CompareAndSwap(cur, id) {
			return
		}
	}
}

// get looks a lease up without removing it.
func (t *leaseTable) get(id uint64) (*lease, bool) {
	s := t.shard(id)
	s.mu.Lock()
	l, ok := s.m[id]
	s.mu.Unlock()
	return l, ok
}

// take removes and returns a lease; the atomic claim makes double-free
// over the API race-free even before memsim's own check.
func (t *leaseTable) take(id uint64) (*lease, bool) {
	s := t.shard(id)
	s.mu.Lock()
	l, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	return l, ok
}

// snapshot returns all live leases ordered by ID.
func (t *leaseTable) snapshot() []*lease {
	var out []*lease
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, l := range s.m {
			out = append(out, l)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// count returns the number of live leases.
func (t *leaseTable) count() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
