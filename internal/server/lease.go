package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetmem/internal/memsim"
)

// leaseShards is the number of independent lock domains of the lease
// table. IDs are dealt round-robin, so concurrent clients touch
// different shards with high probability.
const leaseShards = 64

// lease ties a lease ID to its live buffer, plus the request context
// (attribute, initiator, idempotency key) the daemon needs to re-place
// it after a node failure and to replay it from the journal.
type lease struct {
	id        uint64
	name      string
	size      uint64
	attr      string
	initiator string
	key       string
	tenant    string
	buf       *memsim.Buffer

	// ttlNS is the granted time-to-live in nanoseconds (0 = never
	// expires); deadlineNS is the unix-nano expiry the reaper checks.
	// Both are atomics so renewals never contend with the reaper scan.
	ttlNS      atomic.Int64
	deadlineNS atomic.Int64

	// jmu orders a lease's placement mutations against their journal
	// appends: whoever mutates the buffer (migrate, evacuation) holds
	// jmu across the mutation and the append, so the journal's record
	// order matches the buffer's state history.
	jmu sync.Mutex

	// refs counts who may still touch this lease: one reference owned
	// by the table while the lease is registered, plus one per borrower
	// (get, borrowAll). take transfers the table's reference to the
	// caller. The last release recycles the object into leasePool — the
	// discipline that makes pooling safe against the historical hazard
	// of a reaper or evacuator holding a pointer to a lease a concurrent
	// free already recycled.
	refs atomic.Int32
}

// leasePool recycles lease objects across the alloc/free churn of a
// loaded daemon.
var leasePool = sync.Pool{New: func() any { return new(lease) }}

// newLease returns a pooled, zeroed lease holding one reference — the
// caller's, which restore/putFull transfer to the table.
func newLease() *lease {
	l := leasePool.Get().(*lease)
	l.refs.Store(1)
	return l
}

// acquire adds a borrowed reference. Only safe while the caller
// already holds one, or under the shard lock of the shard that maps
// the lease (the table's reference pins it there).
func (l *lease) acquire() { l.refs.Add(1) }

// release drops one reference; dropping the last recycles the lease.
// Callers must not touch the lease after releasing.
func (l *lease) release() {
	if l.refs.Add(-1) > 0 {
		return
	}
	// Zero field by field: the struct embeds mutexes, so a wholesale
	// *l = lease{} would copy locks.
	l.id = 0
	l.name, l.attr, l.initiator, l.key, l.tenant = "", "", "", "", ""
	l.size = 0
	l.buf = nil
	l.ttlNS.Store(0)
	l.deadlineNS.Store(0)
	leasePool.Put(l)
}

// getTTL returns the lease's granted TTL (0 = never expires).
func (l *lease) getTTL() time.Duration { return time.Duration(l.ttlNS.Load()) }

// setTTL changes the granted TTL; the new value takes effect at the
// next renew.
func (l *lease) setTTL(d time.Duration) { l.ttlNS.Store(int64(d)) }

// renew pushes the expiry one TTL past now. A lease without a TTL has
// no deadline.
func (l *lease) renew(now time.Time) {
	ttl := l.ttlNS.Load()
	if ttl <= 0 {
		l.deadlineNS.Store(0)
		return
	}
	l.deadlineNS.Store(now.UnixNano() + ttl)
}

// expiredAt reports whether the lease's deadline has passed.
func (l *lease) expiredAt(now time.Time) bool {
	d := l.deadlineNS.Load()
	return d != 0 && now.UnixNano() > d
}

// leaseTable is a sharded map from lease ID to buffer. IDs come from a
// single atomic counter (so they are unique and dense), and each shard
// guards its slice of the ID space with its own mutex.
type leaseTable struct {
	next   atomic.Uint64
	shards [leaseShards]struct {
		mu sync.Mutex
		m  map[uint64]*lease
	}
}

func newLeaseTable() *leaseTable {
	t := &leaseTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*lease)
	}
	return t
}

func (t *leaseTable) shard(id uint64) *struct {
	mu sync.Mutex
	m  map[uint64]*lease
} {
	return &t.shards[id%leaseShards]
}

// put registers a buffer and returns its fresh lease ID (never 0).
func (t *leaseTable) put(name string, buf *memsim.Buffer) uint64 {
	l := newLease()
	l.name, l.size, l.buf = name, buf.Size, buf
	return t.putFull(l)
}

// putFull registers a lease with full request context, assigning its
// ID. The caller's reference transfers to the table: do not touch the
// lease afterwards without re-borrowing it.
func (t *leaseTable) putFull(l *lease) uint64 {
	id := t.next.Add(1)
	l.id = id
	if l.refs.Load() == 0 {
		l.refs.Store(1) // lease built as a literal, outside newLease
	}
	s := t.shard(id)
	s.mu.Lock()
	s.m[id] = l
	s.mu.Unlock()
	return id
}

// restore registers a lease under its pre-assigned ID (journal replay,
// or a reaper putting a just-renewed lease back) and keeps the ID
// counter past it so fresh IDs never collide. Like putFull, the
// caller's reference transfers to the table.
func (t *leaseTable) restore(l *lease) {
	if l.refs.Load() == 0 {
		l.refs.Store(1)
	}
	s := t.shard(l.id)
	s.mu.Lock()
	s.m[l.id] = l
	s.mu.Unlock()
	t.floor(l.id)
}

// floor raises the ID counter to at least id, so fresh IDs never
// collide with restored ones — including IDs freed before a
// checkpoint, which survive only as the snapshot's NextLease.
func (t *leaseTable) floor(id uint64) {
	for {
		cur := t.next.Load()
		if cur >= id || t.next.CompareAndSwap(cur, id) {
			return
		}
	}
}

// get borrows a lease without removing it; the caller must release()
// it when done.
func (t *leaseTable) get(id uint64) (*lease, bool) {
	s := t.shard(id)
	s.mu.Lock()
	l, ok := s.m[id]
	if ok {
		l.acquire()
	}
	s.mu.Unlock()
	return l, ok
}

// take removes and returns a lease; the atomic claim makes double-free
// over the API race-free even before memsim's own check. The table's
// reference transfers to the caller, who must release() (or restore)
// the lease when done.
func (t *leaseTable) take(id uint64) (*lease, bool) {
	s := t.shard(id)
	s.mu.Lock()
	l, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	return l, ok
}

// borrowAll returns every live lease ordered by ID, each carrying a
// borrowed reference the caller must release().
func (t *leaseTable) borrowAll() []*lease {
	var out []*lease
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, l := range s.m {
			l.acquire()
			out = append(out, l)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// releaseAll releases a borrowAll batch.
func releaseAll(leases []*lease) {
	for _, l := range leases {
		l.release()
	}
}

// count returns the number of live leases.
func (t *leaseTable) count() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
