package server

import (
	"sort"
	"sync"
	"sync/atomic"

	"hetmem/internal/memsim"
)

// leaseShards is the number of independent lock domains of the lease
// table. IDs are dealt round-robin, so concurrent clients touch
// different shards with high probability.
const leaseShards = 64

// lease ties a lease ID to its live buffer.
type lease struct {
	id   uint64
	name string
	size uint64
	buf  *memsim.Buffer
}

// leaseTable is a sharded map from lease ID to buffer. IDs come from a
// single atomic counter (so they are unique and dense), and each shard
// guards its slice of the ID space with its own mutex.
type leaseTable struct {
	next   atomic.Uint64
	shards [leaseShards]struct {
		mu sync.Mutex
		m  map[uint64]*lease
	}
}

func newLeaseTable() *leaseTable {
	t := &leaseTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*lease)
	}
	return t
}

func (t *leaseTable) shard(id uint64) *struct {
	mu sync.Mutex
	m  map[uint64]*lease
} {
	return &t.shards[id%leaseShards]
}

// put registers a buffer and returns its fresh lease ID (never 0).
func (t *leaseTable) put(name string, buf *memsim.Buffer) uint64 {
	id := t.next.Add(1)
	s := t.shard(id)
	s.mu.Lock()
	s.m[id] = &lease{id: id, name: name, size: buf.Size, buf: buf}
	s.mu.Unlock()
	return id
}

// get looks a lease up without removing it.
func (t *leaseTable) get(id uint64) (*lease, bool) {
	s := t.shard(id)
	s.mu.Lock()
	l, ok := s.m[id]
	s.mu.Unlock()
	return l, ok
}

// take removes and returns a lease; the atomic claim makes double-free
// over the API race-free even before memsim's own check.
func (t *leaseTable) take(id uint64) (*lease, bool) {
	s := t.shard(id)
	s.mu.Lock()
	l, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	return l, ok
}

// snapshot returns all live leases ordered by ID.
func (t *leaseTable) snapshot() []*lease {
	var out []*lease
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, l := range s.m {
			out = append(out, l)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// count returns the number of live leases.
func (t *leaseTable) count() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
