package server

// Epoch-snapshot read path (RCU): the read endpoints (/v1/attrs,
// /v1/leases, /metrics — /v1/topology is fully static, see
// Server.topoJSON) used to pay for their answers per request — walking
// all 64 lease shards, the machine's per-node locks, and the attribute
// registry under a read-mostly workload where none of that state had
// changed. Instead, reads now serve an immutable snapshot behind an
// atomic.Pointer.
//
// Invalidation is generational, from two monotonic counters:
//
//   - epoch (daemon-level): bumped by every mutation of lease state a
//     read endpoint can observe — alloc, batch alloc, free, migrate,
//     evacuation, reap, rebalance, restore, and health transitions.
//     (Renew moves only expiry deadlines, which no read endpoint
//     reports, so the hottest write deliberately does not invalidate.)
//   - memsim's machine generation: bumped by fault injection when it
//     mutates capacities or attribute values — the state behind
//     /v1/attrs and the /metrics capacity gauges.
//
// A reader whose current snapshot carries both counters unchanged
// returns it with two atomic loads and no locks. Otherwise one reader
// rebuilds (single flight, under readState.mu) while the rest keep
// serving the previous snapshot. The generations are captured BEFORE
// the rebuild walks any state, so a write landing mid-build leaves the
// new snapshot already stale and the next read rebuilds again: a
// response can lag a concurrent write by at most one epoch, never
// more. TestEpochReadFreshness races readers against writers to hold
// that bound.

import (
	"sync"
	"sync/atomic"
)

// epochSnapshot is one immutable capture of everything the read
// endpoints serve. Nothing in it is mutated after publication.
// (/v1/topology is not here: the topology tree is immutable after
// discovery, so its body is exported once at boot — Server.topoJSON.)
type epochSnapshot struct {
	dgen uint64 // readState.gen at capture
	mgen uint64 // machine generation at capture

	attrs      []AttrReport   // /v1/attrs response value
	leases     LeasesResponse // /v1/leases?list=1 response value
	nodes      []NodeUsage    // /metrics per-node gauges, sorted
	leaseCount int
}

// readState is the RCU anchor: the published snapshot plus the
// daemon-level write generation that invalidates it.
type readState struct {
	gen atomic.Uint64
	cur atomic.Pointer[epochSnapshot]
	mu  sync.Mutex // single-flight rebuild
}

// bumpEpoch invalidates the published snapshot. Call after any
// mutation a read endpoint can observe; it is one atomic add, cheap
// enough for every writer path.
func (s *Server) bumpEpoch() { s.reads.gen.Add(1) }

// epochRead returns a snapshot no staler than the epoch current when
// the call was made.
func (s *Server) epochRead() *epochSnapshot {
	rs := &s.reads
	dgen, mgen := rs.gen.Load(), s.sys.Machine.Generation()
	if snap := rs.cur.Load(); snap != nil && snap.dgen == dgen && snap.mgen == mgen {
		return snap
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	// Re-check: another reader may have rebuilt while we queued.
	dgen, mgen = rs.gen.Load(), s.sys.Machine.Generation()
	if snap := rs.cur.Load(); snap != nil && snap.dgen == dgen && snap.mgen == mgen {
		return snap
	}
	snap, err := s.buildSnapshot(dgen, mgen)
	if err != nil {
		// Snapshot capture failed (should not happen on a live system);
		// serve degraded rather than caching the failure.
		return nil
	}
	rs.cur.Store(snap)
	return snap
}

// buildSnapshot walks the real state once. The generations are the
// values loaded before the walk; see the package comment for why.
func (s *Server) buildSnapshot(dgen, mgen uint64) (*epochSnapshot, error) {
	attrs, err := s.attrReports()
	if err != nil {
		return nil, err
	}
	snap := &epochSnapshot{
		dgen:   dgen,
		mgen:   mgen,
		attrs:  attrs,
		leases: s.leasesResponse(true),
	}
	snap.leaseCount = snap.leases.Count
	states := s.health.snapshot()
	nodes := make([]NodeUsage, 0, len(s.sys.Machine.Nodes()))
	for _, n := range s.sys.Machine.Nodes() {
		nodes = append(nodes, NodeUsage{
			Node:     n.Label(),
			Capacity: n.EffectiveCapacity(),
			InUse:    n.Allocated(),
			Health:   int(states[n.OSIndex()]),
		})
	}
	snap.nodes = sortedNodeUsage(nodes)
	return snap, nil
}
