package server

// Allocation budgets for the hot request path. The zero-alloc work in
// this package (pooled request/response buffers, pooled leases, interned
// initiators, hand-rolled encoders, pooled journal frames) is only as
// durable as a test that fails when someone quietly re-introduces a
// per-request allocation — these budgets are that test. They measure
// whole handler invocations through the real mux (routing, decode,
// placement, journal append, encode) with a recycled ResponseWriter, so
// the counted allocations are the ones a live daemon would pay.
//
// The budgets are deliberately a little above the measured steady state
// (see the constants) to absorb Go-version noise, but far below the
// pre-pooling numbers, so a regression of even a few allocs per request
// trips them.

import (
	"bytes"
	"io"
	"net/http"
	"net/url"
	"path/filepath"
	"strconv"
	"testing"

	"hetmem/internal/core"
)

// Budgets, in average allocations per run. Measured steady state on
// go1.22: alloc+free 28, renew 11 — what encoding/json's decoder and
// net/http's connection-less ServeHTTP path force on us. The headroom
// is ~25%: enough for toolchain noise, not enough to hide a leaked
// per-request allocation chain.
const (
	allocFreeBudget   = 36
	renewBudget       = 14
	// Measured steady state 3: route match, path-value string, and the
	// placement string. The encoder itself is pooled and free.
	leaseDetailBudget = 6
)

// budgetRW is a recyclable ResponseWriter: headers survive across
// requests (rewritten in place) and the body buffer is reused.
type budgetRW struct {
	h    http.Header
	body []byte
}

func (w *budgetRW) Header() http.Header         { return w.h }
func (w *budgetRW) Write(b []byte) (int, error) { w.body = append(w.body, b...); return len(b), nil }
func (w *budgetRW) WriteHeader(int)             {}

// budgetReq builds one reusable request whose body is rewound per run.
func budgetReq(method, path string, body *bytes.Reader) *http.Request {
	return &http.Request{
		Method: method,
		URL:    &url.URL{Path: path},
		Proto:  "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header: make(http.Header),
		Body:   io.NopCloser(body),
		Host:   "budget.test",
	}
}

// parseLeaseID pulls the lease ID out of an alloc response body
// without allocating.
func parseLeaseID(t *testing.T, body []byte) uint64 {
	t.Helper()
	i := bytes.Index(body, []byte(`"lease":`))
	if i < 0 {
		t.Fatalf("no lease in response %s", body)
	}
	var id uint64
	for _, c := range body[i+len(`"lease":`):] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

func TestAllocBudget(t *testing.T) {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithConfig(sys, Config{
		JournalPath: filepath.Join(t.TempDir(), "wal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()

	w := &budgetRW{h: make(http.Header), body: make([]byte, 0, 4096)}
	serve := func(req *http.Request, body *bytes.Reader, payload []byte) {
		body.Reset(payload)
		w.body = w.body[:0]
		h.ServeHTTP(w, req)
	}

	t.Run("alloc_free", func(t *testing.T) {
		allocPayload := []byte(`{"name":"budget","size":4096,"attr":"Capacity"}`)
		allocBody := bytes.NewReader(nil)
		allocReq := budgetReq("POST", "/v1/alloc", allocBody)
		freeBody := bytes.NewReader(nil)
		freeReq := budgetReq("POST", "/v1/free", freeBody)
		freePayload := make([]byte, 0, 64)

		roundTrip := func() {
			serve(allocReq, allocBody, allocPayload)
			id := parseLeaseID(t, w.body)
			freePayload = append(freePayload[:0], `{"lease":`...)
			freePayload = strconv.AppendUint(freePayload, id, 10)
			freePayload = append(freePayload, '}')
			serve(freeReq, freeBody, freePayload)
			if !bytes.Contains(w.body, []byte(`"freed":true`)) {
				t.Fatalf("free failed: %s", w.body)
			}
		}
		roundTrip() // warm pools and caches outside the measurement
		allocs := testing.AllocsPerRun(500, roundTrip)
		t.Logf("alloc+free: %.1f allocs/op (budget %d)", allocs, allocFreeBudget)
		if allocs > allocFreeBudget {
			t.Errorf("alloc+free round trip costs %.1f allocs/op, budget %d — the hot path regressed",
				allocs, allocFreeBudget)
		}
	})

	t.Run("lease_detail", func(t *testing.T) {
		allocPayload := []byte(`{"name":"budget-detail","size":4096,"attr":"Capacity"}`)
		allocBody := bytes.NewReader(nil)
		allocReq := budgetReq("POST", "/v1/alloc", allocBody)
		serve(allocReq, allocBody, allocPayload)
		id := parseLeaseID(t, w.body)

		detailBody := bytes.NewReader(nil)
		detailReq := budgetReq("GET", "/v1/leases/"+strconv.FormatUint(id, 10), detailBody)

		detail := func() { serve(detailReq, detailBody, nil) }
		detail()
		if !bytes.Contains(w.body, []byte(`"telemetry":`)) {
			t.Fatalf("lease detail failed: %s", w.body)
		}
		allocs := testing.AllocsPerRun(500, detail)
		t.Logf("lease detail: %.1f allocs/op (budget %d)", allocs, leaseDetailBudget)
		if allocs > leaseDetailBudget {
			t.Errorf("lease detail costs %.1f allocs/op, budget %d — the encoder path regressed",
				allocs, leaseDetailBudget)
		}
	})

	t.Run("renew", func(t *testing.T) {
		allocPayload := []byte(`{"name":"budget-renew","size":4096,"attr":"Capacity","ttl_seconds":60}`)
		allocBody := bytes.NewReader(nil)
		allocReq := budgetReq("POST", "/v1/alloc", allocBody)
		serve(allocReq, allocBody, allocPayload)
		id := parseLeaseID(t, w.body)

		renewPayload := []byte(`{"lease":` + strconv.FormatUint(id, 10) + `}`)
		renewBody := bytes.NewReader(nil)
		renewReq := budgetReq("POST", "/v1/renew", renewBody)

		renew := func() { serve(renewReq, renewBody, renewPayload) }
		renew()
		if !bytes.Contains(w.body, []byte(`"ttl_seconds":`)) {
			t.Fatalf("renew failed: %s", w.body)
		}
		allocs := testing.AllocsPerRun(500, renew)
		t.Logf("renew: %.1f allocs/op (budget %d)", allocs, renewBudget)
		if allocs > renewBudget {
			t.Errorf("renew costs %.1f allocs/op, budget %d — the hot path regressed",
				allocs, renewBudget)
		}
	})
}
