package server

import (
	"bytes"
	"encoding/json"
	"testing"

	"hetmem/internal/memsim"
)

// marshalRef is the reference encoding the hand-rolled encoders must
// match byte for byte: encoding/json with HTML escaping off (the hot
// responses are machine-to-machine JSON, never embedded in HTML, and
// jsonenc deliberately skips the < dance).
func marshalRef(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
}

var encoderCases = []struct {
	name string
	val  any
	enc  func(dst []byte) []byte
}{
	{
		name: "alloc minimal",
		val: &AllocResponse{Lease: 1, Placement: "DRAM#0", AttrUsed: "Capacity"},
		enc: func(dst []byte) []byte {
			return appendAllocResponse(dst, &AllocResponse{Lease: 1, Placement: "DRAM#0", AttrUsed: "Capacity"})
		},
	},
	{
		name: "alloc full",
		val: &AllocResponse{
			Lease: 18446744073709551615, Placement: "MCDRAM#4+DRAM#0",
			AttrUsed: "Bandwidth", AttrFellBack: true, Rank: 3,
			Partial: true, Remote: true, TTLSeconds: 30,
		},
		enc: func(dst []byte) []byte {
			return appendAllocResponse(dst, &AllocResponse{
				Lease: 18446744073709551615, Placement: "MCDRAM#4+DRAM#0",
				AttrUsed: "Bandwidth", AttrFellBack: true, Rank: 3,
				Partial: true, Remote: true, TTLSeconds: 30,
			})
		},
	},
	{
		name: "alloc fractional ttl",
		val:  &AllocResponse{Lease: 7, Placement: "HBM#2", AttrUsed: "Latency", TTLSeconds: 0.05},
		enc: func(dst []byte) []byte {
			return appendAllocResponse(dst, &AllocResponse{Lease: 7, Placement: "HBM#2", AttrUsed: "Latency", TTLSeconds: 0.05})
		},
	},
	{
		name: "alloc with advice",
		val: &AllocResponse{
			Lease: 11, Placement: "NVDIMM#2", AttrUsed: "Capacity",
			TTLSeconds: 5, Tenant: "team-a", Advice: "Capacity",
		},
		enc: func(dst []byte) []byte {
			return appendAllocResponse(dst, &AllocResponse{
				Lease: 11, Placement: "NVDIMM#2", AttrUsed: "Capacity",
				TTLSeconds: 5, Tenant: "team-a", Advice: "Capacity",
			})
		},
	},
	{
		name: "lease detail minimal",
		val:  &LeaseDetailResponse{Lease: 3, Name: "buf", Size: 4096, Attr: "Capacity", Placement: "DRAM#0"},
		enc: func(dst []byte) []byte {
			return appendLeaseDetailResponse(dst, &LeaseDetailResponse{Lease: 3, Name: "buf", Size: 4096, Attr: "Capacity", Placement: "DRAM#0"})
		},
	},
	{
		name: "lease detail full",
		val: &LeaseDetailResponse{
			Lease: 18446744073709551615, Name: "graph \"index\"", Size: 6 << 30,
			Attr: "Latency", Placement: "NVDIMM#2", Tenant: "team-b",
			Initiator: "0-19", TTLSeconds: 30.5, Class: "Latency",
			Telemetry: memsim.Telemetry{LLCMisses: 123456, RandomMisses: 120000, Loads: 250000000, Stores: 7},
		},
		enc: func(dst []byte) []byte {
			return appendLeaseDetailResponse(dst, &LeaseDetailResponse{
				Lease: 18446744073709551615, Name: "graph \"index\"", Size: 6 << 30,
				Attr: "Latency", Placement: "NVDIMM#2", Tenant: "team-b",
				Initiator: "0-19", TTLSeconds: 30.5, Class: "Latency",
				Telemetry: memsim.Telemetry{LLCMisses: 123456, RandomMisses: 120000, Loads: 250000000, Stores: 7},
			})
		},
	},
	{
		name: "error plain",
		val:  &ErrorBody{Code: "capacity", Message: "no node can fit 4096 bytes", Retryable: false},
		enc: func(dst []byte) []byte {
			return appendErrorBody(dst, &ErrorBody{Code: "capacity", Message: "no node can fit 4096 bytes"})
		},
	},
	{
		name: "error retryable with escapes",
		val:  &ErrorBody{Code: "overload", Message: "shed \"load\"\n\ttry later", Retryable: true, RetryAfterSeconds: 2},
		enc: func(dst []byte) []byte {
			return appendErrorBody(dst, &ErrorBody{Code: "overload", Message: "shed \"load\"\n\ttry later", Retryable: true, RetryAfterSeconds: 2})
		},
	},
	{
		name: "renew",
		val:  &RenewResponse{Lease: 42, TTLSeconds: 12.5},
		enc: func(dst []byte) []byte {
			return appendRenewResponse(dst, &RenewResponse{Lease: 42, TTLSeconds: 12.5})
		},
	},
	{
		name: "renew never expires",
		val:  &RenewResponse{Lease: 42},
		enc: func(dst []byte) []byte {
			return appendRenewResponse(dst, &RenewResponse{Lease: 42})
		},
	},
	{
		name: "free",
		val:  &FreeResponse{Lease: 9, Freed: true},
		enc: func(dst []byte) []byte {
			return appendFreeResponse(dst, &FreeResponse{Lease: 9, Freed: true})
		},
	},
	{
		name: "batch empty",
		val:  &BatchAllocResponse{Results: []BatchAllocItem{}},
		enc: func(dst []byte) []byte {
			return appendBatchAllocResponse(dst, &BatchAllocResponse{Results: []BatchAllocItem{}})
		},
	},
	{
		name: "batch mixed",
		val: &BatchAllocResponse{
			Results: []BatchAllocItem{
				{Alloc: &AllocResponse{Lease: 1, Placement: "DRAM#0", AttrUsed: "Capacity", TTLSeconds: 5}},
				{Error: &ErrorBody{Code: "bad_request", Message: "unknown attribute \"Zap\""}},
				{Alloc: &AllocResponse{Lease: 2, Placement: "HBM#1", AttrUsed: "Bandwidth", Rank: 1}},
			},
			Succeeded: 2, Failed: 1,
		},
		enc: func(dst []byte) []byte {
			return appendBatchAllocResponse(dst, &BatchAllocResponse{
				Results: []BatchAllocItem{
					{Alloc: &AllocResponse{Lease: 1, Placement: "DRAM#0", AttrUsed: "Capacity", TTLSeconds: 5}},
					{Error: &ErrorBody{Code: "bad_request", Message: "unknown attribute \"Zap\""}},
					{Alloc: &AllocResponse{Lease: 2, Placement: "HBM#1", AttrUsed: "Bandwidth", Rank: 1}},
				},
				Succeeded: 2, Failed: 1,
			})
		},
	},
}

// TestResponseEncodersMatchJSON pins the hand-rolled hot-path encoders
// to encoding/json byte for byte, so flipping Config.LegacyEncoding is
// invisible to clients.
func TestResponseEncodersMatchJSON(t *testing.T) {
	for _, tc := range encoderCases {
		t.Run(tc.name, func(t *testing.T) {
			want := marshalRef(t, tc.val)
			got := tc.enc(nil)
			if !bytes.Equal(got, want) {
				t.Errorf("encoder diverges from encoding/json\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestResponseEncodersZeroAlloc pins the encoders at zero allocations
// when appending into a buffer with room — the property the response
// pool depends on.
func TestResponseEncodersZeroAlloc(t *testing.T) {
	buf := make([]byte, 0, 4096)
	for _, tc := range encoderCases {
		tc := tc
		allocs := testing.AllocsPerRun(200, func() {
			buf = tc.enc(buf[:0])
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}
