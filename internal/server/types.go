package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
)

// MaxRequestBytes bounds the size of a request body the daemon will
// decode; anything larger is rejected before parsing.
const MaxRequestBytes = 1 << 20

// Errors returned by request decoding.
var (
	ErrBadRequest = errors.New("server: bad request")
)

// AllocRequest asks the daemon to place a buffer: the paper's
// mem_alloc(name, size, attribute) over the wire, plus the initiator
// (where the client's threads run) and the allocator options.
type AllocRequest struct {
	// Name labels the buffer for reports.
	Name string `json:"name"`
	// Size is the buffer size in bytes.
	Size uint64 `json:"size"`
	// Attr is the attribute name ("Bandwidth", "Latency", "Capacity",
	// or any attribute registered on the daemon).
	Attr string `json:"attr"`
	// Initiator is a cpuset list, e.g. "0-15" or "0,2,4". Empty means
	// the whole machine.
	Initiator string `json:"initiator,omitempty"`
	// Policy is "preferred" (ranked fallback, the default) or "bind"
	// (best target or fail).
	Policy string `json:"policy,omitempty"`
	// Partial allows splitting the buffer across targets when no single
	// one fits.
	Partial bool `json:"partial,omitempty"`
	// Remote extends candidates to non-local nodes.
	Remote bool `json:"remote,omitempty"`
	// IdempotencyKey, when set, makes the request safe to retry: a
	// second /alloc with the same key returns the first one's lease
	// instead of allocating again. Keys live until the lease is freed.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// TTLSeconds asks for a lease time-to-live (fractional seconds;
	// the daemon clamps it into its configured window). 0 defers to
	// the daemon's default, which may be "never expires". A TTL lease
	// must be renewed via /renew before it expires, or the orphan
	// reaper frees it.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// AllocResponse reports a placement and the lease that owns it.
type AllocResponse struct {
	// Lease identifies the allocation for /free and /migrate.
	Lease uint64 `json:"lease"`
	// Placement is the human-readable node list, e.g. "MCDRAM#4" or
	// "MCDRAM#4+DRAM#0".
	Placement string `json:"placement"`
	// AttrUsed is the attribute actually used after fallback.
	AttrUsed     string `json:"attr_used"`
	AttrFellBack bool   `json:"attr_fell_back,omitempty"`
	// Rank is the index of the chosen target in the ranking (0 = best).
	Rank    int  `json:"rank"`
	Partial bool `json:"partial,omitempty"`
	Remote  bool `json:"remote,omitempty"`
	// TTLSeconds is the granted time-to-live (possibly clamped from
	// the request); 0 means the lease never expires.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
	// Tenant echoes the X-Hetmem-Tenant header when the request named
	// one; absent for untenanted requests (the default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Advice is set when the request carried no attribute and the
	// tiering advisor chose one: the attribute the daemon placed under
	// (the advisor's live classification of this buffer name, or
	// "Capacity" for a name it has never observed).
	Advice string `json:"advice,omitempty"`
}

// MaxBatchAllocs bounds the items in one /v1/alloc/batch request.
const MaxBatchAllocs = 256

// BatchAllocRequest carries many placements that share one journal
// batch: one write, one fsync, no matter how many items. Items are
// placed independently — a failed item does not undo its siblings.
type BatchAllocRequest struct {
	Requests []AllocRequest `json:"requests"`
}

// BatchAllocItem is one item's outcome: exactly one of Alloc or Error
// is set.
type BatchAllocItem struct {
	Alloc *AllocResponse `json:"alloc,omitempty"`
	Error *ErrorBody     `json:"error,omitempty"`
}

// BatchAllocResponse reports per-item outcomes in request order.
type BatchAllocResponse struct {
	Results   []BatchAllocItem `json:"results"`
	Succeeded int              `json:"succeeded"`
	Failed    int              `json:"failed"`
}

// RenewRequest is a lease heartbeat: it pushes the lease's expiry one
// TTL into the future. TTLSeconds optionally changes the TTL (clamped
// like an alloc's); 0 keeps the granted one.
type RenewRequest struct {
	Lease      uint64  `json:"lease"`
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// RenewResponse acknowledges a heartbeat with the TTL now in force.
type RenewResponse struct {
	Lease      uint64  `json:"lease"`
	TTLSeconds float64 `json:"ttl_seconds"`
}

// FreeRequest releases a lease.
type FreeRequest struct {
	Lease uint64 `json:"lease"`
}

// FreeResponse acknowledges a release.
type FreeResponse struct {
	Lease uint64 `json:"lease"`
	Freed bool   `json:"freed"`
}

// MigrateRequest re-places a leased buffer for a (possibly different)
// attribute, e.g. across application phases.
type MigrateRequest struct {
	Lease     uint64 `json:"lease"`
	Attr      string `json:"attr"`
	Initiator string `json:"initiator,omitempty"`
	Remote    bool   `json:"remote,omitempty"`
}

// MigrateResponse reports the new placement and the simulated copy
// cost the paper warns about.
type MigrateResponse struct {
	Lease       uint64  `json:"lease"`
	Placement   string  `json:"placement"`
	Rank        int     `json:"rank"`
	CostSeconds float64 `json:"cost_seconds"`
}

// AttrValue is one (target, initiator, value) entry of the attribute
// dump — a row of the paper's Figure 5 report.
type AttrValue struct {
	Target    string `json:"target"`    // e.g. "MCDRAM#4"
	TargetOS  int    `json:"target_os"` // NUMA OS index
	Initiator string `json:"initiator,omitempty"`
	Value     uint64 `json:"value"`
}

// AttrReport dumps one attribute over all targets.
type AttrReport struct {
	Name   string      `json:"name"`
	Flags  string      `json:"flags"`
	Values []AttrValue `json:"values"`
}

// LeaseInfo describes one live lease.
type LeaseInfo struct {
	Lease     uint64 `json:"lease"`
	Name      string `json:"name"`
	Size      uint64 `json:"size"`
	Placement string `json:"placement"`
	Tenant    string `json:"tenant,omitempty"`
	// Attr is the lease's current attribute — the one it was allocated
	// under, or the advisor's reclassification after an advisor move.
	Attr string `json:"attr,omitempty"`
	// Class is the advisor's live classification of the lease
	// ("Latency", "Bandwidth", or "Capacity"); absent when the advisor
	// is off or has not yet observed the lease.
	Class string `json:"class,omitempty"`
	// Telemetry is the lease buffer's cumulative access counters from
	// the simulated workload; absent when the buffer was never touched.
	Telemetry *memsim.Telemetry `json:"telemetry,omitempty"`
}

// LeaseDetailResponse is GET /v1/leases/{id}: everything /v1/leases
// reports for the lease plus the request-shaping fields (initiator,
// TTL) and the full telemetry block, zero or not.
type LeaseDetailResponse struct {
	Lease      uint64           `json:"lease"`
	Name       string           `json:"name"`
	Size       uint64           `json:"size"`
	Attr       string           `json:"attr"`
	Placement  string           `json:"placement"`
	Tenant     string           `json:"tenant,omitempty"`
	Initiator  string           `json:"initiator,omitempty"`
	TTLSeconds float64          `json:"ttl_seconds,omitempty"`
	Class      string           `json:"class,omitempty"`
	Telemetry  memsim.Telemetry `json:"telemetry"`
}

// LeasesResponse summarizes the live lease table, including the
// per-node and per-tenant byte totals that must agree with /metrics.
type LeasesResponse struct {
	Count     int               `json:"count"`
	Bytes     uint64            `json:"bytes"`
	NodeBytes map[string]uint64 `json:"node_bytes"`
	// TenantBytes sums each tenant's placed bytes, computed from the
	// lease table — the cross-check against the tenant registry's own
	// hetmemd_tenant_bytes books in /metrics.
	TenantBytes map[string]uint64 `json:"tenant_bytes,omitempty"`
	Leases      []LeaseInfo       `json:"leases,omitempty"`
}

// NodeHealth is one node's entry in the /health report. On a cluster
// router the "nodes" are whole member daemons: Node carries the
// member name, OS its slot index, and InstanceID the member's
// per-boot instance ID.
type NodeHealth struct {
	Node  string `json:"node"` // e.g. "DRAM#0", or a member name
	OS    int    `json:"os"`
	State string `json:"state"` // "healthy", "degraded", or "offline"
	// InstanceID is set on cluster-member rows: the member's per-boot
	// instance ID as of the router's last successful health poll.
	InstanceID string `json:"instance_id,omitempty"`
}

// HealthResponse is the daemon's /health report: overall status,
// per-node health states, and capacity pressure against the shed
// watermark.
type HealthResponse struct {
	// Status is "ok" when every node is healthy, else "degraded".
	Status string `json:"status"`
	// InstanceID is the daemon's per-boot instance ID: random on every
	// start, stable until the process exits. A router polling /health
	// uses it to tell a restarted member from the one it was talking
	// to behind the same address.
	InstanceID string `json:"instance_id,omitempty"`
	// Pressure is bytes-in-use over online capacity, 0..1.
	Pressure float64 `json:"pressure"`
	// ShedWatermark is the configured admission-control watermark
	// (0 = shedding disabled).
	ShedWatermark float64 `json:"shed_watermark,omitempty"`
	// Journal is the WAL path, when durability is enabled.
	Journal string       `json:"journal,omitempty"`
	Nodes   []NodeHealth `json:"nodes"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error string `json:"error"`
}

// decodeJSON strictly decodes one JSON value: unknown fields are
// rejected, trailing garbage is rejected, and the input is bounded by
// MaxRequestBytes. The body is slurped into a pooled buffer, so only
// the decode itself allocates.
func decodeJSON(r io.Reader, v any) error {
	bp := getReqBuf()
	defer putReqBuf(bp)
	data := *bp
	for {
		if len(data) == cap(data) {
			data = append(data, 0)[:len(data)]
		}
		n, err := r.Read(data[len(data):cap(data)])
		data = data[:len(data)+n]
		if len(data) > MaxRequestBytes {
			*bp = data[:0]
			return fmt.Errorf("%w: body over %d bytes", ErrBadRequest, MaxRequestBytes)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			*bp = data[:0]
			return fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	*bp = data[:0]
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON value", ErrBadRequest)
	}
	return nil
}

// DecodeAllocRequest parses and validates a /alloc body.
func DecodeAllocRequest(r io.Reader) (AllocRequest, error) {
	var req AllocRequest
	if err := decodeJSON(r, &req); err != nil {
		return AllocRequest{}, err
	}
	if err := validateAllocRequest(req); err != nil {
		return AllocRequest{}, err
	}
	return req, nil
}

// validateAllocRequest applies the field checks shared by /alloc and
// each /alloc/batch item.
func validateAllocRequest(req AllocRequest) error {
	if req.Name == "" {
		return fmt.Errorf("%w: missing name", ErrBadRequest)
	}
	if req.Size == 0 {
		return fmt.Errorf("%w: size must be > 0", ErrBadRequest)
	}
	// An empty Attr is not rejected here: when the tiering advisor is
	// running, the daemon fills it with the advisor's advice for the
	// buffer name (see doAlloc). Without an advisor it is still an
	// error, enforced at placement time.
	switch req.Policy {
	case "", "preferred", "bind":
	default:
		return fmt.Errorf("%w: unknown policy %q", ErrBadRequest, req.Policy)
	}
	if req.TTLSeconds < 0 {
		return fmt.Errorf("%w: negative ttl_seconds", ErrBadRequest)
	}
	if _, err := parseInitiator(req.Initiator); err != nil {
		return err
	}
	return nil
}

// DecodeBatchAllocRequest parses a /v1/alloc/batch body. Envelope
// problems (bad JSON, empty, oversized) are batch-level errors; item
// field validation is per-item and happens in the handler, so one bad
// item cannot veto its siblings.
func DecodeBatchAllocRequest(r io.Reader) (BatchAllocRequest, error) {
	var req BatchAllocRequest
	if err := decodeJSON(r, &req); err != nil {
		return BatchAllocRequest{}, err
	}
	if len(req.Requests) == 0 {
		return BatchAllocRequest{}, fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	if len(req.Requests) > MaxBatchAllocs {
		return BatchAllocRequest{}, fmt.Errorf("%w: batch of %d exceeds %d items",
			ErrBadRequest, len(req.Requests), MaxBatchAllocs)
	}
	return req, nil
}

// DecodeFreeRequest parses and validates a /free body.
func DecodeFreeRequest(r io.Reader) (FreeRequest, error) {
	var req FreeRequest
	if err := decodeJSON(r, &req); err != nil {
		return FreeRequest{}, err
	}
	if req.Lease == 0 {
		return FreeRequest{}, fmt.Errorf("%w: missing lease", ErrBadRequest)
	}
	return req, nil
}

// DecodeRenewRequest parses and validates a /renew body.
func DecodeRenewRequest(r io.Reader) (RenewRequest, error) {
	var req RenewRequest
	if err := decodeJSON(r, &req); err != nil {
		return RenewRequest{}, err
	}
	if req.Lease == 0 {
		return RenewRequest{}, fmt.Errorf("%w: missing lease", ErrBadRequest)
	}
	if req.TTLSeconds < 0 {
		return RenewRequest{}, fmt.Errorf("%w: negative ttl_seconds", ErrBadRequest)
	}
	return req, nil
}

// DecodeMigrateRequest parses and validates a /migrate body.
func DecodeMigrateRequest(r io.Reader) (MigrateRequest, error) {
	var req MigrateRequest
	if err := decodeJSON(r, &req); err != nil {
		return MigrateRequest{}, err
	}
	if req.Lease == 0 {
		return MigrateRequest{}, fmt.Errorf("%w: missing lease", ErrBadRequest)
	}
	if req.Attr == "" {
		return MigrateRequest{}, fmt.Errorf("%w: missing attr", ErrBadRequest)
	}
	if _, err := parseInitiator(req.Initiator); err != nil {
		return MigrateRequest{}, err
	}
	return req, nil
}

// parseInitiator turns a cpuset list into a bitmap; empty means "the
// caller did not say", which handlers widen to the whole machine. The
// parse goes through a process-wide intern cache (see pool.go): each
// distinct list string is parsed once and its immutable bitmap shared,
// so validation and placement both read the cached value.
func parseInitiator(s string) (*bitmap.Bitmap, error) {
	if s == "" {
		return nil, nil
	}
	b, err := internInitiator(s)
	if err != nil {
		return nil, fmt.Errorf("%w: initiator: %v", ErrBadRequest, err)
	}
	if b.IsZero() {
		return nil, fmt.Errorf("%w: empty initiator cpuset", ErrBadRequest)
	}
	return b, nil
}
