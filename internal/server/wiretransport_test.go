package server_test

// Transport-parity and failure-model tests for the binary wire
// protocol: the daemon behind unix:// and tcp+bin:// bases must be
// byte-for-byte the same /v1 service as http://, including error
// envelopes, idempotency replay, and tenant attribution; a connection
// dropped mid-request must retry idempotent calls and fail
// non-idempotent ones fast; and mixed HTTP + binary load against one
// daemon must leave consistent books. Run with -race: the chaos and
// mid-drop tests exercise the mux concurrently.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hetmem/internal/core"
	"hetmem/internal/server"
	"hetmem/internal/wire"
)

// startWireDaemon boots one daemon and exposes it over all three
// transports, returning the three base URLs.
func startWireDaemon(t testing.TB, platform string, cfg server.Config) (srv *server.Server, httpBase, udsBase, tcpBase string) {
	t.Helper()
	sys, err := core.NewSystem(platform, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err = server.NewWithConfig(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	udsBase, stopUDS, err := server.ServeTransport(srv, "uds")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopUDS)
	tcpBase, stopTCP, err := server.ServeTransport(srv, "tcp-bin")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopTCP)
	return srv, ts.URL, udsBase, tcpBase
}

func wireClient(t testing.TB, base string, opts ...server.ClientOption) *server.Client {
	t.Helper()
	cl := server.NewClient(base, append([]server.ClientOption{server.WithoutHeartbeat()}, opts...)...)
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestWireTransportParity drives the same operations through all
// three bases and requires identical answers — including the full
// error envelope (status, code, message) on failures.
func TestWireTransportParity(t *testing.T) {
	_, httpBase, udsBase, tcpBase := startWireDaemon(t, "xeon", server.Config{})
	ctx := context.Background()

	bases := map[string]string{"http": httpBase, "uds": udsBase, "tcp-bin": tcpBase}
	for name, base := range bases {
		t.Run(name, func(t *testing.T) {
			cl := wireClient(t, base)

			topo, err := cl.Topology(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if n := len(topo.NUMANodes()); n != 4 {
				t.Fatalf("topology over %s: %d NUMA nodes, want 4", name, n)
			}
			attrs, err := cl.Attrs(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(attrs) == 0 {
				t.Fatalf("no attrs over %s", name)
			}

			ar, err := cl.Alloc(ctx, server.AllocRequest{Name: "parity-" + name, Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19"})
			if err != nil {
				t.Fatal(err)
			}
			mr, err := cl.Migrate(ctx, server.MigrateRequest{Lease: ar.Lease, Attr: "Capacity", Initiator: "0-19"})
			if err != nil {
				t.Fatal(err)
			}
			if mr.Placement == "" {
				t.Fatalf("empty migrate placement over %s", name)
			}
			detail, err := cl.LeaseDetail(ctx, ar.Lease)
			if err != nil {
				t.Fatal(err)
			}
			if detail.Lease != ar.Lease {
				t.Fatalf("lease detail over %s: got %d want %d", name, detail.Lease, ar.Lease)
			}
			if _, err := cl.Leases(ctx, true); err != nil {
				t.Fatal(err)
			}
			if err := cl.Free(ctx, ar.Lease); err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Health(ctx); err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Metrics(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}

	// Error-envelope parity: the same bad requests must come back with
	// the same status, stable code, and message on every transport.
	type envelope struct {
		status  int
		code    string
		message string
	}
	for _, bad := range []struct {
		name string
		call func(cl *server.Client) error
	}{
		{"bad attr", func(cl *server.Client) error {
			_, err := cl.Alloc(ctx, server.AllocRequest{Name: "x", Size: 1 << 20, Attr: "Nonsense"})
			return err
		}},
		{"no such lease", func(cl *server.Client) error {
			return cl.Free(ctx, 999999)
		}},
		{"no such lease detail", func(cl *server.Client) error {
			_, err := cl.LeaseDetail(ctx, 999999)
			return err
		}},
		{"zero size", func(cl *server.Client) error {
			_, err := cl.Alloc(ctx, server.AllocRequest{Name: "x", Attr: "Bandwidth"})
			return err
		}},
	} {
		var want envelope
		for _, name := range []string{"http", "uds", "tcp-bin"} {
			cl := wireClient(t, bases[name], server.WithRetryPolicy(server.NoRetry))
			err := bad.call(cl)
			var apiErr *server.APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("%s over %s: want *APIError, got %v", bad.name, name, err)
			}
			got := envelope{apiErr.StatusCode, apiErr.Code, apiErr.Message}
			if name == "http" {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s envelope mismatch: http %+v vs %s %+v", bad.name, want, name, got)
			}
		}
	}
}

// TestWireIdempotencyReplay proves the idempotency table works across
// the binary transport: replaying an alloc with the same key over uds
// returns the same lease, and a replay over a *different* transport
// still hits the same table.
func TestWireIdempotencyReplay(t *testing.T) {
	_, httpBase, udsBase, _ := startWireDaemon(t, "xeon", server.Config{})
	ctx := context.Background()
	cl := wireClient(t, udsBase)

	req := server.AllocRequest{Name: "idem", Size: 1 << 20, Attr: "Bandwidth", IdempotencyKey: "wire-key-1"}
	first, err := cl.Alloc(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cl.Alloc(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Lease != first.Lease || again.Placement != first.Placement {
		t.Fatalf("uds replay minted a new lease: %+v vs %+v", first, again)
	}
	hcl := wireClient(t, httpBase)
	cross, err := hcl.Alloc(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cross.Lease != first.Lease {
		t.Fatalf("cross-transport replay minted a new lease: %d vs %d", cross.Lease, first.Lease)
	}
	if err := cl.Free(ctx, first.Lease); err != nil {
		t.Fatal(err)
	}
}

// TestWireTenantAttribution proves the tenant field in the binary
// request frame reaches the quota accountant: a tenant with a 32 MiB
// DRAM quota is rejected for 64 MiB over uds with the same
// quota_exceeded envelope HTTP produces.
func TestWireTenantAttribution(t *testing.T) {
	dir := t.TempDir()
	tenants := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(tenants, []byte(`{"tenants":{"q":{"class":"best-effort","quotas":{"DRAM":33554432}}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, udsBase, _ := startWireDaemon(t, "synthetic:package:1 core:1 pu:1 mem:package:DRAM:256MiB:bw=90:lat=85",
		server.Config{TenantsPath: tenants})
	ctx := context.Background()

	capped := wireClient(t, udsBase, server.WithTenant("q"), server.WithRetryPolicy(server.NoRetry))
	_, err := capped.Alloc(ctx, server.AllocRequest{Name: "big", Size: 64 << 20, Attr: "Capacity", Partial: true, Remote: true})
	if !errors.Is(err, server.ErrQuotaExceeded) {
		t.Fatalf("64 MiB for a 32 MiB-quota tenant over uds: want quota_exceeded, got %v", err)
	}
	// Inside the quota the same tenant allocates fine over the wire.
	small, err := capped.Alloc(ctx, server.AllocRequest{Name: "small", Size: 16 << 20, Attr: "Capacity", Partial: true, Remote: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := capped.Free(ctx, small.Lease); err != nil {
		t.Fatal(err)
	}
}

// TestWireAdvisorFallsBackToError pins the documented limitation: the
// advisor control surface is HTTP-only, and a binary-transport client
// reports that terminally instead of burning retries.
func TestWireAdvisorFallsBackToError(t *testing.T) {
	_, _, udsBase, _ := startWireDaemon(t, "xeon", server.Config{})
	cl := wireClient(t, udsBase)
	_, err := cl.Advisor(context.Background())
	if err == nil || !strings.Contains(err.Error(), "binary transport") {
		t.Fatalf("advisor over uds: want binary-transport error, got %v", err)
	}
}

// gateHandler wraps the daemon's wire handler but parks the first
// request it sees until released, so a test can kill the listener
// while that request is provably in flight.
type gateHandler struct {
	inner wire.Handler
	once  sync.Once
	hit   chan struct{} // closed when the first request arrives
	block chan struct{} // the first request waits here
}

func (g *gateHandler) ServeWire(ctx context.Context, op wire.Op, tenant string, body, dst []byte) (int, []byte) {
	var first bool
	g.once.Do(func() { first = true })
	if first {
		close(g.hit)
		// Park until released — or until the server shuts down, which
		// cancels ctx (Close waits for in-flight handlers).
		select {
		case <-g.block:
		case <-ctx.Done():
		}
	}
	return g.inner.ServeWire(ctx, op, tenant, body, dst)
}

// TestWireMidDropClassification kills the UDS listener while a
// request is mid-flight, restarts it on the same socket path, and
// checks both halves of the failure model: an idempotent alloc (the
// client stamps a key) retries onto the new listener and succeeds; a
// migrate hitting the same drop fails fast with the ambiguous
// transport error instead of replaying.
func TestWireMidDropClassification(t *testing.T) {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sys)
	defer srv.Close()

	path := filepath.Join(os.TempDir(), fmt.Sprintf("hetmemd-middrop-%d.sock", os.Getpid()))
	os.Remove(path)
	defer os.Remove(path)
	serveGated := func() (*wire.Server, *gateHandler) {
		gate := &gateHandler{inner: srv.WireHandler(), hit: make(chan struct{}), block: make(chan struct{})}
		ln, err := net.Listen("unix", path)
		if err != nil {
			t.Fatal(err)
		}
		ws := wire.NewServer(gate, srv.Metrics().TransportStats(server.TransportUDS))
		go ws.Serve(ln)
		return ws, gate
	}
	restart := func(ws *wire.Server, gate *gateHandler) *wire.Server {
		<-gate.hit // the victim request is inside the handler
		ws.Close()
		os.Remove(path)
		ln, err := net.Listen("unix", path)
		if err != nil {
			t.Fatal(err)
		}
		ws2 := wire.NewServer(srv.WireHandler(), srv.Metrics().TransportStats(server.TransportUDS))
		go ws2.Serve(ln)
		return ws2
	}

	retry := server.RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	ctx := context.Background()

	// Idempotent half: the dropped alloc retries and lands.
	ws, gate := serveGated()
	var ws2 *wire.Server
	var restartWG sync.WaitGroup
	restartWG.Add(1)
	go func() { defer restartWG.Done(); ws2 = restart(ws, gate) }()
	cl := wireClient(t, "unix://"+path, server.WithRetryPolicy(retry))
	ar, err := cl.Alloc(ctx, server.AllocRequest{Name: "survivor", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19"})
	restartWG.Wait()
	if err != nil {
		t.Fatalf("idempotent alloc across a mid-request drop: %v", err)
	}
	defer ws2.Close()

	// Non-idempotent half: a migrate dropped mid-flight must NOT be
	// replayed — the daemon may have processed it.
	ws2.Close()
	os.Remove(path)
	ws3, gate3 := serveGated()
	var ws4 *wire.Server
	restartWG.Add(1)
	go func() { defer restartWG.Done(); ws4 = restart(ws3, gate3) }()
	cl2 := wireClient(t, "unix://"+path, server.WithRetryPolicy(retry))
	_, err = cl2.Migrate(ctx, server.MigrateRequest{Lease: ar.Lease, Attr: "Capacity", Initiator: "0-19"})
	restartWG.Wait()
	defer ws4.Close()
	if err == nil {
		t.Fatal("migrate across a mid-request drop succeeded — it was replayed")
	}
	if !strings.Contains(err.Error(), "transport error on non-idempotent request") {
		t.Fatalf("migrate drop classified wrong: %v", err)
	}
	if !errors.Is(err, wire.ErrConnDropped) {
		t.Fatalf("migrate drop should unwrap to ErrConnDropped: %v", err)
	}

	// The books survived the chaos: exactly the one alloc is live.
	if n := srv.LeaseCount(); n != 1 {
		t.Fatalf("lease count after drops: %d, want 1", n)
	}
}

// TestMixedTransportChaos runs the load generator over all three
// transports against ONE daemon concurrently and then audits the
// books. Run with -race.
func TestMixedTransportChaos(t *testing.T) {
	_, httpBase, udsBase, tcpBase := startWireDaemon(t, "xeon", server.Config{})
	ctx := context.Background()

	bases := []string{httpBase, udsBase, tcpBase}
	var wg sync.WaitGroup
	stats := make([]server.LoadStats, len(bases))
	errs := make([]error, len(bases))
	for i, base := range bases {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			stats[i], errs[i] = server.LoadTest(ctx, base, server.LoadOptions{
				Clients:           4,
				RequestsPerClient: 25,
				Seed:              int64(11 + i),
			})
		}(i, base)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("load over %s: %v", bases[i], err)
		}
		if stats[i].Failed != 0 {
			t.Fatalf("load over %s: %d failed requests (%s)", bases[i], stats[i].Failed, stats[i])
		}
	}
	verdict, err := server.VerifyConsistency(ctx, httpBase)
	if err != nil {
		t.Fatalf("books inconsistent after mixed-transport load: %v", err)
	}
	t.Logf("mixed chaos: %s | %s", stats[0], verdict)
}

// TestTransportMetricsRender checks the per-transport series appear
// on /metrics in a fixed deterministic order and that the counters
// attribute traffic to the right transport.
func TestTransportMetricsRender(t *testing.T) {
	_, httpBase, udsBase, tcpBase := startWireDaemon(t, "xeon", server.Config{})
	ctx := context.Background()

	// Exercise each transport so every counter has something to show.
	for _, base := range []string{httpBase, udsBase, tcpBase} {
		cl := wireClient(t, base)
		ar, err := cl.Alloc(ctx, server.AllocRequest{Name: "m", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19"})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Free(ctx, ar.Lease); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(httpBase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	// Deterministic order: for each transport in declaration order,
	// the five series appear in a fixed sequence.
	last := -1
	for _, transport := range []string{"http", "uds", "tcp-bin"} {
		for _, series := range []string{
			"hetmemd_transport_requests_total",
			"hetmemd_transport_bytes_rx_total",
			"hetmemd_transport_bytes_tx_total",
			"hetmemd_transport_active_conns",
			"hetmemd_transport_decode_errors_total",
		} {
			key := series + `{transport="` + transport + `"}`
			idx := strings.Index(text, key)
			if idx < 0 {
				t.Fatalf("missing series %s in /metrics", key)
			}
			if idx < last {
				t.Fatalf("series %s out of order", key)
			}
			last = idx
		}
	}

	// Attribution: each transport saw its own traffic.
	cl := wireClient(t, httpBase)
	vals, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, transport := range []string{"http", "uds", "tcp-bin"} {
		key := `hetmemd_transport_requests_total{transport="` + transport + `"}`
		if vals[key] < 2 {
			t.Errorf("%s = %v, want >= 2", key, vals[key])
		}
		for _, dir := range []string{"rx", "tx"} {
			key := `hetmemd_transport_bytes_` + dir + `_total{transport="` + transport + `"}`
			if vals[key] == 0 {
				t.Errorf("%s did not move", key)
			}
		}
	}
}
