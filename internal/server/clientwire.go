package server

// The client half of the binary transport. NewClient picks the
// transport from the base URL's scheme:
//
//	http://host:port     HTTP/1.1, the stable compat path (default)
//	unix:///path.sock    binary protocol over a unix domain socket
//	tcp+bin://host:port  binary protocol over one multiplexed TCP conn
//
// The binary transports speak internal/wire: one persistent
// connection, many in-flight requests tagged with request IDs, no
// per-request dial or header parsing. Everything above the exchange —
// retry policy, circuit breaker, idempotency keys, heartbeats, tenant
// stamping, error envelopes — is shared with the HTTP path, so a
// caller only ever changes the base URL.

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"hetmem/internal/wire"
)

// wireBaseFor returns the wire client for a binary-scheme base URL,
// or nil when base is plain HTTP.
func wireBaseFor(base string) *wire.Client {
	if p, ok := strings.CutPrefix(base, "unix://"); ok {
		return wire.NewClient("unix", p)
	}
	if hp, ok := strings.CutPrefix(base, "tcp+bin://"); ok {
		return wire.NewClient("tcp", hp)
	}
	return nil
}

// wireOpFor maps the client's (method, path) vocabulary onto wire ops,
// so the typed methods stay transport-agnostic. The lease-detail path
// folds its ID into the op body (the free-request shape). Paths with
// no wire op — the advisor control surface — are an immediate,
// non-retryable error: they exist only on HTTP.
func wireOpFor(method, path string, payload []byte) (wire.Op, []byte, error) {
	switch path {
	case "/v1/topology":
		return wire.OpTopology, nil, nil
	case "/v1/attrs":
		return wire.OpAttrs, nil, nil
	case "/v1/alloc":
		return wire.OpAlloc, payload, nil
	case "/v1/alloc/batch":
		return wire.OpAllocBatch, payload, nil
	case "/v1/free":
		return wire.OpFree, payload, nil
	case "/v1/renew":
		return wire.OpRenew, payload, nil
	case "/v1/migrate":
		return wire.OpMigrate, payload, nil
	case "/v1/leases":
		return wire.OpLeases, nil, nil
	case "/v1/leases?list=1":
		return wire.OpLeaseList, nil, nil
	case "/v1/health":
		return wire.OpHealth, nil, nil
	case "/v1/metrics":
		return wire.OpMetrics, nil, nil
	}
	if id, ok := strings.CutPrefix(path, "/v1/leases/"); ok {
		n, err := strconv.ParseUint(id, 10, 64)
		if err != nil || n == 0 {
			return 0, nil, fmt.Errorf("%w: bad lease id %q", ErrBadRequest, id)
		}
		return wire.OpLeaseDetail, fmt.Appendf(nil, `{"lease":%d}`, n), nil
	}
	return 0, nil, fmt.Errorf("server: %s %s is not available on the binary transport (use an http:// base)", method, path)
}

// wireRetryAfter recovers the daemon's retry hint on the binary
// transport. HTTP carries it as a Retry-After header; the wire
// response has no headers, but the v1 error envelope embeds the same
// number, so retryable statuses read it from the body.
func wireRetryAfter(status int, body []byte) time.Duration {
	if !retryableStatus(status) {
		return 0
	}
	var eb ErrorBody
	if json.Unmarshal(body, &eb) == nil && eb.RetryAfterSeconds > 0 {
		return time.Duration(eb.RetryAfterSeconds) * time.Second
	}
	return 0
}

// requestTenant resolves the tenant for one exchange: the context's
// per-request tenant wins over the client default — the same
// precedence the HTTP path applies to the X-Hetmem-Tenant header.
func (c *Client) requestTenant(ctx context.Context) string {
	if t := TenantFromContext(ctx); t != "" {
		return t
	}
	return c.tenant
}
