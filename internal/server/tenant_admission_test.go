package server_test

// Admission-control boundary tests for the multi-tenant QoS path:
// landing exactly on the shed watermark (and exactly on a quota) must
// admit, one byte further must not; the guaranteed headroom admits
// while best-effort sheds; a full burstable queue sheds immediately
// while queued waiters are woken by the free that makes room; the
// queue deadline surfaces as the retryable queue_timeout envelope;
// and requests without a tenant header are accounted to the default
// tenant. Run with -race: the queue tests park real goroutines.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hetmem/internal/core"
	"hetmem/internal/server"
)

// admissionPlatform is a machine small enough for exact watermark
// arithmetic: one 256 MiB DRAM node, so ShedWatermark 0.5 means the
// boundary sits at exactly 128 MiB.
const admissionPlatform = "synthetic:package:1 core:1 pu:1 mem:package:DRAM:256MiB:bw=90:lat=85"

const admissionTenants = `{
  "tenants": {
    "be":   {"class": "best-effort"},
    "vip":  {"class": "guaranteed"},
    "slow": {"class": "burstable"},
    "q":    {"class": "best-effort", "quotas": {"DRAM": 33554432}}
  }
}
`

// startTenantServer boots a daemon on the admission platform with the
// test tenant roster loaded from a real -tenants file.
func startTenantServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(admissionTenants), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.TenantsPath = path
	sys, err := core.NewSystem(admissionPlatform, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWithConfig(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func tenantClient(ts *httptest.Server, name string) *server.Client {
	return server.NewClient(ts.URL, server.WithTenant(name),
		server.WithRetryPolicy(server.NoRetry), server.WithoutHeartbeat())
}

func allocSize(ctx context.Context, cl *server.Client, name string, size uint64) (server.AllocResponse, error) {
	return cl.Alloc(ctx, server.AllocRequest{
		Name: name, Size: size, Attr: "Capacity", Partial: true, Remote: true,
	})
}

// TestShedWatermarkExactBoundary pins the admission comparison: an
// allocation landing exactly on the watermark is admitted (the check
// is strictly greater-than), the next byte is shed for best-effort,
// and a guaranteed tenant keeps admitting into its reserved headroom
// until that, too, is exactly consumed.
func TestShedWatermarkExactBoundary(t *testing.T) {
	ctx := context.Background()
	_, ts := startTenantServer(t, server.Config{
		ShedWatermark:      0.5,
		GuaranteedHeadroom: 0.25, // vip admits to 0.75 x 256 MiB = 192 MiB
	})
	be := tenantClient(ts, "be")
	defer be.Close()

	// Exactly at the watermark: 128 MiB of 256 MiB at 0.5.
	if _, err := allocSize(ctx, be, "exact", 128<<20); err != nil {
		t.Fatalf("alloc landing exactly on the watermark must admit: %v", err)
	}
	_, err := allocSize(ctx, be, "over", 1<<20)
	if !errors.Is(err, server.ErrShedding) {
		t.Fatalf("one allocation past the watermark: got %v, want shedding", err)
	}
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable || !apiErr.Retryable {
		t.Fatalf("shed envelope: %+v, want retryable 503", apiErr)
	}

	// The guaranteed tenant admits into the reserved headroom band —
	// and its own boundary is just as exact: 64 MiB reaches 192 MiB
	// (0.75 x 256), one more MiB does not fit.
	vip := tenantClient(ts, "vip")
	defer vip.Close()
	if _, err := allocSize(ctx, vip, "headroom", 64<<20); err != nil {
		t.Fatalf("guaranteed tenant must admit into headroom while best-effort sheds: %v", err)
	}
	if _, err := allocSize(ctx, vip, "past-headroom", 1<<20); !errors.Is(err, server.ErrShedding) {
		t.Fatalf("guaranteed tenant past its headroom: got %v, want shedding", err)
	}
}

// TestQuotaExactBoundary pins the quota comparison and the
// quota_exceeded envelope: consuming the quota exactly succeeds, one
// more byte yields a non-retryable 429 naming the tenant, the kind,
// and the limit, and a free refunds the headroom back.
func TestQuotaExactBoundary(t *testing.T) {
	ctx := context.Background()
	srv, ts := startTenantServer(t, server.Config{})
	q := tenantClient(ts, "q")
	defer q.Close()

	// Exactly the 32 MiB DRAM quota.
	first, err := allocSize(ctx, q, "exact-quota", 32<<20)
	if err != nil {
		t.Fatalf("alloc consuming the quota exactly must succeed: %v", err)
	}
	_, err = allocSize(ctx, q, "over-quota", 1<<20)
	if !errors.Is(err, server.ErrQuotaExceeded) {
		t.Fatalf("alloc past the quota: got %v, want quota_exceeded", err)
	}
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("quota error is not an APIError: %v", err)
	}
	if apiErr.StatusCode != http.StatusTooManyRequests || apiErr.Retryable {
		t.Fatalf("quota envelope: %+v, want non-retryable 429", apiErr)
	}
	for _, want := range []string{`"q"`, "DRAM", "33554432"} {
		if !strings.Contains(apiErr.Message, want) {
			t.Errorf("quota message %q does not name %s", apiErr.Message, want)
		}
	}

	// The raw v1 envelope carries the same verdict.
	body, _ := json.Marshal(server.AllocRequest{Name: "raw", Size: 1 << 20, Attr: "Capacity", Partial: true, Remote: true})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/alloc", bytes.NewReader(body))
	req.Header.Set(server.TenantHeader, "q")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var envelope server.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || envelope.Code != server.CodeQuotaExceeded || envelope.Retryable {
		t.Fatalf("raw envelope: HTTP %d %+v, want 429 quota_exceeded retryable=false", resp.StatusCode, envelope)
	}

	// Freeing refunds the quota: the 1 MiB that was just rejected fits.
	if err := q.Free(ctx, first.Lease); err != nil {
		t.Fatal(err)
	}
	if _, err := allocSize(ctx, q, "after-refund", 1<<20); err != nil {
		t.Fatalf("alloc after the refund must succeed: %v", err)
	}
	if got := srv.Tenants().Get("q").QuotaRejects.Load(); got != 2 {
		t.Errorf("quota rejects counter: %d, want 2 (client + raw request)", got)
	}
}

// TestBurstableQueueFullShedsImmediately fills the bounded admission
// queue and checks the two ends of its contract: the waiter past the
// bound sheds without waiting, and the parked waiters are woken by
// the free that clears the watermark.
func TestBurstableQueueFullShedsImmediately(t *testing.T) {
	ctx := context.Background()
	srv, ts := startTenantServer(t, server.Config{
		ShedWatermark: 0.25, // 64 MiB of 256 MiB
		QueueDepth:    2,
		QueueTimeout:  10 * time.Second, // waiters park until the free, not a deadline
	})
	be := tenantClient(ts, "be")
	defer be.Close()
	filler, err := allocSize(ctx, be, "filler", 64<<20)
	if err != nil {
		t.Fatal(err)
	}

	// Two burstable allocations park in the queue.
	slow := tenantClient(ts, "slow")
	defer slow.Close()
	var parkedErrs [2]error
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, parkedErrs[i] = allocSize(ctx, slow, fmt.Sprintf("parked-%d", i), 1<<20)
			done <- i
		}(i)
	}
	waitFor(t, 5*time.Second, func() bool {
		return srv.Tenants().Get("slow").QueueWaits.Load() == 2
	})

	// The third finds the queue full and sheds immediately.
	start := time.Now()
	_, err = allocSize(ctx, slow, "past-queue", 1<<20)
	if !errors.Is(err, server.ErrShedding) {
		t.Fatalf("alloc against a full queue: got %v, want shedding", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("full-queue shed took %v — it must not wait for the queue", waited)
	}

	// Freeing the filler wakes both waiters; with the watermark clear
	// they admit.
	if err := be.Free(ctx, filler.Lease); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case idx := <-done:
			if parkedErrs[idx] != nil {
				t.Errorf("parked alloc %d: %v, want admission after the free", idx, parkedErrs[idx])
			}
		case <-time.After(5 * time.Second):
			t.Fatal("parked burstable allocs not woken by the free")
		}
	}
	if got := srv.Tenants().Get("slow").QueueTimeouts.Load(); got != 0 {
		t.Errorf("queue timeouts: %d, want 0 — the waiters were woken, not timed out", got)
	}
}

// TestQueueTimeoutEnvelope parks a burstable allocation until the
// queue deadline and checks the wire verdict: a retryable 503 with
// the queue_timeout code, after genuinely waiting the timeout out.
func TestQueueTimeoutEnvelope(t *testing.T) {
	ctx := context.Background()
	_, ts := startTenantServer(t, server.Config{
		ShedWatermark: 0.25,
		QueueDepth:    4,
		QueueTimeout:  100 * time.Millisecond,
	})
	be := tenantClient(ts, "be")
	defer be.Close()
	if _, err := allocSize(ctx, be, "filler", 64<<20); err != nil {
		t.Fatal(err)
	}

	slow := tenantClient(ts, "slow")
	defer slow.Close()
	start := time.Now()
	_, err := allocSize(ctx, slow, "doomed", 1<<20)
	if !errors.Is(err, server.ErrQueueTimeout) {
		t.Fatalf("burstable alloc with no headroom: got %v, want queue_timeout", err)
	}
	if waited := time.Since(start); waited < 100*time.Millisecond {
		t.Errorf("queue timeout after %v — the waiter must sit out the full 100ms deadline", waited)
	}
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable ||
		apiErr.Code != server.CodeQueueTimeout || !apiErr.Retryable {
		t.Fatalf("queue_timeout envelope: %+v, want retryable 503 queue_timeout", apiErr)
	}
}

// TestDefaultTenantAccounting allocates without a tenant header and
// checks the bytes are booked — and refunded — under the default
// tenant, in /metrics and in the /leases rollup.
func TestDefaultTenantAccounting(t *testing.T) {
	ctx := context.Background()
	srv, ts := startTenantServer(t, server.Config{})
	cl := server.NewClient(ts.URL, server.WithRetryPolicy(server.NoRetry), server.WithoutHeartbeat())
	defer cl.Close()

	resp, err := allocSize(ctx, cl, "anon", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tenant != "" {
		t.Errorf("untenanted alloc echoed tenant %q — the response must only echo what the client sent", resp.Tenant)
	}
	metrics := metricsOf(t, srv)
	if got := metrics[`hetmemd_tenant_bytes{tenant="default",kind="DRAM"}`]; got != 8<<20 {
		t.Errorf("default tenant DRAM bytes: %v, want %d", got, 8<<20)
	}
	leases, err := cl.Leases(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := leases.TenantBytes["default"]; got != 8<<20 {
		t.Errorf("/leases default tenant bytes: %d, want %d", got, 8<<20)
	}

	if err := cl.Free(ctx, resp.Lease); err != nil {
		t.Fatal(err)
	}
	metrics = metricsOf(t, srv)
	if got := metrics[`hetmemd_tenant_bytes{tenant="default",kind="DRAM"}`]; got != 0 {
		t.Errorf("default tenant DRAM bytes after free: %v, want 0", got)
	}
}

// TestClientFailsFastOnQuotaExceeded pins the retry-loop contract for
// the new codes: a 429 whose envelope says retryable:false consumes
// exactly one attempt (quota_exceeded), while a retryable 503
// queue_timeout still burns the full retry budget.
func TestClientFailsFastOnQuotaExceeded(t *testing.T) {
	ctx := context.Background()

	var quotaHits atomic.Int32
	quotaSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		quotaHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(server.ErrorBody{
			Code: server.CodeQuotaExceeded, Message: "tenant \"q\" over DRAM quota", Retryable: false,
		})
	}))
	defer quotaSrv.Close()
	cl := server.NewClient(quotaSrv.URL, server.WithRetryPolicy(fastRetry(5)), server.WithoutHeartbeat())
	_, err := allocSize(ctx, cl, "x", 1<<20)
	cl.Close()
	if !errors.Is(err, server.ErrQuotaExceeded) {
		t.Fatalf("got %v, want quota_exceeded", err)
	}
	if got := quotaHits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a non-retryable 429, want exactly 1", got)
	}

	var queueHits atomic.Int32
	queueSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		queueHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(server.ErrorBody{
			Code: server.CodeQueueTimeout, Message: "waited 1s for headroom", Retryable: true,
		})
	}))
	defer queueSrv.Close()
	cl = server.NewClient(queueSrv.URL, server.WithRetryPolicy(fastRetry(3)), server.WithoutHeartbeat())
	_, err = allocSize(ctx, cl, "x", 1<<20)
	cl.Close()
	if !errors.Is(err, server.ErrQueueTimeout) {
		t.Fatalf("got %v, want queue_timeout", err)
	}
	if got := queueHits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts for a retryable 503, want the full budget of 3", got)
	}
}
