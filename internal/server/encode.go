package server

// Hand-rolled response encoding for the four hot endpoints
// (/v1/alloc, /v1/alloc/batch, /v1/renew, /v1/free). Each encoder
// appends into a pooled buffer and must emit exactly what
// encoding/json would for the same value — TestResponseEncodersMatchJSON
// pins the equivalence byte-for-byte, so clients cannot tell the
// encoders apart.
// Config.LegacyEncoding routes the hot endpoints back through
// encoding/json for A/B benchmarking.

import (
	"net/http"

	"hetmem/internal/jsonenc"
)

// writeBody writes a fully encoded 200 JSON response in one Write.
// net/http derives Content-Length itself for a small single-write body
// (no chunked framing), and stamping it by hand would cost the one
// strconv.Itoa allocation this file exists to avoid.
func writeBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// appendAllocResponse appends r as JSON, mirroring the AllocResponse
// struct tags (attr_fell_back, partial, remote, ttl_seconds omitempty).
func appendAllocResponse(dst []byte, r *AllocResponse) []byte {
	dst = append(dst, '{')
	dst = jsonenc.AppendKey(dst, "lease")
	dst = jsonenc.AppendUint(dst, r.Lease)
	dst = jsonenc.AppendKey(dst, "placement")
	dst = jsonenc.AppendString(dst, r.Placement)
	dst = jsonenc.AppendKey(dst, "attr_used")
	dst = jsonenc.AppendString(dst, r.AttrUsed)
	if r.AttrFellBack {
		dst = jsonenc.AppendKey(dst, "attr_fell_back")
		dst = jsonenc.AppendBool(dst, true)
	}
	dst = jsonenc.AppendKey(dst, "rank")
	dst = jsonenc.AppendInt(dst, int64(r.Rank))
	if r.Partial {
		dst = jsonenc.AppendKey(dst, "partial")
		dst = jsonenc.AppendBool(dst, true)
	}
	if r.Remote {
		dst = jsonenc.AppendKey(dst, "remote")
		dst = jsonenc.AppendBool(dst, true)
	}
	if r.TTLSeconds != 0 {
		dst = jsonenc.AppendKey(dst, "ttl_seconds")
		dst = jsonenc.AppendFloat(dst, r.TTLSeconds)
	}
	if r.Tenant != "" {
		dst = jsonenc.AppendKey(dst, "tenant")
		dst = jsonenc.AppendString(dst, r.Tenant)
	}
	if r.Advice != "" {
		dst = jsonenc.AppendKey(dst, "advice")
		dst = jsonenc.AppendString(dst, r.Advice)
	}
	return append(dst, '}')
}

// appendLeaseDetailResponse appends a GET /v1/leases/{id} body,
// mirroring the LeaseDetailResponse struct tags (telemetry is not
// omitempty: an untouched buffer reports explicit zeros).
func appendLeaseDetailResponse(dst []byte, r *LeaseDetailResponse) []byte {
	dst = append(dst, '{')
	dst = jsonenc.AppendKey(dst, "lease")
	dst = jsonenc.AppendUint(dst, r.Lease)
	dst = jsonenc.AppendKey(dst, "name")
	dst = jsonenc.AppendString(dst, r.Name)
	dst = jsonenc.AppendKey(dst, "size")
	dst = jsonenc.AppendUint(dst, r.Size)
	dst = jsonenc.AppendKey(dst, "attr")
	dst = jsonenc.AppendString(dst, r.Attr)
	dst = jsonenc.AppendKey(dst, "placement")
	dst = jsonenc.AppendString(dst, r.Placement)
	if r.Tenant != "" {
		dst = jsonenc.AppendKey(dst, "tenant")
		dst = jsonenc.AppendString(dst, r.Tenant)
	}
	if r.Initiator != "" {
		dst = jsonenc.AppendKey(dst, "initiator")
		dst = jsonenc.AppendString(dst, r.Initiator)
	}
	if r.TTLSeconds != 0 {
		dst = jsonenc.AppendKey(dst, "ttl_seconds")
		dst = jsonenc.AppendFloat(dst, r.TTLSeconds)
	}
	if r.Class != "" {
		dst = jsonenc.AppendKey(dst, "class")
		dst = jsonenc.AppendString(dst, r.Class)
	}
	dst = jsonenc.AppendKey(dst, "telemetry")
	dst = append(dst, '{')
	dst = jsonenc.AppendKey(dst, "llc_misses")
	dst = jsonenc.AppendUint(dst, r.Telemetry.LLCMisses)
	dst = jsonenc.AppendKey(dst, "random_misses")
	dst = jsonenc.AppendUint(dst, r.Telemetry.RandomMisses)
	dst = jsonenc.AppendKey(dst, "loads")
	dst = jsonenc.AppendUint(dst, r.Telemetry.Loads)
	dst = jsonenc.AppendKey(dst, "stores")
	dst = jsonenc.AppendUint(dst, r.Telemetry.Stores)
	dst = append(dst, '}')
	return append(dst, '}')
}

// appendErrorBody appends the v1 error envelope.
func appendErrorBody(dst []byte, e *ErrorBody) []byte {
	dst = append(dst, '{')
	dst = jsonenc.AppendKey(dst, "code")
	dst = jsonenc.AppendString(dst, e.Code)
	dst = jsonenc.AppendKey(dst, "message")
	dst = jsonenc.AppendString(dst, e.Message)
	dst = jsonenc.AppendKey(dst, "retryable")
	dst = jsonenc.AppendBool(dst, e.Retryable)
	if e.RetryAfterSeconds != 0 {
		dst = jsonenc.AppendKey(dst, "retry_after_seconds")
		dst = jsonenc.AppendInt(dst, int64(e.RetryAfterSeconds))
	}
	return append(dst, '}')
}

// appendBatchAllocResponse appends the per-item outcome envelope.
func appendBatchAllocResponse(dst []byte, r *BatchAllocResponse) []byte {
	dst = append(dst, '{')
	dst = jsonenc.AppendKey(dst, "results")
	dst = append(dst, '[')
	for i := range r.Results {
		if i > 0 {
			dst = append(dst, ',')
		}
		it := &r.Results[i]
		dst = append(dst, '{')
		if it.Alloc != nil {
			dst = jsonenc.AppendKey(dst, "alloc")
			dst = appendAllocResponse(dst, it.Alloc)
		}
		if it.Error != nil {
			dst = jsonenc.AppendKey(dst, "error")
			dst = appendErrorBody(dst, it.Error)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, ']')
	dst = jsonenc.AppendKey(dst, "succeeded")
	dst = jsonenc.AppendInt(dst, int64(r.Succeeded))
	dst = jsonenc.AppendKey(dst, "failed")
	dst = jsonenc.AppendInt(dst, int64(r.Failed))
	return append(dst, '}')
}

// appendRenewResponse appends a heartbeat ack (ttl_seconds is not
// omitempty: a never-expiring lease reports 0 explicitly).
func appendRenewResponse(dst []byte, r *RenewResponse) []byte {
	dst = append(dst, '{')
	dst = jsonenc.AppendKey(dst, "lease")
	dst = jsonenc.AppendUint(dst, r.Lease)
	dst = jsonenc.AppendKey(dst, "ttl_seconds")
	dst = jsonenc.AppendFloat(dst, r.TTLSeconds)
	return append(dst, '}')
}

// appendFreeResponse appends a free ack.
func appendFreeResponse(dst []byte, r *FreeResponse) []byte {
	dst = append(dst, '{')
	dst = jsonenc.AppendKey(dst, "lease")
	dst = jsonenc.AppendUint(dst, r.Lease)
	dst = jsonenc.AppendKey(dst, "freed")
	dst = jsonenc.AppendBool(dst, r.Freed)
	return append(dst, '}')
}

// writeAllocResponse writes an alloc response through the zero-alloc
// encoder (or encoding/json when LegacyEncoding is on).
func (s *Server) writeAllocResponse(w http.ResponseWriter, resp *AllocResponse) {
	if s.cfg.LegacyEncoding {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	bp := getRespBuf()
	b := appendAllocResponse(*bp, resp)
	writeBody(w, b)
	*bp = b[:0]
	putRespBuf(bp)
}

// writeBatchAllocResponse writes a batch response.
func (s *Server) writeBatchAllocResponse(w http.ResponseWriter, resp *BatchAllocResponse) {
	if s.cfg.LegacyEncoding {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	bp := getRespBuf()
	b := appendBatchAllocResponse(*bp, resp)
	writeBody(w, b)
	*bp = b[:0]
	putRespBuf(bp)
}

// writeRenewResponse writes a heartbeat ack.
func (s *Server) writeRenewResponse(w http.ResponseWriter, resp *RenewResponse) {
	if s.cfg.LegacyEncoding {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	bp := getRespBuf()
	b := appendRenewResponse(*bp, resp)
	writeBody(w, b)
	*bp = b[:0]
	putRespBuf(bp)
}

// writeLeaseDetailResponse writes a lease-detail response.
func (s *Server) writeLeaseDetailResponse(w http.ResponseWriter, resp LeaseDetailResponse) {
	if s.cfg.LegacyEncoding {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	bp := getRespBuf()
	b := appendLeaseDetailResponse(*bp, &resp)
	writeBody(w, b)
	*bp = b[:0]
	putRespBuf(bp)
}

// writeFreeResponse writes a free ack.
func (s *Server) writeFreeResponse(w http.ResponseWriter, resp *FreeResponse) {
	if s.cfg.LegacyEncoding {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	bp := getRespBuf()
	b := appendFreeResponse(*bp, resp)
	writeBody(w, b)
	*bp = b[:0]
	putRespBuf(bp)
}
