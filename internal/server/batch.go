package server

// The batch allocation fast path: /v1/alloc/batch places many buffers
// and journals them as ONE WAL batch — one contiguous write, one fsync
// — instead of paying a journal round-trip per item. Items are
// independent: each succeeds or fails on its own, and the response
// reports per-item outcomes in request order. Only the journal write
// is all-or-nothing (a failed write rolls the whole batch back and
// every placed item is unwound).

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"hetmem/internal/alloc"
	"hetmem/internal/journal"
)

// batchItem tracks one successfully placed item between placement and
// journal commit. size mirrors the lease's size because restore()
// transfers our lease reference to the table — after phase 2 the
// lease may already be freed and recycled by a concurrent client, so
// phase 3 must not touch l.
type batchItem struct {
	idx  int // index into the request (and response) slice
	l    *lease
	size uint64
	dec  alloc.Decision
	resp AllocResponse
}

func (s *Server) handleAllocBatch(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeBatchAllocRequest(r.Body)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp, err := s.AllocBatch(r.Context(), req.Requests)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeBatchAllocResponse(w, &resp)
}

// AllocBatch is the Backend entry behind /v1/alloc/batch: every item
// placed independently, one journal batch for the lot.
func (s *Server) AllocBatch(ctx context.Context, reqs []AllocRequest) (BatchAllocResponse, error) {
	resp := BatchAllocResponse{Results: make([]BatchAllocItem, len(reqs))}
	fail := func(i int, err error) {
		_, body := s.errorBody(err)
		resp.Results[i].Error = &body
		s.metrics.AllocFailed.Add(1)
	}
	// One tenant per batch: the whole request rode in under one
	// X-Hetmem-Tenant header (or one wire tenant field). Burstable
	// batch items use the non-queueing class check — parking a
	// half-placed batch in the admission queue would hold its
	// placements hostage.
	tn := s.tenants.Get(TenantFromContext(ctx))
	tenantEcho := TenantFromContext(ctx)

	// Phase 1: place every item. Capacity is claimed under the per-node
	// locks as each placement lands, so items in the same batch see each
	// other's usage — a batch cannot oversubscribe a node.
	var placed []batchItem
	for i, item := range reqs {
		if err := validateAllocRequest(item); err != nil {
			fail(i, err)
			continue
		}
		if item.IdempotencyKey != "" {
			// Idempotency is a single-/alloc contract: replaying "the
			// batch minus the items that succeeded last time" has no
			// sound meaning, so batches refuse keyed items outright.
			fail(i, fmt.Errorf("%w: idempotency_key is not supported in batches", ErrBadRequest))
			continue
		}
		// Attribute-less items defer to the tiering advisor, exactly
		// like a single /alloc (see doAlloc).
		advice := ""
		if item.Attr == "" {
			if s.advisor == nil {
				fail(i, fmt.Errorf("%w: missing attr", ErrBadRequest))
				continue
			}
			item.Attr = s.adviceFor(item.Name)
			advice = item.Attr
		}
		id, ok := s.sys.Registry.ByName(item.Attr)
		if !ok {
			fail(i, fmt.Errorf("%w: unknown attribute %q", ErrBadRequest, item.Attr))
			continue
		}
		ini, err := s.resolveInitiator(item.Initiator)
		if err != nil {
			fail(i, err)
			continue
		}
		if err := s.admitClass(tn, item.Size); err != nil {
			fail(i, err)
			continue
		}
		sp := alloc.Spec{Avoid: s.avoidFor(tn, item.Size), Partial: item.Partial, Remote: item.Remote}
		if item.Policy == "bind" {
			sp.Policy = alloc.Bind
		}
		buf, dec, err := s.sys.Allocator.AllocSpec(item.Name, item.Size, id, ini, sp)
		if err != nil {
			fail(i, err)
			continue
		}
		if err := chargeBuf(tn, buf); err != nil {
			s.sys.Machine.Free(buf)
			s.admitGate.broadcast()
			fail(i, err)
			continue
		}
		ttl := s.grantTTL(item.TTLSeconds)
		l := newLease()
		l.name = item.Name
		l.size = item.Size
		l.attr = item.Attr
		l.initiator = item.Initiator
		l.tenant = tn.Name
		l.buf = buf
		l.setTTL(ttl)
		l.renew(time.Now())
		l.id = s.leases.next.Add(1)
		placed = append(placed, batchItem{
			idx: i, l: l, size: item.Size, dec: dec,
			resp: AllocResponse{
				Lease:        l.id,
				Placement:    buf.NodeNames(),
				AttrUsed:     s.sys.Registry.Name(dec.Used),
				AttrFellBack: dec.AttrFellBack,
				Rank:         dec.RankPosition,
				Partial:      dec.Partial,
				Remote:       dec.Remote,
				TTLSeconds:   ttl.Seconds(),
				Tenant:       tenantEcho,
				Advice:       advice,
			},
		})
	}

	// Phase 2: one journal batch for every placement, then make the
	// leases visible. Journal-before-visible holds batch-wide; the
	// checkpoint lock spans both so a snapshot sees all or none.
	if len(placed) > 0 {
		s.ckmu.RLock()
		if err := s.journalBatch(placed); err != nil {
			s.ckmu.RUnlock()
			// The batch write failed (or its fsync did, compensated
			// inside journalBatch): nothing becomes visible; every
			// placement is unwound, charges included.
			for _, it := range placed {
				refundSegs(tn, it.l.buf.SegmentsSnapshot())
				s.sys.Machine.Free(it.l.buf)
				it.l.release()
				fail(it.idx, err)
			}
			s.admitGate.broadcast()
			placed = nil
		} else {
			for _, it := range placed {
				s.leases.restore(it.l)
			}
			s.ckmu.RUnlock()
			s.bumpEpoch()
		}
	}

	for _, it := range placed {
		resp.Results[it.idx].Alloc = &it.resp
		s.metrics.AllocTotal.Add(1)
		s.metrics.BytesPlaced.Add(it.size)
		if it.dec.RankPosition > 0 {
			s.metrics.FallbackTotal.Add(1)
		}
		if it.dec.AttrFellBack {
			s.metrics.AttrFallback.Add(1)
		}
		if it.dec.Partial {
			s.metrics.PartialTotal.Add(1)
		}
		if it.dec.Remote {
			s.metrics.RemoteTotal.Add(1)
		}
	}
	for _, it := range resp.Results {
		if it.Error != nil {
			resp.Failed++
		} else {
			resp.Succeeded++
		}
	}
	return resp, nil
}

// journalBatch appends one OpAlloc record per placed item as a single
// contiguous write plus (when durability is configured) one fsync. The
// caller holds s.ckmu (read side). On a fsync-only failure the records
// are in the WAL, so compensating frees keep replay from resurrecting
// leases nobody was granted.
func (s *Server) journalBatch(placed []batchItem) error {
	if s.store == nil {
		return nil
	}
	recs := make([]journal.Record, len(placed))
	for i, it := range placed {
		recs[i] = journal.Record{
			Op:        journal.OpAlloc,
			Lease:     it.l.id,
			Name:      it.l.name,
			Attr:      it.l.attr,
			Initiator: it.l.initiator,
			Size:      it.l.size,
			Tenant:    it.l.tenant,
			TTLMillis: uint64(it.l.getTTL() / time.Millisecond),
			Segments:  segmentsOf(it.l.buf),
		}
	}
	sync := s.cfg.GroupCommit || s.cfg.SyncEveryAppend
	appended, err := s.store.AppendBatch(recs, sync)
	if err != nil {
		if appended {
			frees := make([]journal.Record, len(placed))
			for i, it := range placed {
				frees[i] = journal.Record{Op: journal.OpFree, Lease: it.l.id}
			}
			s.store.AppendBatch(frees, sync)
		}
		return fmt.Errorf("server: journal batch append: %w", err)
	}
	s.journalHousekeeping(len(recs))
	return nil
}
