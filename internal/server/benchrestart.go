package server

// The restart-time benchmark behind `hetmemd bench`: how long a
// daemon sits unavailable replaying its journal. It synthesizes a
// store the shape a long-lived daemon leaves behind — a checkpoint
// snapshot holding the live leases plus a WAL suffix of later
// alloc/free traffic — then times recovery with the sequential
// decoder against the parallel one (journal.ReplayParallel). The two
// opens are proven byte-for-byte equivalent by FuzzJournalReplay;
// this measures what the equivalence buys.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"hetmem/internal/journal"
)

// RestartBenchOptions configures one RunRestartBench run.
type RestartBenchOptions struct {
	// Records is the total journaled record count, split between the
	// checkpoint snapshot and the WAL suffix (default 120000).
	Records int
	// Workers is the parallel replay width (default GOMAXPROCS, at
	// least 2 — on a single-core box the parallel path still wins by
	// decoding from one slurped buffer instead of two reads and a
	// payload copy per frame).
	Workers int
	// Trials per decoder; the median lands in the result (default 3).
	Trials int
	// Dir is scratch space for the synthetic store (default: a fresh
	// temp dir, removed afterwards).
	Dir string
}

func (o *RestartBenchOptions) defaults() {
	if o.Records <= 0 {
		o.Records = 120000
	}
	if o.Workers <= 0 {
		o.Workers = max(2, runtime.GOMAXPROCS(0))
	}
	if o.Trials <= 0 {
		o.Trials = 3
	}
}

// RestartBenchResult is the restart section of BENCH_alloc.json.
type RestartBenchResult struct {
	// Records is how many records recovery replayed (snapshot + WAL).
	Records int `json:"records"`
	// WALBytes and SnapshotBytes are the on-disk sizes replayed.
	WALBytes      int64 `json:"wal_bytes"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// Workers is the parallel replay width measured.
	Workers int `json:"workers"`
	// SequentialMillis and ParallelMillis are median full-recovery
	// times (journal.OpenStoreWorkers with 1 and Workers workers).
	SequentialMillis float64 `json:"sequential_millis"`
	ParallelMillis   float64 `json:"parallel_millis"`
	// Speedup is sequential over parallel recovery time.
	Speedup float64 `json:"speedup"`
}

func (r RestartBenchResult) String() string {
	return fmt.Sprintf("restart    %d records: sequential %6.1fms  parallel(%d) %6.1fms  speedup %.2fx",
		r.Records, r.SequentialMillis, r.Workers, r.ParallelMillis, r.Speedup)
}

// RunRestartBench builds the synthetic store and measures recovery
// time with both decoders, interleaving trials so page-cache warmth
// is shared evenly.
func RunRestartBench(opts RestartBenchOptions) (RestartBenchResult, error) {
	opts.defaults()
	dir := opts.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "hetmemd-restart-")
		if err != nil {
			return RestartBenchResult{}, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	base := filepath.Join(dir, "restart.wal")
	if err := buildRestartStore(base, opts.Records); err != nil {
		return RestartBenchResult{}, err
	}

	res := RestartBenchResult{Workers: opts.Workers}
	if st, err := os.Stat(base); err == nil {
		res.WALBytes = st.Size()
	}
	if st, err := os.Stat(base + ".ckpt"); err == nil {
		res.SnapshotBytes = st.Size()
	}

	open := func(workers int) (int, time.Duration, error) {
		t0 := time.Now()
		s, restored, err := journal.OpenStoreWorkers(base, nil, workers)
		if err != nil {
			return 0, 0, err
		}
		d := time.Since(t0)
		s.Close()
		return len(restored.Records), d, nil
	}

	var seq, par []time.Duration
	for t := 0; t < opts.Trials; t++ {
		nSeq, dSeq, err := open(1)
		if err != nil {
			return res, fmt.Errorf("sequential recovery: %w", err)
		}
		nPar, dPar, err := open(opts.Workers)
		if err != nil {
			return res, fmt.Errorf("parallel recovery: %w", err)
		}
		if nSeq != nPar {
			return res, fmt.Errorf("recovery diverged: %d records sequential, %d parallel", nSeq, nPar)
		}
		res.Records = nSeq
		seq = append(seq, dSeq)
		par = append(par, dPar)
	}
	res.SequentialMillis = medianMillis(seq)
	res.ParallelMillis = medianMillis(par)
	if res.ParallelMillis > 0 {
		res.Speedup = res.SequentialMillis / res.ParallelMillis
	}
	return res, nil
}

// buildRestartStore synthesizes a recovered daemon's worth of state:
// half the records live in a checkpoint snapshot, half are WAL
// traffic after it — two allocs then a free, the shape a churning
// lease table journals.
func buildRestartStore(base string, records int) error {
	s, _, err := journal.OpenStore(base, nil)
	if err != nil {
		return err
	}
	defer s.Close()

	snapRecords := records / 2
	err = s.Checkpoint(func() ([]journal.Record, uint64, error) {
		live := make([]journal.Record, snapRecords)
		for i := range live {
			live[i] = allocRecord(uint64(i + 1))
		}
		return live, uint64(snapRecords + 1), nil
	})
	if err != nil {
		return err
	}

	next := uint64(snapRecords + 1)
	batch := make([]journal.Record, 0, 512)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		_, err := s.AppendBatch(batch, false)
		batch = batch[:0]
		return err
	}
	for i := snapRecords; i < records; i++ {
		switch i % 3 {
		case 0, 1:
			batch = append(batch, allocRecord(next))
			next++
		default:
			batch = append(batch, journal.Record{Op: journal.OpFree, Lease: next - 1})
		}
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	return s.Close()
}

func allocRecord(lease uint64) journal.Record {
	return journal.Record{
		Op:        journal.OpAlloc,
		Lease:     lease,
		Name:      "restart-bench",
		Attr:      "Bandwidth",
		Initiator: "0-19",
		Size:      1 << 20,
		TTLMillis: 300000,
		Segments:  []journal.Segment{{NodeOS: int(lease % 4), Bytes: 1 << 20}},
	}
}

// medianMillis is the median of a latency sample, in milliseconds.
func medianMillis(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return float64(sorted[len(sorted)/2]) / float64(time.Millisecond)
}
