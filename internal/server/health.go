package server

import (
	"fmt"
	"sync"

	"hetmem/internal/alloc"
	"hetmem/internal/faults"
	"hetmem/internal/journal"
	"hetmem/internal/topology"
)

// HealthState is a node's position in the daemon's health state
// machine: healthy → degraded → offline (and back, as faults clear).
type HealthState int

// The health states. The daemon re-ranks placements away from any
// non-healthy node; offline nodes additionally trigger auto-migration
// of the leases living on them.
const (
	Healthy HealthState = iota
	DegradedState
	OfflineState
)

func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case DegradedState:
		return "degraded"
	case OfflineState:
		return "offline"
	}
	return fmt.Sprintf("HealthState(%d)", int(h))
}

// healthTracker holds the per-node health states.
type healthTracker struct {
	mu    sync.RWMutex
	nodes map[int]HealthState // by OS index
}

func newHealthTracker(osIndexes []int) *healthTracker {
	h := &healthTracker{nodes: make(map[int]HealthState, len(osIndexes))}
	for _, os := range osIndexes {
		h.nodes[os] = Healthy
	}
	return h
}

// state returns a node's health (unknown nodes read as Healthy).
func (h *healthTracker) state(os int) HealthState {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.nodes[os]
}

// set updates a node's health, returning the previous state and
// whether it changed.
func (h *healthTracker) set(os int, st HealthState) (HealthState, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	old := h.nodes[os]
	if old == st {
		return old, false
	}
	h.nodes[os] = st
	return old, true
}

// snapshot copies the state map.
func (h *healthTracker) snapshot() map[int]HealthState {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make(map[int]HealthState, len(h.nodes))
	for os, st := range h.nodes {
		out[os] = st
	}
	return out
}

// avoidUnhealthy is the allocator predicate that demotes non-healthy
// nodes in placement rankings.
func (s *Server) avoidUnhealthy(o *topology.Object) bool {
	return s.health.state(o.OSIndex) != Healthy
}

// ApplyFault feeds one fault event into the daemon's health state
// machine. Wire it to a faults.Injector with Subscribe; the injector
// mutates the machine before notifying, so the health state is derived
// from the machine's ground truth (offline dominates degraded). A node
// entering the offline state has its live leases auto-migrated to the
// next-best healthy targets.
func (s *Server) ApplyFault(ev faults.Event) {
	n := s.sys.Machine.NodeByOS(ev.NodeOS)
	if n == nil {
		return
	}
	st := Healthy
	switch {
	case n.Offline():
		st = OfflineState
	case n.Degraded():
		st = DegradedState
	}
	_, changed := s.health.set(ev.NodeOS, st)
	if changed {
		s.metrics.HealthTransitions.Add(1)
		// Health gauges feed /metrics; invalidate the read snapshot.
		s.bumpEpoch()
		// A health transition changes what avoidUnhealthy demotes, so
		// cached candidate rankings must not outlive it. (The memsim
		// fault setters bump the machine generation for capacity and
		// attribute mutations; this covers the daemon-level state.)
		s.sys.Allocator.InvalidateCandidates()
	}
	if changed && st == OfflineState {
		s.evacuate(ev.NodeOS)
	}
	if changed && st == Healthy {
		// The node healed: re-admit it by migrating back the leases
		// that rank it best, paced so recovery does not stampede it.
		s.maybeRebalance(ev.NodeOS)
	}
}

// evacuate auto-migrates every live lease with bytes on the offline
// node to the next-best target, preferring healthy nodes and allowing
// remote ones — survival beats locality. Leases that cannot move (the
// rest of the machine is full) stay put and are counted; they migrate
// on a later free or by hand.
func (s *Server) evacuate(nodeOS int) {
	all := s.leases.borrowAll()
	defer releaseAll(all)
	for _, l := range all {
		onNode := false
		for _, seg := range l.buf.SegmentsSnapshot() {
			if seg.Node.OSIndex() == nodeOS {
				onNode = true
				break
			}
		}
		if !onNode {
			continue
		}
		s.ckmu.RLock()
		l.jmu.Lock()
		if l.buf.Freed() {
			l.jmu.Unlock()
			s.ckmu.RUnlock()
			continue
		}
		_, _, err := s.migrateLocked(l, l.attr, l.initiator, true)
		l.jmu.Unlock()
		s.ckmu.RUnlock()
		if err != nil {
			s.metrics.AutoMigrateFailed.Add(1)
		} else {
			s.metrics.AutoMigrateTotal.Add(1)
		}
	}
}

// migrateLocked re-places a lease's buffer for the given attribute and
// journals the move. The caller must hold l.jmu, so the journal's
// record order matches the buffer's placement history.
func (s *Server) migrateLocked(l *lease, attrName, iniList string, remote bool) (float64, alloc.Decision, error) {
	return s.migrateOriginLocked(l, attrName, iniList, remote, "")
}

// migrateOriginLocked is migrateLocked with an origin tag. A non-empty
// origin (the tiering advisor) additionally reclassifies the lease:
// its attribute becomes attrName, and the journal record carries both
// the attribute and the origin so restart replay reconstructs the
// reclassification and the advisor's counters exactly.
func (s *Server) migrateOriginLocked(l *lease, attrName, iniList string, remote bool, origin string) (float64, alloc.Decision, error) {
	id, ok := s.sys.Registry.ByName(attrName)
	if !ok {
		// Replayed lease with an attribute this platform no longer
		// registers; fall back to Capacity, the universal attribute.
		if id, ok = s.sys.Registry.ByName("Capacity"); !ok {
			return 0, alloc.Decision{}, fmt.Errorf("%w: unknown attribute %q", ErrBadRequest, attrName)
		}
	}
	ini, err := s.resolveInitiator(iniList)
	if err != nil {
		return 0, alloc.Decision{}, err
	}
	// Snapshot the placement before the move so the tenant's per-kind
	// books can follow the bytes across tiers.
	before := l.buf.SegmentsSnapshot()
	cost, dec, err := s.sys.Allocator.MigrateToBestSpec(l.buf, id, ini, alloc.Spec{Avoid: s.avoidFn, Remote: remote})
	if err != nil {
		return 0, alloc.Decision{}, err
	}
	// Migration never fails on quota: the bytes already exist, only
	// their kind changed. ForceCharge keeps the books truthful even for
	// a tenant past its limit on the destination kind.
	tn := s.tenants.Get(l.tenant)
	refundSegs(tn, before)
	forceChargeBuf(tn, l.buf)
	rec := journal.Record{
		Op:       journal.OpMigrate,
		Lease:    l.id,
		Segments: segmentsOf(l.buf),
	}
	if origin != "" {
		rec.Attr = attrName
		rec.Origin = origin
		l.attr = attrName
	}
	if _, err := s.appendJournal(rec); err != nil {
		return cost, dec, err
	}
	// The lease moved: per-node byte totals and placements changed.
	s.bumpEpoch()
	return cost, dec, nil
}
