package server

// The binary-transport bridge: WireBackend adapts any Backend (the
// daemon's Server or the cluster Router) to wire.Handler, so the
// -uds and -tcp-bin listeners dispatch into exactly the code the /v1
// HTTP surface runs — same decoders, same placement paths, same error
// classification, same metrics. The transports differ only in framing.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"hetmem/internal/wire"
)

// LeaseDetailer is the optional Backend extension behind the binary
// lease-detail op (and GET /v1/leases/{id}). The cluster router does
// not implement it — per-lease detail is a machine-daemon surface —
// and the wire op answers 404 there, matching the router's HTTP mux.
type LeaseDetailer interface {
	LeaseDetail(ctx context.Context, id uint64) (LeaseDetailResponse, error)
}

// WireBackend dispatches decoded wire requests into a Backend.
type WireBackend struct {
	b  Backend
	ld LeaseDetailer // nil when the backend has no per-lease detail
	a  apiBase       // errorBody shaping; mux unused
}

// NewWireBackend bridges b onto the binary protocol. metrics receives
// the same per-endpoint observations the HTTP surface records — pass
// the surface's own *Metrics so both transports roll up into one set
// of series.
func NewWireBackend(b Backend, metrics *Metrics, retryAfterSeconds int) *WireBackend {
	if retryAfterSeconds <= 0 {
		retryAfterSeconds = 1
	}
	wb := &WireBackend{b: b, a: apiBase{metrics: metrics, retryAfterSeconds: retryAfterSeconds}}
	wb.ld, _ = b.(LeaseDetailer)
	return wb
}

// WireHandler returns the daemon's binary-protocol dispatcher, sharing
// the HTTP surface's metrics and Retry-After hint.
func (s *Server) WireHandler() wire.Handler {
	return NewWireBackend(s, s.metrics, s.cfg.RetryAfterSeconds)
}

// WireHandler returns the generic surface's binary-protocol
// dispatcher; the cluster router serves the wire ops through it.
func (a *API) WireHandler() wire.Handler {
	return NewWireBackend(a.backend, a.metrics, a.retryAfterSeconds)
}

// opEndpoints maps wire ops onto the HTTP surface's endpoint counters,
// so hetmemd_requests_total{endpoint=...} totals requests across every
// transport.
var opEndpoints = map[wire.Op]Endpoint{
	wire.OpTopology:    EpTopology,
	wire.OpAttrs:       EpAttrs,
	wire.OpAlloc:       EpAlloc,
	wire.OpAllocBatch:  EpAllocBatch,
	wire.OpFree:        EpFree,
	wire.OpRenew:       EpRenew,
	wire.OpMigrate:     EpMigrate,
	wire.OpLeases:      EpLeases,
	wire.OpLeaseList:   EpLeases,
	wire.OpLeaseDetail: EpLeaseDetail,
	wire.OpHealth:      EpHealth,
	wire.OpMetrics:     EpMetrics,
}

// ServeWire implements wire.Handler: decode the op's JSON body with
// the /v1 decoders, run the Backend, and append the /v1 response JSON
// (or the v1 error envelope) to dst.
func (wb *WireBackend) ServeWire(ctx context.Context, op wire.Op, tenant string, body, dst []byte) (int, []byte) {
	start := time.Now()
	if tenant != "" {
		ctx = ContextWithTenant(ctx, tenant)
	}
	status, out := wb.serve(ctx, op, body, dst)
	if ep, ok := opEndpoints[op]; ok && wb.a.metrics != nil {
		wb.a.metrics.Observe(ep, time.Since(start), status >= 400)
	}
	return status, out
}

func (wb *WireBackend) serve(ctx context.Context, op wire.Op, body, dst []byte) (int, []byte) {
	switch op {
	case wire.OpTopology:
		out, err := wb.b.TopologyJSON(ctx)
		if err != nil {
			return wb.fail(dst, err)
		}
		return http.StatusOK, append(dst, out...)

	case wire.OpAttrs:
		out, err := wb.b.Attrs(ctx)
		if err != nil {
			return wb.fail(dst, err)
		}
		return wb.marshal(dst, out)

	case wire.OpAlloc:
		req, err := DecodeAllocRequest(bytes.NewReader(body))
		if err != nil {
			return wb.fail(dst, err)
		}
		resp, err := wb.b.Alloc(ctx, req)
		if err != nil {
			return wb.fail(dst, err)
		}
		return http.StatusOK, appendAllocResponse(dst, &resp)

	case wire.OpAllocBatch:
		req, err := DecodeBatchAllocRequest(bytes.NewReader(body))
		if err != nil {
			return wb.fail(dst, err)
		}
		resp, err := wb.b.AllocBatch(ctx, req.Requests)
		if err != nil {
			return wb.fail(dst, err)
		}
		return http.StatusOK, appendBatchAllocResponse(dst, &resp)

	case wire.OpFree:
		req, err := DecodeFreeRequest(bytes.NewReader(body))
		if err != nil {
			return wb.fail(dst, err)
		}
		resp, err := wb.b.Free(ctx, req)
		if err != nil {
			return wb.fail(dst, err)
		}
		return http.StatusOK, appendFreeResponse(dst, &resp)

	case wire.OpRenew:
		req, err := DecodeRenewRequest(bytes.NewReader(body))
		if err != nil {
			return wb.fail(dst, err)
		}
		resp, err := wb.b.Renew(ctx, req)
		if err != nil {
			return wb.fail(dst, err)
		}
		return http.StatusOK, appendRenewResponse(dst, &resp)

	case wire.OpMigrate:
		req, err := DecodeMigrateRequest(bytes.NewReader(body))
		if err != nil {
			return wb.fail(dst, err)
		}
		resp, err := wb.b.Migrate(ctx, req)
		if err != nil {
			return wb.fail(dst, err)
		}
		return wb.marshal(dst, resp)

	case wire.OpLeases, wire.OpLeaseList:
		resp, err := wb.b.Leases(ctx, op == wire.OpLeaseList)
		if err != nil {
			return wb.fail(dst, err)
		}
		return wb.marshal(dst, resp)

	case wire.OpLeaseDetail:
		if wb.ld == nil {
			// No per-lease detail on this backend (the cluster router):
			// same outcome as its HTTP mux, a 404.
			return wb.fail(dst, fmt.Errorf("%w: 0", errNoSuchLease))
		}
		// The body reuses the free-request shape: {"lease": N}.
		req, err := DecodeFreeRequest(bytes.NewReader(body))
		if err != nil {
			return wb.fail(dst, err)
		}
		resp, err := wb.ld.LeaseDetail(ctx, req.Lease)
		if err != nil {
			return wb.fail(dst, err)
		}
		return http.StatusOK, appendLeaseDetailResponse(dst, &resp)

	case wire.OpHealth:
		resp, err := wb.b.Health(ctx)
		if err != nil {
			return wb.fail(dst, err)
		}
		return wb.marshal(dst, resp)

	case wire.OpMetrics:
		w := sliceWriter{dst: dst}
		if err := wb.b.WriteMetrics(ctx, &w); err != nil {
			return wb.fail(dst, err)
		}
		return http.StatusOK, w.dst

	default:
		return wb.fail(dst, fmt.Errorf("%w: unsupported wire op %s", ErrBadRequest, op))
	}
}

// fail appends the v1 error envelope — byte-identical to what the
// HTTP surface writes for the same error.
func (wb *WireBackend) fail(dst []byte, err error) (int, []byte) {
	status, eb := wb.a.errorBody(err)
	return status, appendErrorBody(dst, &eb)
}

// marshal appends v's JSON for the responses that have no hand-rolled
// appender (they are off the allocation hot path).
func (wb *WireBackend) marshal(dst []byte, v any) (int, []byte) {
	out, err := json.Marshal(v)
	if err != nil {
		return wb.fail(dst, err)
	}
	return http.StatusOK, append(dst, out...)
}

// sliceWriter is an io.Writer appending into a caller-owned slice, so
// WriteMetrics renders straight into the response frame buffer.
type sliceWriter struct{ dst []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.dst = append(w.dst, p...)
	return len(p), nil
}
