package server

// The self-hosted allocation benchmark behind `hetmemd bench` and the
// BenchmarkServerAlloc* variants: boot an in-process daemon with a
// given Config, drive N concurrent clients through alloc/free round
// trips, and report throughput, latency percentiles, and the
// ranked-candidate cache hit rate. Comparing a run with
// SyncEveryAppend + DisableCandidateCache (the pre-fast-path daemon)
// against one with GroupCommit + the cache is the PR's acceptance
// measurement.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hetmem/internal/core"
	"hetmem/internal/wire"
)

// BenchOptions configures one RunAllocBench run.
type BenchOptions struct {
	// Platform names the simulated machine (default "xeon").
	Platform string
	// Clients is the number of concurrent client goroutines
	// (default 32).
	Clients int
	// Requests is the alloc/free round trips per client (default 200).
	Requests int
	// SizeBytes is the per-allocation size (default 1 MiB).
	SizeBytes uint64
	// Batch > 1 allocates through /v1/alloc/batch in groups of this
	// many items per round trip (each still freed individually).
	Batch int
	// Transport selects how the clients reach the daemon: "" or
	// "http" (HTTP/1.1), "uds" (binary protocol over a unix socket),
	// or "tcp-bin" (binary protocol over one multiplexed TCP
	// connection per client).
	Transport string
	// Server is the daemon configuration under test.
	Server Config
}

func (o *BenchOptions) defaults() {
	if o.Platform == "" {
		o.Platform = "xeon"
	}
	if o.Clients <= 0 {
		o.Clients = 32
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.SizeBytes == 0 {
		o.SizeBytes = 1 << 20
	}
}

// BenchReport is the BENCH_alloc.json artifact: every configuration's
// result plus the headline fast/baseline speedup.
type BenchReport struct {
	Benchmark string        `json:"benchmark"`
	Platform  string        `json:"platform"`
	Clients   int           `json:"clients"`
	Results   []BenchResult `json:"results"`
	// Speedup is Results[1] ("fast") over Results[0] ("baseline") in
	// allocs/sec.
	Speedup float64 `json:"speedup,omitempty"`
	// Restart is the journal-recovery benchmark (sequential vs
	// parallel replay), when the bench ran it.
	Restart *RestartBenchResult `json:"restart,omitempty"`
}

// BenchResult is one configuration's measurement, JSON-ready for
// BENCH_alloc.json.
type BenchResult struct {
	Name string `json:"name"`
	// Transport is the client transport of the run ("http" when
	// empty; "uds" and "tcp-bin" are the binary wire protocol).
	Transport    string  `json:"transport,omitempty"`
	Clients      int     `json:"clients"`
	Allocs       int     `json:"allocs"`
	Seconds      float64 `json:"seconds"`
	AllocsPerSec float64 `json:"allocs_per_sec"`
	// P50Micros and P99Micros are percentiles of the client-observed
	// per-allocation latency. For batch runs each sample is the batch
	// round trip amortized over its items, so the column stays
	// comparable across batched and unbatched configurations; the raw
	// whole-batch round trip is reported separately below.
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
	// BatchSize is the items per round trip of a batch run, and
	// P50BatchMicros/P99BatchMicros are percentiles of the whole-batch
	// round-trip latency — what one caller actually waits for. All
	// zero for single-alloc runs.
	BatchSize      int     `json:"batch_size,omitempty"`
	P50BatchMicros float64 `json:"p50_batch_micros,omitempty"`
	P99BatchMicros float64 `json:"p99_batch_micros,omitempty"`
	// CacheHitRate is hits/(hits+misses) of the ranked-candidate cache
	// over the run (0 when the cache is disabled).
	CacheHitRate float64 `json:"cache_hit_rate"`
}

func (r BenchResult) String() string {
	s := fmt.Sprintf("%-14s %d clients: %8.0f allocs/s  p50 %6.0fµs  p99 %7.0fµs  cache %3.0f%%",
		r.Name, r.Clients, r.AllocsPerSec, r.P50Micros, r.P99Micros, 100*r.CacheHitRate)
	if r.BatchSize > 0 {
		s += fmt.Sprintf("  (amortized over %d-item batches; whole batch p50 %.0fµs p99 %.0fµs)",
			r.BatchSize, r.P50BatchMicros, r.P99BatchMicros)
	}
	return s
}

// RunAllocBench boots a daemon with opts.Server, saturates it with
// opts.Clients concurrent allocators, and measures the hot path.
func RunAllocBench(ctx context.Context, name string, opts BenchOptions) (BenchResult, error) {
	opts.defaults()
	sys, err := core.NewSystem(opts.Platform, core.Options{})
	if err != nil {
		return BenchResult{}, err
	}
	srv, err := NewWithConfig(sys, opts.Server)
	if err != nil {
		return BenchResult{}, err
	}
	defer srv.Close()
	base, stopListen, err := ServeTransport(srv, opts.Transport)
	if err != nil {
		return BenchResult{}, err
	}
	defer stopListen()

	// The binary transports' deployment model is ONE persistent
	// multiplexed connection carrying every client's requests — that is
	// what the request IDs and the group-commit write coalescing exist
	// for — so the bench shares a single Client across the goroutines.
	// HTTP keeps a client per goroutine (its deployment model is pooled
	// connections), matching the earlier bench rows.
	var shared *Client
	if opts.Transport == "uds" || opts.Transport == "tcp-bin" {
		shared = NewClient(base, WithRetryPolicy(NoRetry), WithoutHeartbeat())
		defer shared.Close()
	}

	hits0, misses0 := sys.Allocator.CacheStats()
	lat := make([][]time.Duration, opts.Clients)
	blat := make([][]time.Duration, opts.Clients)
	errs := make([]error, opts.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Benchmark the request path, not the retry machinery or the
			// background heartbeater.
			cl := shared
			if cl == nil {
				cl = NewClient(base, WithRetryPolicy(NoRetry), WithoutHeartbeat())
			}
			req := AllocRequest{
				Name: "bench", Size: opts.SizeBytes, Attr: "Bandwidth", Initiator: "0-19",
			}
			if opts.Batch > 1 {
				errs[c] = benchClientBatch(ctx, cl, req, opts, &lat[c], &blat[c])
			} else {
				errs[c] = benchClient(ctx, cl, req, opts, &lat[c])
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return BenchResult{}, err
		}
	}
	hits1, misses1 := sys.Allocator.CacheStats()

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	allocs := opts.Clients * opts.Requests
	res := BenchResult{
		Name:         name,
		Transport:    opts.Transport,
		Clients:      opts.Clients,
		Allocs:       allocs,
		Seconds:      elapsed.Seconds(),
		AllocsPerSec: float64(allocs) / elapsed.Seconds(),
		P50Micros:    percentileMicros(all, 0.50),
		P99Micros:    percentileMicros(all, 0.99),
	}
	if lookups := (hits1 - hits0) + (misses1 - misses0); lookups > 0 {
		res.CacheHitRate = float64(hits1-hits0) / float64(lookups)
	}
	if opts.Batch > 1 {
		var batches []time.Duration
		for _, l := range blat {
			batches = append(batches, l...)
		}
		sort.Slice(batches, func(i, j int) bool { return batches[i] < batches[j] })
		res.BatchSize = opts.Batch
		res.P50BatchMicros = percentileMicros(batches, 0.50)
		res.P99BatchMicros = percentileMicros(batches, 0.99)
	}
	return res, nil
}

// ServeTransport binds srv to a fresh ephemeral listener speaking the
// named transport ("" or "http", "uds", "tcp-bin") and serves it in
// the background. The returned base is ready for NewClient; stop
// shuts the listener down (the daemon itself is left to the caller).
// The bench and loadtest harnesses use it to run the same workload
// over every transport.
func ServeTransport(srv *Server, transport string) (base string, stop func(), err error) {
	switch transport {
	case "", "http":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
	case "uds":
		dir, err := os.MkdirTemp("", "hetmemd-uds-")
		if err != nil {
			return "", nil, err
		}
		path := filepath.Join(dir, "hetmemd.sock")
		ln, err := net.Listen("unix", path)
		if err != nil {
			os.RemoveAll(dir)
			return "", nil, err
		}
		ws := wire.NewServer(srv.WireHandler(), srv.Metrics().TransportStats(TransportUDS))
		go ws.Serve(ln)
		return "unix://" + path, func() { ws.Close(); os.RemoveAll(dir) }, nil
	case "tcp-bin":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		ws := wire.NewServer(srv.WireHandler(), srv.Metrics().TransportStats(TransportTCPBin))
		go ws.Serve(ln)
		return "tcp+bin://" + ln.Addr().String(), func() { ws.Close() }, nil
	}
	return "", nil, fmt.Errorf("unknown transport %q (want http, uds, or tcp-bin)", transport)
}

// benchClient runs one client's alloc/free round trips, recording each
// alloc's latency.
func benchClient(ctx context.Context, cl *Client, req AllocRequest, opts BenchOptions, lat *[]time.Duration) error {
	for i := 0; i < opts.Requests; i++ {
		t0 := time.Now()
		resp, err := cl.Alloc(ctx, req)
		if err != nil {
			return fmt.Errorf("bench client: alloc %d: %w", i, err)
		}
		*lat = append(*lat, time.Since(t0))
		if err := cl.Free(ctx, resp.Lease); err != nil {
			return fmt.Errorf("bench client: free %d: %w", i, err)
		}
	}
	return nil
}

// benchClientBatch is benchClient through /v1/alloc/batch: opts.Batch
// items per round trip. Each round trip lands twice: whole in blat,
// and amortized over its items in lat — dividing the batch round trip
// by its size is what makes the per-item columns comparable to the
// unbatched runs instead of silently reporting N allocations' worth
// of work as one "allocation latency".
func benchClientBatch(ctx context.Context, cl *Client, req AllocRequest, opts BenchOptions, lat, blat *[]time.Duration) error {
	reqs := make([]AllocRequest, opts.Batch)
	for i := range reqs {
		reqs[i] = req
	}
	for done := 0; done < opts.Requests; done += opts.Batch {
		n := opts.Batch
		if left := opts.Requests - done; left < n {
			n = left
		}
		t0 := time.Now()
		resp, err := cl.AllocBatch(ctx, reqs[:n])
		if err != nil {
			return fmt.Errorf("bench client: batch at %d: %w", done, err)
		}
		d := time.Since(t0)
		*blat = append(*blat, d)
		*lat = append(*lat, d/time.Duration(n))
		for _, it := range resp.Results {
			if it.Error != nil {
				return fmt.Errorf("bench client: batch item: %s: %s", it.Error.Code, it.Error.Message)
			}
			if err := cl.Free(ctx, it.Alloc.Lease); err != nil {
				return fmt.Errorf("bench client: batch free: %w", err)
			}
		}
	}
	return nil
}

// MedianResult picks the median-throughput trial from repeated runs of
// one configuration. fsync latency on shared or virtualized disks
// swings 2-3x between runs; the median trial is what the report should
// carry, not whichever run the disk happened to smile on.
func MedianResult(trials []BenchResult) BenchResult {
	if len(trials) == 0 {
		return BenchResult{}
	}
	sorted := make([]BenchResult, len(trials))
	copy(sorted, trials)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].AllocsPerSec < sorted[j].AllocsPerSec
	})
	return sorted[len(sorted)/2]
}

// percentileMicros reads the p'th percentile (0..1) of a sorted latency
// slice, in microseconds.
func percentileMicros(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Microsecond)
}
