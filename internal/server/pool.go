package server

// Hot-path object pools. A placement daemon under 32-client load used
// to pay a fresh request buffer, response buffer, lease object, and
// parsed initiator bitmap per request; all four now come from pools
// (or an intern cache), so the steady-state request path allocates
// only what encoding/json's decoder forces on it. The budgets in
// alloc_budget_test.go pin the result.

import (
	"sync"
	"sync/atomic"

	"hetmem/internal/bitmap"
)

// respBufPool recycles response encode buffers (see encode.go).
var respBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

func getRespBuf() *[]byte  { return respBufPool.Get().(*[]byte) }
func putRespBuf(b *[]byte) { *b = (*b)[:0]; respBufPool.Put(b) }

// reqBufPool recycles request body read buffers (see decodeJSON).
var reqBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getReqBuf() *[]byte  { return reqBufPool.Get().(*[]byte) }
func putReqBuf(b *[]byte) { *b = (*b)[:0]; reqBufPool.Put(b) }

// iniCacheMax bounds the initiator intern cache; a daemon sees a small
// closed set of cpuset strings (one per client pool), so the bound only
// guards against an adversarial stream of unique lists.
const iniCacheMax = 4096

var (
	iniCache     sync.Map // cpuset list string -> *bitmap.Bitmap
	iniCacheSize atomic.Int64
)

// internInitiator parses a cpuset list through a process-wide intern
// cache: the same list string yields the same immutable bitmap, parsed
// once. Safe to share because no consumer mutates parsed initiators —
// the allocator's candidate cache copies before storing and otherwise
// only reads.
func internInitiator(s string) (*bitmap.Bitmap, error) {
	if v, ok := iniCache.Load(s); ok {
		return v.(*bitmap.Bitmap), nil
	}
	b, err := bitmap.ParseList(s)
	if err != nil {
		return nil, err
	}
	if iniCacheSize.Add(1) <= iniCacheMax {
		iniCache.Store(s, b)
	} else {
		iniCacheSize.Add(-1)
	}
	return b, nil
}
