package server

// The advisor acceptance benchmark behind `hetmemd bench -advisor`:
// a graph500-style phased workload whose hot lease starts on the
// wrong tier (DRAM full of scratch at allocation time), run twice on
// identical machines — once with the tiering advisor driving a cycle
// between phases, once without. The advisor run must come out faster
// in simulated time even after paying the migration's copy cost; the
// BENCH_advisor.json artifact records both runs and the speedup.

import (
	"context"
	"fmt"

	"hetmem/internal/core"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
)

// AdvisorBenchOptions configures one RunAdvisorBench run.
type AdvisorBenchOptions struct {
	// Platform names the simulated machine (default "xeon").
	Platform string
	// Phases is the number of pointer-chase phases (default 8). The
	// scratch filling DRAM is freed after the first phase, so a larger
	// count gives the advisor more phases to win back the copy cost.
	Phases int
	// ReadsPerPhase is the random reads each phase issues against the
	// hot lease (default 250e6).
	ReadsPerPhase uint64
}

func (o *AdvisorBenchOptions) defaults() {
	if o.Platform == "" {
		o.Platform = "xeon"
	}
	if o.Phases <= 0 {
		o.Phases = 8
	}
	if o.ReadsPerPhase == 0 {
		o.ReadsPerPhase = 250_000_000
	}
}

// AdvisorBenchRun is one side of the A/B.
type AdvisorBenchRun struct {
	Name string `json:"name"`
	// ElapsedSeconds is the workload's simulated runtime, migration
	// copy costs included.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Moves is how many advisor migrations the run made.
	Moves int `json:"moves"`
	// Placement is the hot lease's final placement.
	Placement string `json:"placement"`
}

// AdvisorBenchReport is the BENCH_advisor.json artifact.
type AdvisorBenchReport struct {
	Benchmark     string          `json:"benchmark"`
	Platform      string          `json:"platform"`
	Phases        int             `json:"phases"`
	ReadsPerPhase uint64          `json:"reads_per_phase"`
	WithAdvisor   AdvisorBenchRun `json:"with_advisor"`
	Without       AdvisorBenchRun `json:"without_advisor"`
	// Speedup is without/with simulated runtime: > 1 means the advisor
	// paid for its migrations.
	Speedup float64 `json:"speedup"`
}

// RunAdvisorBench runs the phased workload with and without the
// advisor and reports both simulated runtimes.
func RunAdvisorBench(opts AdvisorBenchOptions) (AdvisorBenchReport, error) {
	opts.defaults()
	report := AdvisorBenchReport{
		Benchmark:     "advisor_phases",
		Platform:      opts.Platform,
		Phases:        opts.Phases,
		ReadsPerPhase: opts.ReadsPerPhase,
	}
	withAdv, err := advisorWorkload(opts, true)
	if err != nil {
		return report, fmt.Errorf("advisor run: %w", err)
	}
	withAdv.Name = "with_advisor"
	without, err := advisorWorkload(opts, false)
	if err != nil {
		return report, fmt.Errorf("baseline run: %w", err)
	}
	without.Name = "without_advisor"
	report.WithAdvisor = withAdv
	report.Without = without
	if withAdv.ElapsedSeconds > 0 {
		report.Speedup = without.ElapsedSeconds / withAdv.ElapsedSeconds
	}
	return report, nil
}

// advisorWorkload boots a daemon, leases a latency-bound buffer while
// DRAM is full of scratch (so it lands on the capacity tier), frees
// the scratch after the first phase, and chases pointers through the
// lease for the remaining phases. With the advisor enabled, a cycle
// runs after every phase; its migrations' copy costs are charged to
// the simulated clock.
func advisorWorkload(opts AdvisorBenchOptions, withAdvisor bool) (AdvisorBenchRun, error) {
	const gib = uint64(1) << 30
	sys, err := core.NewSystem(opts.Platform, core.Options{})
	if err != nil {
		return AdvisorBenchRun{}, err
	}
	cfg := Config{}
	if withAdvisor {
		// The interval only paces the background loop, which this
		// harness does not rely on — cycles are driven between phases.
		cfg.AdvisorInterval = 3600e9
		cfg.AdvisorHysteresis = 2
		cfg.AdvisorCooldown = 2
	}
	s, err := NewWithConfig(sys, cfg)
	if err != nil {
		return AdvisorBenchRun{}, err
	}
	defer s.Close()

	ini := sys.InitiatorForPackage(0)
	// Fill the fast tier: the scratch is machine-level state, not a
	// lease, so the advisor never considers moving it.
	scratch, _, err := sys.MemAlloc("scratch", 190*gib, memattr.Latency, ini)
	if err != nil {
		return AdvisorBenchRun{}, err
	}
	// The lease is pinned to package 0's cores, like the application
	// threads chasing it: its local DRAM is full, so the placement
	// falls back to the local capacity tier.
	resp, err := s.doAlloc(context.Background(), AllocRequest{
		Name: "graph-index", Size: 6 * gib, Attr: "Latency",
		Initiator: ini.ListString(),
	})
	if err != nil {
		return AdvisorBenchRun{}, err
	}
	l, ok := s.leases.get(resp.Lease)
	if !ok {
		return AdvisorBenchRun{}, fmt.Errorf("lease %d vanished", resp.Lease)
	}
	index := l.buf
	l.release()

	eng := sys.Engine(ini)
	moves := 0
	for p := 1; p <= opts.Phases; p++ {
		eng.Phase(fmt.Sprintf("phase-%d", p), []memsim.Access{
			{Buffer: index, RandomReads: opts.ReadsPerPhase, MLP: 4},
		})
		if p == 1 {
			// The application's init scratch goes away; the fast tier
			// now has room for the hot lease.
			if err := sys.Free(scratch); err != nil {
				return AdvisorBenchRun{}, err
			}
			scratch = nil
		}
		if withAdvisor {
			n, cost := s.AdviseCycle()
			moves += n
			eng.AdvanceClock(cost)
		}
	}
	if scratch != nil {
		sys.Free(scratch)
	}
	return AdvisorBenchRun{
		ElapsedSeconds: eng.Elapsed(),
		Moves:          moves,
		Placement:      index.NodeNames(),
	}, nil
}
