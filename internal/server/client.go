package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hetmem/internal/advisor"
	"hetmem/internal/topology"
	"hetmem/internal/wire"
)

// RetryPolicy controls the client's resilience to transient failures:
// transport errors and 502/503/504 responses are retried with
// exponential backoff and jitter, honoring any Retry-After hint the
// daemon sends. Other statuses (400, 404, 507, ...) are never retried
// — they mean the same request will fail the same way.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries; <= 1 disables retry.
	MaxAttempts int
	// BaseDelay is the first backoff, doubled each retry.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (and any Retry-After hint).
	MaxDelay time.Duration
}

// DefaultRetry is the retry policy NewClient installs.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}

// NoRetry disables retrying entirely.
var NoRetry = RetryPolicy{MaxAttempts: 1}

// Client is the Go API for a running hetmemd daemon. The zero value is
// not usable; create one with NewClient. A Client is safe for
// concurrent use (it shares one http.Client).
//
// Every method takes a context; retries stop when it is done. Alloc
// stamps requests with an idempotency key when the caller did not, so
// a retry of a request whose response was lost returns the original
// lease instead of allocating twice.
type Client struct {
	base    string
	http    *http.Client
	retry   RetryPolicy
	// attemptTimeout bounds each HTTP exchange (dial through body
	// read). The caller's context bounds the whole call, retries and
	// backoff included; whichever deadline is sooner wins.
	attemptTimeout time.Duration
	breaker        *breaker
	hb             *heartbeater
	noHB           bool
	// tenant is stamped on every request as X-Hetmem-Tenant. A
	// per-request tenant in the context (ContextWithTenant) wins.
	tenant string
	// wc is the binary-protocol transport, non-nil when the base URL
	// is unix:// or tcp+bin://; see clientwire.go. When set, do()
	// exchanges wire frames instead of HTTP requests.
	wc *wire.Client
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithRetryPolicy overrides the retry policy (use NoRetry to fail
// fast).
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithHTTPClient substitutes the underlying http.Client.
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithAttemptTimeout bounds each individual HTTP attempt (dial through
// body read) instead of the historical blanket http.Client timeout.
// The caller's context still bounds the whole call — attempts, backoff
// sleeps, everything — so a router forwarding a request propagates its
// inbound deadline to the member instead of pinning every hop at 30s.
// Zero keeps the 30s default; negative disables the per-attempt bound
// (the context alone governs).
func WithAttemptTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.attemptTimeout = d }
}

// WithCircuitBreaker arms a client-side circuit breaker: after
// threshold consecutive transport failures the breaker opens and every
// request fails fast with ErrCircuitOpen until cooldown elapses, at
// which point one probe request is let through (half-open); its
// outcome closes or re-opens the breaker. HTTP error statuses do NOT
// trip it — a 503 is the daemon talking, not the daemon gone.
func WithCircuitBreaker(threshold int, cooldown time.Duration) ClientOption {
	return func(c *Client) { c.breaker = newBreaker(threshold, cooldown) }
}

// WithoutHeartbeat disables the automatic renewal of TTL leases.
func WithoutHeartbeat() ClientOption {
	return func(c *Client) { c.noHB = true }
}

// WithTenant stamps every request from this client with the tenant's
// X-Hetmem-Tenant header, so the daemon books the client's allocations
// against that tenant's quotas and priority class. A tenant carried in
// the request context (ContextWithTenant) overrides it per call.
func WithTenant(name string) ClientOption {
	return func(c *Client) { c.tenant = name }
}

// NewClient returns a client for the daemon at base, e.g.
// "http://127.0.0.1:7077". A "unix:///path.sock" or
// "tcp+bin://host:port" base selects the binary wire protocol over a
// persistent multiplexed connection instead of HTTP; every method,
// option, and error behaves identically (see clientwire.go).
//
// The client keeps its own connection pool sized for talking to one
// host: http.DefaultTransport caps idle connections per host at 2,
// which makes every concurrent caller beyond two re-dial TCP on each
// request — a syscall storm that dominates the daemon's fast path.
func NewClient(base string, opts ...ClientOption) *Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 128
	c := &Client{
		base: strings.TrimRight(base, "/"),
		// No http.Client.Timeout: a blanket client timeout would cap the
		// whole retry loop at one opaque number and ignore the caller's
		// context. Each attempt is bounded by attemptTimeout instead,
		// and the caller's deadline bounds the call.
		http:           &http.Client{Transport: tr},
		retry:          DefaultRetry,
		attemptTimeout: 30 * time.Second,
		wc:             wireBaseFor(base),
	}
	for _, o := range opts {
		o(c)
	}
	if c.retry.MaxAttempts < 1 {
		c.retry.MaxAttempts = 1
	}
	if c.attemptTimeout < 0 {
		c.attemptTimeout = 0
	}
	c.hb = newHeartbeater(c)
	return c
}

// Close stops the background heartbeater (if it ever started) and
// drops the binary transport's connection. The client itself remains
// usable (a later call re-dials); held TTL leases just stop being
// renewed.
func (c *Client) Close() error {
	c.hb.stopAll()
	if c.wc != nil {
		return c.wc.Close()
	}
	return nil
}

// APIError is a non-2xx daemon response. Use errors.As to get the full
// envelope, or errors.Is against the code sentinels —
//
//	errors.Is(err, server.ErrCapacityExhausted)
//	errors.Is(err, server.ErrShedding)
//
// — to branch on the stable v1 error code without string matching.
type APIError struct {
	StatusCode int
	// Code is the stable v1 error code ("capacity_exhausted",
	// "shedding", ...); empty when the daemon predates v1.
	Code      string
	Message   string
	Retryable bool
	// RetryAfterSeconds is the daemon's retry hint on retryable errors
	// (0: client's choice).
	RetryAfterSeconds int
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.StatusCode)
	}
	return fmt.Sprintf("server: HTTP %d", e.StatusCode)
}

// Is matches an APIError against the v1 code sentinels, so
// errors.Is(err, server.ErrLeaseExpired) works through the client.
func (e *APIError) Is(target error) bool {
	c, ok := target.(codeSentinel)
	return ok && e.Code == string(c)
}

// retryableStatus reports whether a response status is worth retrying.
// Every other 4xx is terminal: the same request will fail the same
// way, so retrying only adds load.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff computes the attempt'th delay (attempt counts from 0) with
// half-jitter: the delay doubles each attempt and the actual sleep is
// drawn from [delay/2, delay], so synchronized clients spread out.
func (p RetryPolicy) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := p.BaseDelay << uint(attempt)
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := d / 2
	return half + time.Duration(mrand.Int63n(int64(half)+1))
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delay-seconds (what the daemon emits) or an HTTP-date (what proxies
// in front of it may rewrite it to).
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if sec, err := strconv.Atoi(v); err == nil {
		if sec < 0 {
			return 0
		}
		return time.Duration(sec) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// connRefused reports whether a transport error is a refused
// connection. A refused dial is the one transport failure that proves
// the server never saw the request — the kernel bounced the SYN (or
// the socket never existed) before a byte of HTTP left the client —
// so it is safe to retry even for non-idempotent requests. Every
// other transport error (reset mid-exchange, EOF on the response) is
// ambiguous: the server may have processed the request without us
// seeing the answer.
func connRefused(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED)
}

// doResult is one completed exchange plus how bumpy the road there
// was.
type doResult struct {
	status     int
	body       []byte
	retryAfter time.Duration // the daemon's Retry-After hint, if any
	// transportRetries counts attempts lost to transport errors before
	// this response arrived — i.e. attempts the server may have
	// processed without us seeing the answer.
	transportRetries int
}

// do sends one request with the retry policy. body may be nil (GET).
//
// idempotent declares that repeating the request cannot change the
// outcome (GETs, renews, frees, allocs carrying an idempotency key):
// such requests retry every transport error with backoff. A
// non-idempotent request retries a transport error only when it was a
// refused connection — provably never processed — so a member daemon
// restarting under a router does not turn into duplicated work, and
// an ambiguous mid-exchange failure is surfaced instead of replayed.
func (c *Client) do(ctx context.Context, method, path string, payload []byte, idempotent bool) (doResult, error) {
	var res doResult
	var lastErr error
	// On a binary transport, resolve the wire op before burning
	// attempts: an unmapped path (the advisor control surface) fails
	// identically every time.
	var wop wire.Op
	var wbody []byte
	if c.wc != nil {
		var err error
		if wop, wbody, err = wireOpFor(method, path, payload); err != nil {
			return res, err
		}
	}
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if err := c.breaker.allow(); err != nil {
			if lastErr != nil {
				return res, fmt.Errorf("%w (last transport error: %v)", err, lastErr)
			}
			return res, err
		}
		if attempt > 0 {
			var retryAfter time.Duration
			if lastErr == nil {
				// Previous attempt was a retryable HTTP status.
				retryAfter = res.retryAfter
			}
			delay := c.retry.backoff(attempt-1, retryAfter)
			// The backoff must not sleep past the caller's deadline: a
			// sleep that cannot be followed by a useful attempt only
			// delays the failure the caller is already owed. Fail now,
			// with the last error attached.
			if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= delay {
				if lastErr != nil {
					return res, fmt.Errorf("server: deadline expires during retry backoff (attempt %d): %w", attempt, lastErr)
				}
				// Retryable HTTP status with no time left: surface it.
				return res, nil
			}
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return res, ctx.Err()
			case <-t.C:
			}
		}
		// Each attempt gets its own deadline under the caller's: a
		// member that accepted the connection and went silent (an
		// asymmetric partition) fails this attempt at attemptTimeout
		// and the loop moves on, instead of consuming the whole call.
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if c.attemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, c.attemptTimeout)
		}
		if c.wc != nil {
			status, data, err := c.wc.RoundTrip(attemptCtx, wop, c.requestTenant(ctx), wbody)
			cancel()
			if err != nil {
				if ctx.Err() != nil {
					return res, ctx.Err()
				}
				c.breaker.record(false)
				// ErrNotSent proves the frame never reached the daemon
				// (a failed dial, or registration on a connection that
				// had already died): as safe to replay as a refused TCP
				// SYN. A mid-stream drop is the muxed transport's
				// ambiguous failure — the daemon may have processed the
				// frame and the answer died with the connection — so
				// non-idempotent requests fail fast, exactly like an
				// HTTP reset mid-exchange.
				if !idempotent && !errors.Is(err, wire.ErrNotSent) {
					return res, fmt.Errorf("server: transport error on non-idempotent request: %w", err)
				}
				res.transportRetries++
				lastErr = err
				continue
			}
			c.breaker.record(true)
			res.status = status
			res.body = data
			res.retryAfter = wireRetryAfter(status, data)
		} else {
			var body io.Reader
			if payload != nil {
				body = bytes.NewReader(payload)
			}
			req, err := http.NewRequestWithContext(attemptCtx, method, c.base+path, body)
			if err != nil {
				cancel()
				return res, err
			}
			if payload != nil {
				req.Header.Set("Content-Type", "application/json")
			}
			if t := c.requestTenant(ctx); t != "" {
				req.Header.Set(TenantHeader, t)
			}
			resp, err := c.http.Do(req)
			if err != nil {
				cancel()
				if ctx.Err() != nil {
					return res, ctx.Err()
				}
				c.breaker.record(false)
				if !idempotent && !connRefused(err) {
					// The server may have seen this one; replaying it blind
					// could double its effect. Let the caller decide.
					return res, fmt.Errorf("server: transport error on non-idempotent request: %w", err)
				}
				res.transportRetries++
				lastErr = err
				continue
			}
			// Any HTTP response — even an error status — means the daemon
			// is reachable and talking: the breaker records success.
			c.breaker.record(true)
			data, err := readBody(resp)
			resp.Body.Close()
			cancel()
			if err != nil {
				if ctx.Err() != nil {
					return res, ctx.Err()
				}
				res.transportRetries++
				lastErr = err
				continue
			}
			res.status = resp.StatusCode
			res.body = data
			res.retryAfter = parseRetryAfter(resp.Header)
		}
		if retryableStatus(res.status) {
			// The status alone is not the last word: quota_exceeded
			// rides on 429 but is terminal — the daemon has room, this
			// tenant does not, and replaying the request only burns the
			// retry budget against a limit that will not move. Trust
			// the envelope's own retryable verdict when it carries one.
			var v1 ErrorBody
			if json.Unmarshal(res.body, &v1) == nil && v1.Code != "" && !v1.Retryable {
				return res, nil
			}
			lastErr = nil
			continue
		}
		return res, nil
	}
	if lastErr != nil {
		return res, fmt.Errorf("server: %d attempts failed, last: %w", c.retry.MaxAttempts, lastErr)
	}
	// Out of attempts on a retryable status: surface it as an APIError.
	return res, nil
}

func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	res, err := c.do(ctx, http.MethodGet, path, nil, true)
	if err != nil {
		return nil, err
	}
	if res.status != http.StatusOK {
		return nil, apiErrorFrom(res)
	}
	return res.body, nil
}

func (c *Client) post(ctx context.Context, path string, req, out any, idempotent bool) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	res, err := c.do(ctx, http.MethodPost, path, payload, idempotent)
	if err != nil {
		return err
	}
	if res.status != http.StatusOK {
		return apiErrorFrom(res)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(res.body, out)
}

// apiErrorFrom rebuilds the *APIError from a buffered exchange: the v1
// envelope when present, falling back to the legacy {"error": ...}
// body for pre-v1 daemons.
func apiErrorFrom(res doResult) error {
	var v1 ErrorBody
	if json.Unmarshal(res.body, &v1) == nil && v1.Code != "" {
		return &APIError{
			StatusCode:        res.status,
			Code:              v1.Code,
			Message:           v1.Message,
			Retryable:         v1.Retryable,
			RetryAfterSeconds: v1.RetryAfterSeconds,
		}
	}
	var e ErrorResponse
	if json.Unmarshal(res.body, &e) == nil && e.Error != "" {
		return &APIError{StatusCode: res.status, Message: e.Error}
	}
	return &APIError{StatusCode: res.status, Message: strings.TrimSpace(string(res.body))}
}

// readBody drains a response body into one right-sized buffer.
// io.ReadAll starts at 512 bytes and regrows; the daemon always sends
// Content-Length, so the exact size is known up front.
func readBody(resp *http.Response) ([]byte, error) {
	// Only trust a positive length: a hand-built Response (tests, fakes)
	// leaves ContentLength 0 even with a non-empty body.
	if n := resp.ContentLength; n > 0 && n < 1<<20 {
		buf := make([]byte, n)
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	return io.ReadAll(resp.Body)
}

// newIdempotencyKey draws a random key for an /alloc retry family.
func newIdempotencyKey() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; fall back
		// to math/rand rather than crash a client.
		return fmt.Sprintf("k%016x", mrand.Int63())
	}
	return hex.EncodeToString(b[:])
}

// Topology fetches and rebuilds the daemon's machine topology.
func (c *Client) Topology(ctx context.Context) (*topology.Topology, error) {
	body, err := c.get(ctx, "/v1/topology")
	if err != nil {
		return nil, err
	}
	return topology.Import(body)
}

// Attrs fetches the attribute dump (the Figure 5 report).
func (c *Client) Attrs(ctx context.Context) ([]AttrReport, error) {
	body, err := c.get(ctx, "/v1/attrs")
	if err != nil {
		return nil, err
	}
	var out []AttrReport
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Alloc places a buffer on the daemon and returns its lease. When the
// request carries no idempotency key and retry is enabled, the client
// stamps one, so a retried alloc can never double-allocate. A lease
// granted with a TTL is heartbeat-renewed in the background until
// freed (or Close is called); disable with WithoutHeartbeat.
func (c *Client) Alloc(ctx context.Context, req AllocRequest) (AllocResponse, error) {
	if req.IdempotencyKey == "" && c.retry.MaxAttempts > 1 {
		req.IdempotencyKey = newIdempotencyKey()
	}
	var out AllocResponse
	err := c.post(ctx, "/v1/alloc", req, &out, req.IdempotencyKey != "")
	if err == nil && out.TTLSeconds > 0 && !c.noHB {
		c.hb.track(out.Lease, time.Duration(out.TTLSeconds*float64(time.Second)))
	}
	return out, err
}

// AllocBatch places many buffers in one round-trip: the daemon
// journals the whole batch as a single write+fsync and returns
// per-item outcomes in request order. Items are independent — inspect
// each BatchAllocItem for its lease or error.
//
// Batches do not support idempotency keys, so the client does not
// stamp any and does not replay ambiguous transport failures (a blind
// retry could double-allocate the items that succeeded). The one
// transport failure that IS retried, with backoff, is a refused
// connection — the daemon provably never saw the batch, e.g. a member
// restarting behind a router. Use Alloc for fully retry-safe single
// placements. TTL leases granted by a batch are heartbeat-renewed
// like Alloc's.
func (c *Client) AllocBatch(ctx context.Context, reqs []AllocRequest) (BatchAllocResponse, error) {
	var out BatchAllocResponse
	if err := c.post(ctx, "/v1/alloc/batch", BatchAllocRequest{Requests: reqs}, &out, false); err != nil {
		return BatchAllocResponse{}, err
	}
	if !c.noHB {
		for _, it := range out.Results {
			if it.Alloc != nil && it.Alloc.TTLSeconds > 0 {
				c.hb.track(it.Alloc.Lease, time.Duration(it.Alloc.TTLSeconds*float64(time.Second)))
			}
		}
	}
	return out, nil
}

// Renew heartbeats a lease, pushing its expiry one TTL into the
// future. A zero ttl keeps the lease's granted TTL.
func (c *Client) Renew(ctx context.Context, lease uint64, ttl time.Duration) (RenewResponse, error) {
	var out RenewResponse
	err := c.post(ctx, "/v1/renew", RenewRequest{Lease: lease, TTLSeconds: ttl.Seconds()}, &out, true)
	return out, err
}

// Free releases a lease. A 404 after a lost response is success: the
// daemon freed the lease on an attempt whose answer never arrived.
func (c *Client) Free(ctx context.Context, lease uint64) error {
	c.hb.untrack(lease)
	payload, err := json.Marshal(FreeRequest{Lease: lease})
	if err != nil {
		return err
	}
	res, err := c.do(ctx, http.MethodPost, "/v1/free", payload, true)
	if err != nil {
		return err
	}
	if res.status == http.StatusNotFound && res.transportRetries > 0 {
		return nil
	}
	if res.status != http.StatusOK {
		return apiErrorFrom(res)
	}
	return nil
}

// Migrate re-places a leased buffer for a new attribute. A migrate is
// not idempotent (each replay re-ranks and may move the buffer
// again), so only connection-refused transport errors are retried.
func (c *Client) Migrate(ctx context.Context, req MigrateRequest) (MigrateResponse, error) {
	var out MigrateResponse
	err := c.post(ctx, "/v1/migrate", req, &out, false)
	return out, err
}

// Leases fetches the live lease table summary (with the per-lease list
// when list is true).
func (c *Client) Leases(ctx context.Context, list bool) (LeasesResponse, error) {
	path := "/v1/leases"
	if list {
		path += "?list=1"
	}
	body, err := c.get(ctx, path)
	if err != nil {
		return LeasesResponse{}, err
	}
	var out LeasesResponse
	err = json.Unmarshal(body, &out)
	return out, err
}

// LeaseDetail fetches one lease's full record — placement, attribute,
// advisor classification, and access telemetry.
func (c *Client) LeaseDetail(ctx context.Context, lease uint64) (LeaseDetailResponse, error) {
	body, err := c.get(ctx, "/v1/leases/"+strconv.FormatUint(lease, 10))
	if err != nil {
		return LeaseDetailResponse{}, err
	}
	var out LeaseDetailResponse
	err = json.Unmarshal(body, &out)
	return out, err
}

// Advisor fetches the tiering advisor's state: configuration, cycle
// and move counters, and the rolling decision log. Daemons running
// without an advisor answer 409 advisor_paused
// (errors.Is(err, server.ErrCodeAdvisorPaused)).
func (c *Client) Advisor(ctx context.Context) (advisor.Snapshot, error) {
	body, err := c.get(ctx, "/v1/advisor")
	if err != nil {
		return advisor.Snapshot{}, err
	}
	var out advisor.Snapshot
	err = json.Unmarshal(body, &out)
	return out, err
}

// AdvisorPause suspends automatic re-placement. Pausing an
// already-paused advisor is a 409 advisor_paused error, so callers
// coordinating a maintenance window can detect a double-pause.
func (c *Client) AdvisorPause(ctx context.Context) error {
	return c.post(ctx, "/v1/advisor/pause", struct{}{}, nil, false)
}

// AdvisorResume restarts automatic re-placement; resuming a running
// advisor is a no-op.
func (c *Client) AdvisorResume(ctx context.Context) error {
	return c.post(ctx, "/v1/advisor/resume", struct{}{}, nil, true)
}

// Health fetches the daemon's health report.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	body, err := c.get(ctx, "/v1/health")
	if err != nil {
		return HealthResponse{}, err
	}
	var out HealthResponse
	err = json.Unmarshal(body, &out)
	return out, err
}

// MetricsRaw fetches the /metrics text.
func (c *Client) MetricsRaw(ctx context.Context) (string, error) {
	body, err := c.get(ctx, "/v1/metrics")
	return string(body), err
}

// Metrics fetches and parses /metrics into a series→value map.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	text, err := c.MetricsRaw(ctx)
	if err != nil {
		return nil, err
	}
	return ParseMetrics(text)
}
