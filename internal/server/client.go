package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hetmem/internal/topology"
)

// Client is the Go API for a running hetmemd daemon. The zero value is
// not usable; create one with NewClient. A Client is safe for
// concurrent use (it shares one http.Client).
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the daemon at base, e.g.
// "http://127.0.0.1:7077".
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// apiError turns a non-2xx response into an error carrying the
// server's message.
func apiError(resp *http.Response, body []byte) error {
	var e ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

func (c *Client) get(path string) ([]byte, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp, body)
	}
	return body, nil
}

func (c *Client) post(path string, req, out any) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp, body)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// Topology fetches and rebuilds the daemon's machine topology.
func (c *Client) Topology() (*topology.Topology, error) {
	body, err := c.get("/topology")
	if err != nil {
		return nil, err
	}
	return topology.Import(body)
}

// Attrs fetches the attribute dump (the Figure 5 report).
func (c *Client) Attrs() ([]AttrReport, error) {
	body, err := c.get("/attrs")
	if err != nil {
		return nil, err
	}
	var out []AttrReport
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Alloc places a buffer on the daemon and returns its lease.
func (c *Client) Alloc(req AllocRequest) (AllocResponse, error) {
	var out AllocResponse
	err := c.post("/alloc", req, &out)
	return out, err
}

// Free releases a lease.
func (c *Client) Free(lease uint64) error {
	return c.post("/free", FreeRequest{Lease: lease}, nil)
}

// Migrate re-places a leased buffer for a new attribute.
func (c *Client) Migrate(req MigrateRequest) (MigrateResponse, error) {
	var out MigrateResponse
	err := c.post("/migrate", req, &out)
	return out, err
}

// Leases fetches the live lease table summary (with the per-lease list
// when list is true).
func (c *Client) Leases(list bool) (LeasesResponse, error) {
	path := "/leases"
	if list {
		path += "?list=1"
	}
	body, err := c.get(path)
	if err != nil {
		return LeasesResponse{}, err
	}
	var out LeasesResponse
	err = json.Unmarshal(body, &out)
	return out, err
}

// MetricsRaw fetches the /metrics text.
func (c *Client) MetricsRaw() (string, error) {
	body, err := c.get("/metrics")
	return string(body), err
}

// Metrics fetches and parses /metrics into a series→value map.
func (c *Client) Metrics() (map[string]float64, error) {
	text, err := c.MetricsRaw()
	if err != nil {
		return nil, err
	}
	return ParseMetrics(text)
}
