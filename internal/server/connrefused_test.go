package server_test

// Transport-error retry semantics: a refused connection means the
// daemon provably never saw the request, so the client retries it
// with backoff even for non-idempotent calls (AllocBatch, Migrate) —
// the case of a member daemon restarting behind a router. Any other
// transport error is ambiguous (the request may have been processed
// before the connection died), so non-idempotent calls fail fast
// while idempotent ones keep retrying.

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hetmem/internal/server"
)

// TestAllocBatchRetriesConnRefused reserves a port, closes the
// listener so the first attempts are refused, then brings a daemon up
// on the same address. The batch — which must never be blindly
// replayed on ambiguous failures — still lands, because a refused
// connection is provably unprocessed.
func TestAllocBatchRetriesConnRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var hits atomic.Int32
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, `{"results":[{"alloc":{"lease":1,"node":0,"size":64}}]}`)
	})}
	defer srv.Close()
	go func() {
		// Let the client eat a few refusals first.
		time.Sleep(60 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port stolen; the test will fail with a clear error
		}
		srv.Serve(ln2)
	}()

	cl := server.NewClient("http://"+addr,
		server.WithRetryPolicy(server.RetryPolicy{MaxAttempts: 10, BaseDelay: 20 * time.Millisecond, MaxDelay: 100 * time.Millisecond}),
		server.WithoutHeartbeat())
	out, err := cl.AllocBatch(context.Background(), []server.AllocRequest{{Name: "b0", Size: 64}})
	if err != nil {
		t.Fatalf("AllocBatch should survive conn-refused until the daemon is back: %v", err)
	}
	if len(out.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(out.Results))
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("daemon saw %d batch requests, want exactly 1 (no double submit)", got)
	}
}

// ambiguousTransport fails every attempt with a transport error that
// is NOT a refused connection — the request may have reached the
// daemon before the failure.
type ambiguousTransport struct {
	calls atomic.Int32
}

func (at *ambiguousTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	at.calls.Add(1)
	return nil, errors.New("broken pipe mid-response (simulated)")
}

// TestNonIdempotentFailsFastOnAmbiguousError: a Migrate (not
// idempotent — each replay re-ranks and may move the buffer again)
// must not be blindly replayed when the transport error leaves the
// first attempt's fate unknown.
func TestNonIdempotentFailsFastOnAmbiguousError(t *testing.T) {
	at := &ambiguousTransport{}
	cl := server.NewClient("http://hetmemd.invalid",
		server.WithHTTPClient(&http.Client{Transport: at}),
		server.WithRetryPolicy(fastRetry(5)),
		server.WithoutHeartbeat())
	_, err := cl.Migrate(context.Background(), server.MigrateRequest{Lease: 1, Attr: "bandwidth"})
	if err == nil {
		t.Fatal("ambiguous transport failure reported success")
	}
	if !strings.Contains(err.Error(), "non-idempotent") {
		t.Fatalf("error should say the request was not replayed: %v", err)
	}
	if got := at.calls.Load(); got != 1 {
		t.Fatalf("transport saw %d attempts, want exactly 1 (no blind replay)", got)
	}
}

// TestIdempotentRetriesAmbiguousError: the same ambiguous failure on
// an idempotent request (keyed Alloc) is retried — replaying it is
// harmless because the daemon dedupes on the idempotency key.
func TestIdempotentRetriesAmbiguousError(t *testing.T) {
	at := &ambiguousTransport{}
	cl := server.NewClient("http://hetmemd.invalid",
		server.WithHTTPClient(&http.Client{Transport: at}),
		server.WithRetryPolicy(fastRetry(3)),
		server.WithoutHeartbeat())
	_, err := cl.Alloc(context.Background(), server.AllocRequest{Name: "a", Size: 64, Attr: "bandwidth"})
	if err == nil {
		t.Fatal("dead transport reported success")
	}
	if got := at.calls.Load(); got != 3 {
		t.Fatalf("transport saw %d attempts, want 3 (keyed alloc retries ambiguous errors)", got)
	}
}
