package server_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"hetmem/internal/core"
	"hetmem/internal/server"
)

// TestChaosUnderLoad is the headline robustness test: 32 concurrent
// clients allocate, free, and migrate while a seeded fault plan kills
// and restarts nodes, degrades tiers, shrinks capacity, and trips
// transient faults. The run must end with every node healthy and the
// books balanced, and a daemon restarted from the journal must rebuild
// the per-node byte accounting exactly. Run with -race.
func TestChaosUnderLoad(t *testing.T) {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wal")
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	rep, err := server.ChaosRun(ctx, sys, server.ChaosOptions{
		Seed:         7,
		Steps:        24,
		StepInterval: 2 * time.Millisecond,
		Load: server.LoadOptions{
			Clients:           32,
			RequestsPerClient: 20,
			MaxSizeBytes:      16 << 20,
		},
		Server: server.Config{JournalPath: path, ShedWatermark: 0.9},
	})
	if err != nil {
		t.Fatalf("%v (load %s)", err, rep.Load)
	}
	if rep.FaultEvents == 0 {
		t.Fatal("plan injected no faults")
	}
	if rep.Load.Allocs == 0 || rep.Load.Frees == 0 {
		t.Fatalf("load did no work: %s", rep.Load)
	}
	t.Logf("chaos: %d fault events, load %s, %s", rep.FaultEvents, rep.Load, rep.Consistency)

	// Restart from the journal with a fresh machine: the lease count
	// and every node's bytes must come back byte-for-byte.
	sys2, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.NewWithConfig(sys2, server.Config{JournalPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got, want := srv2.LeaseCount(), int(rep.Metrics["hetmemd_leases_active"]); got != want {
		t.Fatalf("restarted lease count %d, pre-shutdown %d", got, want)
	}
	for _, n := range sys2.Machine.Nodes() {
		key := fmt.Sprintf("hetmemd_node_bytes_in_use{node=%q}", fmt.Sprintf("%s#%d", n.Kind(), n.OSIndex()))
		if got, want := float64(n.Allocated()), rep.Metrics[key]; got != want {
			t.Errorf("node %s#%d: restarted %v bytes, pre-shutdown %v", n.Kind(), n.OSIndex(), got, want)
		}
	}
}

// TestChaosSeedsAreDeterministic runs a small plan twice and expects
// the same fault sequence both times (the load is timing-dependent,
// the plan must not be).
func TestChaosSeedsAreDeterministic(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	counts := make([]int, 2)
	for i := range counts {
		sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := server.ChaosRun(ctx, sys, server.ChaosOptions{
			Seed:         3,
			Steps:        10,
			StepInterval: time.Millisecond,
			Load:         server.LoadOptions{Clients: 4, RequestsPerClient: 10, MaxSizeBytes: 8 << 20},
		})
		if err != nil {
			t.Fatalf("run %d: %v (load %s)", i, err, rep.Load)
		}
		counts[i] = rep.FaultEvents
	}
	if counts[0] != counts[1] {
		t.Fatalf("same seed injected %d then %d fault events", counts[0], counts[1])
	}
}
