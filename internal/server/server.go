// Package server turns a discovered heterogeneous-memory system
// (internal/core) into a long-running placement daemon: the paper's
// in-process attribute API served over HTTP to many concurrent
// clients, in the spirit of the standalone guidance daemons of Olson
// et al. and the pool-tuning runtime of Vaverka et al.
//
// The daemon loads one platform, runs discovery once (HMAT or
// benchmarking), and then serves:
//
//	GET  /topology  — the machine's topology (JSON export)
//	GET  /attrs     — the Figure-5-style attribute dump (JSON, or
//	                  ?format=text for the lstopo rendering)
//	POST /alloc     — size + attribute + initiator → ranked-fallback
//	                  placement, returning a lease ID
//	POST /free      — release a lease
//	POST /migrate   — re-place a leased buffer for a new attribute/phase
//	GET  /leases    — the live lease table with per-node byte totals
//	GET  /metrics   — counters, fallback rates, per-node bytes in use,
//	                  and request latency histograms (plain text)
//	GET  /health    — per-node health states and capacity pressure
//
// # Failure model
//
// Each NUMA node moves through a health state machine — healthy →
// degraded → offline — fed by fault events (see internal/faults and
// Server.ApplyFault). Placements are re-ranked away from any
// non-healthy node (it remains a last resort); when a node goes
// offline the daemon auto-migrates the leases living on it to the
// next-best healthy targets and counts the moves in /metrics.
//
// Admission control sheds load when capacity pressure crosses the
// configured watermark: /alloc answers 503 Service Unavailable with a
// Retry-After header instead of grinding the machine into exhaustion.
// Transient allocation faults surface the same way — 503 + Retry-After
// — telling clients the request is retryable, while genuine capacity
// exhaustion stays 507 Insufficient Storage (retrying won't help;
// free, shrink, or ask for partial/remote).
//
// # Durability
//
// With Config.JournalPath set, every lease event (alloc, migrate,
// free) is appended to a write-ahead journal before the response is
// sent; a restarted daemon replays the journal and reconstructs its
// lease table and per-node byte accounting exactly. Clients may tag
// /alloc requests with an idempotency key: retries of a request whose
// response was lost return the original lease instead of
// double-allocating.
//
// Concurrency: request handling is lock-free except for the per-node
// capacity locks in internal/memsim and the sharded lease table, so
// allocations on different NUMA nodes proceed in parallel.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hetmem/internal/advisor"
	"hetmem/internal/alloc"
	"hetmem/internal/bitmap"
	"hetmem/internal/core"
	"hetmem/internal/faults"
	"hetmem/internal/journal"
	"hetmem/internal/lstopo"
	"hetmem/internal/memsim"
	"hetmem/internal/sensitivity"
	"hetmem/internal/tenant"
	"hetmem/internal/topology"
)

// Config tunes the daemon's robustness machinery. The zero value is a
// journal-less, non-shedding daemon (the PR-1 behaviour).
type Config struct {
	// JournalPath enables the write-ahead lease journal at this path.
	// Opening replays any existing journal (and its checkpoint
	// snapshots) into the lease table.
	JournalPath string
	// SyncEveryAppend fsyncs the journal after every record
	// (power-failure durability). Appends are always process-crash
	// durable; syncing each one trades throughput for media safety.
	SyncEveryAppend bool
	// ShedWatermark in (0, 1]: /alloc sheds load with 503 +
	// Retry-After once (bytes in use + request size) would cross this
	// fraction of the online capacity. 0 disables shedding.
	ShedWatermark float64
	// RetryAfterSeconds is the Retry-After hint on 503 responses
	// (default 1).
	RetryAfterSeconds int

	// TenantsPath loads a tenant config file (classes and per-kind
	// quotas) into the registry at boot; see internal/tenant for the
	// format. Unknown tenants still auto-register with the default
	// class, so the file only needs the tenants that matter.
	TenantsPath string
	// Tenants injects a pre-built registry (in-process harnesses);
	// nil builds a fresh one. TenantsPath loads into whichever is used.
	Tenants *tenant.Registry
	// QueueDepth bounds the burstable admission queue: allocations
	// from burstable tenants that hit the shed watermark wait (up to
	// QueueTimeout) for capacity instead of shedding, unless this many
	// are already waiting. 0 disables queueing — burstable sheds like
	// best-effort.
	QueueDepth int
	// QueueTimeout caps a burstable allocation's wait in the admission
	// queue (default 1s); the request context's deadline shortens it.
	QueueTimeout time.Duration
	// GuaranteedHeadroom is the capacity fraction above ShedWatermark
	// reserved for guaranteed tenants: they admit up to
	// min(1, ShedWatermark+GuaranteedHeadroom) while everyone else
	// sheds at the watermark.
	GuaranteedHeadroom float64

	// GroupCommit coalesces concurrent journal appends into one
	// write+fsync (requires JournalPath): every acked alloc/free is
	// power-failure durable, but N racing requests pay ~1 fsync instead
	// of N. Overrides SyncEveryAppend (group commit is always durable).
	GroupCommit bool
	// GroupCommitBatch bounds the records per coalesced fsync
	// (default 64).
	GroupCommitBatch int
	// GroupCommitLinger is how long the batch leader waits for
	// followers before flushing (default 1ms, capped at 10ms).
	GroupCommitLinger time.Duration

	// DisableCandidateCache turns off the allocator's ranked-candidate
	// cache, re-ranking targets on every placement — the pre-cache
	// behaviour, kept for A/B benchmarking (`hetmemd bench` baseline).
	DisableCandidateCache bool

	// LegacyEncoding routes the hot endpoints (/v1/alloc,
	// /v1/alloc/batch, /v1/renew, /v1/free) back through encoding/json
	// instead of the pooled zero-allocation encoders — the pre-PR-5
	// behaviour, kept for A/B benchmarking (`hetmemd bench` fast run).
	LegacyEncoding bool

	// ReplayWorkers sets the journal-replay parallelism on startup:
	// 0 auto-sizes to GOMAXPROCS, 1 forces the sequential decoder
	// (kept for A/B benchmarking), >1 uses that many decode workers.
	ReplayWorkers int

	// DefaultLeaseTTL is granted to allocations that do not request a
	// TTL. 0 means such leases never expire.
	DefaultLeaseTTL time.Duration
	// MinLeaseTTL and MaxLeaseTTL clamp client-requested TTLs
	// (defaults: 1s and 1h). A request below the floor is raised, one
	// above the ceiling is lowered — never rejected.
	MinLeaseTTL time.Duration
	MaxLeaseTTL time.Duration
	// ReapInterval is how often the orphan reaper scans for expired
	// leases. 0 disables the reaper (required to be > 0 and no larger
	// than DefaultLeaseTTL when a default TTL is set, so an orphan is
	// reclaimed within 2×TTL of its last heartbeat).
	ReapInterval time.Duration

	// CheckpointEvery runs journal checkpoint/compaction on a timer; 0
	// disables periodic checkpoints.
	CheckpointEvery time.Duration
	// CheckpointMaxWAL additionally triggers a checkpoint whenever the
	// WAL grows past this many bytes; 0 disables the size trigger.
	CheckpointMaxWAL int64

	// RebalanceInterval enables healed-node re-admission: when a node
	// returns to healthy, a paced rebalancer migrates leases whose
	// best-ranked target is that node back onto it, sleeping this long
	// between budget-sized batches. 0 disables rebalancing.
	RebalanceInterval time.Duration
	// RebalanceBudget caps the bytes migrated per rebalance batch
	// (default 256 MiB when rebalancing or the advisor is on). The
	// tiering advisor shares this budget: each of its sample cycles may
	// move at most this many bytes.
	RebalanceBudget uint64

	// AdvisorInterval enables the online tiering advisor: a background
	// loop that samples per-lease access telemetry, reclassifies each
	// lease (latency-bound, bandwidth-bound, or cold), and migrates
	// misplaced leases through the journaled migrate path under
	// RebalanceBudget. 0 disables the advisor (and its /v1/advisor API
	// answers 409 advisor_paused).
	AdvisorInterval time.Duration
	// AdvisorHysteresis is how many consecutive agreeing samples a
	// reclassification needs before the advisor moves a lease
	// (default 3).
	AdvisorHysteresis int
	// AdvisorCooldown is how many sample intervals a lease rests after
	// an advisor move before it may move again (default 5).
	AdvisorCooldown int
	// AdvisorMinMissShare is the share of an interval's total LLC
	// misses below which a lease is classified cold (default 0.01).
	AdvisorMinMissShare float64
	// AdvisorLogSize caps the rolling decision log served by
	// GET /v1/advisor (default 256 entries).
	AdvisorLogSize int

	// FS routes all journal and snapshot I/O; nil means the real
	// filesystem. Chaos tests install a faults.FaultFS here.
	FS faults.FS
}

// validate rejects nonsensical lifecycle configurations at startup,
// when the operator can still fix them — not hours later when the
// reaper silently never runs.
func (c Config) validate() error {
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"DefaultLeaseTTL", c.DefaultLeaseTTL},
		{"MinLeaseTTL", c.MinLeaseTTL},
		{"MaxLeaseTTL", c.MaxLeaseTTL},
		{"ReapInterval", c.ReapInterval},
		{"CheckpointEvery", c.CheckpointEvery},
		{"RebalanceInterval", c.RebalanceInterval},
		{"QueueTimeout", c.QueueTimeout},
		{"AdvisorInterval", c.AdvisorInterval},
	} {
		if d.v < 0 {
			return fmt.Errorf("server: config: %s must not be negative (got %v)", d.name, d.v)
		}
	}
	if c.CheckpointMaxWAL < 0 {
		return fmt.Errorf("server: config: CheckpointMaxWAL must not be negative (got %d)", c.CheckpointMaxWAL)
	}
	if c.MinLeaseTTL > 0 && c.MaxLeaseTTL > 0 && c.MinLeaseTTL > c.MaxLeaseTTL {
		return fmt.Errorf("server: config: MinLeaseTTL %v exceeds MaxLeaseTTL %v", c.MinLeaseTTL, c.MaxLeaseTTL)
	}
	if c.DefaultLeaseTTL > 0 {
		if c.ReapInterval == 0 {
			return fmt.Errorf("server: config: DefaultLeaseTTL %v without a ReapInterval: expired leases would never be reclaimed", c.DefaultLeaseTTL)
		}
		if c.ReapInterval > c.DefaultLeaseTTL {
			return fmt.Errorf("server: config: ReapInterval %v exceeds DefaultLeaseTTL %v: orphans would outlive 2×TTL", c.ReapInterval, c.DefaultLeaseTTL)
		}
	}
	if (c.ShedWatermark < 0) || (c.ShedWatermark > 1) {
		return fmt.Errorf("server: config: ShedWatermark %v outside [0, 1]", c.ShedWatermark)
	}
	if (c.GuaranteedHeadroom < 0) || (c.GuaranteedHeadroom > 1) {
		return fmt.Errorf("server: config: GuaranteedHeadroom %v outside [0, 1]", c.GuaranteedHeadroom)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("server: config: QueueDepth must not be negative (got %d)", c.QueueDepth)
	}
	if c.GroupCommit && c.JournalPath == "" {
		return fmt.Errorf("server: config: GroupCommit without a JournalPath: there is nothing to commit")
	}
	if c.GroupCommitBatch < 0 {
		return fmt.Errorf("server: config: GroupCommitBatch must not be negative (got %d)", c.GroupCommitBatch)
	}
	if c.GroupCommitLinger < 0 {
		return fmt.Errorf("server: config: GroupCommitLinger must not be negative (got %v)", c.GroupCommitLinger)
	}
	if c.ReplayWorkers < 0 {
		return fmt.Errorf("server: config: ReplayWorkers must not be negative (got %d)", c.ReplayWorkers)
	}
	if c.AdvisorHysteresis < 0 {
		return fmt.Errorf("server: config: AdvisorHysteresis must not be negative (got %d)", c.AdvisorHysteresis)
	}
	if c.AdvisorCooldown < 0 {
		return fmt.Errorf("server: config: AdvisorCooldown must not be negative (got %d)", c.AdvisorCooldown)
	}
	if c.AdvisorMinMissShare < 0 || c.AdvisorMinMissShare >= 1 {
		return fmt.Errorf("server: config: AdvisorMinMissShare %v outside [0, 1)", c.AdvisorMinMissShare)
	}
	return nil
}

// Server is the placement daemon's HTTP core. Create one with New or
// NewWithConfig and mount Handler on any net/http server.
type Server struct {
	// apiBase is the HTTP plumbing (mux, request metrics, error
	// envelope) shared with the machine-less API surface — see api.go.
	apiBase
	sys    *core.System
	cfg    Config
	leases *leaseTable
	health *healthTracker
	idem   *idemTable
	store  *journal.Store

	// instanceID is drawn at boot and surfaced in /v1/health and
	// /metrics, so a cluster router (or an operator) can tell members
	// apart across restarts behind the same address.
	instanceID string

	// ckmu orders lease-state mutations against checkpoints: every
	// path that changes the lease table or journals a record holds the
	// read side across both steps, and CheckpointNow holds the write
	// side while capturing the snapshot. The captured table and the
	// WAL therefore always agree — no alloc can land in the table but
	// miss both the snapshot and the compacted WAL.
	ckmu sync.RWMutex

	// Background lifecycle: the reaper, checkpointer, and rebalancer
	// goroutines park on stop and are waited for in Close.
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
	ckptKick  chan struct{}

	// rebalancing guards one in-flight rebalance per healed node.
	rebalMu     sync.Mutex
	rebalancing map[int]bool

	// advisor is the online tiering advisor's state (nil when
	// Config.AdvisorInterval is 0); adviseMu serializes sample cycles
	// so a manual AdviseOnce never interleaves with the timer loop.
	advisor  *advisor.Tracker
	adviseMu sync.Mutex

	// defaultInitiator is used when a request does not name one: the
	// whole machine's cpuset.
	defaultInitiator *bitmap.Bitmap

	// avoidFn is s.avoidUnhealthy bound once: a method value allocates
	// at every use, and the alloc hot path passes it on every request.
	avoidFn func(*topology.Object) bool

	// tenants is the QoS registry: priority classes, per-kind quotas,
	// and per-tenant accounting. admitGate wakes queued burstable
	// admissions whenever capacity is released; queueWaiting bounds the
	// queue at Config.QueueDepth.
	tenants      *tenant.Registry
	admitGate    waitGate
	queueWaiting atomic.Int32

	// reads is the epoch-snapshot read path (see epoch.go), and
	// topoJSON the /v1/topology body exported once at boot: the
	// topology tree is immutable after discovery (faults mutate memsim
	// node state and attribute values, never the tree), so re-exporting
	// it per epoch would only feed the garbage collector.
	reads    readState
	topoJSON []byte
}

// New builds a server around a discovered system with the zero Config
// (no journal, no load shedding).
func New(sys *core.System) *Server {
	s, err := NewWithConfig(sys, Config{})
	if err != nil {
		// Without a journal nothing in construction can fail.
		panic(err)
	}
	return s
}

// NewWithConfig builds a server with robustness options. When the
// config names a journal, any existing records are replayed first: the
// lease table, per-node accounting, and idempotency results come back
// exactly as the previous incarnation journaled them.
func NewWithConfig(sys *core.System, cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	if cfg.MinLeaseTTL == 0 {
		cfg.MinLeaseTTL = time.Second
	}
	if cfg.MaxLeaseTTL == 0 {
		cfg.MaxLeaseTTL = time.Hour
	}
	if (cfg.RebalanceInterval > 0 || cfg.AdvisorInterval > 0) && cfg.RebalanceBudget == 0 {
		cfg.RebalanceBudget = 256 << 20
	}
	if cfg.QueueDepth > 0 && cfg.QueueTimeout == 0 {
		cfg.QueueTimeout = time.Second
	}
	if cfg.Tenants == nil {
		cfg.Tenants = tenant.NewRegistry()
	}
	if cfg.TenantsPath != "" {
		if err := cfg.Tenants.Load(cfg.TenantsPath); err != nil {
			return nil, fmt.Errorf("server: loading tenants: %w", err)
		}
	}
	var osIdx []int
	for _, n := range sys.Machine.Nodes() {
		osIdx = append(osIdx, n.OSIndex())
	}
	s := &Server{
		apiBase:          newAPIBase(cfg.RetryAfterSeconds),
		sys:              sys,
		cfg:              cfg,
		leases:           newLeaseTable(),
		health:           newHealthTracker(osIdx),
		idem:             newIdemTable(),
		instanceID:       NewInstanceID(),
		stop:             make(chan struct{}),
		ckptKick:         make(chan struct{}, 1),
		rebalancing:      make(map[int]bool),
		defaultInitiator: sys.Topology().Root().CPUSet.Copy(),
		tenants:          cfg.Tenants,
	}
	s.avoidFn = s.avoidUnhealthy
	if cfg.AdvisorInterval > 0 {
		s.advisor = advisor.New(advisor.Config{
			Interval: cfg.AdvisorInterval,
			Options: sensitivity.Options{
				MinMissShare:    cfg.AdvisorMinMissShare,
				Hysteresis:      cfg.AdvisorHysteresis,
				CooldownSamples: cfg.AdvisorCooldown,
			},
			LogSize: cfg.AdvisorLogSize,
		})
	}
	topoJSON, err := topology.Export(sys.Topology())
	if err != nil {
		return nil, err
	}
	s.topoJSON = topoJSON
	if cfg.DisableCandidateCache {
		sys.Allocator.DisableCandidateCache()
	}
	if cfg.JournalPath != "" {
		st, res, err := journal.OpenStoreWorkers(cfg.JournalPath, cfg.FS, cfg.ReplayWorkers)
		if err != nil {
			return nil, err
		}
		s.store = st
		if cfg.GroupCommit {
			st.EnableGroupCommit(cfg.GroupCommitBatch, cfg.GroupCommitLinger,
				s.metrics.ObserveJournalBatch)
		}
		if err := s.restoreFromJournal(res.Records, res.NextLease); err != nil {
			st.Close()
			return nil, err
		}
		s.metrics.JournalRecords.Add(uint64(len(res.Records)))
		if res.WAL.Truncated {
			s.metrics.JournalTailDropped.Add(1)
		}
		if res.UsedFallback {
			s.metrics.SnapshotFallbacks.Add(1)
		}
	}
	s.route("GET", "/topology", EpTopology, s.handleTopology)
	s.route("GET", "/attrs", EpAttrs, s.handleAttrs)
	s.route("POST", "/alloc", EpAlloc, s.handleAlloc)
	s.route("POST", "/free", EpFree, s.handleFree)
	s.route("POST", "/renew", EpRenew, s.handleRenew)
	s.route("POST", "/migrate", EpMigrate, s.handleMigrate)
	s.route("GET", "/leases", EpLeases, s.handleLeases)
	s.route("GET", "/metrics", EpMetrics, s.handleMetrics)
	s.route("GET", "/health", EpHealth, s.handleHealth)
	// Batch allocation is v1-only: it was born versioned.
	s.mux.HandleFunc("POST /v1/alloc/batch", s.instrument(EpAllocBatch, s.handleAllocBatch))
	// The lease-detail and advisor surfaces are v1-only too. The lease
	// route uses the mux's path-segment pattern ({id} via PathValue) —
	// no prefix-trimming special cases.
	s.mux.HandleFunc("GET /v1/leases/{id}", s.instrument(EpLeaseDetail, s.handleLeaseDetail))
	s.mux.HandleFunc("GET /v1/advisor", s.instrument(EpAdvisor, s.handleAdvisor))
	s.mux.HandleFunc("POST /v1/advisor/pause", s.instrument(EpAdvisor, s.handleAdvisorPause))
	s.mux.HandleFunc("POST /v1/advisor/resume", s.instrument(EpAdvisor, s.handleAdvisorResume))
	if s.advisor != nil {
		// Replay restored the advisor's move counters into the metrics;
		// mirror them into the tracker so /v1/advisor and /metrics agree
		// across restarts.
		s.advisor.RestoreCounters(s.metrics.AdvisorPromoted.Load(), s.metrics.AdvisorDemoted.Load())
	}
	s.startBackground()
	return s, nil
}

// System returns the system the daemon serves.
func (s *Server) System() *core.System { return s.sys }

// Metrics returns the daemon's live metrics.
func (s *Server) Metrics() *Metrics { return s.metrics }

// LeaseCount returns the number of live leases (restored ones
// included).
func (s *Server) LeaseCount() int { return s.leases.count() }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the background reaper, checkpointer, and rebalancer,
// then flushes and closes the journal store (if any). Call it after
// the HTTP server has drained — the graceful-shutdown path; abandoning
// the Server without Close models a crash, which the journal tolerates
// by design.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
		if s.store != nil {
			s.closeErr = s.store.Close()
		}
	})
	return s.closeErr
}

// appendJournal writes one record to the journal, if one is open. The
// caller must hold s.ckmu (read side) across the lease-table mutation
// and this append. A size-triggered checkpoint is kicked, never run
// inline: Checkpoint needs the write side of ckmu.
//
// appended reports whether the record reached the WAL: false when the
// write failed (the Store rolls a torn tail back, so nothing
// persisted), true when only a subsequent fsync failed — the record is
// in the file and will replay, even though its durability is
// unconfirmed. Callers that roll back in-memory state on error use
// this to decide whether a compensating record is needed.
func (s *Server) appendJournal(r journal.Record) (appended bool, err error) {
	if s.store == nil {
		return false, nil
	}
	if s.cfg.GroupCommit {
		// The append blocks until the record is on stable storage —
		// sharing its fsync with every concurrently appending request.
		appended, err := s.store.AppendDurable(r)
		if err != nil {
			return appended, fmt.Errorf("server: journal append: %w", err)
		}
	} else {
		if err := s.store.Append(r); err != nil {
			return false, fmt.Errorf("server: journal append: %w", err)
		}
		if s.cfg.SyncEveryAppend {
			if err := s.store.Sync(); err != nil {
				s.journalHousekeeping(1)
				return true, fmt.Errorf("server: journal sync: %w", err)
			}
		}
	}
	s.journalHousekeeping(1)
	return true, nil
}

// journalHousekeeping counts freshly appended records and kicks a
// size-triggered checkpoint. Checkpoints are kicked, never run inline:
// Checkpoint needs the write side of ckmu.
func (s *Server) journalHousekeeping(records int) {
	s.metrics.JournalRecords.Add(uint64(records))
	if s.cfg.CheckpointMaxWAL > 0 && s.store.WALBytes() > s.cfg.CheckpointMaxWAL {
		select {
		case s.ckptKick <- struct{}{}:
		default:
		}
	}
}

// segmentsOf snapshots a buffer's placement as journal segments.
func segmentsOf(b *memsim.Buffer) []journal.Segment {
	segs := b.SegmentsSnapshot()
	out := make([]journal.Segment, len(segs))
	for i, seg := range segs {
		out[i] = journal.Segment{NodeOS: seg.Node.OSIndex(), Bytes: seg.Bytes}
	}
	return out
}

// statusWriter records the status code and body bytes for
// instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// ErrOverloaded is returned (as a 503) when admission control sheds an
// allocation to protect the machine's remaining headroom.
var ErrOverloaded = errors.New("server: overloaded, shedding load")

// isV1 reports whether a request came in on a /v1 path. Versioned
// requests get the uniform error envelope; legacy alias requests keep
// the pre-v1 body for one release.
func isV1(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/v1/")
}

var errNoSuchLease = errors.New("server: no such lease")

// Server implements Backend (plus LeaseDetailer), so the binary
// transport can dispatch into it exactly like cluster.Router.
var (
	_ Backend       = (*Server)(nil)
	_ LeaseDetailer = (*Server)(nil)
)

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.topoJSON)
}

// TopologyJSON is the Backend entry behind /v1/topology. The topology
// tree is immutable after discovery, so the body is the boot-time
// export.
func (s *Server) TopologyJSON(ctx context.Context) ([]byte, error) {
	return s.topoJSON, nil
}

// attrReports assembles the /v1/attrs JSON view from the registry.
func (s *Server) attrReports() ([]AttrReport, error) {
	reg := s.sys.Registry
	var out []AttrReport
	for _, id := range reg.IDs() {
		flags, err := reg.Flags(id)
		if err != nil {
			return nil, err
		}
		rep := AttrReport{Name: reg.Name(id), Flags: flags.String()}
		for _, tgt := range reg.Targets(id) {
			ivs, err := reg.Initiators(id, tgt)
			if err != nil {
				return nil, err
			}
			for _, iv := range ivs {
				av := AttrValue{
					Target:   fmt.Sprintf("%s#%d", memsim.KindOf(tgt), tgt.OSIndex),
					TargetOS: tgt.OSIndex,
					Value:    iv.Value,
				}
				if iv.Initiator != nil {
					av.Initiator = iv.Initiator.ListString()
				}
				rep.Values = append(rep.Values, av)
			}
		}
		out = append(out, rep)
	}
	return out, nil
}

func (s *Server) handleAttrs(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "Memory attributes (source: %s)\n", s.sys.Source)
		fmt.Fprint(w, lstopo.RenderMemAttrs(s.sys.Registry))
		return
	}
	out, err := s.Attrs(r.Context())
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// Attrs is the Backend entry behind /v1/attrs (the JSON dump; the
// lstopo text rendering stays HTTP-only).
func (s *Server) Attrs(ctx context.Context) ([]AttrReport, error) {
	if snap := s.epochRead(); snap != nil {
		return snap.attrs, nil
	}
	return s.attrReports()
}

// resolveInitiator widens an absent initiator to the whole machine.
func (s *Server) resolveInitiator(list string) (*bitmap.Bitmap, error) {
	ini, err := parseInitiator(list)
	if err != nil {
		return nil, err
	}
	if ini == nil {
		ini = s.defaultInitiator
	}
	return ini, nil
}

// pressure reports the online capacity and the bytes in use on it.
// Offline nodes are out of the pool: their capacity cannot take new
// bytes and their usage is unreachable anyway.
func (s *Server) pressure() (used, total uint64) {
	for _, n := range s.sys.Machine.Nodes() {
		if n.Offline() {
			continue
		}
		total += n.EffectiveCapacity()
		used += n.Allocated()
	}
	return used, total
}

// Admission is class-aware since tenants arrived: see admitTenant and
// admitClass in tenant.go. pressure above stays the shared gauge.

func (s *Server) handleAlloc(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeAllocRequest(r.Body)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp, err := s.Alloc(r.Context(), req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeAllocResponse(w, &resp)
}

// Alloc is the Backend entry: the idempotency-key protocol around
// doAlloc, shared by the HTTP handler and the binary transport.
func (s *Server) Alloc(ctx context.Context, req AllocRequest) (AllocResponse, error) {
	if req.IdempotencyKey == "" {
		return s.doAlloc(ctx, req)
	}

	e, owner := s.idem.begin(req.IdempotencyKey)
	if !owner {
		// A request with this key already ran (or is running): wait for
		// its outcome and replay it instead of allocating twice.
		select {
		case <-e.done:
		case <-ctx.Done():
			return AllocResponse{}, fmt.Errorf("%w: canceled waiting for idempotent result", ErrOverloaded)
		}
		s.metrics.IdemReplays.Add(1)
		if e.err != nil {
			return AllocResponse{}, e.err
		}
		return e.resp, nil
	}
	resp, err := s.doAlloc(ctx, req)
	if err != nil {
		// Failed attempts are forgotten so a later retry can succeed.
		s.idem.fail(req.IdempotencyKey, e, err)
		return AllocResponse{}, err
	}
	s.idem.succeed(e, resp)
	return resp, nil
}

// doAlloc performs the placement, charges the tenant, journals it,
// and registers the lease.
func (s *Server) doAlloc(ctx context.Context, req AllocRequest) (AllocResponse, error) {
	// A request with no attribute defers the tiering decision to the
	// advisor: place under its live classification of this buffer name
	// (or the capacity tier for a name it has never observed) and say
	// so in the response. Without an advisor the field stays required.
	advice := ""
	if req.Attr == "" {
		if s.advisor == nil {
			return AllocResponse{}, fmt.Errorf("%w: missing attr", ErrBadRequest)
		}
		req.Attr = s.adviceFor(req.Name)
		advice = req.Attr
	}
	id, ok := s.sys.Registry.ByName(req.Attr)
	if !ok {
		return AllocResponse{}, fmt.Errorf("%w: unknown attribute %q", ErrBadRequest, req.Attr)
	}
	ini, err := s.resolveInitiator(req.Initiator)
	if err != nil {
		return AllocResponse{}, err
	}
	tn := s.tenants.Get(TenantFromContext(ctx))
	if err := s.admitTenant(ctx, tn, req.Size); err != nil {
		return AllocResponse{}, err
	}
	sp := alloc.Spec{Avoid: s.avoidFor(tn, req.Size), Partial: req.Partial, Remote: req.Remote}
	if req.Policy == "bind" {
		sp.Policy = alloc.Bind
	}
	buf, dec, err := s.sys.Allocator.AllocSpec(req.Name, req.Size, id, ini, sp)
	if err != nil {
		s.metrics.AllocFailed.Add(1)
		return AllocResponse{}, err
	}
	// The placement exists; now it must fit the tenant's per-kind
	// quotas. A miss undoes the placement and reports the kind+limit.
	if err := chargeBuf(tn, buf); err != nil {
		s.sys.Machine.Free(buf)
		s.admitGate.broadcast()
		s.metrics.AllocFailed.Add(1)
		return AllocResponse{}, err
	}

	ttl := s.grantTTL(req.TTLSeconds)
	l := newLease()
	l.name = req.Name
	l.size = req.Size
	l.attr = req.Attr
	l.initiator = req.Initiator
	l.key = req.IdempotencyKey
	l.tenant = tn.Name
	l.buf = buf
	l.setTTL(ttl)
	l.renew(time.Now())
	l.id = s.leases.next.Add(1)
	leaseID := l.id
	// Journal before the lease becomes visible: a lease a client can
	// see (and free) is always in the log, so replay never meets a
	// free without its alloc. The checkpoint lock spans the append and
	// the table insert, so a concurrent snapshot either misses both
	// (the record lands in the compacted WAL) or sees both.
	s.ckmu.RLock()
	appended, err := s.appendJournal(journal.Record{
		Op:        journal.OpAlloc,
		Lease:     l.id,
		Name:      req.Name,
		Attr:      req.Attr,
		Initiator: req.Initiator,
		Key:       req.IdempotencyKey,
		Size:      req.Size,
		Tenant:    tn.Name,
		TTLMillis: uint64(ttl / time.Millisecond),
		Segments:  segmentsOf(buf),
	})
	if err != nil {
		if appended {
			// The alloc record is in the WAL but its fsync failed, and
			// the client is about to see an error. A compensating free
			// keeps replay from resurrecting a lease nobody was granted;
			// if even this best effort fails, the orphan carries a TTL
			// and the reaper collects it after restart.
			s.appendJournal(journal.Record{Op: journal.OpFree, Lease: leaseID})
		}
		s.ckmu.RUnlock()
		refundSegs(tn, buf.SegmentsSnapshot())
		s.sys.Machine.Free(buf)
		s.admitGate.broadcast()
		l.release()
		return AllocResponse{}, err
	}
	// restore transfers our reference to the table: the lease is now
	// visible (and freeable, hence recyclable) — no touching l below.
	s.leases.restore(l)
	s.ckmu.RUnlock()
	s.bumpEpoch()

	s.metrics.AllocTotal.Add(1)
	s.metrics.BytesPlaced.Add(req.Size)
	if dec.RankPosition > 0 {
		s.metrics.FallbackTotal.Add(1)
	}
	if dec.AttrFellBack {
		s.metrics.AttrFallback.Add(1)
	}
	if dec.Partial {
		s.metrics.PartialTotal.Add(1)
	}
	if dec.Remote {
		s.metrics.RemoteTotal.Add(1)
	}
	return AllocResponse{
		Lease:        leaseID,
		Placement:    buf.NodeNames(),
		AttrUsed:     s.sys.Registry.Name(dec.Used),
		AttrFellBack: dec.AttrFellBack,
		Rank:         dec.RankPosition,
		Partial:      dec.Partial,
		Remote:       dec.Remote,
		TTLSeconds:   ttl.Seconds(),
		// Echoed only when the request named a tenant: untenanted
		// clients keep the pre-tenancy wire format byte for byte.
		Tenant: TenantFromContext(ctx),
		Advice: advice,
	}, nil
}

// grantTTL clamps a requested TTL (seconds; 0 = "daemon's choice")
// into the configured [min, max] window.
func (s *Server) grantTTL(reqSeconds float64) time.Duration {
	d := time.Duration(reqSeconds * float64(time.Second))
	if d <= 0 {
		return s.cfg.DefaultLeaseTTL
	}
	if d < s.cfg.MinLeaseTTL {
		d = s.cfg.MinLeaseTTL
	}
	if d > s.cfg.MaxLeaseTTL {
		d = s.cfg.MaxLeaseTTL
	}
	return d
}

// handleRenew is the lease heartbeat: it pushes the expiry another TTL
// into the future. Renewals are deliberately not journaled — a restart
// grants every restored lease a fresh TTL of grace, so the WAL stays
// free of high-frequency heartbeat traffic.
func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeRenewRequest(r.Body)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp, err := s.Renew(r.Context(), req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeRenewResponse(w, &resp)
}

// Renew is the Backend entry behind /v1/renew: the lease heartbeat.
func (s *Server) Renew(ctx context.Context, req RenewRequest) (RenewResponse, error) {
	l, ok := s.leases.get(req.Lease)
	if !ok {
		return RenewResponse{}, fmt.Errorf("%w: %d", errNoSuchLease, req.Lease)
	}
	if req.TTLSeconds > 0 {
		l.setTTL(s.grantTTL(req.TTLSeconds))
	}
	l.renew(time.Now())
	resp := RenewResponse{Lease: l.id, TTLSeconds: l.getTTL().Seconds()}
	l.release()
	s.metrics.RenewTotal.Add(1)
	return resp, nil
}

func (s *Server) handleFree(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeFreeRequest(r.Body)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp, err := s.Free(r.Context(), req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeFreeResponse(w, &resp)
}

// Free is the Backend entry behind /v1/free.
func (s *Server) Free(ctx context.Context, req FreeRequest) (FreeResponse, error) {
	// The checkpoint lock spans removal, free, and journal append: a
	// snapshot either still holds the lease (and its free lands in the
	// fresh WAL) or holds neither.
	s.ckmu.RLock()
	l, ok := s.leases.take(req.Lease)
	if !ok {
		s.ckmu.RUnlock()
		return FreeResponse{}, fmt.Errorf("%w: %d", errNoSuchLease, req.Lease)
	}
	l.jmu.Lock()
	segs := l.buf.SegmentsSnapshot()
	err := s.sys.Machine.Free(l.buf)
	if err == nil {
		// On failure here the memory is already released but the WAL may
		// still say the lease is alive; restart resurrects it as an
		// orphan with a fresh TTL and the reaper collects it. The client
		// sees an error, so the free was never acknowledged.
		_, err = s.appendJournal(journal.Record{Op: journal.OpFree, Lease: l.id})
	}
	freed := l.buf.Freed()
	l.jmu.Unlock()
	s.ckmu.RUnlock()
	key, tenantName := l.key, l.tenant
	l.release() // the table's reference, transferred by take
	if freed {
		// The bytes are back (even if the journal append failed after
		// the free): refund the tenant and wake queued admissions.
		refundSegs(s.tenants.Get(tenantName), segs)
		s.admitGate.broadcast()
	}
	if err != nil {
		return FreeResponse{}, err
	}
	if key != "" {
		s.idem.forget(key)
	}
	s.bumpEpoch()
	s.metrics.FreeTotal.Add(1)
	return FreeResponse{Lease: req.Lease, Freed: true}, nil
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeMigrateRequest(r.Body)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	resp, err := s.Migrate(r.Context(), req)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Migrate is the Backend entry behind /v1/migrate.
func (s *Server) Migrate(ctx context.Context, req MigrateRequest) (MigrateResponse, error) {
	if _, ok := s.sys.Registry.ByName(req.Attr); !ok {
		return MigrateResponse{}, fmt.Errorf("%w: unknown attribute %q", ErrBadRequest, req.Attr)
	}
	l, ok := s.leases.get(req.Lease)
	if !ok {
		return MigrateResponse{}, fmt.Errorf("%w: %d", errNoSuchLease, req.Lease)
	}
	s.ckmu.RLock()
	l.jmu.Lock()
	cost, dec, err := s.migrateLocked(l, req.Attr, req.Initiator, req.Remote)
	l.jmu.Unlock()
	s.ckmu.RUnlock()
	if err != nil {
		l.release()
		return MigrateResponse{}, err
	}
	placement := l.buf.NodeNames()
	l.release()
	s.metrics.MigrateTotal.Add(1)
	return MigrateResponse{
		Lease:       req.Lease,
		Placement:   placement,
		Rank:        dec.RankPosition,
		CostSeconds: cost,
	}, nil
}

// leasesResponse assembles the live lease table view; the per-node
// and per-tenant totals are computed from the leases themselves, so
// clients can cross-check them against the allocator gauges and the
// tenant registry's books in /metrics.
func (s *Server) leasesResponse(includeList bool) LeasesResponse {
	resp := LeasesResponse{NodeBytes: make(map[string]uint64), TenantBytes: make(map[string]uint64)}
	leases := s.leases.borrowAll()
	defer releaseAll(leases)
	for _, l := range leases {
		resp.Count++
		resp.Bytes += l.size
		for _, seg := range l.buf.SegmentsSnapshot() {
			resp.NodeBytes[seg.Node.Label()] += seg.Bytes
			resp.TenantBytes[l.tenant] += seg.Bytes
		}
		if includeList {
			info := LeaseInfo{
				Lease:     l.id,
				Name:      l.name,
				Size:      l.size,
				Placement: l.buf.NodeNames(),
				Tenant:    l.tenant,
				Attr:      attrOf(l),
			}
			if s.advisor != nil {
				info.Class = s.advisor.Classification(l.id)
			}
			if t := l.buf.TelemetrySnapshot(); t != (memsim.Telemetry{}) {
				info.Telemetry = &t
			}
			resp.Leases = append(resp.Leases, info)
		}
	}
	return resp
}

func (s *Server) handleLeases(w http.ResponseWriter, r *http.Request) {
	resp, err := s.Leases(r.Context(), r.URL.Query().Get("list") != "")
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Leases is the Backend entry behind /v1/leases.
func (s *Server) Leases(ctx context.Context, list bool) (LeasesResponse, error) {
	snap := s.epochRead()
	if snap == nil {
		return s.leasesResponse(list), nil
	}
	resp := snap.leases // shallow copy; shared map/slice are immutable
	if !list {
		resp.Leases = nil
	}
	return resp, nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp, err := s.Health(r.Context())
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Health is the Backend entry behind /v1/health.
func (s *Server) Health(ctx context.Context) (HealthResponse, error) {
	states := s.health.snapshot()
	resp := HealthResponse{Status: "ok", InstanceID: s.instanceID, ShedWatermark: s.cfg.ShedWatermark}
	if s.store != nil {
		resp.Journal = s.store.Base()
	}
	used, total := s.pressure()
	if total > 0 {
		resp.Pressure = float64(used) / float64(total)
	}
	for _, n := range s.sys.Machine.Nodes() {
		st := states[n.OSIndex()]
		if st != Healthy {
			resp.Status = "degraded"
		}
		resp.Nodes = append(resp.Nodes, NodeHealth{
			Node:  n.Label(),
			OS:    n.OSIndex(),
			State: st.String(),
		})
	}
	return resp, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.WriteMetrics(r.Context(), w)
}

// WriteMetrics is the Backend entry behind /metrics: it renders the
// full metrics text to w.
func (s *Server) WriteMetrics(ctx context.Context, w io.Writer) error {
	// Per-node gauges and the lease count come from the epoch snapshot
	// (they only change when a writer bumps the epoch); the scalar
	// counters are atomics read live, so they are exact even between
	// epochs.
	var nodes []NodeUsage
	var leaseCount int
	if snap := s.epochRead(); snap != nil {
		nodes, leaseCount = snap.nodes, snap.leaseCount
	} else {
		states := s.health.snapshot()
		raw := make([]NodeUsage, 0, len(s.sys.Machine.Nodes()))
		for _, n := range s.sys.Machine.Nodes() {
			raw = append(raw, NodeUsage{
				Node:     n.Label(),
				Capacity: n.EffectiveCapacity(),
				InUse:    n.Allocated(),
				Health:   int(states[n.OSIndex()]),
			})
		}
		nodes, leaseCount = sortedNodeUsage(raw), s.leases.count()
	}
	// Mirror the allocator's cache counters so the rendered text is the
	// allocator's ground truth, not a lagging copy.
	hits, misses := s.sys.Allocator.CacheStats()
	s.metrics.PlacementCacheHits.Store(hits)
	s.metrics.PlacementCacheMisses.Store(misses)
	fmt.Fprintf(w, "hetmemd_instance_info{instance_id=%q} 1\n", s.instanceID)
	fmt.Fprint(w, s.metrics.Render(nodes, leaseCount))
	s.tenants.WriteMetrics(w)
	fmt.Fprintf(w, "hetmemd_admission_queue_waiting %d\n", s.queueWaiting.Load())
	if s.store != nil {
		fmt.Fprintf(w, "hetmemd_wal_bytes %d\n", s.store.WALBytes())
		fmt.Fprintf(w, "hetmemd_checkpoint_seq %d\n", s.store.Seq())
	}
	return nil
}
