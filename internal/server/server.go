// Package server turns a discovered heterogeneous-memory system
// (internal/core) into a long-running placement daemon: the paper's
// in-process attribute API served over HTTP to many concurrent
// clients, in the spirit of the standalone guidance daemons of Olson
// et al. and the pool-tuning runtime of Vaverka et al.
//
// The daemon loads one platform, runs discovery once (HMAT or
// benchmarking), and then serves:
//
//	GET  /topology  — the machine's topology (JSON export)
//	GET  /attrs     — the Figure-5-style attribute dump (JSON, or
//	                  ?format=text for the lstopo rendering)
//	POST /alloc     — size + attribute + initiator → ranked-fallback
//	                  placement, returning a lease ID
//	POST /free      — release a lease
//	POST /migrate   — re-place a leased buffer for a new attribute/phase
//	GET  /leases    — the live lease table with per-node byte totals
//	GET  /metrics   — counters, fallback rates, per-node bytes in use,
//	                  and request latency histograms (plain text)
//
// Concurrency: request handling is lock-free except for the per-node
// capacity locks in internal/memsim and the sharded lease table, so
// allocations on different NUMA nodes proceed in parallel.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"hetmem/internal/alloc"
	"hetmem/internal/bitmap"
	"hetmem/internal/core"
	"hetmem/internal/lstopo"
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

// Server is the placement daemon's HTTP core. Create one with New and
// mount Handler on any net/http server.
type Server struct {
	sys     *core.System
	leases  *leaseTable
	metrics *Metrics
	mux     *http.ServeMux

	// defaultInitiator is used when a request does not name one: the
	// whole machine's cpuset.
	defaultInitiator *bitmap.Bitmap
}

// New builds a server around a discovered system.
func New(sys *core.System) *Server {
	s := &Server{
		sys:              sys,
		leases:           newLeaseTable(),
		metrics:          NewMetrics(),
		defaultInitiator: sys.Topology().Root().CPUSet.Copy(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /topology", s.instrument(EpTopology, s.handleTopology))
	s.mux.HandleFunc("GET /attrs", s.instrument(EpAttrs, s.handleAttrs))
	s.mux.HandleFunc("POST /alloc", s.instrument(EpAlloc, s.handleAlloc))
	s.mux.HandleFunc("POST /free", s.instrument(EpFree, s.handleFree))
	s.mux.HandleFunc("POST /migrate", s.instrument(EpMigrate, s.handleMigrate))
	s.mux.HandleFunc("GET /leases", s.instrument(EpLeases, s.handleLeases))
	s.mux.HandleFunc("GET /metrics", s.instrument(EpMetrics, s.handleMetrics))
	return s
}

// System returns the system the daemon serves.
func (s *Server) System() *core.System { return s.sys }

// Metrics returns the daemon's live metrics.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// statusWriter records the status code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency
// observation.
func (s *Server) instrument(e Endpoint, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.metrics.Observe(e, time.Since(start), sw.status >= 400)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, errNoSuchLease):
		status = http.StatusNotFound
	case errors.Is(err, alloc.ErrExhausted), errors.Is(err, memsim.ErrNoCapacity):
		// The daemon is healthy; the machine is full. 507 tells the
		// client to free, shrink, or retry with partial/remote.
		status = http.StatusInsufficientStorage
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

var errNoSuchLease = errors.New("server: no such lease")

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	data, err := topology.Export(s.sys.Topology())
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleAttrs(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "Memory attributes (source: %s)\n", s.sys.Source)
		fmt.Fprint(w, lstopo.RenderMemAttrs(s.sys.Registry))
		return
	}
	reg := s.sys.Registry
	var out []AttrReport
	for _, id := range reg.IDs() {
		flags, err := reg.Flags(id)
		if err != nil {
			writeError(w, err)
			return
		}
		rep := AttrReport{Name: reg.Name(id), Flags: flags.String()}
		for _, tgt := range reg.Targets(id) {
			ivs, err := reg.Initiators(id, tgt)
			if err != nil {
				writeError(w, err)
				return
			}
			for _, iv := range ivs {
				av := AttrValue{
					Target:   fmt.Sprintf("%s#%d", memsim.KindOf(tgt), tgt.OSIndex),
					TargetOS: tgt.OSIndex,
					Value:    iv.Value,
				}
				if iv.Initiator != nil {
					av.Initiator = iv.Initiator.ListString()
				}
				rep.Values = append(rep.Values, av)
			}
		}
		out = append(out, rep)
	}
	writeJSON(w, http.StatusOK, out)
}

// resolveInitiator widens an absent initiator to the whole machine.
func (s *Server) resolveInitiator(list string) (*bitmap.Bitmap, error) {
	ini, err := parseInitiator(list)
	if err != nil {
		return nil, err
	}
	if ini == nil {
		ini = s.defaultInitiator
	}
	return ini, nil
}

func (s *Server) handleAlloc(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeAllocRequest(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	id, ok := s.sys.Registry.ByName(req.Attr)
	if !ok {
		writeError(w, fmt.Errorf("%w: unknown attribute %q", ErrBadRequest, req.Attr))
		return
	}
	ini, err := s.resolveInitiator(req.Initiator)
	if err != nil {
		writeError(w, err)
		return
	}
	var opts []alloc.Option
	if req.Policy == "bind" {
		opts = append(opts, alloc.WithPolicy(alloc.Bind))
	}
	if req.Partial {
		opts = append(opts, alloc.WithPartial())
	}
	if req.Remote {
		opts = append(opts, alloc.WithRemote())
	}
	buf, dec, err := s.sys.Allocator.Alloc(req.Name, req.Size, id, ini, opts...)
	if err != nil {
		s.metrics.AllocFailed.Add(1)
		writeError(w, err)
		return
	}
	s.metrics.AllocTotal.Add(1)
	s.metrics.BytesPlaced.Add(req.Size)
	if dec.RankPosition > 0 {
		s.metrics.FallbackTotal.Add(1)
	}
	if dec.AttrFellBack {
		s.metrics.AttrFallback.Add(1)
	}
	if dec.Partial {
		s.metrics.PartialTotal.Add(1)
	}
	if dec.Remote {
		s.metrics.RemoteTotal.Add(1)
	}
	writeJSON(w, http.StatusOK, AllocResponse{
		Lease:        s.leases.put(req.Name, buf),
		Placement:    buf.NodeNames(),
		AttrUsed:     s.sys.Registry.Name(dec.Used),
		AttrFellBack: dec.AttrFellBack,
		Rank:         dec.RankPosition,
		Partial:      dec.Partial,
		Remote:       dec.Remote,
	})
}

func (s *Server) handleFree(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeFreeRequest(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	l, ok := s.leases.take(req.Lease)
	if !ok {
		writeError(w, fmt.Errorf("%w: %d", errNoSuchLease, req.Lease))
		return
	}
	if err := s.sys.Machine.Free(l.buf); err != nil {
		writeError(w, err)
		return
	}
	s.metrics.FreeTotal.Add(1)
	writeJSON(w, http.StatusOK, struct {
		Lease uint64 `json:"lease"`
		Freed bool   `json:"freed"`
	}{req.Lease, true})
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeMigrateRequest(r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	id, ok := s.sys.Registry.ByName(req.Attr)
	if !ok {
		writeError(w, fmt.Errorf("%w: unknown attribute %q", ErrBadRequest, req.Attr))
		return
	}
	ini, err := s.resolveInitiator(req.Initiator)
	if err != nil {
		writeError(w, err)
		return
	}
	l, ok := s.leases.get(req.Lease)
	if !ok {
		writeError(w, fmt.Errorf("%w: %d", errNoSuchLease, req.Lease))
		return
	}
	var opts []alloc.Option
	if req.Remote {
		opts = append(opts, alloc.WithRemote())
	}
	cost, dec, err := s.sys.Allocator.MigrateToBest(l.buf, id, ini, opts...)
	if err != nil {
		writeError(w, err)
		return
	}
	s.metrics.MigrateTotal.Add(1)
	writeJSON(w, http.StatusOK, MigrateResponse{
		Lease:       req.Lease,
		Placement:   l.buf.NodeNames(),
		Rank:        dec.RankPosition,
		CostSeconds: cost,
	})
}

// leasesResponse assembles the live lease table view; the per-node
// totals are computed from the leases themselves, so clients can
// cross-check them against the allocator gauges in /metrics.
func (s *Server) leasesResponse(includeList bool) LeasesResponse {
	resp := LeasesResponse{NodeBytes: make(map[string]uint64)}
	for _, l := range s.leases.snapshot() {
		resp.Count++
		resp.Bytes += l.size
		for _, seg := range l.buf.SegmentsSnapshot() {
			key := fmt.Sprintf("%s#%d", seg.Node.Kind(), seg.Node.OSIndex())
			resp.NodeBytes[key] += seg.Bytes
		}
		if includeList {
			resp.Leases = append(resp.Leases, LeaseInfo{
				Lease:     l.id,
				Name:      l.name,
				Size:      l.size,
				Placement: l.buf.NodeNames(),
			})
		}
	}
	return resp
}

func (s *Server) handleLeases(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.leasesResponse(r.URL.Query().Get("list") != ""))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	nodes := make([]NodeUsage, 0, len(s.sys.Machine.Nodes()))
	for _, n := range s.sys.Machine.Nodes() {
		nodes = append(nodes, NodeUsage{
			Node:     fmt.Sprintf("%s#%d", n.Kind(), n.OSIndex()),
			Capacity: n.Capacity(),
			InUse:    n.Allocated(),
		})
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.metrics.Render(sortedNodeUsage(nodes), s.leases.count()))
}
