package server

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hetmem/internal/wire"
)

// Transport indexes the per-transport counter slots: the HTTP surface
// and the two binary listeners.
const (
	TransportHTTP = iota
	TransportUDS
	TransportTCPBin
	numTransports
)

// transportNames label the hetmemd_transport_* series; the fixed order
// (and the all-zero rows for unmounted transports) keeps the /metrics
// text deterministic, so cluster rollups sum the same series on every
// member.
var transportNames = [numTransports]string{"http", "uds", "tcp-bin"}

// Endpoint indexes the daemon's request counters.
type Endpoint int

// The instrumented endpoints.
const (
	EpTopology Endpoint = iota
	EpAttrs
	EpAlloc
	EpFree
	EpRenew
	EpMigrate
	EpLeases
	EpMetrics
	EpHealth
	EpAllocBatch
	EpLeaseDetail
	EpAdvisor
	numEndpoints
)

var endpointNames = [numEndpoints]string{
	"topology", "attrs", "alloc", "free", "renew", "migrate", "leases", "metrics", "health", "alloc_batch",
	"lease_detail", "advisor",
}

func (e Endpoint) String() string { return endpointNames[e] }

// latencyBuckets are the histogram upper bounds in seconds, roughly
// quadrupling from 4µs to 67ms plus a catch-all.
const numBuckets = 8

var latencyBuckets = [numBuckets]float64{4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 67e-3}

// Metrics is the daemon's lock-free instrumentation: per-endpoint
// request/error counters and latency histograms, plus allocator
// outcome counters. Everything is atomic; rendering takes a snapshot.
type Metrics struct {
	requests [numEndpoints]atomic.Uint64
	errors   [numEndpoints]atomic.Uint64
	// latency histogram: per endpoint, one counter per bucket plus a
	// +Inf overflow, and nanosecond totals for the _sum series.
	latency   [numEndpoints][numBuckets + 1]atomic.Uint64
	latencyNS [numEndpoints]atomic.Uint64

	AllocTotal    atomic.Uint64
	AllocFailed   atomic.Uint64
	FallbackTotal atomic.Uint64 // placements not on the best-ranked target
	AttrFallback  atomic.Uint64 // placements using a substitute attribute
	PartialTotal  atomic.Uint64
	RemoteTotal   atomic.Uint64
	FreeTotal     atomic.Uint64
	MigrateTotal  atomic.Uint64
	BytesPlaced   atomic.Uint64 // cumulative bytes ever placed

	// Robustness counters.
	ShedTotal          atomic.Uint64 // allocations refused by admission control
	AutoMigrateTotal   atomic.Uint64 // leases evacuated off offline nodes
	AutoMigrateFailed  atomic.Uint64 // evacuations that found no healthy target
	HealthTransitions  atomic.Uint64 // node health state changes
	IdemReplays        atomic.Uint64 // /alloc responses served from the idempotency table
	JournalRecords     atomic.Uint64 // records appended or replayed
	JournalTailDropped atomic.Uint64 // startups that truncated a corrupt tail

	// Lease-lifecycle and durable-state counters.
	RenewTotal        atomic.Uint64 // /renew heartbeats served
	LeasesReaped      atomic.Uint64 // expired leases reclaimed by the reaper
	CheckpointTotal   atomic.Uint64 // completed checkpoint/compactions
	CheckpointFailed  atomic.Uint64 // checkpoints aborted by an I/O error
	SnapshotFallbacks atomic.Uint64 // recoveries that used the previous snapshot
	RebalanceTotal    atomic.Uint64 // leases migrated back onto healed nodes
	RebalanceFailed   atomic.Uint64 // rebalance migrations that failed
	RebalanceBytes    atomic.Uint64 // bytes moved by the rebalancer

	// Tiering-advisor counters. Promoted/Demoted are restored from
	// advisor-tagged journal migrate records on restart; the held
	// counters are session-local (a hold journals nothing).
	AdvisorPromoted       atomic.Uint64 // advisor moves toward a performance tier
	AdvisorDemoted        atomic.Uint64 // advisor moves toward the capacity tier
	AdvisorHeldBudget     atomic.Uint64 // moves deferred by the cycle migration budget
	AdvisorHeldHysteresis atomic.Uint64 // moves deferred by hysteresis/cooldown
	AdvisorCycles         atomic.Uint64 // completed sample cycles
	AdvisorBytesMoved     atomic.Uint64 // bytes moved by the advisor

	// Fast-path counters (PR 4). The cache gauges mirror
	// alloc.Allocator.CacheStats, copied in by handleMetrics so the
	// rendered text reflects the allocator's ground truth.
	PlacementCacheHits   atomic.Uint64 // ranked-candidate cache hits
	PlacementCacheMisses atomic.Uint64 // ranked-candidate cache misses (re-ranks)
	// journal group-commit batch-size histogram: counters per bucket
	// (upper bounds journalBatchBuckets) plus +Inf, and a record total
	// for the _sum series.
	journalBatch    [numBatchBuckets + 1]atomic.Uint64
	journalBatchSum atomic.Uint64

	// transports is the per-transport observability block: requests,
	// frame/request bytes, live connections, and decode errors, one
	// slot per transport label. The binary listeners write their slots
	// directly (each wire.Server is built with a pointer into this
	// array); the HTTP slot is fed by instrument and the ConnState
	// hook.
	transports [numTransports]wire.Stats
}

// TransportStats returns the counter slot for one transport index
// (TransportHTTP, TransportUDS, TransportTCPBin); the daemon hands
// these to its wire listeners at mount time.
func (m *Metrics) TransportStats(t int) *wire.Stats { return &m.transports[t] }

// journalBatchBuckets are the group-commit batch-size histogram upper
// bounds (records per fsync), doubling up to the default batch cap.
const numBatchBuckets = 8

var journalBatchBuckets = [numBatchBuckets]uint64{1, 2, 4, 8, 16, 32, 64, 128}

// ObserveJournalBatch records one group-commit flush of n records.
func (m *Metrics) ObserveJournalBatch(n int) {
	if n <= 0 {
		return
	}
	i := 0
	for ; i < len(journalBatchBuckets); i++ {
		if uint64(n) <= journalBatchBuckets[i] {
			break
		}
	}
	m.journalBatch[i].Add(1)
	m.journalBatchSum.Add(uint64(n))
}

// NewMetrics creates an empty metrics set.
func NewMetrics() *Metrics { return &Metrics{} }

// Observe records one request to the endpoint with its duration and
// whether it failed.
func (m *Metrics) Observe(e Endpoint, d time.Duration, failed bool) {
	m.requests[e].Add(1)
	if failed {
		m.errors[e].Add(1)
	}
	sec := d.Seconds()
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if sec <= latencyBuckets[i] {
			break
		}
	}
	m.latency[e][i].Add(1)
	m.latencyNS[e].Add(uint64(d.Nanoseconds()))
}

// Requests returns the request count for one endpoint.
func (m *Metrics) Requests(e Endpoint) uint64 { return m.requests[e].Load() }

// NodeUsage is the per-node gauge snapshot rendered into /metrics.
type NodeUsage struct {
	Node     string // e.g. "DRAM#0"
	Capacity uint64
	InUse    uint64
	Health   int // HealthState as an integer gauge (0 healthy, 1 degraded, 2 offline)
}

// Render writes the metrics in the flat Prometheus-style text format
// (one "name{labels} value" per line). Node gauges and the live lease
// count are passed in by the server so the text always reflects the
// allocator's ground truth.
func (m *Metrics) Render(nodes []NodeUsage, leases int) string {
	var sb strings.Builder
	counter := func(name string, v uint64) {
		fmt.Fprintf(&sb, "%s %d\n", name, v)
	}
	counter("hetmemd_alloc_total", m.AllocTotal.Load())
	counter("hetmemd_alloc_failed_total", m.AllocFailed.Load())
	counter("hetmemd_alloc_fallback_total", m.FallbackTotal.Load())
	counter("hetmemd_alloc_attr_fallback_total", m.AttrFallback.Load())
	counter("hetmemd_alloc_partial_total", m.PartialTotal.Load())
	counter("hetmemd_alloc_remote_total", m.RemoteTotal.Load())
	counter("hetmemd_free_total", m.FreeTotal.Load())
	counter("hetmemd_migrate_total", m.MigrateTotal.Load())
	counter("hetmemd_bytes_placed_total", m.BytesPlaced.Load())
	counter("hetmemd_shed_total", m.ShedTotal.Load())
	counter("hetmemd_auto_migrate_total", m.AutoMigrateTotal.Load())
	counter("hetmemd_auto_migrate_failed_total", m.AutoMigrateFailed.Load())
	counter("hetmemd_health_transitions_total", m.HealthTransitions.Load())
	counter("hetmemd_idempotent_replays_total", m.IdemReplays.Load())
	counter("hetmemd_journal_records_total", m.JournalRecords.Load())
	counter("hetmemd_journal_tail_dropped_total", m.JournalTailDropped.Load())
	counter("hetmemd_renew_total", m.RenewTotal.Load())
	counter("hetmemd_leases_reaped_total", m.LeasesReaped.Load())
	counter("hetmemd_checkpoint_total", m.CheckpointTotal.Load())
	counter("hetmemd_checkpoint_failed_total", m.CheckpointFailed.Load())
	counter("hetmemd_snapshot_fallback_total", m.SnapshotFallbacks.Load())
	counter("hetmemd_rebalance_total", m.RebalanceTotal.Load())
	counter("hetmemd_rebalance_failed_total", m.RebalanceFailed.Load())
	counter("hetmemd_rebalance_bytes_total", m.RebalanceBytes.Load())
	counter("hetmemd_placement_cache_hits_total", m.PlacementCacheHits.Load())
	counter("hetmemd_placement_cache_misses_total", m.PlacementCacheMisses.Load())
	counter("hetmemd_advisor_promoted_total", m.AdvisorPromoted.Load())
	counter("hetmemd_advisor_demoted_total", m.AdvisorDemoted.Load())
	counter("hetmemd_advisor_held_budget_total", m.AdvisorHeldBudget.Load())
	counter("hetmemd_advisor_held_hysteresis_total", m.AdvisorHeldHysteresis.Load())
	counter("hetmemd_advisor_cycles_total", m.AdvisorCycles.Load())
	counter("hetmemd_advisor_bytes_moved_total", m.AdvisorBytesMoved.Load())
	fmt.Fprintf(&sb, "hetmemd_leases_active %d\n", leases)

	var batchCum, batchCount uint64
	for i, ub := range journalBatchBuckets {
		batchCum += m.journalBatch[i].Load()
		fmt.Fprintf(&sb, "hetmemd_journal_batch_size_bucket{le=\"%d\"} %d\n", ub, batchCum)
	}
	batchCum += m.journalBatch[numBatchBuckets].Load()
	batchCount = batchCum
	fmt.Fprintf(&sb, "hetmemd_journal_batch_size_bucket{le=\"+Inf\"} %d\n", batchCum)
	fmt.Fprintf(&sb, "hetmemd_journal_batch_size_sum %d\n", m.journalBatchSum.Load())
	fmt.Fprintf(&sb, "hetmemd_journal_batch_size_count %d\n", batchCount)

	for t := 0; t < numTransports; t++ {
		name := transportNames[t]
		st := &m.transports[t]
		fmt.Fprintf(&sb, "hetmemd_transport_requests_total{transport=%q} %d\n", name, st.Requests.Load())
		fmt.Fprintf(&sb, "hetmemd_transport_bytes_rx_total{transport=%q} %d\n", name, st.BytesRx.Load())
		fmt.Fprintf(&sb, "hetmemd_transport_bytes_tx_total{transport=%q} %d\n", name, st.BytesTx.Load())
		fmt.Fprintf(&sb, "hetmemd_transport_active_conns{transport=%q} %d\n", name, st.ActiveConns.Load())
		fmt.Fprintf(&sb, "hetmemd_transport_decode_errors_total{transport=%q} %d\n", name, st.DecodeErrors.Load())
	}

	for _, n := range nodes {
		fmt.Fprintf(&sb, "hetmemd_node_capacity_bytes{node=%q} %d\n", n.Node, n.Capacity)
		fmt.Fprintf(&sb, "hetmemd_node_bytes_in_use{node=%q} %d\n", n.Node, n.InUse)
		fmt.Fprintf(&sb, "hetmemd_node_health{node=%q} %d\n", n.Node, n.Health)
	}

	for e := Endpoint(0); e < numEndpoints; e++ {
		name := endpointNames[e]
		fmt.Fprintf(&sb, "hetmemd_requests_total{endpoint=%q} %d\n", name, m.requests[e].Load())
		fmt.Fprintf(&sb, "hetmemd_request_errors_total{endpoint=%q} %d\n", name, m.errors[e].Load())
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += m.latency[e][i].Load()
			fmt.Fprintf(&sb, "hetmemd_request_seconds_bucket{endpoint=%q,le=%q} %d\n", name, formatBound(ub), cum)
		}
		cum += m.latency[e][numBuckets].Load()
		fmt.Fprintf(&sb, "hetmemd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&sb, "hetmemd_request_seconds_sum{endpoint=%q} %g\n", name, float64(m.latencyNS[e].Load())/1e9)
		fmt.Fprintf(&sb, "hetmemd_request_seconds_count{endpoint=%q} %d\n", name, m.requests[e].Load())
	}
	return sb.String()
}

func formatBound(ub float64) string {
	return strconv.FormatFloat(ub, 'g', -1, 64)
}

// ParseMetrics parses the Render text format back into a map keyed by
// the full series name including labels, e.g.
// `hetmemd_node_bytes_in_use{node="DRAM#0"}`. Clients and tests use it
// to assert on counters.
func ParseMetrics(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("server: bad metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("server: bad metrics value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}

// SumSeries adds up every series whose name (before any label block)
// equals name, e.g. SumSeries(m, "hetmemd_node_bytes_in_use") is the
// machine-wide bytes in use.
func SumSeries(m map[string]float64, name string) float64 {
	var sum float64
	for k, v := range m {
		base := k
		if i := strings.IndexByte(k, '{'); i >= 0 {
			base = k[:i]
		}
		if base == name {
			sum += v
		}
	}
	return sum
}

// SumSeriesPrefix adds up every series whose full key (name and label
// block included) starts with prefix. The tenant series emit the tenant
// label first, so e.g.
// SumSeriesPrefix(m, `hetmemd_tenant_bytes{tenant="gold"`) is one
// tenant's bytes across every kind.
func SumSeriesPrefix(m map[string]float64, prefix string) float64 {
	var sum float64
	for k, v := range m {
		if strings.HasPrefix(k, prefix) {
			sum += v
		}
	}
	return sum
}

// sortedNodeUsage orders node gauges by name for deterministic output.
func sortedNodeUsage(nodes []NodeUsage) []NodeUsage {
	out := make([]NodeUsage, len(nodes))
	copy(out, nodes)
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
