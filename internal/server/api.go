package server

// The machine-less v1 HTTP surface. PR 6 splits the daemon's HTTP
// plumbing — route mounting with deprecated legacy aliases, request
// instrumentation, and the uniform v1 error envelope — out of Server
// into apiBase, and defines Backend: the interface a placement node
// must implement to serve the /v1 API. Server keeps its optimized
// hand-rolled handlers on top of apiBase; the cluster router
// (internal/cluster) implements Backend and mounts the same surface
// via NewAPI, reusing the wire format, error vocabulary, and metrics
// plumbing without an attached Machine.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strconv"
	"time"
)

// Backend is the placement engine behind the v1 HTTP surface: what a
// node must answer, independent of whether the answers come from an
// attached memsim Machine (Server) or from forwarding to a fleet of
// member daemons (cluster.Router).
type Backend interface {
	// TopologyJSON returns the /v1/topology body.
	TopologyJSON(ctx context.Context) ([]byte, error)
	// Attrs returns the attribute dump.
	Attrs(ctx context.Context) ([]AttrReport, error)
	// Alloc places one buffer.
	Alloc(ctx context.Context, req AllocRequest) (AllocResponse, error)
	// AllocBatch places many buffers; per-item outcomes, in order.
	AllocBatch(ctx context.Context, reqs []AllocRequest) (BatchAllocResponse, error)
	// Free releases a lease.
	Free(ctx context.Context, req FreeRequest) (FreeResponse, error)
	// Renew heartbeats a lease.
	Renew(ctx context.Context, req RenewRequest) (RenewResponse, error)
	// Migrate re-places a leased buffer.
	Migrate(ctx context.Context, req MigrateRequest) (MigrateResponse, error)
	// Leases summarizes the live lease table.
	Leases(ctx context.Context, list bool) (LeasesResponse, error)
	// Health reports the node's health.
	Health(ctx context.Context) (HealthResponse, error)
	// WriteMetrics renders the /metrics text.
	WriteMetrics(ctx context.Context, w io.Writer) error
}

// apiBase is the HTTP plumbing shared by every v1 surface: the mux,
// the request metrics, and the error envelope. Server and API embed
// it, so both mount routes, instrument requests, and shape errors
// identically.
type apiBase struct {
	mux     *http.ServeMux
	metrics *Metrics
	// retryAfterSeconds is the Retry-After hint stamped on 503s.
	retryAfterSeconds int
}

func newAPIBase(retryAfterSeconds int) apiBase {
	if retryAfterSeconds <= 0 {
		retryAfterSeconds = 1
	}
	return apiBase{
		mux:               http.NewServeMux(),
		metrics:           NewMetrics(),
		retryAfterSeconds: retryAfterSeconds,
	}
}

// route mounts one endpoint twice: the canonical /v1 path, and the
// pre-v1 unversioned path as a deprecated alias. The alias answers
// normally (old error bodies included — see writeError) but stamps a
// Deprecation header and a successor-version link, per RFC 9745, so
// clients learn where to move. The deprecation policy is one release:
// the aliases disappear in v2.
func (a *apiBase) route(method, path string, ep Endpoint, h http.HandlerFunc) {
	a.mux.HandleFunc(method+" /v1"+path, a.instrument(ep, h))
	a.mux.HandleFunc(method+" "+path, a.instrument(ep, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1"+path+`>; rel="successor-version"`)
		h(w, r)
	}))
}

// instrument wraps a handler with request counting and latency
// observation, and stamps the X-Hetmem-Tenant header (when present)
// into the request context — one chokepoint, so the daemon's own
// handlers and a forwarding Backend see the tenant the same way. On a
// forwarding node the observed latency IS the member round trip, so
// the per-endpoint histograms double as the forwarded-request latency
// rollup.
func (a *apiBase) instrument(e Endpoint, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, withRequestTenant(r))
		a.metrics.Observe(e, time.Since(start), sw.status >= 400)
		// The HTTP slot of the per-transport counters; the binary
		// listeners feed theirs from inside wire.Server.
		hs := a.metrics.TransportStats(TransportHTTP)
		hs.Requests.Add(1)
		if r.ContentLength > 0 {
			hs.BytesRx.Add(uint64(r.ContentLength))
		}
		hs.BytesTx.Add(uint64(sw.bytes))
	}
}

// errorBody builds the v1 envelope for an error. A forwarded
// *APIError passes through verbatim — the member already classified
// it, and re-deriving the code here would launder, say, a member's
// capacity_exhausted into internal.
func (a *apiBase) errorBody(err error) (int, ErrorBody) {
	var fwd *APIError
	if errors.As(err, &fwd) && fwd.Code != "" {
		return fwd.StatusCode, ErrorBody{
			Code:              fwd.Code,
			Message:           fwd.Message,
			Retryable:         fwd.Retryable,
			RetryAfterSeconds: fwd.RetryAfterSeconds,
		}
	}
	status, code, retryable := classify(err)
	body := ErrorBody{Code: code, Message: err.Error(), Retryable: retryable}
	if status == http.StatusServiceUnavailable {
		body.RetryAfterSeconds = a.retryAfterSeconds
	}
	return status, body
}

func (a *apiBase) writeError(w http.ResponseWriter, r *http.Request, err error) {
	status, body := a.errorBody(err)
	if status == http.StatusServiceUnavailable {
		ra := body.RetryAfterSeconds
		if ra <= 0 {
			ra = a.retryAfterSeconds
		}
		w.Header().Set("Retry-After", strconv.Itoa(ra))
	}
	if isV1(r) {
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// NewInstanceID draws a random per-boot instance ID of the kind
// surfaced in /v1/health and /metrics, so a router (or an operator)
// can tell a restarted daemon from the one it was polling a second
// ago behind the same address. Exported for the cluster router, which
// carries its own.
func NewInstanceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; fall back
		// to math/rand rather than refuse to boot.
		return fmt.Sprintf("i%015x", mrand.Int63())
	}
	return hex.EncodeToString(b[:])
}

// ErrorBodyFor shapes err as the v1 error envelope, exactly as the
// HTTP surface would (including *APIError passthrough), for callers
// that embed envelopes in larger responses — e.g. per-item batch
// outcomes built outside a handler.
func ErrorBodyFor(err error, retryAfterSeconds int) ErrorBody {
	if retryAfterSeconds <= 0 {
		retryAfterSeconds = 1
	}
	a := apiBase{retryAfterSeconds: retryAfterSeconds}
	_, body := a.errorBody(err)
	return body
}

// APIOptions tunes the generic surface.
type APIOptions struct {
	// RetryAfterSeconds is the Retry-After hint on 503 responses
	// (default 1).
	RetryAfterSeconds int
}

// API serves the full v1 surface (plus the deprecated legacy aliases)
// against any Backend. It is the HTTP layer of a node that has no
// attached Machine: decode, delegate, encode, instrument — the same
// wire format, error envelope, and metrics series as the daemon's own
// handlers.
type API struct {
	apiBase
	backend Backend
}

// NewAPI mounts the v1 surface over a backend.
func NewAPI(b Backend, opts APIOptions) *API {
	a := &API{apiBase: newAPIBase(opts.RetryAfterSeconds), backend: b}
	a.route("GET", "/topology", EpTopology, a.handleTopology)
	a.route("GET", "/attrs", EpAttrs, a.handleAttrs)
	a.route("POST", "/alloc", EpAlloc, a.handleAlloc)
	a.route("POST", "/free", EpFree, a.handleFree)
	a.route("POST", "/renew", EpRenew, a.handleRenew)
	a.route("POST", "/migrate", EpMigrate, a.handleMigrate)
	a.route("GET", "/leases", EpLeases, a.handleLeases)
	a.route("GET", "/metrics", EpMetrics, a.handleMetrics)
	a.route("GET", "/health", EpHealth, a.handleHealth)
	a.mux.HandleFunc("POST /v1/alloc/batch", a.instrument(EpAllocBatch, a.handleAllocBatch))
	return a
}

// Handler returns the surface's HTTP handler.
func (a *API) Handler() http.Handler { return a.mux }

// Metrics returns the surface's live request metrics.
func (a *API) Metrics() *Metrics { return a.metrics }

func (a *API) handleTopology(w http.ResponseWriter, r *http.Request) {
	body, err := a.backend.TopologyJSON(r.Context())
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (a *API) handleAttrs(w http.ResponseWriter, r *http.Request) {
	out, err := a.backend.Attrs(r.Context())
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) handleAlloc(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeAllocRequest(r.Body)
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	resp, err := a.backend.Alloc(r.Context(), req)
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *API) handleAllocBatch(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeBatchAllocRequest(r.Body)
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	resp, err := a.backend.AllocBatch(r.Context(), req.Requests)
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *API) handleFree(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeFreeRequest(r.Body)
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	resp, err := a.backend.Free(r.Context(), req)
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *API) handleRenew(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeRenewRequest(r.Body)
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	resp, err := a.backend.Renew(r.Context(), req)
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *API) handleMigrate(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeMigrateRequest(r.Body)
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	resp, err := a.backend.Migrate(r.Context(), req)
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *API) handleLeases(w http.ResponseWriter, r *http.Request) {
	resp, err := a.backend.Leases(r.Context(), r.URL.Query().Get("list") != "")
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *API) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp, err := a.backend.Health(r.Context())
	if err != nil {
		a.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := a.backend.WriteMetrics(r.Context(), w); err != nil {
		a.writeError(w, r, err)
	}
}
