package server

// Tenant plumbing for the daemon: the X-Hetmem-Tenant request header,
// the context carrier both the handlers and the forwarding client use,
// and the class-aware admission path — best-effort sheds at the
// watermark, burstable waits in a bounded deadline-aware queue,
// guaranteed admits into reserved headroom — plus the per-kind quota
// charge/refund helpers that keep the tenant registry's books equal to
// the lease table.

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"hetmem/internal/memsim"
	"hetmem/internal/tenant"
	"hetmem/internal/topology"
)

// TenantHeader names the requesting tenant on every /v1 request. A
// missing header means the default tenant.
const TenantHeader = "X-Hetmem-Tenant"

type tenantCtxKey struct{}

// ContextWithTenant returns ctx carrying a tenant name. The server
// stamps inbound requests with it; the client (and therefore a
// forwarding router) stamps it back onto the outbound header.
func ContextWithTenant(ctx context.Context, name string) context.Context {
	if name == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey{}, name)
}

// TenantFromContext returns the tenant name carried by ctx, or "".
func TenantFromContext(ctx context.Context) string {
	name, _ := ctx.Value(tenantCtxKey{}).(string)
	return name
}

// withRequestTenant stamps the request's tenant header into its
// context. Requests without the header pass through untouched — the
// empty name reads as the default tenant, and the untenanted hot path
// stays allocation-free.
func withRequestTenant(r *http.Request) *http.Request {
	name := r.Header.Get(TenantHeader)
	if name == "" {
		return r
	}
	return r.WithContext(ContextWithTenant(r.Context(), name))
}

// Tenants returns the daemon's tenant registry.
func (s *Server) Tenants() *tenant.Registry { return s.tenants }

// waitGate wakes every parked burstable admission when capacity is
// released: broadcast closes the current channel and installs a fresh
// one, so waiters re-check the watermark instead of sleeping through
// the free that would have admitted them.
type waitGate struct {
	mu sync.Mutex
	ch chan struct{}
}

func (g *waitGate) waitChan() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ch == nil {
		g.ch = make(chan struct{})
	}
	return g.ch
}

func (g *waitGate) broadcast() {
	g.mu.Lock()
	if g.ch != nil {
		close(g.ch)
		g.ch = nil
	}
	g.mu.Unlock()
}

// watermarkFor is the shed threshold a class admits under: guaranteed
// tenants get GuaranteedHeadroom above the global watermark (capped at
// the full capacity), everyone else gets the watermark itself.
func (s *Server) watermarkFor(class tenant.Class) float64 {
	w := s.cfg.ShedWatermark
	if class == tenant.Guaranteed {
		w += s.cfg.GuaranteedHeadroom
		if w > 1 {
			w = 1
		}
	}
	return w
}

// overWatermark reports (as an ErrOverloaded error) whether admitting
// size bytes would cross the given watermark fraction of the online
// capacity. Landing exactly on the watermark still admits.
func (s *Server) overWatermark(size uint64, w float64) error {
	used, total := s.pressure()
	if total == 0 || float64(used)+float64(size) > w*float64(total) {
		return fmt.Errorf("%w: %d of %d online bytes in use, watermark %.2f",
			ErrOverloaded, used, total, w)
	}
	return nil
}

// admitClass applies the class-aware watermark without queueing: the
// batch path and the queue's own re-checks use it directly.
func (s *Server) admitClass(t *tenant.Tenant, size uint64) error {
	if s.cfg.ShedWatermark <= 0 {
		return nil
	}
	err := s.overWatermark(size, s.watermarkFor(t.Class))
	if err != nil {
		s.metrics.ShedTotal.Add(1)
		t.Sheds.Add(1)
	}
	return err
}

// admitTenant is the full admission path for one allocation:
//
//   - guaranteed: watermark + headroom, never queued — headroom is the
//     reserve that keeps a guaranteed tenant admitting while everyone
//     else sheds;
//   - burstable: on overload, park in the bounded admission queue until
//     a free clears the watermark, the queue timeout (or the request
//     deadline) expires, or the queue is full;
//   - best-effort: shed immediately at the watermark.
func (s *Server) admitTenant(ctx context.Context, t *tenant.Tenant, size uint64) error {
	if s.cfg.ShedWatermark <= 0 {
		return nil
	}
	w := s.watermarkFor(t.Class)
	err := s.overWatermark(size, w)
	if err == nil {
		return nil
	}
	if t.Class == tenant.Burstable && s.cfg.QueueDepth > 0 {
		return s.queueAdmit(ctx, t, size, w)
	}
	s.metrics.ShedTotal.Add(1)
	t.Sheds.Add(1)
	return err
}

// queueAdmit parks a burstable allocation behind the bounded admission
// queue. The wait is deadline-aware: it ends at the configured
// QueueTimeout or the request context's deadline, whichever is sooner.
// A full queue sheds immediately — bounded means bounded.
func (s *Server) queueAdmit(ctx context.Context, t *tenant.Tenant, size uint64, w float64) error {
	if int(s.queueWaiting.Add(1)) > s.cfg.QueueDepth {
		s.queueWaiting.Add(-1)
		s.metrics.ShedTotal.Add(1)
		t.Sheds.Add(1)
		return fmt.Errorf("%w: admission queue full (%d waiting)", ErrOverloaded, s.cfg.QueueDepth)
	}
	defer s.queueWaiting.Add(-1)
	t.QueueWaits.Add(1)
	wait := s.cfg.QueueTimeout
	deadline := time.Now().Add(wait)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for {
		// Grab the gate channel before re-checking, so a broadcast
		// between the check and the select is never lost.
		ch := s.admitGate.waitChan()
		if err := s.overWatermark(size, w); err == nil {
			return nil
		}
		select {
		case <-ch:
		case <-timer.C:
			t.QueueTimeouts.Add(1)
			return fmt.Errorf("%w: tenant %q waited %v for headroom", ErrQueueTimedOut, t.Name, wait)
		case <-ctx.Done():
			t.QueueTimeouts.Add(1)
			return fmt.Errorf("%w: tenant %q: %v", ErrQueueTimedOut, t.Name, ctx.Err())
		}
	}
}

// avoidFor composes the health-avoid predicate with fair-share
// steering: a quota-limited tenant's placements demote nodes whose
// memory kind cannot fit the request inside the remaining quota, so
// the ranked-fallback order spends other tenants' preferred tiers only
// as a last resort. Unlimited tenants (the common case) keep the plain
// bound predicate — no per-request closure.
func (s *Server) avoidFor(t *tenant.Tenant, size uint64) func(*topology.Object) bool {
	if !t.Limited() {
		return s.avoidFn
	}
	return func(o *topology.Object) bool {
		if s.avoidFn(o) {
			return true
		}
		rem, limited := t.Remaining(memsim.KindOf(o))
		return limited && rem < size
	}
}

// chargeBuf charges the buffer's placed bytes, kind by kind, against
// the tenant's quotas. On a quota miss every charge made so far is
// refunded and the *QuotaError (quota_exceeded on the wire) reports
// the offending kind and limit.
func chargeBuf(t *tenant.Tenant, buf *memsim.Buffer) error {
	segs := buf.SegmentsSnapshot()
	for i, seg := range segs {
		if err := t.Charge(seg.Node.Kind(), seg.Bytes); err != nil {
			for _, done := range segs[:i] {
				t.Refund(done.Node.Kind(), done.Bytes)
			}
			return err
		}
	}
	return nil
}

// forceChargeBuf charges without quota checks — replay, migration, and
// evacuation accounting, where the bytes already moved.
func forceChargeBuf(t *tenant.Tenant, buf *memsim.Buffer) {
	for _, seg := range buf.SegmentsSnapshot() {
		t.ForceCharge(seg.Node.Kind(), seg.Bytes)
	}
}

// refundSegs returns previously charged bytes, from a segment snapshot
// captured before the buffer was freed or re-placed.
func refundSegs(t *tenant.Tenant, segs []memsim.Segment) {
	for _, seg := range segs {
		t.Refund(seg.Node.Kind(), seg.Bytes)
	}
}
