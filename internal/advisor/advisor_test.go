package advisor

// Unit tests for the Tracker's pure policy: first-sighting deltas,
// streak resets when a recommendation flips, cooldown ticks, decision
// ring wraparound, the advice cache, and pruning vanished leases.
// The server-level behaviour (real migrations, budgets, the HTTP
// surface) lives in internal/server's advisor tests.

import (
	"testing"
	"time"

	"hetmem/internal/memsim"
	"hetmem/internal/sensitivity"
)

// hotSample fabricates a latency-bound sample: cumulative counters
// dominated by random misses.
func hotSample(lease uint64, name string, cum uint64) Sample {
	return Sample{
		Lease: lease, Name: name, Placement: "NVDIMM#2", Size: 1 << 20,
		Attr: "Capacity",
		Telemetry: memsim.Telemetry{
			LLCMisses: cum, RandomMisses: cum, Loads: cum * 10,
		},
	}
}

func newTestTracker(hysteresis, cooldown int) *Tracker {
	return New(Config{
		Interval: time.Second,
		Options: sensitivity.Options{
			MinMissShare: 0.01, Hysteresis: hysteresis, CooldownSamples: cooldown,
		},
	})
}

// TestFirstSightingClassifies pins that a lease's very first sample is
// its own interval — an already-hot lease needs no warm-up cycle.
func TestFirstSightingClassifies(t *testing.T) {
	tr := newTestTracker(3, 2)
	recs := tr.Classify([]Sample{hotSample(1, "hot", 1000)})
	if len(recs) != 1 {
		t.Fatalf("first sighting produced %d recommendations, want 1", len(recs))
	}
	if recs[0].AttrName != "Latency" {
		t.Errorf("random-miss-dominated lease classified %q, want Latency", recs[0].AttrName)
	}
	if got := tr.Advice("hot"); got != "Latency" {
		t.Errorf("advice cache %q, want Latency", got)
	}
	if got := tr.Classification(1); got != "Latency" {
		t.Errorf("classification %q, want Latency", got)
	}
}

// TestIdleLeaseHasNoOpinion: a lease that never shows telemetry is
// never classified — an HTTP-only daemon must not mass-demote.
func TestIdleLeaseHasNoOpinion(t *testing.T) {
	tr := newTestTracker(1, 1)
	for i := 0; i < 3; i++ {
		if recs := tr.Classify([]Sample{{Lease: 1, Name: "idle"}}); len(recs) != 0 {
			t.Fatalf("idle lease produced %d recommendations", len(recs))
		}
	}
	if got := tr.Advice("idle"); got != "" {
		t.Errorf("idle lease acquired advice %q", got)
	}
}

// TestHysteresisAndStreakReset: Consider holds until the streak
// completes, and a flipped recommendation restarts the count.
func TestHysteresisAndStreakReset(t *testing.T) {
	tr := newTestTracker(3, 1)
	r := tr.Classify([]Sample{hotSample(1, "a", 1000)})[0]
	if got := tr.Consider(r); got != Hold {
		t.Fatalf("streak 1/3: %v, want Hold", got)
	}
	r = tr.Classify([]Sample{hotSample(1, "a", 2000)})[0]
	if got := tr.Consider(r); got != Hold {
		t.Fatalf("streak 2/3: %v, want Hold", got)
	}
	// The lease goes cold: the recommendation flips to Capacity and
	// the Latency streak must not carry over.
	r = tr.Classify([]Sample{hotSample(1, "a", 2000)})[0] // zero delta
	if r.AttrName != "Capacity" {
		t.Fatalf("cold interval classified %q, want Capacity", r.AttrName)
	}
	if got := tr.Consider(r); got != Hold {
		t.Fatalf("flipped streak 1/3: %v, want Hold", got)
	}
	// Hot again for three consecutive samples → move on the third.
	for i, cum := range []uint64{3000, 4000, 5000} {
		r = tr.Classify([]Sample{hotSample(1, "a", cum)})[0]
		want := Hold
		if i == 2 {
			want = Move
		}
		if got := tr.Consider(r); got != want {
			t.Fatalf("rebuilt streak %d/3: %v, want %v", i+1, got, want)
		}
	}
	if c := tr.Counters(); c.HeldHysteresis != 5 {
		t.Errorf("held_hysteresis counter %d, want 5", c.HeldHysteresis)
	}
}

// TestCooldownAfterMove: RecordMove rests the lease for
// CooldownSamples cycles, with cooldown decisions logged.
func TestCooldownAfterMove(t *testing.T) {
	tr := newTestTracker(1, 2)
	r := tr.Classify([]Sample{hotSample(1, "a", 1000)})[0]
	if got := tr.Consider(r); got != Move {
		t.Fatalf("hysteresis 1: %v, want Move", got)
	}
	tr.RecordMove(r, "NVDIMM#2", "DRAM#0")
	// Cycle 2 ticks the cooldown from 2 to 1 — still resting.
	r = tr.Classify([]Sample{hotSample(1, "a", 2000)})[0]
	if got := tr.Consider(r); got != Cooldown {
		t.Fatalf("cooldown cycle: %v, want Cooldown", got)
	}
	// Cycle 3 ticks it to 0 — free to move again.
	r = tr.Classify([]Sample{hotSample(1, "a", 3000)})[0]
	if got := tr.Consider(r); got != Move {
		t.Fatalf("post-cooldown: %v, want Move", got)
	}
	if c := tr.Counters(); c.Promoted != 1 {
		t.Errorf("promoted counter %d, want 1", c.Promoted)
	}
}

// TestDecisionRingWraps: the log keeps only the newest LogSize
// decisions, oldest first in the snapshot.
func TestDecisionRingWraps(t *testing.T) {
	tr := New(Config{Options: sensitivity.DefaultOptions(), LogSize: 4})
	for i := uint64(1); i <= 6; i++ {
		r := tr.Classify([]Sample{hotSample(i, "x", 1000)})[0]
		tr.RecordHeldBudget(r)
	}
	snap := tr.Snapshot()
	if len(snap.Decisions) != 4 {
		t.Fatalf("ring holds %d decisions, want 4", len(snap.Decisions))
	}
	for i, d := range snap.Decisions {
		if want := uint64(i + 3); d.Lease != want {
			t.Errorf("decision %d is lease %d, want %d (oldest first)", i, d.Lease, want)
		}
	}
	if snap.Counters.HeldBudget != 6 {
		t.Errorf("held_budget counter %d, want 6 (counters outlive the ring)", snap.Counters.HeldBudget)
	}
}

// TestVanishedLeaseIsPruned: state for a freed lease is dropped, so a
// recycled lease ID starts with a clean streak.
func TestVanishedLeaseIsPruned(t *testing.T) {
	tr := newTestTracker(2, 1)
	r := tr.Classify([]Sample{hotSample(1, "a", 1000)})[0]
	tr.Consider(r) // streak 1
	tr.Classify(nil)
	// Same ID reappears: its first Consider must be streak 1, not 2.
	r = tr.Classify([]Sample{hotSample(1, "b", 1000)})[0]
	if got := tr.Consider(r); got != Hold {
		t.Fatalf("recycled lease inherited a streak: %v, want Hold", got)
	}
}

// TestRestoreCounters folds replayed totals into the snapshot.
func TestRestoreCounters(t *testing.T) {
	tr := newTestTracker(1, 1)
	tr.RestoreCounters(3, 2)
	c := tr.Snapshot().Counters
	if c.Promoted != 3 || c.Demoted != 2 {
		t.Errorf("restored counters %+v, want 3 promoted / 2 demoted", c)
	}
}
