// Package advisor is the daemon's online feedback-driven re-placement
// brain: the live counterpart of the paper's offline VTune workflow.
// Where the paper profiles a run, reads the hot-object report, and
// edits the application to allocate with a better attribute, the
// advisor closes that loop inside hetmemd — it periodically samples
// per-lease access telemetry from memsim, summarizes each interval
// with internal/profile, reclassifies the lease with
// internal/sensitivity (latency-bound → the latency tier,
// bandwidth-bound → the bandwidth tier, cold → the capacity tier), and
// asks the server to migrate leases whose placement disagrees with
// their observed behaviour.
//
// The Tracker is deliberately mechanism-free: it owns classification,
// hysteresis (N consecutive agreeing samples before a move), per-lease
// move cooldown, the rolling decision log, and the advice cache — but
// never touches the allocator or the journal. The server drives it
// once per interval: Classify → per-lease Aligned/Consider →
// RecordMove/RecordHeldBudget around the journaled migrate path.
package advisor

import (
	"sync"
	"time"

	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/profile"
	"hetmem/internal/sensitivity"
)

// The stable reason codes of the decision log.
const (
	// ReasonPromoted: the lease moved toward a performance tier
	// (Latency or Bandwidth recommendation).
	ReasonPromoted = "promoted"
	// ReasonDemoted: the lease moved toward the capacity tier.
	ReasonDemoted = "demoted"
	// ReasonHeldBudget: the move was due but this cycle's migration
	// budget was already spent.
	ReasonHeldBudget = "held_budget"
	// ReasonHeldHysteresis: the classification disagrees with the
	// placement but has not yet persisted for enough consecutive
	// samples, or the lease is in its post-move cooldown.
	ReasonHeldHysteresis = "held_hysteresis"
)

// DefaultLogSize is the decision ring capacity when Config.LogSize is
// zero.
const DefaultLogSize = 256

// Config is the advisor's tunable set.
type Config struct {
	// Interval between sample cycles.
	Interval time.Duration
	// Options holds the shared classification knobs (min miss share,
	// hysteresis, cooldown) — the same struct the offline tools use.
	Options sensitivity.Options
	// LogSize caps the rolling decision log (DefaultLogSize when 0).
	LogSize int
}

// Sample is one lease's telemetry reading for a cycle.
type Sample struct {
	Lease     uint64
	Name      string
	Placement string
	Size      uint64
	// Attr is the lease's current attribute name.
	Attr string
	// Telemetry is the buffer's cumulative published counters.
	Telemetry memsim.Telemetry
}

// Recommendation is one lease's classification for a cycle, produced
// by Classify for every lease that has ever shown activity.
type Recommendation struct {
	Lease     uint64
	Name      string
	Attr      memattr.ID
	AttrName  string
	Rationale string
	// Report is the per-interval delta the classification was read
	// from.
	Report profile.ObjectReport
}

// Action is Consider's verdict for a misplaced lease.
type Action int

// The actions.
const (
	// Hold: streak not yet at the hysteresis threshold (logged as
	// held_hysteresis).
	Hold Action = iota
	// Cooldown: the lease moved recently and is resting (logged as
	// held_hysteresis).
	Cooldown
	// Move: stable disagreement; the server should migrate now.
	Move
)

// Decision is one entry of the rolling decision log.
type Decision struct {
	Cycle  uint64 `json:"cycle"`
	Lease  uint64 `json:"lease"`
	Name   string `json:"name"`
	Reason string `json:"reason"`
	// Attr is the recommended attribute at decision time.
	Attr string `json:"attr,omitempty"`
	// From and To are the placements around a move (set only on
	// promoted/demoted entries).
	From      string `json:"from,omitempty"`
	To        string `json:"to,omitempty"`
	Rationale string `json:"rationale,omitempty"`
}

// Counters are the advisor's lifetime decision totals. Promoted and
// Demoted survive a restart (replayed from advisor-tagged journal
// records); the held counters are session-local.
type Counters struct {
	Promoted       uint64 `json:"promoted"`
	Demoted        uint64 `json:"demoted"`
	HeldBudget     uint64 `json:"held_budget"`
	HeldHysteresis uint64 `json:"held_hysteresis"`
}

// Snapshot is the GET /v1/advisor payload: configuration, state, and
// the rolling decision log, oldest first.
type Snapshot struct {
	Paused         bool                `json:"paused"`
	IntervalMillis int64               `json:"interval_ms"`
	Options        sensitivity.Options `json:"options"`
	Cycles         uint64              `json:"cycles"`
	Counters       Counters            `json:"counters"`
	Decisions      []Decision          `json:"decisions,omitempty"`
}

// leaseState is the advisor's private per-lease memory. It lives here,
// not on the server's pooled lease objects, so lease recycling can
// never leak one lease's streak into another's.
type leaseState struct {
	last     memsim.Telemetry
	haveLast bool
	// active: the buffer has shown nonzero telemetry at least once.
	// Leases never touched by an engine (an HTTP-only daemon) get no
	// opinion — mass-demoting idle control-plane leases is not advice.
	active   bool
	class    string // last classification attr name
	wantName string // attr the current streak argues for
	streak   int
	cooldown int // cycles left before the lease may move again
}

// Tracker holds the advisor's state. All methods are safe for
// concurrent use.
type Tracker struct {
	mu     sync.Mutex
	cfg    Config
	paused bool
	cycle  uint64

	leases map[uint64]*leaseState
	advice map[string]string // by buffer name, for attr-less allocs

	log     []Decision // ring of cfg.LogSize
	logNext int
	logFull bool

	counters Counters
}

// New builds a Tracker. Zero Options fields are filled from
// sensitivity.DefaultOptions.
func New(cfg Config) *Tracker {
	def := sensitivity.DefaultOptions()
	if cfg.Options.MinMissShare <= 0 {
		cfg.Options.MinMissShare = def.MinMissShare
	}
	if cfg.Options.Hysteresis <= 0 {
		cfg.Options.Hysteresis = def.Hysteresis
	}
	if cfg.Options.CooldownSamples <= 0 {
		cfg.Options.CooldownSamples = def.CooldownSamples
	}
	if cfg.LogSize <= 0 {
		cfg.LogSize = DefaultLogSize
	}
	return &Tracker{
		cfg:    cfg,
		leases: make(map[uint64]*leaseState),
		advice: make(map[string]string),
		log:    make([]Decision, cfg.LogSize),
	}
}

// Config returns the tracker's effective configuration.
func (t *Tracker) Config() Config {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg
}

// Pause stops the advisor from acting; it reports false when already
// paused (the 409 the API maps to).
func (t *Tracker) Pause() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.paused {
		return false
	}
	t.paused = true
	return true
}

// Resume lets the advisor act again. Idempotent.
func (t *Tracker) Resume() {
	t.mu.Lock()
	t.paused = false
	t.mu.Unlock()
}

// Paused reports the pause flag.
func (t *Tracker) Paused() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.paused
}

// attrNameOf maps the three recommendation attributes to their
// canonical registry names.
func attrNameOf(id memattr.ID) string {
	switch id {
	case memattr.Latency:
		return "Latency"
	case memattr.Bandwidth:
		return "Bandwidth"
	default:
		return "Capacity"
	}
}

// Classify starts a cycle: it diffs every sample against the lease's
// previous one, classifies the interval deltas, refreshes the advice
// cache, ticks cooldowns, and prunes state for vanished leases. It
// returns a recommendation for every lease that has ever been active.
func (t *Tracker) Classify(samples []Sample) []Recommendation {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cycle++

	type work struct {
		s     Sample
		delta profile.ObjectReport
	}
	seen := make(map[uint64]bool, len(samples))
	works := make([]work, 0, len(samples))
	var total uint64
	for _, s := range samples {
		seen[s.Lease] = true
		st := t.leases[s.Lease]
		if st == nil {
			st = &leaseState{}
			t.leases[s.Lease] = st
		}
		if st.cooldown > 0 {
			st.cooldown--
		}
		prev := st.last
		if !st.haveLast {
			// First sighting: the cumulative counters are the first
			// interval (an already-hot restored lease should not need an
			// extra cycle to be seen).
			prev = memsim.Telemetry{}
		}
		st.last = s.Telemetry
		st.haveLast = true
		if s.Telemetry != (memsim.Telemetry{}) {
			st.active = true
		}
		if !st.active {
			continue
		}
		works = append(works, work{s, profile.ObjectReportDelta(s.Name, s.Placement, s.Size, prev, s.Telemetry)})
		total += works[len(works)-1].delta.LLCMisses
	}
	for id := range t.leases {
		if !seen[id] {
			delete(t.leases, id)
		}
	}

	out := make([]Recommendation, 0, len(works))
	for _, w := range works {
		rec := sensitivity.ClassifyObject(w.delta, total, t.cfg.Options)
		name := attrNameOf(rec.Attr)
		t.leases[w.s.Lease].class = name
		t.advice[w.s.Name] = name
		out = append(out, Recommendation{
			Lease:     w.s.Lease,
			Name:      w.s.Name,
			Attr:      rec.Attr,
			AttrName:  name,
			Rationale: rec.Rationale,
			Report:    w.delta,
		})
	}
	return out
}

// Aligned tells the tracker a lease's placement already matches its
// recommendation: any pending disagreement streak is cleared.
func (t *Tracker) Aligned(lease uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.leases[lease]; st != nil {
		st.streak = 0
		st.wantName = ""
	}
}

// Consider applies hysteresis and cooldown to a misplaced lease. Hold
// and Cooldown verdicts log a held_hysteresis decision; Move means the
// server should migrate (and then call RecordMove or
// RecordHeldBudget).
func (t *Tracker) Consider(r Recommendation) Action {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.leases[r.Lease]
	if st == nil {
		return Hold
	}
	if st.cooldown > 0 {
		t.counters.HeldHysteresis++
		t.logDecision(Decision{
			Lease: r.Lease, Name: r.Name, Reason: ReasonHeldHysteresis,
			Attr: r.AttrName, Rationale: "cooling down after a recent move",
		})
		return Cooldown
	}
	if st.wantName != r.AttrName {
		st.wantName = r.AttrName
		st.streak = 1
	} else {
		st.streak++
	}
	if st.streak < t.cfg.Options.Hysteresis {
		t.counters.HeldHysteresis++
		t.logDecision(Decision{
			Lease: r.Lease, Name: r.Name, Reason: ReasonHeldHysteresis,
			Attr: r.AttrName, Rationale: r.Rationale,
		})
		return Hold
	}
	return Move
}

// RecordMove logs a completed advisor migration and starts the lease's
// cooldown. A Capacity recommendation is a demotion; anything else is
// a promotion.
func (t *Tracker) RecordMove(r Recommendation, from, to string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.leases[r.Lease]; st != nil {
		st.streak = 0
		st.wantName = ""
		st.cooldown = t.cfg.Options.CooldownSamples
	}
	reason := ReasonPromoted
	if r.Attr == memattr.Capacity {
		reason = ReasonDemoted
		t.counters.Demoted++
	} else {
		t.counters.Promoted++
	}
	t.logDecision(Decision{
		Lease: r.Lease, Name: r.Name, Reason: reason,
		Attr: r.AttrName, From: from, To: to, Rationale: r.Rationale,
	})
}

// RecordHeldBudget logs a move that was due but hit the cycle's
// migration budget. The streak is kept, so the move goes first when
// budget returns.
func (t *Tracker) RecordHeldBudget(r Recommendation) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counters.HeldBudget++
	t.logDecision(Decision{
		Lease: r.Lease, Name: r.Name, Reason: ReasonHeldBudget,
		Attr: r.AttrName, Rationale: "cycle migration budget exhausted",
	})
}

// logDecision appends to the ring. Caller holds t.mu.
func (t *Tracker) logDecision(d Decision) {
	d.Cycle = t.cycle
	t.log[t.logNext] = d
	t.logNext++
	if t.logNext == len(t.log) {
		t.logNext = 0
		t.logFull = true
	}
}

// Advice returns the advisor's current placement recommendation for a
// buffer name ("" when it has never observed one).
func (t *Tracker) Advice(name string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.advice[name]
}

// Classification returns a lease's last classification attr name (""
// when the lease has never been active).
func (t *Tracker) Classification(lease uint64) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.leases[lease]; st != nil {
		return st.class
	}
	return ""
}

// RestoreCounters folds journal-replayed move totals in, so the
// promotion/demotion counters survive a daemon restart.
func (t *Tracker) RestoreCounters(promoted, demoted uint64) {
	t.mu.Lock()
	t.counters.Promoted += promoted
	t.counters.Demoted += demoted
	t.mu.Unlock()
}

// Counters returns the lifetime decision totals.
func (t *Tracker) Counters() Counters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters
}

// Snapshot captures the /v1/advisor payload, decisions oldest first.
func (t *Tracker) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	var decisions []Decision
	if t.logFull {
		decisions = make([]Decision, 0, len(t.log))
		decisions = append(decisions, t.log[t.logNext:]...)
		decisions = append(decisions, t.log[:t.logNext]...)
	} else if t.logNext > 0 {
		decisions = append([]Decision(nil), t.log[:t.logNext]...)
	}
	return Snapshot{
		Paused:         t.paused,
		IntervalMillis: t.cfg.Interval.Milliseconds(),
		Options:        t.cfg.Options,
		Cycles:         t.cycle,
		Counters:       t.counters,
		Decisions:      decisions,
	}
}
