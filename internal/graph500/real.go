package graph500

import (
	"fmt"
	"math/rand"
)

// RealConfig drives a full real-mode benchmark run: generate, build,
// traverse with validation — the Graph500 procedure — producing the
// per-root access statistics that the simulator then replays.
type RealConfig struct {
	Scale      int
	EdgeFactor int
	Seed       int64
	// NRoots is the number of search keys (the specification uses 64;
	// small runs use fewer). Roots are sampled among vertices with
	// non-zero degree, per the spec.
	NRoots int
	Opts   BFSOptions
	// SkipValidation disables the result checks (they are O(m) with a
	// large constant; the spec always validates).
	SkipValidation bool
}

func (c *RealConfig) defaults() {
	if c.EdgeFactor == 0 {
		c.EdgeFactor = 16
	}
	if c.NRoots == 0 {
		c.NRoots = 8
	}
}

// RealOutput is the result of a real-mode run.
type RealOutput struct {
	N, M  int64
	Graph *Graph
	Stats []BFSStats
}

// RunReal executes the real algorithm end to end and returns the
// per-root statistics. Use RunTEPS with an engine and placed buffers
// to obtain the simulated performance of this exact run.
func RunReal(cfg RealConfig) (*RealOutput, error) {
	cfg.defaults()
	edges := GenerateEdges(cfg.Scale, cfg.EdgeFactor, cfg.Seed)
	n := int64(1) << uint(cfg.Scale)
	g := BuildCSR(edges, n)

	r := rand.New(rand.NewSource(cfg.Seed ^ 0x5bd1e995))
	out := &RealOutput{N: n, M: g.M, Graph: g}
	tried := 0
	for len(out.Stats) < cfg.NRoots {
		if tried > 100*cfg.NRoots {
			return nil, fmt.Errorf("graph500: could not find %d roots with edges", cfg.NRoots)
		}
		tried++
		root := int64(r.Intn(int(n)))
		if g.Degree(root) == 0 {
			continue
		}
		parent, st := BFS(g, root, cfg.Opts)
		if !cfg.SkipValidation {
			if err := Validate(edges, n, root, parent); err != nil {
				return nil, fmt.Errorf("graph500: root %d: %w", root, err)
			}
		}
		out.Stats = append(out.Stats, st)
	}
	return out, nil
}
