package graph500

import (
	"fmt"

	"hetmem/internal/memsim"
)

// Buffers are the benchmark's data structures placed on simulated
// memory. Adj (the adjacency "column" array) is the hot buffer the
// paper's profiling use case identifies (allocated by xmalloc in the
// reference code, Figure 7a).
type Buffers struct {
	XAdj    *memsim.Buffer
	Adj     *memsim.Buffer
	Parent  *memsim.Buffer
	Queue   *memsim.Buffer
	Visited *memsim.Buffer
}

// AllocBuffers places all BFS data structures through the given
// placement function (typically the heterogeneous allocator, or a
// direct node binding for the process-level benchmarking method).
func AllocBuffers(place func(name string, size uint64) (*memsim.Buffer, error), s SizesInfo) (*Buffers, error) {
	b := &Buffers{}
	var err error
	alloc := func(dst **memsim.Buffer, name string, size uint64) {
		if err != nil {
			return
		}
		*dst, err = place(name, size)
		if err != nil {
			err = fmt.Errorf("graph500: allocating %s (%d bytes): %w", name, size, err)
		}
	}
	alloc(&b.XAdj, "csr_xadj", s.XAdjB)
	alloc(&b.Adj, "csr_adj", s.AdjB)
	alloc(&b.Parent, "bfs_parent", s.ParentB)
	alloc(&b.Queue, "bfs_queue", s.QueueB)
	alloc(&b.Visited, "bfs_visited", s.VisitedB)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Free releases all buffers.
func (b *Buffers) Free(m *memsim.Machine) {
	for _, buf := range []*memsim.Buffer{b.XAdj, b.Adj, b.Parent, b.Queue, b.Visited} {
		if buf != nil {
			m.Free(buf)
		}
	}
}

// SimParams tunes the replay of a BFS profile through the simulator.
type SimParams struct {
	// MLP is the memory-level parallelism of the irregular accesses
	// (outstanding parent-array probes per thread). Default 12.
	MLP float64
	// CPUPerEdge is the per-thread instruction cost of scanning one
	// adjacency entry (queue management, bitmap ops). Default 11 ns,
	// calibrated for the Xeon testbed; the KNL runs use a larger value
	// for its slow cores.
	CPUPerEdge float64
}

func (p *SimParams) defaults() {
	if p.MLP == 0 {
		p.MLP = 12
	}
	if p.CPUPerEdge == 0 {
		p.CPUPerEdge = 1.12e-8
	}
}

// SimulateBFS replays one traversal's access profile: streamed scans
// of the adjacency array, irregular probes of the parent array (the
// latency-critical part), offset lookups, and queue traffic.
func SimulateBFS(e *memsim.Engine, b *Buffers, st BFSStats, p SimParams) memsim.PhaseResult {
	p.defaults()
	threads := float64(e.Threads())
	accesses := []memsim.Access{
		{Buffer: b.XAdj, RandomReads: uint64(st.FrontierTotal), MLP: p.MLP},
		{Buffer: b.Adj, ReadBytes: uint64(st.EdgesScanned) * 8, RandomReads: uint64(st.FrontierTotal), MLP: p.MLP},
		{Buffer: b.Parent, RandomReads: uint64(st.EdgesScanned), MLP: p.MLP,
			WriteBytes: uint64(st.FrontierTotal) * 8,
			CPUSeconds: p.CPUPerEdge * float64(st.EdgesScanned) / threads},
		{Buffer: b.Queue, ReadBytes: uint64(st.FrontierTotal) * 8, WriteBytes: uint64(st.FrontierTotal) * 8},
		{Buffer: b.Visited, RandomReads: uint64(st.EdgesScanned) / 4, MLP: p.MLP},
	}
	return e.Phase(fmt.Sprintf("bfs-root-%d", st.Root), accesses)
}

// RunResult aggregates a multi-root run the way Graph500 reports it.
type RunResult struct {
	HarmonicTEPS float64
	MeanSeconds  float64
	PerRootTEPS  []float64
}

// RunTEPS replays a set of BFS profiles and computes the harmonic mean
// of the per-root TEPS, the benchmark's headline metric.
func RunTEPS(e *memsim.Engine, b *Buffers, stats []BFSStats, p SimParams) RunResult {
	var res RunResult
	var invSum, timeSum float64
	for _, st := range stats {
		pr := SimulateBFS(e, b, st, p)
		teps := float64(st.ReachableEdges) / pr.Seconds
		res.PerRootTEPS = append(res.PerRootTEPS, teps)
		invSum += 1 / teps
		timeSum += pr.Seconds
	}
	if n := float64(len(stats)); n > 0 {
		res.HarmonicTEPS = n / invSum
		res.MeanSeconds = timeSum / n
	}
	return res
}
