package graph500

import (
	"fmt"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
)

// The paper ran Graph500 3.0.0 "over MPI" with 16 processes confined
// to one package/cluster so that only local memory was exercised. This
// file extends the reproduction to the multi-cluster case: a 1-D
// partitioned BFS where each rank owns a vertex shard and its
// adjacency, keeps its buffers on memory local to its cluster, and
// exchanges frontier vertices with the other ranks every level — the
// communication crossing cluster boundaries at remote-access cost.

// Rank is one MPI-style process: an initiator (its cluster's cores)
// and its shard of the data structures.
type Rank struct {
	Initiator *bitmap.Bitmap
	Threads   int
	Bufs      *Buffers
}

// AllocRanks builds P ranks, placing each rank's shard through
// place(rank, name, size). Shards split every structure evenly.
func AllocRanks(p int, s SizesInfo, initiators []*bitmap.Bitmap, threads int,
	place func(rank int, name string, size uint64) (*memsim.Buffer, error)) ([]*Rank, error) {
	if p < 1 || len(initiators) < p {
		return nil, fmt.Errorf("graph500: need %d initiators, have %d", p, len(initiators))
	}
	shard := func(v uint64) uint64 { return v / uint64(p) }
	var ranks []*Rank
	for r := 0; r < p; r++ {
		rr := r
		bufs, err := AllocBuffers(func(name string, size uint64) (*memsim.Buffer, error) {
			return place(rr, fmt.Sprintf("r%d_%s", rr, name), size)
		}, SizesInfo{
			XAdjB:    shard(s.XAdjB),
			AdjB:     shard(s.AdjB),
			ParentB:  shard(s.ParentB),
			QueueB:   shard(s.QueueB),
			VisitedB: shard(s.VisitedB),
		})
		if err != nil {
			for _, built := range ranks {
				_ = built
			}
			return nil, err
		}
		ranks = append(ranks, &Rank{Initiator: initiators[r], Threads: threads, Bufs: bufs})
	}
	return ranks, nil
}

// Free releases all rank shards.
func FreeRanks(m *memsim.Machine, ranks []*Rank) {
	for _, r := range ranks {
		r.Bufs.Free(m)
	}
}

// DistResult reports a distributed run.
type DistResult struct {
	HarmonicTEPS float64
	// MaxRankSeconds is the per-BFS critical path (slowest rank).
	MaxRankSeconds float64
	// CommBytesPerBFS is the frontier-exchange volume each rank
	// handles per traversal.
	CommBytesPerBFS uint64
}

// RunDistributedTEPS replays the BFS profiles across the ranks. Each
// rank executes 1/P of the scans and probes against its own shard; in
// addition it reads the frontier contributions of every other rank
// from *their* queue buffers — remote traffic whose cost the machine's
// remote model determines. A traversal's time is the slowest rank's
// time (level-synchronous BFS barriers every level).
func RunDistributedTEPS(m *memsim.Machine, ranks []*Rank, stats []BFSStats, params SimParams) DistResult {
	params.defaults()
	p := len(ranks)
	var res DistResult
	var invSum float64
	engines := make([]*memsim.Engine, p)
	for i, r := range ranks {
		engines[i] = memsim.NewEngine(m, r.Initiator)
		if r.Threads > 0 {
			engines[i].SetThreads(r.Threads)
		}
	}
	for _, st := range stats {
		// Shard the profile.
		shardStat := BFSStats{
			Root:           st.Root,
			EdgesScanned:   st.EdgesScanned / int64(p),
			FrontierTotal:  st.FrontierTotal / int64(p),
			Levels:         st.Levels,
			ReachableEdges: st.ReachableEdges,
		}
		// Cut edges: with random vertex placement a (p-1)/p share of
		// edges crosses ranks; each produces an 8-byte vertex id that
		// the owning rank must read from the sender's queue.
		cut := uint64(st.EdgesScanned) * uint64(p-1) / uint64(p)
		commPerRank := cut / uint64(p) * 8
		res.CommBytesPerBFS = commPerRank

		var worst float64
		for i, r := range ranks {
			before := engines[i].Elapsed()
			accesses := []memsim.Access{
				{Buffer: r.Bufs.XAdj, RandomReads: uint64(shardStat.FrontierTotal), MLP: params.MLP},
				{Buffer: r.Bufs.Adj, ReadBytes: uint64(shardStat.EdgesScanned) * 8, RandomReads: uint64(shardStat.FrontierTotal), MLP: params.MLP},
				{Buffer: r.Bufs.Parent, RandomReads: uint64(shardStat.EdgesScanned), MLP: params.MLP,
					WriteBytes: uint64(shardStat.FrontierTotal) * 8,
					CPUSeconds: params.CPUPerEdge * float64(shardStat.EdgesScanned) / float64(engines[i].Threads())},
				{Buffer: r.Bufs.Queue, ReadBytes: uint64(shardStat.FrontierTotal) * 8, WriteBytes: uint64(shardStat.FrontierTotal) * 8},
			}
			// Frontier exchange: read every other rank's queue shard.
			for j, other := range ranks {
				if j == i {
					continue
				}
				accesses = append(accesses, memsim.Access{
					Buffer:    other.Bufs.Queue,
					ReadBytes: commPerRank / uint64(p-1),
				})
			}
			engines[i].Phase(fmt.Sprintf("bfs-rank%d", i), accesses)
			if d := engines[i].Elapsed() - before; d > worst {
				worst = d
			}
		}
		res.MaxRankSeconds = worst
		teps := float64(st.ReachableEdges) / worst
		invSum += 1 / teps
	}
	if n := float64(len(stats)); n > 0 {
		res.HarmonicTEPS = n / invSum
	}
	return res
}
