package graph500

import (
	"errors"
	"fmt"
)

// ErrInvalidTree is wrapped by all validation failures.
var ErrInvalidTree = errors.New("graph500: invalid BFS tree")

// Validate runs the Graph500 specification's result checks on a parent
// array:
//
//  1. the root is its own parent;
//  2. every tree edge (v, parent[v]) exists in the input edge list;
//  3. BFS levels of tree neighbours differ by exactly one;
//  4. every vertex incident to a reachable edge is in the tree
//     (connectivity: the tree spans the root's component);
//  5. the parent array contains no cycles (implied by 3, checked
//     directly while computing levels).
func Validate(edges []Edge, n, root int64, parent []int64) error {
	if int64(len(parent)) != n {
		return fmt.Errorf("%w: parent length %d != n %d", ErrInvalidTree, len(parent), n)
	}
	if parent[root] != root {
		return fmt.Errorf("%w: parent[root]=%d", ErrInvalidTree, parent[root])
	}

	// Compute levels by walking parents, with cycle detection (check 5).
	level := make([]int64, n)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	var walk func(v int64, depth int64) (int64, error)
	walk = func(v int64, depth int64) (int64, error) {
		if depth > n {
			return 0, fmt.Errorf("%w: parent cycle at vertex %d", ErrInvalidTree, v)
		}
		if level[v] >= 0 {
			return level[v], nil
		}
		p := parent[v]
		if p < 0 || p >= n {
			return 0, fmt.Errorf("%w: vertex %d has parent %d", ErrInvalidTree, v, p)
		}
		lp, err := walk(p, depth+1)
		if err != nil {
			return 0, err
		}
		level[v] = lp + 1
		return level[v], nil
	}
	for v := int64(0); v < n; v++ {
		if parent[v] == -1 {
			continue
		}
		if _, err := walk(v, 0); err != nil {
			return err
		}
	}

	// Check 2: tree edges must exist in the input list (either
	// direction).
	type pair struct{ a, b int64 }
	present := make(map[pair]bool, 2*len(edges))
	for _, e := range edges {
		present[pair{e.U, e.V}] = true
		present[pair{e.V, e.U}] = true
	}
	for v := int64(0); v < n; v++ {
		p := parent[v]
		if p == -1 || v == root {
			continue
		}
		if !present[pair{v, p}] {
			return fmt.Errorf("%w: tree edge (%d,%d) not in graph", ErrInvalidTree, v, p)
		}
	}

	// Checks 3 and 4 over the full edge list.
	for _, e := range edges {
		lu, lv := level[e.U], level[e.V]
		switch {
		case lu == -1 && lv == -1:
			// Both outside the component: fine.
		case lu == -1 || lv == -1:
			return fmt.Errorf("%w: edge (%d,%d) crosses the component boundary", ErrInvalidTree, e.U, e.V)
		default:
			d := lu - lv
			if d < -1 || d > 1 {
				return fmt.Errorf("%w: edge (%d,%d) spans levels %d and %d", ErrInvalidTree, e.U, e.V, lu, lv)
			}
		}
	}
	return nil
}
