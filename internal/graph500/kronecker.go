// Package graph500 implements the Graph500 benchmark used in the
// paper's use case (Section VI): a Kronecker (R-MAT) graph generator,
// CSR construction, level-synchronous breadth-first search with
// optional direction optimization, the specification's result
// validation, and the harmonic-mean TEPS metric.
//
// The algorithms run for real (and are validated) on small scales; the
// performance of a run at any scale is obtained by replaying the BFS's
// memory-access profile through the memory-system simulator
// (internal/memsim), so that TEPS depends on where the graph's buffers
// were allocated — which is the whole point of the use case.
package graph500

import (
	"fmt"
	"math/rand"
)

// Edge is one directed entry of the generated edge list (the benchmark
// treats the graph as undirected).
type Edge struct {
	U, V int64
}

// Kronecker initiator matrix per the Graph500 specification.
const (
	initA = 0.57
	initB = 0.19
	initC = 0.19
)

// GenerateEdges produces an R-MAT edge list with 2^scale vertices and
// edgefactor*2^scale edges, with randomly permuted vertex labels and
// shuffled edge order, as the Graph500 reference generator does.
func GenerateEdges(scale, edgefactor int, seed int64) []Edge {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("graph500: unreasonable scale %d", scale))
	}
	n := int64(1) << uint(scale)
	m := int64(edgefactor) * n
	r := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)

	ab := initA + initB
	cNorm := initC / (1 - ab)
	aNorm := initA / ab
	for k := range edges {
		var u, v int64
		for bit := 0; bit < scale; bit++ {
			iiBit := r.Float64() > ab
			var jjBit bool
			if iiBit {
				jjBit = r.Float64() > cNorm
			} else {
				jjBit = r.Float64() > aNorm
			}
			if iiBit {
				u |= 1 << uint(bit)
			}
			if jjBit {
				v |= 1 << uint(bit)
			}
		}
		edges[k] = Edge{u, v}
	}

	// Permute vertex labels so vertex degree is uncorrelated with ID.
	perm := r.Perm(int(n))
	for k := range edges {
		edges[k].U = int64(perm[edges[k].U])
		edges[k].V = int64(perm[edges[k].V])
	}
	// Shuffle the edge list.
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}

// Sizes reports the data-structure sizes of a run without building
// anything — used to reason about very large scales and to label the
// experiments the way the paper does ("Graph Size" = edge-list bytes).
type SizesInfo struct {
	N           int64  // vertices
	M           int64  // edges in the list (undirected count)
	EdgeListB   uint64 // 16 bytes per edge
	XAdjB       uint64 // CSR offsets, 8*(n+1)
	AdjB        uint64 // CSR adjacency (both directions), 8*2m
	ParentB     uint64 // BFS parent array
	QueueB      uint64 // frontier queues
	VisitedB    uint64 // visited bitmap
	TotalWorkB  uint64 // everything the BFS touches
	GraphLabelB uint64 // the paper's "graph size" label (edge list)
}

// Sizes computes SizesInfo for a scale/edgefactor pair.
func Sizes(scale, edgefactor int) SizesInfo {
	n := int64(1) << uint(scale)
	m := int64(edgefactor) * n
	s := SizesInfo{N: n, M: m}
	s.EdgeListB = uint64(m) * 16
	s.XAdjB = uint64(n+1) * 8
	s.AdjB = uint64(2*m) * 8
	s.ParentB = uint64(n) * 8
	s.QueueB = uint64(n) * 8
	s.VisitedB = uint64(n+7) / 8
	s.TotalWorkB = s.XAdjB + s.AdjB + s.ParentB + s.QueueB + s.VisitedB
	s.GraphLabelB = s.EdgeListB
	return s
}
