package graph500

import "fmt"

// Graph is a compressed-sparse-row representation of the undirected
// graph: every input edge appears in both directions. Self-loops are
// kept (they are harmless to BFS), matching the reference code.
type Graph struct {
	N    int64
	M    int64 // undirected edge count (= len(input edge list))
	XAdj []int64
	Adj  []int64
}

// BuildCSR converts an edge list into CSR form.
func BuildCSR(edges []Edge, n int64) *Graph {
	g := &Graph{N: n, M: int64(len(edges))}
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			panic(fmt.Sprintf("graph500: edge (%d,%d) out of range n=%d", e.U, e.V, n))
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := int64(0); i < n; i++ {
		deg[i+1] += deg[i]
	}
	g.XAdj = deg
	g.Adj = make([]int64, 2*len(edges))
	fill := make([]int64, n)
	for _, e := range edges {
		g.Adj[g.XAdj[e.U]+fill[e.U]] = e.V
		fill[e.U]++
		g.Adj[g.XAdj[e.V]+fill[e.V]] = e.U
		fill[e.V]++
	}
	return g
}

// Degree returns the number of adjacency entries of v.
func (g *Graph) Degree(v int64) int64 { return g.XAdj[v+1] - g.XAdj[v] }

// Neighbors returns the adjacency slice of v.
func (g *Graph) Neighbors(v int64) []int64 { return g.Adj[g.XAdj[v]:g.XAdj[v+1]] }
