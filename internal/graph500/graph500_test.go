package graph500

import (
	"errors"
	"math"
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

func TestGenerateEdgesShape(t *testing.T) {
	const scale, ef = 10, 16
	edges := GenerateEdges(scale, ef, 1)
	n := int64(1) << scale
	if int64(len(edges)) != ef*n {
		t.Fatalf("edges = %d, want %d", len(edges), ef*n)
	}
	deg := make([]int64, n)
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			t.Fatalf("edge out of range: %+v", e)
		}
		deg[e.U]++
		deg[e.V]++
	}
	// Kronecker graphs are highly skewed: the max degree dwarfs the
	// mean (2*ef = 32).
	var max int64
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 10*2*ef {
		t.Fatalf("max degree %d too small for an R-MAT graph", max)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateEdges(8, 8, 42)
	b := GenerateEdges(8, 8, 42)
	c := GenerateEdges(8, 8, 43)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed must reproduce the same edge list")
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestBuildCSR(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 2}}
	g := BuildCSR(edges, 4)
	if g.XAdj[4] != int64(2*len(edges)) {
		t.Fatalf("adj entries = %d", g.XAdj[4])
	}
	if g.Degree(2) != 4 { // 1-2, 2-0, self-loop twice
		t.Fatalf("deg(2) = %d", g.Degree(2))
	}
	if g.Degree(3) != 0 {
		t.Fatalf("deg(3) = %d", g.Degree(3))
	}
	// Symmetry: 0 lists 1, and 1 lists 0.
	has := func(v, u int64) bool {
		for _, w := range g.Neighbors(v) {
			if w == u {
				return true
			}
		}
		return false
	}
	if !has(0, 1) || !has(1, 0) || !has(2, 2) {
		t.Fatal("CSR lost symmetry")
	}
}

func TestCSRRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge should panic")
		}
	}()
	BuildCSR([]Edge{{0, 9}}, 4)
}

func TestBFSAndValidate(t *testing.T) {
	edges := GenerateEdges(10, 16, 7)
	n := int64(1) << 10
	g := BuildCSR(edges, n)
	root := edges[0].U

	parent, stats := BFS(g, root, BFSOptions{})
	if err := Validate(edges, n, root, parent); err != nil {
		t.Fatalf("top-down tree invalid: %v", err)
	}
	if stats.EdgesScanned == 0 || stats.FrontierTotal == 0 || stats.Levels == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.ReachableEdges == 0 || stats.ReachableEdges > g.M {
		t.Fatalf("reachable edges = %d (m=%d)", stats.ReachableEdges, g.M)
	}

	// Direction-optimizing BFS produces an equally valid tree and uses
	// bottom-up levels on this dense giant component.
	parentDO, statsDO := BFS(g, root, BFSOptions{DirectionOptimizing: true})
	if err := Validate(edges, n, root, parentDO); err != nil {
		t.Fatalf("direction-optimizing tree invalid: %v", err)
	}
	if statsDO.BottomUpLevels == 0 {
		t.Fatal("direction optimization never switched bottom-up")
	}
	if statsDO.ReachableEdges != stats.ReachableEdges {
		t.Fatalf("reachable edges differ: %d vs %d", statsDO.ReachableEdges, stats.ReachableEdges)
	}
}

func TestBFSUnreachable(t *testing.T) {
	// Two disconnected components.
	edges := []Edge{{0, 1}, {2, 3}}
	g := BuildCSR(edges, 4)
	parent, _ := BFS(g, 0, BFSOptions{})
	if parent[2] != -1 || parent[3] != -1 {
		t.Fatal("unreachable vertices must keep parent -1")
	}
	if parent[0] != 0 || parent[1] != 0 {
		t.Fatalf("component 0 wrong: %v", parent)
	}
	// Validate must reject this tree against a *connected* edge list.
	if err := Validate(append(edges, Edge{1, 2}), 4, 0, parent); !errors.Is(err, ErrInvalidTree) {
		t.Fatalf("boundary-crossing edge accepted: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}}
	g := BuildCSR(edges, 4)
	parent, _ := BFS(g, 0, BFSOptions{})
	if err := Validate(edges, 4, 0, parent); err != nil {
		t.Fatal(err)
	}

	corrupt := func(f func(p []int64)) error {
		p := append([]int64(nil), parent...)
		f(p)
		return Validate(edges, 4, 0, p)
	}
	if err := corrupt(func(p []int64) { p[0] = 1 }); !errors.Is(err, ErrInvalidTree) {
		t.Fatalf("bad root accepted: %v", err)
	}
	if err := corrupt(func(p []int64) { p[3] = 0 }); !errors.Is(err, ErrInvalidTree) {
		t.Fatalf("fake tree edge accepted: %v", err)
	}
	if err := corrupt(func(p []int64) { p[1] = 2; p[2] = 1 }); !errors.Is(err, ErrInvalidTree) {
		t.Fatalf("cycle accepted: %v", err)
	}
	if err := corrupt(func(p []int64) { p[2] = -1 }); !errors.Is(err, ErrInvalidTree) {
		t.Fatalf("boundary-crossing accepted: %v", err)
	}
	if err := Validate(edges, 3, 0, parent); !errors.Is(err, ErrInvalidTree) {
		t.Fatal("wrong n accepted")
	}
}

func TestAnalyticStatsMatchRealShape(t *testing.T) {
	const scale, ef = 12, 16
	edges := GenerateEdges(scale, ef, 3)
	g := BuildCSR(edges, int64(1)<<scale)
	_, real := BFS(g, edges[0].U, BFSOptions{})
	an := AnalyticStats(scale, ef)
	ratio := float64(an.EdgesScanned) / float64(real.EdgesScanned)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("analytic edges scanned off by %.2fx (analytic %d, real %d)", ratio, an.EdgesScanned, real.EdgesScanned)
	}
	fr := float64(an.ReachableEdges) / float64(real.ReachableEdges)
	if fr < 0.7 || fr > 1.4 {
		t.Fatalf("analytic reachable edges off by %.2fx", fr)
	}
}

func TestSizes(t *testing.T) {
	s := Sizes(23, 16)
	if s.N != 1<<23 || s.M != 16<<23 {
		t.Fatalf("sizes = %+v", s)
	}
	// The paper's first Table IIa row: 2.15 GB edge list at scale 23.
	gbs := float64(s.GraphLabelB) / 1e9
	if math.Abs(gbs-2.147) > 0.01 {
		t.Fatalf("scale-23 edge list = %.3f GB, want ~2.15", gbs)
	}
}

func TestSimulatedPlacementMatters(t *testing.T) {
	p, err := platform.Get("xeon")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	ini := bitmap.NewFromRange(0, 19)
	s := Sizes(23, 16)
	an := AnalyticStats(23, 16)

	run := func(nodeOS int) float64 {
		node := m.NodeByOS(nodeOS)
		bufs, err := AllocBuffers(func(name string, size uint64) (*memsim.Buffer, error) {
			return m.Alloc(name, size, node)
		}, s)
		if err != nil {
			t.Fatal(err)
		}
		defer bufs.Free(m)
		e := memsim.NewEngine(m, ini)
		e.SetThreads(16)
		res := RunTEPS(e, bufs, []BFSStats{an, an, an}, SimParams{})
		return res.HarmonicTEPS
	}
	dram := run(0)
	nv := run(2)
	if dram <= nv {
		t.Fatalf("DRAM TEPS %.3g should beat NVDIMM %.3g", dram, nv)
	}
	ratio := dram / nv
	if ratio < 1.3 || ratio > 2.6 {
		t.Fatalf("DRAM/NVDIMM TEPS ratio %.2f outside the paper's regime (~1.6)", ratio)
	}
	// Magnitudes: the paper reports ~3.4e8 on DRAM; stay within the
	// same order of magnitude.
	if dram < 1e8 || dram > 1e9 {
		t.Fatalf("DRAM TEPS %.3g implausible", dram)
	}
}

func TestRunTEPSHarmonicMean(t *testing.T) {
	p, _ := platform.Get("xeon")
	m, _ := p.NewMachine()
	node := m.NodeByOS(0)
	s := Sizes(20, 16)
	bufs, err := AllocBuffers(func(name string, size uint64) (*memsim.Buffer, error) {
		return m.Alloc(name, size, node)
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	defer bufs.Free(m)
	e := memsim.NewEngine(m, bitmap.NewFromRange(0, 15))

	edges := GenerateEdges(14, 8, 9)
	g := BuildCSR(edges, 1<<14)
	var stats []BFSStats
	for _, root := range []int64{edges[0].U, edges[1].U, edges[2].U} {
		_, st := BFS(g, root, BFSOptions{})
		stats = append(stats, st)
	}
	res := RunTEPS(e, bufs, stats, SimParams{})
	if len(res.PerRootTEPS) != 3 || res.HarmonicTEPS <= 0 || res.MeanSeconds <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// Harmonic mean never exceeds the max per-root TEPS.
	max := 0.0
	for _, v := range res.PerRootTEPS {
		if v > max {
			max = v
		}
	}
	if res.HarmonicTEPS > max {
		t.Fatal("harmonic mean above max")
	}
}

func TestAllocBuffersFailureCleanup(t *testing.T) {
	p, _ := platform.Get("knl-snc4-flat")
	m, _ := p.NewMachine()
	mc := m.NodeByOS(4) // 4 GB MCDRAM
	s := Sizes(24, 16)  // adjacency alone is 4 GB
	_, err := AllocBuffers(func(name string, size uint64) (*memsim.Buffer, error) {
		return m.Alloc(name, size, mc)
	}, s)
	if err == nil {
		t.Fatal("oversized allocation should fail")
	}
}
