package graph500

import (
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
	"hetmem/internal/topology"
)

func knlSetup(t *testing.T) (*memsim.Machine, []*bitmap.Bitmap) {
	t.Helper()
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	var inis []*bitmap.Bitmap
	for _, g := range p.Topo.Objects(topology.Group) {
		inis = append(inis, g.CPUSet.Copy())
	}
	return m, inis
}

func runDist(t *testing.T, m *memsim.Machine, inis []*bitmap.Bitmap, p, scale int) DistResult {
	t.Helper()
	s := Sizes(scale, 16)
	ranks, err := AllocRanks(p, s, inis, 16, func(rank int, name string, size uint64) (*memsim.Buffer, error) {
		// Each rank's shard on its cluster's DRAM.
		return m.Alloc(name, size, m.NodeByOS(rank))
	})
	if err != nil {
		t.Fatal(err)
	}
	defer FreeRanks(m, ranks)
	an := AnalyticStats(scale, 16)
	return RunDistributedTEPS(m, ranks, []BFSStats{an, an}, SimParams{CPUPerEdge: 1.8e-7, MLP: 3})
}

func TestDistributedScaling(t *testing.T) {
	m, inis := knlSetup(t)
	const scale = 23
	r1 := runDist(t, m, inis, 1, scale)
	r2 := runDist(t, m, inis, 2, scale)
	r4 := runDist(t, m, inis, 4, scale)

	if r1.CommBytesPerBFS != 0 {
		t.Fatalf("single rank should not communicate: %d", r1.CommBytesPerBFS)
	}
	if r2.CommBytesPerBFS == 0 || r4.CommBytesPerBFS == 0 {
		t.Fatal("multi-rank runs must communicate")
	}
	// More clusters = more TEPS (weak CPU scaling dominates)...
	if !(r4.HarmonicTEPS > r2.HarmonicTEPS && r2.HarmonicTEPS > r1.HarmonicTEPS) {
		t.Fatalf("TEPS not scaling: 1=%.3g 2=%.3g 4=%.3g", r1.HarmonicTEPS, r2.HarmonicTEPS, r4.HarmonicTEPS)
	}
	// Speedup can exceed P slightly — sharding shrinks each rank's
	// parent array toward the LLC, a well-known BFS cache effect — but
	// stays bounded by communication and remote reads.
	speedup := r4.HarmonicTEPS / r1.HarmonicTEPS
	if speedup < 2 || speedup > 5.5 {
		t.Fatalf("4-rank speedup %.2f implausible", speedup)
	}
	// Communication volume grows with rank count (more cut edges).
	if r4.CommBytesPerBFS <= 0 || r2.CommBytesPerBFS <= 0 {
		t.Fatal("missing communication accounting")
	}
	cut2 := float64(r2.CommBytesPerBFS) * 2 // total exchanged, 2 ranks
	cut4 := float64(r4.CommBytesPerBFS) * 4
	if cut4 <= cut2 {
		t.Fatalf("total cut traffic should grow with ranks: %f vs %f", cut4, cut2)
	}
}

func TestDistributedPlacementStillMatters(t *testing.T) {
	// The paper's point survives distribution: putting every shard on
	// the remote-est memory hurts.
	m, inis := knlSetup(t)
	const scale = 22
	s := Sizes(scale, 16)
	an := AnalyticStats(scale, 16)
	run := func(nodeFor func(rank int) int) float64 {
		ranks, err := AllocRanks(2, s, inis, 16, func(rank int, name string, size uint64) (*memsim.Buffer, error) {
			return m.Alloc(name, size, m.NodeByOS(nodeFor(rank)))
		})
		if err != nil {
			t.Fatal(err)
		}
		defer FreeRanks(m, ranks)
		return RunDistributedTEPS(m, ranks, []BFSStats{an}, SimParams{CPUPerEdge: 1.8e-7, MLP: 3}).HarmonicTEPS
	}
	local := run(func(r int) int { return r })       // rank r on cluster r's DRAM
	swapped := run(func(r int) int { return 1 - r }) // shards on the *other* cluster
	if swapped >= local {
		t.Fatalf("remote shards %.3g should underperform local %.3g", swapped, local)
	}
}

func TestAllocRanksErrors(t *testing.T) {
	m, inis := knlSetup(t)
	s := Sizes(20, 16)
	if _, err := AllocRanks(8, s, inis, 16, nil); err == nil {
		t.Fatal("more ranks than initiators should fail")
	}
	// Placement failure propagates.
	_, err := AllocRanks(2, s, inis, 16, func(rank int, name string, size uint64) (*memsim.Buffer, error) {
		return nil, memsim.ErrNoCapacity
	})
	if err == nil {
		t.Fatal("placement failure should propagate")
	}
	_ = m
}
