package graph500

import (
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

func TestRunRealValidated(t *testing.T) {
	out, err := RunReal(RealConfig{Scale: 12, Seed: 5, NRoots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 1<<12 || out.M != 16<<12 {
		t.Fatalf("sizes = %d %d", out.N, out.M)
	}
	if len(out.Stats) != 4 {
		t.Fatalf("roots = %d", len(out.Stats))
	}
	for _, st := range out.Stats {
		if st.EdgesScanned == 0 || st.ReachableEdges == 0 {
			t.Fatalf("degenerate stats %+v", st)
		}
	}
}

func TestRunRealDirectionOptimizing(t *testing.T) {
	plain, err := RunReal(RealConfig{Scale: 12, Seed: 5, NRoots: 2})
	if err != nil {
		t.Fatal(err)
	}
	do, err := RunReal(RealConfig{Scale: 12, Seed: 5, NRoots: 2, Opts: BFSOptions{DirectionOptimizing: true}})
	if err != nil {
		t.Fatal(err)
	}
	// Direction optimization scans dramatically fewer edges on the
	// giant component of a scale-free graph.
	if do.Stats[0].EdgesScanned >= plain.Stats[0].EdgesScanned {
		t.Fatalf("direction optimization did not help: %d vs %d",
			do.Stats[0].EdgesScanned, plain.Stats[0].EdgesScanned)
	}
	if do.Stats[0].ReachableEdges != plain.Stats[0].ReachableEdges {
		t.Fatal("reachable edges must not depend on traversal direction")
	}
}

func TestRealModeSimulatedTEPS(t *testing.T) {
	// The full real pipeline into the simulator: results must land in
	// the same ballpark as the analytic profile at the same scale.
	p, err := platform.Get("xeon")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	const scale = 14
	out, err := RunReal(RealConfig{Scale: scale, Seed: 9, NRoots: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := Sizes(scale, 16)
	node := m.NodeByOS(0)
	bufs, err := AllocBuffers(func(name string, size uint64) (*memsim.Buffer, error) {
		return m.Alloc(name, size, node)
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	defer bufs.Free(m)
	e := memsim.NewEngine(m, bitmap.NewFromRange(0, 15))
	real := RunTEPS(e, bufs, out.Stats, SimParams{})
	an := RunTEPS(e, bufs, []BFSStats{AnalyticStats(scale, 16)}, SimParams{})
	if real.HarmonicTEPS <= 0 {
		t.Fatal("no TEPS")
	}
	ratio := real.HarmonicTEPS / an.HarmonicTEPS
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("real-mode TEPS %.3g vs analytic %.3g (ratio %.2f) disagree too much",
			real.HarmonicTEPS, an.HarmonicTEPS, ratio)
	}
}

func TestRunRealNoRoots(t *testing.T) {
	// An (almost) edgeless graph cannot provide roots... edgefactor is
	// at least 1 with our generator, so instead check the error path
	// via an impossible root count on a tiny graph: every vertex has
	// edges, so this succeeds; the error path needs degree-0 vertices.
	// Build a graph where most vertices are isolated by using scale 10
	// with edgefactor 1 concentrated by Kronecker skew.
	out, err := RunReal(RealConfig{Scale: 10, EdgeFactor: 1, Seed: 3, NRoots: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range out.Stats {
		if out.Graph.Degree(st.Root) == 0 {
			t.Fatal("picked an isolated root")
		}
	}
}
