package graph500

// BFSStats is the memory-access profile of one BFS, used to replay the
// traversal through the memory simulator.
type BFSStats struct {
	Root int64
	// EdgesScanned is the number of adjacency entries examined.
	EdgesScanned int64
	// FrontierTotal is the total number of vertices ever enqueued.
	FrontierTotal int64
	// Levels is the number of BFS levels.
	Levels int
	// ReachableEdges is the number of input edges with at least one
	// endpoint in the traversed component — the m of the TEPS metric.
	ReachableEdges int64
	// BottomUpLevels counts levels executed bottom-up (0 without
	// direction optimization).
	BottomUpLevels int
}

// BFSOptions tunes the traversal.
type BFSOptions struct {
	// DirectionOptimizing enables Beamer-style bottom-up switching.
	DirectionOptimizing bool
	// Alpha and Beta are the switching thresholds (defaults 15, 18).
	Alpha, Beta int64
}

func (o *BFSOptions) defaults() {
	if o.Alpha == 0 {
		o.Alpha = 15
	}
	if o.Beta == 0 {
		o.Beta = 18
	}
}

// BFS runs a level-synchronous breadth-first search from root and
// returns the parent array (parent[v] == -1 for unreachable vertices,
// parent[root] == root) together with the access statistics needed to
// simulate its timing.
func BFS(g *Graph, root int64, opts BFSOptions) ([]int64, BFSStats) {
	opts.defaults()
	parent := make([]int64, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root

	stats := BFSStats{Root: root}
	frontier := []int64{root}
	stats.FrontierTotal = 1

	// Scanned-edge bookkeeping for the direction heuristic.
	unvisitedEdges := int64(len(g.Adj))
	unvisitedEdges -= g.Degree(root)

	for len(frontier) > 0 {
		stats.Levels++
		var frontierEdges int64
		for _, v := range frontier {
			frontierEdges += g.Degree(v)
		}

		bottomUp := opts.DirectionOptimizing && frontierEdges > unvisitedEdges/opts.Alpha
		var next []int64
		if bottomUp {
			stats.BottomUpLevels++
			inFrontier := make(map[int64]bool, len(frontier))
			for _, v := range frontier {
				inFrontier[v] = true
			}
			for v := int64(0); v < g.N; v++ {
				if parent[v] != -1 {
					continue
				}
				for _, u := range g.Neighbors(v) {
					stats.EdgesScanned++
					if inFrontier[u] {
						parent[v] = u
						next = append(next, v)
						break
					}
				}
			}
		} else {
			for _, v := range frontier {
				for _, u := range g.Neighbors(v) {
					stats.EdgesScanned++
					if parent[u] == -1 {
						parent[u] = v
						next = append(next, u)
					}
				}
			}
		}
		for _, v := range next {
			unvisitedEdges -= g.Degree(v)
		}
		stats.FrontierTotal += int64(len(next))
		frontier = next
		// Small-frontier switch back to top-down is implicit: the
		// heuristic re-evaluates every level.
		_ = opts.Beta
	}

	// Edges counted by TEPS: adjacency entries whose source is
	// reachable, halved (each undirected edge was inserted twice).
	var reach int64
	for v := int64(0); v < g.N; v++ {
		if parent[v] != -1 {
			reach += g.Degree(v)
		}
	}
	stats.ReachableEdges = reach / 2
	return parent, stats
}

// AnalyticStats synthesizes the access profile of a BFS over a
// Kronecker graph too large to materialize: on these scale-free
// graphs, one traversal from a random root of the giant component
// scans nearly all adjacency entries and visits most vertices. Used by
// the large-scale experiments (Table IIa goes to 34 GB edge lists).
func AnalyticStats(scale, edgefactor int) BFSStats {
	s := Sizes(scale, edgefactor)
	const reachableFrac = 0.92 // giant-component share of a Kronecker graph
	return BFSStats{
		EdgesScanned:   int64(float64(2*s.M) * reachableFrac),
		FrontierTotal:  int64(float64(s.N) * reachableFrac * 0.7), // isolated vertices never enqueue
		Levels:         scale/2 + 4,
		ReachableEdges: int64(float64(s.M) * reachableFrac),
	}
}
