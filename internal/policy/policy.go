// Package policy emulates the operating-system memory policies
// (set_mempolicy/mbind/numactl) that the paper's Section II-D calls
// "the basic way to allocate on specific kinds of memory": binding a
// whole process to nodes, interleaving, and Linux's *preferred* policy
// with its real-world restriction — the preferred node must have a
// lower index than the fallback nodes (paper footnote: impossible for
// KNL MCDRAM, whose nodes always carry the higher indexes). The
// heterogeneous allocator (internal/alloc) exists precisely because
// these policies cannot express "fast memory first, ranked fallback".
package policy

import (
	"errors"
	"fmt"
	"sort"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
)

// Mode mirrors the MPOL_* constants.
type Mode int

const (
	// Default allocates on the lowest-indexed node local to the
	// caller (first-touch approximation).
	Default Mode = iota
	// Bind restricts allocation to the node set strictly.
	Bind
	// Interleave round-robins pages across the node set.
	Interleave
	// Preferred tries one node and falls back to the others in index
	// order — subject to the Linux index restriction.
	Preferred
)

// String names the mode like numactl.
func (m Mode) String() string {
	switch m {
	case Default:
		return "default"
	case Bind:
		return "membind"
	case Interleave:
		return "interleave"
	case Preferred:
		return "preferred"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Errors.
var (
	// ErrInvalid is the EINVAL analogue: the policy cannot be
	// expressed (empty node set, multi-node preferred, or the Linux
	// preferred-index restriction).
	ErrInvalid = errors.New("policy: invalid policy")
)

// Policy is one memory policy over explicit node OS indexes.
type Policy struct {
	Mode  Mode
	Nodes []int // node OS indexes; unused for Default
}

// Validate checks expressibility against a machine, including the
// Linux preferred-index restriction: every node outside the preferred
// one is a potential fallback, so the preferred node must carry the
// lowest index of the machine's nodes that could serve the
// allocation. This is what makes "prefer MCDRAM, fall back to DRAM"
// inexpressible on KNL.
func (p Policy) Validate(m *memsim.Machine) error {
	switch p.Mode {
	case Default:
		return nil
	case Bind, Interleave:
		if len(p.Nodes) == 0 {
			return fmt.Errorf("%w: %s needs at least one node", ErrInvalid, p.Mode)
		}
	case Preferred:
		if len(p.Nodes) != 1 {
			return fmt.Errorf("%w: preferred takes exactly one node", ErrInvalid)
		}
		pref := p.Nodes[0]
		for _, n := range m.Nodes() {
			if n.OSIndex() < pref {
				return fmt.Errorf("%w: preferred node %d has fallback node %d with a lower index (Linux restriction)",
					ErrInvalid, pref, n.OSIndex())
			}
		}
	default:
		return fmt.Errorf("%w: unknown mode %d", ErrInvalid, int(p.Mode))
	}
	for _, os := range p.Nodes {
		if m.NodeByOS(os) == nil {
			return fmt.Errorf("%w: no node with OS index %d", ErrInvalid, os)
		}
	}
	return nil
}

// Alloc places size bytes under the policy for a caller running on the
// initiator cpuset.
func (p Policy) Alloc(m *memsim.Machine, initiator *bitmap.Bitmap, name string, size uint64) (*memsim.Buffer, error) {
	if err := p.Validate(m); err != nil {
		return nil, err
	}
	switch p.Mode {
	case Default:
		node := defaultNode(m, initiator)
		if node == nil {
			return nil, fmt.Errorf("%w: no local node", ErrInvalid)
		}
		return m.Alloc(name, size, node)
	case Bind:
		var lastErr error
		for _, os := range sorted(p.Nodes) {
			b, err := m.Alloc(name, size, m.NodeByOS(os))
			if err == nil {
				return b, nil
			}
			if !errors.Is(err, memsim.ErrNoCapacity) {
				return nil, err
			}
			lastErr = err
		}
		return nil, lastErr
	case Interleave:
		nodes := make([]*memsim.Node, 0, len(p.Nodes))
		for _, os := range sorted(p.Nodes) {
			nodes = append(nodes, m.NodeByOS(os))
		}
		return m.AllocInterleave(name, size, nodes)
	case Preferred:
		pref := m.NodeByOS(p.Nodes[0])
		if b, err := m.Alloc(name, size, pref); err == nil {
			return b, nil
		} else if !errors.Is(err, memsim.ErrNoCapacity) {
			return nil, err
		}
		// Kernel fallback: remaining nodes in index order.
		for _, n := range m.Nodes() {
			if n == pref {
				continue
			}
			b, err := m.Alloc(name, size, n)
			if err == nil {
				return b, nil
			}
			if !errors.Is(err, memsim.ErrNoCapacity) {
				return nil, err
			}
		}
		return nil, memsim.ErrNoCapacity
	default:
		return nil, fmt.Errorf("%w: unknown mode", ErrInvalid)
	}
}

// Placer curries the policy into the placement-function shape the
// applications accept — numactl-style whole-process binding:
//
//	place := policy.Policy{Mode: policy.Bind, Nodes: []int{2}}.Placer(m, ini)
//	bufs, err := graph500.AllocBuffers(place, sizes)
func (p Policy) Placer(m *memsim.Machine, initiator *bitmap.Bitmap) func(string, uint64) (*memsim.Buffer, error) {
	return func(name string, size uint64) (*memsim.Buffer, error) {
		return p.Alloc(m, initiator, name, size)
	}
}

// defaultNode returns the lowest-OS-index node local to the initiator.
func defaultNode(m *memsim.Machine, initiator *bitmap.Bitmap) *memsim.Node {
	var best *memsim.Node
	for _, obj := range m.Topology().LocalNUMANodes(initiator) {
		n := m.Node(obj)
		if best == nil || n.OSIndex() < best.OSIndex() {
			best = n
		}
	}
	return best
}

func sorted(in []int) []int {
	out := append([]int(nil), in...)
	sort.Ints(out)
	return out
}
