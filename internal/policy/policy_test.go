package policy

import (
	"errors"
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

const gib = uint64(1) << 30

func machine(t *testing.T, name string) *memsim.Machine {
	t.Helper()
	p, err := platform.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModeString(t *testing.T) {
	if Default.String() != "default" || Bind.String() != "membind" ||
		Interleave.String() != "interleave" || Preferred.String() != "preferred" {
		t.Fatal("mode names wrong")
	}
}

func TestDefaultFirstTouch(t *testing.T) {
	m := machine(t, "knl-snc4-flat")
	ini := bitmap.NewFromRange(16, 31) // cluster 1
	b, err := Policy{Mode: Default}.Alloc(m, ini, "d", gib)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 1's DRAM (OS 1), never the MCDRAM (OS 5).
	if b.NodeNames() != "DRAM#1" {
		t.Fatalf("default landed on %s", b.NodeNames())
	}
}

func TestBindStrict(t *testing.T) {
	m := machine(t, "knl-snc4-flat")
	ini := bitmap.NewFromRange(0, 15)
	pol := Policy{Mode: Bind, Nodes: []int{4}} // MCDRAM only
	b, err := pol.Alloc(m, ini, "a", 3*gib)
	if err != nil || b.NodeNames() != "MCDRAM#4" {
		t.Fatalf("bind: %v %v", b, err)
	}
	// Strict: a second 3GiB does not fit and must fail, not spill.
	if _, err := pol.Alloc(m, ini, "b", 3*gib); !errors.Is(err, memsim.ErrNoCapacity) {
		t.Fatalf("bind overflow err = %v", err)
	}
	// Multi-node bind walks the set in index order.
	pol = Policy{Mode: Bind, Nodes: []int{4, 0}}
	b, err = pol.Alloc(m, ini, "c", 3*gib)
	if err != nil || b.NodeNames() != "DRAM#0" {
		t.Fatalf("multi bind: %v %v", b, err)
	}
}

func TestInterleave(t *testing.T) {
	m := machine(t, "xeon")
	ini := bitmap.NewFromRange(0, 19)
	b, err := Policy{Mode: Interleave, Nodes: []int{0, 2}}.Alloc(m, ini, "il", 10*gib)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Segments) != 2 || b.Segments[0].Bytes != 5*gib {
		t.Fatalf("interleave segments = %+v", b.Segments)
	}
}

func TestPreferredLinuxRestriction(t *testing.T) {
	m := machine(t, "knl-snc4-flat")
	// Preferring the MCDRAM (OS 4) is invalid: DRAM nodes 0-3 have
	// lower indexes — the paper's footnote, verbatim.
	pol := Policy{Mode: Preferred, Nodes: []int{4}}
	if err := pol.Validate(m); !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v", err)
	}
	// Preferring DRAM node 0 is fine and falls back when full.
	pol = Policy{Mode: Preferred, Nodes: []int{0}}
	if err := pol.Validate(m); err != nil {
		t.Fatal(err)
	}
	ini := bitmap.NewFromRange(0, 15)
	if _, err := m.Alloc("hog", 23*gib, m.NodeByOS(0)); err != nil {
		t.Fatal(err)
	}
	b, err := pol.Alloc(m, ini, "spill", 2*gib)
	if err != nil {
		t.Fatal(err)
	}
	if b.NodeNames() != "DRAM#1" { // next node by index order
		t.Fatalf("preferred fallback landed on %s", b.NodeNames())
	}
}

func TestValidateErrors(t *testing.T) {
	m := machine(t, "xeon")
	cases := []Policy{
		{Mode: Bind},                          // empty node set
		{Mode: Interleave},                    // empty node set
		{Mode: Preferred, Nodes: []int{0, 1}}, // multi-node preferred
		{Mode: Bind, Nodes: []int{99}},        // unknown node
		{Mode: Mode(42)},                      // unknown mode
	}
	for _, p := range cases {
		if err := p.Validate(m); !errors.Is(err, ErrInvalid) {
			t.Errorf("Validate(%+v) = %v, want ErrInvalid", p, err)
		}
	}
	if _, err := (Policy{Mode: Bind}).Alloc(m, bitmap.NewFromIndexes(0), "x", gib); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Alloc with invalid policy err = %v", err)
	}
}

func TestPlacerProcessBind(t *testing.T) {
	// numactl --membind style: the Table II benchmarking method.
	m := machine(t, "xeon")
	ini := bitmap.NewFromRange(0, 19)
	place := Policy{Mode: Bind, Nodes: []int{2}}.Placer(m, ini)
	b1, err := place("csr_adj", 2*gib)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := place("parent", gib)
	if err != nil {
		t.Fatal(err)
	}
	if b1.NodeNames() != "NVDIMM#2" || b2.NodeNames() != "NVDIMM#2" {
		t.Fatalf("process bind: %s %s", b1.NodeNames(), b2.NodeNames())
	}
}

func TestPolicyVsAllocatorExpressiveness(t *testing.T) {
	// The punchline: "prefer MCDRAM, fall back to DRAM" is invalid as
	// an OS policy but trivial for the attribute allocator (covered in
	// internal/alloc); here we pin down the OS side of the contrast.
	m := machine(t, "knl-snc4-flat")
	pol := Policy{Mode: Preferred, Nodes: []int{4}}
	err := pol.Validate(m)
	if err == nil {
		t.Fatal("Linux should reject MCDRAM-preferred")
	}
	// Bind to both gives index order - DRAM first, the *wrong* order
	// for a bandwidth-hungry buffer.
	b, err := Policy{Mode: Bind, Nodes: []int{0, 4}}.Alloc(m, bitmap.NewFromRange(0, 15), "hot", gib)
	if err != nil {
		t.Fatal(err)
	}
	if b.NodeNames() != "DRAM#0" {
		t.Fatalf("bind order gave %s", b.NodeNames())
	}
}
