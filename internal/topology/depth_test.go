package topology

import "testing"

func TestDepthAPI(t *testing.T) {
	topo := buildMini(t) // Machine > Package > Core > PU, memory at Package
	if d := topo.TypeDepth(Machine); d != 0 {
		t.Fatalf("machine depth = %d", d)
	}
	if d := topo.TypeDepth(Package); d != 1 {
		t.Fatalf("package depth = %d", d)
	}
	if d := topo.TypeDepth(Core); d != 2 {
		t.Fatalf("core depth = %d", d)
	}
	if d := topo.TypeDepth(PU); d != 3 {
		t.Fatalf("pu depth = %d", d)
	}
	if d := topo.MaxDepth(); d != 3 {
		t.Fatalf("max depth = %d", d)
	}
	if d := topo.TypeDepth(Group); d != DepthUnknown {
		t.Fatalf("group depth = %d, want unknown", d)
	}
	// Memory objects: their depth hangs off the CPU parent.
	dram := topo.ObjectByOS(NUMANode, 0)
	if d := Depth(dram); d != 2 { // parent = package at depth 1
		t.Fatalf("numa depth = %d", d)
	}

	if n := len(topo.ObjectsAtDepth(1)); n != 2 {
		t.Fatalf("objects at depth 1 = %d", n)
	}
	if n := len(topo.ObjectsAtDepth(3)); n != 8 {
		t.Fatalf("objects at depth 3 = %d", n)
	}
	if n := len(topo.ObjectsAtDepth(9)); n != 0 {
		t.Fatalf("objects at depth 9 = %d", n)
	}
	// Logical order at a level.
	pus := topo.ObjectsAtDepth(3)
	for i, pu := range pus {
		if pu.LogicalIndex != i {
			t.Fatalf("level order broken at %d", i)
		}
	}
}

func TestDepthMultiple(t *testing.T) {
	// Groups at two different depths (a group of packages and a group
	// inside a package).
	root := New(Machine, -1)
	outer := root.AddChild(New(Group, 0))
	pkg := outer.AddChild(New(Package, 0))
	inner := pkg.AddChild(New(Group, 1))
	inner.AddMemChild(NewNUMA(0, "DRAM", 1<<30))
	inner.AddChild(New(Core, 0)).AddChild(New(PU, 0))
	topo, err := Build(root)
	if err != nil {
		t.Fatal(err)
	}
	if d := topo.TypeDepth(Group); d != DepthMultiple {
		t.Fatalf("group depth = %d, want multiple", d)
	}
	// Memory behind a memory-side cache still reports a CPU-based depth.
	if d := Depth(topo.ObjectByOS(NUMANode, 0)); d != 4 {
		t.Fatalf("numa depth = %d", d)
	}
}
