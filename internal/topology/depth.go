package topology

// hwloc exposes the tree as a set of horizontal *levels* addressed by
// depth; this file provides the equivalents of hwloc_get_type_depth,
// hwloc_get_depth_type and hwloc_get_nbobjs_by_depth for the CPU side
// of the tree (memory objects live on virtual levels in hwloc; here
// they are reachable through NUMANodes and Objects(NUMANode)).

// DepthUnknown is returned when a type has no objects; DepthMultiple
// when objects of the type appear at several depths (possible for
// Group).
const (
	DepthUnknown  = -1
	DepthMultiple = -2
)

// Depth returns the depth of o: the number of CPU-side edges from the
// root (memory objects report their CPU parent's depth + 1, matching
// hwloc's convention that memory levels hang off a normal level).
func Depth(o *Object) int {
	d := 0
	p := o.Parent
	for p != nil {
		if !p.Type.IsMemory() {
			d++
		}
		p = p.Parent
	}
	return d
}

// TypeDepth returns the depth at which objects of the type live, or
// DepthUnknown / DepthMultiple.
func (t *Topology) TypeDepth(typ Type) int {
	objs := t.byType[typ]
	if len(objs) == 0 {
		return DepthUnknown
	}
	d := Depth(objs[0])
	for _, o := range objs[1:] {
		if Depth(o) != d {
			return DepthMultiple
		}
	}
	return d
}

// ObjectsAtDepth returns the non-memory objects at the given depth, in
// logical order.
func (t *Topology) ObjectsAtDepth(depth int) []*Object {
	var out []*Object
	var walk func(o *Object)
	walk = func(o *Object) {
		if !o.Type.IsMemory() && Depth(o) == depth {
			out = append(out, o)
			return // children are strictly deeper
		}
		for _, c := range o.Children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// MaxDepth returns the depth of the PUs (the deepest CPU level).
func (t *Topology) MaxDepth() int {
	d := t.TypeDepth(PU)
	if d < 0 {
		return 0
	}
	return d
}
