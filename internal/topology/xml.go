package topology

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// xmlObject mirrors hwloc's v2 XML export closely enough to be
// recognizable: nested <object> elements with type/os_index/subtype
// attributes, memory children marked by the NUMANode/MemCache types,
// and info key/value pairs as <info> children. Like the JSON form,
// computed fields are omitted and rebuilt by Build on import.
type xmlObject struct {
	XMLName   xml.Name    `xml:"object"`
	Type      string      `xml:"type,attr"`
	OSIndex   *int        `xml:"os_index,attr,omitempty"`
	Subtype   string      `xml:"subtype,attr,omitempty"`
	Name      string      `xml:"name,attr,omitempty"`
	Memory    uint64      `xml:"local_memory,attr,omitempty"`
	CacheSize uint64      `xml:"cache_size,attr,omitempty"`
	Infos     []xmlInfo   `xml:"info"`
	Children  []xmlObject `xml:"object"`
}

type xmlInfo struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

type xmlTopology struct {
	XMLName xml.Name  `xml:"topology"`
	Version string    `xml:"version,attr"`
	Root    xmlObject `xml:"object"`
}

func toXML(o *Object) xmlObject {
	x := xmlObject{
		Type:      o.Type.String(),
		Subtype:   o.Subtype,
		Name:      o.Name,
		Memory:    o.Memory,
		CacheSize: o.CacheSize,
	}
	if o.OSIndex >= 0 {
		idx := o.OSIndex
		x.OSIndex = &idx
	}
	for k, v := range o.Infos {
		x.Infos = append(x.Infos, xmlInfo{k, v})
	}
	// Deterministic info order.
	for i := 1; i < len(x.Infos); i++ {
		for j := i; j > 0 && x.Infos[j].Name < x.Infos[j-1].Name; j-- {
			x.Infos[j], x.Infos[j-1] = x.Infos[j-1], x.Infos[j]
		}
	}
	// hwloc lists memory children first in its XML.
	for _, m := range o.MemChildren {
		x.Children = append(x.Children, toXML(m))
	}
	for _, c := range o.Children {
		x.Children = append(x.Children, toXML(c))
	}
	return x
}

func fromXML(x xmlObject) (*Object, error) {
	typ, err := ParseType(x.Type)
	if err != nil {
		return nil, err
	}
	os := -1
	if x.OSIndex != nil {
		os = *x.OSIndex
	}
	o := New(typ, os)
	o.Subtype = x.Subtype
	o.Name = x.Name
	o.Memory = x.Memory
	o.CacheSize = x.CacheSize
	for _, info := range x.Infos {
		o.SetInfo(info.Name, info.Value)
	}
	for _, c := range x.Children {
		child, err := fromXML(c)
		if err != nil {
			return nil, err
		}
		if child.Type.IsMemory() {
			o.AddMemChild(child)
		} else {
			o.AddChild(child)
		}
	}
	return o, nil
}

// ExportXML serializes the topology in an hwloc-flavoured XML format.
func ExportXML(t *Topology) ([]byte, error) {
	doc := xmlTopology{Version: "2.0", Root: toXML(t.root)}
	data, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), data...), nil
}

// ImportXML parses a topology produced by ExportXML and rebuilds it.
func ImportXML(data []byte) (*Topology, error) {
	var doc xmlTopology
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("topology: bad XML: %w", err)
	}
	if doc.Root.Type == "" {
		return nil, fmt.Errorf("topology: XML has no root object")
	}
	root, err := fromXML(doc.Root)
	if err != nil {
		return nil, err
	}
	return Build(root)
}

// DetectFormat guesses whether exported topology bytes are XML or
// JSON, for tools that accept either.
func DetectFormat(data []byte) string {
	s := strings.TrimSpace(string(data))
	if strings.HasPrefix(s, "<") {
		return "xml"
	}
	return "json"
}
