package topology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hetmem/internal/bitmap"
)

func TestXMLRoundTrip(t *testing.T) {
	topo := buildMini(t)
	topo.Root().SetInfo("Backend", "simulated")
	data, err := ExportXML(topo)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), xmlHeaderPrefix) {
		t.Fatalf("missing XML header:\n%.80s", data)
	}
	for _, want := range []string{`type="Machine"`, `type="NUMANode"`, `subtype="NVDIMM"`, `local_memory=`, `<info name="Backend" value="simulated">`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("XML missing %q", want)
		}
	}
	back, err := ImportXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumObjects(PU) != topo.NumObjects(PU) || back.NumObjects(NUMANode) != topo.NumObjects(NUMANode) {
		t.Fatal("XML import changed object counts")
	}
	if back.Root().Info("Backend") != "simulated" {
		t.Fatal("info lost in XML round trip")
	}
	for i, n := range topo.NUMANodes() {
		bn := back.NUMANodes()[i]
		if bn.OSIndex != n.OSIndex || bn.Subtype != n.Subtype || bn.Memory != n.Memory {
			t.Fatalf("node %d mismatch", i)
		}
		if !bitmap.Equal(bn.CPUSet, n.CPUSet) {
			t.Fatalf("node %d locality mismatch", i)
		}
	}
}

const xmlHeaderPrefix = "<?xml"

func TestXMLMemCache(t *testing.T) {
	root := New(Machine, -1)
	pkg := root.AddChild(New(Package, 0))
	msc := pkg.AddMemChild(NewMemCache(2 << 30))
	msc.AddMemChild(NewNUMA(0, "DRAM", 12<<30))
	pkg.AddChild(New(Core, 0)).AddChild(New(PU, 0))
	topo, err := Build(root)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ExportXML(topo)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportXML(data)
	if err != nil {
		t.Fatal(err)
	}
	dram := back.ObjectByOS(NUMANode, 0)
	c := MemorySideCacheFor(dram)
	if c == nil || c.CacheSize != 2<<30 {
		t.Fatalf("memory-side cache lost: %v", c)
	}
}

func TestImportXMLErrors(t *testing.T) {
	if _, err := ImportXML([]byte("<not-xml")); err == nil {
		t.Fatal("bad XML should fail")
	}
	if _, err := ImportXML([]byte("<topology></topology>")); err == nil {
		t.Fatal("empty topology should fail")
	}
	if _, err := ImportXML([]byte(`<topology><object type="Elephant"></object></topology>`)); err == nil {
		t.Fatal("unknown type should fail")
	}
	// Structurally invalid (no PU) must be caught by Build on import.
	if _, err := ImportXML([]byte(`<topology><object type="Machine"><object type="NUMANode" os_index="0"></object></object></topology>`)); err == nil {
		t.Fatal("PU-less topology should fail validation")
	}
}

func TestDetectFormat(t *testing.T) {
	topo := buildMini(t)
	xmlData, _ := ExportXML(topo)
	jsonData, _ := Export(topo)
	if DetectFormat(xmlData) != "xml" {
		t.Fatal("XML not detected")
	}
	if DetectFormat(jsonData) != "json" {
		t.Fatal("JSON not detected")
	}
	if DetectFormat([]byte("  \n\t<?xml...")) != "xml" {
		t.Fatal("leading whitespace broke detection")
	}
}

func TestQuickXMLRoundTripStable(t *testing.T) {
	f := func(seed int64) bool {
		topo := randomTopology(rand.New(rand.NewSource(seed)))
		d1, err := ExportXML(topo)
		if err != nil {
			return false
		}
		back, err := ImportXML(d1)
		if err != nil {
			return false
		}
		d2, err := ExportXML(back)
		if err != nil {
			return false
		}
		return string(d1) == string(d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestXMLJSONAgree(t *testing.T) {
	// Importing either serialization yields the same logical topology.
	topo := buildMini(t)
	xd, _ := ExportXML(topo)
	jd, _ := Export(topo)
	fromX, err := ImportXML(xd)
	if err != nil {
		t.Fatal(err)
	}
	fromJ, err := Import(jd)
	if err != nil {
		t.Fatal(err)
	}
	jx, _ := Export(fromX)
	jj, _ := Export(fromJ)
	if string(jx) != string(jj) {
		t.Fatal("XML and JSON round trips disagree")
	}
}
